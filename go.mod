module pgschema

go 1.22
