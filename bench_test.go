package pgschema_test

// The benchmark harness regenerates every measurable artifact of the
// paper (see DESIGN.md §4 and EXPERIMENTS.md):
//
//	E1 BenchmarkE1CardinalityTable   — §3.3 cardinality classes
//	E2 BenchmarkE2ValidationScaling  — Theorem 1: validation cost vs |G|
//	   BenchmarkE2ParallelSpeedup    — AC0 parallelizability consequence
//	E3 BenchmarkE3Example61          — satisfiability of Example 6.1
//	E4 BenchmarkE4Reduction          — Theorem 2: SAT reduction
//	E5 BenchmarkE5Tableau            — Theorem 3: ALCQI reasoning
//	E7 BenchmarkE7PerRuleCost        — per-rule validation cost split
//	   BenchmarkAblation*            — design-choice ablations
//	   BenchmarkScale               — 10⁵/10⁶-element scaling, 1-8 workers
//	   BenchmarkLoadCSV             — parallel CSV ingestion throughput
//	E11 BenchmarkIngest             — streaming columnar loader and fused
//	                                   validate-on-ingest vs the two-phase path
//	E12 BenchmarkQueryEngine        — compiled query plans vs the
//	                                   tree-walking executor, cold and cached
//	E14 BenchmarkSnapshot           — .pgsnap durable snapshots: save/open
//	                                   throughput, mmap open vs stream load,
//	                                   mapped vs heap first validation
//
// Run with: go test -bench=. -benchmem

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"testing"

	"pgschema"
	"pgschema/internal/cnf"
	"pgschema/internal/dl"
	"pgschema/internal/reduction"
	"pgschema/internal/sat"
	"pgschema/internal/validate"
)

// benchSchema is a medium-complexity schema exercising every directive,
// used by the validation benchmarks.
const benchSchema = `
type Author @key(fields: ["name"]) {
	name: String! @required
	favoriteBook: Book
	relatedAuthor: [Author] @distinct @noLoops
}
type Book {
	title: String! @required
	pages: Int
	tags: [String!]
	author(role: String): [Author] @required @distinct
}
type BookSeries {
	contains: [Book] @required @uniqueForTarget
}
type Publisher {
	published: [Book] @uniqueForTarget @requiredForTarget
}`

func benchGraph(b *testing.B, nodesPerType int) (*pgschema.Schema, *pgschema.Graph) {
	b.Helper()
	s, err := pgschema.ParseSchema(benchSchema)
	if err != nil {
		b.Fatal(err)
	}
	g, err := pgschema.GenerateConformant(s, pgschema.GenConfig{Seed: 42, NodesPerType: nodesPerType})
	if err != nil {
		b.Fatal(err)
	}
	return s, g
}

// BenchmarkE1CardinalityTable validates each of the four §3.3 cardinality
// classes over generated graphs (the same rows the paper's table lists).
func BenchmarkE1CardinalityTable(b *testing.B) {
	for _, kind := range []string{"1:1", "1:N", "N:1", "N:M"} {
		b.Run(kind, func(b *testing.B) {
			s := mustParseB(b, cardinalitySchema(kind))
			g, err := pgschema.GenerateConformant(s, pgschema.GenConfig{Seed: 1, NodesPerType: 500})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
				if !res.OK() {
					b.Fatal("generated graph invalid")
				}
			}
		})
	}
}

// BenchmarkE2ValidationScaling measures strong validation across graph
// sizes at a fixed schema — the practical counterpart of Theorem 1's
// claim that validation is cheap (near-linear here thanks to the
// adjacency indexes; the definitional algorithm is O(n²)).
func BenchmarkE2ValidationScaling(b *testing.B) {
	for _, n := range []int{100, 300, 1000, 3000, 10000} {
		b.Run(fmt.Sprintf("nodesPerType=%d", n), func(b *testing.B) {
			s, g := benchGraph(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
				if !res.OK() {
					b.Fatal("generated graph invalid")
				}
			}
			b.ReportMetric(float64(g.NumNodes()+g.NumEdges()), "graph-elems")
		})
	}
}

// BenchmarkE2ParallelSpeedup compares worker counts on a large graph —
// the observable consequence of the paper's AC0 (highly parallelizable)
// result.
func BenchmarkE2ParallelSpeedup(b *testing.B) {
	s, g := benchGraph(b, 5000)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, sharding := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/sharding=%v", workers, sharding)
			b.Run(name, func(b *testing.B) {
				opts := pgschema.ValidateOptions{Workers: workers, ElementSharding: sharding}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := pgschema.ValidateGraph(s, g, opts)
					if !res.OK() {
						b.Fatal("generated graph invalid")
					}
				}
			})
		}
	}
}

// BenchmarkE3Example61 runs the full satisfiability portfolio on the
// three unsatisfiable diagrams of Example 6.1.
func BenchmarkE3Example61(b *testing.B) {
	diagrams := []struct {
		name, sdl, query string
		skip             bool
	}{
		{"a", `
			type OT1 { }
			interface IT { hasOT1: OT1 @uniqueForTarget }
			type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
			type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }`, "OT1", true},
		{"b", `
			interface IT { f: [OT1] @uniqueForTarget @requiredForTarget }
			type OT2 implements IT { f: [OT1] @required }
			type OT3 implements IT { f: [OT1] @required }
			type OT1 { g: [OT3] @required @uniqueForTarget }`, "OT2", false},
		{"c", `
			interface IT { f: [OT1] @uniqueForTarget }
			type OT2 implements IT { f: [OT1] @required }
			type OT3 implements IT { f: [OT1] @requiredForTarget }
			type OT1 { }`, "OT2", false},
	}
	for _, d := range diagrams {
		b.Run(d.name, func(b *testing.B) {
			s, err := pgschema.ParseSchemaWithOptions(d.sdl, pgschema.BuildOptions{SkipConsistencyCheck: d.skip})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := pgschema.CheckType(s, d.query, pgschema.SatOptions{})
				if rep.Verdict != pgschema.Unsatisfiable {
					b.Fatalf("diagram (%s): got %s", d.name, rep.Verdict)
				}
			}
		})
	}
}

// BenchmarkE4Reduction measures the Theorem 2 pipeline: reduce a random
// 3-CNF formula to a schema and decide the distinguished type's
// satisfiability with the bounded finite-model search (reduction schemas
// have witnesses with ≤ 1 + #clauses nodes, so the bound is exact).
func BenchmarkE4Reduction(b *testing.B) {
	for _, m := range []int{4, 5, 6} {
		b.Run(fmt.Sprintf("clauses=%d", m), func(b *testing.B) {
			f := cnf.Random3SAT(3, m, 7)
			want, _ := cnf.Solve(f)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				red, err := reduction.FromCNF(f)
				if err != nil {
					b.Fatal(err)
				}
				// Reduction witnesses have exactly 1+m nodes.
				_, got := sat.BoundedSearch(red.Schema, reduction.ObjectTypeName, 1+m)
				if got != (want != nil) {
					b.Fatal("reduction disagreement")
				}
			}
		})
	}
}

// BenchmarkE5Tableau measures the ALCQI reasoner on schema translations
// of increasing structural depth (required-edge chains with functional
// back edges), the shape Theorem 3's PSPACE argument targets.
func BenchmarkE5Tableau(b *testing.B) {
	for _, depth := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("chainDepth=%d", depth), func(b *testing.B) {
			sdl := chainSchema(depth)
			s, err := pgschema.ParseSchema(sdl)
			if err != nil {
				b.Fatal(err)
			}
			tbox := sat.Translate(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := &dl.Reasoner{}
				ok, err := r.Satisfiable(dl.Atom{Name: "T0"}, tbox)
				if err != nil || !ok {
					b.Fatalf("chain depth %d: ok=%v err=%v", depth, ok, err)
				}
			}
		})
	}
}

// chainSchema builds T0 → T1 → … → Tn with required edges.
func chainSchema(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += fmt.Sprintf("type T%d { next: T%d! @required }\n", i, i+1)
	}
	out += fmt.Sprintf("type T%d { done: Boolean }\n", n)
	return out
}

// BenchmarkE7PerRuleCost times each satisfaction rule separately on the
// same graph — the paper's §6.1 remark that no rule needs more than two
// nested quantifiers predicts the per-rule costs stay low-degree.
func BenchmarkE7PerRuleCost(b *testing.B) {
	s, g := benchGraph(b, 2000)
	for _, rule := range validate.AllRules {
		b.Run(string(rule), func(b *testing.B) {
			opts := pgschema.ValidateOptions{Rules: []pgschema.Rule{rule}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pgschema.ValidateGraph(s, g, opts)
			}
		})
	}
}

// BenchmarkAblationIndexes compares the indexed implementations of the
// pair-quantified rules (WS4, DS1, DS3) against the textbook O(|E|²) pair
// scans from the definitions.
func BenchmarkAblationIndexes(b *testing.B) {
	s, g := benchGraph(b, 1000)
	rules := []pgschema.Rule{validate.WS4, validate.DS3}
	for _, naive := range []bool{false, true} {
		name := "indexed"
		if naive {
			name = "naive-pair-scan"
		}
		b.Run(name, func(b *testing.B) {
			opts := pgschema.ValidateOptions{Rules: rules, NaivePairScan: naive}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pgschema.ValidateGraph(s, g, opts)
			}
		})
	}
}

// BenchmarkAblationFused compares the fused single-pass engine against
// the rule-by-rule engine and the naive pair scans across graph sizes
// (strong mode, sequential). The naive configuration is O(|E|²), so it
// only runs at the smallest size.
func BenchmarkAblationFused(b *testing.B) {
	engines := []struct {
		name string
		opts pgschema.ValidateOptions
	}{
		{"fused", pgschema.ValidateOptions{Engine: pgschema.EngineFused}},
		{"rule-by-rule", pgschema.ValidateOptions{Engine: pgschema.EngineRuleByRule}},
		{"naive-pair-scan", pgschema.ValidateOptions{NaivePairScan: true}},
	}
	for _, n := range []int{300, 1000, 5000} {
		s, g := benchGraph(b, n)
		for _, e := range engines {
			if e.opts.NaivePairScan && n > 300 {
				continue
			}
			b.Run(fmt.Sprintf("nodesPerType=%d/%s", n, e.name), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := pgschema.ValidateGraph(s, g, e.opts)
					if !res.OK() {
						b.Fatal("generated graph invalid")
					}
				}
				b.ReportMetric(float64(g.NumNodes()+g.NumEdges()), "graph-elems")
			})
		}
	}
}

// BenchmarkCompiledReuse measures the payoff of cross-run schema
// compilation: repeated strong validation of an unchanged graph with a
// precompiled program (symbol tables and graph binding reused across
// iterations) against compile-on-the-fly fused runs and the
// rule-by-rule engine. This is the serving-loop shape: the server
// compiles once at graph load and answers every /validate request from
// the same program.
func BenchmarkCompiledReuse(b *testing.B) {
	for _, n := range []int{300, 1000, 5000} {
		s, g := benchGraph(b, n)
		prog := pgschema.CompileValidation(s)
		engines := []struct {
			name string
			opts pgschema.ValidateOptions
		}{
			{"compiled", pgschema.ValidateOptions{Engine: pgschema.EngineFused, Program: prog}},
			{"per-run-compile", pgschema.ValidateOptions{Engine: pgschema.EngineFused}},
			{"rule-by-rule", pgschema.ValidateOptions{Engine: pgschema.EngineRuleByRule}},
		}
		for _, e := range engines {
			b.Run(fmt.Sprintf("nodesPerType=%d/%s", n, e.name), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := pgschema.ValidateGraph(s, g, e.opts)
					if !res.OK() {
						b.Fatal("generated graph invalid")
					}
				}
				b.ReportMetric(float64(g.NumNodes()+g.NumEdges()), "graph-elems")
			})
		}
	}
}

// BenchmarkAblationSatPortfolio measures each satisfiability procedure in
// isolation on Example 6.1(a) (all three can decide it) — motivating the
// portfolio order counting → tableau → bounded.
func BenchmarkAblationSatPortfolio(b *testing.B) {
	sdl := `
		type OT1 { }
		interface IT { hasOT1: OT1 @uniqueForTarget }
		type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
		type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }`
	s, err := pgschema.ParseSchemaWithOptions(sdl, pgschema.BuildOptions{SkipConsistencyCheck: true})
	if err != nil {
		b.Fatal(err)
	}
	stages := []struct {
		name string
		opts pgschema.SatOptions
	}{
		{"counting-only", pgschema.SatOptions{SkipTableau: true, SkipBounded: true}},
		{"tableau-only", pgschema.SatOptions{SkipCounting: true, SkipBounded: true}},
		{"portfolio", pgschema.SatOptions{}},
	}
	for _, st := range stages {
		b.Run(st.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := pgschema.CheckType(s, "OT1", st.opts)
				if rep.Verdict != pgschema.Unsatisfiable {
					b.Fatalf("got %s", rep.Verdict)
				}
			}
		})
	}
}

// BenchmarkAblationIncremental compares full revalidation against the
// incremental engine after a single point mutation on a large graph.
func BenchmarkAblationIncremental(b *testing.B) {
	s, g := benchGraph(b, 5000)
	base := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
	authors := g.NodesLabeled("Author")
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := authors[i%len(authors)]
			g.SetNodeProp(a, "name", pgschema.String(fmt.Sprintf("renamed-%d", i)))
			res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
			base = res
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := authors[i%len(authors)]
			g.SetNodeProp(a, "name", pgschema.String(fmt.Sprintf("renamed-%d", i)))
			base = pgschema.Revalidate(context.Background(), s, g, base, pgschema.Delta{Nodes: []pgschema.NodeID{a}}, pgschema.ValidateOptions{})
		}
	})
	_ = base
}

// BenchmarkQueryExecution measures GraphQL traversal over a generated
// graph: a keyed lookup with a two-hop expansion, and a full listing.
func BenchmarkQueryExecution(b *testing.B) {
	s, g := benchGraph(b, 1000)
	authors := g.NodesLabeled("Author")
	name, _ := g.NodeProp(authors[0], "name")
	lookup := fmt.Sprintf(`{ author(name: %q) { name favoriteBook { title author { name } } } }`, name.AsString())
	b.Run("lookup-2hop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pgschema.ExecuteQuery(s, g, lookup); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("list-1000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pgschema.ExecuteQuery(s, g, `{ allAuthors { name } }`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryEngine — E12: compiled plans against the tree-walking
// executor over a ~10⁶-element graph. The cold arm pays parse + compile
// every iteration (a plan-cache miss); the cached arm reuses the plan
// and its epoch-keyed graph binding (a hit on an unchanged graph) —
// the steady state of a server answering a repeated query. The lookup
// case is where compilation pays most: the interpretive engine resolves
// `author(name: …)` by scanning every Author node, the bound plan
// answers from its key-bucket index. `make bench-query` captures this
// into BENCH_query.json.
func BenchmarkQueryEngine(b *testing.B) {
	s, g := benchGraph(b, 143_000)
	elems := g.NumNodes() + g.NumEdges()
	authors := g.NodesLabeled("Author")
	name, _ := g.NodeProp(authors[len(authors)/2], "name")
	lookup := fmt.Sprintf(`{ author(name: %q) { name favoriteBook { title } relatedAuthor { name } } }`, name.AsString())
	scan := `{ allAuthors { name } }`
	for _, q := range []struct{ kind, src string }{
		{"lookup-traverse", lookup},
		{"scan-all", scan},
	} {
		doc, err := pgschema.ParseQuery(q.src)
		if err != nil {
			b.Fatal(err)
		}
		warm := pgschema.CompileQuery(s, doc)
		if _, err := warm.Execute(context.Background(), g, ""); err != nil {
			b.Fatal(err)
		}
		b.Run(q.kind+"/interpretive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pgschema.ExecuteQuery(s, g, q.src); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(elems), "graph-elems")
		})
		b.Run(q.kind+"/compiled-cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				doc, err := pgschema.ParseQuery(q.src)
				if err != nil {
					b.Fatal(err)
				}
				plan := pgschema.CompileQuery(s, doc)
				if _, err := plan.Execute(context.Background(), g, ""); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(elems), "graph-elems")
		})
		b.Run(q.kind+"/compiled-cached", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := warm.Execute(context.Background(), g, ""); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(elems), "graph-elems")
		})
	}
}

// BenchmarkSchemaBuild measures the front half of the pipeline: lexing,
// parsing, and building the formal schema with consistency checking.
func BenchmarkSchemaBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pgschema.ParseSchema(benchSchema); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures conformant graph generation.
func BenchmarkGenerate(b *testing.B) {
	s, err := pgschema.ParseSchema(benchSchema)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pgschema.GenerateConformant(s, pgschema.GenConfig{Seed: int64(i), NodesPerType: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScale is the million-element scaling experiment: strong
// validation with the compiled fused engine at ~10⁵ and ~10⁶ graph
// elements, sequential and work-stealing parallel at 2/4/8 workers.
// benchSchema graphs carry ~7 elements per nodes-per-type unit, so
// 15000 and 143000 land close to the two targets. `make bench-scale`
// captures this into BENCH_scale.json.
func BenchmarkScale(b *testing.B) {
	for _, n := range []int{15_000, 143_000} {
		s, g := benchGraph(b, n)
		prog := pgschema.CompileValidation(s)
		elems := g.NumNodes() + g.NumEdges()
		// Warm the program binding and columnar snapshot so their one-time
		// construction is not billed to whichever config runs first.
		pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{Engine: pgschema.EngineFused, Program: prog})
		for _, workers := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("elems=%d/workers=%d", elems, workers)
			b.Run(name, func(b *testing.B) {
				opts := pgschema.ValidateOptions{
					Engine:          pgschema.EngineFused,
					Program:         prog,
					Workers:         workers,
					ElementSharding: workers > 1,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := pgschema.ValidateGraph(s, g, opts)
					if !res.OK() {
						b.Fatal("generated graph invalid")
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(elems), "graph-elems")
				mps := float64(elems) * float64(b.N) / b.Elapsed().Seconds() / 1e6
				b.ReportMetric(mps, "Melems/s")
				// Scaling context: throughput per worker is the efficiency
				// denominator (flat Melems/s/worker across configs = linear
				// scaling; on a one-core box it halves per doubling), and
				// cores/GOMAXPROCS record what the box could possibly give.
				b.ReportMetric(mps/float64(workers), "Melems/s/worker")
				b.ReportMetric(float64(runtime.NumCPU()), "cores")
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
				if workers > 1 {
					// One untimed telemetry run: steals and measured parallel
					// efficiency from the scheduler itself.
					tOpts := opts
					tOpts.SchedStats = true
					if sres := pgschema.ValidateGraph(s, g, tOpts); sres.Sched != nil {
						b.ReportMetric(float64(sres.Sched.Steals), "steals")
						b.ReportMetric(sres.Sched.Efficiency(), "sched-efficiency")
					}
				}
			})
		}
	}
}

// BenchmarkLoadCSV measures the parallel chunked CSV ingestion pipeline
// (bufio + csv.ReuseRecord + batched parse workers). SetBytes reports
// loader throughput in MB/s of raw CSV.
func BenchmarkLoadCSV(b *testing.B) {
	for _, n := range []int{1000, 10_000} {
		b.Run(fmt.Sprintf("nodesPerType=%d", n), func(b *testing.B) {
			_, g := benchGraph(b, n)
			var nodes, edges bytes.Buffer
			if err := g.WriteCSV(&nodes, &edges); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(nodes.Len() + edges.Len()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loaded, err := pgschema.ReadGraphCSV(bytes.NewReader(nodes.Bytes()), bytes.NewReader(edges.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
					b.Fatalf("round trip lost elements: %d/%d nodes, %d/%d edges",
						loaded.NumNodes(), g.NumNodes(), loaded.NumEdges(), g.NumEdges())
				}
			}
		})
	}
}

// BenchmarkIngest — E11: the streaming columnar loader against the
// map-shaped two-phase loader, with and without the fused first
// validation pass, at ~10⁵ and ~10⁶ elements. SetBytes reports raw CSV
// MB/s; Melems/s is graph elements materialized (and, in the +validate
// arms, validated) per second. `make bench-ingest` captures this into
// BENCH_ingest.json.
func BenchmarkIngest(b *testing.B) {
	for _, n := range []int{15_000, 143_000} {
		s, g := benchGraph(b, n)
		var nodes, edges bytes.Buffer
		if err := g.WriteCSV(&nodes, &edges); err != nil {
			b.Fatal(err)
		}
		wantNodes, wantEdges := g.NumNodes(), g.NumEdges()
		elems := wantNodes + wantEdges
		csvBytes := int64(nodes.Len() + edges.Len())
		prog := pgschema.CompileValidation(s)
		// Drop the generated graph: ingest is a one-shot operation (CLI
		// run, server startup) where nothing else is live, and holding
		// hundreds of MB here would inflate the GC pacing target and
		// subsidize whichever arm allocates most.
		g = nil

		// Start every iteration from a collected heap with freed spans
		// returned to the OS, the state a one-shot process starts in:
		// without this, pages faulted in by one arm are reused warm by
		// whichever arm runs next, and the numbers depend on benchmark
		// order instead of on the loaders.
		gcFresh := func(b *testing.B) {
			b.StopTimer()
			debug.FreeOSMemory()
			b.StartTimer()
		}

		check := func(b *testing.B, loaded *pgschema.Graph) {
			b.Helper()
			if loaded.NumNodes() != wantNodes || loaded.NumEdges() != wantEdges {
				b.Fatalf("round trip lost elements: %d/%d nodes, %d/%d edges",
					loaded.NumNodes(), wantNodes, loaded.NumEdges(), wantEdges)
			}
		}
		perSec := func(b *testing.B) {
			b.ReportMetric(float64(elems)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Melems/s")
		}

		b.Run(fmt.Sprintf("elems=%d/load=readcsv", elems), func(b *testing.B) {
			b.SetBytes(csvBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gcFresh(b)
				loaded, err := pgschema.ReadGraphCSV(bytes.NewReader(nodes.Bytes()), bytes.NewReader(edges.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				check(b, loaded)
			}
			perSec(b)
		})
		b.Run(fmt.Sprintf("elems=%d/load=stream", elems), func(b *testing.B) {
			b.SetBytes(csvBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gcFresh(b)
				loaded, err := pgschema.ReadGraphCSVStream(context.Background(),
					bytes.NewReader(nodes.Bytes()), bytes.NewReader(edges.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				check(b, loaded)
			}
			perSec(b)
		})
		b.Run(fmt.Sprintf("elems=%d/validate=two-phase", elems), func(b *testing.B) {
			b.SetBytes(csvBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gcFresh(b)
				loaded, err := pgschema.ReadGraphCSV(bytes.NewReader(nodes.Bytes()), bytes.NewReader(edges.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				res := pgschema.ValidateGraph(s, loaded, pgschema.ValidateOptions{Program: prog})
				if !res.OK() {
					b.Fatal("generated graph invalid")
				}
			}
			perSec(b)
		})
		b.Run(fmt.Sprintf("elems=%d/validate=on-ingest", elems), func(b *testing.B) {
			b.SetBytes(csvBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gcFresh(b)
				res, loaded, err := pgschema.ValidateCSVStream(context.Background(), s,
					bytes.NewReader(nodes.Bytes()), bytes.NewReader(edges.Bytes()),
					pgschema.ValidateOptions{Program: prog})
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatal("generated graph invalid")
				}
				check(b, loaded)
			}
			perSec(b)
		})
	}
}

func mustParseB(b *testing.B, sdl string) *pgschema.Schema {
	b.Helper()
	s, err := pgschema.ParseSchema(sdl)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkIncremental — E10: delta-aware incremental revalidation on
// the compiled fused path against full revalidation, at ~0.1% and ~1%
// deltas over a ~10⁶-element graph. Each iteration is a transactional
// round trip — Apply(delta) → validate → Undo — so the graph returns to
// its seed state and the cached full result stays a valid prev
// throughout; the incremental arm also exercises the cross-epoch
// binding rebind and snapshot patching the mutation path installs.
func BenchmarkIncremental(b *testing.B) {
	s, g := benchGraph(b, 143_000)
	prog := pgschema.CompileValidation(s)
	opts := pgschema.ValidateOptions{Engine: pgschema.EngineFused, Program: prog}
	base := pgschema.ValidateGraph(s, g, opts)
	if !base.OK() {
		b.Fatal("seed graph invalid")
	}
	elems := g.NumNodes() + g.NumEdges()
	books := g.NodesLabeled("Book")
	ctx := context.Background()
	for _, frac := range []struct {
		name string
		div  int
	}{{"delta=0.1%", 1000}, {"delta=1%", 100}} {
		n := elems / frac.div
		if n > len(books) {
			n = len(books)
		}
		specs := make([]pgschema.NodePropSpec, n)
		for i := range specs {
			specs[i] = pgschema.NodePropSpec{
				Node: books[i*len(books)/n], Name: "pages", Value: pgschema.Int(int64(i)),
			}
		}
		delta := pgschema.GraphDelta{SetNodeProps: specs}
		// Only validation is timed: the Apply/Undo bookends are the same
		// mutation cost in both arms and would otherwise drown the
		// revalidation difference being measured.
		run := func(b *testing.B, incremental bool) {
			b.Helper()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				u, err := g.Apply(delta)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var res *pgschema.ValidationResult
				if incremental {
					res = pgschema.Revalidate(ctx, s, g, base, pgschema.DeltaFor(u.Touched()), opts)
				} else {
					res = pgschema.ValidateGraph(s, g, opts)
				}
				b.StopTimer()
				if !res.OK() {
					b.Fatal("unexpected violations")
				}
				if err := u.Undo(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(n), "delta-elems")
			b.ReportMetric(float64(elems), "graph-elems")
		}
		b.Run(frac.name+"/full", func(b *testing.B) { run(b, false) })
		b.Run(frac.name+"/incremental", func(b *testing.B) { run(b, true) })
	}
}

// BenchmarkSnapshot — E14: durable zero-copy snapshots. The arms
// compare cold-start routes into a queryable, validatable graph:
//
//	save           WriteGraphSnapshot throughput (columns → file image)
//	open           OpenGraphSnapshot: mmap + O(header+symbols) checks
//	open-verified  the same under full checksum + structure verification
//	load=stream    the CSV streaming loader (the prior fastest cold start)
//	validate=mapped-cold  open + bind + first full strong validation
//	validate=mapped       steady-state validation over mapped columns
//	validate=heap         steady-state validation over the heap graph
//
// The tentpole claim is open vs load=stream (open cost independent of
// element count) and validate=mapped staying within a few percent of
// validate=heap (record-backed accessors instead of []Prop, same
// kernels); validate=mapped-cold is the restart-to-first-answer cost.
func BenchmarkSnapshot(b *testing.B) {
	for _, n := range []int{15_000, 143_000} {
		s, g := benchGraph(b, n)
		elems := g.NumNodes() + g.NumEdges()
		var nodes, edges bytes.Buffer
		if err := g.WriteCSV(&nodes, &edges); err != nil {
			b.Fatal(err)
		}
		dir := b.TempDir()
		path := filepath.Join(dir, "bench.pgsnap")
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := pgschema.WriteGraphSnapshot(f, g); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		snapBytes := st.Size()
		prog := pgschema.CompileValidation(s)
		gcFresh := func(b *testing.B) {
			b.StopTimer()
			debug.FreeOSMemory()
			b.StartTimer()
		}

		b.Run(fmt.Sprintf("elems=%d/save", elems), func(b *testing.B) {
			b.SetBytes(snapBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pgschema.WriteGraphSnapshot(io.Discard, g); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("elems=%d/open", elems), func(b *testing.B) {
			b.SetBytes(snapBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gcFresh(b)
				mg, err := pgschema.OpenGraphSnapshot(path)
				if err != nil {
					b.Fatal(err)
				}
				if mg.NumNodes() != g.NumNodes() {
					b.Fatal("open lost nodes")
				}
				mg.Close()
			}
		})
		b.Run(fmt.Sprintf("elems=%d/open-verified", elems), func(b *testing.B) {
			b.SetBytes(snapBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gcFresh(b)
				mg, err := pgschema.OpenGraphSnapshot(path, pgschema.VerifySnapshot())
				if err != nil {
					b.Fatal(err)
				}
				mg.Close()
			}
		})
		b.Run(fmt.Sprintf("elems=%d/load=stream", elems), func(b *testing.B) {
			b.SetBytes(int64(nodes.Len() + edges.Len()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gcFresh(b)
				loaded, err := pgschema.ReadGraphCSVStream(context.Background(),
					bytes.NewReader(nodes.Bytes()), bytes.NewReader(edges.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				if loaded.NumNodes() != g.NumNodes() {
					b.Fatal("load lost nodes")
				}
			}
		})
		// Restart-to-validated: open + program binding + first full
		// validation, fresh per iteration — every column byte is paged
		// in through the validation kernels themselves and the binding
		// (per-type enumerations) is rebuilt, exactly what a restarted
		// server pays before its first answer.
		b.Run(fmt.Sprintf("elems=%d/validate=mapped-cold", elems), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gcFresh(b)
				mg, err := pgschema.OpenGraphSnapshot(path)
				if err != nil {
					b.Fatal(err)
				}
				res := pgschema.ValidateGraph(s, mg, pgschema.ValidateOptions{Program: prog})
				if !res.OK() {
					b.Fatal("generated graph invalid")
				}
				mg.Close()
			}
		})
		// Steady state over the mapped columns (graph opened once,
		// binding cached) — the like-for-like comparison against
		// validate=heap isolating the record-backed property accessors.
		b.Run(fmt.Sprintf("elems=%d/validate=mapped", elems), func(b *testing.B) {
			mg, err := pgschema.OpenGraphSnapshot(path)
			if err != nil {
				b.Fatal(err)
			}
			defer mg.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gcFresh(b)
				res := pgschema.ValidateGraph(s, mg, pgschema.ValidateOptions{Program: prog})
				if !res.OK() {
					b.Fatal("generated graph invalid")
				}
			}
		})
		b.Run(fmt.Sprintf("elems=%d/validate=heap", elems), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gcFresh(b)
				res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{Program: prog})
				if !res.OK() {
					b.Fatal("generated graph invalid")
				}
			}
		})
	}
}
