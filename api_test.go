package pgschema_test

// api_test exercises every function of the public facade end to end.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"pgschema"
)

const facadeSDL = `
type User @key(fields: ["id"]) {
	id: ID! @required
	login: String! @required
	follows(since: Int): [User] @distinct @noLoops
}`

func TestFacadeRoundTrip(t *testing.T) {
	// FormatSchema.
	formatted, err := pgschema.FormatSchema(facadeSDL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(formatted, "type User") {
		t.Errorf("FormatSchema:\n%s", formatted)
	}

	// ParseSchema on the formatted output (round trip).
	s, err := pgschema.ParseSchema(formatted)
	if err != nil {
		t.Fatal(err)
	}

	// GenerateConformant + ValidateGraph.
	g, err := pgschema.GenerateConformant(s, pgschema.GenConfig{Seed: 1, NodesPerType: 8})
	if err != nil {
		t.Fatal(err)
	}
	res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
	if !res.OK() {
		t.Fatalf("generated graph invalid: %v", res.Violations)
	}

	// JSON round trip through the facade readers.
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := pgschema.ReadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() {
		t.Errorf("JSON round trip: %d vs %d nodes", back.NumNodes(), g.NumNodes())
	}

	// CSV round trip.
	var nodes, edges bytes.Buffer
	if err := g.WriteCSV(&nodes, &edges); err != nil {
		t.Fatal(err)
	}
	back2, err := pgschema.ReadGraphCSV(&nodes, &edges)
	if err != nil {
		t.Fatal(err)
	}
	if back2.NumEdges() != g.NumEdges() {
		t.Errorf("CSV round trip: %d vs %d edges", back2.NumEdges(), g.NumEdges())
	}

	// Incremental revalidation.
	u := g.NodesLabeled("User")[0]
	g.SetNodeProp(u, "login", pgschema.Int(3)) // WS1
	res2 := pgschema.Revalidate(context.Background(), s, g, res, pgschema.Delta{Nodes: []pgschema.NodeID{u}}, pgschema.ValidateOptions{})
	if res2.OK() || res2.Violations[0].Rule != "WS1" {
		t.Errorf("Revalidate: %v", res2.Violations)
	}
	g.SetNodeProp(u, "login", pgschema.String("fixed"))
	res3 := pgschema.Revalidate(context.Background(), s, g, res2, pgschema.Delta{Nodes: []pgschema.NodeID{u}}, pgschema.ValidateOptions{})
	if !res3.OK() {
		t.Errorf("Revalidate after fix: %v", res3.Violations)
	}

	// Satisfiability.
	rep := pgschema.CheckType(s, "User", pgschema.SatOptions{})
	if rep.Verdict != pgschema.Satisfiable {
		t.Errorf("CheckType: %s", rep.Verdict)
	}
	repF := pgschema.CheckField(s, "User", "follows", pgschema.SatOptions{})
	if repF.Verdict != pgschema.Satisfiable {
		t.Errorf("CheckField: %s (%s)", repF.Verdict, repF.Detail)
	}

	// API extension + query execution.
	api, err := pgschema.ExtendToAPISchema(s, pgschema.APIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(api, "allUsers") {
		t.Errorf("API schema:\n%s", api)
	}
	out, err := pgschema.ExecuteQuery(s, g, `{ allUsers { __typename } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out["allUsers"].([]any)) != g.NumNodes() {
		t.Errorf("query result: %v", out)
	}
}

func TestFacadeValueConstructors(t *testing.T) {
	vals := []pgschema.Value{
		pgschema.Null, pgschema.Int(1), pgschema.Float(2.5), pgschema.String("s"),
		pgschema.Boolean(true), pgschema.ID("i"), pgschema.Enum("E"),
		pgschema.List(pgschema.Int(1)),
	}
	if !vals[0].IsNull() {
		t.Error("Null")
	}
	if vals[7].Len() != 1 {
		t.Error("List")
	}
}

func TestFacadeParseErrors(t *testing.T) {
	if _, err := pgschema.ParseSchema("type {"); err == nil {
		t.Error("bad SDL accepted")
	}
	if _, err := pgschema.FormatSchema("¤"); err == nil {
		t.Error("bad SDL formatted")
	}
	if _, err := pgschema.ParseSchemaWithOptions(`type T { f: Ghost }`, pgschema.BuildOptions{}); err == nil {
		t.Error("undeclared reference accepted")
	}
	if _, err := pgschema.ReadGraphJSON(strings.NewReader("nope")); err == nil {
		t.Error("bad graph JSON accepted")
	}
}

func TestFacadeHTTPHandler(t *testing.T) {
	s, err := pgschema.ParseSchema(facadeSDL)
	if err != nil {
		t.Fatal(err)
	}
	g, err := pgschema.GenerateConformant(s, pgschema.GenConfig{Seed: 1, NodesPerType: 4})
	if err != nil {
		t.Fatal(err)
	}
	h, err := pgschema.NewHTTPHandler(s, g, pgschema.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/validate", strings.NewReader("{}")))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ok": true`) {
		t.Errorf("POST /validate: %d\n%s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "pgschema_validation_runs_total 1") {
		t.Errorf("GET /metrics: %d\n%s", rec.Code, rec.Body.String())
	}
}
