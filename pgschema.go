// Package pgschema is a complete implementation of "Defining Schemas for
// Property Graphs by using the GraphQL Schema Definition Language"
// (Hartig and Hidders, GRADES-NDA 2019).
//
// The package repurposes the GraphQL SDL (June 2018 edition) as a schema
// language for Property Graphs: object types name node labels, attribute
// fields declare node properties, relationship fields declare outgoing
// edges, field arguments declare edge properties, and six directives
// (@required, @key, @distinct, @noLoops, @uniqueForTarget,
// @requiredForTarget) express the paper's constraint repertoire.
//
// Three capabilities are exposed:
//
//   - ParseSchema compiles SDL text into the paper's formal schema
//     (Definition 4.1), verifying interface and directives consistency
//     (Definitions 4.3–4.5);
//   - ValidateGraph decides strong/weak/directives satisfaction
//     (Definitions 5.1–5.3) of a Property Graph, reporting every
//     violation with its rule (WS1–WS4, DS1–DS7, SS1–SS4);
//   - CheckType decides object-type satisfiability (§6.2) with a
//     three-stage portfolio (counting, ALCQI tableau, bounded
//     finite-model search) and produces witness graphs.
//
// The subsystems live in internal packages and are re-exported here as
// type aliases, so this package is the entire public surface.
package pgschema

import (
	"io"
	"net/http"

	"pgschema/internal/apigen"
	"pgschema/internal/gen"
	"pgschema/internal/parser"
	"pgschema/internal/pg"
	"pgschema/internal/printer"
	"pgschema/internal/query"
	"pgschema/internal/sat"
	"pgschema/internal/schema"
	"pgschema/internal/server"
	"pgschema/internal/validate"
	"pgschema/internal/values"
)

// Schema is the formal GraphQL schema of Definition 4.1.
type Schema = schema.Schema

// TypeDef is a named type with its fields and directives.
type TypeDef = schema.TypeDef

// FieldDef is a field definition with its type and arguments.
type FieldDef = schema.FieldDef

// TypeRef is a possibly wrapped type reference (t, t!, [t], [t!], [t]!,
// [t!]!).
type TypeRef = schema.TypeRef

// BuildOptions configures ParseSchema.
type BuildOptions = schema.Options

// Graph is a Property Graph (V, E, ρ, λ, σ) per Definition 2.1.
type Graph = pg.Graph

// NodeID identifies a node in a Graph.
type NodeID = pg.NodeID

// EdgeID identifies an edge in a Graph.
type EdgeID = pg.EdgeID

// Value is a property value: a scalar, an enum value, a list, or null.
type Value = values.Value

// Violation is one failed rule instance from a validation run.
type Violation = validate.Violation

// Rule identifies a satisfaction rule (WS1–WS4, DS1–DS7, SS1–SS4).
type Rule = validate.Rule

// ValidationResult is the outcome of ValidateGraph.
type ValidationResult = validate.Result

// ValidateOptions configures ValidateGraph.
type ValidateOptions = validate.Options

// ValidationProgram is a schema compiled for repeated validation: symbol
// tables, per-label field classifications, and directive obligations are
// precomputed once and reused across runs via ValidateOptions.Program.
type ValidationProgram = validate.Program

// ProgramStats summarizes a compiled ValidationProgram.
type ProgramStats = validate.ProgramStats

// ValidationEngine selects the evaluation strategy of ValidateGraph.
type ValidationEngine = validate.Engine

// SatReport is the outcome of CheckType / CheckField.
type SatReport = sat.Report

// SatOptions configures CheckType / CheckField.
type SatOptions = sat.Options

// GenConfig configures GenerateConformant.
type GenConfig = gen.Config

// Validation modes (which satisfaction notion ValidateGraph checks).
const (
	Strong     = validate.Strong
	Weak       = validate.Weak
	Directives = validate.Directives
)

// Validation engines (the evaluation strategy ValidateGraph uses).
// EngineAuto — the default — resolves to the fused engine, which makes
// one pass over the nodes and one over the edges; EngineRuleByRule runs
// the definitional one-sweep-per-rule shape. Both produce the identical
// violation set (proven by the differential harness in internal/validate).
const (
	EngineAuto       = validate.EngineAuto
	EngineRuleByRule = validate.EngineRuleByRule
	EngineFused      = validate.EngineFused
)

// Satisfiability verdicts.
const (
	Satisfiable   = sat.Satisfiable
	Unsatisfiable = sat.Unsatisfiable
	Unknown       = sat.Unknown
)

// Value constructors.
var (
	// Null is the distinguished null value.
	Null = values.Null
)

// Int returns an integer property value.
func Int(v int64) Value { return values.Int(v) }

// Float returns a floating-point property value.
func Float(v float64) Value { return values.Float(v) }

// String returns a string property value.
func String(v string) Value { return values.String(v) }

// Boolean returns a boolean property value.
func Boolean(v bool) Value { return values.Boolean(v) }

// ID returns an identifier property value.
func ID(v string) Value { return values.ID(v) }

// Enum returns an enum property value.
func Enum(name string) Value { return values.Enum(name) }

// List returns a list property value.
func List(elems ...Value) Value { return values.List(elems...) }

// ParseSchema parses SDL source text and builds a consistent schema.
func ParseSchema(src string) (*Schema, error) {
	return ParseSchemaWithOptions(src, BuildOptions{})
}

// ParseSchemaWithOptions parses SDL source with explicit build options
// (e.g. ignoring unknown directives, or skipping the consistency check).
func ParseSchemaWithOptions(src string, opts BuildOptions) (*Schema, error) {
	doc, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return schema.Build(doc, opts)
}

// FormatSchema parses SDL source and renders it canonically.
func FormatSchema(src string) (string, error) {
	doc, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	return printer.Print(doc), nil
}

// NewGraph returns an empty Property Graph.
func NewGraph() *Graph { return pg.New() }

// ReadGraphJSON loads a Property Graph from its JSON interchange form.
func ReadGraphJSON(r io.Reader) (*Graph, error) { return pg.ReadJSON(r) }

// ReadGraphCSV loads a Property Graph from nodes/edges CSV streams.
func ReadGraphCSV(nodes, edges io.Reader) (*Graph, error) { return pg.ReadCSV(nodes, edges) }

// ValidateGraph checks the satisfaction notion selected in opts (strong
// satisfaction by default) and returns all violations.
func ValidateGraph(s *Schema, g *Graph, opts ValidateOptions) *ValidationResult {
	return validate.Validate(s, g, opts)
}

// CompileValidation compiles the schema into a ValidationProgram. Callers
// that validate repeatedly — servers, watch loops, benchmark harnesses —
// compile once and pass the program in ValidateOptions.Program; one-shot
// callers can skip this (ValidateGraph compiles on the fly).
func CompileValidation(s *Schema) *ValidationProgram {
	return validate.Compile(s)
}

// Delta describes a graph mutation batch for incremental revalidation.
type Delta = validate.Delta

// Revalidate updates a previous strong-validation result after a mutation
// without re-checking the whole graph; the result equals what a full
// ValidateGraph would produce.
func Revalidate(s *Schema, g *Graph, prev *ValidationResult, delta Delta) *ValidationResult {
	return validate.Revalidate(s, g, prev, delta)
}

// RevalidateWithOptions is Revalidate with run options; only
// ValidateOptions.Program is consulted (see validate.RevalidateWithOptions).
func RevalidateWithOptions(s *Schema, g *Graph, prev *ValidationResult, delta Delta, opts ValidateOptions) *ValidationResult {
	return validate.RevalidateWithOptions(s, g, prev, delta, opts)
}

// CheckType decides object-type satisfiability for the named type.
func CheckType(s *Schema, typeName string, opts SatOptions) SatReport {
	return sat.Check(s, typeName, opts)
}

// CheckField decides edge-definition satisfiability for (typeName,
// fieldName) per the closing remark of §6.2.
func CheckField(s *Schema, typeName, fieldName string, opts SatOptions) SatReport {
	return sat.CheckField(s, typeName, fieldName, opts)
}

// GenerateConformant generates a Property Graph that strongly satisfies
// the schema (for tests, demos, and benchmarks).
func GenerateConformant(s *Schema, cfg GenConfig) (*Graph, error) {
	return gen.Conformant(s, cfg)
}

// APIOptions configures ExtendToAPISchema.
type APIOptions = apigen.Options

// ExtendToAPISchema performs the §3.6 extension step: it turns a Property
// Graph schema into a GraphQL API schema by synthesizing a query root
// type and — unless disabled — inverse fields for bidirectional edge
// traversal, returning the result as SDL text.
func ExtendToAPISchema(s *Schema, opts APIOptions) (string, error) {
	return apigen.ExtendSDL(s, opts)
}

// ServerConfig configures NewHTTPHandler: per-request timeout,
// concurrency limit, body size cap, and access logging.
type ServerConfig = server.Config

// NewHTTPHandler returns an http.Handler serving the full HTTP surface
// over a schema and a hosted graph: POST /graphql (GraphQL queries per
// ExtendToAPISchema), GET /schema (the API SDL), POST /validate (a
// ValidateGraph run configured by the JSON body), POST /revalidate
// (incremental Revalidate from the last full strong run), GET /metrics
// (Prometheus text format), and GET /healthz. The handler includes
// panic recovery, per-request timeouts, and load shedding per cfg.
// The graph must not be mutated while requests are in flight.
func NewHTTPHandler(s *Schema, g *Graph, cfg ServerConfig) (http.Handler, error) {
	h, err := server.New(s, g, cfg)
	if err != nil {
		return nil, err
	}
	return h.Mux(), nil
}

// ExecuteQuery evaluates a GraphQL query directly against a Property
// Graph under the conventions of ExtendToAPISchema: root fields
// `all<Plural>` and `<type>(key: …)`, attribute/relationship fields,
// inverse `_<field>Of<Type>` traversal, fragments, and `__typename`.
// Relationship-field arguments filter traversal by edge-property
// equality. The result is a JSON-ready tree.
func ExecuteQuery(s *Schema, g *Graph, querySrc string) (map[string]any, error) {
	return query.ExecuteQuery(s, g, querySrc)
}
