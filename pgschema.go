// Package pgschema is a complete implementation of "Defining Schemas for
// Property Graphs by using the GraphQL Schema Definition Language"
// (Hartig and Hidders, GRADES-NDA 2019).
//
// The package repurposes the GraphQL SDL (June 2018 edition) as a schema
// language for Property Graphs: object types name node labels, attribute
// fields declare node properties, relationship fields declare outgoing
// edges, field arguments declare edge properties, and six directives
// (@required, @key, @distinct, @noLoops, @uniqueForTarget,
// @requiredForTarget) express the paper's constraint repertoire.
//
// Three capabilities are exposed:
//
//   - ParseSchema compiles SDL text into the paper's formal schema
//     (Definition 4.1), verifying interface and directives consistency
//     (Definitions 4.3–4.5);
//   - ValidateGraph decides strong/weak/directives satisfaction
//     (Definitions 5.1–5.3) of a Property Graph, reporting every
//     violation with its rule (WS1–WS4, DS1–DS7, SS1–SS4);
//   - CheckType decides object-type satisfiability (§6.2) with a
//     three-stage portfolio (counting, ALCQI tableau, bounded
//     finite-model search) and produces witness graphs.
//
// The subsystems live in internal packages and are re-exported here as
// type aliases, so this package is the entire public surface.
//
// # Mutation and incremental revalidation
//
// A hosted Graph is mutated transactionally: build a GraphDelta (node
// and edge additions, removals, relabels, and property edits), call
// Graph.Apply, and keep the returned Undo to roll the batch back. Apply
// is all-or-nothing — a rejected delta leaves the graph untouched — and
// bumps the graph's epoch, which invalidates cached snapshots and
// bindings. Revalidate then updates a previous validation result for
// the applied delta without re-checking the whole graph.
//
// # Migration: context-first validation API (v1 surface)
//
// The validation entry points now take a context.Context first, so
// server timeouts and client disconnects cancel in-flight work:
//
//   - Revalidate(ctx, s, g, prev, delta, opts) replaces both the old
//     Revalidate(s, g, prev, delta) and RevalidateWithOptions — pass
//     ValidateOptions{} for the old default behavior;
//   - ValidateGraphContext(ctx, s, g, opts) is ValidateGraph under a
//     context;
//   - CompileValidationContext(ctx, s) is CompileValidation under a
//     context.
//
// The pre-context forms (ValidateGraph, CompileValidation,
// RevalidateWithOptions) remain as thin wrappers over a background
// context; RevalidateWithOptions is deprecated in favour of Revalidate.
// A cancelled run returns a result with Incomplete set — such a result
// carries whatever violations were found, but must not seed a later
// Revalidate.
package pgschema

import (
	"context"
	"io"
	"net/http"

	"pgschema/internal/apigen"
	"pgschema/internal/gen"
	"pgschema/internal/parser"
	"pgschema/internal/pg"
	"pgschema/internal/printer"
	"pgschema/internal/query"
	"pgschema/internal/sat"
	"pgschema/internal/schema"
	"pgschema/internal/server"
	"pgschema/internal/validate"
	"pgschema/internal/values"
)

// Schema is the formal GraphQL schema of Definition 4.1.
type Schema = schema.Schema

// TypeDef is a named type with its fields and directives.
type TypeDef = schema.TypeDef

// FieldDef is a field definition with its type and arguments.
type FieldDef = schema.FieldDef

// TypeRef is a possibly wrapped type reference (t, t!, [t], [t!], [t]!,
// [t!]!).
type TypeRef = schema.TypeRef

// BuildOptions configures ParseSchema.
type BuildOptions = schema.Options

// Graph is a Property Graph (V, E, ρ, λ, σ) per Definition 2.1.
type Graph = pg.Graph

// NodeID identifies a node in a Graph.
type NodeID = pg.NodeID

// EdgeID identifies an edge in a Graph.
type EdgeID = pg.EdgeID

// Value is a property value: a scalar, an enum value, a list, or null.
type Value = values.Value

// Violation is one failed rule instance from a validation run.
type Violation = validate.Violation

// Rule identifies a satisfaction rule (WS1–WS4, DS1–DS7, SS1–SS4).
type Rule = validate.Rule

// ValidationResult is the outcome of ValidateGraph.
type ValidationResult = validate.Result

// ValidateOptions configures ValidateGraph.
type ValidateOptions = validate.Options

// ValidationProgram is a schema compiled for repeated validation: symbol
// tables, per-label field classifications, and directive obligations are
// precomputed once and reused across runs via ValidateOptions.Program.
type ValidationProgram = validate.Program

// ProgramStats summarizes a compiled ValidationProgram.
type ProgramStats = validate.ProgramStats

// ValidationEngine selects the evaluation strategy of ValidateGraph.
type ValidationEngine = validate.Engine

// SatReport is the outcome of CheckType / CheckField.
type SatReport = sat.Report

// SatOptions configures CheckType / CheckField.
type SatOptions = sat.Options

// GenConfig configures GenerateConformant.
type GenConfig = gen.Config

// Validation modes (which satisfaction notion ValidateGraph checks).
const (
	Strong     = validate.Strong
	Weak       = validate.Weak
	Directives = validate.Directives
)

// Validation engines (the evaluation strategy ValidateGraph uses).
// EngineAuto — the default — resolves to the fused engine, which makes
// one pass over the nodes and one over the edges; EngineRuleByRule runs
// the definitional one-sweep-per-rule shape. Both produce the identical
// violation set (proven by the differential harness in internal/validate).
const (
	EngineAuto       = validate.EngineAuto
	EngineRuleByRule = validate.EngineRuleByRule
	EngineFused      = validate.EngineFused
)

// Satisfiability verdicts.
const (
	Satisfiable   = sat.Satisfiable
	Unsatisfiable = sat.Unsatisfiable
	Unknown       = sat.Unknown
)

// Value constructors.
var (
	// Null is the distinguished null value.
	Null = values.Null
)

// Int returns an integer property value.
func Int(v int64) Value { return values.Int(v) }

// Float returns a floating-point property value.
func Float(v float64) Value { return values.Float(v) }

// String returns a string property value.
func String(v string) Value { return values.String(v) }

// Boolean returns a boolean property value.
func Boolean(v bool) Value { return values.Boolean(v) }

// ID returns an identifier property value.
func ID(v string) Value { return values.ID(v) }

// Enum returns an enum property value.
func Enum(name string) Value { return values.Enum(name) }

// List returns a list property value.
func List(elems ...Value) Value { return values.List(elems...) }

// ParseSchema parses SDL source text and builds a consistent schema.
func ParseSchema(src string) (*Schema, error) {
	return ParseSchemaWithOptions(src, BuildOptions{})
}

// ParseSchemaWithOptions parses SDL source with explicit build options
// (e.g. ignoring unknown directives, or skipping the consistency check).
func ParseSchemaWithOptions(src string, opts BuildOptions) (*Schema, error) {
	doc, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return schema.Build(doc, opts)
}

// FormatSchema parses SDL source and renders it canonically.
func FormatSchema(src string) (string, error) {
	doc, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	return printer.Print(doc), nil
}

// NewGraph returns an empty Property Graph.
func NewGraph() *Graph { return pg.New() }

// ReadGraphJSON loads a Property Graph from its JSON interchange form.
func ReadGraphJSON(r io.Reader) (*Graph, error) { return pg.ReadJSON(r) }

// ReadGraphCSV loads a Property Graph from nodes/edges CSV streams.
func ReadGraphCSV(nodes, edges io.Reader) (*Graph, error) { return pg.ReadCSV(nodes, edges) }

// ReadGraphCSVStream loads a Property Graph from nodes/edges CSV
// streams with the streaming columnar builder: rows are appended
// straight into the columnar snapshot form validation scans, so the
// loaded graph carries a pre-built snapshot and the first validation
// pass skips a full re-materialization. The result is observably
// identical to ReadGraphCSV; a cancelled ctx stops the load between
// row batches.
func ReadGraphCSVStream(ctx context.Context, nodes, edges io.Reader) (*Graph, error) {
	return pg.ReadCSVStreamContext(ctx, nodes, edges)
}

// ValidateCSVStream fuses loading and validation: the graph is streamed
// out of the nodes/edges CSV into sealed columns (schema compilation
// overlaps the load) and validated in the same materialization. It
// returns the validation result together with the loaded graph, and
// emits the byte-identical violation set to ReadGraphCSV followed by
// ValidateGraph with the same options.
func ValidateCSVStream(ctx context.Context, s *Schema, nodes, edges io.Reader, opts ValidateOptions) (*ValidationResult, *Graph, error) {
	return validate.ValidateStream(ctx, s, nodes, edges, opts)
}

// ValidateGraph checks the satisfaction notion selected in opts (strong
// satisfaction by default) and returns all violations.
//
// Deprecated: use ValidateGraphContext, which takes the run context
// first.
func ValidateGraph(s *Schema, g *Graph, opts ValidateOptions) *ValidationResult {
	return validate.Validate(s, g, opts)
}

// ValidateGraphContext is ValidateGraph under a context: cancellation is
// observed between work chunks, so a cancelled context stops the run
// before the next chunk starts and the returned result has Incomplete
// set.
func ValidateGraphContext(ctx context.Context, s *Schema, g *Graph, opts ValidateOptions) *ValidationResult {
	return validate.ValidateContext(ctx, s, g, opts)
}

// CompileValidation compiles the schema into a ValidationProgram. Callers
// that validate repeatedly — servers, watch loops, benchmark harnesses —
// compile once and pass the program in ValidateOptions.Program; one-shot
// callers can skip this (ValidateGraph compiles on the fly).
func CompileValidation(s *Schema) *ValidationProgram {
	return validate.Compile(s)
}

// CompileValidationContext is CompileValidation under a context; it
// returns the context's error if cancelled mid-compile.
func CompileValidationContext(ctx context.Context, s *Schema) (*ValidationProgram, error) {
	return validate.CompileContext(ctx, s)
}

// Delta describes the elements a mutation batch touched, for incremental
// revalidation. DeltaFor derives one from a Graph.Apply's Touched
// summary.
type Delta = validate.Delta

// GraphDelta is a transactional mutation batch for Graph.Apply: node and
// edge additions, removals, relabels, and property edits, applied
// all-or-nothing.
type GraphDelta = pg.Delta

// Undo is the inverse of an applied GraphDelta, returned by Graph.Apply.
// Calling its Undo method rolls the batch back (and bumps the epoch
// again — epochs never rewind).
type Undo = pg.Undo

// Touched summarizes the elements a Graph.Apply mutated.
type Touched = pg.Touched

// Mutation batch building blocks (the field types of GraphDelta).
type (
	AddNodeSpec     = pg.AddNodeSpec
	AddEdgeSpec     = pg.AddEdgeSpec
	RelabelSpec     = pg.RelabelSpec
	NodePropSpec    = pg.NodePropSpec
	NodePropDelSpec = pg.NodePropDelSpec
	EdgePropSpec    = pg.EdgePropSpec
	EdgePropDelSpec = pg.EdgePropDelSpec
	PropEntry       = pg.PropEntry
)

// NewNodeRef refers to the i-th node added by the same GraphDelta, for
// edges between freshly added nodes.
func NewNodeRef(i int) NodeID { return pg.NewNodeRef(i) }

// NewEdgeRef refers to the i-th edge added by the same GraphDelta.
func NewEdgeRef(i int) EdgeID { return pg.NewEdgeRef(i) }

// DeltaFor translates a Graph.Apply's Touched summary into the Delta
// Revalidate consumes.
func DeltaFor(t Touched) Delta { return validate.DeltaFor(t) }

// Revalidate updates a previous validation result after a mutation
// without re-checking the whole graph: only the delta's influence region
// is re-run (on the compiled/fused engine by default) and spliced into
// prev. The result equals what a full ValidateGraph with the same
// options would produce. prev must be complete (not Truncated, not
// Incomplete) and from the same schema, mode, and rule set; otherwise
// Revalidate falls back to a full run.
func Revalidate(ctx context.Context, s *Schema, g *Graph, prev *ValidationResult, delta Delta, opts ValidateOptions) *ValidationResult {
	return validate.Revalidate(ctx, s, g, prev, delta, opts)
}

// RevalidateWithOptions is the pre-context form of Revalidate.
//
// Deprecated: use Revalidate, which takes the run context first.
func RevalidateWithOptions(s *Schema, g *Graph, prev *ValidationResult, delta Delta, opts ValidateOptions) *ValidationResult {
	return validate.RevalidateWithOptions(s, g, prev, delta, opts)
}

// CheckType decides object-type satisfiability for the named type.
func CheckType(s *Schema, typeName string, opts SatOptions) SatReport {
	return sat.Check(s, typeName, opts)
}

// CheckField decides edge-definition satisfiability for (typeName,
// fieldName) per the closing remark of §6.2.
func CheckField(s *Schema, typeName, fieldName string, opts SatOptions) SatReport {
	return sat.CheckField(s, typeName, fieldName, opts)
}

// GenerateConformant generates a Property Graph that strongly satisfies
// the schema (for tests, demos, and benchmarks).
func GenerateConformant(s *Schema, cfg GenConfig) (*Graph, error) {
	return gen.Conformant(s, cfg)
}

// SnapshotOpenOption configures OpenGraphSnapshot.
type SnapshotOpenOption = pg.OpenOption

// VerifySnapshot makes OpenGraphSnapshot checksum every section and
// deep-validate the structure before returning. The default open
// trusts the file after validating the header, geometry, and the
// eagerly decoded sections, keeping open time independent of graph
// size; pass this option for files from untrusted sources or after a
// suspected partial write.
func VerifySnapshot() SnapshotOpenOption { return pg.Verify() }

// WriteGraphSnapshot serializes the graph's current snapshot into the
// versioned .pgsnap binary format: a fixed header plus 8-byte-aligned
// sections that are byte-for-byte the snapshot's columnar arrays, each
// with its own checksum. The output is what OpenGraphSnapshot maps.
func WriteGraphSnapshot(w io.Writer, g *Graph) error {
	return pg.WriteSnapshot(w, g.Snapshot())
}

// OpenGraphSnapshot memory-maps a .pgsnap file written by
// WriteGraphSnapshot and returns a Graph whose columns alias the
// mapping: no per-element decoding, no allocations proportional to
// graph size, so open time is independent of element count and pages
// fault in lazily as validation or queries touch them. The graph is
// fully functional — the first mutation (or store-shaped read)
// privatizes the columns copy-on-write; the file is never written
// through. Call Graph.Close to release the mapping once the graph and
// everything derived from it are no longer in use.
func OpenGraphSnapshot(path string, opts ...SnapshotOpenOption) (*Graph, error) {
	return pg.OpenSnapshot(path, opts...)
}

// APIOptions configures ExtendToAPISchema.
type APIOptions = apigen.Options

// ExtendToAPISchema performs the §3.6 extension step: it turns a Property
// Graph schema into a GraphQL API schema by synthesizing a query root
// type and — unless disabled — inverse fields for bidirectional edge
// traversal, returning the result as SDL text.
func ExtendToAPISchema(s *Schema, opts APIOptions) (string, error) {
	return apigen.ExtendSDL(s, opts)
}

// ServerConfig configures NewHTTPHandler: per-request timeout,
// concurrency limit, body size cap, and access logging.
type ServerConfig = server.Config

// NewHTTPHandler returns an http.Handler serving the full HTTP surface
// over a schema and a hosted graph: POST /graphql (GraphQL queries per
// ExtendToAPISchema), GET /schema (the API SDL), POST /validate (a
// ValidateGraph run configured by the JSON body), POST /revalidate
// (incremental Revalidate from the last full strong run), POST
// /graph/apply (a transactional GraphDelta — all-or-nothing, with
// optional incremental revalidation, and with requireValid as a commit
// condition that rolls back invalid deltas), GET /metrics (Prometheus
// text format), and GET /healthz. Validation and mutation endpoints
// speak the versioned v1 envelope ("apiVersion", a uniform "error"
// field, and the engine/workers/compiled run descriptors); legacy
// request bodies are still accepted. The handler includes panic
// recovery, per-request timeouts (which cancel in-flight validation at
// the next chunk boundary), and load shedding per cfg. /graph/apply is
// the only sanctioned way to mutate the graph while requests are in
// flight — it serializes against concurrent reads.
func NewHTTPHandler(s *Schema, g *Graph, cfg ServerConfig) (http.Handler, error) {
	h, err := server.New(s, g, cfg)
	if err != nil {
		return nil, err
	}
	return h.Mux(), nil
}

// RegistryConfig configures NewRegistryHandler: the per-request knobs
// of ServerConfig plus the registry-wide memory budget for resident
// tenant snapshots and the tenants to host at startup.
type RegistryConfig = server.RegistryConfig

// TenantSeed describes one tenant to host at startup: its name, its
// schema (parsed, or as SDL source), an optional pre-built graph, and
// an optional complete validation result to seed incremental
// revalidation from.
type TenantSeed = server.TenantSeed

// DefaultTenantName is the tenant the legacy top-level routes alias:
// /validate is byte-for-byte /tenants/default/validate.
const DefaultTenantName = server.DefaultTenant

// NewRegistryHandler returns an http.Handler hosting a registry of
// named tenants, each an independent (schema, graph) pair with its own
// epoch, compiled validation program, query-plan cache, snapshot
// persistence, and writer lock — one tenant's mutation never stalls
// another tenant's reads. Tenants are managed at runtime via PUT/GET/
// DELETE /tenants/{name} and POST /tenants/{name}/schema, and served
// under /tenants/{name}/{graphql,schema,validate,revalidate,
// graph/apply}; the top-level routes NewHTTPHandler documents remain as
// byte-identical aliases for the tenant named "default". When
// cfg.MemoryBudget is set (and cfg.SnapshotDir provides the reload
// source), the coldest persisted tenants are evicted past the budget
// and transparently reloaded on their next request. GET /metrics
// additionally exposes per-tenant request/validation series and
// registry occupancy/eviction counters.
func NewRegistryHandler(cfg RegistryConfig) (http.Handler, error) {
	h, err := server.NewRegistry(cfg)
	if err != nil {
		return nil, err
	}
	return h.Mux(), nil
}

// ExecuteQuery evaluates a GraphQL query directly against a Property
// Graph under the conventions of ExtendToAPISchema: root fields
// `all<Plural>` and `<type>(key: …)`, attribute/relationship fields,
// inverse `_<field>Of<Type>` traversal, fragments, and `__typename`.
// Relationship-field arguments filter traversal by edge-property
// equality. The result is a JSON-ready tree.
//
// Deprecated: use ExecuteQueryContext, which takes the run context
// first (parse the query with ParseQuery).
func ExecuteQuery(s *Schema, g *Graph, querySrc string) (map[string]any, error) {
	return query.ExecuteQuery(s, g, querySrc)
}

// QueryDocument is a parsed GraphQL query document.
type QueryDocument = query.Document

// QueryPlan is an immutable compiled query: every schema- and
// document-dependent decision (root resolution, property-column slots,
// fragment dispatch tables, error steps) is made once at compile time,
// and Execute only walks the graph snapshot. A plan is safe for
// concurrent Execute calls and carries an epoch-keyed binding to the
// last graph it ran against, so repeated execution against an unchanged
// graph skips all per-graph setup.
type QueryPlan = query.Plan

// QueryPlanCache is a concurrency-safe LRU of compiled plans keyed by
// query source text, as used by the HTTP handler.
type QueryPlanCache = query.PlanCache

// ParseQuery parses GraphQL query source into a document for
// CompileQuery.
func ParseQuery(src string) (*QueryDocument, error) { return query.Parse(src) }

// CompileQuery compiles a parsed document against the schema into an
// immutable QueryPlan. Compilation never fails: malformed selections
// compile into error steps that surface lazily at execution, exactly
// when (and only when) the tree-walking executor would report them.
func CompileQuery(s *Schema, doc *QueryDocument) *QueryPlan { return query.Compile(s, doc) }

// NewQueryPlanCache builds a plan cache over the schema; capacity <= 0
// selects the default (256 plans).
func NewQueryPlanCache(s *Schema, capacity int) *QueryPlanCache {
	return query.NewPlanCache(s, capacity)
}

// ExecuteQueryContext is ExecuteQuery with cancellation: the
// interpretive executor polls ctx at scan boundaries, so long scans
// over large graphs abort promptly. The operationName selects the
// operation when the document defines more than one (empty selects the
// sole operation).
func ExecuteQueryContext(ctx context.Context, s *Schema, g *Graph, doc *QueryDocument, operationName string) (map[string]any, error) {
	return query.ExecuteContext(ctx, s, g, doc, operationName)
}
