package pgschema_test

// The E-series tests reproduce every checkable artifact of the paper:
// its worked examples, its cardinality table, the Example 6.1
// satisfiability diagrams, and the Appendix Figure 1 schema. DESIGN.md
// §4 is the index; EXPERIMENTS.md records outcomes.

import (
	"testing"

	"pgschema"
)

func mustParse(t *testing.T, sdl string) *pgschema.Schema {
	t.Helper()
	s, err := pgschema.ParseSchema(sdl)
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	return s
}

// cardinalitySchema instantiates the §3.3 table for a relationship "rel"
// from A to B in all four cardinality classes.
func cardinalitySchema(kind string) string {
	var field string
	switch kind {
	case "1:1":
		field = "rel: B @uniqueForTarget"
	case "1:N":
		field = "rel: B"
	case "N:1":
		field = "rel: [B] @uniqueForTarget"
	case "N:M":
		field = "rel: [B]"
	}
	return "type A { " + field + " }\ntype B { x: Int }"
}

// TestE1CardinalityTable verifies the acceptance matrix of the §3.3
// table: for each cardinality class, whether a source may have two
// outgoing rel edges and whether a target may have two incoming ones.
func TestE1CardinalityTable(t *testing.T) {
	cases := []struct {
		kind              string
		multiOut, multiIn bool // allowed?
	}{
		{"1:1", false, false},
		{"1:N", false, true},
		{"N:1", true, false},
		{"N:M", true, true},
	}
	for _, c := range cases {
		t.Run(c.kind, func(t *testing.T) {
			s := mustParse(t, cardinalitySchema(c.kind))

			// Fan-out: one A with two rel edges to two Bs.
			g := pgschema.NewGraph()
			a := g.AddNode("A")
			b1, b2 := g.AddNode("B"), g.AddNode("B")
			g.MustAddEdge(a, b1, "rel")
			g.MustAddEdge(a, b2, "rel")
			res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
			if res.OK() != c.multiOut {
				t.Errorf("%s: two outgoing edges ok=%v, want %v (%v)", c.kind, res.OK(), c.multiOut, res.Violations)
			}

			// Fan-in: two As with rel edges to one B.
			g = pgschema.NewGraph()
			a1, a2 := g.AddNode("A"), g.AddNode("A")
			b := g.AddNode("B")
			g.MustAddEdge(a1, b, "rel")
			g.MustAddEdge(a2, b, "rel")
			res = pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
			if res.OK() != c.multiIn {
				t.Errorf("%s: two incoming edges ok=%v, want %v (%v)", c.kind, res.OK(), c.multiIn, res.Violations)
			}

			// The 1:1 single-edge case is always fine.
			g = pgschema.NewGraph()
			a = g.AddNode("A")
			b = g.AddNode("B")
			g.MustAddEdge(a, b, "rel")
			if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); !res.OK() {
				t.Errorf("%s: single edge rejected: %v", c.kind, res.Violations)
			}
		})
	}
}

// TestE6PaperExamples is the golden suite over the paper's §3 examples:
// each subtest builds the example's schema, a conforming graph, and the
// non-conforming variations the prose calls out.
func TestE6PaperExamples(t *testing.T) {
	t.Run("Example3.1-3.3 UserSession schema", func(t *testing.T) {
		s := mustParse(t, `
			type UserSession {
				id: ID! @required
				user: User! @required
				startTime: Time! @required
				endTime: Time!
			}
			type User {
				id: ID! @required
				login: String! @required
				nicknames: [String!]!
			}
			scalar Time`)
		// "every node with the label User may have two or three
		// properties" (Example 3.3).
		g := pgschema.NewGraph()
		u := g.AddNode("User")
		g.SetNodeProp(u, "id", pgschema.ID("u1"))
		g.SetNodeProp(u, "login", pgschema.String("ada"))
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); !res.OK() {
			t.Errorf("two-property User rejected: %v", res.Violations)
		}
		g.SetNodeProp(u, "nicknames", pgschema.List(pgschema.String("lovelace")))
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); !res.OK() {
			t.Errorf("three-property User rejected: %v", res.Violations)
		}
		// "the value of nicknames must be an array of strings".
		g.SetNodeProp(u, "nicknames", pgschema.String("lovelace"))
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); res.OK() {
			t.Error("non-array nicknames accepted")
		}
	})

	t.Run("Example3.4 keys", func(t *testing.T) {
		s := mustParse(t, `
			type User @key(fields: ["id"]) @key(fields: ["login"]) {
				id: ID! @required
				login: String! @required
				nicknames: [String!]!
			}`)
		g := pgschema.NewGraph()
		for i, pair := range [][2]string{{"u1", "ada"}, {"u2", "bob"}} {
			u := g.AddNode("User")
			g.SetNodeProp(u, "id", pgschema.ID(pair[0]))
			g.SetNodeProp(u, "login", pgschema.String(pair[1]))
			_ = i
		}
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); !res.OK() {
			t.Errorf("distinct users rejected: %v", res.Violations)
		}
		u := g.AddNode("User")
		g.SetNodeProp(u, "id", pgschema.ID("u3"))
		g.SetNodeProp(u, "login", pgschema.String("ada")) // duplicate login
		res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
		if res.OK() {
			t.Error("duplicate login accepted despite @key(fields:[login])")
		}
	})

	t.Run("Example3.5 exactly one user edge", func(t *testing.T) {
		s := mustParse(t, `
			type UserSession { user: User! @required }
			type User { id: ID! }`)
		g := pgschema.NewGraph()
		sess := g.AddNode("UserSession")
		// Zero edges: DS6.
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); res.OK() {
			t.Error("UserSession without user edge accepted")
		}
		u := g.AddNode("User")
		g.MustAddEdge(sess, u, "user")
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); !res.OK() {
			t.Errorf("exactly one user edge rejected: %v", res.Violations)
		}
		u2 := g.AddNode("User")
		g.MustAddEdge(sess, u2, "user")
		// Two edges: WS4.
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); res.OK() {
			t.Error("two user edges accepted on non-list field")
		}
	})

	t.Run("Example3.6 books", func(t *testing.T) {
		s := mustParse(t, `
			type Author { favoriteBook: Book relatedAuthor: [Author] }
			type Book { title: String! author: [Author] @required }`)
		// "there may also be Author nodes that do not have any
		// outgoing edge".
		g := pgschema.NewGraph()
		g.AddNode("Author")
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); !res.OK() {
			t.Errorf("edge-free Author rejected: %v", res.Violations)
		}
		// "every Book node must have at least one outgoing edge".
		b := g.AddNode("Book")
		g.SetNodeProp(b, "title", pgschema.String("t"))
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); res.OK() {
			t.Error("author-less Book accepted")
		}
		g.MustAddEdge(b, g.NodesLabeled("Author")[0], "author")
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); !res.OK() {
			t.Errorf("single-author Book rejected: %v", res.Violations)
		}
	})

	t.Run("Example3.9-3.10 union and interface equivalence", func(t *testing.T) {
		unionS := mustParse(t, `
			type Person { name: String! favoriteFood: Food }
			union Food = Pizza | Pasta
			type Pizza { name: String! toppings: [String!]! }
			type Pasta { name: String! }`)
		ifaceS := mustParse(t, `
			type Person { name: String! favoriteFood: Food }
			interface Food { name: String! }
			type Pizza implements Food { name: String! toppings: [String!]! }
			type Pasta implements Food { name: String! }`)
		// "captures exactly the same restrictions": agreement over a
		// family of graphs.
		graphs := []func() *pgschema.Graph{
			func() *pgschema.Graph { // person → pizza
				g := pgschema.NewGraph()
				p := g.AddNode("Person")
				g.SetNodeProp(p, "name", pgschema.String("o"))
				z := g.AddNode("Pizza")
				g.SetNodeProp(z, "name", pgschema.String("m"))
				g.SetNodeProp(z, "toppings", pgschema.List())
				g.MustAddEdge(p, z, "favoriteFood")
				return g
			},
			func() *pgschema.Graph { // person → person (bad)
				g := pgschema.NewGraph()
				p1 := g.AddNode("Person")
				g.SetNodeProp(p1, "name", pgschema.String("a"))
				p2 := g.AddNode("Person")
				g.SetNodeProp(p2, "name", pgschema.String("b"))
				g.MustAddEdge(p1, p2, "favoriteFood")
				return g
			},
			func() *pgschema.Graph { // two favorite foods (bad: non-list)
				g := pgschema.NewGraph()
				p := g.AddNode("Person")
				g.SetNodeProp(p, "name", pgschema.String("a"))
				x := g.AddNode("Pasta")
				g.SetNodeProp(x, "name", pgschema.String("x"))
				y := g.AddNode("Pasta")
				g.SetNodeProp(y, "name", pgschema.String("y"))
				g.MustAddEdge(p, x, "favoriteFood")
				g.MustAddEdge(p, y, "favoriteFood")
				return g
			},
		}
		for i, build := range graphs {
			u := pgschema.ValidateGraph(unionS, build(), pgschema.ValidateOptions{})
			f := pgschema.ValidateGraph(ifaceS, build(), pgschema.ValidateOptions{})
			if u.OK() != f.OK() {
				t.Errorf("graph %d: union ok=%v, interface ok=%v — formulations must agree", i, u.OK(), f.OK())
			}
		}
	})

	t.Run("Example3.11 multiple source types", func(t *testing.T) {
		s := mustParse(t, `
			type Person { name: String! }
			type Car { brand: String! owner: Person }
			type Motorcycle { brand: String! owner: Person }`)
		g := pgschema.NewGraph()
		p := g.AddNode("Person")
		g.SetNodeProp(p, "name", pgschema.String("olaf"))
		c := g.AddNode("Car")
		g.SetNodeProp(c, "brand", pgschema.String("volvo"))
		m := g.AddNode("Motorcycle")
		g.SetNodeProp(m, "brand", pgschema.String("husqvarna"))
		g.MustAddEdge(c, p, "owner")
		g.MustAddEdge(m, p, "owner")
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); !res.OK() {
			t.Errorf("owner edges from two source types rejected: %v", res.Violations)
		}
	})

	t.Run("Example3.12 edge properties", func(t *testing.T) {
		s := mustParse(t, `
			type UserSession { user(certainty: Float! comment: String): User! @required }
			type User { id: ID! }`)
		g := pgschema.NewGraph()
		sess := g.AddNode("UserSession")
		u := g.AddNode("User")
		e := g.MustAddEdge(sess, u, "user")
		g.SetEdgeProp(e, "certainty", pgschema.Float(0.8))
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); !res.OK() {
			t.Errorf("valid edge property rejected: %v", res.Violations)
		}
		g.SetEdgeProp(e, "comment", pgschema.Int(7)) // comment: String
		if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); res.OK() {
			t.Error("integer comment accepted on String argument")
		}
	})
}

// figure1 is the Appendix Figure 1 schema, verbatim.
const figure1 = `
type Starship {
	id: ID!
	name: String
	length(unit: LenUnit = METER): Float
}
enum LenUnit { METER FEET }
interface Character {
	id: ID!
	name: String
	friends: [Character]
}
type Human implements Character {
	id: ID!
	name: String
	friends: [Character]
	starships: [Starship]
}
type Droid implements Character {
	id: ID!
	name: String
	friends: [Character]
	primaryFunction: String!
}
type Query {
	hero(episode: Episode): Character
	search(text: String): [SearchResult]
}
enum Episode { NEWHOPE EMPIRE JEDI }
union SearchResult = Human | Droid | Starship
schema {
	query: Query
}`

// TestE8Figure1 parses the appendix schema under the full SDL grammar and
// validates a conformant star-wars graph; root operation types are
// ignored per §3.6 but remain ordinary object types.
func TestE8Figure1(t *testing.T) {
	s := mustParse(t, figure1)
	if got := len(s.ObjectTypes()); got != 4 { // Starship, Human, Droid, Query
		t.Errorf("object types: %d, want 4", got)
	}
	if s.Type("Character") == nil || s.Type("SearchResult") == nil {
		t.Error("interface or union missing")
	}
	if s.Type("LenUnit") == nil || !s.Type("LenUnit").HasEnumValue("FEET") {
		t.Error("enum LenUnit incomplete")
	}

	g := pgschema.NewGraph()
	luke := g.AddNode("Human")
	g.SetNodeProp(luke, "id", pgschema.ID("1000"))
	g.SetNodeProp(luke, "name", pgschema.String("Luke Skywalker"))
	r2 := g.AddNode("Droid")
	g.SetNodeProp(r2, "id", pgschema.ID("2001"))
	g.SetNodeProp(r2, "primaryFunction", pgschema.String("Astromech"))
	g.MustAddEdge(luke, r2, "friends")
	g.MustAddEdge(r2, luke, "friends")
	falcon := g.AddNode("Starship")
	g.SetNodeProp(falcon, "id", pgschema.ID("3000"))
	g.SetNodeProp(falcon, "name", pgschema.String("Millennium Falcon"))
	g.MustAddEdge(luke, falcon, "starships")
	if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); !res.OK() {
		t.Errorf("star-wars graph rejected: %v", res.Violations)
	}

	// friends must point at Characters: a Starship friend violates WS3.
	g.MustAddEdge(r2, falcon, "friends")
	if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); res.OK() {
		t.Error("Starship accepted as a friend")
	}
}

// TestE3Example61 runs the satisfiability verdicts for the three diagrams
// of Example 6.1 through the public API (the internal sat tests cover the
// per-procedure behaviour).
func TestE3Example61(t *testing.T) {
	diagrams := []struct {
		name, sdl, query string
		skipConsistency  bool
	}{
		{"a", `
			type OT1 { }
			interface IT { hasOT1: OT1 @uniqueForTarget }
			type OT2 implements IT { hasOT1: [OT1] @requiredForTarget }
			type OT3 implements IT { hasOT1: [OT1] @requiredForTarget }`,
			"OT1", true},
		{"b", `
			interface IT { f: [OT1] @uniqueForTarget @requiredForTarget }
			type OT2 implements IT { f: [OT1] @required }
			type OT3 implements IT { f: [OT1] @required }
			type OT1 { g: [OT3] @required @uniqueForTarget }`,
			"OT2", false},
		{"c", `
			interface IT { f: [OT1] @uniqueForTarget }
			type OT2 implements IT { f: [OT1] @required }
			type OT3 implements IT { f: [OT1] @requiredForTarget }
			type OT1 { }`,
			"OT2", false},
	}
	for _, d := range diagrams {
		t.Run(d.name, func(t *testing.T) {
			s, err := pgschema.ParseSchemaWithOptions(d.sdl, pgschema.BuildOptions{SkipConsistencyCheck: d.skipConsistency})
			if err != nil {
				t.Fatal(err)
			}
			rep := pgschema.CheckType(s, d.query, pgschema.SatOptions{})
			if rep.Verdict != pgschema.Unsatisfiable {
				t.Errorf("diagram (%s): %s must be unsatisfiable, got %s (%s): %s",
					d.name, d.query, rep.Verdict, rep.Method, rep.Detail)
			}
		})
	}
}
