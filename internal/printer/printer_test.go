package printer

import (
	"reflect"
	"testing"

	"pgschema/internal/ast"
	"pgschema/internal/parser"
	"pgschema/internal/token"
)

// stripPositions zeroes all position fields so trees can be compared.
func stripPositions(doc *ast.Document) {
	for _, def := range doc.Definitions {
		switch d := def.(type) {
		case *ast.SchemaDefinition:
			d.Pos = zero()
			for i := range d.RootOperations {
				d.RootOperations[i].Pos = zero()
			}
			stripDirs(d.Directives)
		case *ast.ScalarTypeDefinition:
			d.Pos = zero()
			stripDirs(d.Directives)
		case *ast.ObjectTypeDefinition:
			d.Pos = zero()
			stripDirs(d.Directives)
			stripFields(d.Fields)
		case *ast.InterfaceTypeDefinition:
			d.Pos = zero()
			stripDirs(d.Directives)
			stripFields(d.Fields)
		case *ast.UnionTypeDefinition:
			d.Pos = zero()
			stripDirs(d.Directives)
		case *ast.EnumTypeDefinition:
			d.Pos = zero()
			stripDirs(d.Directives)
			for i := range d.Values {
				d.Values[i].Pos = zero()
				stripDirs(d.Values[i].Directives)
			}
		case *ast.InputObjectTypeDefinition:
			d.Pos = zero()
			stripDirs(d.Directives)
			stripInputs(d.Fields)
		case *ast.DirectiveDefinition:
			d.Pos = zero()
			stripInputs(d.Arguments)
		}
	}
}

func stripFields(fields []ast.FieldDefinition) {
	for i := range fields {
		fields[i].Pos = zero()
		fields[i].Type = stripType(fields[i].Type)
		stripDirs(fields[i].Directives)
		stripInputs(fields[i].Arguments)
	}
}

func stripInputs(ivs []ast.InputValueDefinition) {
	for i := range ivs {
		ivs[i].Pos = zero()
		ivs[i].Type = stripType(ivs[i].Type)
		stripDirs(ivs[i].Directives)
	}
}

func stripDirs(dirs []ast.Directive) {
	for i := range dirs {
		dirs[i].Pos = zero()
		for j := range dirs[i].Arguments {
			dirs[i].Arguments[j].Pos = zero()
		}
	}
}

func stripType(t ast.Type) ast.Type {
	switch x := t.(type) {
	case *ast.NamedType:
		return &ast.NamedType{Name: x.Name}
	case *ast.ListType:
		return &ast.ListType{Elem: stripType(x.Elem)}
	case *ast.NonNullType:
		return &ast.NonNullType{Elem: stripType(x.Elem)}
	}
	return t
}

func zero() token.Position { return token.Position{} }

var corpus = []string{
	`type User @key(fields: ["id"]) {
  id: ID! @required
  login: String! @required
  nicknames: [String!]!
}`,
	`type UserSession {
  user(certainty: Float!, comment: String): User! @required
}
type User { id: ID! }
scalar Time`,
	`interface Food { name: String! }
type Pizza implements Food { name: String! toppings: [String!]! }
union Meal = Pizza`,
	`enum Episode { NEWHOPE EMPIRE JEDI }
directive @weight(value: Float = 1.0) on FIELD_DEFINITION`,
	`"A described type"
type T {
  "a described field"
  f(x: Int = 3): [T!]
}`,
	`type Query { hero(episode: Episode): Character }
interface Character { id: ID! }
enum Episode { JEDI }
schema { query: Query }`,
}

// TestRoundTrip checks parse → print → parse yields an equivalent tree.
func TestRoundTrip(t *testing.T) {
	for i, src := range corpus {
		doc1, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		printed := Print(doc1)
		doc2, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("corpus %d: reparsing printed output: %v\n%s", i, err, printed)
		}
		stripPositions(doc1)
		stripPositions(doc2)
		if !reflect.DeepEqual(doc1, doc2) {
			t.Errorf("corpus %d: round trip changed the tree.\noriginal: %#v\nreparsed: %#v\nprinted:\n%s", i, doc1, doc2, printed)
		}
	}
}

// TestIdempotent checks print(parse(print(parse(x)))) == print(parse(x)).
func TestIdempotent(t *testing.T) {
	for i, src := range corpus {
		doc1, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		p1 := Print(doc1)
		doc2, err := parser.Parse(p1)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		p2 := Print(doc2)
		if p1 != p2 {
			t.Errorf("corpus %d: printing is not idempotent:\n--- first\n%s\n--- second\n%s", i, p1, p2)
		}
	}
}

// TestPrintMoreShapes extends the round-trip corpus with the remaining
// definition shapes: schema blocks with directives, multi-line
// descriptions, enum value directives, and input object directives.
func TestPrintMoreShapes(t *testing.T) {
	more := []string{
		"\"\"\"\nA multi-line\ndescription\n\"\"\"\ntype T { f: Int }",
		`enum E { "described" A @required B }
		directive @required on ENUM_VALUE`,
		`input P @oneOf { x: Int y: Int }
		directive @oneOf on INPUT_OBJECT`,
		`scalar S @specifiedBy(url: "https://example.com")
		directive @specifiedBy(url: String!) on SCALAR`,
		`type Q { f: Int }
		schema @dir { query: Q }
		directive @dir on SCHEMA`,
	}
	for i, src := range more {
		doc1, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		printed := Print(doc1)
		doc2, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("corpus %d: reparse: %v\n%s", i, err, printed)
		}
		if Print(doc2) != printed {
			t.Errorf("corpus %d: not idempotent:\n%s", i, printed)
		}
	}
}
