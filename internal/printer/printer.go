// Package printer renders SDL abstract syntax trees back to canonical SDL
// source text. Printing a parsed document and re-parsing it yields an
// equivalent tree, which the tests verify (round-trip property).
package printer

import (
	"fmt"
	"strings"

	"pgschema/internal/ast"
)

// Print renders the document as canonical SDL text.
func Print(doc *ast.Document) string {
	var b strings.Builder
	for i, def := range doc.Definitions {
		if i > 0 {
			b.WriteString("\n")
		}
		printDefinition(&b, def)
	}
	return b.String()
}

func printDefinition(b *strings.Builder, def ast.Definition) {
	switch d := def.(type) {
	case *ast.SchemaDefinition:
		printDescription(b, d.Description, "")
		b.WriteString("schema")
		printDirectives(b, d.Directives)
		b.WriteString(" {\n")
		for _, r := range d.RootOperations {
			fmt.Fprintf(b, "  %s: %s\n", r.Operation, r.Type)
		}
		b.WriteString("}\n")
	case *ast.ScalarTypeDefinition:
		printDescription(b, d.Description, "")
		b.WriteString("scalar " + d.Name)
		printDirectives(b, d.Directives)
		b.WriteString("\n")
	case *ast.ObjectTypeDefinition:
		printDescription(b, d.Description, "")
		b.WriteString("type " + d.Name)
		if len(d.Interfaces) > 0 {
			b.WriteString(" implements " + strings.Join(d.Interfaces, " & "))
		}
		printDirectives(b, d.Directives)
		printFields(b, d.Fields)
	case *ast.InterfaceTypeDefinition:
		printDescription(b, d.Description, "")
		b.WriteString("interface " + d.Name)
		printDirectives(b, d.Directives)
		printFields(b, d.Fields)
	case *ast.UnionTypeDefinition:
		printDescription(b, d.Description, "")
		b.WriteString("union " + d.Name)
		printDirectives(b, d.Directives)
		if len(d.Members) > 0 {
			b.WriteString(" = " + strings.Join(d.Members, " | "))
		}
		b.WriteString("\n")
	case *ast.EnumTypeDefinition:
		printDescription(b, d.Description, "")
		b.WriteString("enum " + d.Name)
		printDirectives(b, d.Directives)
		if len(d.Values) > 0 {
			b.WriteString(" {\n")
			for _, v := range d.Values {
				printDescription(b, v.Description, "  ")
				b.WriteString("  " + v.Name)
				printDirectives(b, v.Directives)
				b.WriteString("\n")
			}
			b.WriteString("}")
		}
		b.WriteString("\n")
	case *ast.InputObjectTypeDefinition:
		printDescription(b, d.Description, "")
		b.WriteString("input " + d.Name)
		printDirectives(b, d.Directives)
		if len(d.Fields) > 0 {
			b.WriteString(" {\n")
			for _, f := range d.Fields {
				printDescription(b, f.Description, "  ")
				b.WriteString("  ")
				printInputValue(b, f)
				b.WriteString("\n")
			}
			b.WriteString("}")
		}
		b.WriteString("\n")
	case *ast.DirectiveDefinition:
		printDescription(b, d.Description, "")
		b.WriteString("directive @" + d.Name)
		printArgumentDefs(b, d.Arguments)
		if d.Repeatable {
			b.WriteString(" repeatable")
		}
		b.WriteString(" on " + strings.Join(d.Locations, " | "))
		b.WriteString("\n")
	}
}

func printFields(b *strings.Builder, fields []ast.FieldDefinition) {
	if len(fields) == 0 {
		b.WriteString("\n")
		return
	}
	b.WriteString(" {\n")
	for _, f := range fields {
		printDescription(b, f.Description, "  ")
		b.WriteString("  " + f.Name)
		printArgumentDefs(b, f.Arguments)
		b.WriteString(": " + f.Type.String())
		printDirectives(b, f.Directives)
		b.WriteString("\n")
	}
	b.WriteString("}\n")
}

func printArgumentDefs(b *strings.Builder, args []ast.InputValueDefinition) {
	if len(args) == 0 {
		return
	}
	b.WriteString("(")
	for i, a := range args {
		if i > 0 {
			b.WriteString(", ")
		}
		printInputValue(b, a)
	}
	b.WriteString(")")
}

func printInputValue(b *strings.Builder, iv ast.InputValueDefinition) {
	b.WriteString(iv.Name + ": " + iv.Type.String())
	if iv.Default != nil {
		b.WriteString(" = " + iv.Default.String())
	}
	printDirectives(b, iv.Directives)
}

func printDirectives(b *strings.Builder, dirs []ast.Directive) {
	for _, d := range dirs {
		b.WriteString(" @" + d.Name)
		if len(d.Arguments) > 0 {
			b.WriteString("(")
			for i, a := range d.Arguments {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(a.Name + ": " + a.Value.String())
			}
			b.WriteString(")")
		}
	}
}

func printDescription(b *strings.Builder, desc, indent string) {
	if desc == "" {
		return
	}
	if strings.Contains(desc, "\n") {
		b.WriteString(indent + `"""` + "\n")
		for _, line := range strings.Split(desc, "\n") {
			b.WriteString(indent + line + "\n")
		}
		b.WriteString(indent + `"""` + "\n")
		return
	}
	b.WriteString(indent + ast.StringValue{Value: desc}.String() + "\n")
}
