// Package parser implements a recursive-descent parser for GraphQL SDL
// documents (June 2018 edition, type-system definitions).
//
// The accepted grammar is the TypeSystemDocument production of the GraphQL
// specification: schema definitions, scalar/object/interface/union/enum/
// input-object type definitions, and directive definitions, each with
// optional descriptions and applied directives.
package parser

import (
	"fmt"
	"strconv"

	"pgschema/internal/ast"
	"pgschema/internal/lexer"
	"pgschema/internal/token"
)

// Error is a parse error with a source position.
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses a complete SDL document.
func Parse(src string) (*ast.Document, error) {
	p := &parser{lx: lexer.New(src)}
	p.next()
	doc := &ast.Document{}
	for p.tok.Kind != token.EOF {
		def, err := p.parseDefinition()
		if err != nil {
			return nil, err
		}
		doc.Definitions = append(doc.Definitions, def)
	}
	return doc, nil
}

type parser struct {
	lx  *lexer.Lexer
	tok token.Token
}

func (p *parser) next() {
	p.tok = p.lx.Next()
}

func (p *parser) errorf(pos token.Position, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) unexpected(context string) error {
	if p.tok.Kind == token.Illegal {
		return p.errorf(p.tok.Pos, "%s", p.tok.Literal)
	}
	return p.errorf(p.tok.Pos, "unexpected %s in %s", p.tok, context)
}

// expect consumes a token of kind k or fails.
func (p *parser) expect(k token.Kind, context string) (token.Token, error) {
	if p.tok.Kind != k {
		return token.Token{}, p.errorf(p.tok.Pos, "expected %s in %s, found %s", k, context, p.tok)
	}
	t := p.tok
	p.next()
	return t, nil
}

// expectName consumes a Name token and returns its literal.
func (p *parser) expectName(context string) (string, token.Position, error) {
	t, err := p.expect(token.Name, context)
	if err != nil {
		return "", token.Position{}, err
	}
	return t.Literal, t.Pos, nil
}

// expectKeyword consumes a Name token with the given literal.
func (p *parser) expectKeyword(kw string) error {
	if p.tok.Kind != token.Name || p.tok.Literal != kw {
		return p.errorf(p.tok.Pos, "expected keyword %q, found %s", kw, p.tok)
	}
	p.next()
	return nil
}

// skipIf consumes the next token if it has kind k.
func (p *parser) skipIf(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// parseDescription consumes an optional leading description string.
func (p *parser) parseDescription() string {
	if p.tok.Kind == token.String || p.tok.Kind == token.BlockString {
		desc := p.tok.Literal
		p.next()
		return desc
	}
	return ""
}

func (p *parser) parseDefinition() (ast.Definition, error) {
	desc := p.parseDescription()
	if p.tok.Kind != token.Name {
		return nil, p.unexpected("document")
	}
	kw := p.tok.Literal
	pos := p.tok.Pos
	switch kw {
	case "schema":
		return p.parseSchemaDefinition(desc, pos)
	case "scalar":
		return p.parseScalarDefinition(desc, pos)
	case "type":
		return p.parseObjectDefinition(desc, pos)
	case "interface":
		return p.parseInterfaceDefinition(desc, pos)
	case "union":
		return p.parseUnionDefinition(desc, pos)
	case "enum":
		return p.parseEnumDefinition(desc, pos)
	case "input":
		return p.parseInputObjectDefinition(desc, pos)
	case "directive":
		return p.parseDirectiveDefinition(desc, pos)
	}
	return nil, p.errorf(pos, "unexpected definition keyword %q", kw)
}

func (p *parser) parseSchemaDefinition(desc string, pos token.Position) (ast.Definition, error) {
	p.next() // "schema"
	dirs, err := p.parseDirectives()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.BraceL, "schema definition"); err != nil {
		return nil, err
	}
	var roots []ast.RootOperation
	for p.tok.Kind != token.BraceR {
		op, opPos, err := p.expectName("schema definition")
		if err != nil {
			return nil, err
		}
		switch op {
		case "query", "mutation", "subscription":
		default:
			return nil, p.errorf(opPos, "invalid root operation %q (want query, mutation, or subscription)", op)
		}
		if _, err := p.expect(token.Colon, "schema definition"); err != nil {
			return nil, err
		}
		typ, _, err := p.expectName("schema definition")
		if err != nil {
			return nil, err
		}
		roots = append(roots, ast.RootOperation{Operation: op, Type: typ, Pos: opPos})
	}
	p.next() // "}"
	return &ast.SchemaDefinition{Description: desc, Directives: dirs, RootOperations: roots, Pos: pos}, nil
}

func (p *parser) parseScalarDefinition(desc string, pos token.Position) (ast.Definition, error) {
	p.next() // "scalar"
	name, _, err := p.expectName("scalar definition")
	if err != nil {
		return nil, err
	}
	dirs, err := p.parseDirectives()
	if err != nil {
		return nil, err
	}
	def := &ast.ScalarTypeDefinition{}
	def.Description, def.Name, def.Directives, def.Pos = desc, name, dirs, pos
	return def, nil
}

func (p *parser) parseObjectDefinition(desc string, pos token.Position) (ast.Definition, error) {
	p.next() // "type"
	name, _, err := p.expectName("object type definition")
	if err != nil {
		return nil, err
	}
	var ifaces []string
	if p.tok.Kind == token.Name && p.tok.Literal == "implements" {
		p.next()
		p.skipIf(token.Amp)
		for {
			in, _, err := p.expectName("implements clause")
			if err != nil {
				return nil, err
			}
			ifaces = append(ifaces, in)
			if !p.skipIf(token.Amp) {
				break
			}
		}
	}
	dirs, err := p.parseDirectives()
	if err != nil {
		return nil, err
	}
	fields, err := p.parseFieldsBlock("object type definition")
	if err != nil {
		return nil, err
	}
	def := &ast.ObjectTypeDefinition{Interfaces: ifaces, Fields: fields}
	def.Description, def.Name, def.Directives, def.Pos = desc, name, dirs, pos
	return def, nil
}

func (p *parser) parseInterfaceDefinition(desc string, pos token.Position) (ast.Definition, error) {
	p.next() // "interface"
	name, _, err := p.expectName("interface definition")
	if err != nil {
		return nil, err
	}
	dirs, err := p.parseDirectives()
	if err != nil {
		return nil, err
	}
	fields, err := p.parseFieldsBlock("interface definition")
	if err != nil {
		return nil, err
	}
	def := &ast.InterfaceTypeDefinition{Fields: fields}
	def.Description, def.Name, def.Directives, def.Pos = desc, name, dirs, pos
	return def, nil
}

func (p *parser) parseUnionDefinition(desc string, pos token.Position) (ast.Definition, error) {
	p.next() // "union"
	name, _, err := p.expectName("union definition")
	if err != nil {
		return nil, err
	}
	dirs, err := p.parseDirectives()
	if err != nil {
		return nil, err
	}
	var members []string
	if p.skipIf(token.Equals) {
		p.skipIf(token.Pipe)
		for {
			m, _, err := p.expectName("union member list")
			if err != nil {
				return nil, err
			}
			members = append(members, m)
			if !p.skipIf(token.Pipe) {
				break
			}
		}
	}
	def := &ast.UnionTypeDefinition{Members: members}
	def.Description, def.Name, def.Directives, def.Pos = desc, name, dirs, pos
	return def, nil
}

func (p *parser) parseEnumDefinition(desc string, pos token.Position) (ast.Definition, error) {
	p.next() // "enum"
	name, _, err := p.expectName("enum definition")
	if err != nil {
		return nil, err
	}
	dirs, err := p.parseDirectives()
	if err != nil {
		return nil, err
	}
	var vals []ast.EnumValueDefinition
	if p.skipIf(token.BraceL) {
		for p.tok.Kind != token.BraceR {
			vdesc := p.parseDescription()
			vname, vpos, err := p.expectName("enum value definition")
			if err != nil {
				return nil, err
			}
			switch vname {
			case "true", "false", "null":
				return nil, p.errorf(vpos, "enum value must not be %q", vname)
			}
			vdirs, err := p.parseDirectives()
			if err != nil {
				return nil, err
			}
			vals = append(vals, ast.EnumValueDefinition{Description: vdesc, Name: vname, Directives: vdirs, Pos: vpos})
		}
		p.next() // "}"
	}
	def := &ast.EnumTypeDefinition{Values: vals}
	def.Description, def.Name, def.Directives, def.Pos = desc, name, dirs, pos
	return def, nil
}

func (p *parser) parseInputObjectDefinition(desc string, pos token.Position) (ast.Definition, error) {
	p.next() // "input"
	name, _, err := p.expectName("input object definition")
	if err != nil {
		return nil, err
	}
	dirs, err := p.parseDirectives()
	if err != nil {
		return nil, err
	}
	var fields []ast.InputValueDefinition
	if p.skipIf(token.BraceL) {
		for p.tok.Kind != token.BraceR {
			f, err := p.parseInputValueDefinition("input object definition")
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
		}
		p.next() // "}"
	}
	def := &ast.InputObjectTypeDefinition{Fields: fields}
	def.Description, def.Name, def.Directives, def.Pos = desc, name, dirs, pos
	return def, nil
}

func (p *parser) parseDirectiveDefinition(desc string, pos token.Position) (ast.Definition, error) {
	p.next() // "directive"
	if _, err := p.expect(token.At, "directive definition"); err != nil {
		return nil, err
	}
	name, _, err := p.expectName("directive definition")
	if err != nil {
		return nil, err
	}
	var args []ast.InputValueDefinition
	if p.skipIf(token.ParenL) {
		for p.tok.Kind != token.ParenR {
			a, err := p.parseInputValueDefinition("directive definition")
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		p.next() // ")"
	}
	repeatable := false
	if p.tok.Kind == token.Name && p.tok.Literal == "repeatable" {
		repeatable = true
		p.next()
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	p.skipIf(token.Pipe)
	var locs []string
	for {
		loc, _, err := p.expectName("directive locations")
		if err != nil {
			return nil, err
		}
		locs = append(locs, loc)
		if !p.skipIf(token.Pipe) {
			break
		}
	}
	return &ast.DirectiveDefinition{
		Description: desc, Name: name, Arguments: args,
		Locations: locs, Repeatable: repeatable, Pos: pos,
	}, nil
}

// parseFieldsBlock parses an optional `{ field... }` block.
func (p *parser) parseFieldsBlock(context string) ([]ast.FieldDefinition, error) {
	if !p.skipIf(token.BraceL) {
		return nil, nil
	}
	var fields []ast.FieldDefinition
	for p.tok.Kind != token.BraceR {
		f, err := p.parseFieldDefinition(context)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	p.next() // "}"
	return fields, nil
}

func (p *parser) parseFieldDefinition(context string) (ast.FieldDefinition, error) {
	desc := p.parseDescription()
	name, pos, err := p.expectName(context)
	if err != nil {
		return ast.FieldDefinition{}, err
	}
	var args []ast.InputValueDefinition
	if p.skipIf(token.ParenL) {
		for p.tok.Kind != token.ParenR {
			a, err := p.parseInputValueDefinition("field argument definition")
			if err != nil {
				return ast.FieldDefinition{}, err
			}
			args = append(args, a)
		}
		p.next() // ")"
	}
	if _, err := p.expect(token.Colon, "field definition"); err != nil {
		return ast.FieldDefinition{}, err
	}
	typ, err := p.parseType()
	if err != nil {
		return ast.FieldDefinition{}, err
	}
	dirs, err := p.parseDirectives()
	if err != nil {
		return ast.FieldDefinition{}, err
	}
	return ast.FieldDefinition{
		Description: desc, Name: name, Arguments: args,
		Type: typ, Directives: dirs, Pos: pos,
	}, nil
}

func (p *parser) parseInputValueDefinition(context string) (ast.InputValueDefinition, error) {
	desc := p.parseDescription()
	name, pos, err := p.expectName(context)
	if err != nil {
		return ast.InputValueDefinition{}, err
	}
	if _, err := p.expect(token.Colon, context); err != nil {
		return ast.InputValueDefinition{}, err
	}
	typ, err := p.parseType()
	if err != nil {
		return ast.InputValueDefinition{}, err
	}
	var def ast.Value
	if p.skipIf(token.Equals) {
		def, err = p.parseValue()
		if err != nil {
			return ast.InputValueDefinition{}, err
		}
	}
	dirs, err := p.parseDirectives()
	if err != nil {
		return ast.InputValueDefinition{}, err
	}
	return ast.InputValueDefinition{
		Description: desc, Name: name, Type: typ,
		Default: def, Directives: dirs, Pos: pos,
	}, nil
}

// parseType parses a type reference: Name, [Type], with optional "!".
func (p *parser) parseType() (ast.Type, error) {
	var inner ast.Type
	switch p.tok.Kind {
	case token.Name:
		inner = &ast.NamedType{Name: p.tok.Literal, Pos: p.tok.Pos}
		p.next()
	case token.BracketL:
		pos := p.tok.Pos
		p.next()
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.BracketR, "list type"); err != nil {
			return nil, err
		}
		inner = &ast.ListType{Elem: elem, Pos: pos}
	default:
		return nil, p.unexpected("type reference")
	}
	if p.tok.Kind == token.Bang {
		pos := p.tok.Pos
		p.next()
		return &ast.NonNullType{Elem: inner, Pos: pos}, nil
	}
	return inner, nil
}

// parseDirectives parses zero or more applied directives.
func (p *parser) parseDirectives() ([]ast.Directive, error) {
	var dirs []ast.Directive
	for p.tok.Kind == token.At {
		pos := p.tok.Pos
		p.next()
		name, _, err := p.expectName("directive")
		if err != nil {
			return nil, err
		}
		var args []ast.Argument
		if p.skipIf(token.ParenL) {
			for p.tok.Kind != token.ParenR {
				aname, apos, err := p.expectName("directive argument")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(token.Colon, "directive argument"); err != nil {
					return nil, err
				}
				v, err := p.parseValue()
				if err != nil {
					return nil, err
				}
				args = append(args, ast.Argument{Name: aname, Value: v, Pos: apos})
			}
			p.next() // ")"
		}
		dirs = append(dirs, ast.Directive{Name: name, Arguments: args, Pos: pos})
	}
	return dirs, nil
}

// parseValue parses a const value literal (§2.9, without variables).
func (p *parser) parseValue() (ast.Value, error) {
	switch p.tok.Kind {
	case token.Int:
		v := ast.IntValue{Raw: p.tok.Literal}
		if _, err := strconv.ParseInt(p.tok.Literal, 10, 64); err != nil {
			return nil, p.errorf(p.tok.Pos, "integer literal out of range: %s", p.tok.Literal)
		}
		p.next()
		return v, nil
	case token.Float:
		v := ast.FloatValue{Raw: p.tok.Literal}
		if _, err := strconv.ParseFloat(p.tok.Literal, 64); err != nil {
			return nil, p.errorf(p.tok.Pos, "float literal out of range: %s", p.tok.Literal)
		}
		p.next()
		return v, nil
	case token.String, token.BlockString:
		v := ast.StringValue{Value: p.tok.Literal}
		p.next()
		return v, nil
	case token.Name:
		lit := p.tok.Literal
		p.next()
		switch lit {
		case "true":
			return ast.BooleanValue{Value: true}, nil
		case "false":
			return ast.BooleanValue{Value: false}, nil
		case "null":
			return ast.NullValue{}, nil
		}
		return ast.EnumValue{Name: lit}, nil
	case token.BracketL:
		p.next()
		var vals []ast.Value
		for p.tok.Kind != token.BracketR {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		p.next() // "]"
		return ast.ListValue{Values: vals}, nil
	case token.BraceL:
		p.next()
		var fields []ast.ObjectField
		for p.tok.Kind != token.BraceR {
			name, _, err := p.expectName("object value")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Colon, "object value"); err != nil {
				return nil, err
			}
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			fields = append(fields, ast.ObjectField{Name: name, Value: v})
		}
		p.next() // "}"
		return ast.ObjectValue{Fields: fields}, nil
	}
	return nil, p.unexpected("value literal")
}
