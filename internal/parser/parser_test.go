package parser

import (
	"strings"
	"testing"

	"pgschema/internal/ast"
)

func mustParse(t *testing.T, src string) *ast.Document {
	t.Helper()
	doc, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return doc
}

func parseErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("Parse(%q): expected error containing %q, got nil", src, wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("Parse(%q): error %q does not contain %q", src, err, wantSubstr)
	}
}

func TestObjectType(t *testing.T) {
	doc := mustParse(t, `
		type User {
			id: ID!
			login: String! @required
			nicknames: [String!]!
		}`)
	if len(doc.Definitions) != 1 {
		t.Fatalf("got %d definitions", len(doc.Definitions))
	}
	obj, ok := doc.Definitions[0].(*ast.ObjectTypeDefinition)
	if !ok {
		t.Fatalf("got %T", doc.Definitions[0])
	}
	if obj.Name != "User" || len(obj.Fields) != 3 {
		t.Fatalf("got %q with %d fields", obj.Name, len(obj.Fields))
	}
	if got := obj.Fields[0].Type.String(); got != "ID!" {
		t.Errorf("field 0 type: %s", got)
	}
	if got := obj.Fields[2].Type.String(); got != "[String!]!" {
		t.Errorf("field 2 type: %s", got)
	}
	if len(obj.Fields[1].Directives) != 1 || obj.Fields[1].Directives[0].Name != "required" {
		t.Errorf("field 1 directives: %+v", obj.Fields[1].Directives)
	}
}

func TestPaperExample31(t *testing.T) {
	// The paper's first example schema (Example 3.1).
	doc := mustParse(t, `
		type UserSession {
			id: ID! @required
			user: User! @required
			startTime: Time! @required
			endTime: Time!
		}
		type User {
			id: ID! @required
			login: String! @required
			nicknames: [String!]!
		}
		scalar Time`)
	if len(doc.Definitions) != 3 {
		t.Fatalf("got %d definitions, want 3", len(doc.Definitions))
	}
	if _, ok := doc.Definitions[2].(*ast.ScalarTypeDefinition); !ok {
		t.Errorf("definition 2: got %T, want scalar", doc.Definitions[2])
	}
}

func TestKeyDirectiveWithArguments(t *testing.T) {
	// Example 3.4: repeated @key directives with a list argument.
	doc := mustParse(t, `type User @key(fields:["id"]) @key(fields:["login"]) { id: ID! }`)
	obj := doc.Definitions[0].(*ast.ObjectTypeDefinition)
	if len(obj.Directives) != 2 {
		t.Fatalf("got %d directives", len(obj.Directives))
	}
	for i, d := range obj.Directives {
		if d.Name != "key" || len(d.Arguments) != 1 || d.Arguments[0].Name != "fields" {
			t.Errorf("directive %d: %+v", i, d)
		}
		lv, ok := d.Arguments[0].Value.(ast.ListValue)
		if !ok || len(lv.Values) != 1 {
			t.Errorf("directive %d value: %+v", i, d.Arguments[0].Value)
		}
	}
}

func TestFieldArguments(t *testing.T) {
	// Example 3.12: edge properties via field arguments.
	doc := mustParse(t, `
		type UserSession {
			user(certainty: Float! comment: String): User! @required
		}`)
	obj := doc.Definitions[0].(*ast.ObjectTypeDefinition)
	f := obj.Fields[0]
	if len(f.Arguments) != 2 {
		t.Fatalf("got %d arguments", len(f.Arguments))
	}
	if f.Arguments[0].Name != "certainty" || f.Arguments[0].Type.String() != "Float!" {
		t.Errorf("arg 0: %+v", f.Arguments[0])
	}
	if f.Arguments[1].Name != "comment" || f.Arguments[1].Type.String() != "String" {
		t.Errorf("arg 1: %+v", f.Arguments[1])
	}
}

func TestArgumentDefault(t *testing.T) {
	// Appendix Figure 1, line 4: length(unit: LenUnit = METER): Float.
	doc := mustParse(t, `type Starship { length(unit: LenUnit = METER): Float }`)
	obj := doc.Definitions[0].(*ast.ObjectTypeDefinition)
	arg := obj.Fields[0].Arguments[0]
	ev, ok := arg.Default.(ast.EnumValue)
	if !ok || ev.Name != "METER" {
		t.Errorf("default: %+v", arg.Default)
	}
}

func TestUnion(t *testing.T) {
	doc := mustParse(t, `union Food = Pizza | Pasta`)
	u := doc.Definitions[0].(*ast.UnionTypeDefinition)
	if u.Name != "Food" || len(u.Members) != 2 || u.Members[0] != "Pizza" || u.Members[1] != "Pasta" {
		t.Errorf("union: %+v", u)
	}
}

func TestUnionLeadingPipe(t *testing.T) {
	doc := mustParse(t, "union SearchResult =\n  | Human\n  | Droid\n  | Starship")
	u := doc.Definitions[0].(*ast.UnionTypeDefinition)
	if len(u.Members) != 3 {
		t.Errorf("members: %v", u.Members)
	}
}

func TestInterfaceAndImplements(t *testing.T) {
	doc := mustParse(t, `
		interface Character {
			id: ID!
			friends: [Character]
		}
		type Human implements Character {
			id: ID!
			friends: [Character]
		}
		type Cyborg implements Character & Machine {
			id: ID!
			friends: [Character]
		}
		interface Machine { }`)
	h := doc.Definitions[1].(*ast.ObjectTypeDefinition)
	if len(h.Interfaces) != 1 || h.Interfaces[0] != "Character" {
		t.Errorf("Human interfaces: %v", h.Interfaces)
	}
	c := doc.Definitions[2].(*ast.ObjectTypeDefinition)
	if len(c.Interfaces) != 2 {
		t.Errorf("Cyborg interfaces: %v", c.Interfaces)
	}
}

func TestEnum(t *testing.T) {
	doc := mustParse(t, `enum Episode { NEWHOPE EMPIRE JEDI }`)
	e := doc.Definitions[0].(*ast.EnumTypeDefinition)
	if len(e.Values) != 3 || e.Values[1].Name != "EMPIRE" {
		t.Errorf("enum: %+v", e)
	}
}

func TestEnumReservedValue(t *testing.T) {
	parseErr(t, `enum Bad { true }`, "enum value must not be")
	parseErr(t, `enum Bad { null }`, "enum value must not be")
}

func TestSchemaDefinition(t *testing.T) {
	doc := mustParse(t, `
		type Query { x: Int }
		schema { query: Query }`)
	sd := doc.Definitions[1].(*ast.SchemaDefinition)
	if len(sd.RootOperations) != 1 || sd.RootOperations[0].Operation != "query" || sd.RootOperations[0].Type != "Query" {
		t.Errorf("schema: %+v", sd)
	}
}

func TestSchemaDefinitionBadOperation(t *testing.T) {
	parseErr(t, `schema { foo: Query }`, "invalid root operation")
}

func TestInputObject(t *testing.T) {
	doc := mustParse(t, `input Point { x: Float = 0.0 y: Float = 0.0 }`)
	in := doc.Definitions[0].(*ast.InputObjectTypeDefinition)
	if in.Name != "Point" || len(in.Fields) != 2 {
		t.Errorf("input: %+v", in)
	}
	if fv, ok := in.Fields[0].Default.(ast.FloatValue); !ok || fv.Raw != "0.0" {
		t.Errorf("default: %+v", in.Fields[0].Default)
	}
}

func TestDirectiveDefinition(t *testing.T) {
	doc := mustParse(t, `directive @key(fields: [String!]!) repeatable on OBJECT | INTERFACE`)
	d := doc.Definitions[0].(*ast.DirectiveDefinition)
	if d.Name != "key" || !d.Repeatable || len(d.Locations) != 2 || len(d.Arguments) != 1 {
		t.Errorf("directive: %+v", d)
	}
	if d.Arguments[0].Type.String() != "[String!]!" {
		t.Errorf("arg type: %s", d.Arguments[0].Type)
	}
}

func TestDescriptions(t *testing.T) {
	doc := mustParse(t, `
		"A user of the system"
		type User {
			"Opaque identifier"
			id: ID!
		}`)
	obj := doc.Definitions[0].(*ast.ObjectTypeDefinition)
	if obj.Description != "A user of the system" {
		t.Errorf("type description: %q", obj.Description)
	}
	if obj.Fields[0].Description != "Opaque identifier" {
		t.Errorf("field description: %q", obj.Fields[0].Description)
	}
}

func TestBlockStringDescription(t *testing.T) {
	doc := mustParse(t, "\"\"\"\nMulti-line\ndescription\n\"\"\"\ntype T { x: Int }")
	obj := doc.Definitions[0].(*ast.ObjectTypeDefinition)
	if obj.Description != "Multi-line\ndescription" {
		t.Errorf("description: %q", obj.Description)
	}
}

func TestValueLiterals(t *testing.T) {
	doc := mustParse(t, `type T { f(a: X = {k: [1, 2.5, "s", true, null, EV]}): Int }`)
	arg := doc.Definitions[0].(*ast.ObjectTypeDefinition).Fields[0].Arguments[0]
	ov, ok := arg.Default.(ast.ObjectValue)
	if !ok || len(ov.Fields) != 1 {
		t.Fatalf("default: %+v", arg.Default)
	}
	lv := ov.Fields[0].Value.(ast.ListValue)
	if len(lv.Values) != 6 {
		t.Fatalf("list: %+v", lv)
	}
	if lv.String() != `[1, 2.5, "s", true, null, EV]` {
		t.Errorf("rendered: %s", lv.String())
	}
}

func TestSyntaxErrors(t *testing.T) {
	parseErr(t, `type`, "expected Name")
	parseErr(t, `type T { f }`, "expected ':'")
	parseErr(t, `type T { f: }`, "type reference")
	parseErr(t, `type T { f: [Int }`, "expected ']'")
	parseErr(t, `frobnicate T {}`, "unexpected definition keyword")
	parseErr(t, `type T @d(a:) {}`, "value literal")
	parseErr(t, `directive @d on`, "expected Name")
	parseErr(t, `type T { f: Int`, "found EOF")
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("type T {\n  f\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Pos.Line != 3 { // the '}' that is not a ':'
		t.Errorf("error line: %d (%v)", perr.Pos.Line, err)
	}
}

func TestEmptyDocument(t *testing.T) {
	doc := mustParse(t, "  # nothing here\n")
	if len(doc.Definitions) != 0 {
		t.Errorf("got %d definitions", len(doc.Definitions))
	}
}

func TestNestedListTypesParse(t *testing.T) {
	// Nested lists are valid GraphQL even though the Property Graph
	// formalization later rejects them; the parser must accept them.
	doc := mustParse(t, `type T { m: [[Int]] }`)
	f := doc.Definitions[0].(*ast.ObjectTypeDefinition).Fields[0]
	if f.Type.String() != "[[Int]]" {
		t.Errorf("type: %s", f.Type)
	}
}
