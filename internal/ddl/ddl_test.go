package ddl

import (
	"strings"
	"testing"

	"pgschema/internal/gen"
	"pgschema/internal/parser"
	"pgschema/internal/schema"
)

func build(t *testing.T, src string) *schema.Schema {
	t.Helper()
	doc, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := schema.Build(doc, schema.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

const exportSDL = `
type User @key(fields: ["id"]) @key(fields: ["realm", "login"]) {
	id: ID! @required
	realm: String!
	login: String! @required
	tags: [String!]
	follows(since: Int!, note: String): [User] @distinct @noLoops
}
type Post {
	body: String! @required
	author: User! @required @uniqueForTarget
}
enum Color { RED GREEN }
`

func TestCypherExport(t *testing.T) {
	s := build(t, exportSDL)
	out := Cypher(s)
	for _, want := range []string{
		"CREATE CONSTRAINT ON (n:User) ASSERT n.id IS UNIQUE;",
		"CREATE CONSTRAINT ON (n:User) ASSERT (n.realm, n.login) IS NODE KEY;",
		"CREATE CONSTRAINT ON (n:User) ASSERT exists(n.id);",
		"CREATE CONSTRAINT ON (n:User) ASSERT exists(n.login);",
		"CREATE CONSTRAINT ON (n:Post) ASSERT exists(n.body);",
		"CREATE CONSTRAINT ON ()-[r:follows]-() ASSERT exists(r.since);",
		"// NOT EXPRESSIBLE: Post.author edges must point at User nodes (WS3)",
		"// NOT EXPRESSIBLE: Post.author allows at most one outgoing \"author\" edge per node (WS4)",
		"targets of Post \"author\" edges accept at most one such edge (DS3)",
		"parallel User \"follows\" edges to the same target are forbidden (DS1)",
		"User \"follows\" edges must not form loops (DS2)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Cypher output missing %q:\n%s", want, out)
		}
	}
	// Optional properties get no existence constraint.
	if strings.Contains(out, "exists(n.realm)") || strings.Contains(out, "exists(n.tags)") {
		t.Errorf("optional property got an existence constraint:\n%s", out)
	}
	// The optional edge property gets none either.
	if strings.Contains(out, "exists(r.note)") {
		t.Errorf("optional edge property got an existence constraint:\n%s", out)
	}
}

func TestGSQLExport(t *testing.T) {
	s := build(t, exportSDL)
	out := GSQL(s, "social")
	for _, want := range []string{
		"CREATE VERTEX User (PRIMARY_ID id STRING, realm STRING", // id promoted to primary
		"login STRING",
		"tags LIST<STRING>",
		"CREATE VERTEX Post (PRIMARY_ID id STRING, body STRING)", // synthetic id
		"CREATE DIRECTED EDGE author_Post_User (FROM Post, TO User);",
		"CREATE DIRECTED EDGE follows_User_User (FROM User, TO User, since INT, note STRING);",
		"CREATE GRAPH social (",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("GSQL output missing %q:\n%s", want, out)
		}
	}
}

func TestGSQLEnumAndDefaults(t *testing.T) {
	s := build(t, `
		enum Color { RED }
		type Paint { color: Color! shades: [Color] b: Boolean f: Float }`)
	out := GSQL(s, "")
	for _, want := range []string{
		"color STRING", "shades LIST<STRING>", "b BOOL", "f DOUBLE",
		"CREATE GRAPH pg (Paint);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("GSQL output missing %q:\n%s", want, out)
		}
	}
}

func TestGSQLInterfaceTargetsExpand(t *testing.T) {
	s := build(t, `
		type Person { favoriteFood: Food }
		interface Food { name: String! }
		type Pizza implements Food { name: String! }
		type Pasta implements Food { name: String! }`)
	out := GSQL(s, "")
	if !strings.Contains(out, "favoriteFood_Person_Pizza") || !strings.Contains(out, "favoriteFood_Person_Pasta") {
		t.Errorf("interface target not expanded:\n%s", out)
	}
}

func TestExportsDeterministic(t *testing.T) {
	s := build(t, exportSDL)
	if Cypher(s) != Cypher(s) {
		t.Error("Cypher export nondeterministic")
	}
	if GSQL(s, "g") != GSQL(s, "g") {
		t.Error("GSQL export nondeterministic")
	}
}

// TestExportsOnRandomSchemas: both exporters succeed and stay
// deterministic across the random schema family.
func TestExportsOnRandomSchemas(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s, src, err := gen.RandomSchema(gen.SchemaConfig{Seed: seed, Unions: seed%2 == 0})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c := Cypher(s)
		g := GSQL(s, "r")
		if c == "" || g == "" {
			t.Fatalf("seed %d: empty export\n%s", seed, src)
		}
		if c != Cypher(s) || g != GSQL(s, "r") {
			t.Fatalf("seed %d: nondeterministic export", seed)
		}
		if !strings.Contains(g, "CREATE GRAPH r (") {
			t.Fatalf("seed %d: no graph statement", seed)
		}
	}
}
