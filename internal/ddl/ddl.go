// Package ddl exports SDL-based Property Graph schemas to the proprietary
// schema mechanisms the paper surveys in §2.1: Neo4j's Cypher constraint
// DDL and TigerGraph's GSQL data definition language.
//
// Both targets are strictly less expressive than the paper's proposal, so
// each exporter emits what it can and documents what it cannot as
// comments in the output (never silently dropping a constraint). The
// exporters are deterministic: equal schemas yield byte-equal output.
package ddl

import (
	"fmt"
	"sort"
	"strings"

	"pgschema/internal/schema"
)

// Cypher renders the schema as Neo4j Cypher (3.5-era syntax) constraint
// statements:
//
//   - @key with one field      → ASSERT n.f IS UNIQUE
//   - @key with several fields → ASSERT (n.f1, …) IS NODE KEY
//   - @required attribute      → ASSERT exists(n.f)
//   - non-null edge property   → ASSERT exists(r.a) on the relationship
//
// Everything else (@distinct, @noLoops, @uniqueForTarget,
// @requiredForTarget, @required edges, target typing, value typing) has
// no Cypher constraint counterpart and is emitted as a comment.
func Cypher(s *schema.Schema) string {
	var b strings.Builder
	b.WriteString("// Generated from a GraphQL SDL Property Graph schema (pgschema).\n")
	b.WriteString("// Neo4j constraints cover only part of the schema; the rest is noted\n")
	b.WriteString("// in comments and must be enforced by the application (or by the\n")
	b.WriteString("// pgschema validator).\n")

	for _, td := range s.ObjectTypes() {
		b.WriteString("\n// --- " + td.Name + " ---\n")
		for _, set := range td.KeyFieldSets() {
			switch len(set) {
			case 0:
			case 1:
				fmt.Fprintf(&b, "CREATE CONSTRAINT ON (n:%s) ASSERT n.%s IS UNIQUE;\n", td.Name, set[0])
			default:
				cols := make([]string, len(set))
				for i, f := range set {
					cols[i] = "n." + f
				}
				fmt.Fprintf(&b, "CREATE CONSTRAINT ON (n:%s) ASSERT (%s) IS NODE KEY;\n", td.Name, strings.Join(cols, ", "))
			}
		}
		for _, f := range td.Fields {
			switch {
			case s.IsAttribute(f):
				if schema.HasDirective(f.Directives, schema.DirRequired) {
					fmt.Fprintf(&b, "CREATE CONSTRAINT ON (n:%s) ASSERT exists(n.%s);\n", td.Name, f.Name)
				}
			case s.IsRelationship(f):
				for _, a := range f.Args {
					if a.Type.NonNull {
						fmt.Fprintf(&b, "CREATE CONSTRAINT ON ()-[r:%s]-() ASSERT exists(r.%s);\n", f.Name, a.Name)
					}
				}
				for _, note := range relationshipNotes(s, td, f) {
					b.WriteString("// NOT EXPRESSIBLE: " + note + "\n")
				}
			}
		}
	}
	return b.String()
}

// relationshipNotes lists the relationship constraints Cypher cannot
// express, in deterministic order.
func relationshipNotes(s *schema.Schema, td *schema.TypeDef, f *schema.FieldDef) []string {
	var notes []string
	decl := td.Name + "." + f.Name
	notes = append(notes, fmt.Sprintf("%s edges must point at %s nodes (WS3)", decl, f.Type.Base()))
	if !f.Type.IsList() {
		notes = append(notes, fmt.Sprintf("%s allows at most one outgoing %q edge per node (WS4)", decl, f.Name))
	}
	dirNotes := map[string]string{
		schema.DirRequired:          "every %s node needs an outgoing %q edge (DS6)",
		schema.DirDistinct:          "parallel %s %q edges to the same target are forbidden (DS1)",
		schema.DirNoLoops:           "%s %q edges must not form loops (DS2)",
		schema.DirUniqueForTarget:   "targets of %s %q edges accept at most one such edge (DS3)",
		schema.DirRequiredForTarget: "every possible target of %s %q edges needs one (DS4)",
	}
	for _, d := range []string{schema.DirRequired, schema.DirDistinct, schema.DirNoLoops, schema.DirUniqueForTarget, schema.DirRequiredForTarget} {
		if schema.HasDirective(f.Directives, d) {
			notes = append(notes, fmt.Sprintf(dirNotes[d], td.Name, f.Name))
		}
	}
	return notes
}

// GSQL renders the schema as TigerGraph GSQL DDL: CREATE VERTEX with a
// PRIMARY_ID (the first single-field @key when present, else a synthetic
// id), CREATE DIRECTED EDGE per relationship declaration pair, and a
// CREATE GRAPH statement tying them together. Constraints beyond typing
// are emitted as comments.
func GSQL(s *schema.Schema, graphName string) string {
	if graphName == "" {
		graphName = "pg"
	}
	var b strings.Builder
	b.WriteString("// Generated from a GraphQL SDL Property Graph schema (pgschema).\n")

	var graphParts []string
	for _, td := range s.ObjectTypes() {
		primary := primaryKey(s, td)
		var cols []string
		if primary == "" {
			cols = append(cols, "PRIMARY_ID id STRING")
		} else {
			f := td.Field(primary)
			cols = append(cols, fmt.Sprintf("PRIMARY_ID %s %s", primary, gsqlType(s, f.Type)))
		}
		for _, f := range td.Fields {
			if !s.IsAttribute(f) || f.Name == primary {
				continue
			}
			cols = append(cols, fmt.Sprintf("%s %s", f.Name, gsqlType(s, f.Type)))
		}
		fmt.Fprintf(&b, "CREATE VERTEX %s (%s);\n", td.Name, strings.Join(cols, ", "))
		graphParts = append(graphParts, td.Name)
	}

	edgeSeen := make(map[string]bool)
	for _, td := range s.ObjectTypes() {
		for _, f := range td.Fields {
			if !s.IsRelationship(f) {
				continue
			}
			for _, target := range s.ConcreteTargets(f.Type.Base()) {
				name := edgeTypeName(f.Name, td.Name, target)
				if edgeSeen[name] {
					continue
				}
				edgeSeen[name] = true
				cols := []string{"FROM " + td.Name, "TO " + target}
				for _, a := range f.Args {
					cols = append(cols, fmt.Sprintf("%s %s", a.Name, gsqlType(s, a.Type)))
				}
				fmt.Fprintf(&b, "CREATE DIRECTED EDGE %s (%s);\n", name, strings.Join(cols, ", "))
				graphParts = append(graphParts, name)
				for _, note := range relationshipNotes(s, td, f) {
					b.WriteString("// NOT EXPRESSIBLE: " + note + "\n")
				}
			}
		}
	}
	sort.Strings(graphParts)
	fmt.Fprintf(&b, "CREATE GRAPH %s (%s);\n", graphName, strings.Join(graphParts, ", "))
	return b.String()
}

// primaryKey picks the first single-field @key whose field is an
// attribute, or "".
func primaryKey(s *schema.Schema, td *schema.TypeDef) string {
	for _, set := range td.KeyFieldSets() {
		if len(set) != 1 {
			continue
		}
		if f := td.Field(set[0]); f != nil && s.IsAttribute(f) {
			return set[0]
		}
	}
	return ""
}

// edgeTypeName builds a per-(source,field,target) GSQL edge type name;
// GSQL edge types are global, so the triple is encoded into the name.
func edgeTypeName(field, source, target string) string {
	return fmt.Sprintf("%s_%s_%s", field, source, target)
}

// gsqlType maps SDL attribute types onto GSQL data types.
func gsqlType(s *schema.Schema, t schema.TypeRef) string {
	base := func() string {
		name := t.Base()
		if td := s.Type(name); td != nil && td.Kind == schema.Enum {
			return "STRING" // GSQL has no enums
		}
		switch name {
		case "Int":
			return "INT"
		case "Float":
			return "DOUBLE"
		case "Boolean":
			return "BOOL"
		default: // String, ID, custom scalars
			return "STRING"
		}
	}()
	if t.IsList() {
		return "LIST<" + base + ">"
	}
	return base
}
