// Package reduction implements the polynomial reduction behind Theorem 2
// (NP-hardness of object-type satisfiability): a propositional CNF
// formula φ is mapped to a GraphQL schema with a distinguished object
// type OT such that OT is satisfiable — some Property Graph strongly
// satisfying the schema contains an OT node — iff φ is satisfiable.
//
// Following the proof sketch in Appendix B:
//
//  1. an object type OT is introduced;
//  2. for each clause ψi an interface type Ci whose field f: [OT] carries
//     @requiredForTarget — every OT node needs an incoming f-edge from a
//     node whose type implements Ci, i.e. the clause must be "satisfied";
//  3. for each literal occurrence αij an object type Lij implementing Ci;
//  4. for each complementary pair of occurrences (αij = ¬αkl) an
//     interface type Pij_kl implemented by both occurrence types, whose
//     field f: [OT] carries @uniqueForTarget — an OT node can receive an
//     f-edge from at most one of the two, so a variable cannot be used
//     both positively and negatively.
//
// The packages also provides the two directions of the correspondence as
// executable artifacts: WitnessGraph builds a strongly-satisfying
// Property Graph from a satisfying assignment, and DecodeAssignment
// recovers a satisfying assignment from such a graph.
package reduction

import (
	"fmt"
	"strings"

	"pgschema/internal/cnf"
	"pgschema/internal/parser"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
)

// FieldName is the single relationship field name used by the reduction
// (the proof's f).
const FieldName = "f"

// ObjectTypeName is the distinguished object type (the proof's ot).
const ObjectTypeName = "OT"

// Result carries the reduced schema and the name mappings needed to move
// between the propositional and the graph world.
type Result struct {
	Schema *schema.Schema
	SDL    string // the schema as SDL source text

	// Formula is the reduced formula (retained for decoding).
	Formula *cnf.Formula

	// literalType[i][j] is the object type of occurrence j in clause i.
	literalTypes [][]string
}

// ClauseInterface returns the interface type name for clause i (0-based).
func ClauseInterface(i int) string { return fmt.Sprintf("C%d", i+1) }

// LiteralType returns the object type name for occurrence j of clause i.
func (r *Result) LiteralType(i, j int) string { return r.literalTypes[i][j] }

// FromCNF builds the reduction. Clauses must be non-tautological for the
// intended semantics (a clause containing x and ¬x would create a
// conflict interface between two occurrences of the same clause, which is
// still correct but never useful); empty clauses are admitted and make OT
// unsatisfiable, as they must.
func FromCNF(f *cnf.Formula) (*Result, error) {
	var b strings.Builder
	b.WriteString("type " + ObjectTypeName + " {\n}\n")

	litTypes := make([][]string, len(f.Clauses))
	// occurrences[v] lists (clause, index, positive) for variable v.
	type occ struct {
		i, j     int
		positive bool
	}
	occurrences := make(map[int][]occ)
	for i, cl := range f.Clauses {
		b.WriteString(fmt.Sprintf("interface %s {\n  %s: [%s] @requiredForTarget\n}\n", ClauseInterface(i), FieldName, ObjectTypeName))
		litTypes[i] = make([]string, len(cl))
		for j, lit := range cl {
			name := fmt.Sprintf("L%d_%d", i+1, j+1)
			litTypes[i][j] = name
			occurrences[lit.Var()] = append(occurrences[lit.Var()], occ{i, j, lit > 0})
		}
	}

	// Conflict interfaces for complementary occurrence pairs, visited in
	// variable order for deterministic output.
	memberConflicts := make(map[string][]string)
	vars := f.Vars()
	for _, v := range vars {
		occs := occurrences[v]
		for a := 0; a < len(occs); a++ {
			for b2 := a + 1; b2 < len(occs); b2++ {
				if occs[a].positive == occs[b2].positive {
					continue
				}
				t1 := litTypes[occs[a].i][occs[a].j]
				t2 := litTypes[occs[b2].i][occs[b2].j]
				name := fmt.Sprintf("P%s__%s", t1, t2)
				memberConflicts[t1] = append(memberConflicts[t1], name)
				memberConflicts[t2] = append(memberConflicts[t2], name)
			}
		}
	}
	// Deterministic emission order.
	for i, cl := range f.Clauses {
		for j := range cl {
			t := litTypes[i][j]
			impls := append([]string{ClauseInterface(i)}, memberConflicts[t]...)
			b.WriteString(fmt.Sprintf("type %s implements %s {\n  %s: [%s]\n}\n", t, strings.Join(impls, " & "), FieldName, ObjectTypeName))
		}
	}
	emitted := make(map[string]bool)
	for i, cl := range f.Clauses {
		for j := range cl {
			for _, name := range memberConflicts[litTypes[i][j]] {
				if emitted[name] {
					continue
				}
				emitted[name] = true
				b.WriteString(fmt.Sprintf("interface %s {\n  %s: [%s] @uniqueForTarget\n}\n", name, FieldName, ObjectTypeName))
			}
		}
	}

	sdl := b.String()
	doc, err := parser.Parse(sdl)
	if err != nil {
		return nil, fmt.Errorf("reduction: generated SDL does not parse: %w", err)
	}
	s, err := schema.Build(doc, schema.Options{})
	if err != nil {
		return nil, fmt.Errorf("reduction: generated schema does not build: %w", err)
	}
	return &Result{Schema: s, SDL: sdl, Formula: f, literalTypes: litTypes}, nil
}

// WitnessGraph constructs a Property Graph that strongly satisfies the
// reduced schema and contains an OT node, from a satisfying assignment of
// the formula. It returns an error if the assignment does not satisfy
// some clause (in which case no witness exists for that choice).
func (r *Result) WitnessGraph(a cnf.Assignment) (*pg.Graph, error) {
	g := pg.New()
	v0 := g.AddNode(ObjectTypeName)
	for i, cl := range r.Formula.Clauses {
		chosen := -1
		for j, lit := range cl {
			v := lit.Var()
			if v < len(a) && (a[v] == (lit > 0)) {
				chosen = j
				break
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("reduction: assignment does not satisfy clause %d", i+1)
		}
		u := g.AddNode(r.LiteralType(i, chosen))
		g.MustAddEdge(u, v0, FieldName)
	}
	return g, nil
}

// DecodeAssignment extracts a satisfying assignment for the formula from
// a Property Graph that strongly satisfies the reduced schema and
// contains at least one OT node. Variables not fixed by the graph are
// assigned false.
func (r *Result) DecodeAssignment(g *pg.Graph) (cnf.Assignment, error) {
	ots := g.NodesLabeled(ObjectTypeName)
	if len(ots) == 0 {
		return nil, fmt.Errorf("reduction: graph contains no %s node", ObjectTypeName)
	}
	v0 := ots[0]
	a := make(cnf.Assignment, r.Formula.NumVars+1)
	fixed := make([]bool, r.Formula.NumVars+1)
	for _, e := range g.InEdgesLabeled(v0, FieldName) {
		src, _ := g.Endpoints(e)
		label := g.NodeLabel(src)
		i, j, ok := r.locate(label)
		if !ok {
			continue
		}
		lit := r.Formula.Clauses[i][j]
		want := lit > 0
		v := lit.Var()
		if fixed[v] && a[v] != want {
			return nil, fmt.Errorf("reduction: graph selects variable %d both ways (constraint DS3 should have prevented this)", v)
		}
		a[v] = want
		fixed[v] = true
	}
	if !r.Formula.Satisfies(a) {
		return nil, fmt.Errorf("reduction: decoded assignment does not satisfy the formula (graph does not strongly satisfy the schema?)")
	}
	return a, nil
}

// locate maps a literal type name back to its (clause, occurrence).
func (r *Result) locate(typeName string) (int, int, bool) {
	var i, j int
	if _, err := fmt.Sscanf(typeName, "L%d_%d", &i, &j); err != nil {
		return 0, 0, false
	}
	i--
	j--
	if i < 0 || i >= len(r.literalTypes) || j < 0 || j >= len(r.literalTypes[i]) {
		return 0, 0, false
	}
	return i, j, true
}

// Size reports the reduction's output size (types and directives) for the
// polynomiality measurement in experiment E4.
func (r *Result) Size() (types, fields, directives int) {
	for _, td := range r.Schema.Types() {
		switch td.Kind {
		case schema.Object, schema.Interface:
			types++
			fields += len(td.Fields)
			for _, f := range td.Fields {
				directives += len(f.Directives)
			}
		}
	}
	return
}
