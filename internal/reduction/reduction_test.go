package reduction

import (
	"strings"
	"testing"

	"pgschema/internal/cnf"
	"pgschema/internal/pg"
	"pgschema/internal/validate"
)

func TestPaperExampleFormula(t *testing.T) {
	// The Appendix B example: (A ∨ ¬B ∨ C) ∧ (¬A ∨ ¬C) ∧ (D ∨ B)
	// with A=1, B=2, C=3, D=4.
	f := cnf.NewFormula(4)
	f.AddClause(1, -2, 3)
	f.AddClause(-1, -3)
	f.AddClause(4, 2)
	r, err := FromCNF(f)
	if err != nil {
		t.Fatal(err)
	}
	// 1 OT + 7 literal types = 8 object types; 3 clause interfaces;
	// conflict interfaces for pairs (A,¬A), (¬B,B), (C,¬C) = 3.
	types, fields, directives := r.Size()
	if types != 8+3+3 {
		t.Errorf("types: %d, want 14\n%s", types, r.SDL)
	}
	if fields == 0 || directives == 0 {
		t.Errorf("fields %d directives %d", fields, directives)
	}
	// The formula is satisfiable (e.g. A=1, C=0, B=0, D=1): a witness
	// graph exists and strongly satisfies the schema.
	a := make(cnf.Assignment, 5)
	a[1], a[2], a[3], a[4] = true, false, false, true
	if !f.Satisfies(a) {
		t.Fatal("test assignment should satisfy the formula")
	}
	g, err := r.WitnessGraph(a)
	if err != nil {
		t.Fatal(err)
	}
	res := validate.Validate(r.Schema, g, validate.Options{})
	if !res.OK() {
		t.Fatalf("witness graph does not strongly satisfy the schema: %v", res.Violations)
	}
	// And the assignment can be decoded back.
	back, err := r.DecodeAssignment(g)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Satisfies(back) {
		t.Error("decoded assignment does not satisfy the formula")
	}
}

func TestWitnessFailsForBadAssignment(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(1)
	r, err := FromCNF(f)
	if err != nil {
		t.Fatal(err)
	}
	bad := make(cnf.Assignment, 2) // x1 = false does not satisfy (x1)
	if _, err := r.WitnessGraph(bad); err == nil {
		t.Error("expected error for non-satisfying assignment")
	}
}

func TestConflictingGraphRejected(t *testing.T) {
	// (A) ∧ (¬A): unsatisfiable. A graph trying to satisfy both clause
	// constraints must violate @uniqueForTarget.
	f := cnf.NewFormula(1)
	f.AddClause(1)
	f.AddClause(-1)
	r, err := FromCNF(f)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Schema // silence linters
	_ = g
	// Hand-build the only candidate: OT node + both literal nodes.
	graph := mustWitnessBoth(t, r)
	res := validate.Validate(r.Schema, graph, validate.Options{})
	found := false
	for _, v := range res.Violations {
		if v.Rule == validate.DS3 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a DS3 violation, got %v", res.Violations)
	}
}

// mustWitnessBoth builds the graph selecting both complementary literals.
func mustWitnessBoth(t *testing.T, r *Result) *pg.Graph {
	t.Helper()
	g := pg.New()
	v0 := g.AddNode(ObjectTypeName)
	u1 := g.AddNode(r.LiteralType(0, 0))
	u2 := g.AddNode(r.LiteralType(1, 0))
	g.MustAddEdge(u1, v0, FieldName)
	g.MustAddEdge(u2, v0, FieldName)
	return g
}

func TestEmptyClauseUnsatisfiable(t *testing.T) {
	// An empty clause yields a clause interface with no implementers;
	// any OT node then violates DS4 and no witness exists.
	f := cnf.NewFormula(0)
	f.Clauses = append(f.Clauses, cnf.Clause{})
	r, err := FromCNF(f)
	if err != nil {
		t.Fatal(err)
	}
	g := pg.New()
	g.AddNode(ObjectTypeName)
	res := validate.Validate(r.Schema, g, validate.Options{})
	found := false
	for _, v := range res.Violations {
		if v.Rule == validate.DS4 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected DS4, got %v", res.Violations)
	}
}

func TestReductionSizePolynomial(t *testing.T) {
	// |types| must be 1 + Σ|ψi| + |clauses| + O(occurrence pairs): for a
	// 3-CNF with m clauses, at most 1 + 3m + m + 9·(pairs) — verify the
	// quadratic bound empirically.
	for _, m := range []int{5, 10, 20, 40} {
		f := cnf.Random3SAT(10, m, 7)
		r, err := FromCNF(f)
		if err != nil {
			t.Fatal(err)
		}
		types, _, _ := r.Size()
		bound := 1 + 4*m + 9*m*m
		if types > bound {
			t.Errorf("m=%d: %d types exceeds the quadratic bound %d", m, types, bound)
		}
	}
}

func TestRandomFormulasWitnessable(t *testing.T) {
	// For every satisfiable random formula, the DPLL model yields a
	// witness graph that strongly satisfies the reduced schema, and the
	// decoded assignment satisfies the formula.
	sat, unsat := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		f := cnf.Random3SAT(6, 10+int(seed), seed)
		r, err := FromCNF(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, ok := cnf.Solve(f)
		if !ok {
			unsat++
			continue
		}
		sat++
		g, err := r.WitnessGraph(a)
		if err != nil {
			t.Fatalf("seed %d: witness: %v", seed, err)
		}
		res := validate.Validate(r.Schema, g, validate.Options{})
		if !res.OK() {
			t.Fatalf("seed %d: witness invalid: %v\nSDL:\n%s", seed, res.Violations, r.SDL)
		}
		if _, err := r.DecodeAssignment(g); err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
	}
	if sat == 0 {
		t.Error("no satisfiable instances exercised")
	}
}

func TestSDLContainsExpectedShapes(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(1, -2)
	r, err := FromCNF(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"type OT",
		"interface C1",
		"@requiredForTarget",
		"type L1_1 implements C1",
		"type L1_2 implements C1",
	} {
		if !strings.Contains(r.SDL, want) {
			t.Errorf("SDL missing %q:\n%s", want, r.SDL)
		}
	}
	// x1 and x2 never occur with both polarities: no conflict interfaces.
	if strings.Contains(r.SDL, "@uniqueForTarget") {
		t.Errorf("unexpected conflict interface:\n%s", r.SDL)
	}
}
