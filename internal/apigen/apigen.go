// Package apigen implements the extension step the paper sketches in
// §3.6: turning an SDL-based Property Graph schema into an actual GraphQL
// API schema. Two gaps have to be closed:
//
//  1. GraphQL API schemas require a query root operation type; apigen
//     synthesizes one with, per object type T, a lookup field
//     `t(...)` keyed by the type's @key fields (when present) and a
//     listing field `allTs`.
//  2. Property Graph query languages traverse edges both ways, but an
//     SDL-based PG schema mentions each edge type only on the source
//     side. apigen adds, for every relationship field f declared on a
//     type S with target base type T, an inverse field `_fOfS: [S]` to
//     T (and to every object type that can be a target of f), so the
//     API supports bidirectional traversal.
//
// The output is a new AST document: the original definitions (minus the
// constraint directives, which have no meaning to GraphQL servers,
// unless KeepConstraintDirectives is set) plus the synthesized parts.
package apigen

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pgschema/internal/ast"
	"pgschema/internal/printer"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

// Options configures the extension.
type Options struct {
	// QueryTypeName names the synthesized root type (default "Query").
	QueryTypeName string
	// KeepConstraintDirectives retains @required/@key/… annotations in
	// the output (useful when the output is consumed by tooling that
	// understands them; GraphQL servers reject undeclared directives,
	// so by default they are stripped and re-declared as directive
	// definitions instead).
	KeepConstraintDirectives bool
	// NoInverseFields suppresses the bidirectional-traversal fields.
	NoInverseFields bool
}

// ErrQueryTypeDeclared reports that the input schema already declares a
// type with the query root's name, so no API schema can be synthesized
// for it. Callers that can serve such schemas anyway (the original SDL
// still describes a valid Property Graph schema) detect this case with
// errors.Is and degrade instead of failing.
var ErrQueryTypeDeclared = errors.New("query root type name already declared")

// Extend builds the GraphQL API schema document for a Property Graph
// schema. The schema must have been built by schema.Build.
func Extend(s *schema.Schema, opts Options) (*ast.Document, error) {
	if opts.QueryTypeName == "" {
		opts.QueryTypeName = "Query"
	}
	if s.Type(opts.QueryTypeName) != nil {
		return nil, fmt.Errorf("apigen: schema already declares a type named %q: %w", opts.QueryTypeName, ErrQueryTypeDeclared)
	}
	doc := &ast.Document{}

	// Re-emit the declared types.
	inverses := map[string][]ast.FieldDefinition{} // target type -> inverse fields
	if !opts.NoInverseFields {
		collectInverses(s, inverses)
	}
	for _, td := range s.Types() {
		if isBuiltin(td.Name) {
			continue
		}
		def := emitType(s, td, inverses[td.Name], opts)
		if def != nil {
			doc.Definitions = append(doc.Definitions, def)
		}
	}

	// The query root: per object type a by-key lookup and a listing.
	query := &ast.ObjectTypeDefinition{}
	query.Name = opts.QueryTypeName
	query.Description = "Synthesized root operation type (apigen)."
	for _, td := range s.ObjectTypes() {
		lookupArgs := keyArguments(s, td)
		if len(lookupArgs) > 0 {
			query.Fields = append(query.Fields, ast.FieldDefinition{
				Name:      LookupFieldName(td.Name),
				Arguments: lookupArgs,
				Type:      &ast.NamedType{Name: td.Name},
			})
		}
		query.Fields = append(query.Fields, ast.FieldDefinition{
			Name: ListFieldName(td.Name),
			Type: &ast.ListType{Elem: &ast.NonNullType{Elem: &ast.NamedType{Name: td.Name}}},
		})
	}
	doc.Definitions = append(doc.Definitions, query)
	doc.Definitions = append(doc.Definitions, &ast.SchemaDefinition{
		RootOperations: []ast.RootOperation{{Operation: "query", Type: opts.QueryTypeName}},
	})

	if opts.KeepConstraintDirectives {
		doc.Definitions = append(constraintDirectiveDefs(), doc.Definitions...)
	}
	return doc, nil
}

// ExtendSDL is Extend followed by printing.
func ExtendSDL(s *schema.Schema, opts Options) (string, error) {
	doc, err := Extend(s, opts)
	if err != nil {
		return "", err
	}
	return printer.Print(doc), nil
}

// collectInverses computes, for every object type, the inverse traversal
// fields it should carry: one per (source type, relationship field) that
// can target it.
func collectInverses(s *schema.Schema, out map[string][]ast.FieldDefinition) {
	for _, td := range s.ObjectTypes() {
		for _, f := range td.Fields {
			if !s.IsRelationship(f) {
				continue
			}
			inv := ast.FieldDefinition{
				Name:        InverseFieldName(f.Name, td.Name),
				Description: fmt.Sprintf("Sources of incoming %q edges from %s nodes (apigen inverse).", f.Name, td.Name),
				Type:        &ast.ListType{Elem: &ast.NonNullType{Elem: &ast.NamedType{Name: td.Name}}},
			}
			for _, target := range s.ConcreteTargets(f.Type.Base()) {
				out[target] = append(out[target], inv)
			}
		}
	}
	for k := range out {
		sort.Slice(out[k], func(i, j int) bool { return out[k][i].Name < out[k][j].Name })
	}
}

// InverseFieldName builds the inverse-traversal field name
// `_<field>Of<Source>`, e.g. `_authorOfBook`. The query executor resolves
// these names back to (field, source type) pairs.
func InverseFieldName(field, source string) string {
	return "_" + field + "Of" + source
}

// LookupFieldName is the query-root lookup field for a type ("author"
// for Author).
func LookupFieldName(typeName string) string { return lowerFirst(typeName) }

// ListFieldName is the query-root listing field for a type ("allAuthors"
// for Author).
func ListFieldName(typeName string) string { return "all" + plural(typeName) }

func emitType(s *schema.Schema, td *schema.TypeDef, inverses []ast.FieldDefinition, opts Options) ast.Definition {
	switch td.Kind {
	case schema.Scalar:
		d := &ast.ScalarTypeDefinition{}
		d.Name, d.Description = td.Name, td.Description
		return d
	case schema.Enum:
		d := &ast.EnumTypeDefinition{}
		d.Name, d.Description = td.Name, td.Description
		for _, v := range td.EnumValues {
			d.Values = append(d.Values, ast.EnumValueDefinition{Name: v})
		}
		return d
	case schema.Union:
		d := &ast.UnionTypeDefinition{}
		d.Name, d.Description = td.Name, td.Description
		d.Members = append(d.Members, td.Members...)
		return d
	case schema.Interface:
		d := &ast.InterfaceTypeDefinition{}
		d.Name, d.Description = td.Name, td.Description
		d.Fields = emitFields(s, td, nil, opts)
		return d
	case schema.Object:
		d := &ast.ObjectTypeDefinition{}
		d.Name, d.Description = td.Name, td.Description
		d.Interfaces = append(d.Interfaces, td.Interfaces...)
		d.Fields = emitFields(s, td, inverses, opts)
		return d
	}
	return nil
}

func emitFields(s *schema.Schema, td *schema.TypeDef, inverses []ast.FieldDefinition, opts Options) []ast.FieldDefinition {
	var out []ast.FieldDefinition
	for _, f := range td.Fields {
		fd := ast.FieldDefinition{
			Name:        f.Name,
			Description: f.Description,
			Type:        typeToAST(f.Type),
		}
		for _, a := range f.Args {
			iv := ast.InputValueDefinition{Name: a.Name, Description: a.Description, Type: typeToAST(a.Type)}
			out := iv // no defaults carried over; PG edge properties have none
			fd.Arguments = append(fd.Arguments, out)
		}
		if opts.KeepConstraintDirectives {
			for _, app := range f.Directives {
				fd.Directives = append(fd.Directives, appliedToAST(app))
			}
		}
		out = append(out, fd)
	}
	out = append(out, inverses...)
	return out
}

func typeToAST(t schema.TypeRef) ast.Type {
	var inner ast.Type = &ast.NamedType{Name: t.Name}
	if t.List {
		if t.ElemNonNull {
			inner = &ast.NonNullType{Elem: inner}
		}
		inner = &ast.ListType{Elem: inner}
	}
	if t.NonNull {
		inner = &ast.NonNullType{Elem: inner}
	}
	return inner
}

func appliedToAST(app schema.Applied) ast.Directive {
	d := ast.Directive{Name: app.Name}
	names := make([]string, 0, len(app.Args))
	for n := range app.Args {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d.Arguments = append(d.Arguments, ast.Argument{Name: n, Value: valueToAST(app.Args[n])})
	}
	return d
}

func valueToAST(v values.Value) ast.Value {
	switch v.Kind() {
	case values.KindNull:
		return ast.NullValue{}
	case values.KindInt:
		return ast.IntValue{Raw: strconv.FormatInt(v.AsInt(), 10)}
	case values.KindFloat:
		return ast.FloatValue{Raw: strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)}
	case values.KindBoolean:
		return ast.BooleanValue{Value: v.AsBool()}
	case values.KindEnum:
		return ast.EnumValue{Name: v.AsString()}
	case values.KindList:
		lv := ast.ListValue{}
		for i := 0; i < v.Len(); i++ {
			lv.Values = append(lv.Values, valueToAST(v.Elem(i)))
		}
		return lv
	default: // String, ID
		return ast.StringValue{Value: v.AsString()}
	}
}

// keyArguments derives lookup arguments from the first @key of the type.
func keyArguments(s *schema.Schema, td *schema.TypeDef) []ast.InputValueDefinition {
	sets := td.KeyFieldSets()
	if len(sets) == 0 {
		return nil
	}
	var out []ast.InputValueDefinition
	for _, fname := range sets[0] {
		f := td.Field(fname)
		if f == nil || !s.IsAttribute(f) {
			continue
		}
		at := f.Type
		at.NonNull = true // lookups require the full key
		out = append(out, ast.InputValueDefinition{Name: fname, Type: typeToAST(at)})
	}
	return out
}

// constraintDirectiveDefs declares the six paper directives so that the
// emitted schema is self-contained when KeepConstraintDirectives is set.
func constraintDirectiveDefs() []ast.Definition {
	noArg := func(name, loc string) ast.Definition {
		return &ast.DirectiveDefinition{Name: name, Locations: []string{loc}}
	}
	return []ast.Definition{
		noArg("required", "FIELD_DEFINITION"),
		noArg("distinct", "FIELD_DEFINITION"),
		noArg("noLoops", "FIELD_DEFINITION"),
		noArg("uniqueForTarget", "FIELD_DEFINITION"),
		noArg("requiredForTarget", "FIELD_DEFINITION"),
		&ast.DirectiveDefinition{
			Name: "key",
			Arguments: []ast.InputValueDefinition{{
				Name: "fields",
				Type: &ast.NonNullType{Elem: &ast.ListType{Elem: &ast.NonNullType{Elem: &ast.NamedType{Name: "String"}}}},
			}},
			Repeatable: true,
			Locations:  []string{"OBJECT", "INTERFACE"},
		},
	}
}

func isBuiltin(name string) bool {
	switch name {
	case "Int", "Float", "String", "Boolean", "ID":
		return true
	}
	return false
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

// plural is a best-effort English pluralizer for field names.
func plural(s string) string {
	switch {
	case strings.HasSuffix(s, "s"), strings.HasSuffix(s, "x"), strings.HasSuffix(s, "ch"):
		return s + "es"
	case strings.HasSuffix(s, "y") && len(s) > 1 && !strings.ContainsRune("aeiou", rune(s[len(s)-2])):
		return s[:len(s)-1] + "ies"
	default:
		return s + "s"
	}
}
