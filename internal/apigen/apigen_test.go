package apigen

import (
	"errors"
	"strings"
	"testing"

	"pgschema/internal/parser"
	"pgschema/internal/schema"
)

func build(t *testing.T, src string) *schema.Schema {
	t.Helper()
	doc, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := schema.Build(doc, schema.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

const bookSDL = `
type Author @key(fields: ["name"]) {
	name: String! @required
	favoriteBook: Book
}
type Book {
	title: String!
	author(role: String): [Author] @required
}
scalar ISBN`

func TestExtendProducesValidSDL(t *testing.T) {
	s := build(t, bookSDL)
	sdl, err := ExtendSDL(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The output must parse and build as a schema again.
	doc, err := parser.Parse(sdl)
	if err != nil {
		t.Fatalf("generated SDL does not parse: %v\n%s", err, sdl)
	}
	out, err := schema.Build(doc, schema.Options{AllowUnknownDirectives: true})
	if err != nil {
		t.Fatalf("generated SDL does not build: %v\n%s", err, sdl)
	}
	if out.Type("Query") == nil {
		t.Error("no Query type generated")
	}
}

func TestQueryRootFields(t *testing.T) {
	s := build(t, bookSDL)
	doc, err := Extend(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sdl, _ := ExtendSDL(s, Options{})
	_ = doc
	// Listing fields for every object type.
	for _, want := range []string{"allAuthors", "allBooks"} {
		if !strings.Contains(sdl, want) {
			t.Errorf("missing %s in:\n%s", want, sdl)
		}
	}
	// A keyed lookup only for Author (it has a @key).
	if !strings.Contains(sdl, "author(name: String!): Author") {
		t.Errorf("missing keyed lookup in:\n%s", sdl)
	}
	if strings.Contains(sdl, "book(") {
		t.Errorf("unexpected keyless lookup in:\n%s", sdl)
	}
	// The schema block binds the query root.
	if !strings.Contains(sdl, "query: Query") {
		t.Errorf("missing schema block in:\n%s", sdl)
	}
}

func TestInverseFields(t *testing.T) {
	s := build(t, bookSDL)
	sdl, err := ExtendSDL(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Book gets the inverse of Author.favoriteBook; Author the inverse
	// of Book.author.
	if !strings.Contains(sdl, "_favoriteBookOfAuthor: [Author!]") {
		t.Errorf("missing inverse on Book:\n%s", sdl)
	}
	if !strings.Contains(sdl, "_authorOfBook: [Book!]") {
		t.Errorf("missing inverse on Author:\n%s", sdl)
	}
	// Suppressed when asked.
	sdl2, err := ExtendSDL(s, Options{NoInverseFields: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sdl2, "_favoriteBookOfAuthor") {
		t.Error("inverse fields present despite NoInverseFields")
	}
}

func TestInverseFieldsThroughInterface(t *testing.T) {
	// A relationship targeting an interface yields inverse fields on
	// every implementing type.
	s := build(t, `
		type Person { favoriteFood: Food }
		interface Food { name: String! }
		type Pizza implements Food { name: String! }
		type Pasta implements Food { name: String! }`)
	sdl, err := ExtendSDL(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []string{"Pizza", "Pasta"} {
		idx := strings.Index(sdl, "type "+typ)
		if idx < 0 {
			t.Fatalf("type %s missing", typ)
		}
		section := sdl[idx:]
		if end := strings.Index(section, "}"); end > 0 {
			section = section[:end]
		}
		if !strings.Contains(section, "_favoriteFoodOfPerson: [Person!]") {
			t.Errorf("type %s lacks the inverse field:\n%s", typ, section)
		}
	}
}

func TestDirectivesStrippedByDefault(t *testing.T) {
	s := build(t, bookSDL)
	sdl, err := ExtendSDL(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"@required", "@key"} {
		if strings.Contains(sdl, d) {
			t.Errorf("constraint directive %s leaked into API schema:\n%s", d, sdl)
		}
	}
}

func TestKeepConstraintDirectives(t *testing.T) {
	s := build(t, bookSDL)
	sdl, err := ExtendSDL(s, Options{KeepConstraintDirectives: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sdl, "@required") {
		t.Errorf("directives not kept:\n%s", sdl)
	}
	if !strings.Contains(sdl, "directive @required") {
		t.Errorf("directive declarations missing:\n%s", sdl)
	}
	// Still parses and builds.
	doc, err := parser.Parse(sdl)
	if err != nil {
		t.Fatalf("generated SDL does not parse: %v", err)
	}
	if _, err := schema.Build(doc, schema.Options{}); err != nil {
		t.Fatalf("generated SDL does not build: %v\n%s", err, sdl)
	}
}

func TestQueryNameCollision(t *testing.T) {
	s := build(t, `type Query { x: Int }`)
	_, err := Extend(s, Options{})
	if err == nil {
		t.Error("expected an error for an existing Query type")
	}
	// The collision is detectable as the sentinel, so callers can
	// degrade instead of treating it as a generation failure.
	if !errors.Is(err, ErrQueryTypeDeclared) {
		t.Errorf("error %v does not wrap ErrQueryTypeDeclared", err)
	}
	// An alternate name works.
	if _, err := Extend(s, Options{QueryTypeName: "Root"}); err != nil {
		t.Errorf("alternate root name: %v", err)
	}
}

func TestEnumAndUnionCarriedOver(t *testing.T) {
	s := build(t, `
		enum Color { RED GREEN }
		union Thing = A | B
		type A { c: Color }
		type B { x: Int }`)
	sdl, err := ExtendSDL(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sdl, "enum Color") || !strings.Contains(sdl, "union Thing = A | B") {
		t.Errorf("enum/union lost:\n%s", sdl)
	}
}

func TestPlural(t *testing.T) {
	cases := map[string]string{
		"Book": "Books", "Bus": "Buses", "Box": "Boxes",
		"Category": "Categories", "Day": "Days", "Match": "Matches",
	}
	for in, want := range cases {
		if got := plural(in); got != want {
			t.Errorf("plural(%s) = %s, want %s", in, got, want)
		}
	}
}
