package cnf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestSolveTrivial(t *testing.T) {
	f := NewFormula(0)
	if _, ok := Solve(f); !ok {
		t.Error("empty formula must be satisfiable")
	}
	f.AddClause(1)
	a, ok := Solve(f)
	if !ok || !a[1] {
		t.Error("unit clause (1) must force x1=true")
	}
	f.AddClause(-1)
	if _, ok := Solve(f); ok {
		t.Error("(1)∧(¬1) must be unsatisfiable")
	}
}

func TestSolveEmptyClause(t *testing.T) {
	f := NewFormula(1)
	f.AddClause(1)
	f.Clauses = append(f.Clauses, Clause{})
	if _, ok := Solve(f); ok {
		t.Error("formula with the empty clause must be unsatisfiable")
	}
}

func TestSolveSmallSat(t *testing.T) {
	// (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (x1 ∨ ¬x2) — satisfied by x1=x2=true.
	f := NewFormula(2)
	f.AddClause(1, 2)
	f.AddClause(-1, 2)
	f.AddClause(1, -2)
	a, ok := Solve(f)
	if !ok {
		t.Fatal("should be satisfiable")
	}
	if !f.Satisfies(a) {
		t.Error("returned assignment does not satisfy the formula")
	}
}

func TestSolveSmallUnsat(t *testing.T) {
	// All four clauses over two variables: unsatisfiable.
	f := NewFormula(2)
	f.AddClause(1, 2)
	f.AddClause(1, -2)
	f.AddClause(-1, 2)
	f.AddClause(-1, -2)
	if _, ok := Solve(f); ok {
		t.Error("complete 2-variable clause set must be unsatisfiable")
	}
}

func TestSolvePigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons in 3 holes — classically hard, unsatisfiable.
	f := pigeonhole(4, 3)
	if _, ok := Solve(f); ok {
		t.Error("PHP(4,3) must be unsatisfiable")
	}
	// PHP(3,3) is satisfiable.
	if _, ok := Solve(pigeonhole(3, 3)); !ok {
		t.Error("PHP(3,3) must be satisfiable")
	}
}

// pigeonhole builds the pigeonhole principle formula: p pigeons, h holes.
func pigeonhole(p, h int) *Formula {
	f := NewFormula(p * h)
	v := func(i, j int) Lit { return Lit(i*h + j + 1) } // pigeon i in hole j
	for i := 0; i < p; i++ {
		cl := make([]Lit, h)
		for j := 0; j < h; j++ {
			cl[j] = v(i, j)
		}
		f.AddClause(cl...)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				f.AddClause(v(i1, j).Neg(), v(i2, j).Neg())
			}
		}
	}
	return f
}

// TestSolveAgainstBruteForce cross-checks DPLL against exhaustive
// enumeration on random small formulas.
func TestSolveAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		n := 3 + int(seed%5)  // 3..7 variables
		m := 2 + int(seed%15) // 2..16 clauses
		f := Random3SAT(n, m, seed)
		_, got := Solve(f)
		want := bruteForce(f)
		if got != want {
			t.Fatalf("seed %d (n=%d m=%d): DPLL=%v brute=%v\n%s", seed, n, m, got, want, f)
		}
	}
}

func bruteForce(f *Formula) bool {
	n := f.NumVars
	for mask := 0; mask < 1<<n; mask++ {
		a := make(Assignment, n+1)
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if f.Satisfies(a) {
			return true
		}
	}
	return false
}

// Property: when DPLL reports satisfiable, the returned assignment
// actually satisfies the formula.
func TestModelsAreValid(t *testing.T) {
	prop := func(seed int64) bool {
		f := Random3SAT(6, 20, seed)
		a, ok := Solve(f)
		if !ok {
			return true
		}
		return f.Satisfies(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := Random3SAT(10, 30, 42)
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g.NumVars, len(g.Clauses), f.NumVars, len(f.Clauses))
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(g.Clauses[i]) {
			t.Fatalf("clause %d length changed", i)
		}
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				t.Fatalf("clause %d literal %d changed", i, j)
			}
		}
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"p cnf x 2\n1 0\n", "bad variable count"},
		{"p wrong 2 2\n", "bad DIMACS header"},
		{"1 2 0\n", "before DIMACS header"},
		{"p cnf 2 1\n1 zebra 0\n", "bad literal"},
		{"p cnf 1 1\n5 0\n", "exceeds declared"},
		{"p cnf 2 1\n1 2\n", "unterminated clause"},
	}
	for _, c := range cases {
		_, err := ParseDIMACS(strings.NewReader(c.src))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseDIMACS(%q): got %v, want error containing %q", c.src, err, c.want)
		}
	}
}

func TestParseDIMACSComments(t *testing.T) {
	f, err := ParseDIMACS(strings.NewReader("c a comment\np cnf 2 2\n1 -2 0\nc mid comment\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 2 || f.Clauses[0][1] != -2 {
		t.Errorf("parsed: %v", f)
	}
}

func TestVars(t *testing.T) {
	f := NewFormula(0)
	f.AddClause(3, -1)
	f.AddClause(-3, 7)
	got := f.Vars()
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 7 {
		t.Errorf("Vars: %v", got)
	}
}

func TestMaxDecisions(t *testing.T) {
	f := pigeonhole(8, 7) // big enough to need many decisions
	s := Solver{MaxDecisions: 3}
	if _, ok := s.Solve(f); ok {
		t.Error("aborted solve must not report satisfiable")
	}
	if !s.Stats.Aborted {
		t.Error("Stats.Aborted should be set")
	}
}

func TestSolverStats(t *testing.T) {
	var s Solver
	f := Random3SAT(8, 30, 1)
	s.Solve(f)
	if s.Stats.Propagations == 0 && s.Stats.Decisions == 0 {
		t.Error("expected some search effort to be recorded")
	}
}
