package cnf

import "math/rand"

// Random3SAT generates a uniform random 3-CNF formula with n variables
// and m clauses (distinct variables within each clause), deterministic
// for a fixed seed. At clause/variable ratio ≈ 4.27 the instances sit at
// the classic phase transition; the E4 experiment sweeps this ratio.
func Random3SAT(n, m int, seed int64) *Formula {
	rnd := rand.New(rand.NewSource(seed))
	f := NewFormula(n)
	for i := 0; i < m; i++ {
		vars := rnd.Perm(n)[:3]
		cl := make([]Lit, 3)
		for j, v := range vars {
			l := Lit(v + 1)
			if rnd.Intn(2) == 0 {
				l = l.Neg()
			}
			cl[j] = l
		}
		f.AddClause(cl...)
	}
	return f
}
