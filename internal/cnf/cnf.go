// Package cnf implements propositional formulas in conjunctive normal
// form, the DIMACS interchange format, and a DPLL satisfiability solver.
//
// The package serves two roles in the reproduction: it is the reference
// SAT oracle against which the Theorem 2 reduction is cross-checked, and
// it is the engine behind the bounded finite-model search in the sat
// package.
package cnf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Lit is a literal: a positive or negative variable. Variables are
// numbered from 1; literal +v is the variable, -v its negation. 0 is not
// a valid literal.
type Lit int

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the negated literal.
func (l Lit) Neg() Lit { return -l }

// Clause is a disjunction of literals.
type Clause []Lit

// Formula is a conjunction of clauses over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewFormula returns an empty formula over n variables.
func NewFormula(n int) *Formula { return &Formula{NumVars: n} }

// AddClause appends a clause, growing NumVars to cover its variables.
func (f *Formula) AddClause(lits ...Lit) {
	for _, l := range lits {
		if l == 0 {
			panic("cnf: literal 0 in clause")
		}
		if l.Var() > f.NumVars {
			f.NumVars = l.Var()
		}
	}
	cl := make(Clause, len(lits))
	copy(cl, lits)
	f.Clauses = append(f.Clauses, cl)
}

// NewVar allocates a fresh variable and returns its positive literal.
func (f *Formula) NewVar() Lit {
	f.NumVars++
	return Lit(f.NumVars)
}

// Assignment maps variables (1-based) to truth values. Index 0 is unused.
type Assignment []bool

// Satisfies reports whether the assignment satisfies the formula.
func (f *Formula) Satisfies(a Assignment) bool {
	for _, cl := range f.Clauses {
		ok := false
		for _, l := range cl {
			v := l.Var()
			if v < len(a) && (a[v] == (l > 0)) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// String renders the formula in a compact mathematical notation.
func (f *Formula) String() string {
	var parts []string
	for _, cl := range f.Clauses {
		lits := make([]string, len(cl))
		for i, l := range cl {
			lits[i] = strconv.Itoa(int(l))
		}
		parts = append(parts, "("+strings.Join(lits, "∨")+")")
	}
	return strings.Join(parts, "∧")
}

// WriteDIMACS writes the formula in DIMACS CNF format.
func (f *Formula) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, cl := range f.Clauses {
		for _, l := range cl {
			fmt.Fprintf(bw, "%d ", int(l))
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}

// ParseDIMACS reads a DIMACS CNF file.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	f := &Formula{}
	var cur Clause
	sawHeader := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: bad DIMACS header %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("cnf: bad variable count in %q", line)
			}
			f.NumVars = n
			sawHeader = true
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("cnf: clause before DIMACS header")
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: bad literal %q", tok)
			}
			if v == 0 {
				cl := make(Clause, len(cur))
				copy(cl, cur)
				f.Clauses = append(f.Clauses, cl)
				cur = cur[:0]
				continue
			}
			if abs(v) > f.NumVars {
				return nil, fmt.Errorf("cnf: literal %d exceeds declared variable count %d", v, f.NumVars)
			}
			cur = append(cur, Lit(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) != 0 {
		return nil, fmt.Errorf("cnf: unterminated clause at end of input")
	}
	return f, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Vars returns the sorted list of variables that occur in the formula.
func (f *Formula) Vars() []int {
	seen := make(map[int]bool)
	for _, cl := range f.Clauses {
		for _, l := range cl {
			seen[l.Var()] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
