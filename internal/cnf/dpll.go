package cnf

// Solver is a DPLL satisfiability solver with occurrence-list-driven unit
// propagation, root-level pure-literal elimination, and most-occurrences
// branching. It is deterministic: the same formula always explores the
// same tree.
type Solver struct {
	// Stats are populated by Solve.
	Stats SolverStats

	// MaxDecisions aborts the search after this many branching
	// decisions; 0 means unlimited. When the limit is hit, Solve
	// returns ok=false with Aborted set in Stats.
	MaxDecisions int
}

// SolverStats reports search effort.
type SolverStats struct {
	Decisions    int
	Propagations int
	Aborted      bool
}

// value is a tri-state assignment entry.
type value int8

const (
	unassigned value = iota
	vTrue
	vFalse
)

type searchState struct {
	f      *Formula
	assign []value // 1-based
	occur  [][]int // variable → indices of clauses containing it
	solver *Solver
}

// Solve decides satisfiability. When satisfiable it returns a satisfying
// assignment (1-based; index 0 unused).
func (s *Solver) Solve(f *Formula) (Assignment, bool) {
	s.Stats = SolverStats{}
	st := &searchState{f: f, assign: make([]value, f.NumVars+1), solver: s}
	st.occur = make([][]int, f.NumVars+1)
	for ci, cl := range f.Clauses {
		for _, l := range cl {
			st.occur[l.Var()] = append(st.occur[l.Var()], ci)
		}
	}
	// Root: propagate all initially-unit clauses, then eliminate pure
	// literals once (cheap and often effective; redoing it at every
	// node rarely pays).
	var trail []int
	if !st.propagateAll(&trail) {
		return nil, false
	}
	st.pureLiterals(&trail)
	if !st.propagateAll(&trail) {
		return nil, false
	}
	if !st.dpll() {
		return nil, false
	}
	out := make(Assignment, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = st.assign[v] == vTrue
	}
	return out, true
}

// Solve is a convenience wrapper using a fresh default solver.
func Solve(f *Formula) (Assignment, bool) {
	var s Solver
	return s.Solve(f)
}

func (st *searchState) lit(l Lit) value {
	v := st.assign[l.Var()]
	if v == unassigned {
		return unassigned
	}
	if (v == vTrue) == (l > 0) {
		return vTrue
	}
	return vFalse
}

func (st *searchState) set(l Lit, trail *[]int) {
	if l > 0 {
		st.assign[l.Var()] = vTrue
	} else {
		st.assign[l.Var()] = vFalse
	}
	*trail = append(*trail, l.Var())
}

func (st *searchState) undo(trail []int) {
	for _, v := range trail {
		st.assign[v] = unassigned
	}
}

// checkClause inspects one clause under the current assignment: it
// returns (satisfied, unitLiteral, unassignedCount).
func (st *searchState) checkClause(ci int) (bool, Lit, int) {
	var unit Lit
	n := 0
	for _, l := range st.f.Clauses[ci] {
		switch st.lit(l) {
		case vTrue:
			return true, 0, 0
		case unassigned:
			n++
			unit = l
		}
	}
	return false, unit, n
}

// propagateAll seeds propagation from every clause (used at the root).
func (st *searchState) propagateAll(trail *[]int) bool {
	var queue []int
	for ci := range st.f.Clauses {
		sat, unit, n := st.checkClause(ci)
		if sat {
			continue
		}
		switch n {
		case 0:
			return false
		case 1:
			if st.lit(unit) == unassigned {
				st.set(unit, trail)
				st.solver.Stats.Propagations++
				queue = append(queue, unit.Var())
			}
		}
	}
	return st.propagate(queue, trail)
}

// propagate performs unit propagation from the queued variables, only
// re-examining clauses that contain a newly assigned variable.
func (st *searchState) propagate(queue []int, trail *[]int) bool {
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, ci := range st.occur[v] {
			sat, unit, n := st.checkClause(ci)
			if sat {
				continue
			}
			switch n {
			case 0:
				return false
			case 1:
				st.set(unit, trail)
				st.solver.Stats.Propagations++
				queue = append(queue, unit.Var())
			}
		}
	}
	return true
}

// pureLiterals assigns variables that occur with a single polarity among
// not-yet-satisfied clauses.
func (st *searchState) pureLiterals(trail *[]int) {
	pos := make([]bool, st.f.NumVars+1)
	neg := make([]bool, st.f.NumVars+1)
	for ci, cl := range st.f.Clauses {
		if sat, _, _ := st.checkClause(ci); sat {
			continue
		}
		for _, l := range cl {
			if st.lit(l) == unassigned {
				if l > 0 {
					pos[l.Var()] = true
				} else {
					neg[l.Var()] = true
				}
			}
		}
	}
	for v := 1; v <= st.f.NumVars; v++ {
		if st.assign[v] != unassigned {
			continue
		}
		switch {
		case pos[v] && !neg[v]:
			st.set(Lit(v), trail)
		case neg[v] && !pos[v]:
			st.set(Lit(-v), trail)
		}
	}
}

// chooseBranch returns a literal from the first unsatisfied clause
// (branching true-first then satisfies that clause immediately). This is
// the classic "first open clause" rule: cheap to compute and it focuses
// the search on completing partially decided constraints instead of
// recounting occurrences across the whole formula on every decision.
func (st *searchState) chooseBranch() (Lit, branchStatus) {
	for ci := range st.f.Clauses {
		sat, unit, n := st.checkClause(ci)
		if sat {
			continue
		}
		if n > 0 {
			return unit, branchOpen
		}
		// An all-false clause cannot survive propagation; be safe.
		return 0, branchConflict
	}
	return 0, branchDone // every clause satisfied
}

// branchStatus classifies the chooseBranch outcome.
type branchStatus int

const (
	branchDone branchStatus = iota
	branchOpen
	branchConflict
)

func (st *searchState) dpll() bool {
	branch, status := st.chooseBranch()
	switch status {
	case branchDone:
		return true
	case branchConflict:
		return false
	}
	if st.solver.MaxDecisions > 0 && st.solver.Stats.Decisions >= st.solver.MaxDecisions {
		st.solver.Stats.Aborted = true
		return false
	}
	st.solver.Stats.Decisions++
	for _, l := range [2]Lit{branch, branch.Neg()} {
		var trail []int
		st.set(l, &trail)
		if st.propagate([]int{l.Var()}, &trail) && st.dpll() {
			return true
		}
		st.undo(trail)
		if st.solver.Stats.Aborted {
			break
		}
	}
	return false
}
