// Package values implements the scalar value system of the paper's §4.1:
// the set Vals of scalar values, the special value null, finite lists over
// values, and the membership function values(t) for the five built-in
// GraphQL scalar types (Int, Float, String, Boolean, ID).
//
// Property Graph property values (the range of σ in Definition 2.1) and
// GraphQL argument values are both represented by the immutable Value type.
package values

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic kinds of a Value.
type Kind int

// The value kinds. Null represents the distinguished value null that is
// not in Vals (§4.1); List represents finite lists L(X).
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBoolean
	KindID
	KindEnum
	KindList
)

var kindNames = [...]string{"Null", "Int", "Float", "String", "Boolean", "ID", "Enum", "List"}

// String returns the kind's name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Value is an immutable scalar value, enum value, list of values, or null.
// The zero Value is null.
type Value struct {
	kind Kind
	i    int64
	f    float64
	b    bool
	s    string
	list []Value
}

// Null is the distinguished null value (not a member of Vals).
var Null = Value{kind: KindNull}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Boolean returns a boolean value.
func Boolean(v bool) Value { return Value{kind: KindBoolean, b: v} }

// ID returns an identifier value.
func ID(v string) Value { return Value{kind: KindID, s: v} }

// Enum returns an enum value (a bare name).
func Enum(name string) Value { return Value{kind: KindEnum, s: name} }

// List returns a list value over the given elements. The elements are
// copied, so later mutation of the argument slice does not affect the list.
func List(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Value{kind: KindList, list: cp}
}

// Kind returns the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; valid only for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload as float64 for KindFloat or KindInt.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the textual payload for KindString, KindID, and KindEnum.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload; valid only for KindBoolean.
func (v Value) AsBool() bool { return v.b }

// Len returns the number of elements for KindList, else 0.
func (v Value) Len() int { return len(v.list) }

// Elem returns the i-th list element; valid only for KindList.
func (v Value) Elem(i int) Value { return v.list[i] }

// Elems returns a copy of the list elements (nil for non-lists).
func (v Value) Elems() []Value {
	if v.kind != KindList {
		return nil
	}
	cp := make([]Value, len(v.list))
	copy(cp, v.list)
	return cp
}

// Equal reports deep structural equality. Int and Float values compare
// across kinds when numerically equal (3 == 3.0), matching the coercion
// behaviour of the GraphQL value system; String and ID compare across
// kinds when textually equal, as Property Graph stores do not distinguish
// identifier strings from plain strings.
func (v Value) Equal(w Value) bool {
	if v.kind == KindList || w.kind == KindList {
		if v.kind != KindList || w.kind != KindList || len(v.list) != len(w.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(w.list[i]) {
				return false
			}
		}
		return true
	}
	if isNumeric(v.kind) && isNumeric(w.kind) {
		if v.kind == KindInt && w.kind == KindInt {
			return v.i == w.i
		}
		return v.AsFloat() == w.AsFloat()
	}
	if isTextual(v.kind) && isTextual(w.kind) {
		return v.s == w.s
	}
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBoolean:
		return v.b == w.b
	}
	return false
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

func isTextual(k Kind) bool { return k == KindString || k == KindID || k == KindEnum }

// String renders the value in GraphQL literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString, KindID:
		return strconv.Quote(v.s)
	case KindEnum:
		return v.s
	case KindBoolean:
		return strconv.FormatBool(v.b)
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
	return "?"
}

// Key returns a canonical string usable as a map key for deduplication,
// consistent with Equal (values that are Equal yield the same key).
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindInt:
		return "f:" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString, KindID, KindEnum:
		return "s:" + v.s
	case KindBoolean:
		return "b:" + strconv.FormatBool(v.b)
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.Key()
		}
		return "l:[" + strings.Join(parts, ",") + "]"
	}
	return "?"
}

// BuiltinScalars lists the five built-in scalar type names of §4.1.
var BuiltinScalars = []string{"Int", "Float", "String", "Boolean", "ID"}

// IsBuiltinScalar reports whether name is one of the five built-ins.
func IsBuiltinScalar(name string) bool {
	switch name {
	case "Int", "Float", "String", "Boolean", "ID":
		return true
	}
	return false
}

// BuiltinMember implements values(t) for the built-in scalar types:
// it reports whether v ∈ values(t). Null is never a member (null is added
// by valuesW, not values). The membership rules follow the result-coercion
// rules of the GraphQL specification:
//
//   - Int:     integer values within 32-bit range (§3.5.1)
//   - Float:   float or integer values (§3.5.2)
//   - String:  string values (§3.5.3)
//   - Boolean: boolean values (§3.5.4)
//   - ID:      string or integer values (§3.5.5)
func BuiltinMember(name string, v Value) bool {
	if v.kind == KindNull || v.kind == KindList {
		return false
	}
	switch name {
	case "Int":
		return v.kind == KindInt && v.i >= math.MinInt32 && v.i <= math.MaxInt32
	case "Float":
		return v.kind == KindFloat || v.kind == KindInt
	case "String":
		return v.kind == KindString || v.kind == KindID
	case "Boolean":
		return v.kind == KindBoolean
	case "ID":
		return v.kind == KindID || v.kind == KindString || v.kind == KindInt
	}
	return false
}

// BuiltinMemberFunc returns the membership predicate for one built-in
// scalar type, resolved once so hot validation loops pay a direct call
// instead of a per-value name switch. Nil for non-builtin names. Each
// predicate matches BuiltinMember(name, ·) exactly (null and list values
// are never members — their kinds simply fail the checks).
func BuiltinMemberFunc(name string) func(Value) bool {
	switch name {
	case "Int":
		return func(v Value) bool { return v.kind == KindInt && v.i >= math.MinInt32 && v.i <= math.MaxInt32 }
	case "Float":
		return func(v Value) bool { return v.kind == KindFloat || v.kind == KindInt }
	case "String":
		return func(v Value) bool { return v.kind == KindString || v.kind == KindID }
	case "Boolean":
		return func(v Value) bool { return v.kind == KindBoolean }
	case "ID":
		return func(v Value) bool { return v.kind == KindID || v.kind == KindString || v.kind == KindInt }
	}
	return nil
}

// MarshalJSON encodes the value as JSON. Enum values encode as strings.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case KindNull:
		return []byte("null"), nil
	case KindInt:
		return json.Marshal(v.i)
	case KindFloat:
		return json.Marshal(v.f)
	case KindString, KindID, KindEnum:
		return json.Marshal(v.s)
	case KindBoolean:
		return json.Marshal(v.b)
	case KindList:
		if v.list == nil {
			return []byte("[]"), nil
		}
		return json.Marshal(v.list)
	}
	return nil, fmt.Errorf("values: cannot marshal kind %v", v.kind)
}

// UnmarshalJSON decodes a JSON value. Numbers without fraction or exponent
// decode as Int, others as Float; strings decode as String.
func (v *Value) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	parsed, err := fromJSON(raw)
	if err != nil {
		return err
	}
	*v = parsed
	return nil
}

func fromJSON(raw any) (Value, error) {
	switch x := raw.(type) {
	case nil:
		return Null, nil
	case bool:
		return Boolean(x), nil
	case string:
		return String(x), nil
	case json.Number:
		if i, err := x.Int64(); err == nil && !strings.ContainsAny(x.String(), ".eE") {
			return Int(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return Null, fmt.Errorf("values: bad number %q", x.String())
		}
		return Float(f), nil
	case []any:
		elems := make([]Value, len(x))
		for i, e := range x {
			v, err := fromJSON(e)
			if err != nil {
				return Null, err
			}
			elems[i] = v
		}
		return Value{kind: KindList, list: elems}, nil
	}
	return Null, fmt.Errorf("values: unsupported JSON value %T", raw)
}
