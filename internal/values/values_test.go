package values

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Int(3), KindInt},
		{Float(3.5), KindFloat},
		{String("x"), KindString},
		{Boolean(true), KindBoolean},
		{ID("u1"), KindID},
		{Enum("METER"), KindEnum},
		{List(Int(1), Int(2)), KindList},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestEqualBasics(t *testing.T) {
	if !Int(3).Equal(Int(3)) || Int(3).Equal(Int(4)) {
		t.Error("Int equality broken")
	}
	if !Null.Equal(Null) || Null.Equal(Int(0)) {
		t.Error("Null equality broken")
	}
	if !Boolean(true).Equal(Boolean(true)) || Boolean(true).Equal(Boolean(false)) {
		t.Error("Boolean equality broken")
	}
}

func TestEqualCrossKind(t *testing.T) {
	// Numeric coercion: 3 == 3.0.
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	// Textual coercion: ID and String with the same text are equal.
	if !ID("a").Equal(String("a")) {
		t.Error("ID and String with same text should be equal")
	}
	if !Enum("E").Equal(String("E")) {
		t.Error("Enum and String with same text should be equal")
	}
	// But text never equals a number or boolean.
	if String("3").Equal(Int(3)) || String("true").Equal(Boolean(true)) {
		t.Error("cross-category equality must fail")
	}
}

func TestEqualLists(t *testing.T) {
	a := List(Int(1), String("x"))
	b := List(Int(1), String("x"))
	c := List(Int(1))
	d := List(String("x"), Int(1))
	if !a.Equal(b) {
		t.Error("equal lists not Equal")
	}
	if a.Equal(c) || a.Equal(d) || a.Equal(Int(1)) {
		t.Error("unequal lists reported Equal")
	}
	if !List().Equal(List()) {
		t.Error("empty lists should be equal")
	}
}

func TestListImmutability(t *testing.T) {
	src := []Value{Int(1), Int(2)}
	l := List(src...)
	src[0] = Int(99)
	if l.Elem(0).AsInt() != 1 {
		t.Error("List captured caller's slice instead of copying")
	}
	elems := l.Elems()
	elems[1] = Int(99)
	if l.Elem(1).AsInt() != 2 {
		t.Error("Elems returned the internal slice")
	}
}

func TestKeyConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(3), Float(3.0)},
		{ID("a"), String("a")},
		{List(Int(1), Int(2)), List(Float(1), Float(2))},
	}
	for _, p := range pairs {
		if !p[0].Equal(p[1]) {
			t.Errorf("%v should equal %v", p[0], p[1])
		}
		if p[0].Key() != p[1].Key() {
			t.Errorf("Equal values with different keys: %q vs %q", p[0].Key(), p[1].Key())
		}
	}
	// Distinguishable values must have distinct keys.
	distinct := []Value{Null, Int(1), Int(2), String("1"), Boolean(true), List(Int(1)), List(), String("")}
	seen := map[string]Value{}
	for _, v := range distinct {
		if prev, ok := seen[v.Key()]; ok {
			t.Errorf("key collision between %v and %v", prev, v)
		}
		seen[v.Key()] = v
	}
}

func TestBuiltinMemberInt(t *testing.T) {
	if !BuiltinMember("Int", Int(0)) || !BuiltinMember("Int", Int(math.MaxInt32)) || !BuiltinMember("Int", Int(math.MinInt32)) {
		t.Error("in-range ints rejected")
	}
	if BuiltinMember("Int", Int(math.MaxInt32+1)) || BuiltinMember("Int", Int(math.MinInt32-1)) {
		t.Error("out-of-range ints accepted (GraphQL Int is 32-bit)")
	}
	if BuiltinMember("Int", Float(3)) || BuiltinMember("Int", String("3")) {
		t.Error("non-int accepted as Int")
	}
}

func TestBuiltinMemberFloat(t *testing.T) {
	if !BuiltinMember("Float", Float(2.5)) || !BuiltinMember("Float", Int(7)) {
		t.Error("Float must accept floats and ints")
	}
	if BuiltinMember("Float", String("2.5")) {
		t.Error("Float must reject strings")
	}
}

func TestBuiltinMemberStringBooleanID(t *testing.T) {
	if !BuiltinMember("String", String("x")) || !BuiltinMember("String", ID("x")) {
		t.Error("String membership broken")
	}
	if BuiltinMember("String", Int(1)) {
		t.Error("String must reject ints")
	}
	if !BuiltinMember("Boolean", Boolean(false)) || BuiltinMember("Boolean", String("false")) {
		t.Error("Boolean membership broken")
	}
	if !BuiltinMember("ID", ID("u1")) || !BuiltinMember("ID", String("u1")) || !BuiltinMember("ID", Int(4)) {
		t.Error("ID must accept ids, strings, and ints")
	}
	if BuiltinMember("ID", Float(1.5)) || BuiltinMember("ID", Boolean(true)) {
		t.Error("ID must reject floats and booleans")
	}
}

func TestNullAndListNeverBuiltinMembers(t *testing.T) {
	for _, s := range BuiltinScalars {
		if BuiltinMember(s, Null) {
			t.Errorf("null accepted as values(%s); null is added by valuesW only", s)
		}
		if BuiltinMember(s, List(Int(1))) {
			t.Errorf("list accepted as values(%s)", s)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	vals := []Value{
		Null, Int(42), Int(-1), Float(2.5), String("hello"),
		Boolean(true), List(Int(1), String("two"), List(Boolean(false))),
		List(),
	}
	for _, v := range vals {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !v.Equal(back) {
			t.Errorf("round trip %v -> %s -> %v", v, data, back)
		}
	}
}

func TestJSONIntStaysInt(t *testing.T) {
	var v Value
	if err := json.Unmarshal([]byte("7"), &v); err != nil {
		t.Fatal(err)
	}
	if v.Kind() != KindInt {
		t.Errorf("7 decoded as %v, want Int", v.Kind())
	}
	if err := json.Unmarshal([]byte("7.0"), &v); err != nil {
		t.Fatal(err)
	}
	if v.Kind() != KindFloat {
		t.Errorf("7.0 decoded as %v, want Float", v.Kind())
	}
}

// Property: Equal is reflexive and symmetric over randomly built values.
func TestEqualReflexiveSymmetric(t *testing.T) {
	gen := func(i int64, f float64, s string, b bool) Value {
		switch i % 6 {
		case 0:
			return Int(i)
		case 1:
			return Float(f)
		case 2:
			return String(s)
		case 3:
			return Boolean(b)
		case 4:
			return List(Int(i), String(s))
		default:
			return Null
		}
	}
	prop := func(i int64, f float64, s string, b bool, j int64) bool {
		v := gen(i, f, s, b)
		w := gen(j, f, s, !b)
		if !v.Equal(v) {
			return false
		}
		return v.Equal(w) == w.Equal(v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: Key agrees with Equal on random values.
func TestKeyAgreesWithEqual(t *testing.T) {
	prop := func(i, j int64, s1, s2 string, useStr bool) bool {
		var v, w Value
		if useStr {
			v, w = String(s1), String(s2)
		} else {
			v, w = Int(i), Int(j)
		}
		return v.Equal(w) == (v.Key() == w.Key())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]Value{
		"null":       Null,
		"42":         Int(42),
		"2.5":        Float(2.5),
		`"hi"`:       String("hi"),
		`"u1"`:       ID("u1"),
		"METER":      Enum("METER"),
		"true":       Boolean(true),
		"[1, \"a\"]": List(Int(1), String("a")),
		"[]":         List(),
		"[[2]]":      List(List(Int(2))),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", v.Kind(), got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "Null", KindInt: "Int", KindFloat: "Float",
		KindString: "String", KindBoolean: "Boolean", KindID: "ID",
		KindEnum: "Enum", KindList: "List",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind %d: %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("out of range: %q", got)
	}
}

func TestAccessors(t *testing.T) {
	if Int(7).AsFloat() != 7.0 {
		t.Error("AsFloat on Int")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("AsFloat on Float")
	}
	if !Boolean(true).AsBool() {
		t.Error("AsBool")
	}
	if Enum("E").AsString() != "E" || ID("i").AsString() != "i" {
		t.Error("AsString")
	}
	if Int(1).Len() != 0 || Null.Elems() != nil {
		t.Error("list accessors on non-lists")
	}
	l := List(Int(1), Int(2))
	if l.Len() != 2 || l.Elem(1).AsInt() != 2 {
		t.Error("Elem/Len")
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	var v Value
	if err := v.UnmarshalJSON([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
	if err := v.UnmarshalJSON([]byte(`{"k": 1}`)); err == nil {
		t.Error("object accepted (property values are scalars/lists)")
	}
}

func TestEnumJSONEncodesAsString(t *testing.T) {
	data, err := json.Marshal(Enum("METER"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"METER"` {
		t.Errorf("enum JSON: %s", data)
	}
	// Marshaling a nil-backed empty list yields [].
	data, err = json.Marshal(List())
	if err != nil || string(data) != "[]" {
		t.Errorf("empty list JSON: %s (%v)", data, err)
	}
}
