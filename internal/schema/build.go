package schema

import (
	"fmt"
	"sort"
	"strconv"

	"pgschema/internal/ast"
	"pgschema/internal/token"
	"pgschema/internal/values"
)

// BuildError is a schema construction or consistency error with a source
// position when one is available.
type BuildError struct {
	Pos token.Position
	Msg string
}

// Error implements the error interface.
func (e *BuildError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

// ErrorList is a non-empty collection of build errors.
type ErrorList []*BuildError

// Error implements the error interface, reporting the first error and the
// total count.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0].Error(), len(l)-1)
}

// Options configures Build.
type Options struct {
	// AllowUnknownDirectives makes Build ignore applications of
	// undeclared directives instead of reporting an error, following the
	// paper's rule (§3.6) that unsupported schema features are ignored.
	AllowUnknownDirectives bool

	// SkipConsistencyCheck suppresses the interface- and directives-
	// consistency validation (Definitions 4.3–4.5). Intended for tests
	// that need to construct inconsistent schemas on purpose.
	SkipConsistencyCheck bool
}

type builder struct {
	opts Options
	s    *Schema
	errs ErrorList

	// inputTypes records input object type names, which are recognized
	// but ignored for Property Graph schemas (§3.6).
	inputTypes map[string]bool
}

func (b *builder) errorf(pos token.Position, format string, args ...any) {
	b.errs = append(b.errs, &BuildError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Build constructs the formal schema S of Definition 4.1 from a parsed SDL
// document, declares the built-in scalar types and the six paper
// directives, resolves all type references, and — unless disabled —
// verifies schema consistency (Definition 4.5). On failure it returns an
// ErrorList describing every problem found.
func Build(doc *ast.Document, opts Options) (*Schema, error) {
	b := &builder{
		opts: opts,
		s: &Schema{
			types:        make(map[string]*TypeDef),
			directives:   make(map[string]*DirectiveDef),
			implementers: make(map[string][]string),
		},
	}
	b.declareBuiltins()
	b.collect(doc)
	b.resolve(doc)
	if len(b.errs) > 0 {
		return nil, b.errs
	}
	b.s.typeNames = sortedKeys(b.s.types)
	if !opts.SkipConsistencyCheck {
		if errs := b.s.CheckConsistency(); len(errs) > 0 {
			return nil, errs
		}
	}
	return b.s, nil
}

// declareBuiltins installs the five built-in scalar types (§4.1) and the
// six constraint directives with the argument types given at the end of
// §4.3: all argument-free except @key(fields: [String!]!).
func (b *builder) declareBuiltins() {
	for _, name := range values.BuiltinScalars {
		b.s.types[name] = &TypeDef{Kind: Scalar, Name: name}
	}
	noArgs := func(name string) *DirectiveDef {
		return &DirectiveDef{Name: name, BuiltIn: true}
	}
	for _, name := range []string{DirRequired, DirDistinct, DirNoLoops, DirUniqueForTarget, DirRequiredForTarget} {
		b.s.directives[name] = noArgs(name)
	}
	keyArg := &ArgDef{Name: "fields", Type: NonNullOf(ListOf(NonNullOf(Named("String"))))}
	b.s.directives[DirKey] = &DirectiveDef{
		Name:      DirKey,
		Args:      []*ArgDef{keyArg},
		argByName: map[string]*ArgDef{"fields": keyArg},
		BuiltIn:   true,
	}
}

// collect performs the first pass: register every named type and directive
// declaration so that references can be resolved in the second pass.
func (b *builder) collect(doc *ast.Document) {
	for _, def := range doc.Definitions {
		name := def.DefinitionName()
		switch d := def.(type) {
		case *ast.SchemaDefinition:
			// Root operation bindings are ignored (§3.6).
			continue
		case *ast.InputObjectTypeDefinition:
			// Input object types are recognized so that references
			// resolve, but otherwise ignored (§3.6).
			if b.inputTypes == nil {
				b.inputTypes = make(map[string]bool)
			}
			b.inputTypes[name] = true
			continue
		case *ast.DirectiveDefinition:
			if prev, dup := b.s.directives[name]; dup && !prev.BuiltIn {
				b.errorf(def.Position(), "directive @%s declared more than once", name)
				continue
			}
			dd := &DirectiveDef{Name: name, argByName: make(map[string]*ArgDef)}
			for _, a := range d.Arguments {
				arg, ok := b.buildArg(a)
				if !ok {
					continue
				}
				if dd.argByName[arg.Name] != nil {
					b.errorf(a.Pos, "directive @%s declares argument %q more than once", name, arg.Name)
					continue
				}
				dd.Args = append(dd.Args, arg)
				dd.argByName[arg.Name] = arg
			}
			b.s.directives[name] = dd
		default:
			if prev := b.s.types[name]; prev != nil {
				b.errorf(def.Position(), "type %q declared more than once", name)
				continue
			}
			td := &TypeDef{Name: name}
			switch def.(type) {
			case *ast.ScalarTypeDefinition:
				td.Kind = Scalar
			case *ast.ObjectTypeDefinition:
				td.Kind = Object
			case *ast.InterfaceTypeDefinition:
				td.Kind = Interface
			case *ast.UnionTypeDefinition:
				td.Kind = Union
			case *ast.EnumTypeDefinition:
				td.Kind = Enum
			}
			b.s.types[name] = td
		}
	}
}

// resolve performs the second pass: fields, arguments, members,
// interfaces, enum values, and applied directives.
func (b *builder) resolve(doc *ast.Document) {
	for _, def := range doc.Definitions {
		switch d := def.(type) {
		case *ast.ScalarTypeDefinition:
			td := b.s.types[d.Name]
			td.Description = d.Description
			td.Directives = b.buildApplied(d.Directives, d.Pos)
		case *ast.EnumTypeDefinition:
			td := b.s.types[d.Name]
			td.Description = d.Description
			td.Directives = b.buildApplied(d.Directives, d.Pos)
			td.enumSet = make(map[string]bool, len(d.Values))
			for _, v := range d.Values {
				if td.enumSet[v.Name] {
					b.errorf(v.Pos, "enum %s declares value %q more than once", d.Name, v.Name)
					continue
				}
				td.enumSet[v.Name] = true
				td.EnumValues = append(td.EnumValues, v.Name)
			}
			if len(td.EnumValues) == 0 {
				b.errorf(d.Pos, "enum %s must declare at least one value", d.Name)
			}
		case *ast.UnionTypeDefinition:
			td := b.s.types[d.Name]
			td.Description = d.Description
			td.Directives = b.buildApplied(d.Directives, d.Pos)
			seen := make(map[string]bool)
			for _, m := range d.Members {
				mt := b.s.types[m]
				switch {
				case mt == nil:
					b.errorf(d.Pos, "union %s references undeclared type %q", d.Name, m)
				case mt.Kind != Object:
					b.errorf(d.Pos, "union %s member %q must be an object type, not a %s type", d.Name, m, mt.Kind)
				case seen[m]:
					b.errorf(d.Pos, "union %s lists member %q more than once", d.Name, m)
				default:
					seen[m] = true
					td.Members = append(td.Members, m)
				}
			}
			if len(td.Members) == 0 {
				b.errorf(d.Pos, "union %s must have at least one member (unionS assigns nonempty sets)", d.Name)
			}
		case *ast.InterfaceTypeDefinition:
			td := b.s.types[d.Name]
			td.Description = d.Description
			td.Directives = b.buildApplied(d.Directives, d.Pos)
			b.buildFields(td, d.Fields)
		case *ast.ObjectTypeDefinition:
			td := b.s.types[d.Name]
			td.Description = d.Description
			td.Directives = b.buildApplied(d.Directives, d.Pos)
			seen := make(map[string]bool)
			for _, in := range d.Interfaces {
				it := b.s.types[in]
				switch {
				case it == nil:
					b.errorf(d.Pos, "type %s implements undeclared interface %q", d.Name, in)
				case it.Kind != Interface:
					b.errorf(d.Pos, "type %s implements %q which is a %s type, not an interface", d.Name, in, it.Kind)
				case seen[in]:
					b.errorf(d.Pos, "type %s implements %q more than once", d.Name, in)
				default:
					seen[in] = true
					td.Interfaces = append(td.Interfaces, in)
					b.s.implementers[in] = append(b.s.implementers[in], d.Name)
				}
			}
			b.buildFields(td, d.Fields)
		}
	}
	for _, list := range b.s.implementers {
		sort.Strings(list)
	}
}

func (b *builder) buildFields(td *TypeDef, fields []ast.FieldDefinition) {
	td.fieldByName = make(map[string]*FieldDef, len(fields))
	for _, f := range fields {
		if td.fieldByName[f.Name] != nil {
			b.errorf(f.Pos, "type %s declares field %q more than once", td.Name, f.Name)
			continue
		}
		ft, err := FromAST(f.Type)
		if err != nil {
			b.errorf(f.Pos, "field %s.%s: %v", td.Name, f.Name, err)
			continue
		}
		base := b.s.types[ft.Base()]
		if base == nil {
			b.errorf(f.Pos, "field %s.%s references undeclared type %q", td.Name, f.Name, ft.Base())
			continue
		}
		fd := &FieldDef{
			Name:        f.Name,
			Description: f.Description,
			Type:        ft,
			Owner:       td.Name,
			Directives:  b.buildApplied(f.Directives, f.Pos),
			argByName:   make(map[string]*ArgDef),
		}
		// Field arguments are edge-property definitions and are only
		// meaningful on relationship fields, and only with scalar or
		// enum (list) types; everything else is ignored (§3.5, §3.6).
		attribute := base.Kind == Scalar || base.Kind == Enum
		for _, a := range f.Arguments {
			if attribute {
				fd.IgnoredArgs = append(fd.IgnoredArgs, a.Name)
				continue
			}
			at, err := FromAST(a.Type)
			if err != nil {
				b.errorf(a.Pos, "argument %s.%s(%s): %v", td.Name, f.Name, a.Name, err)
				continue
			}
			abase := b.s.types[at.Base()]
			if abase == nil {
				if b.inputTypes[at.Base()] {
					fd.IgnoredArgs = append(fd.IgnoredArgs, a.Name)
					continue
				}
				b.errorf(a.Pos, "argument %s.%s(%s) references undeclared type %q", td.Name, f.Name, a.Name, at.Base())
				continue
			}
			if abase.Kind != Scalar && abase.Kind != Enum {
				fd.IgnoredArgs = append(fd.IgnoredArgs, a.Name)
				continue
			}
			if fd.argByName[a.Name] != nil {
				b.errorf(a.Pos, "field %s.%s declares argument %q more than once", td.Name, f.Name, a.Name)
				continue
			}
			arg, ok := b.buildArg(a)
			if !ok {
				continue
			}
			fd.Args = append(fd.Args, arg)
			fd.argByName[a.Name] = arg
		}
		td.Fields = append(td.Fields, fd)
		td.fieldByName[f.Name] = fd
	}
}

func (b *builder) buildArg(a ast.InputValueDefinition) (*ArgDef, bool) {
	at, err := FromAST(a.Type)
	if err != nil {
		b.errorf(a.Pos, "argument %s: %v", a.Name, err)
		return nil, false
	}
	arg := &ArgDef{Name: a.Name, Description: a.Description, Type: at}
	arg.Directives = b.buildApplied(a.Directives, a.Pos)
	if a.Default != nil {
		v, err := LiteralValue(a.Default)
		if err != nil {
			b.errorf(a.Pos, "argument %s default: %v", a.Name, err)
			return nil, false
		}
		arg.Default = v
		arg.HasDefault = true
	}
	return arg, true
}

// buildApplied converts applied AST directives to (d, argvals) pairs,
// dropping (or erroring on) directives that are not declared.
func (b *builder) buildApplied(dirs []ast.Directive, pos token.Position) []Applied {
	var out []Applied
	for _, d := range dirs {
		name := canonicalDirective(d.Name)
		if b.s.directives[name] == nil {
			if b.opts.AllowUnknownDirectives {
				continue
			}
			b.errorf(d.Pos, "directive @%s is not declared", d.Name)
			continue
		}
		app := Applied{Name: name, Args: make(map[string]values.Value, len(d.Arguments))}
		for _, a := range d.Arguments {
			v, err := LiteralValue(a.Value)
			if err != nil {
				b.errorf(a.Pos, "directive @%s argument %s: %v", d.Name, a.Name, err)
				continue
			}
			if _, dup := app.Args[a.Name]; dup {
				b.errorf(a.Pos, "directive @%s supplies argument %q more than once", d.Name, a.Name)
				continue
			}
			app.Args[a.Name] = v
		}
		out = append(out, app)
	}
	_ = pos
	return out
}

// canonicalDirective maps the paper's alternate spelling "@noloops" (§3.3)
// to the formalization's "@noLoops" (§4.3).
func canonicalDirective(name string) string {
	if name == "noloops" {
		return DirNoLoops
	}
	return name
}

// LiteralValue converts an SDL value literal to a runtime value. Object
// literals are rejected: they belong to input types, which the paper
// ignores (§3.6).
func LiteralValue(v ast.Value) (values.Value, error) {
	switch x := v.(type) {
	case ast.IntValue:
		i, err := strconv.ParseInt(x.Raw, 10, 64)
		if err != nil {
			return values.Null, fmt.Errorf("bad integer literal %q", x.Raw)
		}
		return values.Int(i), nil
	case ast.FloatValue:
		f, err := strconv.ParseFloat(x.Raw, 64)
		if err != nil {
			return values.Null, fmt.Errorf("bad float literal %q", x.Raw)
		}
		return values.Float(f), nil
	case ast.StringValue:
		return values.String(x.Value), nil
	case ast.BooleanValue:
		return values.Boolean(x.Value), nil
	case ast.NullValue:
		return values.Null, nil
	case ast.EnumValue:
		return values.Enum(x.Name), nil
	case ast.ListValue:
		elems := make([]values.Value, len(x.Values))
		for i, e := range x.Values {
			ev, err := LiteralValue(e)
			if err != nil {
				return values.Null, err
			}
			elems[i] = ev
		}
		return values.List(elems...), nil
	case ast.ObjectValue:
		return values.Null, fmt.Errorf("object literals are not supported (input types are ignored for Property Graph schemas)")
	}
	return values.Null, fmt.Errorf("unknown literal %T", v)
}
