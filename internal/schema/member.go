package schema

import "pgschema/internal/values"

// MemberOfW implements the generalized membership test v ∈ valuesW(t) of
// §4.1 for types t ∈ S ∪ WS:
//
//	(1) t ∈ Scalars:  valuesW(t) = values(t) ∪ {null}
//	(2) t = tt!:      valuesW(t) = valuesW(tt) \ {null}
//	(3) t = [tt]:     valuesW(t) = L(valuesW(tt)) ∪ {null}
//
// Enum types are treated as scalars whose value set is the set of declared
// value names (following the paper's simplification in §4.1, footnote 1).
// For a custom scalar with no registered validator, every atomic value is
// accepted.
func (s *Schema) MemberOfW(v values.Value, t TypeRef) bool {
	if t.List {
		if v.IsNull() {
			return !t.NonNull
		}
		if v.Kind() != values.KindList {
			return false
		}
		elem := t.Elem()
		for i := 0; i < v.Len(); i++ {
			if !s.MemberOfW(v.Elem(i), elem) {
				return false
			}
		}
		return true
	}
	if v.IsNull() {
		return !t.NonNull
	}
	return s.MemberOf(v, t.Name)
}

// MemberOf implements values(t) for named scalar and enum types t ∈ S:
// it reports whether the non-null, non-list value v ∈ values(t).
func (s *Schema) MemberOf(v values.Value, name string) bool {
	if v.IsNull() || v.Kind() == values.KindList {
		return false
	}
	td := s.types[name]
	if td == nil {
		return false
	}
	switch td.Kind {
	case Scalar:
		if values.IsBuiltinScalar(name) {
			return values.BuiltinMember(name, v)
		}
		if fn := s.scalarValidators[name]; fn != nil {
			return fn(v)
		}
		return true // custom scalar without validator: any atomic value
	case Enum:
		switch v.Kind() {
		case values.KindEnum, values.KindString, values.KindID:
			return td.enumSet[v.AsString()]
		}
		return false
	}
	return false
}
