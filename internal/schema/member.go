package schema

import "pgschema/internal/values"

// MemberOfW implements the generalized membership test v ∈ valuesW(t) of
// §4.1 for types t ∈ S ∪ WS:
//
//	(1) t ∈ Scalars:  valuesW(t) = values(t) ∪ {null}
//	(2) t = tt!:      valuesW(t) = valuesW(tt) \ {null}
//	(3) t = [tt]:     valuesW(t) = L(valuesW(tt)) ∪ {null}
//
// Enum types are treated as scalars whose value set is the set of declared
// value names (following the paper's simplification in §4.1, footnote 1).
// For a custom scalar with no registered validator, every atomic value is
// accepted.
func (s *Schema) MemberOfW(v values.Value, t TypeRef) bool {
	if t.List {
		if v.IsNull() {
			return !t.NonNull
		}
		if v.Kind() != values.KindList {
			return false
		}
		elem := t.Elem()
		for i := 0; i < v.Len(); i++ {
			if !s.MemberOfW(v.Elem(i), elem) {
				return false
			}
		}
		return true
	}
	if v.IsNull() {
		return !t.NonNull
	}
	return s.MemberOf(v, t.Name)
}

// MemberFuncW compiles the membership test valuesW(t) into a predicate,
// resolving the type name, builtin-scalar dispatch, and enum value set
// once instead of per value. The returned function decides exactly
// MemberOfW(v, t); compiled validation programs call it per property,
// where the string-map lookups of the interpretive path dominate.
func (s *Schema) MemberFuncW(t TypeRef) func(values.Value) bool {
	nonNull := t.NonNull
	if t.List {
		elem := s.MemberFuncW(t.Elem())
		return func(v values.Value) bool {
			if v.IsNull() {
				return !nonNull
			}
			if v.Kind() != values.KindList {
				return false
			}
			for i := 0; i < v.Len(); i++ {
				if !elem(v.Elem(i)) {
					return false
				}
			}
			return true
		}
	}
	base := s.memberFuncNamed(t.Name)
	return func(v values.Value) bool {
		if v.IsNull() {
			return !nonNull
		}
		return base(v)
	}
}

// memberFuncNamed compiles values(t) for a named type: the base
// predicate of MemberFuncW, which is only ever handed non-null values.
func (s *Schema) memberFuncNamed(name string) func(values.Value) bool {
	td := s.types[name]
	if td == nil {
		return memberNever
	}
	switch td.Kind {
	case Scalar:
		if fn := values.BuiltinMemberFunc(name); fn != nil {
			return fn
		}
		if fn := s.scalarValidators[name]; fn != nil {
			return func(v values.Value) bool {
				return v.Kind() != values.KindList && fn(v)
			}
		}
		// Custom scalar without validator: any atomic value.
		return func(v values.Value) bool { return v.Kind() != values.KindList }
	case Enum:
		set := td.enumSet
		return func(v values.Value) bool {
			switch v.Kind() {
			case values.KindEnum, values.KindString, values.KindID:
				return set[v.AsString()]
			}
			return false
		}
	}
	return memberNever
}

func memberNever(values.Value) bool { return false }

// MemberOf implements values(t) for named scalar and enum types t ∈ S:
// it reports whether the non-null, non-list value v ∈ values(t).
func (s *Schema) MemberOf(v values.Value, name string) bool {
	if v.IsNull() || v.Kind() == values.KindList {
		return false
	}
	td := s.types[name]
	if td == nil {
		return false
	}
	switch td.Kind {
	case Scalar:
		if values.IsBuiltinScalar(name) {
			return values.BuiltinMember(name, v)
		}
		if fn := s.scalarValidators[name]; fn != nil {
			return fn(v)
		}
		return true // custom scalar without validator: any atomic value
	case Enum:
		switch v.Kind() {
		case values.KindEnum, values.KindString, values.KindID:
			return td.enumSet[v.AsString()]
		}
		return false
	}
	return false
}
