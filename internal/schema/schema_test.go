package schema

import (
	"strings"
	"testing"

	"pgschema/internal/parser"
	"pgschema/internal/values"
)

func build(t *testing.T, src string) *Schema {
	t.Helper()
	doc, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := Build(doc, Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

func buildErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	doc, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Build(doc, Options{})
	if err == nil {
		t.Fatalf("Build: expected error containing %q", wantSubstr)
	}
	list, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	for _, e := range list {
		if strings.Contains(e.Error(), wantSubstr) {
			return
		}
	}
	t.Fatalf("no error contains %q; got %v", wantSubstr, list)
}

const paperExample31 = `
type UserSession {
	id: ID! @required
	user: User! @required
	startTime: Time! @required
	endTime: Time!
}
type User {
	id: ID! @required
	login: String! @required
	nicknames: [String!]!
}
scalar Time`

func TestBuildPaperExample31(t *testing.T) {
	s := build(t, paperExample31)
	us := s.Type("UserSession")
	if us == nil || us.Kind != Object {
		t.Fatalf("UserSession: %+v", us)
	}
	if got := len(us.Fields); got != 4 {
		t.Fatalf("UserSession fields: %d", got)
	}
	// Example 3.2: user is a relationship, the rest are attributes.
	if !s.IsRelationship(us.Field("user")) {
		t.Error("user should be a relationship definition")
	}
	for _, f := range []string{"id", "startTime", "endTime"} {
		if !s.IsAttribute(us.Field(f)) {
			t.Errorf("%s should be an attribute definition", f)
		}
	}
	if s.Type("Time").Kind != Scalar {
		t.Error("Time should be a custom scalar")
	}
}

func TestBuiltinsPresent(t *testing.T) {
	s := build(t, `type T { x: Int }`)
	for _, name := range values.BuiltinScalars {
		if td := s.Type(name); td == nil || td.Kind != Scalar {
			t.Errorf("built-in scalar %s missing", name)
		}
	}
	for _, d := range []string{DirRequired, DirKey, DirDistinct, DirNoLoops, DirUniqueForTarget, DirRequiredForTarget} {
		if s.Directive(d) == nil {
			t.Errorf("built-in directive @%s missing", d)
		}
	}
	if s.Directive(DirKey).Arg("fields") == nil {
		t.Error("@key must declare the fields argument")
	}
	if got := s.Directive(DirKey).Arg("fields").Type.String(); got != "[String!]!" {
		t.Errorf("@key fields type: %s", got)
	}
}

func TestTypeRefShapes(t *testing.T) {
	s := build(t, `type T { a: Int b: Int! c: [Int] d: [Int!] e: [Int]! f: [Int!]! }`)
	want := map[string]string{
		"a": "Int", "b": "Int!", "c": "[Int]", "d": "[Int!]", "e": "[Int]!", "f": "[Int!]!",
	}
	for f, w := range want {
		if got := s.Field("T", f).Type.String(); got != w {
			t.Errorf("field %s: got %s, want %s", f, got, w)
		}
	}
	if !s.Field("T", "e").Type.IsList() || s.Field("T", "b").Type.IsList() {
		t.Error("IsList broken")
	}
	if s.Field("T", "f").Type.Base() != "Int" {
		t.Error("basetype broken")
	}
}

func TestNestedListRejected(t *testing.T) {
	buildErr(t, `type T { m: [[Int]] }`, "nested list")
}

func TestDuplicateDetection(t *testing.T) {
	buildErr(t, `type T { x: Int } type T { y: Int }`, "declared more than once")
	buildErr(t, `type T { x: Int x: Int }`, "declares field")
	buildErr(t, `enum E { A A }`, "declares value")
	buildErr(t, `type A { f: B } type B { g: A } union U = A | A`, "more than once")
}

func TestUndeclaredReferences(t *testing.T) {
	buildErr(t, `type T { x: Missing }`, "undeclared type")
	buildErr(t, `type T implements Nope { x: Int }`, "undeclared interface")
	buildErr(t, `union U = Ghost`, "undeclared type")
	buildErr(t, `type T { x: Int @nope }`, "not declared")
}

func TestUnknownDirectiveAllowed(t *testing.T) {
	doc, err := parser.Parse(`type T { x: Int @deprecated(reason: "old") }`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(doc, Options{AllowUnknownDirectives: true})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(s.Field("T", "x").Directives) != 0 {
		t.Error("unknown directive should have been dropped")
	}
}

func TestUnionMemberMustBeObject(t *testing.T) {
	buildErr(t, `interface I { x: Int } union U = I`, "must be an object type")
	buildErr(t, `union U = Int`, "must be an object type")
	buildErr(t, `type A { f: Int } union Empty = A union None`, "at least one member")
}

func TestEmptyEnumRejected(t *testing.T) {
	buildErr(t, `enum E`, "at least one value")
}

func TestNoloopsAlias(t *testing.T) {
	// The paper writes @noloops in §3.3 and @noLoops in §4.3; both work.
	s := build(t, `type A { rel: [A] @distinct @noloops }`)
	if !HasDirective(s.Field("A", "rel").Directives, DirNoLoops) {
		t.Error("@noloops alias not canonicalized to @noLoops")
	}
}

func TestSubtypeNamed(t *testing.T) {
	s := build(t, `
		interface Food { name: String! }
		type Pizza implements Food { name: String! }
		type Pasta implements Food { name: String! }
		union Lunch = Pizza
		type Person { likes: Food }`)
	cases := []struct {
		t, sup string
		want   bool
	}{
		{"Pizza", "Pizza", true},   // rule 1
		{"Pizza", "Food", true},    // rule 2
		{"Pasta", "Food", true},    // rule 2
		{"Pizza", "Lunch", true},   // rule 3
		{"Pasta", "Lunch", false},  // not a member
		{"Food", "Pizza", false},   // not symmetric
		{"Person", "Food", false},  // unrelated
		{"Food", "Food", true},     // rule 1 on interfaces
		{"Lunch", "Lunch", true},   // rule 1 on unions
		{"Missing", "Food", false}, // undeclared
	}
	for _, c := range cases {
		if got := s.SubtypeNamed(c.t, c.sup); got != c.want {
			t.Errorf("SubtypeNamed(%s, %s) = %v, want %v", c.t, c.sup, got, c.want)
		}
	}
}

func TestSubtypeWrapped(t *testing.T) {
	s := build(t, `
		interface I { x: Int }
		type A implements I { x: Int }`)
	aT, iT := Named("A"), Named("I")
	cases := []struct {
		a, b TypeRef
		want bool
	}{
		{aT, iT, true},                                       // rule 2
		{aT, ListOf(iT), true},                               // rule 5
		{ListOf(aT), ListOf(iT), true},                       // rule 4
		{NonNullOf(aT), iT, true},                            // rule 6
		{NonNullOf(aT), NonNullOf(iT), true},                 // rule 7
		{aT, NonNullOf(iT), false},                           // no rule adds ! on the right
		{ListOf(aT), iT, false},                              // no rule removes a list
		{NonNullOf(ListOf(NonNullOf(aT))), ListOf(iT), true}, // [A!]! ⊑ [I]
		{ListOf(NonNullOf(aT)), ListOf(iT), true},            // [A!] ⊑ [I] via 4+6
		{NonNullOf(aT), ListOf(iT), true},                    // A! ⊑ [I] via 6+5
		{aT, ListOf(NonNullOf(iT)), false},                   // A ⊑ [I!] needs ! introduction
		{NonNullOf(aT), ListOf(NonNullOf(iT)), true},         // A! ⊑ [I!] via rules 7 then 5
		{NonNullOf(ListOf(aT)), ListOf(aT), true},            // [A]! ⊑ [A] via rule 6
	}
	for _, c := range cases {
		if got := s.Subtype(c.a, c.b); got != c.want {
			t.Errorf("Subtype(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSubtypeRule5ThenRule7(t *testing.T) {
	// A! ⊑ [I!] is derivable: A ⊑ I (rule 2), A! ⊑ I! (rule 7),
	// A! ⊑ [I!] (rule 5). Verify the implementation finds it.
	s := build(t, `
		interface I { x: Int }
		type A implements I { x: Int }`)
	if !s.Subtype(NonNullOf(Named("A")), ListOf(NonNullOf(Named("I")))) {
		t.Error("A! ⊑ [I!] should hold via rules 7 then 5")
	}
}

func TestConcreteTargets(t *testing.T) {
	s := build(t, `
		interface Food { name: String! }
		type Pizza implements Food { name: String! }
		type Pasta implements Food { name: String! }
		union Course = Pasta | Pizza
		type Person { x: Int }`)
	if got := s.ConcreteTargets("Food"); len(got) != 2 || got[0] != "Pasta" || got[1] != "Pizza" {
		t.Errorf("Food targets: %v", got)
	}
	if got := s.ConcreteTargets("Course"); len(got) != 2 {
		t.Errorf("Course targets: %v", got)
	}
	if got := s.ConcreteTargets("Person"); len(got) != 1 || got[0] != "Person" {
		t.Errorf("Person targets: %v", got)
	}
	if got := s.ConcreteTargets("Int"); got != nil {
		t.Errorf("Int targets: %v", got)
	}
}

func TestMemberOfW(t *testing.T) {
	s := build(t, `enum Color { RED GREEN } scalar Time type T { x: Int }`)
	intT := Named("Int")
	cases := []struct {
		v    values.Value
		t    TypeRef
		want bool
	}{
		{values.Int(3), intT, true},
		{values.Null, intT, true},             // rule 1 adds null
		{values.Null, NonNullOf(intT), false}, // rule 2 removes null
		{values.Int(3), NonNullOf(intT), true},
		{values.List(values.Int(1), values.Null), ListOf(intT), true},             // [Int] allows null elements
		{values.List(values.Int(1), values.Null), ListOf(NonNullOf(intT)), false}, // [Int!] does not
		{values.Null, ListOf(intT), true},                                         // rule 3 adds null
		{values.Null, NonNullOf(ListOf(intT)), false},                             // [Int]! removes it
		{values.Int(5), ListOf(intT), false},                                      // scalar is not a list
		{values.List(), ListOf(intT), true},                                       // empty list is a list
		{values.Enum("RED"), Named("Color"), true},
		{values.String("GREEN"), Named("Color"), true}, // stores keep enum values as strings
		{values.String("BLUE"), Named("Color"), false},
		{values.Int(1), Named("Color"), false},
		{values.String("2019-06-30"), Named("Time"), true}, // custom scalar: any atomic
		{values.Int(1561852800), Named("Time"), true},
		{values.List(values.Int(1)), Named("Time"), false}, // but not lists
	}
	for _, c := range cases {
		if got := s.MemberOfW(c.v, c.t); got != c.want {
			t.Errorf("MemberOfW(%v, %s) = %v, want %v", c.v, c.t, got, c.want)
		}
	}
}

func TestScalarValidator(t *testing.T) {
	s := build(t, `scalar Time type T { x: Time }`)
	s.SetScalarValidator("Time", func(v values.Value) bool {
		return v.Kind() == values.KindString && strings.Contains(v.AsString(), ":")
	})
	if !s.MemberOfW(values.String("12:30"), Named("Time")) {
		t.Error("validator should accept 12:30")
	}
	if s.MemberOfW(values.String("noon"), Named("Time")) {
		t.Error("validator should reject noon")
	}
}

func TestInterfaceConsistencyViolations(t *testing.T) {
	// Missing field.
	buildErr(t, `
		interface I { f: Int }
		type A implements I { g: Int }`, "lacks field")
	// Field type not a subtype.
	buildErr(t, `
		interface I { f: Int }
		type A implements I { f: String }`, "not a subtype")
	// Missing argument.
	buildErr(t, `
		type B { x: Int }
		interface I { f(a: Int): B }
		type A implements I { f: B }`, "lacks argument")
	// Argument type mismatch.
	buildErr(t, `
		type B { x: Int }
		interface I { f(a: Int): B }
		type A implements I { f(a: Float): B }`, "interface consistency: argument")
	// Extra non-null argument.
	buildErr(t, `
		type B { x: Int }
		interface I { f: B }
		type A implements I { f(extra: Int!): B }`, "non-null but not declared")
}

func TestInterfaceConsistencyCovariance(t *testing.T) {
	// Covariant field types via ⊑ are allowed (Definition 4.3 (1)).
	build(t, `
		interface Node { self: Node }
		type Doc implements Node { self: Doc }`)
	build(t, `
		interface I { f: I }
		type A implements I { f: A! }`) // A! ⊑ I via rules 6, 2
}

func TestDirectivesConsistencyViolations(t *testing.T) {
	// @key without its required fields argument.
	buildErr(t, `type T @key { x: Int }`, "without required argument")
	// @key with a wrongly typed argument.
	buildErr(t, `type T @key(fields: 3) { x: Int }`, "not in valuesW")
	buildErr(t, `type T @key(fields: [3]) { x: Int }`, "not in valuesW")
	buildErr(t, `type T @key(fields: [null]) { x: Int }`, "not in valuesW")
	// Undeclared argument.
	buildErr(t, `type T @required(x: 1) { f: Int }`, "undeclared argument")
}

func TestDirectivesConsistencyCustomDirective(t *testing.T) {
	build(t, `
		directive @weight(value: Float!) on FIELD_DEFINITION
		type T { f: Int @weight(value: 0.5) }`)
	buildErr(t, `
		directive @weight(value: Float!) on FIELD_DEFINITION
		type T { f: Int @weight }`, "without required argument")
	// Int coerces into Float per the value system.
	build(t, `
		directive @weight(value: Float!) on FIELD_DEFINITION
		type T { f: Int @weight(value: 2) }`)
}

func TestKeyFieldSets(t *testing.T) {
	s := build(t, `type User @key(fields: ["id"]) @key(fields: ["login", "realm"]) {
		id: ID!
		login: String!
		realm: String!
	}`)
	sets := s.Type("User").KeyFieldSets()
	if len(sets) != 2 {
		t.Fatalf("got %d key sets", len(sets))
	}
	if len(sets[0]) != 1 || sets[0][0] != "id" {
		t.Errorf("set 0: %v", sets[0])
	}
	if len(sets[1]) != 2 || sets[1][1] != "realm" {
		t.Errorf("set 1: %v", sets[1])
	}
}

func TestIgnoredFieldArguments(t *testing.T) {
	// Arguments on attribute definitions are ignored (§3.6), as are
	// arguments whose type is an input object.
	s := build(t, `
		input Opts { flag: Boolean }
		type B { x: Int }
		type T {
			attr(units: String): Int
			rel(weight: Float, opts: Opts): B
		}`)
	attr := s.Field("T", "attr")
	if len(attr.Args) != 0 || len(attr.IgnoredArgs) != 1 {
		t.Errorf("attribute args: %+v ignored %v", attr.Args, attr.IgnoredArgs)
	}
	rel := s.Field("T", "rel")
	if len(rel.Args) != 1 || rel.Args[0].Name != "weight" {
		t.Errorf("relationship args: %+v", rel.Args)
	}
	if len(rel.IgnoredArgs) != 1 || rel.IgnoredArgs[0] != "opts" {
		t.Errorf("ignored args: %v", rel.IgnoredArgs)
	}
}

func TestFormalExample42(t *testing.T) {
	// Example 4.2 formalizes the Example 3.9 schema; check the
	// assignments the paper lists.
	s := build(t, `
		type Person { name: String! favoriteFood: Food }
		union Food = Pizza | Pasta
		type Pizza { name: String! toppings: [String!]! }
		type Pasta { name: String! }`)
	if got := s.Field("Person", "name").Type.String(); got != "String!" {
		t.Errorf("typeF(Person, name) = %s", got)
	}
	if got := s.Field("Person", "favoriteFood").Type.String(); got != "Food" {
		t.Errorf("typeF(Person, favoriteFood) = %s", got)
	}
	if got := s.Field("Pizza", "toppings").Type.String(); got != "[String!]!" {
		t.Errorf("typeF(Pizza, toppings) = %s", got)
	}
	food := s.Type("Food")
	if food.Kind != Union || len(food.Members) != 2 {
		t.Errorf("unionS(Food) = %+v", food.Members)
	}
	if len(s.ObjectTypes()) != 3 {
		t.Errorf("OT: %d", len(s.ObjectTypes()))
	}
}

// TestSubtypePartialOrder: ⊑S is reflexive and transitive over randomly
// built wrapped types (antisymmetry holds only up to equivalence, which
// the rules do not create for distinct named types, so it is checked on
// the named level implicitly by transitivity + reflexivity tests).
func TestSubtypePartialOrder(t *testing.T) {
	s := build(t, `
		interface I { x: Int }
		type A implements I { x: Int }
		type B implements I { x: Int }
		union U = A | B
		type C { x: Int }`)
	names := []string{"A", "B", "C", "I", "U"}
	var refs []TypeRef
	for _, n := range names {
		base := Named(n)
		refs = append(refs, base, NonNullOf(base), ListOf(base),
			ListOf(NonNullOf(base)), NonNullOf(ListOf(base)), NonNullOf(ListOf(NonNullOf(base))))
	}
	for _, a := range refs {
		if !s.Subtype(a, a) {
			t.Errorf("⊑ not reflexive at %s", a)
		}
	}
	for _, a := range refs {
		for _, b := range refs {
			if !s.Subtype(a, b) {
				continue
			}
			for _, c := range refs {
				if s.Subtype(b, c) && !s.Subtype(a, c) {
					t.Errorf("⊑ not transitive: %s ⊑ %s ⊑ %s but %s ⋢ %s", a, b, c, a, c)
				}
			}
		}
	}
}

// TestArgumentDirectives: directivesAF (Definition 4.1) is captured and
// checked by directives consistency (Definition 4.4).
func TestArgumentDirectives(t *testing.T) {
	s := build(t, `
		directive @sensitive(level: Int!) on ARGUMENT_DEFINITION
		type B { x: Int }
		type T { rel(token: String @sensitive(level: 2)): B }`)
	arg := s.Field("T", "rel").Arg("token")
	if len(arg.Directives) != 1 || arg.Directives[0].Name != "sensitive" {
		t.Fatalf("argument directives: %+v", arg.Directives)
	}
	if v, ok := arg.Directives[0].Arg("level"); !ok || v.AsInt() != 2 {
		t.Errorf("argvals: %v %v", v, ok)
	}
	// Consistency violations on argument directives are caught.
	buildErr(t, `
		directive @sensitive(level: Int!) on ARGUMENT_DEFINITION
		type B { x: Int }
		type T { rel(token: String @sensitive): B }`, "without required argument")
	buildErr(t, `
		directive @sensitive(level: Int!) on ARGUMENT_DEFINITION
		type B { x: Int }
		type T { rel(token: String @sensitive(level: "high")): B }`, "not in valuesW")
}
