package schema

import "pgschema/internal/token"

// CheckConsistency verifies schema consistency in the sense of
// Definition 4.5: the schema must be interface consistent (Definition 4.3)
// and directives consistent (Definition 4.4). It returns every violation
// found, or nil when the schema is consistent.
func (s *Schema) CheckConsistency() ErrorList {
	var b builder
	b.s = s
	b.checkInterfaceConsistency()
	b.checkDirectivesConsistency()
	if len(b.errs) == 0 {
		return nil
	}
	return b.errs
}

// checkInterfaceConsistency implements Definition 4.3: every object type
// implementing an interface must (1) declare each interface field with a
// subtype of the interface's field type, (2) declare each interface field
// argument with the identical type, and (3) not add required (non-null)
// arguments of its own.
func (b *builder) checkInterfaceConsistency() {
	for _, itName := range sortedKeys(b.s.implementers) {
		it := b.s.types[itName]
		if it == nil || it.Kind != Interface {
			continue
		}
		for _, otName := range b.s.implementers[itName] {
			ot := b.s.types[otName]
			for _, itField := range it.Fields {
				otField := ot.Field(itField.Name)
				if otField == nil {
					b.errorf(noPos(), "interface consistency: type %s implements %s but lacks field %q", otName, itName, itField.Name)
					continue
				}
				if !b.s.Subtype(otField.Type, itField.Type) {
					b.errorf(noPos(), "interface consistency: field %s.%s has type %s which is not a subtype of %s.%s's type %s",
						otName, itField.Name, otField.Type, itName, itField.Name, itField.Type)
				}
				for _, itArg := range itField.Args {
					otArg := otField.Arg(itArg.Name)
					if otArg == nil {
						b.errorf(noPos(), "interface consistency: field %s.%s lacks argument %q required by interface %s", otName, itField.Name, itArg.Name, itName)
						continue
					}
					if otArg.Type != itArg.Type {
						b.errorf(noPos(), "interface consistency: argument %s.%s(%s) has type %s, but interface %s declares %s",
							otName, itField.Name, itArg.Name, otArg.Type, itName, itArg.Type)
					}
				}
				for _, otArg := range otField.Args {
					if itField.Arg(otArg.Name) == nil && otArg.Type.NonNull {
						b.errorf(noPos(), "interface consistency: argument %s.%s(%s) is non-null but not declared by interface %s",
							otName, itField.Name, otArg.Name, itName)
					}
				}
			}
		}
	}
}

// checkDirectivesConsistency implements Definition 4.4 for every applied
// directive (d, argvals) anywhere in the schema: (1) every non-null
// declared argument of d must be supplied, and (2) every supplied argument
// value must be in valuesW of its declared type (unknown argument names
// therefore also fail).
func (b *builder) checkDirectivesConsistency() {
	check := func(where string, apps []Applied) {
		for _, app := range apps {
			dd := b.s.directives[app.Name]
			if dd == nil {
				b.errorf(noPos(), "directives consistency: %s applies undeclared directive @%s", where, app.Name)
				continue
			}
			for _, decl := range dd.Args {
				if !decl.Type.NonNull {
					continue
				}
				if _, ok := app.Args[decl.Name]; !ok {
					b.errorf(noPos(), "directives consistency: %s applies @%s without required argument %q", where, app.Name, decl.Name)
				}
			}
			for _, name := range sortedKeys(app.Args) {
				decl := dd.Arg(name)
				if decl == nil {
					b.errorf(noPos(), "directives consistency: %s applies @%s with undeclared argument %q", where, app.Name, name)
					continue
				}
				if !b.s.MemberOfW(app.Args[name], decl.Type) {
					b.errorf(noPos(), "directives consistency: %s applies @%s with argument %s = %s not in valuesW(%s)",
						where, app.Name, name, app.Args[name], decl.Type)
				}
			}
		}
	}
	for _, tName := range sortedKeys(b.s.types) {
		td := b.s.types[tName]
		check("type "+tName, td.Directives)
		for _, f := range td.Fields {
			check("field "+tName+"."+f.Name, f.Directives)
			for _, a := range f.Args {
				check("argument "+tName+"."+f.Name+"("+a.Name+")", a.Directives)
			}
		}
	}
}

func noPos() token.Position { return token.Position{} }
