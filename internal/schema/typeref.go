// Package schema implements the paper's formalization of GraphQL schemas
// (Section 4): the schema assignments of Definition 4.1, wrapping types and
// the basetype function (§4.1), the valuesW semantics of wrapped scalar
// types, the subtype relation ⊑S (§4.3), and schema consistency
// (Definitions 4.3–4.5). It also provides the Property-Graph-oriented
// field classification of Section 3 (attribute vs. relationship
// definitions).
package schema

import (
	"fmt"

	"pgschema/internal/ast"
)

// TypeRef is a reference to a named type, possibly wrapped (§4.1). The
// GraphQL SDL admits exactly the wrapping shapes t, t!, [t], [t!], [t]!,
// and [t!]!, all of which this flat representation covers.
type TypeRef struct {
	Name        string // the underlying named type: basetype(t)
	List        bool   // wrapped in a list type
	NonNull     bool   // outermost non-null wrapper
	ElemNonNull bool   // non-null wrapper inside the list (only if List)
}

// Named returns an unwrapped reference to the named type.
func Named(name string) TypeRef { return TypeRef{Name: name} }

// NonNullOf marks t's outermost wrapper as non-null (t → t!).
func NonNullOf(t TypeRef) TypeRef {
	t.NonNull = true
	return t
}

// ListOf wraps elem in a list type (elem must not itself be a list).
func ListOf(elem TypeRef) TypeRef {
	return TypeRef{Name: elem.Name, List: true, ElemNonNull: elem.NonNull}
}

// Base returns basetype(t): the underlying named type (§4.1).
func (t TypeRef) Base() string { return t.Name }

// IsList reports whether the type is a list type or a list type wrapped in
// a non-null type — the condition used by rule WS4.
func (t TypeRef) IsList() bool { return t.List }

// Elem returns the element type of a list type. It panics for non-lists.
func (t TypeRef) Elem() TypeRef {
	if !t.List {
		panic("schema: Elem of non-list TypeRef")
	}
	return TypeRef{Name: t.Name, NonNull: t.ElemNonNull}
}

// String renders the type in SDL syntax, e.g. "[String!]!".
func (t TypeRef) String() string {
	s := t.Name
	if t.List {
		if t.ElemNonNull {
			s += "!"
		}
		s = "[" + s + "]"
	}
	if t.NonNull {
		s += "!"
	}
	return s
}

// FromAST converts an ast.Type to a TypeRef. It rejects nesting deeper
// than one list level, which the paper's formalization (§4.1) does not
// admit for Property Graph schemas.
func FromAST(t ast.Type) (TypeRef, error) {
	switch x := t.(type) {
	case *ast.NamedType:
		return Named(x.Name), nil
	case *ast.NonNullType:
		inner, err := FromAST(x.Elem)
		if err != nil {
			return TypeRef{}, err
		}
		return NonNullOf(inner), nil
	case *ast.ListType:
		inner, err := FromAST(x.Elem)
		if err != nil {
			return TypeRef{}, err
		}
		if inner.List {
			return TypeRef{}, fmt.Errorf("nested list type %s is not admitted by the Property Graph schema formalization", t.String())
		}
		return ListOf(inner), nil
	}
	return TypeRef{}, fmt.Errorf("unknown AST type %T", t)
}
