package schema

// SubtypeNamed implements ⊑S restricted to named types: reflexivity
// (rule 1), interface implementation (rule 2), and union membership
// (rule 3). Implementation and union hierarchies are one level deep in
// GraphQL, so no transitive closure is needed beyond these three rules.
func (s *Schema) SubtypeNamed(t, sup string) bool {
	if t == sup {
		return true
	}
	supDef := s.types[sup]
	if supDef == nil {
		return false
	}
	switch supDef.Kind {
	case Interface:
		tDef := s.types[t]
		if tDef == nil || tDef.Kind != Object {
			return false
		}
		for _, in := range tDef.Interfaces {
			if in == sup {
				return true
			}
		}
	case Union:
		for _, m := range supDef.Members {
			if m == t {
				return true
			}
		}
	}
	return false
}

// Subtype implements the full subtype relation ⊑S over T ∪ WT, defined in
// §4.3 as the smallest relation closed under rules 1–7:
//
//	(1) t ⊑ t
//	(2) t ∈ implementation(s) ⟹ t ⊑ s
//	(3) t ∈ union(s)          ⟹ t ⊑ s
//	(4) t ⊑ s ⟹ [t] ⊑ [s]
//	(5) t ⊑ s ⟹ t ⊑ [s]
//	(6) t ⊑ s ⟹ t! ⊑ s
//	(7) t ⊑ s ⟹ t! ⊑ s!
func (s *Schema) Subtype(a, b TypeRef) bool {
	stripNN := func(t TypeRef) TypeRef {
		t.NonNull = false
		return t
	}
	if a == b {
		return true // rule 1
	}
	if b.NonNull {
		// Only rule 7 introduces a non-null wrapper on the right, and
		// it requires one on the left.
		return a.NonNull && s.Subtype(stripNN(a), stripNN(b))
	}
	if b.List {
		// Rule 5: t ⊑ [s] whenever t ⊑ s (t may itself be non-null,
		// e.g. A! ⊑ [I!] via rules 7 then 5).
		if !a.List && s.Subtype(a, b.Elem()) {
			return true
		}
		// Rule 4: [t] ⊑ [s] whenever t ⊑ s.
		if a.List && !a.NonNull && s.Subtype(a.Elem(), b.Elem()) {
			return true
		}
		// Rule 6: t! ⊑ [s] whenever t ⊑ [s].
		return a.NonNull && s.Subtype(stripNN(a), b)
	}
	// b is a plain named type.
	if a.NonNull {
		return s.Subtype(stripNN(a), b) // rule 6
	}
	if a.List {
		return false // no rule removes a list wrapper
	}
	return s.SubtypeNamed(a.Name, b.Name)
}

// NodeLabelSubtype reports λ(v) ⊑S t for a node label and a (possibly
// wrapped) schema type — the test used throughout Definitions 5.1–5.3.
func (s *Schema) NodeLabelSubtype(label string, t TypeRef) bool {
	return s.Subtype(Named(label), t)
}

// ConcreteTargets returns the object types ot with ot ⊑S named — the node
// labels an edge may point at when the relationship's base type is named.
// For an object type that is the type itself; for interfaces the
// implementers; for unions the members.
func (s *Schema) ConcreteTargets(named string) []string {
	t := s.types[named]
	if t == nil {
		return nil
	}
	switch t.Kind {
	case Object:
		return []string{t.Name}
	case Interface:
		return s.implementers[t.Name]
	case Union:
		return t.Members
	}
	return nil
}
