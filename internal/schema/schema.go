package schema

import (
	"sort"

	"pgschema/internal/values"
)

// TypeKind classifies the named types of a schema: T is the disjoint union
// of object types OT, interface types IT, union types UT, and scalars S
// (which, following the paper's simplification, include enum types).
type TypeKind int

// The type kinds.
const (
	Scalar TypeKind = iota
	Enum
	Object
	Interface
	Union
)

var typeKindNames = [...]string{"scalar", "enum", "object", "interface", "union"}

// String returns the kind's lowercase SDL keyword.
func (k TypeKind) String() string {
	if k < 0 || int(k) >= len(typeKindNames) {
		return "invalid"
	}
	return typeKindNames[k]
}

// Schema is a consistent-checkable GraphQL schema S over (F, A, T, S, D)
// in the sense of Definition 4.1. It is immutable after Build.
type Schema struct {
	types      map[string]*TypeDef
	directives map[string]*DirectiveDef

	// scalarValidators implements values(t) for custom scalar types; a
	// missing entry means every atomic value is accepted.
	scalarValidators map[string]func(values.Value) bool

	// implementers maps an interface name to the sorted names of the
	// object types implementing it (implementationS, inverted for speed).
	implementers map[string][]string

	typeNames []string // sorted, for deterministic iteration
}

// TypeDef is a named type t ∈ T with everything Definition 4.1 assigns to
// it: its fields (typeF), its directives (directivesT), the union members
// (unionS) or implemented interfaces (feeding implementationS), and enum
// values for enum types.
type TypeDef struct {
	Kind        TypeKind
	Name        string
	Description string

	Fields      []*FieldDef // object and interface types, in source order
	fieldByName map[string]*FieldDef

	Interfaces []string // object types: names of implemented interfaces
	Members    []string // union types: names of member object types

	EnumValues []string // enum types, in source order
	enumSet    map[string]bool

	Directives []Applied // directivesT(t)
}

// FieldDef is a field f ∈ fieldsS(t) with its type typeF(t, f), argument
// definitions, and applied directives directivesF(t, f).
type FieldDef struct {
	Name        string
	Description string
	Type        TypeRef
	Owner       string // the defining type's name

	Args      []*ArgDef // only arguments with scalar/enum(-list) types; see §3.6
	argByName map[string]*ArgDef

	Directives []Applied // directivesF(t, f)

	// IgnoredArgs lists argument names whose types are complex input
	// types; the paper (§3.6) prescribes ignoring them.
	IgnoredArgs []string
}

// ArgDef is a field argument a with its type typeAF((t,f), a) and its
// applied directives directivesAF((t,f), a).
type ArgDef struct {
	Name        string
	Description string
	Type        TypeRef
	Default     values.Value
	HasDefault  bool
	Directives  []Applied
}

// DirectiveDef declares a directive d ∈ D with its argument types
// typeAD(d, ·).
type DirectiveDef struct {
	Name      string
	Args      []*ArgDef
	argByName map[string]*ArgDef
	BuiltIn   bool // one of the six paper directives, declared implicitly
}

// Applied is an applied directive: a pair (d, argvals) ∈ D × AV.
type Applied struct {
	Name string
	Args map[string]values.Value // argvals, a partial function A ⇀ values
}

// Arg returns argvals(name) and whether it is defined.
func (a Applied) Arg(name string) (values.Value, bool) {
	v, ok := a.Args[name]
	return v, ok
}

// The six constraint directives the paper introduces (§3, §4.3).
const (
	DirRequired          = "required"
	DirKey               = "key"
	DirDistinct          = "distinct"
	DirNoLoops           = "noLoops"
	DirUniqueForTarget   = "uniqueForTarget"
	DirRequiredForTarget = "requiredForTarget"
)

// Type returns the named type t ∈ T, or nil if not declared.
func (s *Schema) Type(name string) *TypeDef { return s.types[name] }

// Types returns all named types in deterministic (sorted) order.
func (s *Schema) Types() []*TypeDef {
	out := make([]*TypeDef, 0, len(s.typeNames))
	for _, n := range s.typeNames {
		out = append(out, s.types[n])
	}
	return out
}

// TypesOfKind returns all named types of the given kind, sorted by name.
func (s *Schema) TypesOfKind(kind TypeKind) []*TypeDef {
	var out []*TypeDef
	for _, n := range s.typeNames {
		if t := s.types[n]; t.Kind == kind {
			out = append(out, t)
		}
	}
	return out
}

// ObjectTypes returns OT sorted by name.
func (s *Schema) ObjectTypes() []*TypeDef { return s.TypesOfKind(Object) }

// InterfaceTypes returns IT sorted by name.
func (s *Schema) InterfaceTypes() []*TypeDef { return s.TypesOfKind(Interface) }

// UnionTypes returns UT sorted by name.
func (s *Schema) UnionTypes() []*TypeDef { return s.TypesOfKind(Union) }

// Directive returns the declaration of directive d, or nil.
func (s *Schema) Directive(name string) *DirectiveDef { return s.directives[name] }

// Field returns the field definition for (t, f) ∈ dom(typeF), or nil.
func (s *Schema) Field(typeName, fieldName string) *FieldDef {
	t := s.types[typeName]
	if t == nil {
		return nil
	}
	return t.fieldByName[fieldName]
}

// Field returns the field named f, or nil. (fieldsS(t) membership.)
func (t *TypeDef) Field(name string) *FieldDef {
	if t.fieldByName == nil {
		return nil
	}
	return t.fieldByName[name]
}

// HasEnumValue reports whether name is a declared value of the enum type.
func (t *TypeDef) HasEnumValue(name string) bool { return t.enumSet[name] }

// Arg returns the argument definition named a, or nil. (argsS(t,f).)
func (f *FieldDef) Arg(name string) *ArgDef {
	if f.argByName == nil {
		return nil
	}
	return f.argByName[name]
}

// Arg returns the declared directive argument named a, or nil. (argsS(d).)
func (d *DirectiveDef) Arg(name string) *ArgDef {
	if d.argByName == nil {
		return nil
	}
	return d.argByName[name]
}

// Implementers returns implementationS(it) — the names of the object types
// implementing interface it — in sorted order.
func (s *Schema) Implementers(interfaceName string) []string {
	return s.implementers[interfaceName]
}

// IsScalarish reports whether the named type is in S: a scalar or enum
// type, following the paper's convention that Scalars includes enums.
func (s *Schema) IsScalarish(name string) bool {
	t := s.types[name]
	return t != nil && (t.Kind == Scalar || t.Kind == Enum)
}

// IsAttribute reports whether the field is an attribute definition (§3.1):
// its base type is a scalar or enum type. Such fields declare node
// properties.
func (s *Schema) IsAttribute(f *FieldDef) bool { return s.IsScalarish(f.Type.Base()) }

// IsRelationship reports whether the field is a relationship definition
// (§3.1): its base type is an object, interface, or union type. Such
// fields declare outgoing edges.
func (s *Schema) IsRelationship(f *FieldDef) bool {
	t := s.types[f.Type.Base()]
	return t != nil && (t.Kind == Object || t.Kind == Interface || t.Kind == Union)
}

// HasDirective reports whether (d, ·) appears in the applied list.
func HasDirective(applied []Applied, name string) bool {
	for _, a := range applied {
		if a.Name == name {
			return true
		}
	}
	return false
}

// DirectivesNamed returns all applications of directive name (a directive
// such as @key may be applied repeatedly, cf. Example 3.4).
func DirectivesNamed(applied []Applied, name string) []Applied {
	var out []Applied
	for _, a := range applied {
		if a.Name == name {
			out = append(out, a)
		}
	}
	return out
}

// KeyFieldSets returns the field-name lists of all @key directives applied
// to the type, in application order (DS7 operates on each separately).
func (t *TypeDef) KeyFieldSets() [][]string {
	var out [][]string
	for _, a := range DirectivesNamed(t.Directives, DirKey) {
		fv, ok := a.Arg("fields")
		if !ok || fv.Kind() != values.KindList {
			continue
		}
		var names []string
		for i := 0; i < fv.Len(); i++ {
			names = append(names, fv.Elem(i).AsString())
		}
		out = append(out, names)
	}
	return out
}

// SetScalarValidator installs a membership predicate implementing
// values(t) for a custom scalar type. Without a validator every atomic
// (non-null, non-list) value is accepted for custom scalars.
func (s *Schema) SetScalarValidator(scalarName string, fn func(values.Value) bool) {
	if s.scalarValidators == nil {
		s.scalarValidators = make(map[string]func(values.Value) bool)
	}
	s.scalarValidators[scalarName] = fn
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
