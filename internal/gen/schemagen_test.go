package gen

import (
	"bytes"
	"testing"

	"pgschema/internal/pg"
	"pgschema/internal/validate"
)

// TestRandomSchemasGeneratable: every random schema builds, and the
// conformant generator produces a strongly satisfying graph for it.
func TestRandomSchemasGeneratable(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		s, src, err := RandomSchema(SchemaConfig{Seed: seed, Unions: seed%2 == 0})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		g, err := Conformant(s, Config{Seed: seed, NodesPerType: 12})
		if err != nil {
			t.Fatalf("seed %d: generate: %v\n%s", seed, err, src)
		}
		res := validate.Validate(s, g, validate.Options{})
		if !res.OK() {
			t.Fatalf("seed %d: %d violations, first: %v\nschema:\n%s",
				seed, len(res.Violations), res.Violations[0], src)
		}
	}
}

// TestRandomSchemasParallelAgreement: on random schemas with injected
// violations, the parallel validator returns exactly the sequential
// validator's verdicts.
func TestRandomSchemasParallelAgreement(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		s, src, err := RandomSchema(SchemaConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g, err := Conformant(s, Config{Seed: seed, NodesPerType: 10})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Inject a few violations (whichever apply to this schema).
		for _, rule := range []validate.Rule{validate.SS1, validate.SS2, validate.WS4, validate.DS5} {
			_, _ = Inject(s, g, rule, seed)
		}
		seq := validate.Validate(s, g, validate.Options{})
		par := validate.Validate(s, g, validate.Options{Workers: 4, ElementSharding: true})
		if len(seq.Violations) != len(par.Violations) {
			t.Fatalf("seed %d: sequential %d vs parallel %d violations\n%s",
				seed, len(seq.Violations), len(par.Violations), src)
		}
		for i := range seq.Violations {
			if seq.Violations[i] != par.Violations[i] {
				t.Fatalf("seed %d: violation %d differs", seed, i)
			}
		}
	}
}

// TestRandomSchemasJSONRoundTrip: serializing and reloading a generated
// graph preserves the validation outcome exactly.
func TestRandomSchemasJSONRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		s, _, err := RandomSchema(SchemaConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g, err := Conformant(s, Config{Seed: seed, NodesPerType: 8})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, _ = Inject(s, g, validate.SS2, seed) // some violations survive the trip
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := pg.ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		before := validate.Validate(s, g, validate.Options{})
		after := validate.Validate(s, back, validate.Options{})
		if len(before.Violations) != len(after.Violations) {
			t.Fatalf("seed %d: %d violations before, %d after round trip",
				seed, len(before.Violations), len(after.Violations))
		}
	}
}

// TestRandomSchemasDeterministic: the same seed yields the same SDL text.
func TestRandomSchemasDeterministic(t *testing.T) {
	_, src1, err := RandomSchema(SchemaConfig{Seed: 11, Unions: true})
	if err != nil {
		t.Fatal(err)
	}
	_, src2, err := RandomSchema(SchemaConfig{Seed: 11, Unions: true})
	if err != nil {
		t.Fatal(err)
	}
	if src1 != src2 {
		t.Error("same seed produced different schemas")
	}
	_, src3, err := RandomSchema(SchemaConfig{Seed: 12, Unions: true})
	if err != nil {
		t.Fatal(err)
	}
	if src1 == src3 {
		t.Error("different seeds produced identical schemas")
	}
}
