package gen

import (
	"testing"

	"pgschema/internal/validate"
)

// coverageSchema is directive-complete: every one of the fifteen rules is
// injectable against it. It mirrors the schema the differential harness in
// internal/validate uses, which relies on the coverage this test pins.
const coverageSchema = `
type Author @key(fields: ["name"]) {
	name: String! @required
	age: Int
	favoriteBook: Book
	relatedAuthor: [Author] @distinct @noLoops
}
type Book {
	title: String! @required
	pages: Int
	author(since: Int!, role: String): [Author] @required @distinct
}
type BookSeries {
	contains: [Book] @required @uniqueForTarget
}
type Publisher {
	published: [Book] @uniqueForTarget @requiredForTarget
}`

// allowedOverlaps lists, per targeted rule, the other rules an injection
// is documented to co-trigger on coverageSchema:
//
//   - DS1: the duplicated @distinct edge may be a loop on a @noLoops field
//     (relatedAuthor carries both directives), co-triggering DS2.
//   - DS4: starving a target of its @requiredForTarget in-edge can add a
//     fresh target node, which then lacks its own @required property
//     (DS5) and @required relationship (DS6).
//   - DS5: deleting a @required property that is also a @key field breaks
//     the key's coverage, co-triggering DS7.
//   - DS6: a fresh node added to lack its @required relationship also
//     lacks a @requiredForTarget in-edge (DS4).
var allowedOverlaps = map[validate.Rule][]validate.Rule{
	validate.DS1: {validate.DS2},
	validate.DS4: {validate.DS5, validate.DS6},
	validate.DS5: {validate.DS7},
	validate.DS6: {validate.DS4},
}

// TestInjectCoversAllRules pins the contract the differential harness
// rests on: against a directive-complete schema, Inject supports every
// rule in validate.AllRules, the targeted rule is reported, and nothing
// beyond the documented overlaps fires.
func TestInjectCoversAllRules(t *testing.T) {
	s := build(t, coverageSchema)
	for _, rule := range validate.AllRules {
		rule := rule
		t.Run(string(rule), func(t *testing.T) {
			allowed := map[validate.Rule]bool{rule: true}
			for _, r := range allowedOverlaps[rule] {
				allowed[r] = true
			}
			for seed := int64(0); seed < 10; seed++ {
				g, err := Conformant(s, Config{Seed: seed, NodesPerType: 6})
				if err != nil {
					t.Fatalf("seed %d: conformant: %v", seed, err)
				}
				desc, err := Inject(s, g, rule, seed)
				if err != nil {
					t.Fatalf("seed %d: inject unsupported on directive-complete schema: %v", seed, err)
				}
				res := validate.Validate(s, g, validate.Options{})
				byRule := res.ByRule()
				if len(byRule[rule]) == 0 {
					t.Errorf("seed %d: injected %q (%s) but targeted rule not reported; got %v",
						seed, rule, desc, res.Violations)
				}
				for got := range byRule {
					if !allowed[got] {
						t.Errorf("seed %d: injected %q (%s) but undocumented rule %s fired: %v",
							seed, rule, desc, got, byRule[got])
					}
				}
			}
		})
	}
}
