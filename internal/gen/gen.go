// Package gen generates Property Graphs from schemas: conformant graphs
// for tests and benchmarks (strong satisfaction by construction), and
// targeted violation injection that mutates a conformant graph to break
// exactly one chosen rule.
//
// Generation is deterministic for a fixed seed and configuration.
package gen

import (
	"fmt"
	"math/rand"

	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

// Config controls conformant-graph generation.
type Config struct {
	// Seed makes generation reproducible.
	Seed int64
	// NodesPerType is the number of nodes created for each object type.
	// Defaults to 10 when zero.
	NodesPerType int
	// ExtraEdges is the expected number of additional edges per source
	// node on list-typed relationship fields (beyond those needed to
	// satisfy the constraints). Defaults to 1.0 when negative.
	ExtraEdges float64
	// OptionalPropProbability is the chance an optional property is
	// populated. Defaults to 0.5 when negative.
	OptionalPropProbability float64
	// ListLen is the length of generated list property values.
	// Defaults to 2 when zero.
	ListLen int
}

func (c Config) withDefaults() Config {
	if c.NodesPerType == 0 {
		c.NodesPerType = 10
	}
	if c.ExtraEdges < 0 {
		c.ExtraEdges = 1.0
	}
	if c.OptionalPropProbability < 0 {
		c.OptionalPropProbability = 0.5
	}
	if c.ListLen == 0 {
		c.ListLen = 2
	}
	return c
}

// generator carries the state of one generation run.
type generator struct {
	s     *schema.Schema
	g     *pg.Graph
	cfg   Config
	rnd   *rand.Rand
	seq   int // global counter for unique key values
	state map[string]*fieldState
}

// Conformant generates a Property Graph that strongly satisfies the
// schema. It returns an error when the schema's constraints cannot be met
// with the configured node counts (e.g. a non-list @requiredForTarget
// field with more targets than available sources); it does not attempt to
// solve arbitrary satisfiability — use the sat package to decide that.
func Conformant(s *schema.Schema, cfg Config) (*pg.Graph, error) {
	cfg = cfg.withDefaults()
	gen := &generator{s: s, g: pg.New(), cfg: cfg, rnd: rand.New(rand.NewSource(cfg.Seed))}

	// 1. Nodes: cfg.NodesPerType per object type (skip the GraphQL root
	// operation names if present; they are ordinary object types, and
	// populating them is harmless, so no special case is needed).
	for _, td := range s.ObjectTypes() {
		for i := 0; i < cfg.NodesPerType; i++ {
			gen.g.AddNode(td.Name)
		}
	}

	// 2. Node properties.
	for _, td := range s.ObjectTypes() {
		keyed := keyFields(td)
		for _, node := range gen.g.NodesLabeled(td.Name) {
			for _, f := range td.Fields {
				if !s.IsAttribute(f) {
					continue
				}
				required := schema.HasDirective(f.Directives, schema.DirRequired)
				if !required && gen.rnd.Float64() >= cfg.OptionalPropProbability {
					continue
				}
				gen.g.SetNodeProp(node, f.Name, gen.sampleValue(f.Type, keyed[f.Name]))
			}
			// Key fields must be present to discriminate nodes, even
			// when not @required (two absent values agree under DS7).
			for name := range keyed {
				if _, ok := gen.g.NodeProp(node, name); ok {
					continue
				}
				f := td.Field(name)
				if f == nil || !s.IsAttribute(f) {
					continue
				}
				gen.g.SetNodeProp(node, name, gen.sampleValue(f.Type, true))
			}
		}
	}

	// 3. Edges. Nodes carry object-type labels only, so wiring iterates
	// over object types; directives declared on interface fields apply
	// to the implementing types (the DS rules quantify with ⊑S), so the
	// effective directive set of a field is the union over the object
	// type and every interface that declares the field. Cross-type
	// constraint state (@uniqueForTarget, @distinct) is shared per field
	// name, which is conservative: it may generate fewer edges than
	// allowed but never violating ones.
	gen.state = make(map[string]*fieldState)
	for _, td := range s.ObjectTypes() {
		for _, f := range td.Fields {
			if !s.IsRelationship(f) {
				continue
			}
			if err := gen.wireField(td, f); err != nil {
				return nil, err
			}
		}
	}
	return gen.g, nil
}

// fieldState is the constraint bookkeeping shared across object types for
// one relationship field name.
type fieldState struct {
	usedTargets map[pg.NodeID]bool    // targets taken under @uniqueForTarget
	pairs       map[[2]pg.NodeID]bool // (src, dst) pairs under @distinct
}

// effectiveDirectives collects the directives on (td, f) together with
// those on the same field in every interface td implements.
func (gen *generator) effectiveDirectives(td *schema.TypeDef, f *schema.FieldDef) []schema.Applied {
	out := append([]schema.Applied(nil), f.Directives...)
	for _, in := range td.Interfaces {
		it := gen.s.Type(in)
		if it == nil {
			continue
		}
		if itf := it.Field(f.Name); itf != nil {
			out = append(out, itf.Directives...)
		}
	}
	return out
}

// keyFields returns the set of field names participating in any @key of t.
func keyFields(td *schema.TypeDef) map[string]bool {
	out := make(map[string]bool)
	for _, set := range td.KeyFieldSets() {
		for _, f := range set {
			out[f] = true
		}
	}
	return out
}

// wireField creates the edges for one relationship declaration (t, f),
// honouring WS4, DS1, DS2, DS3, DS4, and DS6.
func (gen *generator) wireField(td *schema.TypeDef, f *schema.FieldDef) error {
	sources := gen.g.NodesLabeled(td.Name)
	targets := gen.nodesOfType(f.Type.Base())
	if len(sources) == 0 {
		return nil
	}
	dirs := gen.effectiveDirectives(td, f)
	required := schema.HasDirective(dirs, schema.DirRequired)
	distinct := schema.HasDirective(dirs, schema.DirDistinct)
	noLoops := schema.HasDirective(dirs, schema.DirNoLoops)
	uft := schema.HasDirective(dirs, schema.DirUniqueForTarget)
	rft := schema.HasDirective(dirs, schema.DirRequiredForTarget)
	isList := f.Type.IsList()

	if (required || rft) && len(targets) == 0 {
		return fmt.Errorf("gen: field %s.%s requires edges but type %s has no instances", td.Name, f.Name, f.Type.Base())
	}

	st := gen.state[f.Name]
	if st == nil {
		st = &fieldState{usedTargets: make(map[pg.NodeID]bool), pairs: make(map[[2]pg.NodeID]bool)}
		gen.state[f.Name] = st
	}
	usedTargets := st.usedTargets        // for @uniqueForTarget
	pairs := st.pairs                    // for @distinct
	perSource := make(map[pg.NodeID]int) // for WS4 on non-list fields
	addEdge := func(src, dst pg.NodeID) {
		gen.decorateEdge(gen.g.MustAddEdge(src, dst, f.Name), f)
		usedTargets[dst] = true
		perSource[src]++
		pairs[[2]pg.NodeID{src, dst}] = true
	}

	// Phase A: @requiredForTarget — every target needs an incoming edge.
	if rft {
		si := 0
		for _, dst := range targets {
			if uft && usedTargets[dst] {
				// Another type already wired this target's unique
				// incoming edge; a fresh one would violate DS3.
				return fmt.Errorf("gen: @requiredForTarget and @uniqueForTarget on %s.%s conflict across declaring types for target %d",
					td.Name, f.Name, dst)
			}
			tries := 0
			for {
				if si >= len(sources) {
					si = 0
					if !isList {
						return fmt.Errorf("gen: cannot satisfy @requiredForTarget on non-list %s.%s: more %s targets than available %s sources",
							td.Name, f.Name, f.Type.Base(), td.Name)
					}
				}
				src := sources[si]
				si++
				tries++
				if tries > 2*len(sources) {
					return fmt.Errorf("gen: cannot satisfy @requiredForTarget on %s.%s (constraints too tight)", td.Name, f.Name)
				}
				if noLoops && src == dst {
					continue
				}
				if !isList && perSource[src] > 0 {
					continue
				}
				addEdge(src, dst)
				break
			}
		}
	}

	// Phase B: @required — every source needs an outgoing edge.
	if required {
		for _, src := range sources {
			if perSource[src] > 0 {
				continue
			}
			dst, ok := gen.pickTarget(src, targets, usedTargets, pairs, uft, distinct, noLoops)
			if !ok {
				return fmt.Errorf("gen: cannot satisfy @required on %s.%s: no admissible target", td.Name, f.Name)
			}
			addEdge(src, dst)
		}
	}

	// Phase C: optional extra edges on list fields.
	if isList && gen.cfg.ExtraEdges > 0 {
		for _, src := range sources {
			n := gen.poissonish(gen.cfg.ExtraEdges)
			for i := 0; i < n; i++ {
				dst, ok := gen.pickTarget(src, targets, usedTargets, pairs, uft, distinct, noLoops)
				if !ok {
					break
				}
				addEdge(src, dst)
			}
		}
	} else if !isList && !required {
		// Optionally give some sources their single edge.
		for _, src := range sources {
			if perSource[src] > 0 || gen.rnd.Float64() >= gen.cfg.OptionalPropProbability {
				continue
			}
			dst, ok := gen.pickTarget(src, targets, usedTargets, pairs, uft, distinct, noLoops)
			if !ok {
				continue
			}
			addEdge(src, dst)
		}
	}
	return nil
}

// pickTarget selects an admissible target for src under the directives.
func (gen *generator) pickTarget(src pg.NodeID, targets []pg.NodeID, usedTargets map[pg.NodeID]bool, pairs map[[2]pg.NodeID]bool, uft, distinct, noLoops bool) (pg.NodeID, bool) {
	if len(targets) == 0 {
		return 0, false
	}
	start := gen.rnd.Intn(len(targets))
	for i := 0; i < len(targets); i++ {
		dst := targets[(start+i)%len(targets)]
		if uft && usedTargets[dst] {
			continue
		}
		if noLoops && src == dst {
			continue
		}
		if distinct && pairs[[2]pg.NodeID{src, dst}] {
			continue
		}
		return dst, true
	}
	return 0, false
}

// decorateEdge sets edge properties for the field's argument definitions.
func (gen *generator) decorateEdge(e pg.EdgeID, f *schema.FieldDef) {
	for _, arg := range f.Args {
		if !arg.Type.NonNull && gen.rnd.Float64() >= gen.cfg.OptionalPropProbability {
			continue
		}
		gen.g.SetEdgeProp(e, arg.Name, gen.sampleValue(arg.Type, false))
	}
}

// poissonish returns a small non-negative integer with the given mean.
func (gen *generator) poissonish(mean float64) int {
	n := 0
	for gen.rnd.Float64() < mean/(mean+1) && n < 8 {
		n++
	}
	return n
}

// nodesOfType returns the nodes with labels ⊑ the named type.
func (gen *generator) nodesOfType(named string) []pg.NodeID {
	var out []pg.NodeID
	for _, label := range gen.s.ConcreteTargets(named) {
		out = append(out, gen.g.NodesLabeled(label)...)
	}
	return out
}

// sampleValue draws a value from valuesW(t) \ {null}. With unique set, the
// value is globally unique across the run (for key fields).
func (gen *generator) sampleValue(t schema.TypeRef, unique bool) values.Value {
	if t.IsList() {
		n := gen.cfg.ListLen
		elems := make([]values.Value, n)
		for i := range elems {
			elems[i] = gen.sampleScalar(t.Base(), unique)
		}
		return values.List(elems...)
	}
	return gen.sampleScalar(t.Base(), unique)
}

func (gen *generator) sampleScalar(name string, unique bool) values.Value {
	gen.seq++
	td := gen.s.Type(name)
	if td != nil && td.Kind == schema.Enum {
		if unique {
			// Enums cannot be globally unique in general; fall back to
			// cycling, which is the best discrimination available.
			return values.Enum(td.EnumValues[gen.seq%len(td.EnumValues)])
		}
		return values.Enum(td.EnumValues[gen.rnd.Intn(len(td.EnumValues))])
	}
	switch name {
	case "Int":
		if unique {
			return values.Int(int64(gen.seq))
		}
		return values.Int(int64(gen.rnd.Intn(1000)))
	case "Float":
		if unique {
			return values.Float(float64(gen.seq) + 0.5)
		}
		return values.Float(gen.rnd.Float64() * 100)
	case "Boolean":
		if unique {
			return values.Boolean(gen.seq%2 == 0) // best effort
		}
		return values.Boolean(gen.rnd.Intn(2) == 0)
	case "ID":
		if unique {
			return values.ID(fmt.Sprintf("id-%d", gen.seq))
		}
		return values.ID(fmt.Sprintf("id-%d", gen.rnd.Intn(1_000_000)))
	default: // String and custom scalars
		if unique {
			return values.String(fmt.Sprintf("v-%d", gen.seq))
		}
		return values.String(fmt.Sprintf("v-%d", gen.rnd.Intn(1_000_000)))
	}
}

// PopulateRequiredProperties sets every @required attribute and every
// @key field of every node to a fresh unique value of the declared type.
// It is used by the sat package to turn a bare node/edge skeleton (from
// the bounded model search) into a strongly-satisfying Property Graph:
// the paper's Theorem 3 proof notes that property values can always be
// chosen to satisfy WS1, DS5, and DS7 when value sets are infinite.
func PopulateRequiredProperties(s *schema.Schema, g *pg.Graph) {
	gen := &generator{s: s, g: g, cfg: Config{}.withDefaults(), rnd: rand.New(rand.NewSource(0))}
	for _, td := range s.ObjectTypes() {
		keyed := keyFields(td)
		for _, node := range g.NodesLabeled(td.Name) {
			for _, f := range td.Fields {
				if !gen.s.IsAttribute(f) {
					continue
				}
				required := schema.HasDirective(f.Directives, schema.DirRequired)
				if !required && !keyed[f.Name] {
					continue
				}
				if _, ok := g.NodeProp(node, f.Name); ok {
					continue
				}
				g.SetNodeProp(node, f.Name, gen.sampleValue(f.Type, true))
			}
		}
	}
	// Interface-declared @required attributes apply to implementers.
	for _, td := range s.InterfaceTypes() {
		for _, f := range td.Fields {
			if !gen.s.IsAttribute(f) || !schema.HasDirective(f.Directives, schema.DirRequired) {
				continue
			}
			for _, impl := range s.Implementers(td.Name) {
				for _, node := range g.NodesLabeled(impl) {
					if _, ok := g.NodeProp(node, f.Name); !ok {
						g.SetNodeProp(node, f.Name, gen.sampleValue(f.Type, true))
					}
				}
			}
		}
	}
	// Mandatory edge properties (non-null field arguments).
	for _, e := range g.Edges() {
		src, _ := g.Endpoints(e)
		fd := s.Field(g.NodeLabel(src), g.EdgeLabel(e))
		if fd == nil {
			continue
		}
		for _, arg := range fd.Args {
			if arg.Type.NonNull {
				if _, ok := g.EdgeProp(e, arg.Name); !ok {
					g.SetEdgeProp(e, arg.Name, gen.sampleValue(arg.Type, false))
				}
			}
		}
	}
}
