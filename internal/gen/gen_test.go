package gen

import (
	"testing"

	"pgschema/internal/parser"
	"pgschema/internal/schema"
	"pgschema/internal/validate"
)

func build(t *testing.T, src string) *schema.Schema {
	t.Helper()
	doc, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := schema.Build(doc, schema.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

// Schemas covering every directive and type-hierarchy feature.
var schemas = map[string]string{
	"sessions": `
		type UserSession @key(fields: ["id"]) {
			id: ID! @required
			user(certainty: Float! comment: String): User! @required
			startTime: Time! @required
			endTime: Time!
		}
		type User @key(fields: ["id"]) {
			id: ID! @required
			login: String! @required
			nicknames: [String!]!
		}
		scalar Time`,
	"books": `
		type Author {
			name: String! @required
			favoriteBook: Book
			relatedAuthor: [Author] @distinct @noLoops
		}
		type Book {
			title: String! @required
			author: [Author] @required @distinct
		}
		type BookSeries {
			contains: [Book] @required @uniqueForTarget
		}
		type Publisher {
			published: [Book] @uniqueForTarget @requiredForTarget
		}`,
	"food": `
		type Person { name: String! @required favoriteFood: Food }
		interface Food { name: String! @required }
		type Pizza implements Food { name: String! @required toppings: [String!]! }
		type Pasta implements Food { name: String! @required }`,
	"enums": `
		enum Color { RED GREEN BLUE }
		type Paint @key(fields: ["code"]) {
			code: Int @required
			color: Color! @required
			shades: [Color!]
		}`,
}

func TestConformantGraphsValidate(t *testing.T) {
	for name, src := range schemas {
		t.Run(name, func(t *testing.T) {
			s := build(t, src)
			for seed := int64(0); seed < 5; seed++ {
				g, err := Conformant(s, Config{Seed: seed, NodesPerType: 20})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if g.NumNodes() == 0 {
					t.Fatalf("seed %d: empty graph", seed)
				}
				res := validate.Validate(s, g, validate.Options{})
				if !res.OK() {
					t.Fatalf("seed %d: generated graph is not conformant:\n%v", seed, res.Violations[:min(5, len(res.Violations))])
				}
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	s := build(t, schemas["books"])
	g1, err := Conformant(s, Config{Seed: 7, NodesPerType: 15})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Conformant(s, Config{Seed: 7, NodesPerType: 15})
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Errorf("same seed produced different graphs: %d/%d vs %d/%d",
			g1.NumNodes(), g1.NumEdges(), g2.NumNodes(), g2.NumEdges())
	}
	g3, err := Conformant(s, Config{Seed: 8, NodesPerType: 15})
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() == g3.NumEdges() && g1.NumNodes() == g3.NumNodes() {
		// Node counts are deterministic by construction; edge counts
		// should differ between seeds with overwhelming probability.
		t.Log("warning: different seeds produced identical shape (possible but unlikely)")
	}
}

// TestInjectionDetected is the end-to-end failure-injection matrix: for
// every rule, injecting a violation into a conformant graph must make the
// validator report that rule.
func TestInjectionDetected(t *testing.T) {
	// Which schema exercises which rule.
	cases := []struct {
		rule   validate.Rule
		schema string
	}{
		{validate.WS1, "enums"},
		{validate.WS2, "sessions"},
		{validate.WS3, "sessions"},
		{validate.WS4, "sessions"},
		{validate.DS1, "books"},
		{validate.DS2, "books"},
		{validate.DS3, "books"},
		{validate.DS4, "books"},
		{validate.DS5, "sessions"},
		{validate.DS6, "sessions"},
		{validate.DS7, "sessions"},
		{validate.SS1, "sessions"},
		{validate.SS2, "sessions"},
		{validate.SS3, "sessions"},
		{validate.SS4, "sessions"},
	}
	for _, c := range cases {
		t.Run(string(c.rule), func(t *testing.T) {
			s := build(t, schemas[c.schema])
			for seed := int64(0); seed < 3; seed++ {
				g, err := Conformant(s, Config{Seed: seed, NodesPerType: 10})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				desc, err := Inject(s, g, c.rule, seed)
				if err != nil {
					t.Fatalf("seed %d: inject: %v", seed, err)
				}
				res := validate.Validate(s, g, validate.Options{})
				found := false
				for _, v := range res.Violations {
					if v.Rule == c.rule {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("seed %d: injected %q (%s) but rule not reported; got %v", seed, c.rule, desc, res.Violations)
				}
			}
		})
	}
}

func TestInjectErrorsWhenImpossible(t *testing.T) {
	s := build(t, `type Lonely { name: String }`)
	g, err := Conformant(s, Config{NodesPerType: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range []validate.Rule{validate.DS1, validate.DS2, validate.DS3, validate.DS4, validate.DS6} {
		if _, err := Inject(s, g, rule, 0); err == nil {
			t.Errorf("rule %s: expected injection error on schema without the directive", rule)
		}
	}
}

func TestGeneratorErrorsOnImpossibleConstraints(t *testing.T) {
	// A consistent variant of the paper's Example 6.1 conflict: the
	// interface demands each B has at most one incoming hasB edge from
	// I-nodes, while both implementing types demand an incoming edge
	// from their own instances — two required incoming edges collide
	// with the uniqueness bound, so no graph with B nodes exists and
	// the generator must report failure.
	s := build(t, `
		interface I { hasB: [B] @uniqueForTarget }
		type A1 implements I { hasB: [B] @uniqueForTarget @requiredForTarget }
		type A2 implements I { hasB: [B] @uniqueForTarget @requiredForTarget }
		type B { x: Int }`)
	_, err := Conformant(s, Config{NodesPerType: 5})
	if err == nil {
		t.Error("expected generation to fail on the Example 6.1-style conflict")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
