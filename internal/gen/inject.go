package gen

import (
	"fmt"
	"math/rand"

	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/validate"
	"pgschema/internal/values"
)

// Inject mutates the graph (in place) so that it violates the given rule
// against the schema, returning a description of the mutation. It returns
// an error when the schema offers no opportunity to violate the rule
// (e.g. DS2 requires some field annotated @noLoops). The graph should be
// conformant beforehand; Inject makes the smallest mutation it can, but
// a single mutation may as a side effect also trip other rules (the
// paper's rules overlap — e.g. removing a @required key property trips
// both DS5 and DS7).
func Inject(s *schema.Schema, g *pg.Graph, rule validate.Rule, seed int64) (string, error) {
	inj := &injector{s: s, g: g, rnd: rand.New(rand.NewSource(seed))}
	switch rule {
	case validate.WS1:
		return inj.ws1()
	case validate.WS2:
		return inj.ws2()
	case validate.WS3:
		return inj.ws3()
	case validate.WS4:
		return inj.ws4()
	case validate.DS1:
		return inj.withDirective(schema.DirDistinct, inj.ds1)
	case validate.DS2:
		return inj.withDirective(schema.DirNoLoops, inj.ds2)
	case validate.DS3:
		return inj.withDirective(schema.DirUniqueForTarget, inj.ds3)
	case validate.DS4:
		return inj.withDirective(schema.DirRequiredForTarget, inj.ds4)
	case validate.DS5:
		return inj.ds5()
	case validate.DS6:
		return inj.ds6()
	case validate.DS7:
		return inj.ds7()
	case validate.SS1:
		g.AddNode("__UnjustifiedLabel")
		return "added a node with an undeclared label", nil
	case validate.SS2:
		return inj.ss2()
	case validate.SS3:
		return inj.ss3()
	case validate.SS4:
		return inj.ss4()
	}
	return "", fmt.Errorf("gen: unknown rule %s", rule)
}

type injector struct {
	s   *schema.Schema
	g   *pg.Graph
	rnd *rand.Rand
}

// pickNode returns a random node with the given label, if any.
func (inj *injector) pickNode(label string) (pg.NodeID, bool) {
	ids := inj.g.NodesLabeled(label)
	if len(ids) == 0 {
		return 0, false
	}
	return ids[inj.rnd.Intn(len(ids))], true
}

// nodesOfType mirrors the validator's λ(v) ⊑ t node enumeration.
func (inj *injector) nodesOfType(named string) []pg.NodeID {
	var out []pg.NodeID
	for _, label := range inj.s.ConcreteTargets(named) {
		out = append(out, inj.g.NodesLabeled(label)...)
	}
	return out
}

// attributeFields yields (type, field) pairs for attribute definitions on
// object types with at least one instance node.
func (inj *injector) attributeFields(pred func(*schema.FieldDef) bool) (*schema.TypeDef, *schema.FieldDef, pg.NodeID, bool) {
	for _, td := range inj.s.ObjectTypes() {
		for _, f := range td.Fields {
			if !inj.s.IsAttribute(f) || !pred(f) {
				continue
			}
			if v, ok := inj.pickNode(td.Name); ok {
				return td, f, v, true
			}
		}
	}
	return nil, nil, 0, false
}

// relationshipFields yields a relationship declaration with instances.
func (inj *injector) relationshipFields(pred func(*schema.FieldDef) bool) (*schema.TypeDef, *schema.FieldDef, pg.NodeID, bool) {
	for _, td := range inj.s.ObjectTypes() {
		for _, f := range td.Fields {
			if !inj.s.IsRelationship(f) || !pred(f) {
				continue
			}
			if v, ok := inj.pickNode(td.Name); ok {
				return td, f, v, true
			}
		}
	}
	return nil, nil, 0, false
}

func (inj *injector) ws1() (string, error) {
	// Prefer a built-in scalar field so the bogus value is surely wrong
	// (custom scalars accept anything by default).
	td, f, v, ok := inj.attributeFields(func(f *schema.FieldDef) bool {
		base := f.Type.Base()
		return values.IsBuiltinScalar(base) && base != "ID" && base != "String" || inj.s.Type(base) != nil && inj.s.Type(base).Kind == schema.Enum
	})
	if !ok {
		return "", fmt.Errorf("gen: no typed attribute field to corrupt for WS1")
	}
	bogus := values.Value(values.Boolean(true))
	if f.Type.Base() == "Boolean" {
		bogus = values.Int(123456)
	}
	inj.g.SetNodeProp(v, f.Name, bogus)
	return fmt.Sprintf("set %s.%s on node %d to a value outside valuesW(%s)", td.Name, f.Name, v, f.Type), nil
}

func (inj *injector) ws2() (string, error) {
	for _, e := range inj.g.Edges() {
		src, _ := inj.g.Endpoints(e)
		fd := inj.s.Field(inj.g.NodeLabel(src), inj.g.EdgeLabel(e))
		if fd == nil {
			continue
		}
		for _, arg := range fd.Args {
			base := arg.Type.Base()
			if base == "Int" || base == "Float" || base == "Boolean" {
				inj.g.SetEdgeProp(e, arg.Name, values.String("bogus"))
				return fmt.Sprintf("set edge property %s on edge %d to a string (declared %s)", arg.Name, e, arg.Type), nil
			}
		}
	}
	return "", fmt.Errorf("gen: no numeric/boolean edge property to corrupt for WS2")
}

func (inj *injector) ws3() (string, error) {
	// Find a relationship declaration and a node that is NOT a valid
	// target; redirect by adding a fresh edge to it.
	for _, td := range inj.s.ObjectTypes() {
		for _, f := range td.Fields {
			if !inj.s.IsRelationship(f) {
				continue
			}
			src, ok := inj.pickNode(td.Name)
			if !ok {
				continue
			}
			for _, other := range inj.s.ObjectTypes() {
				if inj.s.SubtypeNamed(other.Name, f.Type.Base()) {
					continue
				}
				if bad, ok := inj.pickNode(other.Name); ok {
					// Avoid tripping WS4 instead: on non-list fields,
					// swap one existing edge for the mistyped one.
					if !f.Type.IsList() {
						if existing := inj.g.OutEdgesLabeled(src, f.Name); len(existing) > 0 {
							inj.g.RemoveEdge(existing[0])
						}
					}
					inj.g.MustAddEdge(src, bad, f.Name)
					return fmt.Sprintf("added %s edge from node %d to node %d of non-target type %s", f.Name, src, bad, other.Name), nil
				}
			}
		}
	}
	return "", fmt.Errorf("gen: no mistypable relationship for WS3")
}

func (inj *injector) ws4() (string, error) {
	td, f, src, ok := inj.relationshipFields(func(f *schema.FieldDef) bool { return !f.Type.IsList() })
	if !ok {
		return "", fmt.Errorf("gen: no non-list relationship field for WS4")
	}
	targets := inj.nodesOfType(f.Type.Base())
	if len(targets) == 0 {
		return "", fmt.Errorf("gen: no targets for WS4 injection on %s.%s", td.Name, f.Name)
	}
	need := 2 - inj.g.OutDegreeLabeled(src, f.Name)
	for i := 0; i < need; i++ {
		inj.g.MustAddEdge(src, targets[inj.rnd.Intn(len(targets))], f.Name)
	}
	return fmt.Sprintf("gave node %d two %s edges on non-list field %s.%s", src, f.Name, td.Name, f.Name), nil
}

// withDirective locates a relationship declaration carrying the directive
// (on the object type itself or inherited from an interface) and applies
// the mutation fn to it.
func (inj *injector) withDirective(dir string, fn func(td *schema.TypeDef, f *schema.FieldDef) (string, error)) (string, error) {
	for _, td := range inj.s.Types() {
		if td.Kind != schema.Object && td.Kind != schema.Interface {
			continue
		}
		for _, f := range td.Fields {
			if inj.s.IsRelationship(f) && schema.HasDirective(f.Directives, dir) {
				return fn(td, f)
			}
		}
	}
	return "", fmt.Errorf("gen: schema has no relationship field with @%s", dir)
}

func (inj *injector) ds1(td *schema.TypeDef, f *schema.FieldDef) (string, error) {
	sources := inj.nodesOfType(td.Name)
	targets := inj.nodesOfType(f.Type.Base())
	if len(sources) == 0 || len(targets) == 0 {
		return "", fmt.Errorf("gen: no instances to violate @distinct on %s.%s", td.Name, f.Name)
	}
	src := sources[inj.rnd.Intn(len(sources))]
	dst := targets[inj.rnd.Intn(len(targets))]
	inj.g.MustAddEdge(src, dst, f.Name)
	inj.g.MustAddEdge(src, dst, f.Name)
	return fmt.Sprintf("added two parallel %s edges %d→%d despite @distinct", f.Name, src, dst), nil
}

func (inj *injector) ds2(td *schema.TypeDef, f *schema.FieldDef) (string, error) {
	for _, src := range inj.nodesOfType(td.Name) {
		if inj.s.SubtypeNamed(inj.g.NodeLabel(src), f.Type.Base()) {
			inj.g.MustAddEdge(src, src, f.Name)
			return fmt.Sprintf("added %s loop on node %d despite @noLoops", f.Name, src), nil
		}
	}
	return "", fmt.Errorf("gen: no node can form a loop on %s.%s", td.Name, f.Name)
}

func (inj *injector) ds3(td *schema.TypeDef, f *schema.FieldDef) (string, error) {
	sources := inj.nodesOfType(td.Name)
	targets := inj.nodesOfType(f.Type.Base())
	if len(sources) < 2 || len(targets) == 0 {
		return "", fmt.Errorf("gen: need two sources to violate @uniqueForTarget on %s.%s", td.Name, f.Name)
	}
	dst := targets[inj.rnd.Intn(len(targets))]
	inj.g.MustAddEdge(sources[0], dst, f.Name)
	inj.g.MustAddEdge(sources[1], dst, f.Name)
	return fmt.Sprintf("gave node %d two incoming %s edges despite @uniqueForTarget", dst, f.Name), nil
}

func (inj *injector) ds4(td *schema.TypeDef, f *schema.FieldDef) (string, error) {
	// A fresh target node with no incoming edge violates DS4.
	labels := inj.s.ConcreteTargets(f.Type.Base())
	if len(labels) == 0 {
		return "", fmt.Errorf("gen: no concrete target type for %s.%s", td.Name, f.Name)
	}
	v := inj.g.AddNode(labels[0])
	return fmt.Sprintf("added %s node %d with no incoming %s edge despite @requiredForTarget", labels[0], v, f.Name), nil
}

func (inj *injector) ds5() (string, error) {
	td, f, v, ok := inj.attributeFields(func(f *schema.FieldDef) bool {
		return schema.HasDirective(f.Directives, schema.DirRequired)
	})
	if !ok {
		return "", fmt.Errorf("gen: no @required attribute field for DS5")
	}
	inj.g.DeleteNodeProp(v, f.Name)
	return fmt.Sprintf("removed @required property %s.%s from node %d", td.Name, f.Name, v), nil
}

func (inj *injector) ds6() (string, error) {
	td, f, _, ok := inj.relationshipFields(func(f *schema.FieldDef) bool {
		return schema.HasDirective(f.Directives, schema.DirRequired)
	})
	if !ok {
		return "", fmt.Errorf("gen: no @required relationship field for DS6")
	}
	v := inj.g.AddNode(td.Name)
	// Keep the new node's @required attributes satisfied so only DS6
	// (and possibly DS7 key bucketing) fires... attributes first.
	for _, af := range td.Fields {
		if inj.s.IsAttribute(af) && schema.HasDirective(af.Directives, schema.DirRequired) {
			inj.g.SetNodeProp(v, af.Name, values.String(fmt.Sprintf("inj-%d", v)))
		}
	}
	return fmt.Sprintf("added %s node %d without the @required %s edge", td.Name, v, f.Name), nil
}

func (inj *injector) ds7() (string, error) {
	for _, td := range inj.s.Types() {
		sets := td.KeyFieldSets()
		if len(sets) == 0 {
			continue
		}
		nodes := inj.nodesOfType(td.Name)
		if len(nodes) < 2 {
			continue
		}
		// Copy every key property of nodes[0] onto nodes[1].
		for _, set := range sets {
			for _, fname := range set {
				if val, ok := inj.g.NodeProp(nodes[0], fname); ok {
					inj.g.SetNodeProp(nodes[1], fname, val)
				} else {
					inj.g.DeleteNodeProp(nodes[1], fname)
				}
			}
		}
		return fmt.Sprintf("copied key properties of node %d onto node %d (type %s)", nodes[0], nodes[1], td.Name), nil
	}
	return "", fmt.Errorf("gen: no @key type with two instances for DS7")
}

func (inj *injector) ss2() (string, error) {
	nodes := inj.g.Nodes()
	if len(nodes) == 0 {
		return "", fmt.Errorf("gen: empty graph")
	}
	v := nodes[inj.rnd.Intn(len(nodes))]
	inj.g.SetNodeProp(v, "__unjustified", values.Int(1))
	return fmt.Sprintf("added undeclared property to node %d", v), nil
}

func (inj *injector) ss3() (string, error) {
	edges := inj.g.Edges()
	if len(edges) == 0 {
		return "", fmt.Errorf("gen: graph has no edges")
	}
	e := edges[inj.rnd.Intn(len(edges))]
	inj.g.SetEdgeProp(e, "__unjustified", values.Int(1))
	return fmt.Sprintf("added undeclared property to edge %d", e), nil
}

func (inj *injector) ss4() (string, error) {
	nodes := inj.g.Nodes()
	if len(nodes) < 2 {
		return "", fmt.Errorf("gen: need two nodes")
	}
	src := nodes[inj.rnd.Intn(len(nodes))]
	dst := nodes[inj.rnd.Intn(len(nodes))]
	inj.g.MustAddEdge(src, dst, "__unjustifiedEdge")
	return fmt.Sprintf("added edge with undeclared label %d→%d", src, dst), nil
}
