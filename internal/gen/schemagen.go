package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"pgschema/internal/parser"
	"pgschema/internal/schema"
)

// SchemaConfig controls random schema generation.
type SchemaConfig struct {
	Seed int64
	// Types is the number of object types (default 5).
	Types int
	// AttrsPerType is the maximum number of attribute fields per type
	// (default 4).
	AttrsPerType int
	// RelsPerType is the maximum number of relationship fields per type
	// (default 2).
	RelsPerType int
	// Unions also generates union types used as relationship targets.
	Unions bool
}

func (c SchemaConfig) withDefaults() SchemaConfig {
	if c.Types == 0 {
		c.Types = 5
	}
	if c.AttrsPerType == 0 {
		c.AttrsPerType = 4
	}
	if c.RelsPerType == 0 {
		c.RelsPerType = 2
	}
	return c
}

// RandomSchema generates a random consistent SDL schema whose constraint
// combinations are always generatable by Conformant with equal per-type
// populations: every relationship field name is globally unique (so the
// cross-type constraint state never conflicts), and @requiredForTarget is
// only combined with cardinalities that a matching can satisfy.
//
// The generated SDL text is returned together with the built schema, so
// callers can exercise the whole parse/build pipeline.
func RandomSchema(cfg SchemaConfig) (*schema.Schema, string, error) {
	cfg = cfg.withDefaults()
	rnd := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder

	b.WriteString("enum Color { RED GREEN BLUE }\n")
	b.WriteString("scalar Stamp\n")

	typeName := func(i int) string { return fmt.Sprintf("T%d", i) }

	// Optional unions over object-type pairs.
	unionOf := map[int]string{}
	if cfg.Unions && cfg.Types >= 2 {
		n := rnd.Intn(cfg.Types/2) + 1
		for u := 0; u < n; u++ {
			a := rnd.Intn(cfg.Types)
			bb := rnd.Intn(cfg.Types)
			if a == bb {
				bb = (bb + 1) % cfg.Types
			}
			name := fmt.Sprintf("U%d", u)
			fmt.Fprintf(&b, "union %s = %s | %s\n", name, typeName(a), typeName(bb))
			unionOf[u] = name
		}
	}

	scalarTypes := []string{"Int", "Float", "String", "Boolean", "ID", "Color", "Stamp"}
	fieldSeq := 0
	for i := 0; i < cfg.Types; i++ {
		fmt.Fprintf(&b, "type %s", typeName(i))
		// Single-field keys only (they stay inside the Angles-
		// translatable fragment and the generator can always make the
		// values unique).
		hasKey := rnd.Intn(3) == 0
		keyField := ""
		if hasKey {
			keyField = fmt.Sprintf("k%d", i)
			fmt.Fprintf(&b, " @key(fields: [%q])", keyField)
		}
		b.WriteString(" {\n")
		if hasKey {
			fmt.Fprintf(&b, "  %s: ID! @required\n", keyField)
		}
		nAttrs := 1 + rnd.Intn(cfg.AttrsPerType)
		for a := 0; a < nAttrs; a++ {
			st := scalarTypes[rnd.Intn(len(scalarTypes))]
			ref := st
			switch rnd.Intn(4) {
			case 0:
				ref = st + "!"
			case 1:
				ref = "[" + st + "!]"
			}
			req := ""
			if rnd.Intn(3) == 0 {
				req = " @required"
			}
			fmt.Fprintf(&b, "  a%d_%d: %s%s\n", i, a, ref, req)
		}
		nRels := rnd.Intn(cfg.RelsPerType + 1)
		for r := 0; r < nRels; r++ {
			target := typeName(rnd.Intn(cfg.Types))
			if cfg.Unions && len(unionOf) > 0 && rnd.Intn(4) == 0 {
				target = unionOf[rnd.Intn(len(unionOf))]
			}
			isList := rnd.Intn(2) == 0
			ref := target
			if isList {
				ref = "[" + target + "]"
			}
			var dirs []string
			if rnd.Intn(3) == 0 {
				dirs = append(dirs, "@required")
			}
			if isList && rnd.Intn(3) == 0 {
				dirs = append(dirs, "@distinct")
			}
			if target == typeName(i) && rnd.Intn(2) == 0 {
				dirs = append(dirs, "@noLoops")
			}
			// @uniqueForTarget alone is always satisfiable with a
			// matching; combined with @requiredForTarget it needs
			// sources ≥ targets, which equal populations give — but
			// only on list fields, where one source can cover
			// several targets if the matching is uneven.
			switch rnd.Intn(6) {
			case 0:
				dirs = append(dirs, "@uniqueForTarget")
			case 1:
				if isList {
					dirs = append(dirs, "@requiredForTarget")
				}
			}
			fieldSeq++
			suffix := ""
			if len(dirs) > 0 {
				suffix = " " + strings.Join(dirs, " ")
			}
			// Edge properties on some relationships.
			args := ""
			if rnd.Intn(3) == 0 {
				args = "(w: Float!, note: String)"
			}
			fmt.Fprintf(&b, "  r%d%s: %s%s\n", fieldSeq, args, ref, suffix)
		}
		b.WriteString("}\n")
	}

	src := b.String()
	doc, err := parser.Parse(src)
	if err != nil {
		return nil, src, fmt.Errorf("gen: generated SDL does not parse: %w", err)
	}
	s, err := schema.Build(doc, schema.Options{})
	if err != nil {
		return nil, src, fmt.Errorf("gen: generated SDL does not build: %w", err)
	}
	return s, src, nil
}
