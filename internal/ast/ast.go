// Package ast declares the abstract syntax tree for GraphQL SDL documents
// (June 2018 edition, type-system definitions only).
//
// The tree mirrors §3 (Type System) of the GraphQL specification: schema
// definitions, scalar/object/interface/union/enum/input-object type
// definitions, and directive definitions, together with the value-literal
// grammar used for argument values and defaults.
package ast

import "pgschema/internal/token"

// Document is a parsed SDL document.
type Document struct {
	Definitions []Definition
}

// Definition is implemented by every top-level SDL definition.
type Definition interface {
	// DefinitionName returns the defined name ("" for schema definitions).
	DefinitionName() string
	// Position returns where the definition starts.
	Position() token.Position
	def()
}

// common embeds the fields shared by all definitions.
type common struct {
	Description string
	Name        string
	Directives  []Directive
	Pos         token.Position
}

// DefinitionName implements Definition.
func (c *common) DefinitionName() string { return c.Name }

// Position implements Definition.
func (c *common) Position() token.Position { return c.Pos }

func (c *common) def() {}

// SchemaDefinition is a `schema { query: ... }` block (§3.3). The paper
// (§3.6) ignores root operation types; we parse them for completeness.
type SchemaDefinition struct {
	Description    string
	Directives     []Directive
	RootOperations []RootOperation
	Pos            token.Position
}

// DefinitionName implements Definition; a schema definition is unnamed.
func (*SchemaDefinition) DefinitionName() string { return "" }

// Position implements Definition.
func (s *SchemaDefinition) Position() token.Position { return s.Pos }

func (*SchemaDefinition) def() {}

// RootOperation names one root operation type binding, e.g. "query: Query".
type RootOperation struct {
	Operation string // query | mutation | subscription
	Type      string
	Pos       token.Position
}

// ScalarTypeDefinition declares a custom scalar type (§3.5).
type ScalarTypeDefinition struct {
	common
}

// ObjectTypeDefinition declares an object type (§3.6).
type ObjectTypeDefinition struct {
	common
	Interfaces []string // names of implemented interfaces
	Fields     []FieldDefinition
}

// InterfaceTypeDefinition declares an interface type (§3.7).
type InterfaceTypeDefinition struct {
	common
	Fields []FieldDefinition
}

// UnionTypeDefinition declares a union type (§3.8).
type UnionTypeDefinition struct {
	common
	Members []string // names of member object types
}

// EnumTypeDefinition declares an enum type (§3.9).
type EnumTypeDefinition struct {
	common
	Values []EnumValueDefinition
}

// EnumValueDefinition is one value of an enum type.
type EnumValueDefinition struct {
	Description string
	Name        string
	Directives  []Directive
	Pos         token.Position
}

// InputObjectTypeDefinition declares an input object type (§3.10). The
// paper ignores input types for Property Graph validation (§3.6 of the
// paper), but they are parsed so that full GraphQL schemas are accepted.
type InputObjectTypeDefinition struct {
	common
	Fields []InputValueDefinition
}

// DirectiveDefinition declares a directive and its argument types (§3.13).
type DirectiveDefinition struct {
	Description string
	Name        string
	Arguments   []InputValueDefinition
	Locations   []string
	Repeatable  bool
	Pos         token.Position
}

// DefinitionName implements Definition.
func (d *DirectiveDefinition) DefinitionName() string { return d.Name }

// Position implements Definition.
func (d *DirectiveDefinition) Position() token.Position { return d.Pos }

func (*DirectiveDefinition) def() {}

// FieldDefinition is a field of an object or interface type (§3.6).
type FieldDefinition struct {
	Description string
	Name        string
	Arguments   []InputValueDefinition
	Type        Type
	Directives  []Directive
	Pos         token.Position
}

// InputValueDefinition is an argument or input-object field (§3.6.1).
type InputValueDefinition struct {
	Description string
	Name        string
	Type        Type
	Default     Value // nil if absent
	Directives  []Directive
	Pos         token.Position
}

// Directive is an applied directive with argument values (§2.12).
type Directive struct {
	Name      string
	Arguments []Argument
	Pos       token.Position
}

// Argument is a named argument value inside a directive application.
type Argument struct {
	Name  string
	Value Value
	Pos   token.Position
}

// Type is a type reference: named, list, or non-null (§3.4.1).
type Type interface {
	typ()
	// String renders the type in SDL syntax, e.g. "[String!]!".
	String() string
}

// NamedType references a type by name.
type NamedType struct {
	Name string
	Pos  token.Position
}

func (*NamedType) typ() {}

// String implements Type.
func (t *NamedType) String() string { return t.Name }

// ListType wraps an element type in a list (§3.11).
type ListType struct {
	Elem Type
	Pos  token.Position
}

func (*ListType) typ() {}

// String implements Type.
func (t *ListType) String() string { return "[" + t.Elem.String() + "]" }

// NonNullType marks a type as non-nullable (§3.12).
type NonNullType struct {
	Elem Type // NamedType or ListType, never NonNullType
	Pos  token.Position
}

func (*NonNullType) typ() {}

// String implements Type.
func (t *NonNullType) String() string { return t.Elem.String() + "!" }

// Value is a literal value in SDL source (§2.9).
type Value interface {
	val()
	// String renders the value in SDL syntax.
	String() string
}

// IntValue is an integer literal; the raw text is preserved.
type IntValue struct{ Raw string }

// FloatValue is a float literal; the raw text is preserved.
type FloatValue struct{ Raw string }

// StringValue is a (decoded) string literal.
type StringValue struct{ Value string }

// BooleanValue is true or false.
type BooleanValue struct{ Value bool }

// NullValue is the literal null.
type NullValue struct{}

// EnumValue is a bare name used as an enum value.
type EnumValue struct{ Name string }

// ListValue is a bracketed list of values.
type ListValue struct{ Values []Value }

// ObjectValue is a braced object literal (used only by input types).
type ObjectValue struct{ Fields []ObjectField }

// ObjectField is one entry of an ObjectValue.
type ObjectField struct {
	Name  string
	Value Value
}

func (IntValue) val()     {}
func (FloatValue) val()   {}
func (StringValue) val()  {}
func (BooleanValue) val() {}
func (NullValue) val()    {}
func (EnumValue) val()    {}
func (ListValue) val()    {}
func (ObjectValue) val()  {}

// String implements Value.
func (v IntValue) String() string { return v.Raw }

// String implements Value.
func (v FloatValue) String() string { return v.Raw }

// String implements Value.
func (v StringValue) String() string { return quote(v.Value) }

// String implements Value.
func (v BooleanValue) String() string {
	if v.Value {
		return "true"
	}
	return "false"
}

// String implements Value.
func (NullValue) String() string { return "null" }

// String implements Value.
func (v EnumValue) String() string { return v.Name }

// String implements Value.
func (v ListValue) String() string {
	s := "["
	for i, e := range v.Values {
		if i > 0 {
			s += ", "
		}
		s += e.String()
	}
	return s + "]"
}

// String implements Value.
func (v ObjectValue) String() string {
	s := "{"
	for i, f := range v.Fields {
		if i > 0 {
			s += ", "
		}
		s += f.Name + ": " + f.Value.String()
	}
	return s + "}"
}

// quote renders s as a GraphQL string literal.
func quote(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for _, r := range s {
		switch r {
		case '"':
			out = append(out, '\\', '"')
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		case '\r':
			out = append(out, '\\', 'r')
		case '\t':
			out = append(out, '\\', 't')
		default:
			out = append(out, string(r)...)
		}
	}
	return string(append(out, '"'))
}
