package ast

import "testing"

func TestTypeString(t *testing.T) {
	cases := map[string]Type{
		"Int":        &NamedType{Name: "Int"},
		"Int!":       &NonNullType{Elem: &NamedType{Name: "Int"}},
		"[Int]":      &ListType{Elem: &NamedType{Name: "Int"}},
		"[Int!]!":    &NonNullType{Elem: &ListType{Elem: &NonNullType{Elem: &NamedType{Name: "Int"}}}},
		"[[String]]": &ListType{Elem: &ListType{Elem: &NamedType{Name: "String"}}},
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"42":              IntValue{Raw: "42"},
		"2.5":             FloatValue{Raw: "2.5"},
		`"a\"b"`:          StringValue{Value: `a"b`},
		`"tab\there"`:     StringValue{Value: "tab\there"},
		"true":            BooleanValue{Value: true},
		"false":           BooleanValue{Value: false},
		"null":            NullValue{},
		"METER":           EnumValue{Name: "METER"},
		"[1, 2]":          ListValue{Values: []Value{IntValue{Raw: "1"}, IntValue{Raw: "2"}}},
		"{k: 1}":          ObjectValue{Fields: []ObjectField{{Name: "k", Value: IntValue{Raw: "1"}}}},
		"{a: 1, b: true}": ObjectValue{Fields: []ObjectField{{Name: "a", Value: IntValue{Raw: "1"}}, {Name: "b", Value: BooleanValue{Value: true}}}},
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestFieldKeyAndDefinitionNames(t *testing.T) {
	obj := &ObjectTypeDefinition{}
	obj.Name = "T"
	if obj.DefinitionName() != "T" {
		t.Error("DefinitionName")
	}
	sd := &SchemaDefinition{}
	if sd.DefinitionName() != "" {
		t.Error("schema definitions are unnamed")
	}
	dd := &DirectiveDefinition{Name: "key"}
	if dd.DefinitionName() != "key" {
		t.Error("directive DefinitionName")
	}
}
