package query

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"pgschema/internal/apigen"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

// A Plan is a query document compiled against a schema once and reused
// across executions — the PR 3 playbook applied to reads. Everything
// that depends only on (schema, document) is resolved at compile time:
// root fields become list-scan or key-lookup steps, attribute fields
// become property-column fetches addressed by symbol slot, relationship
// fields become CSR adjacency walks with pre-parsed edge filters,
// fragments become indexed programs dispatched through subtype-closure
// rows, and every error the interpretive executor would raise lazily is
// embedded as a step that fires only when a node actually reaches it —
// preserving the interpretive engine's observable behavior exactly.
//
// A Plan is immutable after Compile and safe for concurrent use. The
// per-graph binding (symbol slots resolved to pg.Sym, subtype rows over
// live labels, node enumerations, key-bucket indexes) is cached inside
// the Plan keyed by (graph, epoch), exactly like validate.Program:
// repeated execution against an unchanged graph skips the bind step,
// and any mutation invalidates it on the next call.
type Plan struct {
	s *schema.Schema

	ops   []*planOp
	frags []*planFrag

	// conds are the fragment type conditions the plan dispatches on;
	// bindings compute one subtype row per live label over them.
	conds []string

	// symNames are the property/edge-label/type names the plan compares
	// at runtime; bindings resolve each slot to a pg.Sym (NoSym matches
	// nothing).
	symNames []string

	// enumTypes are the type names whose node enumerations root steps
	// scan; lookups holds one key-index spec per looked-up type.
	enumTypes []string
	lookups   []*lookupSpec
	invs      []*invStep

	compileTime time.Duration

	bound atomic.Pointer[planBinding]
}

type planOp struct {
	name  string
	steps []rootStep
}

// planFrag is a named fragment compiled once against its type
// condition; spreads reference it by index so legal fragment reuse (and
// cyclic definitions, whose cycles are detected at runtime like the
// interpretive engine does) cost one compilation each.
type planFrag struct {
	name   string
	condID int32
	sub    *selProg
}

// selProg is a compiled selection set.
type selProg struct {
	items []selItem
}

type itemKind uint8

const (
	itTypename itemKind = iota
	itField
	itInline
	itSpread
)

type selItem struct {
	kind itemKind
	key  string // response key (itTypename, itField)

	fld *fieldStep // itField

	condID int32    // itInline: -1 means unconditional
	sub    *selProg // itInline

	fragIdx  int32  // itSpread
	err      *Error // itSpread: undefined fragment, raised on reach
	cycleErr *Error // itSpread: raised when the fragment is active
}

type staticKind uint8

const (
	stErr staticKind = iota
	stAttr
	stRel
)

// fieldStep is one compiled field resolution. The inverse branch (if
// any) is consulted first by the node's runtime label, mirroring the
// interpretive precedence; the static branch then resolves against the
// position's declared type, with errors embedded for lazy raising.
type fieldStep struct {
	inv *invStep // non-nil when the name is an inverse-field name

	kind staticKind
	err  *Error // stErr

	slot int32 // stAttr: property-name slot

	// stRel
	edgeSlot int32
	filters  []edgeFilter
	isList   bool
	sub      *selProg
	subErr   *Error
}

// edgeFilter is one pre-parsed edge-property equality filter; a null
// argument matches edges lacking the property (or carrying null).
type edgeFilter struct {
	slot   int32
	want   values.Value
	isNull bool
}

// invStep is one use of an inverse field: the applicable (edge label,
// source type) definitions keyed by target label, each with the
// sub-selection compiled against its source type. Bindings turn byLabel
// into a Sym-indexed row.
type invStep struct {
	idx     int
	argsErr *Error
	targets []invTarget
	byLabel map[string]int32
}

type invTarget struct {
	edgeSlot int32
	srcSlot  int32
	sub      *selProg
	subErr   *Error
}

type rootKind uint8

const (
	rtErr rootKind = iota
	rtTypename
	rtList
	rtLookup
)

type rootStep struct {
	kind rootKind
	key  string
	err  *Error // rtErr, raised when the step executes

	typeName string
	enumIdx  int32 // rtList: enumeration to scan
	sub      *selProg
	subErr   *Error

	// rtLookup: the key tuple rendered at compile time selects the
	// bucket; verify re-checks with values.Equal because Value.Key is
	// canonical-consistent but not injective.
	lookupIdx int32
	bucketKey string
	verify    []keyCheck
}

type keyCheck struct {
	slot int32
	want values.Value
}

// lookupSpec is the key-bucket index spec for one looked-up type: its
// key fields as symbol slots, in key-set order. All lookup steps on the
// type share one spec (the key set is a property of the type).
type lookupSpec struct {
	typeName string
	enumIdx  int32
	slots    []int32
}

// compiler carries the compile-time-only state: the apigen root/inverse
// convention maps (built exactly like the interpretive executor's) and
// the dedup tables behind the plan's slot arrays.
type compiler struct {
	p   *Plan
	doc *Document

	listField   map[string]string
	lookupField map[string]string
	invByName   map[string]map[string]inverseDef // field name -> target label

	condID   map[string]int32
	symID    map[string]int32
	enumID   map[string]int32
	lookupID map[string]int32
	fragIdx  map[string]int32
}

// Compile builds the query plan for a parsed document against a schema.
// Compilation never fails: malformed selections compile into steps that
// raise the interpretive engine's error if (and only if) execution
// reaches them. The schema must have been built by schema.Build and
// must not change afterwards.
func Compile(s *schema.Schema, doc *Document) *Plan {
	start := time.Now()
	c := &compiler{
		p:           &Plan{s: s},
		doc:         doc,
		listField:   make(map[string]string),
		lookupField: make(map[string]string),
		invByName:   make(map[string]map[string]inverseDef),
		condID:      make(map[string]int32),
		symID:       make(map[string]int32),
		enumID:      make(map[string]int32),
		lookupID:    make(map[string]int32),
		fragIdx:     make(map[string]int32),
	}
	// The same iteration the interpretive executor runs per call —
	// sorted object types, source-order fields — so colliding names
	// resolve to the same winner.
	for _, td := range s.ObjectTypes() {
		c.listField[apigen.ListFieldName(td.Name)] = td.Name
		if keyFieldsOf(td) != nil {
			c.lookupField[apigen.LookupFieldName(td.Name)] = td.Name
		}
		for _, f := range td.Fields {
			if !s.IsRelationship(f) {
				continue
			}
			name := apigen.InverseFieldName(f.Name, td.Name)
			for _, target := range s.ConcreteTargets(f.Type.Base()) {
				if c.invByName[name] == nil {
					c.invByName[name] = make(map[string]inverseDef)
				}
				c.invByName[name][target] = inverseDef{edgeLabel: f.Name, sourceType: td.Name}
			}
		}
	}
	for _, op := range doc.Operations {
		po := &planOp{name: op.Name}
		for _, sel := range op.Selections {
			po.steps = append(po.steps, c.compileRootSel(sel))
		}
		c.p.ops = append(c.p.ops, po)
	}
	c.p.compileTime = time.Since(start)
	return c.p
}

// Schema returns the schema the plan was compiled against.
func (p *Plan) Schema() *schema.Schema { return p.s }

// CompileTime reports the wall-clock duration of Compile.
func (p *Plan) CompileTime() time.Duration { return p.compileTime }

func (c *compiler) compileRootSel(sel Selection) rootStep {
	f, ok := sel.(*Field)
	if !ok {
		return rootStep{kind: rtErr, err: &Error{Msg: "fragments on the query root are not supported"}}
	}
	switch {
	case f.Name == "__typename":
		return rootStep{kind: rtTypename, key: f.Key()}
	case c.listField[f.Name] != "":
		tn := c.listField[f.Name]
		if len(f.Arguments) > 0 {
			return rootStep{kind: rtErr, err: &Error{Pos: f.Pos, Msg: f.Name + " takes no arguments"}}
		}
		st := rootStep{kind: rtList, key: f.Key(), typeName: tn, enumIdx: c.enumSlot(tn)}
		st.sub, st.subErr = c.compileBody(tn, f.Selections)
		return st
	case c.lookupField[f.Name] != "":
		return c.compileLookup(c.lookupField[f.Name], f)
	default:
		return rootStep{kind: rtErr, err: &Error{Pos: f.Pos, Msg: fmt.Sprintf("unknown query field %q", f.Name)}}
	}
}

func (c *compiler) compileLookup(tn string, f *Field) rootStep {
	keys := keyFieldsOf(c.p.s.Type(tn))
	want := make(map[string]values.Value, len(f.Arguments))
	for _, a := range f.Arguments {
		found := false
		for _, k := range keys {
			if k == a.Name {
				found = true
				break
			}
		}
		if !found {
			return rootStep{kind: rtErr, err: &Error{Pos: a.Pos, Msg: fmt.Sprintf("%q is not a key field of %s", a.Name, tn)}}
		}
		want[a.Name] = toValue(a.Value)
	}
	if len(want) != len(keys) {
		return rootStep{kind: rtErr, err: &Error{Pos: f.Pos, Msg: fmt.Sprintf("lookup %q requires the full key (%d of %d fields given)", f.Name, len(want), len(keys))}}
	}
	specIdx := c.lookupSlot(tn, keys)
	spec := c.p.lookups[specIdx]
	st := rootStep{kind: rtLookup, key: f.Key(), typeName: tn, lookupIdx: specIdx}
	var sb strings.Builder
	for i, k := range keys {
		w := want[k]
		sb.WriteString("P")
		sb.WriteString(w.Key())
		sb.WriteByte('\x00')
		st.verify = append(st.verify, keyCheck{slot: spec.slots[i], want: w})
	}
	st.bucketKey = sb.String()
	st.sub, st.subErr = c.compileBody(tn, f.Selections)
	return st
}

// compileBody compiles a node-position selection set, or the lazy
// "requires a selection set" error when there is none.
func (c *compiler) compileBody(typeName string, sels []Selection) (*selProg, *Error) {
	if sels == nil {
		return nil, &Error{Msg: fmt.Sprintf("type %s requires a selection set", typeName)}
	}
	return c.compileSelSet(typeName, sels), nil
}

func (c *compiler) compileSelSet(staticType string, sels []Selection) *selProg {
	prog := &selProg{items: make([]selItem, 0, len(sels))}
	for _, sel := range sels {
		switch x := sel.(type) {
		case *Field:
			if x.Name == "__typename" {
				prog.items = append(prog.items, selItem{kind: itTypename, key: x.Key()})
				continue
			}
			prog.items = append(prog.items, selItem{kind: itField, key: x.Key(), fld: c.compileField(staticType, x)})
		case *InlineFragment:
			it := selItem{kind: itInline, condID: -1}
			inner := staticType
			if x.TypeCondition != "" {
				it.condID = c.condSlot(x.TypeCondition)
				inner = x.TypeCondition
			}
			it.sub = c.compileSelSet(inner, x.Selections)
			prog.items = append(prog.items, it)
		case *FragmentSpread:
			frag := c.doc.Fragments[x.Name]
			if frag == nil {
				prog.items = append(prog.items, selItem{kind: itSpread, err: &Error{Pos: x.Pos, Msg: fmt.Sprintf("undefined fragment %q", x.Name)}})
				continue
			}
			prog.items = append(prog.items, selItem{
				kind:     itSpread,
				fragIdx:  c.compileFragment(x.Name, frag),
				cycleErr: &Error{Pos: x.Pos, Msg: fmt.Sprintf("fragment cycle through %q", x.Name)},
			})
		}
	}
	return prog
}

// compileFragment compiles a named fragment once, registering its index
// before compiling the body so spreads inside the body (cycles) resolve
// to the same entry instead of recursing forever.
func (c *compiler) compileFragment(name string, frag *Fragment) int32 {
	if idx, ok := c.fragIdx[name]; ok {
		return idx
	}
	idx := int32(len(c.p.frags))
	pf := &planFrag{name: name, condID: c.condSlot(frag.TypeCondition)}
	c.p.frags = append(c.p.frags, pf)
	c.fragIdx[name] = idx
	pf.sub = c.compileSelSet(frag.TypeCondition, frag.Selections)
	return idx
}

func (c *compiler) compileField(staticType string, f *Field) *fieldStep {
	fs := &fieldStep{}
	if defs := c.invByName[f.Name]; defs != nil {
		fs.inv = c.compileInverse(defs, f)
	}
	s := c.p.s
	td := s.Type(staticType)
	switch {
	case td == nil:
		fs.kind, fs.err = stErr, &Error{Pos: f.Pos, Msg: fmt.Sprintf("unknown type %s", staticType)}
		return fs
	case td.Kind == schema.Union:
		fs.kind, fs.err = stErr, &Error{Pos: f.Pos, Msg: fmt.Sprintf("fields of union %s require an inline fragment", staticType)}
		return fs
	}
	fd := td.Field(f.Name)
	switch {
	case fd == nil:
		fs.kind, fs.err = stErr, &Error{Pos: f.Pos, Msg: fmt.Sprintf("type %s has no field %q", staticType, f.Name)}
	case s.IsAttribute(fd):
		switch {
		case len(f.Arguments) > 0:
			fs.kind, fs.err = stErr, &Error{Pos: f.Pos, Msg: "attribute fields take no arguments"}
		case f.Selections != nil:
			fs.kind, fs.err = stErr, &Error{Pos: f.Pos, Msg: fmt.Sprintf("scalar field %q has no sub-selections", f.Name)}
		default:
			fs.kind, fs.slot = stAttr, c.symSlot(f.Name)
		}
	default:
		fs.kind = stRel
		for _, a := range f.Arguments {
			if fd.Arg(a.Name) == nil {
				fs.kind, fs.err = stErr, &Error{Pos: a.Pos, Msg: fmt.Sprintf("field %s.%s has no argument %q", staticType, f.Name, a.Name)}
				fs.filters = nil
				return fs
			}
			w := toValue(a.Value)
			slot := c.symSlot(a.Name)
			replaced := false
			for i := range fs.filters {
				if fs.filters[i].slot == slot { // duplicate argument: last wins
					fs.filters[i] = edgeFilter{slot: slot, want: w, isNull: w.IsNull()}
					replaced = true
					break
				}
			}
			if !replaced {
				fs.filters = append(fs.filters, edgeFilter{slot: slot, want: w, isNull: w.IsNull()})
			}
		}
		fs.edgeSlot = c.symSlot(f.Name)
		fs.isList = fd.Type.IsList()
		fs.sub, fs.subErr = c.compileBody(fd.Type.Base(), f.Selections)
	}
	return fs
}

func (c *compiler) compileInverse(defs map[string]inverseDef, f *Field) *invStep {
	inv := &invStep{idx: len(c.p.invs), byLabel: make(map[string]int32, len(defs))}
	if len(f.Arguments) > 0 {
		inv.argsErr = &Error{Pos: f.Pos, Msg: "inverse fields take no arguments"}
	}
	labels := make([]string, 0, len(defs))
	for l := range defs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	type defKey struct{ edge, src string }
	seen := make(map[defKey]int32, len(defs))
	for _, l := range labels {
		d := defs[l]
		k := defKey{d.edgeLabel, d.sourceType}
		idx, ok := seen[k]
		if !ok {
			t := invTarget{edgeSlot: c.symSlot(d.edgeLabel), srcSlot: c.symSlot(d.sourceType)}
			t.sub, t.subErr = c.compileBody(d.sourceType, f.Selections)
			idx = int32(len(inv.targets))
			inv.targets = append(inv.targets, t)
			seen[k] = idx
		}
		inv.byLabel[l] = idx
	}
	c.p.invs = append(c.p.invs, inv)
	return inv
}

func (c *compiler) condSlot(name string) int32 {
	if id, ok := c.condID[name]; ok {
		return id
	}
	id := int32(len(c.p.conds))
	c.condID[name] = id
	c.p.conds = append(c.p.conds, name)
	return id
}

func (c *compiler) symSlot(name string) int32 {
	if id, ok := c.symID[name]; ok {
		return id
	}
	id := int32(len(c.p.symNames))
	c.symID[name] = id
	c.p.symNames = append(c.p.symNames, name)
	return id
}

func (c *compiler) enumSlot(typeName string) int32 {
	if id, ok := c.enumID[typeName]; ok {
		return id
	}
	id := int32(len(c.p.enumTypes))
	c.enumID[typeName] = id
	c.p.enumTypes = append(c.p.enumTypes, typeName)
	return id
}

func (c *compiler) lookupSlot(typeName string, keys []string) int32 {
	if id, ok := c.lookupID[typeName]; ok {
		return id
	}
	spec := &lookupSpec{typeName: typeName, enumIdx: c.enumSlot(typeName)}
	for _, k := range keys {
		spec.slots = append(spec.slots, c.symSlot(k))
	}
	id := int32(len(c.p.lookups))
	c.p.lookups = append(c.p.lookups, spec)
	c.lookupID[typeName] = id
	return id
}
