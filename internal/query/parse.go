package query

import (
	"fmt"
	"strconv"

	"pgschema/internal/lexer"
	"pgschema/internal/token"
)

// Error is a query parse or execution error with a source position when
// one is available.
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

// Parse parses an executable GraphQL document (queries and fragments).
// The shorthand form `{ field … }` is accepted as an anonymous query.
func Parse(src string) (*Document, error) {
	p := &parser{lx: lexer.New(src)}
	p.next()
	doc := &Document{Fragments: make(map[string]*Fragment)}
	for p.tok.Kind != token.EOF {
		switch {
		case p.tok.Kind == token.BraceL:
			sels, err := p.selectionSet()
			if err != nil {
				return nil, err
			}
			doc.Operations = append(doc.Operations, &Operation{Selections: sels, Pos: p.tok.Pos})
		case p.tok.Kind == token.Name && p.tok.Literal == "query":
			pos := p.tok.Pos
			p.next()
			name := ""
			if p.tok.Kind == token.Name {
				name = p.tok.Literal
				p.next()
			}
			sels, err := p.selectionSet()
			if err != nil {
				return nil, err
			}
			doc.Operations = append(doc.Operations, &Operation{Name: name, Selections: sels, Pos: pos})
		case p.tok.Kind == token.Name && p.tok.Literal == "fragment":
			frag, err := p.fragment()
			if err != nil {
				return nil, err
			}
			if _, dup := doc.Fragments[frag.Name]; dup {
				return nil, p.errorf(frag.Pos, "fragment %q defined twice", frag.Name)
			}
			doc.Fragments[frag.Name] = frag
		case p.tok.Kind == token.Name && (p.tok.Literal == "mutation" || p.tok.Literal == "subscription"):
			return nil, p.errorf(p.tok.Pos, "%s operations are not supported (Property Graph schemas define no write semantics)", p.tok.Literal)
		default:
			return nil, p.unexpected("document")
		}
	}
	if len(doc.Operations) == 0 {
		return nil, &Error{Msg: "document contains no operations"}
	}
	return doc, nil
}

type parser struct {
	lx  *lexer.Lexer
	tok token.Token
}

func (p *parser) next() { p.tok = p.lx.Next() }

func (p *parser) errorf(pos token.Position, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) unexpected(context string) error {
	if p.tok.Kind == token.Illegal {
		return p.errorf(p.tok.Pos, "%s", p.tok.Literal)
	}
	return p.errorf(p.tok.Pos, "unexpected %s in %s", p.tok, context)
}

func (p *parser) expect(k token.Kind, context string) (token.Token, error) {
	if p.tok.Kind != k {
		return token.Token{}, p.errorf(p.tok.Pos, "expected %s in %s, found %s", k, context, p.tok)
	}
	t := p.tok
	p.next()
	return t, nil
}

func (p *parser) fragment() (*Fragment, error) {
	pos := p.tok.Pos
	p.next() // "fragment"
	name, err := p.expect(token.Name, "fragment definition")
	if err != nil {
		return nil, err
	}
	if name.Literal == "on" {
		return nil, p.errorf(name.Pos, "fragment name must not be \"on\"")
	}
	on, err := p.expect(token.Name, "fragment definition")
	if err != nil {
		return nil, err
	}
	if on.Literal != "on" {
		return nil, p.errorf(on.Pos, "expected keyword \"on\", found %q", on.Literal)
	}
	cond, err := p.expect(token.Name, "fragment type condition")
	if err != nil {
		return nil, err
	}
	sels, err := p.selectionSet()
	if err != nil {
		return nil, err
	}
	return &Fragment{Name: name.Literal, TypeCondition: cond.Literal, Selections: sels, Pos: pos}, nil
}

func (p *parser) selectionSet() ([]Selection, error) {
	if _, err := p.expect(token.BraceL, "selection set"); err != nil {
		return nil, err
	}
	var out []Selection
	for p.tok.Kind != token.BraceR {
		sel, err := p.selection()
		if err != nil {
			return nil, err
		}
		out = append(out, sel)
	}
	p.next() // "}"
	if len(out) == 0 {
		return nil, p.errorf(p.tok.Pos, "selection set must not be empty")
	}
	return out, nil
}

func (p *parser) selection() (Selection, error) {
	if p.tok.Kind == token.Spread {
		pos := p.tok.Pos
		p.next()
		if p.tok.Kind == token.Name && p.tok.Literal == "on" {
			p.next()
			cond, err := p.expect(token.Name, "inline fragment")
			if err != nil {
				return nil, err
			}
			sels, err := p.selectionSet()
			if err != nil {
				return nil, err
			}
			return &InlineFragment{TypeCondition: cond.Literal, Selections: sels, Pos: pos}, nil
		}
		if p.tok.Kind == token.BraceL {
			sels, err := p.selectionSet()
			if err != nil {
				return nil, err
			}
			return &InlineFragment{Selections: sels, Pos: pos}, nil
		}
		name, err := p.expect(token.Name, "fragment spread")
		if err != nil {
			return nil, err
		}
		return &FragmentSpread{Name: name.Literal, Pos: pos}, nil
	}

	name, err := p.expect(token.Name, "field selection")
	if err != nil {
		return nil, err
	}
	f := &Field{Name: name.Literal, Pos: name.Pos}
	if p.tok.Kind == token.Colon {
		p.next()
		real, err := p.expect(token.Name, "aliased field")
		if err != nil {
			return nil, err
		}
		f.Alias, f.Name = f.Name, real.Literal
	}
	if p.tok.Kind == token.ParenL {
		p.next()
		for p.tok.Kind != token.ParenR {
			aname, err := p.expect(token.Name, "field argument")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.Colon, "field argument"); err != nil {
				return nil, err
			}
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			f.Arguments = append(f.Arguments, Argument{Name: aname.Literal, Value: v, Pos: aname.Pos})
		}
		p.next() // ")"
	}
	if p.tok.Kind == token.BraceL {
		sels, err := p.selectionSet()
		if err != nil {
			return nil, err
		}
		f.Selections = sels
	}
	return f, nil
}

func (p *parser) value() (Value, error) {
	switch p.tok.Kind {
	case token.Int:
		i, err := strconv.ParseInt(p.tok.Literal, 10, 64)
		if err != nil {
			return Value{}, p.errorf(p.tok.Pos, "integer literal out of range: %s", p.tok.Literal)
		}
		p.next()
		return Value{Kind: ValInt, Int: i}, nil
	case token.Float:
		f, err := strconv.ParseFloat(p.tok.Literal, 64)
		if err != nil {
			return Value{}, p.errorf(p.tok.Pos, "float literal out of range: %s", p.tok.Literal)
		}
		p.next()
		return Value{Kind: ValFloat, Float: f}, nil
	case token.String, token.BlockString:
		v := Value{Kind: ValString, Text: p.tok.Literal}
		p.next()
		return v, nil
	case token.Name:
		lit := p.tok.Literal
		p.next()
		switch lit {
		case "true":
			return Value{Kind: ValBool, Bool: true}, nil
		case "false":
			return Value{Kind: ValBool, Bool: false}, nil
		case "null":
			return Value{Kind: ValNull}, nil
		}
		return Value{Kind: ValEnum, Text: lit}, nil
	case token.BracketL:
		p.next()
		var elems []Value
		for p.tok.Kind != token.BracketR {
			v, err := p.value()
			if err != nil {
				return Value{}, err
			}
			elems = append(elems, v)
		}
		p.next()
		return Value{Kind: ValList, List: elems}, nil
	case token.Dollar:
		return Value{}, p.errorf(p.tok.Pos, "variables are not supported")
	}
	return Value{}, p.unexpected("argument value")
}
