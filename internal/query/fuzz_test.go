package query

import (
	"testing"

	sdlparser "pgschema/internal/parser"
	"pgschema/internal/schema"
)

// fuzzSchema is a small fixed schema so the fuzzer can drive Compile on
// every successfully parsed document, not just the parser.
var fuzzSchema = func() *schema.Schema {
	doc, err := sdlparser.Parse(`
type City @key(fields: ["name"]) {
	name: String! @required
	twin: [City]
}`)
	if err != nil {
		panic(err)
	}
	s, err := schema.Build(doc, schema.Options{})
	if err != nil {
		panic(err)
	}
	return s
}()

// FuzzParse pins the parser's contract: any input either parses into a
// non-nil document or returns an error — never a panic, and never both
// nil. Parsed documents must also survive Compile (which never errors;
// malformed selections become lazy error steps).
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`{`,
		`{}`,
		`{ allCities { name } }`,
		`query Q { city(name: "Linköping") { name twin { name } } }`,
		`{ c: city(name: "x") { ... on City { name } ... { name } } }`,
		`{ allCities { ...f } } fragment f on City { name }`,
		`fragment f on City { name }`,
		`{ allCities { name(a: 1, b: [1 2.5 "x" true null EAST]) } }`,
		`query A { __typename } query B { allCities { name } }`,
		`mutation { x }`,
		`{ allCities { twin { twin { twin { name } } } } }`,
		`{ f(x: $var) }`,
		`{ f(x: -1.5e3) }`,
		"{ allCities { name } } # comment\n",
		`{ "not a field" }`,
		`{ f @skip(if: true) }`,
		`{ ... on { name } }`,
		`{ f( }`,
		`{ f(x: ) }`,
		"\x00\x01\xff",
		`{ f } fragment on on on { x }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src)
		if err != nil {
			if doc != nil {
				t.Fatalf("Parse returned both a document and an error: %v", err)
			}
			if err.Error() == "" {
				t.Fatal("Parse error with empty message")
			}
			return
		}
		if doc == nil {
			t.Fatal("Parse returned nil document and nil error")
		}
		// Compilation must tolerate any parsed document.
		plan := Compile(fuzzSchema, doc)
		if plan == nil {
			t.Fatal("Compile returned nil plan")
		}
	})
}
