package query

import (
	"strings"
	"sync"

	"pgschema/internal/pg"
)

// planBinding joins a compiled plan to one graph at one epoch: symbol
// slots resolved to the graph's interned Syms (NoSym matches nothing),
// subtype-closure rows per live label over the plan's fragment
// conditions, inverse-field dispatch rows per live label, and — lazily,
// under sync.Once guards — the per-type node enumerations and key-bucket
// indexes the root steps scan. Its visible state is immutable once
// built; the lazy parts must be first requested while the graph is
// still at the binding's epoch, which every caller guarantees because
// an execution holds the graph un-mutated for its duration (the server
// serializes /graph/apply against /graphql readers).
type planBinding struct {
	p     *Plan
	g     *pg.Graph
	epoch uint64
	snap  *pg.Snapshot

	// syms[slot] resolves Plan.symNames[slot] in this graph.
	syms []pg.Sym

	// subRows[sym][condID] ⇔ label ⊑S conds[condID]; non-nil exactly for
	// syms that are labels of live nodes (the only labels runtime
	// dispatch can see).
	subRows [][]bool

	// invRows[invIdx][sym] is the invTarget index applicable to a node
	// of that label, or -1.
	invRows [][]int32

	enumOnce sync.Once
	enums    [][]pg.NodeID // per Plan.enumTypes, ascending node IDs

	keyOnce sync.Once
	keyIdx  []map[string][]pg.NodeID // per Plan.lookups
}

// bindTo returns the plan bound to the graph at its current epoch,
// reusing the cached binding when neither the graph identity nor its
// epoch changed. Concurrent callers may race to rebuild; every built
// binding is valid and the last store wins.
func (p *Plan) bindTo(g *pg.Graph) *planBinding {
	if b := p.bound.Load(); b != nil && b.g == g && b.epoch == g.Epoch() {
		return b
	}
	b := p.newBinding(g)
	p.bound.Store(b)
	return b
}

func (p *Plan) newBinding(g *pg.Graph) *planBinding {
	b := &planBinding{p: p, g: g, epoch: g.Epoch(), snap: g.Snapshot()}
	b.syms = make([]pg.Sym, len(p.symNames))
	for i, n := range p.symNames {
		b.syms[i], _ = g.Sym(n)
	}
	b.subRows = make([][]bool, g.SymCount())
	if len(p.conds) > 0 {
		for _, l := range g.Labels() {
			sym, _ := g.Sym(l)
			row := make([]bool, len(p.conds))
			for i, cond := range p.conds {
				row[i] = p.s.SubtypeNamed(l, cond)
			}
			b.subRows[sym] = row
		}
	}
	if len(p.invs) > 0 {
		b.invRows = make([][]int32, len(p.invs))
		for i, inv := range p.invs {
			row := make([]int32, g.SymCount())
			for j := range row {
				row[j] = -1
			}
			for label, t := range inv.byLabel {
				if sym, ok := g.Sym(label); ok {
					row[sym] = t
				}
			}
			b.invRows[i] = row
		}
	}
	return b
}

// condHolds reports whether a node labeled `label` satisfies fragment
// condition condID (label ⊑S conds[condID]).
func (b *planBinding) condHolds(label pg.Sym, condID int32) bool {
	if label < 0 || int(label) >= len(b.subRows) {
		return false
	}
	row := b.subRows[label]
	return row != nil && row[condID]
}

// ensureEnums materializes the per-type node enumerations in one
// ascending scan of the snapshot's label column, once. Exact-label
// match (not subtype closure), like Graph.NodesLabeled.
func (b *planBinding) ensureEnums() {
	b.enumOnce.Do(func() {
		p := b.p
		b.enums = make([][]pg.NodeID, len(p.enumTypes))
		if len(p.enumTypes) == 0 {
			return
		}
		want := make([]int32, b.g.SymCount())
		for i := range want {
			want[i] = -1
		}
		any := false
		for i, tn := range p.enumTypes {
			if sym, ok := b.g.Sym(tn); ok {
				want[sym] = int32(i)
				any = true
			}
		}
		if !any {
			return
		}
		bound := b.snap.NodeBound()
		for v := 0; v < bound; v++ {
			sym := b.snap.NodeLabelSym(pg.NodeID(v))
			if sym < 0 {
				continue
			}
			if idx := want[sym]; idx >= 0 {
				b.enums[idx] = append(b.enums[idx], pg.NodeID(v))
			}
		}
	})
}

// keyIndex returns the key-bucket indexes, building them on first use
// (only executions with lookup roots pay for them). Buckets group each
// type's nodes by the rendered key tuple — "P"+Value.Key() per present
// key property, "A" per absent one — in ascending node-id order, so
// the first verified candidate is the lowest matching id, exactly what
// the (sorted) interpretive scan returns. Value.Key is not injective
// across kinds, hence the Equal verify pass at execution.
func (b *planBinding) keyIndex() []map[string][]pg.NodeID {
	b.keyOnce.Do(func() {
		b.ensureEnums()
		b.keyIdx = make([]map[string][]pg.NodeID, len(b.p.lookups))
		var sb strings.Builder
		for i, spec := range b.p.lookups {
			buckets := make(map[string][]pg.NodeID)
			for _, v := range b.enums[spec.enumIdx] {
				sb.Reset()
				for _, slot := range spec.slots {
					if val, ok := b.snap.NodePropBySym(v, b.syms[slot]); ok {
						sb.WriteString("P")
						sb.WriteString(val.Key())
					} else {
						sb.WriteString("A")
					}
					sb.WriteByte('\x00')
				}
				key := sb.String()
				buckets[key] = append(buckets[key], v)
			}
			b.keyIdx[i] = buckets
		}
	})
	return b.keyIdx
}
