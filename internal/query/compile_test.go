package query

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"pgschema/internal/values"
)

func TestCompiledExecuteBasics(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	doc, err := Parse(`{ human(id: "1000") { name friends { name } } }`)
	if err != nil {
		t.Fatal(err)
	}
	plan := Compile(s, doc)
	out, err := plan.Execute(context.Background(), g, "")
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	want := map[string]any{
		"human": map[string]any{
			"name": "Luke Skywalker",
			"friends": []any{
				map[string]any{"name": "R2-D2"},
				map[string]any{"name": "Han Solo"},
			},
		},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %#v, want %#v", out, want)
	}
}

func TestCompiledOperationSelection(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	doc, err := Parse(`query A { __typename } query B { allHumans { name } }`)
	if err != nil {
		t.Fatal(err)
	}
	plan := Compile(s, doc)
	out, err := plan.Execute(context.Background(), g, "A")
	if err != nil || out["__typename"] != "Query" {
		t.Fatalf("op A: out=%v err=%v", out, err)
	}
	if _, err := plan.Execute(context.Background(), g, ""); err == nil {
		t.Fatal("empty name with two operations: expected error")
	}
	if _, err := plan.Execute(context.Background(), g, "C"); err == nil {
		t.Fatal("unknown operation: expected error")
	}
}

// TestPlanBindingEpochInvalidation proves a cached plan follows graph
// mutations: the epoch-keyed binding is rebuilt, not reused stale.
func TestPlanBindingEpochInvalidation(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	doc, err := Parse(`{ allHumans { name } }`)
	if err != nil {
		t.Fatal(err)
	}
	plan := Compile(s, doc)
	countHumans := func() int {
		out, err := plan.Execute(context.Background(), g, "")
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		return len(out["allHumans"].([]any))
	}
	if n := countHumans(); n != 2 {
		t.Fatalf("got %d humans, want 2", n)
	}
	b1 := plan.bound.Load()
	if n := countHumans(); n != 2 {
		t.Fatalf("got %d humans, want 2", n)
	}
	if b2 := plan.bound.Load(); b1 != b2 {
		t.Fatal("binding not reused across executions at the same epoch")
	}
	n := g.AddNode("Human")
	g.SetNodeProp(n, "id", values.ID("19"))
	g.SetNodeProp(n, "name", values.String("Leia Organa"))
	if n := countHumans(); n != 3 {
		t.Fatalf("after mutation: got %d humans, want 3", n)
	}
	if b3 := plan.bound.Load(); b1 == b3 {
		t.Fatal("binding not rebuilt after an epoch bump")
	}
}

func TestPlanCacheLRU(t *testing.T) {
	s := build(t, starWarsSchema)
	c := NewPlanCache(s, 2)
	q := func(i int) string { return fmt.Sprintf(`{ q%d: allHumans { name } }`, i) }

	p1, hit, err := c.Get(q(1))
	if err != nil || hit || p1 == nil {
		t.Fatalf("first get: plan=%v hit=%v err=%v", p1, hit, err)
	}
	if _, hit, _ := c.Get(q(1)); !hit {
		t.Fatal("second get of same source: expected a cache hit")
	}
	c.Get(q(2))
	c.Get(q(1)) // refresh 1 so 2 is now least recently used
	c.Get(q(3)) // evicts 2
	if c.Len() != 2 {
		t.Fatalf("cache len %d, want 2", c.Len())
	}
	if _, hit, _ := c.Get(q(2)); hit {
		t.Fatal("evicted entry served as a hit")
	}
	// That miss re-inserted q2, evicting q1 (LRU); q3 must survive.
	if _, hit, _ := c.Get(q(3)); !hit {
		t.Fatal("recently used entry was evicted")
	}
	if _, _, err := c.Get(`{ nope`); err == nil {
		t.Fatal("parse error not surfaced")
	}
}

// TestExecuteCancellation covers both engines: a pre-cancelled context
// must abort a scan over a graph large enough to cross cancelStride.
func TestExecuteCancellation(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	for i := 0; i < 3*cancelStride; i++ {
		n := g.AddNode("Human")
		g.SetNodeProp(n, "id", values.ID(fmt.Sprintf("x%d", i)))
	}
	doc, err := Parse(`{ allHumans { id name } }`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan := Compile(s, doc)
	if _, err := plan.Execute(ctx, g, ""); err != context.Canceled {
		t.Fatalf("compiled: got %v, want context.Canceled", err)
	}
	if _, err := ExecuteContext(ctx, s, g, doc, ""); err != context.Canceled {
		t.Fatalf("interpretive: got %v, want context.Canceled", err)
	}
	// A live context completes normally.
	if _, err := plan.Execute(context.Background(), g, ""); err != nil {
		t.Fatalf("background: %v", err)
	}
}

// TestPlanConcurrentExecute races many executions of one plan (shared
// binding, lazy enumerations and key index) — the race detector proves
// the sync.Once/atomic coordination.
func TestPlanConcurrentExecute(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	doc, err := Parse(`{ human(id: "1000") { name } allDroids { name } }`)
	if err != nil {
		t.Fatal(err)
	}
	plan := Compile(s, doc)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := plan.Execute(context.Background(), g, ""); err != nil {
					t.Errorf("Execute: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
