package query

import (
	"reflect"
	"strings"
	"testing"

	sdlparser "pgschema/internal/parser"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

func build(t *testing.T, src string) *schema.Schema {
	t.Helper()
	doc, err := sdlparser.Parse(src)
	if err != nil {
		t.Fatalf("parse schema: %v", err)
	}
	s, err := schema.Build(doc, schema.Options{})
	if err != nil {
		t.Fatalf("build schema: %v", err)
	}
	return s
}

// starWarsSchema follows Appendix Figure 1, with keys added so that the
// API lookup fields exist.
const starWarsSchema = `
interface Character {
	id: ID!
	name: String
	friends: [Character]
}
type Human implements Character @key(fields: ["id"]) {
	id: ID! @required
	name: String
	friends: [Character]
	starships: [Starship]
}
type Droid implements Character @key(fields: ["id"]) {
	id: ID! @required
	name: String
	friends: [Character]
	primaryFunction: String!
}
type Starship @key(fields: ["id"]) {
	id: ID! @required
	name: String
	length: Float
}`

// starWarsGraph builds the canonical mini star-wars graph.
func starWarsGraph(t *testing.T, s *schema.Schema) *pg.Graph {
	t.Helper()
	g := pg.New()
	add := func(label, id, name string) pg.NodeID {
		n := g.AddNode(label)
		g.SetNodeProp(n, "id", values.ID(id))
		if name != "" {
			g.SetNodeProp(n, "name", values.String(name))
		}
		return n
	}
	luke := add("Human", "1000", "Luke Skywalker")
	han := add("Human", "1002", "Han Solo")
	r2 := add("Droid", "2001", "R2-D2")
	g.SetNodeProp(r2, "primaryFunction", values.String("Astromech"))
	falcon := add("Starship", "3000", "Millennium Falcon")
	g.SetNodeProp(falcon, "length", values.Float(34.37))
	g.MustAddEdge(luke, r2, "friends")
	g.MustAddEdge(luke, han, "friends")
	g.MustAddEdge(r2, luke, "friends")
	g.MustAddEdge(han, luke, "friends")
	g.MustAddEdge(han, falcon, "starships")
	return g
}

func run(t *testing.T, s *schema.Schema, g *pg.Graph, q string) map[string]any {
	t.Helper()
	out, err := ExecuteQuery(s, g, q)
	if err != nil {
		t.Fatalf("ExecuteQuery(%s): %v", q, err)
	}
	return out
}

func runErr(t *testing.T, s *schema.Schema, g *pg.Graph, q, wantSubstr string) {
	t.Helper()
	_, err := ExecuteQuery(s, g, q)
	if err == nil {
		t.Fatalf("ExecuteQuery(%s): expected error containing %q", q, wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err, wantSubstr)
	}
}

func TestLookupByKey(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	out := run(t, s, g, `{ human(id: "1000") { name __typename } }`)
	want := map[string]any{"human": map[string]any{"name": "Luke Skywalker", "__typename": "Human"}}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("got %v, want %v", out, want)
	}
	// Unmatched key → null.
	out = run(t, s, g, `{ human(id: "9999") { name } }`)
	if out["human"] != nil {
		t.Errorf("missing human: %v", out)
	}
}

func TestListAll(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	out := run(t, s, g, `{ allHumans { name } }`)
	list := out["allHumans"].([]any)
	if len(list) != 2 {
		t.Fatalf("allHumans: %v", list)
	}
	names := []string{
		list[0].(map[string]any)["name"].(string),
		list[1].(map[string]any)["name"].(string),
	}
	if names[0] != "Luke Skywalker" || names[1] != "Han Solo" {
		t.Errorf("names: %v", names)
	}
}

func TestTraversalAndInterfaces(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	out := run(t, s, g, `{
		human(id: "1000") {
			name
			friends {
				__typename
				name
				... on Droid { primaryFunction }
			}
		}
	}`)
	human := out["human"].(map[string]any)
	friends := human["friends"].([]any)
	if len(friends) != 2 {
		t.Fatalf("friends: %v", friends)
	}
	droid := friends[0].(map[string]any)
	if droid["__typename"] != "Droid" || droid["primaryFunction"] != "Astromech" {
		t.Errorf("droid friend: %v", droid)
	}
	han := friends[1].(map[string]any)
	if han["__typename"] != "Human" {
		t.Errorf("human friend: %v", han)
	}
	if _, ok := han["primaryFunction"]; ok {
		t.Error("fragment leaked onto a Human")
	}
}

func TestNamedFragments(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	out := run(t, s, g, `
		query Friends { human(id: "1000") { friends { ...charFields } } }
		fragment charFields on Character { id name }`)
	friends := out["human"].(map[string]any)["friends"].([]any)
	if friends[0].(map[string]any)["id"] != "2001" {
		t.Errorf("fragment fields: %v", friends)
	}
}

func TestFragmentCycleDetected(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	runErr(t, s, g, `
		query Q { human(id: "1000") { ...a } }
		fragment a on Human { ...b }
		fragment b on Human { ...a }`, "fragment cycle")
}

func TestAliases(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	out := run(t, s, g, `{ hero: human(id: "1000") { moniker: name } }`)
	hero := out["hero"].(map[string]any)
	if hero["moniker"] != "Luke Skywalker" {
		t.Errorf("alias: %v", out)
	}
}

func TestInverseFields(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	// Who has the Falcon among their starships? (bidirectional
	// traversal per §3.6 — the starships edge is declared on Human.)
	out := run(t, s, g, `{ starship(id: "3000") { name _starshipsOfHuman { name } } }`)
	ship := out["starship"].(map[string]any)
	owners := ship["_starshipsOfHuman"].([]any)
	if len(owners) != 1 || owners[0].(map[string]any)["name"] != "Han Solo" {
		t.Errorf("owners: %v", owners)
	}
}

func TestEdgePropertyFilter(t *testing.T) {
	s := build(t, `
		type User @key(fields: ["id"]) {
			id: ID! @required
			follows(since: Int): [User]
		}`)
	g := pg.New()
	a := g.AddNode("User")
	g.SetNodeProp(a, "id", values.ID("a"))
	b := g.AddNode("User")
	g.SetNodeProp(b, "id", values.ID("b"))
	c := g.AddNode("User")
	g.SetNodeProp(c, "id", values.ID("c"))
	e1 := g.MustAddEdge(a, b, "follows")
	g.SetEdgeProp(e1, "since", values.Int(2019))
	e2 := g.MustAddEdge(a, c, "follows")
	g.SetEdgeProp(e2, "since", values.Int(2021))

	out := run(t, s, g, `{ user(id: "a") { follows(since: 2019) { id } } }`)
	follows := out["user"].(map[string]any)["follows"].([]any)
	if len(follows) != 1 || follows[0].(map[string]any)["id"] != "b" {
		t.Errorf("filtered follows: %v", follows)
	}
	// Without the filter, both.
	out = run(t, s, g, `{ user(id: "a") { follows { id } } }`)
	if got := len(out["user"].(map[string]any)["follows"].([]any)); got != 2 {
		t.Errorf("unfiltered follows: %d", got)
	}
}

func TestNonListRelationship(t *testing.T) {
	s := build(t, `
		type Session @key(fields: ["id"]) { id: ID! @required user: User! @required }
		type User { id: ID! }`)
	g := pg.New()
	sess := g.AddNode("Session")
	g.SetNodeProp(sess, "id", values.ID("s1"))
	u := g.AddNode("User")
	g.SetNodeProp(u, "id", values.ID("u1"))
	g.MustAddEdge(sess, u, "user")
	out := run(t, s, g, `{ session(id: "s1") { user { id } } }`)
	user := out["session"].(map[string]any)["user"].(map[string]any)
	if user["id"] != "u1" {
		t.Errorf("user: %v", out)
	}
	// A session with no edge yields null (not an empty list).
	sess2 := g.AddNode("Session")
	g.SetNodeProp(sess2, "id", values.ID("s2"))
	out = run(t, s, g, `{ session(id: "s2") { user { id } } }`)
	if out["session"].(map[string]any)["user"] != nil {
		t.Errorf("dangling user: %v", out)
	}
}

func TestValidationErrors(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	runErr(t, s, g, `{ nonsense { id } }`, "unknown query field")
	runErr(t, s, g, `{ human(id: "1000") { wrongField } }`, "no field")
	runErr(t, s, g, `{ human(id: "1000") { name { sub } } }`, "no sub-selections")
	runErr(t, s, g, `{ human(id: "1000") { friends } }`, "requires a selection set")
	runErr(t, s, g, `{ human(wrong: 1) { name } }`, "not a key field")
	runErr(t, s, g, `{ human { name } }`, "requires the full key")
	runErr(t, s, g, `{ human(id: "1000") { ...ghost } }`, "undefined fragment")
	runErr(t, s, g, `{ allHumans(id: 3) { name } }`, "takes no arguments")
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{``, "no operations"},
		{`mutation { x }`, "not supported"},
		{`{ }`, "must not be empty"},
		{`query Q { f(a: $v) { x } }`, "variables are not supported"},
		{`fragment on on Human { id }`, "must not be"},
		{`fragment f Human { id }`, "expected keyword"},
		{`{ f(a: {x: 1}) { y } }`, "argument value"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q): got %v, want error containing %q", c.src, err, c.want)
		}
	}
}

func TestOperationSelection(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	doc, err := Parse(`
		query A { allHumans { id } }
		query B { allDroids { id } }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(s, g, doc, ""); err == nil {
		t.Error("ambiguous operation accepted")
	}
	out, err := Execute(s, g, doc, "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(out["allDroids"].([]any)) != 1 {
		t.Errorf("operation B: %v", out)
	}
	if _, err := Execute(s, g, doc, "C"); err == nil {
		t.Error("unknown operation accepted")
	}
}

func TestUnionRequiresFragments(t *testing.T) {
	s := build(t, `
		type Person @key(fields: ["name"]) { name: String! @required favoriteFood: Food }
		union Food = Pizza | Pasta
		type Pizza { name: String! }
		type Pasta { name: String! }`)
	g := pg.New()
	p := g.AddNode("Person")
	g.SetNodeProp(p, "name", values.String("olaf"))
	z := g.AddNode("Pizza")
	g.SetNodeProp(z, "name", values.String("margherita"))
	g.MustAddEdge(p, z, "favoriteFood")

	out := run(t, s, g, `{ person(name: "olaf") { favoriteFood { __typename ... on Pizza { name } } } }`)
	food := out["person"].(map[string]any)["favoriteFood"].(map[string]any)
	if food["__typename"] != "Pizza" || food["name"] != "margherita" {
		t.Errorf("union dispatch: %v", food)
	}
	// Direct fields on a union are rejected.
	runErr(t, s, g, `{ person(name: "olaf") { favoriteFood { name } } }`, "union")
}

func TestListPropertyValues(t *testing.T) {
	s := build(t, `
		type User @key(fields: ["id"]) {
			id: ID! @required
			nicknames: [String!]
		}`)
	g := pg.New()
	u := g.AddNode("User")
	g.SetNodeProp(u, "id", values.ID("u1"))
	g.SetNodeProp(u, "nicknames", values.List(values.String("a"), values.String("b")))
	out := run(t, s, g, `{ user(id: "u1") { nicknames } }`)
	nick := out["user"].(map[string]any)["nicknames"].([]any)
	if len(nick) != 2 || nick[0] != "a" {
		t.Errorf("nicknames: %v", nick)
	}
}

func TestExecuteQueryParseError(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	if _, err := ExecuteQuery(s, g, "{ broken"); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestInverseFieldRejectsArguments(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	runErr(t, s, g, `{ starship(id: "3000") { _starshipsOfHuman(x: 1) { name } } }`, "no arguments")
}

func TestAttributeFieldRejectsArguments(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	runErr(t, s, g, `{ human(id: "1000") { name(x: 1) } }`, "no arguments")
}

func TestUnknownRelationshipArgument(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	runErr(t, s, g, `{ human(id: "1000") { friends(bogus: 1) { name } } }`, "no argument")
}

func TestConditionlessInlineFragment(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	out := run(t, s, g, `{ human(id: "1000") { ... { name } } }`)
	if out["human"].(map[string]any)["name"] != "Luke Skywalker" {
		t.Errorf("conditionless fragment: %v", out)
	}
}

func TestFragmentOnNonMatchingTypeSkipped(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	out := run(t, s, g, `{ human(id: "1000") { ... on Droid { primaryFunction } __typename } }`)
	h := out["human"].(map[string]any)
	if _, leaked := h["primaryFunction"]; leaked {
		t.Errorf("mismatching fragment applied: %v", h)
	}
}

func TestNullArgumentMatchesAbsentEdgeProperty(t *testing.T) {
	s := build(t, `
		type User @key(fields: ["id"]) {
			id: ID! @required
			follows(since: Int): [User]
		}`)
	g := pg.New()
	a := g.AddNode("User")
	g.SetNodeProp(a, "id", values.ID("a"))
	b := g.AddNode("User")
	g.SetNodeProp(b, "id", values.ID("b"))
	c := g.AddNode("User")
	g.SetNodeProp(c, "id", values.ID("c"))
	g.MustAddEdge(a, b, "follows") // no property
	e := g.MustAddEdge(a, c, "follows")
	g.SetEdgeProp(e, "since", values.Int(2020))
	out := run(t, s, g, `{ user(id: "a") { follows(since: null) { id } } }`)
	follows := out["user"].(map[string]any)["follows"].([]any)
	if len(follows) != 1 || follows[0].(map[string]any)["id"] != "b" {
		t.Errorf("null filter: %v", follows)
	}
}

func TestListAndFloatArguments(t *testing.T) {
	s := build(t, `
		type N @key(fields: ["id"]) {
			id: ID! @required
			rel(w: Float, tags: [String!]): [N]
		}`)
	g := pg.New()
	x := g.AddNode("N")
	g.SetNodeProp(x, "id", values.ID("x"))
	y := g.AddNode("N")
	g.SetNodeProp(y, "id", values.ID("y"))
	e := g.MustAddEdge(x, y, "rel")
	g.SetEdgeProp(e, "w", values.Float(0.5))
	g.SetEdgeProp(e, "tags", values.List(values.String("a"), values.String("b")))
	out := run(t, s, g, `{ n(id: "x") { rel(w: 0.5, tags: ["a" "b"]) { id } } }`)
	rel := out["n"].(map[string]any)["rel"].([]any)
	if len(rel) != 1 {
		t.Errorf("list/float filter: %v", out)
	}
	out = run(t, s, g, `{ n(id: "x") { rel(w: 0.25) { id } } }`)
	if got := out["n"].(map[string]any)["rel"].([]any); len(got) != 0 {
		t.Errorf("non-matching float filter: %v", got)
	}
}
