package query

import (
	"context"
	"fmt"
	"sort"

	"pgschema/internal/apigen"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

// Execute evaluates the named operation of a parsed document against a
// Property Graph, under the API conventions of the apigen package:
//
//   - query-root fields `all<Plural>` list every node of a type, and
//     `<lowerFirst(Type)>(keyField: …)` look one up by its @key;
//   - attribute fields read node properties, relationship fields traverse
//     outgoing edges (arguments filter by edge-property equality), and
//     `_<field>Of<Type>` fields traverse edges backwards;
//   - `__typename` yields the node's label ("Query" at the root);
//   - inline fragments and named fragments dispatch on node labels via
//     the subtype relation ⊑S.
//
// An empty operationName selects the document's only operation. The
// result is a JSON-ready tree of map[string]any, []any, and scalars.
func Execute(s *schema.Schema, g *pg.Graph, doc *Document, operationName string) (map[string]any, error) {
	return ExecuteContext(context.Background(), s, g, doc, operationName)
}

// ExecuteContext is Execute under a context: execution polls for
// cancellation every cancelStride node visits (the same stride the
// compiled engine uses) and returns the context's error if it fires. A
// background context never errors, so Execute is exactly the historical
// behavior. A nil ctx means Background.
func ExecuteContext(ctx context.Context, s *schema.Schema, g *pg.Graph, doc *Document, operationName string) (map[string]any, error) {
	op, err := pickOperation(doc, operationName)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ex := newExecutor(s, g, doc)
	ex.ctx = ctx
	return ex.root(op.Selections)
}

// ExecuteQuery parses and executes src in one step.
func ExecuteQuery(s *schema.Schema, g *pg.Graph, src string) (map[string]any, error) {
	doc, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Execute(s, g, doc, "")
}

func pickOperation(doc *Document, name string) (*Operation, error) {
	if name == "" {
		if len(doc.Operations) != 1 {
			return nil, &Error{Msg: fmt.Sprintf("document has %d operations; an operation name is required", len(doc.Operations))}
		}
		return doc.Operations[0], nil
	}
	for _, op := range doc.Operations {
		if op.Name == name {
			return op, nil
		}
	}
	return nil, &Error{Msg: fmt.Sprintf("no operation named %q", name)}
}

type executor struct {
	s   *schema.Schema
	g   *pg.Graph
	doc *Document

	ctx   context.Context
	steps int

	// Root conventions, precomputed.
	listField   map[string]string // "allAuthors" -> "Author"
	lookupField map[string]string // "author" -> "Author"

	// inverse[label][fieldName] resolves apigen inverse fields.
	inverse map[string]map[string]inverseDef
}

type inverseDef struct {
	edgeLabel  string
	sourceType string
}

func newExecutor(s *schema.Schema, g *pg.Graph, doc *Document) *executor {
	ex := &executor{
		s: s, g: g, doc: doc,
		listField:   make(map[string]string),
		lookupField: make(map[string]string),
		inverse:     make(map[string]map[string]inverseDef),
	}
	for _, td := range s.ObjectTypes() {
		ex.listField[apigen.ListFieldName(td.Name)] = td.Name
		if keyFieldsOf(td) != nil {
			ex.lookupField[apigen.LookupFieldName(td.Name)] = td.Name
		}
		for _, f := range td.Fields {
			if !s.IsRelationship(f) {
				continue
			}
			name := apigen.InverseFieldName(f.Name, td.Name)
			for _, target := range s.ConcreteTargets(f.Type.Base()) {
				if ex.inverse[target] == nil {
					ex.inverse[target] = make(map[string]inverseDef)
				}
				ex.inverse[target][name] = inverseDef{edgeLabel: f.Name, sourceType: td.Name}
			}
		}
	}
	return ex
}

// keyFieldsOf returns the first @key field list, or nil.
func keyFieldsOf(td *schema.TypeDef) []string {
	sets := td.KeyFieldSets()
	if len(sets) == 0 {
		return nil
	}
	return sets[0]
}

// root evaluates a selection set against the synthesized Query type.
func (ex *executor) root(sels []Selection) (map[string]any, error) {
	out := make(map[string]any)
	for _, sel := range sels {
		f, ok := sel.(*Field)
		if !ok {
			return nil, &Error{Msg: "fragments on the query root are not supported"}
		}
		switch {
		case f.Name == "__typename":
			out[f.Key()] = "Query"
		case ex.listField[f.Name] != "":
			typeName := ex.listField[f.Name]
			if len(f.Arguments) > 0 {
				return nil, &Error{Pos: f.Pos, Msg: f.Name + " takes no arguments"}
			}
			nodes := ex.g.NodesLabeled(typeName)
			sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
			list := make([]any, 0, len(nodes))
			for _, n := range nodes {
				v, err := ex.node(n, typeName, f.Selections)
				if err != nil {
					return nil, err
				}
				list = append(list, v)
			}
			out[f.Key()] = list
		case ex.lookupField[f.Name] != "":
			typeName := ex.lookupField[f.Name]
			n, found, err := ex.lookup(typeName, f)
			if err != nil {
				return nil, err
			}
			if !found {
				out[f.Key()] = nil
				continue
			}
			v, err := ex.node(n, typeName, f.Selections)
			if err != nil {
				return nil, err
			}
			out[f.Key()] = v
		default:
			return nil, &Error{Pos: f.Pos, Msg: fmt.Sprintf("unknown query field %q", f.Name)}
		}
	}
	return out, nil
}

// lookup finds the node of typeName matching the key arguments.
func (ex *executor) lookup(typeName string, f *Field) (pg.NodeID, bool, error) {
	td := ex.s.Type(typeName)
	keys := keyFieldsOf(td)
	want := make(map[string]values.Value, len(f.Arguments))
	for _, a := range f.Arguments {
		found := false
		for _, k := range keys {
			if k == a.Name {
				found = true
				break
			}
		}
		if !found {
			return 0, false, &Error{Pos: a.Pos, Msg: fmt.Sprintf("%q is not a key field of %s", a.Name, typeName)}
		}
		want[a.Name] = toValue(a.Value)
	}
	if len(want) != len(keys) {
		return 0, false, &Error{Pos: f.Pos, Msg: fmt.Sprintf("lookup %q requires the full key (%d of %d fields given)", f.Name, len(want), len(keys))}
	}
	// Ascending id order makes the winner deterministic (the lowest
	// matching node) and agreed with the compiled engine's key index;
	// NodesLabeled bucket order is perturbed by relabels.
	nodes := ex.g.NodesLabeled(typeName)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		match := true
		for name, w := range want {
			v, ok := ex.g.NodeProp(n, name)
			if !ok || !v.Equal(w) {
				match = false
				break
			}
		}
		if match {
			return n, true, nil
		}
	}
	return 0, false, nil
}

// node evaluates a selection set against one graph node. staticType is
// the declared type of the position (object, interface, or union name);
// concrete fields outside it require fragments, as in GraphQL proper.
func (ex *executor) node(n pg.NodeID, staticType string, sels []Selection) (map[string]any, error) {
	if sels == nil {
		return nil, &Error{Msg: fmt.Sprintf("type %s requires a selection set", staticType)}
	}
	ex.steps++
	if ex.steps%cancelStride == 0 && ex.ctx != nil {
		if err := ex.ctx.Err(); err != nil {
			return nil, err
		}
	}
	out := make(map[string]any)
	if err := ex.collect(n, staticType, sels, out, make(map[string]bool)); err != nil {
		return nil, err
	}
	return out, nil
}

// collect walks selections, flattening fragments, into out.
func (ex *executor) collect(n pg.NodeID, staticType string, sels []Selection, out map[string]any, activeFrags map[string]bool) error {
	label := ex.g.NodeLabel(n)
	for _, sel := range sels {
		switch x := sel.(type) {
		case *Field:
			if x.Name == "__typename" {
				out[x.Key()] = label
				continue
			}
			v, err := ex.field(n, staticType, x)
			if err != nil {
				return err
			}
			out[x.Key()] = v
		case *InlineFragment:
			if x.TypeCondition == "" || ex.s.SubtypeNamed(label, x.TypeCondition) {
				inner := staticType
				if x.TypeCondition != "" {
					inner = x.TypeCondition
				}
				if err := ex.collect(n, inner, x.Selections, out, activeFrags); err != nil {
					return err
				}
			}
		case *FragmentSpread:
			frag := ex.doc.Fragments[x.Name]
			if frag == nil {
				return &Error{Pos: x.Pos, Msg: fmt.Sprintf("undefined fragment %q", x.Name)}
			}
			if activeFrags[x.Name] {
				return &Error{Pos: x.Pos, Msg: fmt.Sprintf("fragment cycle through %q", x.Name)}
			}
			if ex.s.SubtypeNamed(label, frag.TypeCondition) {
				activeFrags[x.Name] = true
				err := ex.collect(n, frag.TypeCondition, frag.Selections, out, activeFrags)
				delete(activeFrags, x.Name)
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// field resolves one field on a node.
func (ex *executor) field(n pg.NodeID, staticType string, f *Field) (any, error) {
	label := ex.g.NodeLabel(n)

	// Inverse traversal fields, resolved by the node's concrete label.
	if inv, ok := ex.inverse[label][f.Name]; ok {
		if len(f.Arguments) > 0 {
			return nil, &Error{Pos: f.Pos, Msg: "inverse fields take no arguments"}
		}
		var list []any
		for _, e := range ex.g.InEdgesLabeled(n, inv.edgeLabel) {
			src, _ := ex.g.Endpoints(e)
			if ex.g.NodeLabel(src) != inv.sourceType {
				continue
			}
			v, err := ex.node(src, inv.sourceType, f.Selections)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
		}
		if list == nil {
			list = []any{}
		}
		return list, nil
	}

	td := ex.s.Type(staticType)
	if td == nil {
		return nil, &Error{Pos: f.Pos, Msg: fmt.Sprintf("unknown type %s", staticType)}
	}
	if td.Kind == schema.Union {
		return nil, &Error{Pos: f.Pos, Msg: fmt.Sprintf("fields of union %s require an inline fragment", staticType)}
	}
	fd := td.Field(f.Name)
	if fd == nil {
		return nil, &Error{Pos: f.Pos, Msg: fmt.Sprintf("type %s has no field %q", staticType, f.Name)}
	}

	if ex.s.IsAttribute(fd) {
		if len(f.Arguments) > 0 {
			return nil, &Error{Pos: f.Pos, Msg: "attribute fields take no arguments"}
		}
		if f.Selections != nil {
			return nil, &Error{Pos: f.Pos, Msg: fmt.Sprintf("scalar field %q has no sub-selections", f.Name)}
		}
		v, ok := ex.g.NodeProp(n, f.Name)
		if !ok {
			return nil, nil
		}
		return toNative(v), nil
	}

	// Relationship traversal.
	filter := make(map[string]values.Value, len(f.Arguments))
	for _, a := range f.Arguments {
		if fd.Arg(a.Name) == nil {
			return nil, &Error{Pos: a.Pos, Msg: fmt.Sprintf("field %s.%s has no argument %q", staticType, f.Name, a.Name)}
		}
		filter[a.Name] = toValue(a.Value)
	}
	targetType := fd.Type.Base()
	var list []any
	for _, e := range ex.g.OutEdgesLabeled(n, f.Name) {
		if !ex.edgeMatches(e, filter) {
			continue
		}
		_, dst := ex.g.Endpoints(e)
		v, err := ex.node(dst, targetType, f.Selections)
		if err != nil {
			return nil, err
		}
		list = append(list, v)
	}
	if fd.Type.IsList() {
		if list == nil {
			list = []any{}
		}
		return list, nil
	}
	if len(list) == 0 {
		return nil, nil
	}
	return list[0], nil
}

// edgeMatches checks the edge-property equality filter; a null argument
// matches edges lacking the property (or carrying null).
func (ex *executor) edgeMatches(e pg.EdgeID, filter map[string]values.Value) bool {
	for name, want := range filter {
		got, ok := ex.g.EdgeProp(e, name)
		if want.IsNull() {
			if ok && !got.IsNull() {
				return false
			}
			continue
		}
		if !ok || !got.Equal(want) {
			return false
		}
	}
	return true
}

// toValue converts a query literal to a runtime value.
func toValue(v Value) values.Value {
	switch v.Kind {
	case ValInt:
		return values.Int(v.Int)
	case ValFloat:
		return values.Float(v.Float)
	case ValString:
		return values.String(v.Text)
	case ValBool:
		return values.Boolean(v.Bool)
	case ValEnum:
		return values.Enum(v.Text)
	case ValList:
		elems := make([]values.Value, len(v.List))
		for i, e := range v.List {
			elems[i] = toValue(e)
		}
		return values.List(elems...)
	}
	return values.Null
}

// toNative converts a runtime value to a JSON-ready Go value.
func toNative(v values.Value) any {
	switch v.Kind() {
	case values.KindNull:
		return nil
	case values.KindInt:
		return v.AsInt()
	case values.KindFloat:
		return v.AsFloat()
	case values.KindBoolean:
		return v.AsBool()
	case values.KindList:
		out := make([]any, v.Len())
		for i := range out {
			out[i] = toNative(v.Elem(i))
		}
		return out
	default:
		return v.AsString()
	}
}
