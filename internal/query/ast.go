// Package query implements the executable side of the paper's §3.6
// outlook: a GraphQL query language subset evaluated directly over a
// Property Graph, using the API-schema conventions of the apigen package
// (synthesized query root fields and inverse traversal fields).
//
// The supported language is the read-only core of the June 2018 GraphQL
// specification: named and anonymous query operations, selection sets,
// field arguments with constant values, aliases, named fragments, inline
// fragments with type conditions, and __typename. Variables, mutations,
// subscriptions, and selection directives are out of scope (the paper's
// proposal has no write semantics to map them to).
//
// Field arguments on relationship fields filter traversal by edge
// property: `author(role: "editor")` follows only author-edges whose
// "role" property equals "editor" — the natural reading of the paper's
// §3.5 edge-property arguments when a schema is used as an API.
package query

import "pgschema/internal/token"

// Document is a parsed executable document.
type Document struct {
	Operations []*Operation
	Fragments  map[string]*Fragment
}

// Operation is one query operation.
type Operation struct {
	Name       string // "" for anonymous
	Selections []Selection
	Pos        token.Position
}

// Fragment is a named fragment definition.
type Fragment struct {
	Name          string
	TypeCondition string
	Selections    []Selection
	Pos           token.Position
}

// Selection is a field, fragment spread, or inline fragment.
type Selection interface{ sel() }

// Field is a field selection with optional alias, arguments, and
// sub-selections.
type Field struct {
	Alias      string // defaults to Name when empty
	Name       string
	Arguments  []Argument
	Selections []Selection // nil for leaf fields
	Pos        token.Position
}

// Key returns the response key: the alias if present, else the name.
func (f *Field) Key() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Name
}

// Argument is a constant argument value.
type Argument struct {
	Name  string
	Value Value
	Pos   token.Position
}

// FragmentSpread references a named fragment.
type FragmentSpread struct {
	Name string
	Pos  token.Position
}

// InlineFragment restricts sub-selections to a type condition.
type InlineFragment struct {
	TypeCondition string // "" means no condition
	Selections    []Selection
	Pos           token.Position
}

func (*Field) sel()          {}
func (*FragmentSpread) sel() {}
func (*InlineFragment) sel() {}

// Value is a constant literal in a query (a restriction of the SDL value
// grammar: no object literals, no variables).
type Value struct {
	Kind  ValueKind
	Text  string  // String/Enum
	Int   int64   // Int
	Float float64 // Float
	Bool  bool    // Boolean
	List  []Value // List
}

// ValueKind enumerates query literal kinds.
type ValueKind int

// The literal kinds.
const (
	ValNull ValueKind = iota
	ValInt
	ValFloat
	ValString
	ValBool
	ValEnum
	ValList
)
