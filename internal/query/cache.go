package query

import (
	"sync"

	"pgschema/internal/schema"
)

// PlanCache caches compiled plans for one schema, keyed by query source
// text — the query shape; operation selection happens at execution, so
// one cached plan serves every operation of a document. Eviction is
// least-recently-used once capacity is reached. Safe for concurrent use.
type PlanCache struct {
	s   *schema.Schema
	cap int

	mu   sync.Mutex
	m    map[string]*cacheEntry
	tick uint64
}

type cacheEntry struct {
	plan *Plan
	used uint64
}

// DefaultPlanCacheCap bounds a cache built with capacity <= 0.
const DefaultPlanCacheCap = 256

// NewPlanCache builds an empty cache over the schema.
func NewPlanCache(s *schema.Schema, capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCap
	}
	return &PlanCache{s: s, cap: capacity, m: make(map[string]*cacheEntry)}
}

// Get returns the compiled plan for src, compiling on a miss; the
// second result reports whether the plan was served from cache. Parse
// errors are returned without caching (Compile itself never fails —
// malformed selections become lazy error steps).
//
// Compilation runs outside the cache lock; concurrent misses on the
// same source may compile twice, and the first finished plan wins.
func (c *PlanCache) Get(src string) (*Plan, bool, error) {
	c.mu.Lock()
	c.tick++
	if e, ok := c.m[src]; ok {
		e.used = c.tick
		p := e.plan
		c.mu.Unlock()
		return p, true, nil
	}
	c.mu.Unlock()

	doc, err := Parse(src)
	if err != nil {
		return nil, false, err
	}
	p := Compile(c.s, doc)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	if e, ok := c.m[src]; ok { // lost the compile race
		e.used = c.tick
		return e.plan, true, nil
	}
	if len(c.m) >= c.cap {
		var oldestKey string
		oldest := c.tick + 1
		for k, e := range c.m {
			if e.used < oldest {
				oldest, oldestKey = e.used, k
			}
		}
		delete(c.m, oldestKey)
	}
	c.m[src] = &cacheEntry{plan: p, used: c.tick}
	return p, false, nil
}

// Len reports the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
