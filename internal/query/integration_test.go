package query

import (
	"testing"

	"pgschema/internal/apigen"
	"pgschema/internal/gen"
	"pgschema/internal/schema"
)

// TestQueriesOverRandomSchemas is the cross-system property: for random
// schemas, (1) the apigen extension builds a valid GraphQL schema, and
// (2) executing `{ all<T> { __typename } }` over a generated conformant
// graph returns exactly the nodes of T, each reporting its own label.
func TestQueriesOverRandomSchemas(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		s, src, err := gen.RandomSchema(gen.SchemaConfig{Seed: seed, Unions: seed%2 == 0})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := apigen.ExtendSDL(s, apigen.Options{}); err != nil {
			t.Fatalf("seed %d: apigen: %v\n%s", seed, err, src)
		}
		g, err := gen.Conformant(s, gen.Config{Seed: seed, NodesPerType: 7})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, td := range s.ObjectTypes() {
			q := "{ " + apigen.ListFieldName(td.Name) + " { __typename } }"
			out, err := ExecuteQuery(s, g, q)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, q, err)
			}
			list := out[apigen.ListFieldName(td.Name)].([]any)
			if len(list) != len(g.NodesLabeled(td.Name)) {
				t.Fatalf("seed %d: %s returned %d, graph has %d", seed, q, len(list), len(g.NodesLabeled(td.Name)))
			}
			for _, item := range list {
				if item.(map[string]any)["__typename"] != td.Name {
					t.Fatalf("seed %d: wrong __typename in %v", seed, item)
				}
			}
		}
	}
}

// TestRelationshipTraversalMatchesGraph: for random schemas, traversing a
// relationship field via the executor returns exactly the graph's
// adjacency for that label.
func TestRelationshipTraversalMatchesGraph(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, _, err := gen.RandomSchema(gen.SchemaConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		g, err := gen.Conformant(s, gen.Config{Seed: seed, NodesPerType: 6})
		if err != nil {
			t.Fatal(err)
		}
		for _, td := range s.ObjectTypes() {
			for _, f := range td.Fields {
				if !isRelationship(s, td, f.Name) {
					continue
				}
				q := "{ " + apigen.ListFieldName(td.Name) + " { " + f.Name + " { __typename } } }"
				out, err := ExecuteQuery(s, g, q)
				if err != nil {
					t.Fatalf("seed %d: %s: %v", seed, q, err)
				}
				list := out[apigen.ListFieldName(td.Name)].([]any)
				nodes := g.NodesLabeled(td.Name)
				for i, item := range list {
					got := item.(map[string]any)[f.Name]
					deg := g.OutDegreeLabeled(nodes[i], f.Name)
					if fd := td.Field(f.Name); fd.Type.IsList() {
						if len(got.([]any)) != deg {
							t.Fatalf("seed %d: %s.%s: executor %d vs graph %d", seed, td.Name, f.Name, len(got.([]any)), deg)
						}
					} else {
						if (got != nil) != (deg > 0) {
							t.Fatalf("seed %d: %s.%s: executor %v vs degree %d", seed, td.Name, f.Name, got, deg)
						}
					}
				}
			}
		}
	}
}

func isRelationship(s *schema.Schema, td *schema.TypeDef, name string) bool {
	f := td.Field(name)
	return f != nil && s.IsRelationship(f)
}
