package query

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"pgschema/internal/apigen"
	"pgschema/internal/gen"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

// The query differential harness: the compiled engine must be
// observably indistinguishable from the interpretive one — identical
// JSON bytes on success, identical error strings on failure — across
// randomized schemas × conformant graphs × generated queries, and
// across graph mutations (which force epoch rebinds, snapshot
// tombstones, and relabel-perturbed orders).

// assertEngineAgreement executes src through both engines and fails on
// any observable difference. The compiled plan is executed twice so the
// second run exercises the cached epoch binding.
func assertEngineAgreement(t *testing.T, s *schema.Schema, g *pg.Graph, src string) {
	t.Helper()
	doc, err := Parse(src)
	if err != nil {
		t.Fatalf("generator produced unparsable query: %v\n%s", err, src)
	}
	plan := Compile(s, doc)
	wantData, wantErr := Execute(s, g, doc, "")
	for run := 0; run < 2; run++ {
		gotData, gotErr := plan.Execute(context.Background(), g, "")
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("run %d: interpretive err=%v, compiled err=%v\nquery:\n%s", run, wantErr, gotErr, src)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("run %d: error mismatch\ninterpretive: %s\ncompiled:     %s\nquery:\n%s", run, wantErr, gotErr, src)
			}
			continue
		}
		wantJSON, err := json.Marshal(wantData)
		if err != nil {
			t.Fatalf("marshal interpretive result: %v", err)
		}
		gotJSON, err := json.Marshal(gotData)
		if err != nil {
			t.Fatalf("marshal compiled result: %v", err)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("run %d: engines disagree\nquery:\n%s\ninterpretive: %s\ncompiled:     %s", run, src, wantJSON, gotJSON)
		}
	}
}

// qgen generates random executable queries whose shape is drawn from
// the schema and whose literals are (mostly) drawn from the live graph,
// so lookups hit, filters match, and fragments dispatch — alongside
// deliberate misses, bogus type conditions, and malformed selections
// that must raise identical lazy errors from both engines.
type qgen struct {
	rnd *rand.Rand
	s   *schema.Schema
	g   *pg.Graph

	objTypes  []*schema.TypeDef
	condNames []string            // candidate fragment conditions
	inverses  map[string][]string // typeName -> applicable inverse field names
	keyed     []*schema.TypeDef   // object types with @key

	frags []fragDef
}

type fragDef struct {
	name, cond, body string
}

func newQgen(rnd *rand.Rand, s *schema.Schema, g *pg.Graph) *qgen {
	q := &qgen{rnd: rnd, s: s, g: g, inverses: make(map[string][]string)}
	q.objTypes = s.ObjectTypes()
	for _, td := range s.Types() {
		switch td.Kind {
		case schema.Object, schema.Interface, schema.Union:
			q.condNames = append(q.condNames, td.Name)
		}
	}
	for _, td := range q.objTypes {
		if keyFieldsOf(td) != nil {
			q.keyed = append(q.keyed, td)
		}
		for _, f := range td.Fields {
			if !q.s.IsRelationship(f) {
				continue
			}
			name := apigen.InverseFieldName(f.Name, td.Name)
			for _, target := range q.s.ConcreteTargets(f.Type.Base()) {
				q.inverses[target] = append(q.inverses[target], name)
			}
		}
	}
	// A few fragments on random conditions, shallow bodies.
	for i := 0; i < 3 && len(q.condNames) > 0; i++ {
		cond := q.condNames[rnd.Intn(len(q.condNames))]
		q.frags = append(q.frags, fragDef{
			name: fmt.Sprintf("F%d", i),
			cond: cond,
			body: q.genSelSet(cond, 1),
		})
	}
	return q
}

func renderValue(v values.Value) string {
	switch v.Kind() {
	case values.KindNull:
		return "null"
	case values.KindInt:
		return strconv.FormatInt(v.AsInt(), 10)
	case values.KindFloat:
		return strconv.FormatFloat(v.AsFloat(), 'f', -1, 64)
	case values.KindBoolean:
		return strconv.FormatBool(v.AsBool())
	case values.KindEnum:
		return v.AsString()
	case values.KindList:
		parts := make([]string, v.Len())
		for i := range parts {
			parts[i] = renderValue(v.Elem(i))
		}
		return "[" + strings.Join(parts, " ") + "]"
	default: // String, ID
		return strconv.Quote(v.AsString())
	}
}

// genQuery renders one anonymous operation with 1–3 root fields plus
// any fragment definitions.
func (q *qgen) genQuery() string {
	var sb strings.Builder
	sb.WriteString("{ ")
	n := 1 + q.rnd.Intn(3)
	for i := 0; i < n; i++ {
		sb.WriteString(q.genRoot(i))
		sb.WriteString(" ")
	}
	sb.WriteString("}")
	for _, f := range q.frags {
		fmt.Fprintf(&sb, "\nfragment %s on %s %s", f.name, f.cond, f.body)
	}
	return sb.String()
}

func (q *qgen) genRoot(i int) string {
	if len(q.keyed) > 0 && q.rnd.Float64() < 0.4 {
		return q.genLookup(i)
	}
	if q.rnd.Float64() < 0.1 {
		return "__typename"
	}
	td := q.objTypes[q.rnd.Intn(len(q.objTypes))]
	field := apigen.ListFieldName(td.Name)
	if q.rnd.Float64() < 0.2 {
		return fmt.Sprintf("r%d: %s %s", i, field, q.genSelSet(td.Name, 2))
	}
	return field + " " + q.genSelSet(td.Name, 2)
}

func (q *qgen) genLookup(i int) string {
	td := q.keyed[q.rnd.Intn(len(q.keyed))]
	keys := keyFieldsOf(td)
	nodes := q.g.NodesLabeled(td.Name)
	var sb strings.Builder
	fmt.Fprintf(&sb, "l%d: %s(", i, apigen.LookupFieldName(td.Name))
	perturb := q.rnd.Float64() < 0.3 // miss (or accidental other hit)
	for j, k := range keys {
		if j > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(k)
		sb.WriteString(": ")
		var val values.Value
		ok := false
		if len(nodes) > 0 {
			val, ok = q.g.NodeProp(nodes[q.rnd.Intn(len(nodes))], k)
		}
		if !ok {
			val = values.Null
		}
		if perturb && j == 0 {
			val = values.String("no-such-" + strconv.Itoa(q.rnd.Intn(1000)))
		}
		sb.WriteString(renderValue(val))
	}
	sb.WriteString(") ")
	sb.WriteString(q.genSelSet(td.Name, 2))
	return sb.String()
}

func (q *qgen) genSelSet(typeName string, depth int) string {
	var items []string
	td := q.s.Type(typeName)
	if td != nil && td.Kind == schema.Union {
		items = append(items, "__typename")
		for _, m := range td.Members {
			if q.rnd.Float64() < 0.6 {
				items = append(items, fmt.Sprintf("... on %s %s", m, q.genSelSet(m, maxInt(depth-1, 0))))
			}
		}
	} else if td != nil {
		for _, fd := range td.Fields {
			if q.rnd.Float64() < 0.45 {
				continue
			}
			if q.s.IsAttribute(fd) {
				if q.rnd.Float64() < 0.15 {
					items = append(items, fmt.Sprintf("a%d: %s", len(items), fd.Name))
				} else {
					items = append(items, fd.Name)
				}
				continue
			}
			// Relationship field.
			if depth <= 0 {
				if q.rnd.Float64() < 0.05 {
					// Missing selection set: both engines must raise
					// "type X requires a selection set" on the first node
					// that reaches it.
					items = append(items, fd.Name)
				}
				continue
			}
			items = append(items, fd.Name+q.genArgs(fd)+" "+q.genSelSet(fd.Type.Base(), depth-1))
		}
		// Inverse traversal fields.
		if invs := q.inverses[typeName]; len(invs) > 0 && depth > 0 && q.rnd.Float64() < 0.4 {
			name := invs[q.rnd.Intn(len(invs))]
			// The inverse's source type varies per runtime label; a
			// label-free body keeps generation simple and both engines
			// honest about per-label dispatch.
			items = append(items, name+" { __typename }")
		}
		// Inline fragments, sometimes on bogus conditions.
		if depth > 0 && q.rnd.Float64() < 0.35 && len(q.condNames) > 0 {
			cond := q.condNames[q.rnd.Intn(len(q.condNames))]
			if q.rnd.Float64() < 0.1 {
				cond = "NoSuchType"
			}
			items = append(items, fmt.Sprintf("... on %s %s", cond, q.genSelSet(cond, depth-1)))
		}
		// Condition-less inline fragment.
		if depth > 0 && q.rnd.Float64() < 0.15 {
			items = append(items, "... "+q.genSelSet(typeName, depth-1))
		}
		// Fragment spreads.
		if len(q.frags) > 0 && q.rnd.Float64() < 0.3 {
			items = append(items, "..."+q.frags[q.rnd.Intn(len(q.frags))].name)
		}
	}
	if len(items) == 0 {
		items = append(items, "__typename")
	}
	return "{ " + strings.Join(items, " ") + " }"
}

// genArgs renders an edge-property filter for a relationship field:
// usually a value sampled from a live edge (so the filter selects), a
// null sometimes, and occasionally a fresh literal (miss).
func (q *qgen) genArgs(fd *schema.FieldDef) string {
	if len(fd.Args) == 0 || q.rnd.Float64() < 0.7 {
		return ""
	}
	a := fd.Args[q.rnd.Intn(len(fd.Args))]
	r := q.rnd.Float64()
	var val values.Value
	switch {
	case r < 0.15:
		val = values.Null
	case r < 0.3:
		val = values.Int(int64(q.rnd.Intn(50)))
	default:
		v, ok := q.sampleEdgeProp(fd.Name, a.Name)
		if !ok {
			val = values.Null
		} else {
			val = v
		}
	}
	return fmt.Sprintf("(%s: %s)", a.Name, renderValue(val))
}

func (q *qgen) sampleEdgeProp(edgeLabel, prop string) (values.Value, bool) {
	esym, ok := q.g.Sym(edgeLabel)
	if !ok {
		return values.Value{}, false
	}
	psym, ok := q.g.Sym(prop)
	if !ok {
		return values.Value{}, false
	}
	snap := q.g.Snapshot()
	bound := snap.EdgeBound()
	if bound == 0 {
		return values.Value{}, false
	}
	start := q.rnd.Intn(bound)
	for i := 0; i < bound; i++ {
		e := pg.EdgeID((start + i) % bound)
		if snap.EdgeLabelSym(e) != esym {
			continue
		}
		if v, ok := snap.EdgePropBySym(e, psym); ok {
			return v, true
		}
	}
	return values.Value{}, false
}

// mutate applies a small random batch of direct mutations — removals,
// property churn, relabels — bumping the epoch so the next execution
// rebinds against a snapshot with tombstones.
func (q *qgen) mutate() {
	g, rnd := q.g, q.rnd
	for i := 0; i < 6; i++ {
		switch rnd.Intn(5) {
		case 0:
			if nodes := g.Nodes(); len(nodes) > 0 {
				g.RemoveNode(nodes[rnd.Intn(len(nodes))])
			}
		case 1:
			if edges := g.Edges(); len(edges) > 0 {
				g.RemoveEdge(edges[rnd.Intn(len(edges))])
			}
		case 2:
			if nodes := g.Nodes(); len(nodes) > 0 {
				n := nodes[rnd.Intn(len(nodes))]
				props := g.NodePropNames(n)
				if len(props) > 0 && rnd.Intn(2) == 0 {
					g.DeleteNodeProp(n, props[rnd.Intn(len(props))])
				} else {
					g.SetNodeProp(n, "churn", values.Int(int64(rnd.Intn(100))))
				}
			}
		case 3:
			if edges := g.Edges(); len(edges) > 0 {
				e := edges[rnd.Intn(len(edges))]
				g.SetEdgeProp(e, "weight", values.Float(rnd.Float64()*10))
			}
		case 4:
			// Relabel into another declared type: perturbs NodesLabeled
			// bucket order and exercises per-label dispatch rows.
			if nodes := g.Nodes(); len(nodes) > 0 && len(q.objTypes) > 0 {
				n := nodes[rnd.Intn(len(nodes))]
				g.SetNodeLabel(n, q.objTypes[rnd.Intn(len(q.objTypes))].Name)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestDifferentialCompiledQueries is the headline proof: ≥20 randomized
// schema seeds × conformant graphs × generated queries, re-run across
// mutation rounds, all byte-identical between engines.
func TestDifferentialCompiledQueries(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			s, _, err := gen.RandomSchema(gen.SchemaConfig{Seed: seed, Unions: seed%3 == 0})
			if err != nil {
				t.Fatalf("seed %d: random schema: %v", seed, err)
			}
			g, err := gen.Conformant(s, gen.Config{Seed: seed, NodesPerType: 8})
			if err != nil {
				t.Fatalf("seed %d: conformant graph: %v", seed, err)
			}
			rnd := rand.New(rand.NewSource(seed*7919 + 13))
			q := newQgen(rnd, s, g)
			for round := 0; round < 3; round++ {
				if round > 0 {
					q.mutate()
				}
				for i := 0; i < 8; i++ {
					assertEngineAgreement(t, s, g, q.genQuery())
				}
			}
		})
	}
}

// TestDifferentialCompiledStarWars pins engine agreement on handcrafted
// queries over the fixed fixture — the tricky corners random generation
// rarely lands on, error cases included (both engines must raise the
// same message, or both succeed).
func TestDifferentialCompiledStarWars(t *testing.T) {
	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	queries := []string{
		`{ allHumans { name } }`,
		`{ allHumans { id name friends { name } } }`,
		`{ __typename allStarships { name length } }`,
		`{ human(id: "1000") { name id } }`,
		`{ human(id: "9999") { name } }`,
		`{ human(id: "1002") { friends { __typename name } starships { name length } } }`,
		`{ h: human(id: "1000") { n: name n2: name } }`,
		`{ allDroids { name _friendsOfHuman { name } _friendsOfDroid { name } } }`,
		`{ allHumans { ... on Human { starships { name } } } }`,
		`{ allHumans { ... { name } } }`,
		`{ allHumans { ...props } } fragment props on Human { name id }`,
		`{ allHumans { ...props } } fragment props on Droid { primaryFunction }`,
		`{ allHumans { ... on NoSuchType { name } } }`,
		`{ allHumans { ... on Character { name } } }`,
		`{ allHumans { friends { ... on Droid { primaryFunction } ... on Human { starships { name } } } } }`,
		`{ allDroids { friends { friends { name __typename } } } }`,
		// Error cases: both engines must produce the identical message.
		`{ allHumans { nope } }`,
		`{ allHumans { friends } }`,
		`{ allHumans { name(x: 1) } }`,
		`{ allHumans { name { sub } } }`,
		`{ allHumans { ...missing } }`,
		`{ allHumans { ...a } } fragment a on Human { ...b } fragment b on Human { ...a }`,
		`{ human(id: "1000", extra: 1) { name } }`,
		`{ human(name: "Luke") { name } }`,
		`{ human { name } }`,
		`{ allHumans(x: 1) { name } }`,
		`{ nothing { name } }`,
		`{ allHumans { friends(bogus: 1) { name } } }`,
	}
	for _, src := range queries {
		assertEngineAgreement(t, s, g, src)
	}
	// And after mutations against the same plan-compatible schema.
	nodes := g.Nodes()
	g.RemoveNode(nodes[0])
	g.SetNodeProp(nodes[len(nodes)-1], "name", values.String("Renamed"))
	for _, src := range queries {
		assertEngineAgreement(t, s, g, src)
	}
}

// TestDifferentialParallelScan forces the root allX scans onto the
// parallel chunked path (threshold 1, two-node chunks, 4 workers) and
// re-runs both differential suites: randomized schemas × graphs ×
// queries and the handcrafted StarWars corpus, error cases included.
// The parallel scan must be observably indistinguishable from the
// sequential one — byte-identical JSON, identical first-error strings —
// which pins both the order-preserving merge and the lowest-chunk
// error selection.
func TestDifferentialParallelScan(t *testing.T) {
	oldMin, oldSpan, oldWorkers := scanParallelMin, scanSpan, scanMaxWorkers
	scanParallelMin, scanSpan, scanMaxWorkers = 1, 2, 4
	defer func() {
		scanParallelMin, scanSpan, scanMaxWorkers = oldMin, oldSpan, oldWorkers
	}()

	s := build(t, starWarsSchema)
	g := starWarsGraph(t, s)
	for _, src := range []string{
		`{ allHumans { name } }`,
		`{ allHumans { id name friends { name } } }`,
		`{ allDroids { name _friendsOfHuman { name } _friendsOfDroid { name } } }`,
		`{ allHumans { friends { ... on Droid { primaryFunction } ... on Human { starships { name } } } } }`,
		`{ allHumans { ...a } } fragment a on Human { ...b } fragment b on Human { ...a }`,
		`{ allHumans { nope } }`,
		`{ allHumans { name(x: 1) } }`,
	} {
		assertEngineAgreement(t, s, g, src)
	}

	for seed := int64(0); seed < 6; seed++ {
		s, _, err := gen.RandomSchema(gen.SchemaConfig{Seed: seed, Unions: seed%3 == 0})
		if err != nil {
			t.Fatalf("seed %d: random schema: %v", seed, err)
		}
		g, err := gen.Conformant(s, gen.Config{Seed: seed, NodesPerType: 8})
		if err != nil {
			t.Fatalf("seed %d: conformant graph: %v", seed, err)
		}
		rnd := rand.New(rand.NewSource(seed*104729 + 7))
		q := newQgen(rnd, s, g)
		for round := 0; round < 2; round++ {
			if round > 0 {
				q.mutate()
			}
			for i := 0; i < 6; i++ {
				assertEngineAgreement(t, s, g, q.genQuery())
			}
		}
	}
}
