package query

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"pgschema/internal/pg"
	"pgschema/internal/sched"
)

// cancelStride is how many node executions pass between context
// checks. Scans poll at this granularity so cancellation is prompt
// even on million-node result sets without a per-row atomic load.
const cancelStride = 2048

// Execute runs the named operation of the compiled plan against a
// graph, binding (or reusing the cached binding) at the graph's current
// epoch. An empty operationName selects the plan's only operation. The
// result is byte-identical (as JSON) to the interpretive Execute on the
// same document — the differential harness pins this.
//
// ctx is checked at scan boundaries every cancelStride nodes; a
// cancelled execution returns ctx.Err(). A nil ctx means Background.
func (p *Plan) Execute(ctx context.Context, g *pg.Graph, operationName string) (map[string]any, error) {
	op, err := p.pickOp(operationName)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	b := p.bindTo(g)
	ex := &cexec{b: b, ctx: ctx}
	if len(p.frags) > 0 {
		ex.active = make([]bool, len(p.frags))
	}
	out := make(map[string]any, len(op.steps))
	for i := range op.steps {
		if err := ex.rootStep(&op.steps[i], out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (p *Plan) pickOp(name string) (*planOp, error) {
	if name == "" {
		if len(p.ops) != 1 {
			return nil, &Error{Msg: fmt.Sprintf("document has %d operations; an operation name is required", len(p.ops))}
		}
		return p.ops[0], nil
	}
	for _, op := range p.ops {
		if op.name == name {
			return op, nil
		}
	}
	return nil, &Error{Msg: fmt.Sprintf("no operation named %q", name)}
}

// cexec is the per-request scratch: the epoch binding, the context, and
// the active-fragment bitset for cycle detection. Everything else the
// hot loop touches lives in the immutable plan and binding.
type cexec struct {
	b      *planBinding
	ctx    context.Context
	active []bool
	steps  int
}

func (ex *cexec) rootStep(st *rootStep, out map[string]any) error {
	switch st.kind {
	case rtErr:
		return st.err
	case rtTypename:
		out[st.key] = "Query"
	case rtList:
		ex.b.ensureEnums()
		nodes := ex.b.enums[st.enumIdx]
		list, err := ex.scanList(st, nodes)
		if err != nil {
			return err
		}
		out[st.key] = list
	case rtLookup:
		idx := ex.b.keyIndex()[st.lookupIdx]
		var node pg.NodeID
		found := false
		for _, v := range idx[st.bucketKey] {
			ok := true
			for i := range st.verify {
				chk := &st.verify[i]
				val, has := ex.b.snap.NodePropBySym(v, ex.b.syms[chk.slot])
				if !has || !val.Equal(chk.want) {
					ok = false
					break
				}
			}
			if ok {
				node, found = v, true
				break
			}
		}
		if !found {
			out[st.key] = nil
			return nil
		}
		m, err := ex.execNode(node, st.sub, st.subErr)
		if err != nil {
			return err
		}
		out[st.key] = m
	}
	return nil
}

// Parallel full-scan thresholds. A root allX scan with at least
// scanParallelMin nodes fans out over the work-stealing chunk scheduler
// (the same one the parallel validator dispatches on); smaller scans —
// and all scans on a single-proc box — stay on the caller's goroutine.
// Variables, not constants, so the differential tests can force the
// parallel path onto small fixtures.
var (
	scanParallelMin = 4096
	scanMaxWorkers  = runtime.GOMAXPROCS(0)
)

// scanSpan is the node span of one parallel scan chunk: enough rows to
// amortize the claim, small enough that the stealing cursor can rebalance
// a skewed selection (some nodes expand far more edges than others). A
// variable for the same reason as the thresholds above.
var scanSpan = 1024

// scanList materializes the root list for an allX step, sequentially or
// — for a large scan with workers available — in parallel. The parallel
// path writes each node's result into its own slot of the shared result
// slice, so element order is the enumeration order regardless of which
// worker computed what, and the output is byte-identical to the
// sequential scan. The first error in node order wins, matching the
// sequential scan's first-error semantics; once any worker fails, the
// remaining chunks are drained without executing.
func (ex *cexec) scanList(st *rootStep, nodes []pg.NodeID) ([]any, error) {
	workers := scanMaxWorkers
	if len(nodes) < scanParallelMin || workers < 2 {
		list := make([]any, 0, len(nodes))
		for _, v := range nodes {
			m, err := ex.execNode(v, st.sub, st.subErr)
			if err != nil {
				return nil, err
			}
			list = append(list, m)
		}
		return list, nil
	}

	nchunks := (len(nodes) + scanSpan - 1) / scanSpan
	if workers > nchunks {
		workers = nchunks
	}
	list := make([]any, len(nodes))
	errs := make([]error, nchunks)
	// Each worker gets its own cexec: the fragment-cycle bitset and the
	// cancellation stride counter are per-traversal state.
	workerEx := make([]*cexec, workers)
	for w := range workerEx {
		we := &cexec{b: ex.b, ctx: ex.ctx}
		if ex.active != nil {
			we.active = make([]bool, len(ex.active))
		}
		workerEx[w] = we
	}
	// errChunk tracks the lowest chunk that has failed so far. Chunks
	// beyond it drain without executing; chunks below it always run, so
	// the error that survives is the one the sequential scan would have
	// hit first (each chunk iterates ascending and stops at its first
	// failing node).
	errChunk := int64(nchunks)
	var minErr atomic.Int64
	minErr.Store(errChunk)
	sched.Run(workers, nchunks, func(worker, chunk int) {
		if int64(chunk) > minErr.Load() {
			return
		}
		we := workerEx[worker]
		lo := chunk * scanSpan
		hi := min(lo+scanSpan, len(nodes))
		for i := lo; i < hi; i++ {
			m, err := we.execNode(nodes[i], st.sub, st.subErr)
			if err != nil {
				errs[chunk] = err
				for {
					cur := minErr.Load()
					if int64(chunk) >= cur || minErr.CompareAndSwap(cur, int64(chunk)) {
						break
					}
				}
				return
			}
			list[i] = m
		}
	}, sched.Options{})
	if ec := minErr.Load(); ec < int64(nchunks) {
		return nil, errs[ec]
	}
	return list, nil
}

func (ex *cexec) execNode(v pg.NodeID, sub *selProg, subErr *Error) (map[string]any, error) {
	if subErr != nil {
		return nil, subErr
	}
	ex.steps++
	if ex.steps%cancelStride == 0 {
		if err := ex.ctx.Err(); err != nil {
			return nil, err
		}
	}
	out := make(map[string]any)
	if err := ex.execSel(v, sub, out); err != nil {
		return nil, err
	}
	return out, nil
}

func (ex *cexec) execSel(v pg.NodeID, prog *selProg, out map[string]any) error {
	label := ex.b.snap.NodeLabelSym(v)
	for i := range prog.items {
		it := &prog.items[i]
		switch it.kind {
		case itTypename:
			out[it.key] = ex.b.g.SymName(label)
		case itField:
			val, err := ex.execField(v, label, it.fld)
			if err != nil {
				return err
			}
			out[it.key] = val
		case itInline:
			if it.condID < 0 || ex.b.condHolds(label, it.condID) {
				if err := ex.execSel(v, it.sub, out); err != nil {
					return err
				}
			}
		case itSpread:
			if it.err != nil {
				return it.err
			}
			if ex.active[it.fragIdx] {
				return it.cycleErr
			}
			fr := ex.b.p.frags[it.fragIdx]
			if ex.b.condHolds(label, fr.condID) {
				ex.active[it.fragIdx] = true
				err := ex.execSel(v, fr.sub, out)
				ex.active[it.fragIdx] = false
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (ex *cexec) execField(v pg.NodeID, label pg.Sym, f *fieldStep) (any, error) {
	// Inverse traversal, resolved by the node's concrete label before
	// static resolution — same precedence as the interpretive engine.
	if f.inv != nil {
		if row := ex.b.invRows[f.inv.idx]; int(label) < len(row) && label >= 0 && row[label] >= 0 {
			if f.inv.argsErr != nil {
				return nil, f.inv.argsErr
			}
			t := &f.inv.targets[row[label]]
			edgeSym, srcSym := ex.b.syms[t.edgeSlot], ex.b.syms[t.srcSlot]
			var list []any
			for _, e := range ex.b.snap.InEdgesOf(v) {
				if ex.b.snap.EdgeLabelSym(e) != edgeSym {
					continue
				}
				src, _ := ex.b.snap.Endpoints(e)
				if ex.b.snap.NodeLabelSym(src) != srcSym {
					continue
				}
				m, err := ex.execNode(src, t.sub, t.subErr)
				if err != nil {
					return nil, err
				}
				list = append(list, m)
			}
			if list == nil {
				list = []any{}
			}
			return list, nil
		}
	}

	switch f.kind {
	case stErr:
		return nil, f.err
	case stAttr:
		sym := ex.b.syms[f.slot]
		if !ex.b.snap.NodeHasProp(v, sym) {
			return nil, nil
		}
		val, _ := ex.b.snap.NodePropBySym(v, sym)
		return toNative(val), nil
	default: // stRel
		edgeSym := ex.b.syms[f.edgeSlot]
		var list []any
		for _, e := range ex.b.snap.OutEdgesOf(v) {
			if ex.b.snap.EdgeLabelSym(e) != edgeSym {
				continue
			}
			if !ex.edgeMatches(e, f.filters) {
				continue
			}
			_, dst := ex.b.snap.Endpoints(e)
			m, err := ex.execNode(dst, f.sub, f.subErr)
			if err != nil {
				return nil, err
			}
			list = append(list, m)
		}
		if f.isList {
			if list == nil {
				list = []any{}
			}
			return list, nil
		}
		if len(list) == 0 {
			return nil, nil
		}
		return list[0], nil
	}
}

func (ex *cexec) edgeMatches(e pg.EdgeID, filters []edgeFilter) bool {
	for i := range filters {
		flt := &filters[i]
		got, ok := ex.b.snap.EdgePropBySym(e, ex.b.syms[flt.slot])
		if flt.isNull {
			if ok && !got.IsNull() {
				return false
			}
			continue
		}
		if !ok || !got.Equal(flt.want) {
			return false
		}
	}
	return true
}
