// Package sched is the work-stealing chunk scheduler shared by the
// parallel validation engine and the compiled query executor. Work is a
// dense index space [0, n) of pre-planned chunks; each worker owns a
// contiguous segment of it and claims indexes off a per-worker atomic
// cursor. A worker that drains its own segment steals from the other
// segments' cursors — so on a skewed plan (all the expensive chunks in
// one segment) the fast workers finish the slow worker's tail instead
// of idling, and the steal count is a direct measurement of how skewed
// the run actually was. A single shared cursor cannot distinguish
// balance from skew; segmented cursors make the telemetry mean
// something.
//
// The scheduler is deliberately dumb about the work itself: chunks are
// indexes, the body does everything (including skipping chunks once a
// violation cap fills or a context cancels — claims are two atomic adds,
// cheap enough to drain on a dead run). Every chunk index is claimed by
// exactly one worker and the claim order within a segment is ascending,
// but nothing else about ordering is guaranteed.
package sched

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stats is the telemetry of one Run: totals plus per-worker busy time,
// chunk counts, and steals, and a log₂ histogram of chunk element spans
// (filled only when Options.Span is provided). Busy sums the wall time
// spent inside chunk bodies across all workers; on w truly parallel
// cores an efficient run has Busy ≈ w × Wall, while on one core Busy
// can never exceed Wall no matter how many workers were asked for —
// which is exactly what Efficiency measures.
type Stats struct {
	Workers int
	Chunks  int
	Steals  int

	// Wall is the elapsed time of the whole Run; Busy the summed
	// in-chunk time across workers; MaxChunk the longest single chunk.
	Wall     time.Duration
	Busy     time.Duration
	MaxChunk time.Duration

	PerWorker []WorkerStats

	// SpanHist[i] counts planned chunks whose element span lies in
	// [2^i, 2^(i+1)); spans beyond the last bucket fold into it.
	SpanHist [spanBuckets]int
}

// WorkerStats is one worker's share of a Run.
type WorkerStats struct {
	Chunks   int
	Steals   int
	Busy     time.Duration
	MaxChunk time.Duration
}

// spanBuckets covers chunk spans up to 2^23 (8M elements) before
// folding; adaptive chunk targets sit far below that.
const spanBuckets = 24

// Efficiency is the parallel efficiency of the run: the fraction of the
// workers' combined wall-clock budget actually spent inside chunks.
// 1.0 means every worker was busy the whole run (true parallel
// speedup); 1/w means the workers only ever ran one at a time (a
// single-core box, or total contention) and the parallelism was pure
// dispatch overhead.
func (s *Stats) Efficiency() float64 {
	if s == nil || s.Workers <= 0 || s.Wall <= 0 {
		return 0
	}
	return float64(s.Busy) / (float64(s.Wall) * float64(s.Workers))
}

// Options configures a Run.
type Options struct {
	// Collect enables stats collection (two clock reads per chunk plus a
	// per-worker merge). When false, Run returns nil.
	Collect bool
	// Span reports the element span of a chunk index, for the chunk-size
	// histogram. Consulted once per planned chunk, only when Collect.
	Span func(chunk int) int
	// Reuse recycles a Stats (and its PerWorker backing array) from an
	// earlier Run instead of allocating fresh ones. The caller must not
	// hand a reused Stats to anyone who outlives the next Run — pass nil
	// when the result escapes (e.g. into an API response).
	Reuse *Stats
}

// statePool recycles the per-run scheduler state (segment cursors,
// wait group, and the spawn bookkeeping) so a warm Run only allocates
// the spawned goroutines' closures.
var statePool sync.Pool

// runState is one Run's shared state. It is a heap object by nature
// (every worker goroutine touches it), which is exactly why it pools
// well: recycling it converts four per-run escapes (cursors, wait
// group, worker closure, claim closure) into zero.
type runState struct {
	body    func(worker, chunk int)
	cursors []atomic.Int64
	workers int
	n       int
	st      *Stats
	wg      sync.WaitGroup
}

func (rs *runState) segEnd(w int) int64 { return int64((w + 1) * rs.n / rs.workers) }

// runWorker drains chunks for worker w: first its own segment, then —
// claim by claim — the other segments' tails. The claim loop is open-
// coded (not a closure) so a worker's whole life allocates nothing.
func (rs *runState) runWorker(w int) {
	var ws *WorkerStats
	if rs.st != nil {
		ws = &rs.st.PerWorker[w]
	}
	for {
		idx, stolen := -1, false
		if pos := rs.cursors[w].Add(1) - 1; pos < rs.segEnd(w) {
			idx = int(pos)
		} else {
			for i := 1; i < rs.workers; i++ {
				v := (w + i) % rs.workers
				if pos := rs.cursors[v].Add(1) - 1; pos < rs.segEnd(v) {
					idx, stolen = int(pos), true
					break
				}
			}
		}
		if idx < 0 {
			return
		}
		if ws != nil {
			t0 := time.Now()
			rs.body(w, idx)
			d := time.Since(t0)
			ws.Busy += d
			ws.Chunks++
			if d > ws.MaxChunk {
				ws.MaxChunk = d
			}
			if stolen {
				ws.Steals++
			}
		} else {
			rs.body(w, idx)
		}
	}
}

func (rs *runState) spawn(w int) {
	defer rs.wg.Done()
	rs.runWorker(w)
}

// Run executes body(worker, chunk) for every chunk in [0, n) on the
// given number of workers. Worker 0 runs on the calling goroutine;
// workers-1 goroutines are spawned and joined before Run returns, so a
// Run never leaks goroutines past its return. workers and n must be
// ≥ 1 and ≥ 0 respectively; workers beyond n just find empty segments
// and help steal (i.e. finish immediately).
func Run(workers, n int, body func(worker, chunk int), opt Options) *Stats {
	if workers < 1 {
		workers = 1
	}
	var st *Stats
	var start time.Time
	if opt.Collect {
		st = opt.Reuse
		if st == nil {
			st = &Stats{}
		}
		pw := st.PerWorker
		if cap(pw) < workers {
			pw = make([]WorkerStats, workers)
		}
		pw = pw[:workers]
		for i := range pw {
			pw[i] = WorkerStats{}
		}
		*st = Stats{Workers: workers, Chunks: n, PerWorker: pw}
		if opt.Span != nil {
			for i := 0; i < n; i++ {
				st.SpanHist[SpanBucket(opt.Span(i))]++
			}
		}
		start = time.Now()
	}

	// Segment bounds: worker w owns [w*n/workers, (w+1)*n/workers).
	// Cursors are absolute chunk indexes; a claim is one atomic add, and
	// a failed claim (cursor already past the segment end) just moves on.
	rs, _ := statePool.Get().(*runState)
	if rs == nil {
		rs = &runState{}
	}
	if cap(rs.cursors) < workers {
		rs.cursors = make([]atomic.Int64, workers)
	}
	rs.cursors = rs.cursors[:workers]
	rs.body, rs.workers, rs.n, rs.st = body, workers, n, st
	for w := 0; w < workers; w++ {
		rs.cursors[w].Store(int64(w * n / workers))
	}
	for w := 1; w < workers; w++ {
		rs.wg.Add(1)
		go rs.spawn(w)
	}
	rs.runWorker(0)
	rs.wg.Wait()
	// All workers joined; drop the body and stats references before
	// pooling so a parked runState does not pin the caller's closures.
	rs.body, rs.st = nil, nil
	statePool.Put(rs)

	if st != nil {
		st.Wall = time.Since(start)
		for i := range st.PerWorker {
			pw := &st.PerWorker[i]
			st.Busy += pw.Busy
			st.Steals += pw.Steals
			if pw.MaxChunk > st.MaxChunk {
				st.MaxChunk = pw.MaxChunk
			}
		}
	}
	return st
}

// SpanBucket returns the SpanHist bucket index a chunk span falls in —
// exported so sequential engines can fill a Stats histogram without a
// Run.
func SpanBucket(span int) int {
	b := log2(span)
	if b >= spanBuckets {
		b = spanBuckets - 1
	}
	return b
}

// log2 is floor(log₂(v)) with log2(0) = 0.
func log2(v int) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}
