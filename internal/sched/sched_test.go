package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunCoversEveryChunkOnce is the core claim invariant: every chunk
// index in [0, n) is executed exactly once, for worker counts below,
// at, and above the chunk count.
func TestRunCoversEveryChunkOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			counts := make([]atomic.Int32, n)
			Run(workers, n, func(_, chunk int) {
				counts[chunk].Add(1)
			}, Options{})
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: chunk %d executed %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestRunStatsTotals pins the stats bookkeeping: chunk counts sum to n,
// busy time sums the per-worker times, and the span histogram buckets
// every planned chunk.
func TestRunStatsTotals(t *testing.T) {
	const n = 100
	st := Run(4, n, func(_, _ int) {
		time.Sleep(10 * time.Microsecond)
	}, Options{Collect: true, Span: func(int) int { return 48 }})
	if st == nil {
		t.Fatal("Collect: true returned nil stats")
	}
	if st.Workers != 4 || st.Chunks != n {
		t.Errorf("got workers=%d chunks=%d, want 4, %d", st.Workers, st.Chunks, n)
	}
	total, busy := 0, time.Duration(0)
	for _, pw := range st.PerWorker {
		total += pw.Chunks
		busy += pw.Busy
	}
	if total != n {
		t.Errorf("per-worker chunk counts sum to %d, want %d", total, n)
	}
	if busy != st.Busy || st.Busy <= 0 {
		t.Errorf("busy mismatch: sum %v, total %v", busy, st.Busy)
	}
	if st.Wall <= 0 || st.MaxChunk <= 0 {
		t.Errorf("wall %v and max chunk %v must be positive", st.Wall, st.MaxChunk)
	}
	// span 48 lands in bucket [2^5, 2^6).
	if st.SpanHist[5] != n {
		t.Errorf("span histogram: bucket 5 = %d, want %d (%v)", st.SpanHist[5], n, st.SpanHist)
	}
	if eff := st.Efficiency(); eff <= 0 || eff > 1.5 {
		t.Errorf("implausible efficiency %v", eff)
	}
}

// TestRunStealsUnderSkew pins that draining one's own segment and then
// another's counts as stealing: one worker's segment is made very slow,
// so the others must finish it. The skew is deterministic (chunk index,
// not timing) and the assertion is only that steals happen at all.
func TestRunStealsUnderSkew(t *testing.T) {
	const n, workers = 64, 4
	st := Run(workers, n, func(_, chunk int) {
		if chunk >= n-n/workers { // the last worker's whole segment
			time.Sleep(2 * time.Millisecond)
		}
	}, Options{Collect: true})
	if st.Steals == 0 {
		t.Errorf("skewed run recorded no steals: %+v", st.PerWorker)
	}
	total := 0
	for _, pw := range st.PerWorker {
		total += pw.Chunks
	}
	if total != n {
		t.Fatalf("chunks lost under stealing: %d of %d", total, n)
	}
}

// TestRunNoGoroutineLeak verifies Run joins all its workers before
// returning, including when the body bails out early (the cancellation
// shape: bodies return immediately and the claim loops drain).
func TestRunNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 10; i++ {
		Run(8, 100, func(_, _ int) {
			mu.Lock()
			ran++
			mu.Unlock()
		}, Options{Collect: true})
	}
	if ran != 1000 {
		t.Fatalf("ran %d bodies, want 1000", ran)
	}
	// Allow the runtime a moment to retire exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines grew: %d before, %d after", before, runtime.NumGoroutine())
}
