package sat

import (
	"math/big"
	"testing"

	"pgschema/internal/cnf"
	"pgschema/internal/dl"
	"pgschema/internal/parser"
	"pgschema/internal/reduction"
	"pgschema/internal/schema"
	"pgschema/internal/validate"
)

func build(t *testing.T, src string, skipConsistency bool) *schema.Schema {
	t.Helper()
	doc, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := schema.Build(doc, schema.Options{SkipConsistencyCheck: skipConsistency})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

func TestLPFeasibleTrivial(t *testing.T) {
	lp := NewLP(2)
	one := big.NewRat(1, 1)
	if !lp.Feasible() {
		t.Error("empty system must be feasible")
	}
	// x0 ≥ 1, x0 ≤ 2.
	lp.Add("a", map[int]*big.Rat{0: one}, GE, one)
	lp.Add("b", map[int]*big.Rat{0: one}, LE, big.NewRat(2, 1))
	if !lp.Feasible() {
		t.Error("1 ≤ x0 ≤ 2 must be feasible")
	}
	// Add x0 ≤ 0: infeasible.
	lp.Add("c", map[int]*big.Rat{0: one}, LE, new(big.Rat))
	if lp.Feasible() {
		t.Error("x0 ≥ 1 ∧ x0 ≤ 0 must be infeasible")
	}
}

func TestLPChainInequalities(t *testing.T) {
	// x0 ≥ 1, x0 ≤ x1, x1 ≤ x2, x2 ≤ x0 - 1 → infeasible.
	one := big.NewRat(1, 1)
	negOne := big.NewRat(-1, 1)
	lp := NewLP(3)
	lp.Add("q", map[int]*big.Rat{0: one}, GE, one)
	lp.Add("a", map[int]*big.Rat{0: one, 1: negOne}, LE, new(big.Rat))
	lp.Add("b", map[int]*big.Rat{1: one, 2: negOne}, LE, new(big.Rat))
	lp.Add("c", map[int]*big.Rat{2: one, 0: negOne}, LE, big.NewRat(-1, 1))
	if lp.Feasible() {
		t.Error("cyclic strict chain must be infeasible")
	}
	// Relax the last to x2 ≤ x0: feasible.
	lp2 := NewLP(3)
	lp2.Add("q", map[int]*big.Rat{0: one}, GE, one)
	lp2.Add("a", map[int]*big.Rat{0: one, 1: negOne}, LE, new(big.Rat))
	lp2.Add("b", map[int]*big.Rat{1: one, 2: negOne}, LE, new(big.Rat))
	lp2.Add("c", map[int]*big.Rat{2: one, 0: negOne}, LE, new(big.Rat))
	if !lp2.Feasible() {
		t.Error("cyclic weak chain must be feasible")
	}
}

func TestLPEquality(t *testing.T) {
	one := big.NewRat(1, 1)
	lp := NewLP(2)
	// x0 + x1 = 1, x0 ≥ 1, x1 ≥ 1 → infeasible (x ≥ 0).
	lp.Add("sum", map[int]*big.Rat{0: one, 1: one}, EQ, one)
	lp.Add("a", map[int]*big.Rat{0: one}, GE, one)
	lp.Add("b", map[int]*big.Rat{1: one}, GE, one)
	if lp.Feasible() {
		t.Error("must be infeasible")
	}
}

const simpleSchema = `
type UserSession {
	id: ID! @required
	user: User! @required
}
type User {
	id: ID! @required
}`

func TestCheckSimpleSatisfiable(t *testing.T) {
	s := build(t, simpleSchema, false)
	for _, tc := range []struct {
		typeName string
		minNodes int
	}{
		{"User", 1},
		{"UserSession", 2}, // needs its User target
	} {
		rep := Check(s, tc.typeName, Options{})
		if rep.Verdict != Satisfiable {
			t.Fatalf("%s: %s (%s) %s", tc.typeName, rep.Verdict, rep.Method, rep.Detail)
		}
		if rep.Witness == nil {
			t.Fatalf("%s: no witness", tc.typeName)
		}
		if rep.Witness.NumNodes() < tc.minNodes {
			t.Errorf("%s: witness has %d nodes, want ≥ %d", tc.typeName, rep.Witness.NumNodes(), tc.minNodes)
		}
		res := validate.Validate(s, rep.Witness, validate.Options{})
		if !res.OK() {
			t.Errorf("%s: witness does not strongly satisfy: %v", tc.typeName, res.Violations)
		}
	}
}

func TestCheckUndeclaredType(t *testing.T) {
	s := build(t, simpleSchema, false)
	rep := Check(s, "Ghost", Options{})
	if rep.Verdict != Unsatisfiable {
		t.Errorf("undeclared type: %s", rep.Verdict)
	}
}

func TestCheckScalar(t *testing.T) {
	s := build(t, simpleSchema, false)
	if rep := Check(s, "String", Options{}); rep.Verdict != Satisfiable {
		t.Errorf("scalar: %s", rep.Verdict)
	}
}

// example61a is the paper's Example 6.1 schema, verbatim. As written it is
// interface-inconsistent under Definition 4.3 ([OT1] is not ⊑ OT1), which
// appears to be an oversight in the paper; satisfiability analysis does
// not depend on consistency, so it is built with the check disabled.
const example61a = `
type OT1 {
}
interface IT {
	hasOT1: OT1 @uniqueForTarget
}
type OT2 implements IT {
	hasOT1: [OT1] @requiredForTarget
}
type OT3 implements IT {
	hasOT1: [OT1] @requiredForTarget
}`

func TestExample61a(t *testing.T) {
	s := build(t, example61a, true)
	rep := Check(s, "OT1", Options{})
	if rep.Verdict != Unsatisfiable {
		t.Fatalf("OT1 must be unsatisfiable, got %s (%s): %s", rep.Verdict, rep.Method, rep.Detail)
	}
	// OT2 and OT3 are satisfiable (no OT1 nodes needed).
	for _, name := range []string{"OT2", "OT3"} {
		rep := Check(s, name, Options{})
		if rep.Verdict != Satisfiable {
			t.Errorf("%s must be satisfiable, got %s: %s", name, rep.Verdict, rep.Detail)
		}
	}
}

func TestExample61aTableauAgrees(t *testing.T) {
	// Diagram (a) is unsatisfiable even for infinite models: the
	// tableau alone must find it.
	s := build(t, example61a, true)
	rep := Check(s, "OT1", Options{SkipCounting: true, SkipBounded: true})
	if rep.Verdict != Unsatisfiable || rep.Method != "tableau" {
		t.Errorf("tableau should decide (a): %s (%s)", rep.Verdict, rep.Method)
	}
	// And counting alone too.
	rep = Check(s, "OT1", Options{SkipTableau: true, SkipBounded: true})
	if rep.Verdict != Unsatisfiable || rep.Method != "counting" {
		t.Errorf("counting should decide (a): %s (%s)", rep.Verdict, rep.Method)
	}
}

// example61b realizes diagram (b): a satisfying graph with an OT2 node
// needs an infinite alternating chain of OT1 and OT3 nodes, so the type
// is finitely unsatisfiable although the ALCQI translation (which admits
// infinite models) is satisfiable.
const example61b = `
interface IT {
	f: [OT1] @uniqueForTarget @requiredForTarget
}
type OT2 implements IT {
	f: [OT1] @required
}
type OT3 implements IT {
	f: [OT1] @required
}
type OT1 {
	g: [OT3] @required @uniqueForTarget
}`

func TestExample61b(t *testing.T) {
	s := build(t, example61b, false)
	rep := Check(s, "OT2", Options{})
	if rep.Verdict != Unsatisfiable {
		t.Fatalf("OT2 must be finitely unsatisfiable, got %s (%s): %s", rep.Verdict, rep.Method, rep.Detail)
	}
	if rep.Method != "counting" {
		t.Errorf("only the counting stage can prove (b); got %s", rep.Method)
	}
}

func TestExample61bInfiniteModelExists(t *testing.T) {
	// The finite/infinite gap, exhibited: the ALCQI translation of (b)
	// is satisfiable (an infinite chain model), so the tableau must
	// report SAT — which is exactly why the paper's PSPACE procedure
	// alone does not decide Property Graph satisfiability.
	s := build(t, example61b, false)
	tbox := Translate(s)
	var r dl.Reasoner
	ok, err := r.Satisfiable(dl.Atom{Name: "OT2"}, tbox)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("the ALCQI translation of (b) should be satisfiable by an infinite model")
	}
}

// example61c realizes diagram (c): every OT2 node must coincide with an
// OT3 node reached through an OT1 node, which the one-label-per-node rule
// forbids.
const example61c = `
interface IT {
	f: [OT1] @uniqueForTarget
}
type OT2 implements IT {
	f: [OT1] @required
}
type OT3 implements IT {
	f: [OT1] @requiredForTarget
}
type OT1 {
}`

func TestExample61c(t *testing.T) {
	s := build(t, example61c, false)
	rep := Check(s, "OT2", Options{})
	if rep.Verdict != Unsatisfiable {
		t.Fatalf("OT2 must be unsatisfiable, got %s (%s): %s", rep.Verdict, rep.Method, rep.Detail)
	}
	// OT3 without OT1 nodes is fine.
	if rep := Check(s, "OT3", Options{}); rep.Verdict != Satisfiable {
		t.Errorf("OT3 must be satisfiable: %s (%s)", rep.Verdict, rep.Detail)
	}
}

func TestBookSchemaAllSatisfiable(t *testing.T) {
	s := build(t, `
		type Author {
			favoriteBook: Book
			relatedAuthor: [Author] @distinct @noLoops
		}
		type Book {
			title: String!
			author: [Author] @required @distinct
		}
		type BookSeries {
			contains: [Book] @required @uniqueForTarget
		}
		type Publisher {
			published: [Book] @uniqueForTarget @requiredForTarget
		}`, false)
	for _, name := range []string{"Author", "Book", "BookSeries", "Publisher"} {
		rep := Check(s, name, Options{})
		if rep.Verdict != Satisfiable {
			t.Errorf("%s: %s (%s) %s", name, rep.Verdict, rep.Method, rep.Detail)
			continue
		}
		res := validate.Validate(s, rep.Witness, validate.Options{})
		if !res.OK() {
			t.Errorf("%s: witness invalid: %v", name, res.Violations)
		}
	}
}

func TestInterfaceAndUnionSatisfiability(t *testing.T) {
	s := build(t, `
		interface Food { name: String! }
		type Pizza implements Food { name: String! }
		union Meal = Pizza
		interface Phantom { x: Int }`, false)
	if rep := Check(s, "Food", Options{}); rep.Verdict != Satisfiable {
		t.Errorf("Food: %s", rep.Verdict)
	}
	if rep := Check(s, "Meal", Options{}); rep.Verdict != Satisfiable {
		t.Errorf("Meal: %s", rep.Verdict)
	}
	if rep := Check(s, "Phantom", Options{}); rep.Verdict != Unsatisfiable {
		t.Errorf("interface without implementers: %s", rep.Verdict)
	}
}

func TestCheckField(t *testing.T) {
	s := build(t, simpleSchema, false)
	rep := CheckField(s, "UserSession", "user", Options{})
	if rep.Verdict != Satisfiable {
		t.Errorf("UserSession.user: %s (%s)", rep.Verdict, rep.Detail)
	}
	rep = CheckField(s, "User", "id", Options{})
	if rep.Verdict != Unsatisfiable {
		t.Errorf("attribute field should not be a relationship: %s", rep.Verdict)
	}
	// A relationship whose source type is unsatisfiable.
	s2 := build(t, example61c, false)
	rep = CheckField(s2, "OT2", "f", Options{})
	if rep.Verdict == Satisfiable {
		t.Errorf("OT2.f in (c): %s", rep.Verdict)
	}
}

// TestReductionAgreement is the core of experiment E4: DPLL's verdict on
// a random formula must agree with the satisfiability verdict of the
// reduced schema's distinguished type. Reduction schemas have a
// small-model property — a satisfiable OT always has a witness with at
// most 1 + #clauses nodes (one OT node plus one literal node per clause)
// — so the bounded search alone decides them: exhausting the bound IS an
// unsatisfiability proof. The tableau stage is skipped: choose-rule
// branching is hopeless against SAT-shaped schemas (the problem is
// NP-hard; DPLL is the right engine).
func TestReductionAgreement(t *testing.T) {
	// Random satisfiable-leaning instances plus crafted unsatisfiable
	// ones (random 3-CNF at these sizes is almost always satisfiable,
	// and large unsatisfiable reductions are slow to refute).
	formulas := make([]*cnf.Formula, 0, 12)
	for seed := int64(0); seed < 8; seed++ {
		formulas = append(formulas, cnf.Random3SAT(3, 4+int(seed%3), seed))
	}
	// (x1)(¬x1): minimal conflict.
	f1 := cnf.NewFormula(1)
	f1.AddClause(1)
	f1.AddClause(-1)
	formulas = append(formulas, f1)
	// Complete assignment cube over two variables.
	f2 := cnf.NewFormula(2)
	f2.AddClause(1, 2)
	f2.AddClause(1, -2)
	f2.AddClause(-1, 2)
	f2.AddClause(-1, -2)
	formulas = append(formulas, f2)

	satCount, unsatCount := 0, 0
	for seed, f := range formulas {
		want, _ := cnf.Solve(f)
		wantSat := want != nil
		red, err := reduction.FromCNF(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Witness graphs for reduction schemas have exactly 1+m nodes
		// (the OT node plus one literal node per clause): a clause's
		// incoming-edge requirement can only be met by that clause's
		// own literal types, so smaller graphs are pigeonhole-
		// infeasible and larger ones are unnecessary. Search only
		// that bound.
		witness, gotSat := BoundedSearch(red.Schema, reduction.ObjectTypeName, 1+len(f.Clauses))
		if gotSat != wantSat {
			t.Errorf("seed %d: formula sat=%v but bounded search says %v", seed, wantSat, gotSat)
			continue
		}
		if wantSat {
			satCount++
			if _, err := red.DecodeAssignment(witness); err != nil {
				t.Errorf("seed %d: decoding witness: %v", seed, err)
			}
		} else {
			unsatCount++
		}
	}
	t.Logf("coverage: %d sat, %d unsat", satCount, unsatCount)
	if satCount == 0 {
		t.Error("no satisfiable instances exercised")
	}
}

func TestCountingLPShape(t *testing.T) {
	s := build(t, example61b, false)
	lp := CountingLP(s, "OT2")
	if lp.NumVars == 0 || len(lp.Constraints) == 0 {
		t.Fatalf("degenerate LP: %d vars, %d constraints", lp.NumVars, len(lp.Constraints))
	}
	if lp.Feasible() {
		t.Errorf("LP for (b) must be infeasible:\n%s", lp.String())
	}
	// The same system without the query constraint is feasible (all
	// populations zero).
	lp2 := CountingLP(s, "NoSuchType")
	if !lp2.Feasible() {
		t.Error("zero population must be feasible")
	}
}

func TestBoundedSearchMinimality(t *testing.T) {
	// UserSession requires two nodes; k=1 must fail, k=2 succeed.
	s := build(t, simpleSchema, false)
	if _, ok := BoundedSearch(s, "UserSession", 1); ok {
		t.Error("k=1 should not suffice for UserSession")
	}
	g, ok := BoundedSearch(s, "UserSession", 2)
	if !ok {
		t.Fatal("k=2 should suffice for UserSession")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("witness shape: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestSelfReferentialSchema(t *testing.T) {
	// A type that must point at itself but may not loop: two nodes.
	s := build(t, `type Node { next: Node! @required @noLoops }`, false)
	rep := Check(s, "Node", Options{})
	if rep.Verdict != Satisfiable {
		t.Fatalf("Node: %s (%s) %s", rep.Verdict, rep.Method, rep.Detail)
	}
	if rep.Witness.NumNodes() < 2 {
		t.Errorf("witness must have ≥ 2 nodes, got %d", rep.Witness.NumNodes())
	}
}

func TestTranslateShapes(t *testing.T) {
	s := build(t, example61a, true)
	tbox := Translate(s)
	if len(tbox.Axioms) == 0 {
		t.Fatal("empty TBox")
	}
	// Disjointness of the three object types: 3 axioms; interface
	// equivalence: 2; per-field axioms: WS3 for IT/OT2/OT3 fields (3),
	// non-list functional on IT.hasOT1 (1), @uniqueForTarget on IT (1),
	// @requiredForTarget on OT2 and OT3 (2).
	if len(tbox.Axioms) != 3+2+3+1+1+2 {
		t.Errorf("axiom count: %d\n%v", len(tbox.Axioms), tbox.Axioms)
	}
}

// TestUnknownVerdict: with the counting stage disabled, diagram (b) is
// beyond both remaining procedures (the tableau finds an infinite model,
// the bounded search cannot exhaust finite models), so the checker must
// answer Unknown — never a wrong Satisfiable/Unsatisfiable.
func TestUnknownVerdict(t *testing.T) {
	s := build(t, example61b, false)
	rep := Check(s, "OT2", Options{SkipCounting: true, MaxGraphNodes: 4})
	if rep.Verdict != Unknown {
		t.Fatalf("got %s (%s): %s", rep.Verdict, rep.Method, rep.Detail)
	}
	if rep.Detail == "" {
		t.Error("Unknown verdicts must carry an explanation")
	}
}

// TestPortfolioStagesIndependent: each single-stage configuration gives a
// sound (never contradictory) verdict on a satisfiable schema.
func TestPortfolioStagesIndependent(t *testing.T) {
	s := build(t, simpleSchema, false)
	configs := []Options{
		{SkipTableau: true, SkipBounded: true},  // counting only: can't prove SAT
		{SkipCounting: true, SkipBounded: true}, // tableau only: can't prove finite SAT
		{SkipCounting: true, SkipTableau: true}, // bounded only: proves SAT
	}
	for i, opts := range configs {
		rep := Check(s, "User", opts)
		if rep.Verdict == Unsatisfiable {
			t.Errorf("config %d: wrongly unsatisfiable (%s)", i, rep.Method)
		}
	}
	// The bounded-only config must actually find the witness.
	rep := Check(s, "User", Options{SkipCounting: true, SkipTableau: true})
	if rep.Verdict != Satisfiable {
		t.Errorf("bounded-only: %s", rep.Verdict)
	}
}
