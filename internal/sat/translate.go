package sat

import (
	"math/big"

	"pgschema/internal/dl"
	"pgschema/internal/schema"
)

// Translate builds the ALCQI TBox of the Theorem 3 proof from a schema:
//
//   - a union type (or an interface type with its implementations)
//     t1 | … | tn yields ut ≡ t1 ⊔ … ⊔ tn;
//   - a relationship field f on t with base type tt yields
//     ∃f⁻.t ⊑ tt (edge targets are correctly typed, WS3);
//   - a non-list field adds t ⊑ ≤1 f.tt (WS4);
//   - @required adds t ⊑ ∃f.tt (DS6);
//   - @requiredForTarget adds tt ⊑ ∃f⁻.t (DS4);
//   - @uniqueForTarget adds tt ⊑ ≤1 f⁻.t (DS3);
//   - object types are pairwise disjoint (a node has exactly one label).
//
// @distinct, @noLoops, @key, and all scalar-valued fields are ignored,
// exactly as the proof argues they do not affect satisfiability (assuming
// infinite scalar value sets).
//
// The proof's covering axiom ⊤ ≡ ot1 ⊔ … ⊔ otn is intentionally omitted:
// restricting a model to its typed individuals preserves all constraints
// (every lower-bound witness is typed by its qualifier, and upper bounds
// survive substructures), so the axiom does not change satisfiability but
// would add an n-way disjunction to every tableau node.
func Translate(s *schema.Schema) *dl.TBox {
	tbox := &dl.TBox{}
	atom := func(name string) dl.Concept { return dl.Atom{Name: name} }

	// Union and interface hierarchies.
	for _, td := range s.UnionTypes() {
		var cs []dl.Concept
		for _, m := range td.Members {
			cs = append(cs, atom(m))
		}
		tbox.AddEquiv(atom(td.Name), dl.Or{Cs: cs})
	}
	for _, td := range s.InterfaceTypes() {
		impls := s.Implementers(td.Name)
		if len(impls) == 0 {
			// An interface with no implementers has no instances.
			tbox.Add(atom(td.Name), dl.Bottom{})
			continue
		}
		var cs []dl.Concept
		for _, m := range impls {
			cs = append(cs, atom(m))
		}
		tbox.AddEquiv(atom(td.Name), dl.Or{Cs: cs})
	}

	// Object types are pairwise disjoint.
	objects := s.ObjectTypes()
	for i := 0; i < len(objects); i++ {
		for j := i + 1; j < len(objects); j++ {
			tbox.Add(dl.And{Cs: []dl.Concept{atom(objects[i].Name), atom(objects[j].Name)}}, dl.Bottom{})
		}
	}

	// Relationship declarations.
	for _, td := range s.Types() {
		if td.Kind != schema.Object && td.Kind != schema.Interface {
			continue
		}
		t := atom(td.Name)
		for _, f := range td.Fields {
			if !s.IsRelationship(f) {
				continue
			}
			role := dl.R(f.Name)
			tt := atom(f.Type.Base())
			// WS3: ∃f⁻.t ⊑ tt.
			tbox.Add(dl.Exists{R: role.Inverse(), C: t}, tt)
			// WS4: non-list fields are functional.
			if !f.Type.IsList() {
				tbox.Add(t, dl.AtMost{N: 1, R: role, C: tt})
			}
			if schema.HasDirective(f.Directives, schema.DirRequired) {
				tbox.Add(t, dl.Exists{R: role, C: tt})
			}
			if schema.HasDirective(f.Directives, schema.DirRequiredForTarget) {
				tbox.Add(tt, dl.Exists{R: role.Inverse(), C: t})
			}
			if schema.HasDirective(f.Directives, schema.DirUniqueForTarget) {
				tbox.Add(tt, dl.AtMost{N: 1, R: role.Inverse(), C: t})
			}
		}
	}
	return tbox
}

// CountingLP builds the Lenzerini–Nobili-style population feasibility
// system for the schema: variables are node counts N_ot per object type
// and edge counts E_{ot,f} per (object type, relationship field), with
//
//	WS4  (non-list f on ot):            E_{ot,f} ≤ N_ot
//	DS6  (@required on (t,f)):          E_{ot,f} ≥ N_ot          for ot ⊑ t
//	DS3  (@uniqueForTarget on (t,f)):   Σ_{ot⊑t} E_{ot,f} ≤ Σ_{tt'⊑tt} N_tt'
//	DS4  (@requiredForTarget on (t,f)): Σ_{ot⊑t} E_{ot,f} ≥ Σ_{tt'⊑tt} N_tt'
//
// plus N_{query} ≥ 1. Infeasibility over the rationals implies that no
// finite Property Graph strongly satisfies the schema with an instance of
// the queried type (every finite graph induces an integer and hence
// rational solution) — this is the procedure that catches the
// infinite-chain conflict of Example 6.1(b).
func CountingLP(s *schema.Schema, queryType string) *LP {
	objects := s.ObjectTypes()
	nodeVar := make(map[string]int, len(objects))
	var names []string
	for i, td := range objects {
		nodeVar[td.Name] = i
		names = append(names, "N_"+td.Name)
	}
	edgeVar := make(map[[2]string]int)
	varCount := len(objects)
	edgeVarOf := func(ot, field string) int {
		key := [2]string{ot, field}
		if v, ok := edgeVar[key]; ok {
			return v
		}
		edgeVar[key] = varCount
		names = append(names, "E_"+ot+"."+field)
		varCount++
		return edgeVar[key]
	}

	one := big.NewRat(1, 1)
	negOne := big.NewRat(-1, 1)
	zero := new(big.Rat)

	lp := NewLP(0)

	// WS4 upper bounds per object-type declaration.
	for _, ot := range objects {
		for _, f := range ot.Fields {
			if !s.IsRelationship(f) {
				continue
			}
			ev := edgeVarOf(ot.Name, f.Name)
			if !f.Type.IsList() {
				lp.Add("WS4 "+ot.Name+"."+f.Name,
					map[int]*big.Rat{ev: one, nodeVar[ot.Name]: negOne}, LE, zero)
			}
		}
	}

	// Directive constraints per declaration (object or interface).
	for _, td := range s.Types() {
		if td.Kind != schema.Object && td.Kind != schema.Interface {
			continue
		}
		for _, f := range td.Fields {
			if !s.IsRelationship(f) {
				continue
			}
			// Only sources that actually declare the field can have
			// justified f-edges (SS4); interface consistency makes
			// this the full implementer set for interface fields.
			var srcTypes []string
			for _, src := range s.ConcreteTargets(td.Name) { // ot ⊑ t
				if sf := s.Field(src, f.Name); sf != nil && s.IsRelationship(sf) {
					srcTypes = append(srcTypes, src)
				}
			}
			tgtTypes := s.ConcreteTargets(f.Type.Base()) // ot ⊑ tt
			if schema.HasDirective(f.Directives, schema.DirRequired) {
				for _, src := range srcTypes {
					lp.Add("DS6 "+td.Name+"."+f.Name+"@"+src,
						map[int]*big.Rat{edgeVarOf(src, f.Name): one, nodeVar[src]: negOne}, GE, zero)
				}
			}
			if schema.HasDirective(f.Directives, schema.DirUniqueForTarget) {
				coef := make(map[int]*big.Rat)
				for _, src := range srcTypes {
					coef[edgeVarOf(src, f.Name)] = one
				}
				for _, tgt := range tgtTypes {
					coef[nodeVar[tgt]] = negOne
				}
				lp.Add("DS3 "+td.Name+"."+f.Name, coef, LE, zero)
			}
			if schema.HasDirective(f.Directives, schema.DirRequiredForTarget) {
				coef := make(map[int]*big.Rat)
				for _, src := range srcTypes {
					coef[edgeVarOf(src, f.Name)] = one
				}
				for _, tgt := range tgtTypes {
					coef[nodeVar[tgt]] = negOne
				}
				lp.Add("DS4 "+td.Name+"."+f.Name, coef, GE, zero)
			}
		}
	}

	if qv, ok := nodeVar[queryType]; ok {
		lp.Add("query "+queryType, map[int]*big.Rat{qv: one}, GE, one)
	}
	lp.NumVars = varCount
	lp.VarNames = names
	return lp
}
