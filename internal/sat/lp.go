// Package sat decides the paper's object-type satisfiability problem
// (§6.2): given a schema S and an object type ot, is there a Property
// Graph that strongly satisfies S and contains an ot node?
//
// The problem is NP-hard (Theorem 2) and in PSPACE (Theorem 3), and —
// because Property Graphs are finite — has a finite-model flavour that
// the paper's ALCQI translation alone does not capture (diagram (b) of
// Example 6.1 is satisfiable in an infinite model but in no finite one).
// The checker therefore runs a portfolio of three procedures:
//
//  1. a counting feasibility pre-check: Lenzerini–Nobili-style linear
//     inequalities over type populations and per-field edge counts,
//     solved exactly over the rationals (sound for UNSAT, and the only
//     procedure that catches pigeonhole-style finite unsatisfiability);
//  2. a tableau run on the Theorem 3 ALCQI translation (sound for
//     UNSAT);
//  3. a bounded finite-model search that SAT-encodes "some Property
//     Graph with ≤ k nodes strongly satisfies S and populates ot" and
//     solves it with the DPLL engine (sound for SAT: it returns an
//     actual witness graph which is re-validated with the validator).
//
// When no procedure is conclusive the checker reports Unknown together
// with the exhausted bounds.
package sat

import (
	"fmt"
	"math/big"
	"strings"
)

// Relation is the comparison direction of a linear constraint.
type Relation int

// The relations.
const (
	LE Relation = iota // Σ cᵢxᵢ ≤ b
	GE                 // Σ cᵢxᵢ ≥ b
	EQ                 // Σ cᵢxᵢ = b
)

// Constraint is a linear constraint over non-negative variables.
type Constraint struct {
	Coef map[int]*big.Rat // variable index → coefficient
	Rel  Relation
	RHS  *big.Rat
	Name string // for diagnostics
}

// LP is a feasibility problem: do non-negative rationals satisfying all
// constraints exist? (No objective; Phase-I simplex only.)
type LP struct {
	NumVars     int
	Constraints []Constraint
	VarNames    []string // optional, for diagnostics
}

// NewLP returns an empty problem over n variables (all constrained ≥ 0).
func NewLP(n int) *LP { return &LP{NumVars: n} }

// Add appends the constraint Σ coef[i]·xᵢ rel rhs.
func (lp *LP) Add(name string, coef map[int]*big.Rat, rel Relation, rhs *big.Rat) {
	cp := make(map[int]*big.Rat, len(coef))
	for i, c := range coef {
		if c.Sign() != 0 {
			cp[i] = new(big.Rat).Set(c)
		}
	}
	lp.Constraints = append(lp.Constraints, Constraint{Coef: cp, Rel: rel, RHS: new(big.Rat).Set(rhs), Name: name})
}

// Feasible decides whether the constraint system has a solution with all
// variables ≥ 0, using Phase-I simplex with Bland's rule over exact
// rationals (no floating-point error, guaranteed termination).
func (lp *LP) Feasible() bool {
	m := len(lp.Constraints)
	if m == 0 {
		return true
	}
	// Standard form: every constraint becomes an equality with a slack
	// (LE: +s, GE: -s), RHS made non-negative, then one artificial
	// variable per row. Columns: [x (n)][slacks (m)][artificials (m)].
	n := lp.NumVars
	cols := n + m + m
	a := make([][]*big.Rat, m)
	b := make([]*big.Rat, m)
	for i, c := range lp.Constraints {
		row := make([]*big.Rat, cols)
		for j := range row {
			row[j] = new(big.Rat)
		}
		for v, coef := range c.Coef {
			if v >= 0 && v < n {
				row[v].Set(coef)
			}
		}
		rhs := new(big.Rat).Set(c.RHS)
		switch c.Rel {
		case LE:
			row[n+i].SetInt64(1)
		case GE:
			row[n+i].SetInt64(-1)
		case EQ:
			// no slack
		}
		// Make RHS non-negative.
		if rhs.Sign() < 0 {
			for j := range row {
				row[j].Neg(row[j])
			}
			rhs.Neg(rhs)
		}
		row[n+m+i].SetInt64(1) // artificial
		a[i] = row
		b[i] = rhs
	}
	// Phase-I objective: minimize the sum of artificials.
	// Basis starts as the artificial columns.
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + m + i
	}
	// Reduced cost vector for objective Σ artificials: z_j - c_j where
	// c_j = 1 for artificials. Maintain via explicit computation each
	// iteration (simplicity over speed; systems here are small).
	for iter := 0; iter < 10000; iter++ {
		// Compute objective row: for each column j, d_j = Σ_i c_{basis[i]}·a[i][j] - c_j
		// where c_k = 1 if k is artificial else 0.
		isArt := func(k int) bool { return k >= n+m }
		entering := -1
		for j := 0; j < n+m; j++ { // artificials never re-enter
			d := new(big.Rat)
			for i := 0; i < m; i++ {
				if isArt(basis[i]) {
					d.Add(d, a[i][j])
				}
			}
			// c_j = 0 for non-artificials, so reduced cost = d.
			if d.Sign() > 0 {
				entering = j // Bland: first improving column
				break
			}
		}
		if entering == -1 {
			// Optimal: objective value = Σ basic artificial values.
			obj := new(big.Rat)
			for i := 0; i < m; i++ {
				if isArt(basis[i]) {
					obj.Add(obj, b[i])
				}
			}
			return obj.Sign() == 0
		}
		// Ratio test (Bland: smallest index among ties).
		leaving := -1
		var best *big.Rat
		for i := 0; i < m; i++ {
			if a[i][entering].Sign() <= 0 {
				continue
			}
			ratio := new(big.Rat).Quo(b[i], a[i][entering])
			if leaving == -1 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && basis[i] < basis[leaving]) {
				leaving, best = i, ratio
			}
		}
		if leaving == -1 {
			// Unbounded Phase-I objective cannot happen (bounded
			// below by 0); treat as numerical impossibility.
			return false
		}
		// Pivot on (leaving, entering).
		pivot := new(big.Rat).Set(a[leaving][entering])
		for j := 0; j < cols; j++ {
			a[leaving][j].Quo(a[leaving][j], pivot)
		}
		b[leaving].Quo(b[leaving], pivot)
		for i := 0; i < m; i++ {
			if i == leaving || a[i][entering].Sign() == 0 {
				continue
			}
			factor := new(big.Rat).Set(a[i][entering])
			for j := 0; j < cols; j++ {
				tmp := new(big.Rat).Mul(factor, a[leaving][j])
				a[i][j].Sub(a[i][j], tmp)
			}
			tmp := new(big.Rat).Mul(factor, b[leaving])
			b[i].Sub(b[i], tmp)
		}
		basis[leaving] = entering
	}
	// Iteration cap hit; should not happen with Bland's rule. Be
	// conservative: report feasible (the counting check is a pre-check,
	// and "feasible" defers to the other procedures).
	return true
}

// String renders the problem for diagnostics.
func (lp *LP) String() string {
	var b strings.Builder
	name := func(v int) string {
		if v < len(lp.VarNames) && lp.VarNames[v] != "" {
			return lp.VarNames[v]
		}
		return fmt.Sprintf("x%d", v)
	}
	rels := map[Relation]string{LE: "≤", GE: "≥", EQ: "="}
	for _, c := range lp.Constraints {
		var terms []string
		for v := 0; v < lp.NumVars; v++ {
			if coef, ok := c.Coef[v]; ok {
				terms = append(terms, fmt.Sprintf("%s·%s", coef.RatString(), name(v)))
			}
		}
		fmt.Fprintf(&b, "%s: %s %s %s\n", c.Name, strings.Join(terms, " + "), rels[c.Rel], c.RHS.RatString())
	}
	return b.String()
}
