package sat

import (
	"errors"
	"fmt"

	"pgschema/internal/dl"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
)

// Verdict is the outcome of a satisfiability check.
type Verdict int

// The verdicts.
const (
	Unknown Verdict = iota
	Satisfiable
	Unsatisfiable
)

var verdictNames = [...]string{"unknown", "satisfiable", "unsatisfiable"}

// String returns the verdict in lowercase English.
func (v Verdict) String() string {
	if v < 0 || int(v) >= len(verdictNames) {
		return "invalid"
	}
	return verdictNames[v]
}

// Report is the detailed outcome of Check.
type Report struct {
	Type    string
	Verdict Verdict
	// Method names the procedure that settled the verdict: "counting",
	// "tableau", or "bounded(k=N)".
	Method string
	// Witness is a Property Graph that strongly satisfies the schema
	// and populates the type (Satisfiable verdicts from the bounded
	// search only).
	Witness *pg.Graph
	// Detail explains Unknown verdicts and records auxiliary signals
	// (e.g. that the tableau found the ALCQI translation satisfiable,
	// which rules out "unsatisfiable for infinite models too").
	Detail string
}

// Options configures Check.
type Options struct {
	// MaxGraphNodes bounds the finite-model search (default 6).
	MaxGraphNodes int
	// TableauMaxSteps bounds the tableau search (default: the dl
	// package default).
	TableauMaxSteps int
	// SkipCounting, SkipTableau, and SkipBounded disable individual
	// portfolio stages (for the ablation benchmarks).
	SkipCounting bool
	SkipTableau  bool
	SkipBounded  bool
}

func (o Options) withDefaults() Options {
	if o.MaxGraphNodes == 0 {
		o.MaxGraphNodes = 6
	}
	if o.TableauMaxSteps == 0 {
		// The tableau excels at hierarchical/structural conflicts but
		// explodes on SAT-shaped schemas (the problem is NP-hard, and
		// choose-rule branching is no match for DPLL there); a modest
		// budget makes it bail out to the bounded search quickly.
		o.TableauMaxSteps = 50000
	}
	return o
}

// Check decides object-type satisfiability for the named type using the
// three-stage portfolio described in the package comment. For interface
// and union types it reduces to the implementing/member object types (the
// paper's closing remark in §6.2).
func Check(s *schema.Schema, typeName string, opts Options) Report {
	opts = opts.withDefaults()
	td := s.Type(typeName)
	if td == nil {
		return Report{Type: typeName, Verdict: Unsatisfiable, Method: "lookup", Detail: "type is not declared"}
	}
	switch td.Kind {
	case schema.Object:
		return checkObject(s, typeName, opts)
	case schema.Interface, schema.Union:
		// Satisfiable iff some implementing/member object type is.
		members := s.ConcreteTargets(typeName)
		if len(members) == 0 {
			return Report{Type: typeName, Verdict: Unsatisfiable, Method: "hierarchy", Detail: "no implementing object types"}
		}
		var lastUnknown *Report
		for _, m := range members {
			r := checkObject(s, m, opts)
			switch r.Verdict {
			case Satisfiable:
				r.Type = typeName
				r.Detail = fmt.Sprintf("via object type %s; %s", m, r.Detail)
				return r
			case Unknown:
				lastUnknown = &r
			}
		}
		if lastUnknown != nil {
			lastUnknown.Type = typeName
			return *lastUnknown
		}
		return Report{Type: typeName, Verdict: Unsatisfiable, Method: "hierarchy", Detail: "every implementing object type is unsatisfiable"}
	default:
		// Scalars and enums: trivially satisfiable (§6.2: "the
		// satisfiability problem for properties is trivial").
		return Report{Type: typeName, Verdict: Satisfiable, Method: "trivial", Detail: "scalar and enum types always have values"}
	}
}

func checkObject(s *schema.Schema, typeName string, opts Options) Report {
	rep := Report{Type: typeName}

	// Stage 1: counting feasibility (sound for UNSAT; catches finite-
	// only conflicts such as Example 6.1(b)).
	if !opts.SkipCounting {
		lp := CountingLP(s, typeName)
		if !lp.Feasible() {
			rep.Verdict = Unsatisfiable
			rep.Method = "counting"
			rep.Detail = "the population/edge-count inequalities are infeasible over the rationals"
			return rep
		}
	}

	// Stage 2: ALCQI tableau on the Theorem 3 translation (sound for
	// UNSAT; a SAT answer only rules out infinite-model unsatisfiability).
	tableauSat := false
	tableauRan := false
	if !opts.SkipTableau {
		tbox := Translate(s)
		r := &dl.Reasoner{MaxSteps: opts.TableauMaxSteps}
		ok, err := r.Satisfiable(dl.Atom{Name: typeName}, tbox)
		switch {
		case err == nil && !ok:
			rep.Verdict = Unsatisfiable
			rep.Method = "tableau"
			rep.Detail = "the ALCQI translation of the schema makes the type's concept unsatisfiable"
			return rep
		case err == nil && ok:
			tableauSat = true
			tableauRan = true
		case errors.Is(err, dl.ErrResourceLimit):
			// inconclusive
		}
	}

	// Stage 3: bounded finite-model search (sound for SAT).
	if !opts.SkipBounded {
		for k := 1; k <= opts.MaxGraphNodes; k++ {
			if g, ok := BoundedSearch(s, typeName, k); ok {
				rep.Verdict = Satisfiable
				rep.Method = fmt.Sprintf("bounded(k=%d)", k)
				rep.Witness = g
				rep.Detail = fmt.Sprintf("witness Property Graph with %d nodes and %d edges", g.NumNodes(), g.NumEdges())
				return rep
			}
		}
	}

	rep.Verdict = Unknown
	switch {
	case tableauSat:
		rep.Detail = fmt.Sprintf("the ALCQI translation is satisfiable (possibly only by infinite models), but no Property Graph with ≤ %d nodes exists", opts.MaxGraphNodes)
	case tableauRan:
		rep.Detail = fmt.Sprintf("no Property Graph with ≤ %d nodes exists and the tableau was inconclusive", opts.MaxGraphNodes)
	default:
		rep.Detail = fmt.Sprintf("no Property Graph with ≤ %d nodes exists; tableau and counting were skipped or inconclusive", opts.MaxGraphNodes)
	}
	return rep
}

// CheckField decides the satisfiability of an edge definition (t, f): is
// there a strongly-satisfying Property Graph with an f-edge declared by
// (t, f)? Following §6.2, this reduces to type satisfiability after
// making the field required — implemented here by querying the bounded
// search for a graph containing such an edge, with the tableau deciding
// t ⊓ ∃f.tt for the UNSAT direction.
func CheckField(s *schema.Schema, typeName, fieldName string, opts Options) Report {
	opts = opts.withDefaults()
	rep := Report{Type: typeName + "." + fieldName}
	fd := s.Field(typeName, fieldName)
	if fd == nil || !s.IsRelationship(fd) {
		rep.Verdict = Unsatisfiable
		rep.Method = "lookup"
		rep.Detail = "no such relationship field"
		return rep
	}
	if !opts.SkipTableau {
		tbox := Translate(s)
		concept := dl.And{Cs: []dl.Concept{
			dl.Atom{Name: typeName},
			dl.Exists{R: dl.R(fieldName), C: dl.Atom{Name: fd.Type.Base()}},
		}}
		r := &dl.Reasoner{MaxSteps: opts.TableauMaxSteps}
		if ok, err := r.Satisfiable(concept, tbox); err == nil && !ok {
			rep.Verdict = Unsatisfiable
			rep.Method = "tableau"
			rep.Detail = "no model gives a " + typeName + " node an outgoing " + fieldName + " edge"
			return rep
		}
	}
	if !opts.SkipBounded {
		for k := 1; k <= opts.MaxGraphNodes; k++ {
			if g, ok := BoundedSearchEdge(s, typeName, fieldName, k); ok {
				rep.Verdict = Satisfiable
				rep.Method = fmt.Sprintf("bounded(k=%d)", k)
				rep.Witness = g
				return rep
			}
		}
	}
	rep.Verdict = Unknown
	rep.Detail = "no bounded witness exhibits the edge"
	return rep
}
