package sat

import (
	"pgschema/internal/cnf"
	"pgschema/internal/gen"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/validate"
)

// BoundedSearch looks for a Property Graph with at most k nodes that
// strongly satisfies the schema and contains a node of the queried object
// type. It SAT-encodes the node/edge skeleton (properties never constrain
// satisfiability when value sets are infinite — Theorem 3's argument),
// solves with DPLL, decorates the decoded skeleton with the required
// properties, and re-validates the result with the actual validator
// before returning it as a witness.
//
// The encoding assumes witness graphs without parallel edges, which is
// without loss of generality: deleting duplicate (source, target, label)
// edges preserves strong satisfaction (lower-bound rules keep a witness,
// upper-bound rules only get easier), so if any witness exists, a simple
// one does.
func BoundedSearch(s *schema.Schema, queryType string, k int) (*pg.Graph, bool) {
	return boundedSearch(s, queryType, "", k)
}

// BoundedSearchEdge is BoundedSearch with the additional requirement that
// the slot-0 node (of the queried type) has an outgoing edge labeled
// fieldName — used to decide edge-definition satisfiability (§6.2).
func BoundedSearchEdge(s *schema.Schema, queryType, fieldName string, k int) (*pg.Graph, bool) {
	return boundedSearch(s, queryType, fieldName, k)
}

func boundedSearch(s *schema.Schema, queryType, forcedField string, k int) (*pg.Graph, bool) {
	if k <= 0 {
		return nil, false
	}
	enc := newEncoder(s, k)
	if !enc.encode(queryType) {
		return nil, false // query type unknown
	}
	if forcedField != "" {
		fi, ok := enc.fIndex[forcedField]
		if !ok {
			return nil, false
		}
		cl := make([]cnf.Lit, 0, k)
		for j := 0; j < k; j++ {
			cl = append(cl, enc.edge(0, j, fi))
		}
		enc.f.AddClause(cl...)
	}
	assignment, ok := cnf.Solve(enc.f)
	if !ok {
		return nil, false
	}
	g := enc.decode(assignment)
	gen.PopulateRequiredProperties(s, g)
	res := validate.Validate(s, g, validate.Options{})
	if !res.OK() {
		// The skeleton encoding abstracts properties; if population
		// could not discharge a residual constraint (only possible
		// with finite value domains such as Boolean keys), refuse the
		// witness rather than report a wrong SAT.
		return nil, false
	}
	if len(g.NodesLabeled(queryType)) == 0 {
		return nil, false
	}
	return g, true
}

type encoder struct {
	s *schema.Schema
	k int
	f *cnf.Formula

	objects []*schema.TypeDef
	otIndex map[string]int
	fields  []string // relationship field names (sorted via schema order)
	fIndex  map[string]int

	// declaresRel[t][f] is the relationship FieldDef or nil.
	label func(i, t int) cnf.Lit
	edge  func(i, j, f int) cnf.Lit
}

func newEncoder(s *schema.Schema, k int) *encoder {
	e := &encoder{s: s, k: k, f: cnf.NewFormula(0), otIndex: make(map[string]int), fIndex: make(map[string]int)}
	e.objects = s.ObjectTypes()
	for i, td := range e.objects {
		e.otIndex[td.Name] = i
	}
	seen := make(map[string]bool)
	for _, td := range s.Types() {
		if td.Kind != schema.Object && td.Kind != schema.Interface {
			continue
		}
		for _, f := range td.Fields {
			if s.IsRelationship(f) && !seen[f.Name] {
				seen[f.Name] = true
				e.fIndex[f.Name] = len(e.fields)
				e.fields = append(e.fields, f.Name)
			}
		}
	}
	nT := len(e.objects)
	nF := len(e.fields)
	// Variable layout: labels first, then edges.
	e.label = func(i, t int) cnf.Lit { return cnf.Lit(1 + i*nT + t) }
	e.edge = func(i, j, f int) cnf.Lit { return cnf.Lit(1 + k*nT + (i*k+j)*nF + f) }
	e.f.NumVars = k*nT + k*k*nF
	return e
}

// srcTypesOf returns the object-type indices ⊑ t that declare field f as
// a relationship.
func (e *encoder) srcTypesOf(declaring string, field string) []int {
	var out []int
	for _, src := range e.s.ConcreteTargets(declaring) {
		if fd := e.s.Field(src, field); fd != nil && e.s.IsRelationship(fd) {
			if idx, ok := e.otIndex[src]; ok {
				out = append(out, idx)
			}
		}
	}
	return out
}

func (e *encoder) encode(queryType string) bool {
	q, ok := e.otIndex[queryType]
	if !ok {
		return false
	}
	k, nT := e.k, len(e.objects)

	// The query type is instantiated at slot 0.
	e.f.AddClause(e.label(0, q))

	// At most one label per slot.
	for i := 0; i < k; i++ {
		for t1 := 0; t1 < nT; t1++ {
			for t2 := t1 + 1; t2 < nT; t2++ {
				e.f.AddClause(e.label(i, t1).Neg(), e.label(i, t2).Neg())
			}
		}
	}

	// Symmetry breaking (slots other than the pinned slot 0 are
	// interchangeable): unused slots form a suffix, and used slots carry
	// non-decreasing label indices. Any witness can be permuted into
	// this form, so no models are lost — but the DPLL search no longer
	// explores the (k-1)! slot permutations of each candidate,
	// which matters most when refuting unsatisfiable instances.
	for i := 1; i+1 < k; i++ {
		// If slot i+1 is labeled, slot i is labeled.
		for t2 := 0; t2 < nT; t2++ {
			cl := []cnf.Lit{e.label(i+1, t2).Neg()}
			for t1 := 0; t1 < nT; t1++ {
				cl = append(cl, e.label(i, t1))
			}
			e.f.AddClause(cl...)
		}
		// Label indices are non-decreasing: ¬(x_{i,t} ∧ x_{i+1,t'})
		// for t' < t.
		for t1 := 0; t1 < nT; t1++ {
			for t2 := 0; t2 < t1; t2++ {
				e.f.AddClause(e.label(i, t1).Neg(), e.label(i+1, t2).Neg())
			}
		}
	}

	// SS4: an f-edge needs a source label that declares f.
	for fi, fname := range e.fields {
		var declarers []int
		for t, td := range e.objects {
			if fd := td.Field(fname); fd != nil && e.s.IsRelationship(fd) {
				declarers = append(declarers, t)
			}
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				cl := []cnf.Lit{e.edge(i, j, fi).Neg()}
				for _, t := range declarers {
					cl = append(cl, e.label(i, t))
				}
				e.f.AddClause(cl...)
			}
		}
	}

	// Per object-type declaration: WS3 and WS4.
	for t, td := range e.objects {
		for _, fd := range td.Fields {
			if !e.s.IsRelationship(fd) {
				continue
			}
			fi := e.fIndex[fd.Name]
			var targets []int
			for _, tt := range e.s.ConcreteTargets(fd.Type.Base()) {
				if idx, ok := e.otIndex[tt]; ok {
					targets = append(targets, idx)
				}
			}
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					// WS3: ¬x_{i,t} ∨ ¬e_{i,j,f} ∨ ∨_{tt} x_{j,tt}.
					cl := []cnf.Lit{e.label(i, t).Neg(), e.edge(i, j, fi).Neg()}
					for _, tt := range targets {
						cl = append(cl, e.label(j, tt))
					}
					e.f.AddClause(cl...)
				}
				if !fd.Type.IsList() {
					// WS4: at most one f-edge from an i labeled t.
					for j1 := 0; j1 < k; j1++ {
						for j2 := j1 + 1; j2 < k; j2++ {
							e.f.AddClause(e.label(i, t).Neg(), e.edge(i, j1, fi).Neg(), e.edge(i, j2, fi).Neg())
						}
					}
				}
			}
		}
	}

	// Directive constraints per declaration.
	for _, td := range e.s.Types() {
		if td.Kind != schema.Object && td.Kind != schema.Interface {
			continue
		}
		for _, fd := range td.Fields {
			if !e.s.IsRelationship(fd) {
				continue
			}
			fi := e.fIndex[fd.Name]
			srcs := e.srcTypesOf(td.Name, fd.Name)
			var tgts []int
			for _, tt := range e.s.ConcreteTargets(fd.Type.Base()) {
				if idx, ok := e.otIndex[tt]; ok {
					tgts = append(tgts, idx)
				}
			}
			if schema.HasDirective(fd.Directives, schema.DirRequired) {
				// DS6: every ⊑t node has an outgoing f-edge.
				for _, src := range srcs {
					for i := 0; i < k; i++ {
						cl := []cnf.Lit{e.label(i, src).Neg()}
						for j := 0; j < k; j++ {
							cl = append(cl, e.edge(i, j, fi))
						}
						e.f.AddClause(cl...)
					}
				}
			}
			if schema.HasDirective(fd.Directives, schema.DirNoLoops) {
				// DS2: no loops from ⊑t sources.
				for _, src := range srcs {
					for i := 0; i < k; i++ {
						e.f.AddClause(e.label(i, src).Neg(), e.edge(i, i, fi).Neg())
					}
				}
			}
			if schema.HasDirective(fd.Directives, schema.DirUniqueForTarget) {
				// DS3: each target has ≤1 incoming f-edge from ⊑t
				// sources.
				for j := 0; j < k; j++ {
					for i1 := 0; i1 < k; i1++ {
						for i2 := i1 + 1; i2 < k; i2++ {
							for _, s1 := range srcs {
								for _, s2 := range srcs {
									e.f.AddClause(
										e.edge(i1, j, fi).Neg(), e.label(i1, s1).Neg(),
										e.edge(i2, j, fi).Neg(), e.label(i2, s2).Neg(),
									)
								}
							}
						}
					}
				}
			}
			if schema.HasDirective(fd.Directives, schema.DirRequiredForTarget) {
				// DS4: every ⊑tt node has an incoming f-edge from a
				// ⊑t source. Auxiliary y_{i,j} ≡ "edge i→j justified
				// by a ⊑t source label at i".
				for j := 0; j < k; j++ {
					for _, tt := range tgts {
						cl := []cnf.Lit{e.label(j, tt).Neg()}
						for i := 0; i < k; i++ {
							y := e.f.NewVar()
							// y → e_{i,j,f}
							e.f.AddClause(y.Neg(), e.edge(i, j, fi))
							// y → ∨ x_{i,src}
							impl := []cnf.Lit{y.Neg()}
							for _, src := range srcs {
								impl = append(impl, e.label(i, src))
							}
							e.f.AddClause(impl...)
							cl = append(cl, y)
						}
						e.f.AddClause(cl...)
					}
				}
			}
		}
	}
	return true
}

// decode builds the node/edge skeleton from a satisfying assignment.
func (e *encoder) decode(a cnf.Assignment) *pg.Graph {
	g := pg.New()
	ids := make(map[int]pg.NodeID, e.k)
	for i := 0; i < e.k; i++ {
		for t, td := range e.objects {
			if a[e.label(i, t).Var()] {
				ids[i] = g.AddNode(td.Name)
				break
			}
		}
	}
	for i := 0; i < e.k; i++ {
		src, ok := ids[i]
		if !ok {
			continue
		}
		for j := 0; j < e.k; j++ {
			dst, ok := ids[j]
			if !ok {
				continue
			}
			for fi, fname := range e.fields {
				if a[e.edge(i, j, fi).Var()] {
					g.MustAddEdge(src, dst, fname)
				}
			}
		}
	}
	return g
}
