package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pgschema/internal/values"
)

func postJSON(t *testing.T, mux http.Handler, url, body string) (*httptest.ResponseRecorder, validationResponse) {
	t.Helper()
	req := httptest.NewRequest("POST", url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	var out validationResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("decoding %s response: %v\n%s", url, err, rec.Body.String())
		}
	}
	return rec, out
}

func TestValidateEndpoint(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()

	rec, out := postJSON(t, mux, "/validate", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !out.OK || out.Mode != "strong" || len(out.Violations) != 0 {
		t.Errorf("conformant graph: %+v", out)
	}
	if out.Nodes != 2 || out.Edges != 1 {
		t.Errorf("graph size: %d nodes, %d edges", out.Nodes, out.Edges)
	}
	if len(out.RuleTimeMS) == 0 {
		t.Error("no per-rule timings in response")
	}
	if !out.Compiled || out.CompileMS <= 0 {
		t.Errorf("run did not report the precompiled program: compiled=%v compileMs=%v",
			out.Compiled, out.CompileMS)
	}
	if out.Workers != 1 {
		t.Errorf("default run on a tiny graph should be sequential, got workers=%d", out.Workers)
	}

	// The run must surface in /metrics, including per-rule timings.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"pgschema_validation_runs_total 1",
		`pgschema_validation_rule_duration_seconds_total{rule="WS1"}`,
		`pgschema_http_requests_total{path="/validate",status="200"} 1`,
		`pgschema_http_request_duration_seconds_bucket{path="/validate",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output lacks %q:\n%s", want, body)
		}
	}
}

func TestValidateEndpointParallelTimings(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	// The acceptance criterion: Workers > 1 still yields timings.
	rec, out := postJSON(t, mux, "/validate", `{"workers": 4, "elementSharding": true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if len(out.RuleTimeMS) == 0 {
		t.Fatalf("no per-rule timings with workers=4: %+v", out)
	}
	if _, ok := out.RuleTimeMS["WS1"]; !ok {
		t.Errorf("WS1 timing missing: %v", out.RuleTimeMS)
	}
	if out.Workers < 2 {
		t.Errorf("explicit workers=4 request resolved to %d workers", out.Workers)
	}
}

func TestValidateEndpointFindsViolations(t *testing.T) {
	h := newTestHandler(t)
	// A City without its @required (and @key) name property.
	h.def().g.AddNode("City")
	mux := h.Mux()

	rec, out := postJSON(t, mux, "/validate", `{"mode": "directives"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if out.OK || len(out.Violations) == 0 || out.Mode != "directives" {
		t.Fatalf("expected directive violations: %+v", out)
	}
	for _, v := range out.Violations {
		if !strings.HasPrefix(v.Rule, "DS") {
			t.Errorf("non-directive rule %s in directives mode", v.Rule)
		}
	}

	// Restricting to one rule keeps only it.
	_, out = postJSON(t, mux, "/validate", `{"rules": ["DS5"]}`)
	for _, v := range out.Violations {
		if v.Rule != "DS5" {
			t.Errorf("rule restriction leaked %s", v.Rule)
		}
	}

	// maxViolations caps and flags truncation.
	_, out = postJSON(t, mux, "/validate", `{"maxViolations": 1}`)
	if len(out.Violations) > 1 {
		t.Errorf("cap ignored: %d violations", len(out.Violations))
	}
}

// TestValidateEndpointEngineSelection pins the engine field: requests
// select the evaluation strategy and the response names the one that
// actually ran — including on /revalidate, whose delta-scoped run
// resolves EngineAuto to the fused dirty-region passes.
func TestValidateEndpointEngineSelection(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	for body, want := range map[string]string{
		``:                           "fused", // auto resolves to fused
		`{"engine": "auto"}`:         "fused",
		`{"engine": "fused"}`:        "fused",
		`{"engine": "rule-by-rule"}`: "rule-by-rule",
	} {
		rec, out := postJSON(t, mux, "/validate", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("body %q: status %d: %s", body, rec.Code, rec.Body.String())
		}
		if out.Engine != want {
			t.Errorf("body %q: engine %q, want %q", body, out.Engine, want)
		}
		if !out.OK {
			t.Errorf("body %q: conformant graph not OK: %+v", body, out)
		}
	}
	rec, _ := postJSON(t, mux, "/validate", `{"engine": "warp"}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown engine: status %d, want 400", rec.Code)
	}
	rec, out := postJSON(t, mux, "/revalidate", `{"nodes": [0]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("revalidate: status %d: %s", rec.Code, rec.Body.String())
	}
	if out.Engine != "fused" {
		t.Errorf("revalidate engine %q, want %q (the engine the run actually used)", out.Engine, "fused")
	}
	if out.Workers != 1 {
		t.Errorf("one-node delta resolved to %d workers, want 1", out.Workers)
	}
}

func TestValidateEndpointBadRequests(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	for _, body := range []string{
		`{"mode": "quantum"}`,
		`{"rules": ["WS9"]}`,
		`{"workers": -1}`,
		`{"maxViolations": -3}`,
		`{"bogusField": 1}`,
		`not json`,
	} {
		rec, _ := postJSON(t, mux, "/validate", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/validate", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /validate: status %d, want 405", rec.Code)
	}
}

func TestRevalidateRequiresCachedResult(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	rec, _ := postJSON(t, mux, "/revalidate", `{"nodes": [0]}`)
	if rec.Code != http.StatusConflict {
		t.Errorf("revalidate without cache: status %d, want 409", rec.Code)
	}
}

func TestRevalidateUnknownIDs(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	postJSON(t, mux, "/validate", "")
	for _, body := range []string{`{"nodes": [999]}`, `{"edges": [-1]}`} {
		rec, _ := postJSON(t, mux, "/revalidate", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, rec.Code)
		}
	}
}

// TestRevalidateEquivalence drives the incremental path through the
// endpoints: after a mutation, /revalidate with the delta must report
// exactly what a fresh full /validate reports.
func TestRevalidateEquivalence(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()

	rec, _ := postJSON(t, mux, "/validate", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("seeding validate: %d", rec.Code)
	}

	// Mutate the hosted graph: a loop edge (DS2 @noLoops on twin), a
	// duplicate twin edge (DS1 @distinct), and a City missing its
	// @required name (DS5/DS7). The handler is idle in between — the
	// no-mutation-while-serving rule only concerns concurrent requests.
	lk := h.def().g.NodesLabeled("City")[0]
	loop := h.def().g.MustAddEdge(lk, lk, "twin")
	ghost := h.def().g.AddNode("City")
	h.def().g.SetNodeProp(ghost, "population", values.Int(7)) // SS2: unjustified property

	rec, inc := postJSON(t, mux, "/revalidate",
		fmt.Sprintf(`{"nodes": [%d], "edges": [%d]}`, ghost, loop))
	if rec.Code != http.StatusOK {
		t.Fatalf("revalidate: %d %s", rec.Code, rec.Body.String())
	}
	if !inc.Incremental {
		t.Error("response not marked incremental")
	}
	if inc.OK || len(inc.Violations) == 0 {
		t.Fatalf("mutations not detected: %+v", inc)
	}

	_, full := postJSON(t, mux, "/validate", "")
	if !reflect.DeepEqual(inc.Violations, full.Violations) {
		t.Errorf("incremental and full results differ:\nincremental: %+v\nfull: %+v",
			inc.Violations, full.Violations)
	}
}

// TestConcurrentValidateRevalidate exercises the RWMutex-guarded cache
// under the race detector: parallel /validate, /revalidate, /graphql,
// and /metrics requests against one handler.
func TestConcurrentValidateRevalidate(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	postJSON(t, mux, "/validate", "") // seed the cache

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				var rec *httptest.ResponseRecorder
				switch i % 4 {
				case 0:
					rec, _ = postJSON(t, mux, "/validate", `{"workers": 2}`)
				case 1:
					rec, _ = postJSON(t, mux, "/revalidate", `{"nodes": [0]}`)
				case 2:
					rec = httptest.NewRecorder()
					mux.ServeHTTP(rec, httptest.NewRequest("GET", "/graphql?query=%7B%20allCities%20%7B%20name%20%7D%20%7D", nil))
				case 3:
					rec = httptest.NewRecorder()
					mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				}
				if rec.Code != http.StatusOK {
					t.Errorf("worker %d: status %d", i, rec.Code)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
