package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// doGraphQL issues a request against /graphql and returns the recorder
// plus the response body as a generic map (nil when the body is not
// JSON).
func doGraphQL(t *testing.T, mux http.Handler, method, url, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		return rec, nil
	}
	return rec, out
}

// canonicalEnvelope strips the volatile plan-timing field (asserting it
// was present on compiled responses) and re-marshals; map marshaling
// sorts keys, so the result is canonical for golden comparison.
func canonicalEnvelope(t *testing.T, body map[string]any, wantPlanMS bool) string {
	t.Helper()
	if _, ok := body["planMs"]; ok != wantPlanMS {
		t.Errorf("planMs present=%v, want %v: %v", ok, wantPlanMS, body)
	}
	delete(body, "planMs")
	got, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return string(got)
}

// TestGraphQLEnvelopeGolden pins the exact v1 wire shape of /graphql
// responses across both methods, both engines, and the plan cache, the
// same way TestV1EnvelopeGolden pins /validate.
func TestGraphQLEnvelopeGolden(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()

	const goldenData = `{"apiVersion":"v1","compiled":true,` +
		`"data":{"allCities":[{"name":"Linköping"},{"name":"Amsterdam"}]},` +
		`"engine":"compiled","planCached":%s}`

	// GET with ?query=: compiled engine by default, cold plan cache.
	rec, body := doGraphQL(t, mux, "GET",
		"/graphql?query=%7B%20allCities%20%7B%20name%20%7D%20%7D", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := canonicalEnvelope(t, body, true); got != strings.ReplaceAll(goldenData, "%s", "false") {
		t.Errorf("GET envelope drifted:\ngot:    %s", got)
	}

	// POST with the same source: the plan must come from the cache.
	rec, body = doGraphQL(t, mux, "POST", "/graphql",
		`{"apiVersion": "v1", "query": "{ allCities { name } }"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := canonicalEnvelope(t, body, true); got != strings.ReplaceAll(goldenData, "%s", "true") {
		t.Errorf("POST cached envelope drifted:\ngot:    %s", got)
	}

	// Interpretive engine: no compiled/plan fields beyond the statics.
	rec, body = doGraphQL(t, mux, "POST", "/graphql",
		`{"query": "{ allCities { name } }", "engine": "interpretive"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("interpretive: status %d: %s", rec.Code, rec.Body.String())
	}
	const goldenInterp = `{"apiVersion":"v1","compiled":false,` +
		`"data":{"allCities":[{"name":"Linköping"},{"name":"Amsterdam"}]},` +
		`"engine":"interpretive","planCached":false}`
	if got := canonicalEnvelope(t, body, true); got != goldenInterp {
		t.Errorf("interpretive envelope drifted:\ngot:    %s", got)
	}
}

// TestGraphQLErrorShapes pins the error envelopes: GraphQL-level errors
// stay HTTP 200 in the de-facto {"errors": …} shape; transport-level
// errors use the flat v1 error envelope with a non-200 status.
func TestGraphQLErrorShapes(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()

	// Parse error: 200, envelope carries errors, no data, not compiled.
	rec, body := doGraphQL(t, mux, "POST", "/graphql", `{"query": "{ nope"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("parse error: status %d, want 200", rec.Code)
	}
	got := canonicalEnvelope(t, body, true)
	if !strings.HasPrefix(got, `{"apiVersion":"v1","compiled":false,"engine":"compiled","errors":[{"message":`) {
		t.Errorf("parse-error envelope drifted:\ngot: %s", got)
	}
	if _, ok := body["data"]; ok {
		t.Error("parse-error envelope carries data")
	}

	// Unknown operation name: also a GraphQL-level 200 error.
	rec, body = doGraphQL(t, mux, "POST", "/graphql",
		`{"query": "query A { __typename } query B { __typename }", "operationName": "C"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("unknown operation: status %d, want 200", rec.Code)
	}
	if got := canonicalEnvelope(t, body, true); got != `{"apiVersion":"v1","compiled":true,`+
		`"engine":"compiled","errors":[{"message":"no operation named \"C\""}],"planCached":false}` {
		t.Errorf("unknown-operation envelope drifted:\ngot: %s", got)
	}

	// Both engines produce the identical GraphQL-level error message.
	_, interp := doGraphQL(t, mux, "POST", "/graphql",
		`{"query": "{ allCities { name } }", "operationName": "X", "engine": "interpretive"}`)
	_, comp := doGraphQL(t, mux, "POST", "/graphql",
		`{"query": "{ allCities { name } }", "operationName": "X", "engine": "compiled"}`)
	ie := interp["errors"].([]any)[0].(map[string]any)["message"]
	ce := comp["errors"].([]any)[0].(map[string]any)["message"]
	if ie != ce || ie == "" {
		t.Errorf("engines disagree on error text: interpretive=%q compiled=%q", ie, ce)
	}

	// Transport-level failures: flat v1 error envelope, non-200 status.
	for _, tc := range []struct {
		name, method, url, body string
		status                  int
	}{
		{"bad engine", "POST", "/graphql", `{"query": "{ __typename }", "engine": "jit"}`, http.StatusBadRequest},
		{"bad api version", "POST", "/graphql", `{"apiVersion": "v2", "query": "{ __typename }"}`, http.StatusBadRequest},
		{"empty query", "POST", "/graphql", `{}`, http.StatusBadRequest},
		{"bad json", "POST", "/graphql", `{"query`, http.StatusBadRequest},
		{"bad method", "DELETE", "/graphql", ``, http.StatusMethodNotAllowed},
	} {
		rec, body := doGraphQL(t, mux, tc.method, tc.url, tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.status, rec.Body.String())
			continue
		}
		msg, _ := body["error"].(string)
		if body["apiVersion"] != "v1" || msg == "" {
			t.Errorf("%s: not a v1 error envelope: %v", tc.name, body)
		}
	}
}

// TestGraphQLBodyLimit proves /graphql shares the transport body cap:
// an oversized POST gets a 413 in the v1 error envelope.
func TestGraphQLBodyLimit(t *testing.T) {
	h := newTestHandlerConfig(t, Config{MaxBodyBytes: 64})
	mux := h.Mux()
	big := `{"query": "{ allCities { ` + strings.Repeat("name ", 64) + `} }"}`
	rec, body := doGraphQL(t, mux, "POST", "/graphql", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
	msg, _ := body["error"].(string)
	if body["apiVersion"] != "v1" || !strings.Contains(msg, "64-byte limit") {
		t.Errorf("413 envelope: %v", body)
	}
	// At the limit exactly: accepted.
	exact := `{"query": "{ allCities { name } }"}` // 38 bytes < 64
	if rec, _ := doGraphQL(t, mux, "POST", "/graphql", exact); rec.Code != http.StatusOK {
		t.Errorf("under-limit body rejected: status %d", rec.Code)
	}
}
