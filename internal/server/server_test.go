package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pgschema/internal/parser"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

func newTestHandler(t *testing.T) *Handler {
	t.Helper()
	return newTestHandlerConfig(t, Config{})
}

func newTestHandlerConfig(t *testing.T, cfg Config) *Handler {
	t.Helper()
	doc, err := parser.Parse(`
		type City @key(fields: ["name"]) {
			name: String! @required
			twin: [City] @distinct @noLoops
		}`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schema.Build(doc, schema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := pg.New()
	lk := g.AddNode("City")
	g.SetNodeProp(lk, "name", values.String("Linköping"))
	ams := g.AddNode("City")
	g.SetNodeProp(ams, "name", values.String("Amsterdam"))
	g.MustAddEdge(lk, ams, "twin")
	h, err := New(s, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPprofDisabledByDefault(t *testing.T) {
	h := newTestHandler(t)
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	h.Mux().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without EnablePprof: status %d, want 404", rec.Code)
	}
}

func TestPprofEnabled(t *testing.T) {
	h := newTestHandlerConfig(t, Config{EnablePprof: true})
	mux := h.Mux()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s with EnablePprof: status %d, want 200", path, rec.Code)
		}
	}
}

func do(t *testing.T, h *Handler, method, url, body string) (*http.Response, response) {
	t.Helper()
	var reader *strings.Reader
	if body == "" {
		reader = strings.NewReader("")
	} else {
		reader = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, url, reader)
	rec := httptest.NewRecorder()
	h.Mux().ServeHTTP(rec, req)
	res := rec.Result()
	var out response
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil && res.Header.Get("Content-Type") == "application/json" {
		t.Fatalf("decoding response: %v", err)
	}
	return res, out
}

func TestPostQuery(t *testing.T) {
	h := newTestHandler(t)
	res, out := do(t, h, "POST", "/graphql",
		`{"query": "{ city(name: \"Linköping\") { name twin { name } } }"}`)
	if res.StatusCode != 200 || len(out.Errors) > 0 {
		t.Fatalf("status %d, errors %v", res.StatusCode, out.Errors)
	}
	city := out.Data["city"].(map[string]any)
	if city["name"] != "Linköping" {
		t.Errorf("data: %v", out.Data)
	}
	twins := city["twin"].([]any)
	if len(twins) != 1 || twins[0].(map[string]any)["name"] != "Amsterdam" {
		t.Errorf("twins: %v", twins)
	}
}

func TestGetQuery(t *testing.T) {
	h := newTestHandler(t)
	res, out := do(t, h, "GET", "/graphql?query="+strings.ReplaceAll("{ allCities { name } }", " ", "%20"), "")
	if res.StatusCode != 200 || len(out.Errors) > 0 {
		t.Fatalf("status %d, errors %v", res.StatusCode, out.Errors)
	}
	if len(out.Data["allCities"].([]any)) != 2 {
		t.Errorf("data: %v", out.Data)
	}
}

func TestOperationName(t *testing.T) {
	h := newTestHandler(t)
	body := `{"query": "query A { allCities { name } } query B { city(name: \"Amsterdam\") { name } }", "operationName": "B"}`
	res, out := do(t, h, "POST", "/graphql", body)
	if res.StatusCode != 200 || len(out.Errors) > 0 {
		t.Fatalf("status %d, errors %v", res.StatusCode, out.Errors)
	}
	if out.Data["city"].(map[string]any)["name"] != "Amsterdam" {
		t.Errorf("data: %v", out.Data)
	}
}

func TestGraphQLErrorsAre200s(t *testing.T) {
	h := newTestHandler(t)
	res, out := do(t, h, "POST", "/graphql", `{"query": "{ nope { x } }"}`)
	if res.StatusCode != 200 {
		t.Errorf("status: %d", res.StatusCode)
	}
	if len(out.Errors) != 1 || !strings.Contains(out.Errors[0].Message, "unknown query field") {
		t.Errorf("errors: %v", out.Errors)
	}
	// Syntax error likewise.
	_, out = do(t, h, "POST", "/graphql", `{"query": "{ broken"}`)
	if len(out.Errors) != 1 {
		t.Errorf("errors: %v", out.Errors)
	}
}

func TestTransportErrors(t *testing.T) {
	h := newTestHandler(t)
	res, _ := do(t, h, "POST", "/graphql", `not json`)
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d", res.StatusCode)
	}
	res, _ = do(t, h, "POST", "/graphql", `{}`)
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query: status %d", res.StatusCode)
	}
	res, _ = do(t, h, "DELETE", "/graphql", "")
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("bad method: status %d", res.StatusCode)
	}
}

func TestSchemaAndHealthEndpoints(t *testing.T) {
	h := newTestHandler(t)
	req := httptest.NewRequest("GET", "/schema", nil)
	rec := httptest.NewRecorder()
	h.Mux().ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "allCities") {
		t.Errorf("schema endpoint: %d\n%s", rec.Code, rec.Body.String())
	}
	req = httptest.NewRequest("GET", "/healthz", nil)
	rec = httptest.NewRecorder()
	h.Mux().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Errorf("healthz: %d", rec.Code)
	}
}

func TestConcurrentRequests(t *testing.T) {
	h := newTestHandler(t)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			req := httptest.NewRequest("GET", "/graphql?query=%7B%20allCities%20%7B%20name%20%7D%20%7D", nil)
			rec := httptest.NewRecorder()
			h.Mux().ServeHTTP(rec, req)
			if rec.Code != 200 {
				done <- http.ErrAbortHandler
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
