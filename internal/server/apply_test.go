package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func postApply(t *testing.T, mux http.Handler, body string) (*httptest.ResponseRecorder, applyResponse) {
	t.Helper()
	req := httptest.NewRequest("POST", "/graph/apply", strings.NewReader(body))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	var out applyResponse
	if rec.Code == http.StatusOK || rec.Code == http.StatusConflict {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("decoding /graph/apply response: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, out
}

func TestApplyEndpoint(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	epoch0 := h.def().g.Epoch()

	// Two new cities twinned with each other and with an existing node,
	// addressed by negative refs (-1 = first addNodes entry).
	rec, out := postApply(t, mux, `{
		"apiVersion": "v1",
		"addNodes": [
			{"label": "City", "props": {"name": "Utrecht"}},
			{"label": "City", "props": {"name": "Gent"}}
		],
		"addEdges": [
			{"src": -1, "dst": -2, "label": "twin"},
			{"src": -1, "dst": 0, "label": "twin"}
		]
	}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if out.APIVersion != "v1" || !out.Applied {
		t.Fatalf("envelope: %+v", out)
	}
	if out.Epoch <= epoch0 {
		t.Errorf("epoch did not advance: %d -> %d", epoch0, out.Epoch)
	}
	if len(out.NewNodes) != 2 || len(out.NewEdges) != 2 {
		t.Fatalf("new IDs: %+v", out)
	}
	if out.Validation != nil {
		t.Error("validation reported without being requested")
	}
	if h.def().g.NumNodes() != 4 || h.def().g.NumEdges() != 3 {
		t.Errorf("graph size after apply: %d nodes, %d edges", h.def().g.NumNodes(), h.def().g.NumEdges())
	}
}

func TestApplyEndpointRevalidates(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	postJSON(t, mux, "/validate", "") // seed the cache

	// A City without its @required name: DS5 and DS7 violations.
	rec, out := postApply(t, mux, `{"addNodes": [{"label": "City"}], "revalidate": true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !out.Applied || out.Validation == nil {
		t.Fatalf("expected applied+validated: %+v", out)
	}
	if out.Validation.OK || len(out.Validation.Violations) == 0 {
		t.Fatalf("violations not reported: %+v", out.Validation)
	}
	if !out.Validation.Incremental {
		t.Error("validation not marked incremental")
	}

	// The cache was updated: a plain /revalidate with an empty delta
	// still reports the violations, and a full /validate agrees.
	_, inc := postJSON(t, mux, "/revalidate", `{}`)
	_, full := postJSON(t, mux, "/validate", "")
	if len(inc.Violations) != len(full.Violations) || len(full.Violations) == 0 {
		t.Errorf("cache not updated: incremental %d vs full %d violations",
			len(inc.Violations), len(full.Violations))
	}
}

func TestApplyEndpointRequireValidRollsBack(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	postJSON(t, mux, "/validate", "")
	nodes0, edges0 := h.def().g.NumNodes(), h.def().g.NumEdges()

	// A loop edge violates @noLoops on twin; requireValid must refuse
	// and roll back.
	rec, out := postApply(t, mux, `{
		"addEdges": [{"src": 0, "dst": 0, "label": "twin"}],
		"requireValid": true
	}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("status %d, want 409: %s", rec.Code, rec.Body.String())
	}
	if out.Applied {
		t.Error("rolled-back delta reported as applied")
	}
	if out.Validation == nil || out.Validation.OK {
		t.Fatalf("409 must carry the would-be violations: %+v", out)
	}
	if h.def().g.NumNodes() != nodes0 || h.def().g.NumEdges() != edges0 {
		t.Errorf("rollback failed: %d/%d -> %d/%d", nodes0, edges0, h.def().g.NumNodes(), h.def().g.NumEdges())
	}
	// The graph is unchanged, so a full validate is still clean — and
	// the 409's validation result must not have poisoned the cache.
	_, full := postJSON(t, mux, "/validate", "")
	if !full.OK {
		t.Errorf("graph dirty after rollback: %+v", full.Violations)
	}

	// A valid mutation under requireValid commits.
	rec, out = postApply(t, mux, `{
		"addNodes": [{"label": "City", "props": {"name": "Turku"}}],
		"requireValid": true
	}`)
	if rec.Code != http.StatusOK || !out.Applied || out.Validation == nil || !out.Validation.OK {
		t.Fatalf("valid delta refused: %d %+v", rec.Code, out)
	}
}

func TestApplyEndpointBadRequests(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	for _, body := range []string{
		``,                      // empty delta
		`{}`,                    // empty delta
		`{"apiVersion": "v2"}`,  // unsupported version
		`{"removeNodes": [99]}`, // unknown node
		`{"addEdges": [{"src": -3, "dst": 0, "label": "twin"}]}`, // bad ref
		`{"bogus": 1}`, // unknown field
	} {
		rec, _ := postApply(t, mux, body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, rec.Code)
		}
	}
	// Failed applies must leave the graph untouched.
	if h.def().g.NumNodes() != 2 || h.def().g.NumEdges() != 1 {
		t.Errorf("graph mutated by rejected requests: %d/%d", h.def().g.NumNodes(), h.def().g.NumEdges())
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/graph/apply", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /graph/apply: status %d, want 405", rec.Code)
	}
}

// TestApplyEndpointErrorEnvelope pins the v1 error shape: flat error
// string plus the legacy errors list.
func TestApplyEndpointErrorEnvelope(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	rec, _ := postApply(t, mux, `{"removeNodes": [99]}`)
	var env struct {
		APIVersion string `json:"apiVersion"`
		Error      string `json:"error"`
		Errors     []struct {
			Message string `json:"message"`
		} `json:"errors"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("decoding error envelope: %v\n%s", err, rec.Body.String())
	}
	if env.APIVersion != "v1" || env.Error == "" {
		t.Errorf("v1 error envelope: %+v", env)
	}
	if len(env.Errors) != 1 || env.Errors[0].Message != env.Error {
		t.Errorf("legacy errors list diverges from error string: %+v", env)
	}
}

// TestConcurrentApplyValidate races mutations against reads: the graph
// lock must keep concurrent POST /graph/apply, /validate, /revalidate,
// and /graphql requests race-clean (verified under -race in CI).
func TestConcurrentApplyValidate(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	postJSON(t, mux, "/validate", "")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				switch i % 4 {
				case 0:
					body := fmt.Sprintf(
						`{"addNodes": [{"label": "City", "props": {"name": "n%d-%d"}}], "revalidate": true}`, i, j)
					rec, _ := postApply(t, mux, body)
					if rec.Code != http.StatusOK {
						t.Errorf("apply: status %d: %s", rec.Code, rec.Body.String())
						return
					}
				case 1:
					rec, _ := postJSON(t, mux, "/validate", `{"workers": 2}`)
					if rec.Code != http.StatusOK {
						t.Errorf("validate: status %d", rec.Code)
						return
					}
				case 2:
					rec, _ := postJSON(t, mux, "/revalidate", `{"nodes": [0]}`)
					if rec.Code != http.StatusOK {
						t.Errorf("revalidate: status %d", rec.Code)
						return
					}
				case 3:
					// Alternate engines so compiled plans (shared
					// cache, epoch-keyed rebinding) race the applies
					// too. The two aliased scans must see the same
					// snapshot: a query observing a torn state — an
					// apply's node visible to one scan but not the
					// other, or a node missing its required name —
					// fails here.
					engine := engineCompiled
					if j%2 == 1 {
						engine = engineInterpretive
					}
					body := fmt.Sprintf(`{"engine": %q, "query":
						"{ a: allCities { __typename } b: allCities { name } }"}`, engine)
					rec := httptest.NewRecorder()
					mux.ServeHTTP(rec, httptest.NewRequest("POST", "/graphql",
						strings.NewReader(body)))
					if rec.Code != http.StatusOK {
						t.Errorf("graphql: status %d: %s", rec.Code, rec.Body.String())
						return
					}
					var out struct {
						Data struct {
							A []map[string]any `json:"a"`
							B []map[string]any `json:"b"`
						} `json:"data"`
						Errors []respError `json:"errors"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
						t.Errorf("graphql: decoding: %v", err)
						return
					}
					if len(out.Errors) > 0 {
						t.Errorf("graphql: %v", out.Errors)
						return
					}
					if len(out.Data.A) != len(out.Data.B) {
						t.Errorf("torn read: %d cities in scan a, %d in scan b",
							len(out.Data.A), len(out.Data.B))
						return
					}
					for _, c := range out.Data.B {
						if c["name"] == nil {
							t.Errorf("torn read: city with nil name: %v", out.Data.B)
							return
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()

	// Every applied mutation survived: 2 seed nodes + 20 adds.
	if h.def().g.NumNodes() != 22 {
		t.Errorf("node count after concurrent applies: %d, want 22", h.def().g.NumNodes())
	}
	// And the final cached state answers consistently.
	_, inc := postJSON(t, mux, "/revalidate", `{}`)
	_, full := postJSON(t, mux, "/validate", "")
	if len(inc.Violations) != len(full.Violations) {
		t.Errorf("cache drifted: %d incremental vs %d full violations",
			len(inc.Violations), len(full.Violations))
	}
}

// TestV1EnvelopeGolden pins the exact v1 wire shape of the validation
// envelope. Volatile timing fields are zeroed before comparison; every
// other field must match byte-for-byte so accidental envelope changes
// fail loudly.
func TestV1EnvelopeGolden(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	rec, _ := postJSON(t, mux, "/validate", `{"apiVersion": "v1"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	for _, volatile := range []string{"compileMs", "elapsedMs", "ruleTimeMs"} {
		if _, ok := body[volatile]; !ok {
			t.Errorf("envelope lacks %q", volatile)
		}
		delete(body, volatile)
	}
	got, err := json.Marshal(body) // map marshaling sorts keys: canonical
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"apiVersion":"v1","compiled":true,"edges":1,"engine":"fused",` +
		`"incomplete":false,"incremental":false,"mode":"strong","nodes":2,"ok":true,` +
		`"truncated":false,"violations":[],"workers":1}`
	if string(got) != golden {
		t.Errorf("v1 envelope drifted:\ngot:    %s\ngolden: %s", got, golden)
	}
}

// TestApplyEnvelopeGolden pins the /graph/apply response shape the same
// way.
func TestApplyEnvelopeGolden(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	rec, _ := postApply(t, mux, `{"addNodes": [{"label": "City", "props": {"name": "Visby"}}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"apiVersion":"v1","applied":true,"epoch":7,"newEdges":null,` +
		`"newNodes":[2],"touched":{"edges":null,"labels":["City"],"nodes":[2]}}`
	if string(got) != golden {
		t.Errorf("apply envelope drifted:\ngot:    %s\ngolden: %s", got, golden)
	}
}
