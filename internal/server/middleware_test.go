package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTimeoutMiddleware: a handler that outlives the deadline gets cut
// off with 504; a fast handler's buffered response passes through intact.
func TestTimeoutMiddleware(t *testing.T) {
	h := newTestHandler(t)
	h.cfg.RequestTimeout = 20 * time.Millisecond

	release := make(chan struct{})
	slow := h.withTimeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
		fmt.Fprint(w, "too late")
	}))
	rec := httptest.NewRecorder()
	slow.ServeHTTP(rec, httptest.NewRequest("GET", "/graphql", nil))
	close(release)
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("slow handler: status %d, want 504", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "too late") {
		t.Errorf("abandoned response leaked through: %s", rec.Body.String())
	}

	fast := h.withTimeout(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("X-Fast", "yes")
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "done")
	}))
	rec = httptest.NewRecorder()
	fast.ServeHTTP(rec, httptest.NewRequest("GET", "/graphql", nil))
	if rec.Code != http.StatusTeapot || rec.Body.String() != "done" || rec.Header().Get("X-Fast") != "yes" {
		t.Errorf("fast handler mangled: status %d, body %q, headers %v", rec.Code, rec.Body.String(), rec.Header())
	}
}

// TestRecoveryMiddleware: a panicking handler becomes a 500, including
// when the panic happens inside the timeout middleware's goroutine.
func TestRecoveryMiddleware(t *testing.T) {
	h := newTestHandler(t)
	panicky := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})

	rec := httptest.NewRecorder()
	h.recoverPanics(panicky).ServeHTTP(rec, httptest.NewRequest("GET", "/graphql", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("direct panic: status %d, want 500", rec.Code)
	}

	h.cfg.RequestTimeout = time.Second
	rec = httptest.NewRecorder()
	h.recoverPanics(h.withTimeout(panicky)).ServeHTTP(rec, httptest.NewRequest("GET", "/graphql", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panic through timeout goroutine: status %d, want 500", rec.Code)
	}
}

// TestConcurrencyLimit: with MaxInFlight slots occupied, the next
// request is shed with 503 instead of queued.
func TestConcurrencyLimit(t *testing.T) {
	h := newTestHandler(t)
	h.cfg.MaxInFlight = 2

	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	limited := h.limitInFlight(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		entered <- struct{}{}
		<-release
		fmt.Fprint(w, "ok")
	}))

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			limited.ServeHTTP(rec, httptest.NewRequest("GET", "/graphql", nil))
			if rec.Code != http.StatusOK {
				t.Errorf("in-limit request: status %d", rec.Code)
			}
		}()
	}
	<-entered
	<-entered // both slots held

	rec := httptest.NewRecorder()
	limited.ServeHTTP(rec, httptest.NewRequest("GET", "/graphql", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("over-limit request: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response lacks Retry-After")
	}

	close(release)
	wg.Wait()
}

// TestBodyLimit413: oversized POST bodies get 413, not a JSON parse
// error; a body exactly at the limit still parses.
func TestBodyLimit413(t *testing.T) {
	h := newTestHandler(t)
	h.cfg.MaxBodyBytes = 64
	mux := h.Mux()

	big := `{"query": "` + strings.Repeat("x", 100) + `"}`
	req := httptest.NewRequest("POST", "/graphql", strings.NewReader(big))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413 (body %s)", rec.Code, rec.Body.String())
	}

	exact := `{"query": "{ allCities { name } }"}`
	exact += strings.Repeat(" ", 64-len(exact)) // pad to exactly the limit
	req = httptest.NewRequest("POST", "/graphql", strings.NewReader(exact))
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("at-limit body: status %d, want 200 (body %s)", rec.Code, rec.Body.String())
	}
}

// TestBodyLimitDefault1MiB pins the acceptance criterion: a >1 MiB POST
// against the default configuration returns 413.
func TestBodyLimitDefault1MiB(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	big := `{"query": "` + strings.Repeat("x", DefaultMaxBodyBytes) + `"}`
	req := httptest.NewRequest("POST", "/graphql", strings.NewReader(big))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("1 MiB+ body: status %d, want 413", rec.Code)
	}
}

// TestHealthzBypassesLimit: probes answer even when the API routes are
// saturated at the concurrency limit.
func TestHealthzBypassesLimit(t *testing.T) {
	h := newTestHandler(t)
	h.cfg.MaxInFlight = 1
	h.cfg.RequestTimeout = 5 * time.Second
	mux := h.Mux()

	// Saturate the single slot with a request parked on a body read
	// that blocks until released; reading proves it holds the slot.
	body := &blockedBody{ch: make(chan struct{}), reading: make(chan struct{})}
	go func() {
		req := httptest.NewRequest("POST", "/graphql", body)
		mux.ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-body.reading

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/graphql?query=%7B%20allCities%20%7B%20name%20%7D%20%7D", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("API route under saturation: status %d, want 503", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz under saturation: status %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("metrics under saturation: status %d, want 200", rec.Code)
	}
	close(body.ch)
}

// blockedBody is an io.Reader that announces its first Read and then
// blocks until released, to park a request inside its handler.
type blockedBody struct {
	ch      chan struct{}
	reading chan struct{}
	once    sync.Once
}

func (b *blockedBody) Read([]byte) (int, error) {
	b.once.Do(func() { close(b.reading) })
	<-b.ch
	return 0, fmt.Errorf("unblocked")
}
