package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"pgschema/internal/query"
)

// graphqlRequest is the GraphQL-over-HTTP request body, extended with
// the v1 envelope fields. Legacy bodies ({"query", "operationName"})
// keep working: apiVersion defaults to legacy-accepted and engine to
// auto.
type graphqlRequest struct {
	APIVersion    string `json:"apiVersion"`
	Query         string `json:"query"`
	OperationName string `json:"operationName"`
	// Engine selects the execution path: "auto" (default) and
	// "compiled" run the cached compiled plan, "interpretive" keeps the
	// tree-walking executor.
	Engine string `json:"engine"`
}

// graphqlResponse is the GraphQL-over-HTTP response in the v1 envelope.
// The de-facto-protocol "data"/"errors" fields are unchanged, so pre-v1
// clients keep parsing; the envelope adds which engine answered and
// what the plan cost.
type graphqlResponse struct {
	APIVersion string         `json:"apiVersion"`
	Data       map[string]any `json:"data,omitempty"`
	Errors     []respError    `json:"errors,omitempty"`
	// Engine is the execution path that answered: "compiled" or
	// "interpretive".
	Engine string `json:"engine"`
	// Compiled reports that a compiled plan produced the result (false
	// on the interpretive path and on parse failures).
	Compiled bool `json:"compiled"`
	// PlanCached reports the plan was served from the handler's cache;
	// PlanMS is the time spent obtaining the plan this request (parse +
	// compile on a miss, ~0 on a hit).
	PlanCached bool    `json:"planCached"`
	PlanMS     float64 `json:"planMs"`
}

const (
	engineCompiled     = "compiled"
	engineInterpretive = "interpretive"
)

// resolveQueryEngine normalizes the engine selector; the second result
// is an error message for unknown values.
func resolveQueryEngine(e string) (string, string) {
	switch e {
	case "", "auto", engineCompiled:
		return engineCompiled, ""
	case engineInterpretive:
		return engineInterpretive, ""
	default:
		return "", fmt.Sprintf("unknown engine %q (want \"auto\", \"compiled\", or \"interpretive\")", e)
	}
}

func (h *Handler) serveGraphQL(t *tenant, w http.ResponseWriter, r *http.Request) {
	var req graphqlRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req.Query = q.Get("query")
		req.OperationName = q.Get("operationName")
		req.Engine = q.Get("engine")
		req.APIVersion = q.Get("apiVersion")
	case http.MethodPost:
		body, ok := h.readBody(w, r)
		if !ok {
			return
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeAPIError(w, http.StatusBadRequest, "request body is not valid JSON: "+err.Error())
			return
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if msg := checkAPIVersion(req.APIVersion); msg != "" {
		writeAPIError(w, http.StatusBadRequest, msg)
		return
	}
	engine, msg := resolveQueryEngine(req.Engine)
	if msg != "" {
		writeAPIError(w, http.StatusBadRequest, msg)
		return
	}
	if req.Query == "" {
		writeAPIError(w, http.StatusBadRequest, "no query provided")
		return
	}

	resp := graphqlResponse{APIVersion: apiVersion, Engine: engine}
	writeQueryError := func(msg string) {
		// GraphQL-level errors (parse, validation, execution) are 200s.
		resp.Errors = []respError{{Message: msg}}
		writeJSON(w, http.StatusOK, resp)
	}

	if err := h.reg.rlock(t); err != nil {
		writeAPIError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer t.gmu.RUnlock()

	if engine == engineInterpretive {
		doc, err := query.Parse(req.Query)
		if err != nil {
			writeQueryError(err.Error())
			return
		}
		data, err := query.ExecuteContext(r.Context(), t.s, t.g, doc, req.OperationName)
		if err != nil {
			writeQueryError(err.Error())
			return
		}
		resp.Data = data
		writeJSON(w, http.StatusOK, resp)
		return
	}

	planStart := time.Now()
	plan, cached, err := t.plans.Get(req.Query)
	resp.PlanMS = float64(time.Since(planStart)) / float64(time.Millisecond)
	resp.PlanCached = cached
	if err != nil {
		writeQueryError(err.Error())
		return
	}
	resp.Compiled = true
	data, err := plan.Execute(r.Context(), t.g, req.OperationName)
	if err != nil {
		writeQueryError(err.Error())
		return
	}
	resp.Data = data
	writeJSON(w, http.StatusOK, resp)
}
