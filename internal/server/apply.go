package server

import (
	"net/http"
	"sort"
	"time"

	"pgschema/internal/pg"
	"pgschema/internal/validate"
	"pgschema/internal/values"
)

// applyNodeSpec describes one node to create. Props map property names
// to JSON values (string, number, boolean, or list thereof).
type applyNodeSpec struct {
	Label string                  `json:"label"`
	Props map[string]values.Value `json:"props"`
}

// applyEdgeSpec describes one edge to create. Src and Dst are node ids;
// a negative value -k refers to the k-th node of addNodes (1-based): -1
// is the first node the same request creates — the pg.NewNodeRef
// encoding on the wire.
type applyEdgeSpec struct {
	Src   int64                   `json:"src"`
	Dst   int64                   `json:"dst"`
	Label string                  `json:"label"`
	Props map[string]values.Value `json:"props"`
}

type applyRelabelSpec struct {
	Node  int64  `json:"node"`
	Label string `json:"label"`
}

type applyNodePropSpec struct {
	Node  int64        `json:"node"`
	Name  string       `json:"name"`
	Value values.Value `json:"value"`
}

type applyNodePropDelSpec struct {
	Node int64  `json:"node"`
	Name string `json:"name"`
}

type applyEdgePropSpec struct {
	Edge  int64        `json:"edge"`
	Name  string       `json:"name"`
	Value values.Value `json:"value"`
}

type applyEdgePropDelSpec struct {
	Edge int64  `json:"edge"`
	Name string `json:"name"`
}

// applyRequest is the POST /graph/apply body: a transactional mutation
// batch in pg.Delta group order, plus validation policy flags.
type applyRequest struct {
	APIVersion string `json:"apiVersion"`

	AddNodes     []applyNodeSpec        `json:"addNodes"`
	AddEdges     []applyEdgeSpec        `json:"addEdges"`
	RelabelNodes []applyRelabelSpec     `json:"relabelNodes"`
	SetNodeProps []applyNodePropSpec    `json:"setNodeProps"`
	DelNodeProps []applyNodePropDelSpec `json:"delNodeProps"`
	SetEdgeProps []applyEdgePropSpec    `json:"setEdgeProps"`
	DelEdgeProps []applyEdgePropDelSpec `json:"delEdgeProps"`
	RemoveEdges  []int64                `json:"removeEdges"`
	RemoveNodes  []int64                `json:"removeNodes"`

	// Revalidate runs incremental revalidation after the delta commits
	// and reports the new result in the response.
	Revalidate bool `json:"revalidate"`
	// RequireValid additionally makes validity a commit condition: if
	// the mutated graph has violations, the delta is rolled back and the
	// response is 409 Conflict carrying the would-be violations.
	RequireValid bool `json:"requireValid"`
}

// sortedProps flattens a JSON props object into deterministic
// name-sorted entries.
func sortedProps(m map[string]values.Value) []pg.PropEntry {
	if len(m) == 0 {
		return nil
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]pg.PropEntry, 0, len(names))
	for _, name := range names {
		out = append(out, pg.PropEntry{Name: name, Value: m[name]})
	}
	return out
}

// delta translates the request into a pg.Delta. Element-id validity is
// left to Apply itself (which rejects the whole batch atomically).
func (req *applyRequest) delta() pg.Delta {
	var d pg.Delta
	for _, sp := range req.AddNodes {
		d.AddNodes = append(d.AddNodes, pg.AddNodeSpec{Label: sp.Label, Props: sortedProps(sp.Props)})
	}
	for _, sp := range req.AddEdges {
		d.AddEdges = append(d.AddEdges, pg.AddEdgeSpec{
			Src: pg.NodeID(sp.Src), Dst: pg.NodeID(sp.Dst),
			Label: sp.Label, Props: sortedProps(sp.Props),
		})
	}
	for _, sp := range req.RelabelNodes {
		d.RelabelNodes = append(d.RelabelNodes, pg.RelabelSpec{Node: pg.NodeID(sp.Node), Label: sp.Label})
	}
	for _, sp := range req.SetNodeProps {
		d.SetNodeProps = append(d.SetNodeProps, pg.NodePropSpec{Node: pg.NodeID(sp.Node), Name: sp.Name, Value: sp.Value})
	}
	for _, sp := range req.DelNodeProps {
		d.DelNodeProps = append(d.DelNodeProps, pg.NodePropDelSpec{Node: pg.NodeID(sp.Node), Name: sp.Name})
	}
	for _, sp := range req.SetEdgeProps {
		d.SetEdgeProps = append(d.SetEdgeProps, pg.EdgePropSpec{Edge: pg.EdgeID(sp.Edge), Name: sp.Name, Value: sp.Value})
	}
	for _, sp := range req.DelEdgeProps {
		d.DelEdgeProps = append(d.DelEdgeProps, pg.EdgePropDelSpec{Edge: pg.EdgeID(sp.Edge), Name: sp.Name})
	}
	for _, id := range req.RemoveEdges {
		d.RemoveEdges = append(d.RemoveEdges, pg.EdgeID(id))
	}
	for _, id := range req.RemoveNodes {
		d.RemoveNodes = append(d.RemoveNodes, pg.NodeID(id))
	}
	return d
}

// touchedJSON is the directly-mutated element report in an apply
// response.
type touchedJSON struct {
	Nodes  []int64  `json:"nodes"`
	Edges  []int64  `json:"edges"`
	Labels []string `json:"labels"`
}

// applyResponse is the POST /graph/apply response body.
type applyResponse struct {
	APIVersion string `json:"apiVersion"`
	// Applied is false when requireValid rolled the delta back.
	Applied bool `json:"applied"`
	// Epoch is the graph version after the request — also advanced by a
	// rollback, which replays the inverse mutations.
	Epoch    uint64      `json:"epoch"`
	NewNodes []int64     `json:"newNodes"`
	NewEdges []int64     `json:"newEdges"`
	Touched  touchedJSON `json:"touched"`
	// Validation carries the post-mutation validation result when the
	// request asked for one (revalidate or requireValid).
	Validation *validationResponse `json:"validation,omitempty"`
}

func (h *Handler) serveApply(t *tenant, w http.ResponseWriter, r *http.Request) {
	var req applyRequest
	if !h.decodeJSONBody(w, r, &req) {
		return
	}
	if msg := checkAPIVersion(req.APIVersion); msg != "" {
		writeAPIError(w, http.StatusBadRequest, msg)
		return
	}
	d := req.delta()
	if d.Empty() && !req.Revalidate && !req.RequireValid {
		writeAPIError(w, http.StatusBadRequest, "empty delta: no mutations specified")
		return
	}

	// Budget enforcement runs after the writer lock is released (defers
	// run LIFO), so this request's own tenant lock is free by the time
	// eviction probes victims.
	defer h.reg.enforceBudget(t)
	// Writer side of the tenant's graph lock: mutation and its
	// certification run exclusive of this tenant's in-flight reads
	// (query/validate/revalidate) — other tenants are untouched.
	if err := h.reg.wlock(t); err != nil {
		writeAPIError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer t.gmu.Unlock()

	u, err := t.g.Apply(d)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "applying delta: "+err.Error())
		return
	}
	// The graph mutated (even a later requireValid rollback replays
	// inverse mutations and advances the epoch), so persist the snapshot
	// and refresh the cached stats on every path out of this handler.
	// Deferred after the lock acquisition, so it runs before the writer
	// lock is released.
	defer h.persistTenant(t)
	defer t.noteGraph()
	resp := applyResponse{
		APIVersion: apiVersion,
		Applied:    true,
		Epoch:      t.g.Epoch(),
	}
	for _, n := range u.NewNodes() {
		resp.NewNodes = append(resp.NewNodes, int64(n))
	}
	for _, e := range u.NewEdges() {
		resp.NewEdges = append(resp.NewEdges, int64(e))
	}
	tc := u.Touched()
	for _, n := range tc.Nodes {
		resp.Touched.Nodes = append(resp.Touched.Nodes, int64(n))
	}
	for _, e := range tc.Edges {
		resp.Touched.Edges = append(resp.Touched.Edges, int64(e))
	}
	resp.Touched.Labels = tc.Labels

	if !req.Revalidate && !req.RequireValid {
		writeJSON(w, http.StatusOK, resp)
		return
	}

	t.valMu.RLock()
	prev := t.lastResult
	t.valMu.RUnlock()
	start := time.Now()
	res := validate.Revalidate(r.Context(), t.s, t.g, prev,
		validate.DeltaFor(tc), validate.Options{Program: t.prog, CollectTimings: true})
	elapsed := time.Since(start)
	h.metrics.recordValidation(t.name, res.RuleTime, res.Sched)

	if req.RequireValid && res.Incomplete {
		// The run was cut short (request timeout / client gone): the
		// graph cannot be certified, so the commit condition fails.
		if err := u.Undo(); err != nil {
			writeAPIError(w, http.StatusInternalServerError, "rolling back uncertified delta: "+err.Error())
			return
		}
		writeAPIError(w, http.StatusServiceUnavailable,
			"validation was cancelled before completing; delta rolled back")
		return
	}
	vr := t.validationResponse(res, "strong", elapsed, true)
	if req.RequireValid && !res.OK() {
		if err := u.Undo(); err != nil {
			writeAPIError(w, http.StatusInternalServerError, "rolling back invalid delta: "+err.Error())
			return
		}
		resp.Applied = false
		resp.Epoch = t.g.Epoch()
		resp.Validation = &vr
		writeJSON(w, http.StatusConflict, resp)
		return
	}
	if !res.Incomplete {
		t.valMu.Lock()
		t.lastResult = res
		t.valMu.Unlock()
	}
	resp.Validation = &vr
	writeJSON(w, http.StatusOK, resp)
}
