package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// tenantCitySDL matches the schema newTestHandler seeds the default
// tenant with, so cross-tenant comparisons exercise identical rules.
const tenantCitySDL = `
type City @key(fields: ["name"]) {
	name: String! @required
	twin: [City] @distinct @noLoops
}`

// tenantCityGraphJSON is the default tenant's graph in the pg JSON
// format: two cities and one twin edge.
const tenantCityGraphJSON = `{
	"nodes": [
		{"id": "lk", "label": "City", "properties": {"name": "Linköping"}},
		{"id": "ams", "label": "City", "properties": {"name": "Amsterdam"}}
	],
	"edges": [{"source": "lk", "target": "ams", "label": "twin"}]
}`

// tenantPutBody builds a PUT /tenants/{name} body for the city schema,
// optionally with the two-city graph.
func tenantPutBody(t *testing.T, withGraph bool) string {
	t.Helper()
	req := map[string]any{"schema": tenantCitySDL}
	if withGraph {
		req["graph"] = map[string]any{"json": json.RawMessage(tenantCityGraphJSON)}
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// doRaw issues a request against the mux and returns the recorder.
func doRaw(t *testing.T, mux http.Handler, method, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func decodeInto(t *testing.T, rec *httptest.ResponseRecorder, dst any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), dst); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
}

func TestTenantLifecycle(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()

	// Create.
	rec := doRaw(t, mux, "PUT", "/tenants/alpha", tenantPutBody(t, true))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", rec.Code, rec.Body.String())
	}
	var created tenantInfoResponse
	decodeInto(t, rec, &created)
	if created.APIVersion != apiVersion || created.Tenant.Name != "alpha" {
		t.Fatalf("create response: %+v", created)
	}
	if created.Tenant.Nodes != 2 || created.Tenant.Edges != 1 || !created.Tenant.Resident {
		t.Errorf("created tenant: %+v", created.Tenant)
	}

	// Introspect.
	rec = doRaw(t, mux, "GET", "/tenants/alpha", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("get: status %d: %s", rec.Code, rec.Body.String())
	}
	rec = doRaw(t, mux, "GET", "/tenants", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list: status %d", rec.Code)
	}
	var list tenantListResponse
	decodeInto(t, rec, &list)
	if len(list.Tenants) != 2 || list.Tenants[0].Name != "alpha" || list.Tenants[1].Name != DefaultTenant {
		t.Fatalf("list: %+v", list)
	}
	if list.Resident != 2 || list.Evictions != 0 {
		t.Errorf("registry stats: %+v", list)
	}

	// The new tenant serves queries and validation independently.
	rec = doRaw(t, mux, "POST", "/tenants/alpha/graphql", `{"query": "{ allCities { name } }"}`)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "Amsterdam") {
		t.Fatalf("alpha query: %d %s", rec.Code, rec.Body.String())
	}
	rec = doRaw(t, mux, "POST", "/tenants/alpha/validate", `{}`)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok": true`) {
		t.Fatalf("alpha validate: %d %s", rec.Code, rec.Body.String())
	}

	// Mutating alpha does not move the default tenant.
	rec = doRaw(t, mux, "POST", "/tenants/alpha/graph/apply",
		`{"addNodes": [{"label": "City", "props": {"name": "Utrecht"}}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("alpha apply: %d %s", rec.Code, rec.Body.String())
	}
	if n := h.def().g.NumNodes(); n != 2 {
		t.Errorf("default tenant grew with alpha's mutation: %d nodes", n)
	}
	if n := h.reg.get("alpha").g.NumNodes(); n != 3 {
		t.Errorf("alpha did not grow: %d nodes", n)
	}

	// Replace: PUT on an existing name swaps the tenant wholesale.
	rec = doRaw(t, mux, "PUT", "/tenants/alpha", tenantPutBody(t, false))
	if rec.Code != http.StatusOK {
		t.Fatalf("replace: status %d: %s", rec.Code, rec.Body.String())
	}
	var replaced tenantInfoResponse
	decodeInto(t, rec, &replaced)
	if replaced.Tenant.Nodes != 0 || replaced.Tenant.Edges != 0 {
		t.Errorf("replaced tenant kept old graph: %+v", replaced.Tenant)
	}

	// Schema replacement keeps the graph, resets the validation cache.
	rec = doRaw(t, mux, "POST", "/tenants/alpha/schema",
		`{"schema": "type Town @key(fields: [\"name\"]) { name: String! @required }"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("schema replace: %d %s", rec.Code, rec.Body.String())
	}
	rec = doRaw(t, mux, "GET", "/tenants/alpha/schema", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "allTowns") {
		t.Fatalf("replaced schema: %d %s", rec.Code, rec.Body.String())
	}
	rec = doRaw(t, mux, "POST", "/tenants/alpha/revalidate", `{"nodes": []}`)
	if rec.Code != http.StatusConflict {
		t.Errorf("revalidate after schema swap should need a fresh full run: %d %s", rec.Code, rec.Body.String())
	}

	// Delete.
	rec = doRaw(t, mux, "DELETE", "/tenants/alpha", "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"deleted": "alpha"`) {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body.String())
	}
	for _, probe := range []struct{ method, url string }{
		{"GET", "/tenants/alpha"},
		{"DELETE", "/tenants/alpha"},
		{"POST", "/tenants/alpha/validate"},
	} {
		rec = doRaw(t, mux, probe.method, probe.url, "{}")
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s %s after delete: status %d", probe.method, probe.url, rec.Code)
		}
	}
}

func TestTenantPutErrors(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	cases := []struct {
		name, method, url, body, want string
		status                        int
	}{
		{"bad name", "PUT", "/tenants/-alpha", tenantPutBody(t, false), "invalid tenant name", http.StatusBadRequest},
		{"no schema", "PUT", "/tenants/alpha", `{}`, "no schema provided", http.StatusBadRequest},
		{"bad version", "PUT", "/tenants/alpha", `{"apiVersion": "v2", "schema": "type T { x: Int }"}`, "unsupported apiVersion", http.StatusBadRequest},
		{"unknown field", "PUT", "/tenants/alpha", `{"schema": "type T { x: Int }", "nope": 1}`, "not valid JSON", http.StatusBadRequest},
		{"two graph sources", "PUT", "/tenants/alpha", `{"schema": "type T { x: Int }", "graph": {"json": {"nodes": []}, "snapshot": "x.pgsnap"}}`, "one source", http.StatusBadRequest},
		{"half a CSV", "PUT", "/tenants/alpha", `{"schema": "type T { x: Int }", "graph": {"nodesCsv": "id,label"}}`, "both nodesCsv and edgesCsv", http.StatusBadRequest},
		{"broken schema", "PUT", "/tenants/alpha", `{"schema": "type {"}`, "parsing schema", http.StatusBadRequest},
		{"bad method", "PATCH", "/tenants/alpha", "", "use GET, PUT, or DELETE", http.StatusMethodNotAllowed},
		{"list bad method", "POST", "/tenants", "", "use GET", http.StatusMethodNotAllowed},
		{"schema on unknown tenant", "POST", "/tenants/ghost/schema", `{"schema": "type T { x: Int }"}`, "unknown tenant", http.StatusNotFound},
	}
	for _, c := range cases {
		rec := doRaw(t, mux, c.method, c.url, c.body)
		if rec.Code != c.status || !strings.Contains(rec.Body.String(), c.want) {
			t.Errorf("%s: status %d body %s (want %d containing %q)", c.name, rec.Code, rec.Body.String(), c.status, c.want)
		}
		var envelope errorResponse
		decodeInto(t, rec, &envelope)
		if envelope.APIVersion != apiVersion || envelope.Error == "" || len(envelope.Errors) != 1 {
			t.Errorf("%s: error not in the v1 envelope: %s", c.name, rec.Body.String())
		}
	}
	// None of the failures created the tenant.
	if h.reg.has("alpha") || h.reg.has("-alpha") {
		t.Error("a rejected PUT left a tenant behind")
	}
}

// TestTenantWriterLockIsolation pins the core tenancy guarantee
// deterministically: with one tenant's writer lock held (a mutation in
// flight), every other tenant — and the registry listing — keeps
// serving.
func TestTenantWriterLockIsolation(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	if rec := doRaw(t, mux, "PUT", "/tenants/alpha", tenantPutBody(t, true)); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}

	def := h.def()
	def.gmu.Lock() // a long-running /graph/apply on the default tenant
	defer def.gmu.Unlock()

	done := make(chan string, 4)
	probe := func(method, url, body, want string) {
		rec := doRaw(t, mux, method, url, body)
		if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), want) {
			done <- fmt.Sprintf("%s %s: status %d body %s", method, url, rec.Code, rec.Body.String())
			return
		}
		done <- ""
	}
	go probe("POST", "/tenants/alpha/validate", `{}`, `"ok": true`)
	go probe("POST", "/tenants/alpha/graphql", `{"query": "{ allCities { name } }"}`, "Amsterdam")
	go probe("GET", "/tenants", "", `"name": "alpha"`)
	go probe("GET", "/metrics", "", "pgschema_registry_tenants")

	timeout := time.After(10 * time.Second)
	for i := 0; i < 4; i++ {
		select {
		case msg := <-done:
			if msg != "" {
				t.Error(msg)
			}
		case <-timeout:
			t.Fatal("request on another tenant blocked behind the default tenant's writer lock")
		}
	}
}

// TestTenantConcurrentMutationAndReads drives sustained mutations on
// one tenant against reads on another; run under -race (the tier-1
// `make race` gate does) it also proves the lock discipline sound.
func TestTenantConcurrentMutationAndReads(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	if rec := doRaw(t, mux, "PUT", "/tenants/alpha", tenantPutBody(t, true)); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}

	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan string, 3*rounds)
	wg.Add(3)
	go func() { // writer on the default tenant, via the legacy route
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			body := fmt.Sprintf(`{"addNodes": [{"label": "City", "props": {"name": "W%d"}}], "revalidate": true}`, i)
			rec := doRaw(t, mux, "POST", "/graph/apply", body)
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("apply %d: status %d body %s", i, rec.Code, rec.Body.String())
			}
		}
	}()
	go func() { // reader on alpha
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			rec := doRaw(t, mux, "POST", "/tenants/alpha/graphql", `{"query": "{ allCities { name } }"}`)
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("alpha query %d: status %d", i, rec.Code)
			}
		}
	}()
	go func() { // validator on alpha
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			rec := doRaw(t, mux, "POST", "/tenants/alpha/validate", `{}`)
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("alpha validate %d: status %d", i, rec.Code)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if n := h.def().g.NumNodes(); n != 2+rounds {
		t.Errorf("default tenant: %d nodes, want %d", n, 2+rounds)
	}
	if n := h.reg.get("alpha").g.NumNodes(); n != 2 {
		t.Errorf("alpha mutated by default tenant's applies: %d nodes", n)
	}
}

// TestTenantEvictionAndReload exercises the memory budget: creating a
// second tenant past the budget evicts the coldest persisted one, and
// the evicted tenant transparently reloads from its snapshot on the
// next request that needs the graph.
func TestTenantEvictionAndReload(t *testing.T) {
	dir := t.TempDir()
	h, err := NewRegistry(RegistryConfig{
		Config:       Config{SnapshotDir: dir},
		MemoryBudget: 1, // everything is over budget: at most the active tenant stays
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := h.Mux()

	if rec := doRaw(t, mux, "PUT", "/tenants/a", tenantPutBody(t, true)); rec.Code != http.StatusCreated {
		t.Fatalf("create a: %d %s", rec.Code, rec.Body.String())
	}
	if rec := doRaw(t, mux, "PUT", "/tenants/b", tenantPutBody(t, true)); rec.Code != http.StatusCreated {
		t.Fatalf("create b: %d %s", rec.Code, rec.Body.String())
	}

	// Creating b pushed the registry over budget; a (older, persisted,
	// not the acting tenant) was evicted.
	rec := doRaw(t, mux, "GET", "/tenants", "")
	var list tenantListResponse
	decodeInto(t, rec, &list)
	if len(list.Tenants) != 2 {
		t.Fatalf("list: %+v", list)
	}
	byName := map[string]tenantInfo{}
	for _, ti := range list.Tenants {
		byName[ti.Name] = ti
	}
	if byName["a"].Resident || byName["a"].MemoryBytes != 0 {
		t.Errorf("a should be evicted: %+v", byName["a"])
	}
	if !byName["b"].Resident {
		t.Errorf("b should be resident: %+v", byName["b"])
	}
	if list.Evictions < 1 {
		t.Errorf("evictions counter: %+v", list)
	}
	// Eviction keeps the last observed shape visible without a reload.
	if byName["a"].Nodes != 2 || byName["a"].Edges != 1 || !byName["a"].Persisted {
		t.Errorf("evicted a lost its cached shape: %+v", byName["a"])
	}

	// The schema is served without forcing the graph back in.
	if rec := doRaw(t, mux, "GET", "/tenants/a/schema", ""); rec.Code != http.StatusOK {
		t.Fatalf("schema of evicted tenant: %d", rec.Code)
	}
	if h.reg.get("a").resident() {
		t.Error("GET /schema forced the evicted graph resident")
	}

	// A request that needs the graph reloads it transparently.
	rec = doRaw(t, mux, "POST", "/tenants/a/validate", `{}`)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok": true`) {
		t.Fatalf("validate on evicted tenant: %d %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"nodes": 2`) {
		t.Errorf("reloaded graph shape: %s", rec.Body.String())
	}
	rec = doRaw(t, mux, "GET", "/tenants", "")
	decodeInto(t, rec, &list)
	if list.Reloads < 1 {
		t.Errorf("reloads counter: %+v", list)
	}

	// And a reloaded tenant still accepts mutations.
	rec = doRaw(t, mux, "POST", "/tenants/a/graph/apply",
		`{"addNodes": [{"label": "City", "props": {"name": "Utrecht"}}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("apply after reload: %d %s", rec.Code, rec.Body.String())
	}
}

// TestTenantEvictionNeedsPersistence: without a snapshot directory
// there is nothing to reload from, so the budget never evicts.
func TestTenantEvictionNeedsPersistence(t *testing.T) {
	h, err := NewRegistry(RegistryConfig{MemoryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	mux := h.Mux()
	for _, name := range []string{"a", "b"} {
		if rec := doRaw(t, mux, "PUT", "/tenants/"+name, tenantPutBody(t, true)); rec.Code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", name, rec.Code, rec.Body.String())
		}
	}
	rec := doRaw(t, mux, "GET", "/tenants", "")
	var list tenantListResponse
	decodeInto(t, rec, &list)
	if list.Resident != 2 || list.Evictions != 0 {
		t.Errorf("unpersistable tenants were evicted: %+v", list)
	}
}

// TestRegistryRestartRestore: tenants created at runtime come back
// after a restart with the same snapshot directory — schema from
// <name>.graphql, graph from <name>.pgsnap — and explicit seeds win
// over persisted state.
func TestRegistryRestartRestore(t *testing.T) {
	dir := t.TempDir()
	h1, err := NewRegistry(RegistryConfig{Config: Config{SnapshotDir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	mux1 := h1.Mux()
	if rec := doRaw(t, mux1, "PUT", "/tenants/alpha", tenantPutBody(t, true)); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	for _, f := range []string{TenantSnapshotFile("alpha"), tenantSchemaFile("alpha")} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("persisted file %s: %v", f, err)
		}
	}

	// Restart: no seeds, same directory.
	h2, err := NewRegistry(RegistryConfig{Config: Config{SnapshotDir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	mux2 := h2.Mux()
	rec := doRaw(t, mux2, "GET", "/tenants/alpha", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("restored tenant: %d %s", rec.Code, rec.Body.String())
	}
	var info tenantInfoResponse
	decodeInto(t, rec, &info)
	if info.Tenant.Nodes != 2 || info.Tenant.Edges != 1 || !info.Tenant.Persisted {
		t.Errorf("restored tenant shape: %+v", info.Tenant)
	}
	rec = doRaw(t, mux2, "POST", "/tenants/alpha/graphql", `{"query": "{ allCities { name } }"}`)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "Linköping") {
		t.Fatalf("query on restored tenant: %d %s", rec.Code, rec.Body.String())
	}

	// Restart with an explicit seed of the same name: the seed wins.
	h3, err := NewRegistry(RegistryConfig{
		Config: Config{SnapshotDir: dir},
		Seeds:  []TenantSeed{{Name: "alpha", SDL: tenantCitySDL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec = doRaw(t, h3.Mux(), "GET", "/tenants/alpha", "")
	decodeInto(t, rec, &info)
	if info.Tenant.Nodes != 0 {
		t.Errorf("seed should shadow the persisted graph: %+v", info.Tenant)
	}
}

// TestMetricsTenantSeries: /metrics carries per-tenant series for real
// tenants (legacy routes attributed to "default"), folds tenant names
// out of route labels, refuses to grow the label space for unknown
// names, and exposes the registry occupancy and eviction counters.
func TestMetricsTenantSeries(t *testing.T) {
	h := newTestHandler(t)
	mux := h.Mux()
	if rec := doRaw(t, mux, "PUT", "/tenants/alpha", tenantPutBody(t, true)); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	if rec := doRaw(t, mux, "POST", "/tenants/alpha/validate", `{}`); rec.Code != http.StatusOK {
		t.Fatalf("alpha validate: %d", rec.Code)
	}
	if rec := doRaw(t, mux, "POST", "/validate", `{}`); rec.Code != http.StatusOK {
		t.Fatalf("legacy validate: %d", rec.Code)
	}
	if rec := doRaw(t, mux, "POST", "/tenants/ghost/validate", `{}`); rec.Code != http.StatusNotFound {
		t.Fatalf("ghost validate: %d", rec.Code)
	}

	rec := doRaw(t, mux, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		// Pre-tenancy series survive unchanged for legacy routes.
		`pgschema_http_requests_total{path="/validate",status="200"} 1`,
		// Tenant routes fold the name out of the label.
		`pgschema_http_requests_total{path="/tenants/{name}/validate",status="200"} 1`,
		`pgschema_http_requests_total{path="/tenants/{name}",status="201"} 1`,
		// Per-tenant attribution, including the legacy alias -> default.
		`pgschema_tenant_requests_total{tenant="alpha",route="/tenants/{name}/validate",status="200"} 1`,
		`pgschema_tenant_requests_total{tenant="default",route="/validate",status="200"} 1`,
		`pgschema_tenant_validation_runs_total{tenant="alpha"} 1`,
		`pgschema_tenant_validation_runs_total{tenant="default"} 1`,
		`pgschema_tenant_request_duration_seconds_count{tenant="alpha"}`,
		// Registry occupancy and eviction counters.
		`pgschema_registry_tenants 2`,
		`pgschema_registry_resident_tenants 2`,
		`pgschema_registry_memory_budget_bytes 0`,
		`pgschema_registry_evictions_total 0`,
		`pgschema_registry_tenant_reloads_total 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(body, `tenant="ghost"`) {
		t.Error("an unknown tenant name leaked into the metric label space")
	}
	if !strings.Contains(body, "pgschema_registry_resident_bytes") {
		t.Error("metrics missing pgschema_registry_resident_bytes")
	}
}
