package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the status code a downstream handler writes,
// for access logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// observe is the outermost middleware: it records request count and
// latency into the metrics registry and emits one structured access-log
// line per request when Config.AccessLog is set.
func (h *Handler) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)
		route, tenant := routeLabel(r.URL.Path)
		if tenant != "" && !h.reg.has(tenant) {
			// Unknown tenant names (scans, typos, deleted tenants) must
			// not grow the per-tenant label space.
			tenant = ""
		}
		h.metrics.recordRequest(route, tenant, rec.status, elapsed)
		if h.cfg.AccessLog != nil {
			h.cfg.AccessLog.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"duration_ms", float64(elapsed)/float64(time.Millisecond),
				"remote", r.RemoteAddr,
			)
		}
	})
}

// recoverPanics turns a panicking handler into a 500 instead of tearing
// down the connection (and, under http.Server, the whole goroutine's
// request). http.ErrAbortHandler is re-raised: it is the sanctioned way
// to abort a response.
func (h *Handler) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			if h.cfg.AccessLog != nil {
				h.cfg.AccessLog.Error("panic in handler",
					"path", r.URL.Path, "value", fmt.Sprint(v), "stack", string(debug.Stack()))
			}
			// Best effort: if the handler already wrote headers this
			// write fails silently, and the client sees a broken body.
			writeAPIError(w, http.StatusInternalServerError, "internal server error")
		}()
		next.ServeHTTP(w, r)
	})
}

// limitInFlight caps concurrently executing requests, shedding excess
// load with 503 instead of queueing it — queued requests would only pile
// up behind a saturated handler and time out anyway.
func (h *Handler) limitInFlight(next http.Handler) http.Handler {
	if h.cfg.MaxInFlight <= 0 {
		return next
	}
	sem := make(chan struct{}, h.cfg.MaxInFlight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			writeAPIError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("server is at its limit of %d concurrent requests", h.cfg.MaxInFlight))
		}
	})
}

// bufferedResponse collects a handler's response in memory so withTimeout
// can discard it wholesale when the deadline fires; only one goroutine
// ever touches it (the handler goroutine), and the parent reads it only
// after that goroutine finished.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.body.Write(p)
}

func (b *bufferedResponse) flushTo(w http.ResponseWriter) {
	dst := w.Header()
	for k, vs := range b.header {
		dst[k] = vs
	}
	if b.status == 0 {
		b.status = http.StatusOK
	}
	w.WriteHeader(b.status)
	_, _ = w.Write(b.body.Bytes())
}

// withTimeout bounds handler execution per request. The handler runs in
// its own goroutine against a buffered response; if the deadline fires
// first the client receives 504 and the response under construction is
// abandoned (the goroutine sees its request context cancelled and its
// writes go nowhere). A panic in the handler goroutine is forwarded to
// the serving goroutine so recoverPanics sees it.
func (h *Handler) withTimeout(next http.Handler) http.Handler {
	d := h.cfg.RequestTimeout
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
		buf := &bufferedResponse{header: make(http.Header)}
		done := make(chan struct{})
		panicked := make(chan any, 1)
		go func() {
			defer func() {
				if v := recover(); v != nil {
					panicked <- v
					return
				}
				close(done)
			}()
			next.ServeHTTP(buf, r)
		}()
		select {
		case <-done:
			buf.flushTo(w)
		case v := <-panicked:
			panic(v)
		case <-ctx.Done():
			writeAPIError(w, http.StatusGatewayTimeout,
				fmt.Sprintf("request exceeded the %s handler timeout", d))
		}
	})
}
