package server

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// updateAPIGolden regenerates the checked-in API response corpus:
//
//	go test ./internal/server -run TestAPIGolden -update-api-golden
var updateAPIGolden = flag.Bool("update-api-golden", false, "rewrite testdata/api goldens from live responses")

// Timing fields vary run to run; everything else in a response must be
// byte-stable. The normalizer zeroes exactly the wall-clock-derived
// fields so that any other drift — field order, casing, envelope shape,
// counts — still fails the comparison.
var (
	timingFieldRE = regexp.MustCompile(`"(elapsedMs|compileMs|planMs|wallMs|busyMs|maxChunkMs|efficiency)": [0-9eE.+-]+`)
	ruleTimeRE    = regexp.MustCompile(`"ruleTimeMs": \{[^{}]*\}`)
)

func normalizeAPIBody(b []byte) []byte {
	b = timingFieldRE.ReplaceAll(b, []byte(`"$1": 0`))
	b = ruleTimeRE.ReplaceAll(b, []byte(`"ruleTimeMs": {}`))
	return b
}

// legacyAliasCases are requests valid against both a legacy top-level
// route and its /tenants/default/... twin. Scheduler telemetry
// (schedStats) is excluded: work stealing makes its chunk/steal counts
// legitimately nondeterministic.
var legacyAliasCases = []struct {
	name, method, path, body string
}{
	{"validate_full", "POST", "/validate", `{}`},
	{"validate_weak", "POST", "/validate", `{"apiVersion": "v1", "mode": "weak"}`},
	{"validate_rules_subset", "POST", "/validate", `{"rules": ["DS1", "DS2"], "maxViolations": 5}`},
	{"validate_bad_mode", "POST", "/validate", `{"mode": "nope"}`},
	{"validate_bad_engine", "POST", "/validate", `{"engine": "warp"}`},
	{"validate_bad_version", "POST", "/validate", `{"apiVersion": "v2"}`},
	{"validate_bad_method", "GET", "/validate", ``},
	{"revalidate_no_cache", "POST", "/revalidate", `{"nodes": [0]}`},
	{"revalidate_unknown_node", "POST", "/revalidate", `{"nodes": [999]}`},
	{"graphql_post", "POST", "/graphql", `{"query": "{ city(name: \"Linköping\") { name twin { name } } }"}`},
	{"graphql_get", "GET", "/graphql?query=%7B%20allCities%20%7B%20name%20%7D%20%7D", ``},
	{"graphql_unknown_field", "POST", "/graphql", `{"query": "{ nope { x } }"}`},
	{"graphql_syntax_error", "POST", "/graphql", `{"query": "{ broken"}`},
	{"graphql_not_json", "POST", "/graphql", `not json`},
	{"graphql_bad_method", "DELETE", "/graphql", ``},
	// No schema_bad_method case: POST /tenants/{name}/schema is a real
	// endpoint (schema replacement) that the read-only legacy /schema
	// deliberately does not alias.
	{"schema_get", "GET", "/schema", ``},
	{"apply_add_node", "POST", "/graph/apply", `{"addNodes": [{"label": "City", "props": {"name": "Utrecht"}}]}`},
	{"apply_add_edge", "POST", "/graph/apply", `{"addEdges": [{"source": 0, "target": 1, "label": "twin"}]}`},
	{"apply_unknown_node", "POST", "/graph/apply", `{"removeNodes": [999]}`},
	{"apply_empty_delta", "POST", "/graph/apply", `{}`},
}

// TestLegacyRoutesByteIdentical proves the compatibility contract of
// the tenancy refactor: every legacy top-level route answers
// byte-for-byte what /tenants/default/<route> answers — status,
// content type, and body (timing fields normalized). Each side runs on
// its own freshly seeded handler so mutating requests see identical
// state.
func TestLegacyRoutesByteIdentical(t *testing.T) {
	for _, c := range legacyAliasCases {
		t.Run(c.name, func(t *testing.T) {
			legacy := doRaw(t, newTestHandler(t).Mux(), c.method, c.path, c.body)
			tenantPath := "/tenants/" + DefaultTenant + c.path
			if i := strings.IndexByte(c.path, '?'); i >= 0 { // keep the query string after the rewritten path
				tenantPath = "/tenants/" + DefaultTenant + c.path[:i] + c.path[i:]
			}
			tenanted := doRaw(t, newTestHandler(t).Mux(), c.method, tenantPath, c.body)

			if legacy.Code != tenanted.Code {
				t.Fatalf("status: legacy %d, tenant route %d", legacy.Code, tenanted.Code)
			}
			if lct, tct := legacy.Header().Get("Content-Type"), tenanted.Header().Get("Content-Type"); lct != tct {
				t.Fatalf("content type: legacy %q, tenant route %q", lct, tct)
			}
			lb := normalizeAPIBody(legacy.Body.Bytes())
			tb := normalizeAPIBody(tenanted.Body.Bytes())
			if string(lb) != string(tb) {
				t.Errorf("bodies differ:\nlegacy %s %s:\n%s\ntenant %s %s:\n%s",
					c.method, c.path, lb, c.method, tenantPath, tb)
			}
		})
	}
}

// apiGoldenCase is one request of the checked-in corpus. Setup
// requests run first against the same fresh handler (their responses
// are discarded) so a case can exercise state like a cached validation
// result or a runtime-created tenant.
type apiGoldenCase struct {
	name   string
	setup  [][3]string
	method string
	path   string
	body   string
}

func apiGoldenCases(t *testing.T) []apiGoldenCase {
	putAlpha := [3]string{"PUT", "/tenants/alpha", tenantPutBody(t, true)}
	return []apiGoldenCase{
		{name: "validate_full", method: "POST", path: "/validate", body: `{}`},
		{name: "validate_weak", method: "POST", path: "/validate", body: `{"apiVersion": "v1", "mode": "weak"}`},
		{name: "validate_bad_mode", method: "POST", path: "/validate", body: `{"mode": "nope"}`},
		{name: "validate_bad_version", method: "POST", path: "/validate", body: `{"apiVersion": "v2"}`},
		{name: "revalidate_no_cache", method: "POST", path: "/revalidate", body: `{"nodes": [0]}`},
		{name: "revalidate_cached", setup: [][3]string{{"POST", "/validate", `{}`}},
			method: "POST", path: "/revalidate", body: `{"nodes": [0]}`},
		{name: "graphql_post", method: "POST", path: "/graphql",
			body: `{"query": "{ city(name: \"Linköping\") { name twin { name } } }"}`},
		{name: "graphql_unknown_field", method: "POST", path: "/graphql", body: `{"query": "{ nope { x } }"}`},
		{name: "graphql_bad_method", method: "DELETE", path: "/graphql"},
		{name: "schema_get", method: "GET", path: "/schema"},
		{name: "apply_add_node", method: "POST", path: "/graph/apply",
			body: `{"addNodes": [{"label": "City", "props": {"name": "Utrecht"}}]}`},
		{name: "apply_revalidate", setup: [][3]string{{"POST", "/validate", `{}`}},
			method: "POST", path: "/graph/apply",
			body: `{"addNodes": [{"label": "City", "props": {"name": "Utrecht"}}], "revalidate": true}`},
		{name: "apply_unknown_node", method: "POST", path: "/graph/apply", body: `{"removeNodes": [999]}`},
		{name: "route_not_found", method: "GET", path: "/nope"},
		{name: "tenants_list_fresh", method: "GET", path: "/tenants"},
		{name: "tenant_put", method: "PUT", path: "/tenants/alpha", body: tenantPutBody(t, true)},
		{name: "tenant_get", setup: [][3]string{putAlpha}, method: "GET", path: "/tenants/alpha"},
		{name: "tenant_get_unknown", method: "GET", path: "/tenants/ghost"},
		{name: "tenant_delete", setup: [][3]string{putAlpha}, method: "DELETE", path: "/tenants/alpha"},
		{name: "tenant_validate", setup: [][3]string{putAlpha}, method: "POST", path: "/tenants/alpha/validate", body: `{}`},
		{name: "tenant_schema_get", setup: [][3]string{putAlpha}, method: "GET", path: "/tenants/alpha/schema"},
		{name: "tenant_put_no_schema", method: "PUT", path: "/tenants/alpha", body: `{}`},
		{name: "tenant_bad_name", method: "PUT", path: "/tenants/-bad", body: `{"schema": "type T { x: Int }"}`},
	}
}

// TestAPIGolden replays the checked-in request corpus against a fresh
// handler per case and compares each response — status, content type,
// normalized body — against testdata/api/<name>.golden. It is the
// regression net for the v1 surface: any change to an envelope, error
// message, status code, or field name shows up as a golden diff. Run
// with -update-api-golden to accept intended changes.
func TestAPIGolden(t *testing.T) {
	for _, c := range apiGoldenCases(t) {
		t.Run(c.name, func(t *testing.T) {
			mux := newTestHandler(t).Mux()
			for _, s := range c.setup {
				rec := doRaw(t, mux, s[0], s[1], s[2])
				if rec.Code >= 400 {
					t.Fatalf("setup %s %s: status %d: %s", s[0], s[1], rec.Code, rec.Body.String())
				}
			}
			rec := doRaw(t, mux, c.method, c.path, c.body)
			got := renderGolden(rec)

			path := filepath.Join("testdata", "api", c.name+".golden")
			if *updateAPIGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-api-golden to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("response drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// renderGolden serializes a recorded response into the golden file
// format: status line, content type, blank line, normalized body.
func renderGolden(rec *httptest.ResponseRecorder) string {
	var b strings.Builder
	fmt.Fprintf(&b, "STATUS %d\n", rec.Code)
	fmt.Fprintf(&b, "CONTENT-TYPE %s\n", rec.Header().Get("Content-Type"))
	if allow := rec.Header().Get("Allow"); allow != "" {
		fmt.Fprintf(&b, "ALLOW %s\n", allow)
	}
	b.WriteString("\n")
	b.Write(normalizeAPIBody(rec.Body.Bytes()))
	return b.String()
}
