package server

import (
	"bytes"
	"net/http"
	"testing"

	"pgschema/internal/parser"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/validate"
	"pgschema/internal/values"
)

// newIngestFixture returns the City schema plus the CSV form of the
// two-city graph the other handler tests host.
func newIngestFixture(t *testing.T) (*schema.Schema, []byte, []byte) {
	t.Helper()
	doc, err := parser.Parse(`
		type City @key(fields: ["name"]) {
			name: String! @required
			twin: [City] @distinct @noLoops
		}`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schema.Build(doc, schema.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := pg.New()
	lk := g.AddNode("City")
	g.SetNodeProp(lk, "name", values.String("Linköping"))
	ams := g.AddNode("City")
	g.SetNodeProp(ams, "name", values.String("Amsterdam"))
	g.MustAddEdge(lk, ams, "twin")
	var nodes, edges bytes.Buffer
	if err := g.WriteCSV(&nodes, &edges); err != nil {
		t.Fatal(err)
	}
	return s, nodes.Bytes(), edges.Bytes()
}

// TestNewFromCSV pins the validate-on-ingest construction path: the
// handler comes up with the streamed graph, reports the ingest
// validation result, and — because that run is a full strong pass —
// /revalidate answers incrementally with no prior /validate request
// (a New-built handler answers 409 there until /validate runs).
func TestNewFromCSV(t *testing.T) {
	s, nodes, edges := newIngestFixture(t)
	h, g, res, err := NewFromCSV(s, bytes.NewReader(nodes), bytes.NewReader(edges), Config{})
	if err != nil {
		t.Fatalf("NewFromCSV: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("graph shape %d nodes / %d edges, want 2 / 1", g.NumNodes(), g.NumEdges())
	}
	if res == nil || !res.OK() {
		t.Fatalf("ingest validation result %+v, want conformant", res)
	}
	if h.def().lastResult != res {
		t.Fatal("ingest run did not seed the /revalidate cache")
	}

	// The seeded cache makes the handler immediately revalidatable.
	mux := h.Mux()
	rec, out := postJSON(t, mux, "/revalidate", `{"nodes": [0]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("revalidate on a fresh NewFromCSV handler: status %d: %s", rec.Code, rec.Body.String())
	}
	if !out.OK {
		t.Errorf("revalidate reported violations on a conformant graph: %+v", out)
	}

	// The ingest result must match a direct run over the same graph.
	direct := validate.Validate(s, g, validate.Options{})
	if got, want := len(res.Violations), len(direct.Violations); got != want {
		t.Errorf("ingest violations %d, want %d (direct run)", got, want)
	}
}

// TestNewFromCSVLoadError pins that loader diagnostics pass through
// NewFromCSV with the file role and line intact.
func TestNewFromCSVLoadError(t *testing.T) {
	s, nodes, _ := newIngestFixture(t)
	h, g, res, err := NewFromCSV(s, bytes.NewReader(nodes),
		bytes.NewReader([]byte("src,dst\n")), Config{})
	if h != nil || g != nil || res != nil {
		t.Fatal("load error must not produce a handler, graph, or result")
	}
	want := "loading graph CSV: pg: edge CSV header must start with source,target,label"
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %s", err, want)
	}
}

// TestNewFromCSVViolations pins that a non-conformant ingest still
// builds a serving handler and surfaces the violations in the result.
func TestNewFromCSVViolations(t *testing.T) {
	s, _, _ := newIngestFixture(t)
	nodes := []byte("id,label,name\nn0,City,\"Linköping\"\nn1,City\n")
	edges := []byte("source,target,label\n")
	h, _, res, err := NewFromCSV(s, bytes.NewReader(nodes), bytes.NewReader(edges), Config{})
	if err != nil {
		t.Fatalf("NewFromCSV: %v", err)
	}
	if res.OK() || len(res.Violations) == 0 {
		t.Fatalf("missing required name not reported at ingest: %+v", res)
	}
	// The seeded cache carries the violations into /revalidate.
	rec, out := postJSON(t, h.Mux(), "/revalidate", `{"nodes": [1]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("revalidate: status %d: %s", rec.Code, rec.Body.String())
	}
	if out.OK {
		t.Error("revalidate lost the ingest-time violation")
	}
}
