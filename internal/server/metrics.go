package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"pgschema/internal/validate"
)

// latencyBuckets are the cumulative histogram bounds for request
// latency, exponential from 1ms to 10s.
var latencyBuckets = []time.Duration{
	1 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// histogram is a fixed-bucket latency histogram. counts[i] holds
// observations ≤ latencyBuckets[i]; the implicit +Inf bucket is count.
type histogram struct {
	counts []int64
	sum    time.Duration
	count  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets))}
}

func (h *histogram) observe(d time.Duration) {
	h.sum += d
	h.count++
	for i, le := range latencyBuckets {
		if d <= le {
			h.counts[i]++
		}
	}
}

// tenantStats accumulates one tenant's request and validation activity.
// Latency is sum/count only — full per-tenant histograms would multiply
// the label space by the bucket count.
type tenantStats struct {
	requests       map[string]map[int]int64 // route -> status -> count
	latencySum     time.Duration
	latencyCount   int64
	validationRuns int64
}

// metrics is the in-process registry behind GET /metrics: request counts
// and latency by route, per-tenant request/validation accounting, plus
// validation run counts and cumulative per-rule timings.
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]int64 // route -> status -> count
	latency  map[string]*histogram    // route -> histogram
	tenants  map[string]*tenantStats  // tenant -> its accounting

	validationRuns int64
	ruleTime       map[validate.Rule]time.Duration

	// Scheduler telemetry, accumulated across every run that dispatched
	// on the chunk scheduler; lastEfficiency is the most recent run's
	// parallel efficiency (1.0 = perfectly busy workers).
	schedChunks    int64
	schedSteals    int64
	schedBusy      time.Duration
	schedWall      time.Duration
	lastEfficiency float64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[int]int64),
		latency:  make(map[string]*histogram),
		tenants:  make(map[string]*tenantStats),
		ruleTime: make(map[validate.Rule]time.Duration),
	}
}

// tenantSubRoutes are the per-tenant endpoints, as they appear after
// the /tenants/{name}/ prefix.
var tenantSubRoutes = map[string]bool{
	"graphql":     true,
	"schema":      true,
	"validate":    true,
	"revalidate":  true,
	"graph/apply": true,
}

// routeLabel folds a request path into a bounded route label (tenant
// names replaced by the {name} placeholder, unknown paths by "other")
// and extracts the tenant the request addresses ("" when none — the
// legacy top-level routes address the default tenant).
func routeLabel(path string) (route, tenant string) {
	if path == "/tenants" {
		return "/tenants", ""
	}
	if rest, ok := strings.CutPrefix(path, "/tenants/"); ok {
		name, sub, nested := strings.Cut(rest, "/")
		switch {
		case !nested:
			return "/tenants/{name}", name
		case tenantSubRoutes[sub]:
			return "/tenants/{name}/" + sub, name
		default:
			return "other", ""
		}
	}
	switch path {
	case "/graphql", "/schema", "/validate", "/revalidate", "/graph/apply":
		return path, DefaultTenant
	case "/metrics", "/healthz":
		return path, ""
	default:
		return "other", ""
	}
}

// recordRequest records a request under its pre-folded route label (see
// routeLabel), and additionally under its tenant when one is named —
// the caller guards that the tenant actually exists, so scanned or
// mistyped names cannot grow the label space.
func (m *metrics) recordRequest(route, tenant string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[route]
	if byStatus == nil {
		byStatus = make(map[int]int64)
		m.requests[route] = byStatus
	}
	byStatus[status]++
	hist := m.latency[route]
	if hist == nil {
		hist = newHistogram()
		m.latency[route] = hist
	}
	hist.observe(d)
	if tenant != "" {
		ts := m.tenantStats(tenant)
		byStatus := ts.requests[route]
		if byStatus == nil {
			byStatus = make(map[int]int64)
			ts.requests[route] = byStatus
		}
		byStatus[status]++
		ts.latencySum += d
		ts.latencyCount++
	}
}

// tenantStats returns the named tenant's accounting, creating it on
// first use. Caller holds m.mu.
func (m *metrics) tenantStats(tenant string) *tenantStats {
	ts := m.tenants[tenant]
	if ts == nil {
		ts = &tenantStats{requests: make(map[string]map[int]int64)}
		m.tenants[tenant] = ts
	}
	return ts
}

func (m *metrics) recordValidation(tenant string, ruleTime map[validate.Rule]time.Duration, sched *validate.SchedStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.validationRuns++
	if tenant != "" {
		m.tenantStats(tenant).validationRuns++
	}
	for rule, d := range ruleTime {
		m.ruleTime[rule] += d
	}
	if sched != nil {
		m.schedChunks += int64(sched.Chunks)
		m.schedSteals += int64(sched.Steals)
		m.schedBusy += sched.Busy
		m.schedWall += sched.Wall
		m.lastEfficiency = sched.Efficiency()
	}
}

// render writes the registry in the Prometheus text exposition format,
// with series sorted for deterministic output. reg carries the tenant
// registry's occupancy and eviction counters.
func (m *metrics) render(w io.Writer, reg registryStats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	var b strings.Builder
	b.WriteString("# HELP pgschema_http_requests_total Requests served, by path and status.\n")
	b.WriteString("# TYPE pgschema_http_requests_total counter\n")
	for _, path := range sortedKeys(m.requests) {
		byStatus := m.requests[path]
		statuses := make([]int, 0, len(byStatus))
		for s := range byStatus {
			statuses = append(statuses, s)
		}
		sort.Ints(statuses)
		for _, s := range statuses {
			fmt.Fprintf(&b, "pgschema_http_requests_total{path=%q,status=\"%d\"} %d\n", path, s, byStatus[s])
		}
	}

	b.WriteString("# HELP pgschema_http_request_duration_seconds Request latency, by path.\n")
	b.WriteString("# TYPE pgschema_http_request_duration_seconds histogram\n")
	for _, path := range sortedKeys(m.latency) {
		hist := m.latency[path]
		for i, le := range latencyBuckets {
			fmt.Fprintf(&b, "pgschema_http_request_duration_seconds_bucket{path=%q,le=\"%g\"} %d\n",
				path, le.Seconds(), hist.counts[i])
		}
		fmt.Fprintf(&b, "pgschema_http_request_duration_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", path, hist.count)
		fmt.Fprintf(&b, "pgschema_http_request_duration_seconds_sum{path=%q} %g\n", path, hist.sum.Seconds())
		fmt.Fprintf(&b, "pgschema_http_request_duration_seconds_count{path=%q} %d\n", path, hist.count)
	}

	b.WriteString("# HELP pgschema_validation_runs_total Validation runs served by /validate.\n")
	b.WriteString("# TYPE pgschema_validation_runs_total counter\n")
	fmt.Fprintf(&b, "pgschema_validation_runs_total %d\n", m.validationRuns)

	b.WriteString("# HELP pgschema_validation_sched_chunks_total Chunks dispatched by the validation scheduler.\n")
	b.WriteString("# TYPE pgschema_validation_sched_chunks_total counter\n")
	fmt.Fprintf(&b, "pgschema_validation_sched_chunks_total %d\n", m.schedChunks)

	b.WriteString("# HELP pgschema_validation_sched_steals_total Chunks claimed from another worker's segment.\n")
	b.WriteString("# TYPE pgschema_validation_sched_steals_total counter\n")
	fmt.Fprintf(&b, "pgschema_validation_sched_steals_total %d\n", m.schedSteals)

	b.WriteString("# HELP pgschema_validation_sched_busy_seconds_total Summed in-chunk worker time across scheduled runs.\n")
	b.WriteString("# TYPE pgschema_validation_sched_busy_seconds_total counter\n")
	fmt.Fprintf(&b, "pgschema_validation_sched_busy_seconds_total %g\n", m.schedBusy.Seconds())

	b.WriteString("# HELP pgschema_validation_sched_wall_seconds_total Summed wall time of scheduled runs.\n")
	b.WriteString("# TYPE pgschema_validation_sched_wall_seconds_total counter\n")
	fmt.Fprintf(&b, "pgschema_validation_sched_wall_seconds_total %g\n", m.schedWall.Seconds())

	b.WriteString("# HELP pgschema_validation_sched_efficiency Parallel efficiency of the most recent scheduled run.\n")
	b.WriteString("# TYPE pgschema_validation_sched_efficiency gauge\n")
	fmt.Fprintf(&b, "pgschema_validation_sched_efficiency %g\n", m.lastEfficiency)

	b.WriteString("# HELP pgschema_validation_rule_duration_seconds_total Cumulative time spent per validation rule.\n")
	b.WriteString("# TYPE pgschema_validation_rule_duration_seconds_total counter\n")
	rules := make([]string, 0, len(m.ruleTime))
	for rule := range m.ruleTime {
		rules = append(rules, string(rule))
	}
	sort.Strings(rules)
	for _, rule := range rules {
		fmt.Fprintf(&b, "pgschema_validation_rule_duration_seconds_total{rule=%q} %g\n",
			rule, m.ruleTime[validate.Rule(rule)].Seconds())
	}

	b.WriteString("# HELP pgschema_tenant_requests_total Requests served, by tenant, route, and status.\n")
	b.WriteString("# TYPE pgschema_tenant_requests_total counter\n")
	tenantNames := sortedKeys(m.tenants)
	for _, tenant := range tenantNames {
		ts := m.tenants[tenant]
		for _, route := range sortedKeys(ts.requests) {
			byStatus := ts.requests[route]
			statuses := make([]int, 0, len(byStatus))
			for s := range byStatus {
				statuses = append(statuses, s)
			}
			sort.Ints(statuses)
			for _, s := range statuses {
				fmt.Fprintf(&b, "pgschema_tenant_requests_total{tenant=%q,route=%q,status=\"%d\"} %d\n",
					tenant, route, s, byStatus[s])
			}
		}
	}

	b.WriteString("# HELP pgschema_tenant_request_duration_seconds Summed request latency, by tenant.\n")
	b.WriteString("# TYPE pgschema_tenant_request_duration_seconds summary\n")
	for _, tenant := range tenantNames {
		ts := m.tenants[tenant]
		fmt.Fprintf(&b, "pgschema_tenant_request_duration_seconds_sum{tenant=%q} %g\n", tenant, ts.latencySum.Seconds())
		fmt.Fprintf(&b, "pgschema_tenant_request_duration_seconds_count{tenant=%q} %d\n", tenant, ts.latencyCount)
	}

	b.WriteString("# HELP pgschema_tenant_validation_runs_total Validation runs, by tenant.\n")
	b.WriteString("# TYPE pgschema_tenant_validation_runs_total counter\n")
	for _, tenant := range tenantNames {
		fmt.Fprintf(&b, "pgschema_tenant_validation_runs_total{tenant=%q} %d\n", tenant, m.tenants[tenant].validationRuns)
	}

	b.WriteString("# HELP pgschema_registry_tenants Tenants hosted by the registry.\n")
	b.WriteString("# TYPE pgschema_registry_tenants gauge\n")
	fmt.Fprintf(&b, "pgschema_registry_tenants %d\n", reg.tenants)

	b.WriteString("# HELP pgschema_registry_resident_tenants Tenants whose columnar snapshot is resident in memory.\n")
	b.WriteString("# TYPE pgschema_registry_resident_tenants gauge\n")
	fmt.Fprintf(&b, "pgschema_registry_resident_tenants %d\n", reg.resident)

	b.WriteString("# HELP pgschema_registry_resident_bytes Estimated bytes of resident tenant snapshots.\n")
	b.WriteString("# TYPE pgschema_registry_resident_bytes gauge\n")
	fmt.Fprintf(&b, "pgschema_registry_resident_bytes %d\n", reg.residentBytes)

	b.WriteString("# HELP pgschema_registry_memory_budget_bytes Configured memory budget for resident snapshots (0 = unlimited).\n")
	b.WriteString("# TYPE pgschema_registry_memory_budget_bytes gauge\n")
	fmt.Fprintf(&b, "pgschema_registry_memory_budget_bytes %d\n", reg.budget)

	b.WriteString("# HELP pgschema_registry_evictions_total Tenant snapshots evicted under the memory budget.\n")
	b.WriteString("# TYPE pgschema_registry_evictions_total counter\n")
	fmt.Fprintf(&b, "pgschema_registry_evictions_total %d\n", reg.evictions)

	b.WriteString("# HELP pgschema_registry_tenant_reloads_total Evicted tenant snapshots reloaded on demand.\n")
	b.WriteString("# TYPE pgschema_registry_tenant_reloads_total counter\n")
	fmt.Fprintf(&b, "pgschema_registry_tenant_reloads_total %d\n", reg.reloads)

	_, _ = io.WriteString(w, b.String())
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (h *Handler) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.metrics.render(w, h.reg.stats())
}
