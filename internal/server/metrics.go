package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"pgschema/internal/validate"
)

// latencyBuckets are the cumulative histogram bounds for request
// latency, exponential from 1ms to 10s.
var latencyBuckets = []time.Duration{
	1 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// histogram is a fixed-bucket latency histogram. counts[i] holds
// observations ≤ latencyBuckets[i]; the implicit +Inf bucket is count.
type histogram struct {
	counts []int64
	sum    time.Duration
	count  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets))}
}

func (h *histogram) observe(d time.Duration) {
	h.sum += d
	h.count++
	for i, le := range latencyBuckets {
		if d <= le {
			h.counts[i]++
		}
	}
}

// metrics is the in-process registry behind GET /metrics: request counts
// and latency by route, plus validation run counts and cumulative
// per-rule timings.
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]int64 // route -> status -> count
	latency  map[string]*histogram    // route -> histogram

	validationRuns int64
	ruleTime       map[validate.Rule]time.Duration

	// Scheduler telemetry, accumulated across every run that dispatched
	// on the chunk scheduler; lastEfficiency is the most recent run's
	// parallel efficiency (1.0 = perfectly busy workers).
	schedChunks    int64
	schedSteals    int64
	schedBusy      time.Duration
	schedWall      time.Duration
	lastEfficiency float64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[int]int64),
		latency:  make(map[string]*histogram),
		ruleTime: make(map[validate.Rule]time.Duration),
	}
}

// knownRoutes keeps the metrics label space bounded: arbitrary request
// paths (scans, typos) all fold into "other".
var knownRoutes = map[string]bool{
	"/graphql":    true,
	"/schema":     true,
	"/validate":   true,
	"/revalidate": true,
	"/metrics":    true,
	"/healthz":    true,
}

func (m *metrics) recordRequest(path string, status int, d time.Duration) {
	if !knownRoutes[path] {
		path = "other"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[path]
	if byStatus == nil {
		byStatus = make(map[int]int64)
		m.requests[path] = byStatus
	}
	byStatus[status]++
	hist := m.latency[path]
	if hist == nil {
		hist = newHistogram()
		m.latency[path] = hist
	}
	hist.observe(d)
}

func (m *metrics) recordValidation(ruleTime map[validate.Rule]time.Duration, sched *validate.SchedStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.validationRuns++
	for rule, d := range ruleTime {
		m.ruleTime[rule] += d
	}
	if sched != nil {
		m.schedChunks += int64(sched.Chunks)
		m.schedSteals += int64(sched.Steals)
		m.schedBusy += sched.Busy
		m.schedWall += sched.Wall
		m.lastEfficiency = sched.Efficiency()
	}
}

// render writes the registry in the Prometheus text exposition format,
// with series sorted for deterministic output.
func (m *metrics) render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	var b strings.Builder
	b.WriteString("# HELP pgschema_http_requests_total Requests served, by path and status.\n")
	b.WriteString("# TYPE pgschema_http_requests_total counter\n")
	for _, path := range sortedKeys(m.requests) {
		byStatus := m.requests[path]
		statuses := make([]int, 0, len(byStatus))
		for s := range byStatus {
			statuses = append(statuses, s)
		}
		sort.Ints(statuses)
		for _, s := range statuses {
			fmt.Fprintf(&b, "pgschema_http_requests_total{path=%q,status=\"%d\"} %d\n", path, s, byStatus[s])
		}
	}

	b.WriteString("# HELP pgschema_http_request_duration_seconds Request latency, by path.\n")
	b.WriteString("# TYPE pgschema_http_request_duration_seconds histogram\n")
	for _, path := range sortedKeys(m.latency) {
		hist := m.latency[path]
		for i, le := range latencyBuckets {
			fmt.Fprintf(&b, "pgschema_http_request_duration_seconds_bucket{path=%q,le=\"%g\"} %d\n",
				path, le.Seconds(), hist.counts[i])
		}
		fmt.Fprintf(&b, "pgschema_http_request_duration_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", path, hist.count)
		fmt.Fprintf(&b, "pgschema_http_request_duration_seconds_sum{path=%q} %g\n", path, hist.sum.Seconds())
		fmt.Fprintf(&b, "pgschema_http_request_duration_seconds_count{path=%q} %d\n", path, hist.count)
	}

	b.WriteString("# HELP pgschema_validation_runs_total Validation runs served by /validate.\n")
	b.WriteString("# TYPE pgschema_validation_runs_total counter\n")
	fmt.Fprintf(&b, "pgschema_validation_runs_total %d\n", m.validationRuns)

	b.WriteString("# HELP pgschema_validation_sched_chunks_total Chunks dispatched by the validation scheduler.\n")
	b.WriteString("# TYPE pgschema_validation_sched_chunks_total counter\n")
	fmt.Fprintf(&b, "pgschema_validation_sched_chunks_total %d\n", m.schedChunks)

	b.WriteString("# HELP pgschema_validation_sched_steals_total Chunks claimed from another worker's segment.\n")
	b.WriteString("# TYPE pgschema_validation_sched_steals_total counter\n")
	fmt.Fprintf(&b, "pgschema_validation_sched_steals_total %d\n", m.schedSteals)

	b.WriteString("# HELP pgschema_validation_sched_busy_seconds_total Summed in-chunk worker time across scheduled runs.\n")
	b.WriteString("# TYPE pgschema_validation_sched_busy_seconds_total counter\n")
	fmt.Fprintf(&b, "pgschema_validation_sched_busy_seconds_total %g\n", m.schedBusy.Seconds())

	b.WriteString("# HELP pgschema_validation_sched_wall_seconds_total Summed wall time of scheduled runs.\n")
	b.WriteString("# TYPE pgschema_validation_sched_wall_seconds_total counter\n")
	fmt.Fprintf(&b, "pgschema_validation_sched_wall_seconds_total %g\n", m.schedWall.Seconds())

	b.WriteString("# HELP pgschema_validation_sched_efficiency Parallel efficiency of the most recent scheduled run.\n")
	b.WriteString("# TYPE pgschema_validation_sched_efficiency gauge\n")
	fmt.Fprintf(&b, "pgschema_validation_sched_efficiency %g\n", m.lastEfficiency)

	b.WriteString("# HELP pgschema_validation_rule_duration_seconds_total Cumulative time spent per validation rule.\n")
	b.WriteString("# TYPE pgschema_validation_rule_duration_seconds_total counter\n")
	rules := make([]string, 0, len(m.ruleTime))
	for rule := range m.ruleTime {
		rules = append(rules, string(rule))
	}
	sort.Strings(rules)
	for _, rule := range rules {
		fmt.Fprintf(&b, "pgschema_validation_rule_duration_seconds_total{rule=%q} %g\n",
			rule, m.ruleTime[validate.Rule(rule)].Seconds())
	}

	_, _ = io.WriteString(w, b.String())
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (h *Handler) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.metrics.render(w)
}
