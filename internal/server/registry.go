package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pgschema/internal/apigen"
	"pgschema/internal/parser"
	"pgschema/internal/pg"
	"pgschema/internal/query"
	"pgschema/internal/schema"
	"pgschema/internal/validate"
)

// DefaultTenant is the tenant the legacy top-level routes (/validate,
// /revalidate, /graphql, /graph/apply, /schema) alias: a request to
// /validate is byte-for-byte a request to /tenants/default/validate.
const DefaultTenant = "default"

// tenantNameRE bounds tenant names: they appear in URLs, metric labels,
// and snapshot file names, so they are restricted to a single flat
// path-safe token.
var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_-]{0,63}$`)

// ValidTenantName reports whether name is usable as a tenant name: 1-64
// characters drawn from [A-Za-z0-9_-], starting with an alphanumeric.
func ValidTenantName(name string) bool { return tenantNameRE.MatchString(name) }

// tenant is one hosted (schema, graph) pair with everything the serving
// layer keeps per graph: the compiled validation program, the query plan
// cache, the cached full validation result, and its own readers-writer
// lock — so a mutation on one tenant never stalls another tenant's
// reads.
//
// Locking: gmu guards the graph AND the schema-derived state (s, sdl,
// apiSDL, prog, plans) — reads hold RLock, /graph/apply, schema
// replacement, eviction, and reload hold Lock. valMu guards lastResult
// and is only ever taken inside gmu, never around it. resident()
// means g != nil; an evicted tenant keeps its schema and program (they
// are small) and reloads the graph from its snapshot file on the next
// access.
type tenant struct {
	name string

	gmu    sync.RWMutex
	s      *schema.Schema
	sdl    string // SDL source when known ("" for programmatically built schemas)
	apiSDL string
	prog   *validate.Program
	plans  *query.PlanCache
	g      *pg.Graph

	valMu      sync.RWMutex
	lastResult *validate.Result

	// lastTouch is the registry-clock value of the most recent request
	// that used this tenant; eviction picks the smallest (coldest).
	lastTouch atomic.Int64
	// bytes is the estimated resident footprint of the tenant's columnar
	// snapshot, maintained on load, persist, and reload.
	bytes atomic.Int64
	// persisted reports a current .pgsnap of this tenant exists in the
	// registry's snapshot directory — the precondition for eviction.
	persisted atomic.Bool
	// residentBit mirrors g != nil so that listings, /metrics, and
	// budget enforcement can check residency without touching gmu — a
	// tenant mid-apply (writer lock held) must not stall reporting on
	// other tenants. Flipped only under gmu's writer side.
	residentBit atomic.Bool

	// nodes/edges/epoch mirror the graph so /tenants listings can report
	// an evicted tenant without forcing a reload.
	nodes atomic.Int64
	edges atomic.Int64
	epoch atomic.Uint64
}

// noteGraph refreshes the cached element counts and epoch from the
// resident graph. Called with gmu held (either side — the fields are
// atomics, the graph pointer is what the lock protects).
func (t *tenant) noteGraph() {
	t.nodes.Store(int64(t.g.NumNodes()))
	t.edges.Store(int64(t.g.NumEdges()))
	t.epoch.Store(t.g.Epoch())
}

func (t *tenant) resident() bool { return t.residentBit.Load() }

// setSchema installs schema-derived state. Caller holds gmu exclusively
// (or owns the tenant before publication).
func (t *tenant) setSchema(s *schema.Schema, sdl string, prog *validate.Program) error {
	apiSDL, err := apigen.ExtendSDL(s, apigen.Options{})
	if err != nil {
		if !errors.Is(err, apigen.ErrQueryTypeDeclared) {
			return fmt.Errorf("generating the API schema: %w", err)
		}
		apiSDL = ""
	}
	t.s, t.sdl, t.apiSDL = s, sdl, apiSDL
	if prog == nil {
		prog = validate.Compile(s)
	}
	t.prog = prog
	t.plans = query.NewPlanCache(s, 0)
	return nil
}

// TenantSeed describes a tenant to create at registry construction:
// either a parsed Schema or SDL source (parsed when Schema is nil), an
// optional pre-built graph (nil hosts an empty graph), and an optional
// complete full-strong validation result to seed /revalidate from.
type TenantSeed struct {
	Name   string
	Schema *schema.Schema
	SDL    string
	Graph  *pg.Graph
	Result *validate.Result
}

// RegistryConfig configures a multi-tenant handler: the per-request
// HTTP knobs of Config plus the registry-wide memory budget and the
// tenants to create at startup.
type RegistryConfig struct {
	Config

	// MemoryBudget caps the summed estimated footprint of resident
	// tenant snapshots, in bytes; when an operation pushes the registry
	// over it, the coldest persisted tenants are evicted (their graph
	// and plan cache dropped) until the total fits. Evicted tenants
	// reload transparently from their .pgsnap in Config.SnapshotDir on
	// the next request. 0 disables eviction; eviction also requires
	// SnapshotDir (without a file to reload from, nothing is evictable).
	MemoryBudget int64

	// Seeds are tenants created before the handler serves. A seed named
	// DefaultTenant becomes the target of the legacy top-level routes.
	Seeds []TenantSeed
}

// Registry is the concurrent map of named tenants behind a Handler. All
// tenant lookup, creation, deletion, restart restore, and budget
// eviction go through it.
type Registry struct {
	cfg RegistryConfig

	mu      sync.RWMutex
	tenants map[string]*tenant

	// clock orders tenant touches for LRU eviction; evictions and
	// reloads feed the /metrics registry counters.
	clock     atomic.Int64
	evictions atomic.Int64
	reloads   atomic.Int64
}

func newRegistry(cfg RegistryConfig) (*Registry, error) {
	r := &Registry{cfg: cfg, tenants: make(map[string]*tenant)}
	for _, seed := range cfg.Seeds {
		if _, err := r.create(seed, false); err != nil {
			return nil, fmt.Errorf("seeding tenant %q: %w", seed.Name, err)
		}
	}
	if err := r.restore(); err != nil {
		return nil, err
	}
	return r, nil
}

// create builds and publishes a tenant from a seed. persist additionally
// writes the tenant's schema (and graph, when present) into the
// snapshot directory so a restart — and eviction reload — can recover
// it. An existing tenant of the same name is replaced; in-flight
// requests holding the old tenant finish against the old state.
func (r *Registry) create(seed TenantSeed, persist bool) (*tenant, error) {
	if !ValidTenantName(seed.Name) {
		return nil, fmt.Errorf("invalid tenant name %q (want 1-64 characters of [A-Za-z0-9_-], starting alphanumeric)", seed.Name)
	}
	s := seed.Schema
	if s == nil {
		if seed.SDL == "" {
			return nil, fmt.Errorf("tenant %q: no schema given", seed.Name)
		}
		doc, err := parser.Parse(seed.SDL)
		if err != nil {
			return nil, fmt.Errorf("parsing schema: %w", err)
		}
		s, err = schema.Build(doc, schema.Options{})
		if err != nil {
			return nil, fmt.Errorf("building schema: %w", err)
		}
	}
	t := &tenant{name: seed.Name}
	if err := t.setSchema(s, seed.SDL, nil); err != nil {
		return nil, err
	}
	t.g = seed.Graph
	if t.g == nil {
		t.g = pg.New()
	}
	t.bytes.Store(t.g.Snapshot().MemoryFootprint())
	t.residentBit.Store(true)
	t.noteGraph()
	if seed.Result != nil && !seed.Result.Incomplete && !seed.Result.Truncated {
		t.lastResult = seed.Result
	}
	t.lastTouch.Store(r.clock.Add(1))
	if persist && r.cfg.SnapshotDir != "" {
		if err := r.persistTenant(t); err != nil {
			return nil, err
		}
	}
	r.mu.Lock()
	r.tenants[t.name] = t
	r.mu.Unlock()
	r.enforceBudget(t)
	return t, nil
}

// get returns the named tenant (nil if absent) and stamps its LRU
// clock.
func (r *Registry) get(name string) *tenant {
	r.mu.RLock()
	t := r.tenants[name]
	r.mu.RUnlock()
	if t != nil {
		t.lastTouch.Store(r.clock.Add(1))
	}
	return t
}

// has reports whether the named tenant exists without touching its LRU
// clock — metrics attribution must not keep tenants artificially warm.
func (r *Registry) has(name string) bool {
	r.mu.RLock()
	_, ok := r.tenants[name]
	r.mu.RUnlock()
	return ok
}

// delete removes the named tenant and its persisted files. The tenant
// struct stays valid for requests already holding it.
func (r *Registry) delete(name string) bool {
	r.mu.Lock()
	t, ok := r.tenants[name]
	if ok {
		delete(r.tenants, name)
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	if dir := r.cfg.SnapshotDir; dir != "" {
		os.Remove(filepath.Join(dir, TenantSnapshotFile(t.name)))
		os.Remove(filepath.Join(dir, tenantSchemaFile(t.name)))
	}
	return true
}

// Names returns the hosted tenant names, sorted.
func (r *Registry) Names() []string { return r.names() }

// names returns the tenant names, sorted.
func (r *Registry) names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// registryStats is a point-in-time summary for /metrics and /tenants.
type registryStats struct {
	tenants       int
	resident      int
	residentBytes int64
	budget        int64
	evictions     int64
	reloads       int64
}

func (r *Registry) stats() registryStats {
	r.mu.RLock()
	ts := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	r.mu.RUnlock()
	st := registryStats{
		tenants:   len(ts),
		budget:    r.cfg.MemoryBudget,
		evictions: r.evictions.Load(),
		reloads:   r.reloads.Load(),
	}
	for _, t := range ts {
		if t.resident() {
			st.resident++
			st.residentBytes += t.bytes.Load()
		}
	}
	return st
}

// TenantSnapshotFile is the per-tenant snapshot file name inside
// Config.SnapshotDir: <name>.pgsnap. The pre-tenancy layout used the
// fixed name SnapshotFileName for the single hosted graph; `serve`
// still reads that legacy file at startup as the default tenant's
// snapshot when default.pgsnap is absent.
func TenantSnapshotFile(name string) string { return name + ".pgsnap" }

// tenantSchemaFile is the persisted SDL source for tenants created at
// runtime, so a restart can re-create them: <name>.graphql.
func tenantSchemaFile(name string) string { return name + ".graphql" }

// persistTenant writes the tenant's schema SDL (when known) and current
// graph snapshot into the snapshot directory. Called with the tenant
// unpublished or its writer lock held.
func (r *Registry) persistTenant(t *tenant) error {
	dir := r.cfg.SnapshotDir
	if dir == "" {
		return nil
	}
	if t.sdl != "" {
		if err := atomicWriteFile(filepath.Join(dir, tenantSchemaFile(t.name)), []byte(t.sdl)); err != nil {
			return fmt.Errorf("persisting tenant schema: %w", err)
		}
	}
	if t.g == nil {
		return nil // evicted: the persisted snapshot is already current
	}
	if err := writeSnapshotFile(t.g, filepath.Join(dir, TenantSnapshotFile(t.name))); err != nil {
		return fmt.Errorf("persisting tenant snapshot: %w", err)
	}
	t.persisted.Store(true)
	t.bytes.Store(t.g.Snapshot().MemoryFootprint())
	return nil
}

// restore re-creates tenants persisted by a previous run: every
// <name>.graphql in the snapshot directory (with its <name>.pgsnap when
// present) becomes a tenant again. Seeded names win over persisted
// state — the operator's explicit bootstrap is authoritative.
func (r *Registry) restore() error {
	dir := r.cfg.SnapshotDir
	if dir == "" {
		return nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, ent := range entries {
		name, ok := strings.CutSuffix(ent.Name(), ".graphql")
		if !ok || !ValidTenantName(name) {
			continue
		}
		if r.has(name) {
			continue
		}
		sdl, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return fmt.Errorf("restoring tenant %q: %w", name, err)
		}
		seed := TenantSeed{Name: name, SDL: string(sdl)}
		snapPath := filepath.Join(dir, TenantSnapshotFile(name))
		hasSnap := false
		if st, err := os.Stat(snapPath); err == nil && st.Mode().IsRegular() {
			g, err := pg.OpenSnapshot(snapPath)
			if err != nil {
				return fmt.Errorf("restoring tenant %q snapshot: %w", name, err)
			}
			seed.Graph = g
			hasSnap = true
		}
		t, err := r.create(seed, false)
		if err != nil {
			return fmt.Errorf("restoring tenant %q: %w", name, err)
		}
		t.persisted.Store(hasSnap)
	}
	return nil
}

// rlock acquires the tenant's read lock with the graph resident,
// transparently reloading an evicted snapshot first. On success the
// caller holds t.gmu.RLock and must release it; on error nothing is
// held.
func (r *Registry) rlock(t *tenant) error {
	for {
		t.gmu.RLock()
		if t.g != nil {
			return nil
		}
		t.gmu.RUnlock()
		if err := r.reload(t); err != nil {
			return err
		}
	}
}

// wlock acquires the tenant's writer lock with the graph resident,
// reloading inline if the tenant was evicted.
func (r *Registry) wlock(t *tenant) error {
	t.gmu.Lock()
	if t.g != nil {
		return nil
	}
	if err := r.reloadLocked(t); err != nil {
		t.gmu.Unlock()
		return err
	}
	return nil
}

// reload maps the tenant's persisted snapshot back in after an
// eviction.
func (r *Registry) reload(t *tenant) error {
	t.gmu.Lock()
	defer t.gmu.Unlock()
	if t.g != nil {
		return nil // another request reloaded first
	}
	return r.reloadLocked(t)
}

func (r *Registry) reloadLocked(t *tenant) error {
	path := filepath.Join(r.cfg.SnapshotDir, TenantSnapshotFile(t.name))
	g, err := pg.OpenSnapshot(path)
	if err != nil {
		return fmt.Errorf("reloading evicted tenant %q from %s: %w", t.name, path, err)
	}
	t.g = g
	t.plans = query.NewPlanCache(t.s, 0)
	t.bytes.Store(g.Snapshot().MemoryFootprint())
	t.residentBit.Store(true)
	t.noteGraph()
	r.reloads.Add(1)
	r.enforceBudget(t)
	return nil
}

// enforceBudget evicts the coldest persisted tenants until the summed
// resident footprint fits the memory budget. exclude (the tenant the
// current request operates on) is never evicted. Eviction takes each
// victim's writer lock with TryLock — a tenant busy serving is skipped
// this round rather than risking a lock-order deadlock — so enforcement
// is best-effort per call and converges across calls.
func (r *Registry) enforceBudget(exclude *tenant) {
	budget := r.cfg.MemoryBudget
	if budget <= 0 || r.cfg.SnapshotDir == "" {
		return
	}
	for {
		r.mu.RLock()
		var total int64
		var victims []*tenant
		for _, t := range r.tenants {
			if !t.resident() {
				continue
			}
			total += t.bytes.Load()
			if t != exclude && t.persisted.Load() {
				victims = append(victims, t)
			}
		}
		r.mu.RUnlock()
		if total <= budget || len(victims) == 0 {
			return
		}
		sort.Slice(victims, func(i, j int) bool {
			return victims[i].lastTouch.Load() < victims[j].lastTouch.Load()
		})
		evicted := false
		for _, v := range victims {
			if r.tryEvict(v) {
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// tryEvict drops the tenant's resident graph state (columnar snapshot,
// plan cache, cached validation result) if its writer lock is free. The
// schema and compiled program stay — they are small and reload would
// recompile them identically. The mapped or heap graph memory is
// released to the collector / the OS page cache; the next request
// reloads from the persisted .pgsnap in O(header).
func (r *Registry) tryEvict(t *tenant) bool {
	if !t.gmu.TryLock() {
		return false
	}
	defer t.gmu.Unlock()
	if t.g == nil || !t.persisted.Load() {
		return false
	}
	t.g = nil
	t.plans = nil
	t.residentBit.Store(false)
	t.valMu.Lock()
	t.lastResult = nil
	t.valMu.Unlock()
	t.bytes.Store(0)
	r.evictions.Add(1)
	return true
}

// atomicWriteFile writes data to path via a temp file + rename in the
// same directory, so a crash mid-write never leaves a torn file.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tenant-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeSnapshotFile persists the graph's snapshot to path atomically.
func writeSnapshotFile(g *pg.Graph, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".graph-*.pgsnap")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := pg.WriteSnapshot(tmp, g.Snapshot()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
