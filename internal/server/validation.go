package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"pgschema/internal/pg"
	"pgschema/internal/validate"
)

// maxRequestWorkers caps the per-request parallelism a client may ask
// for, so one request cannot spawn an unbounded worker pool.
const maxRequestWorkers = 64

// apiVersion is the versioned-envelope marker every /validate,
// /revalidate, and /graph/apply response carries.
const apiVersion = "v1"

// checkAPIVersion validates a request's apiVersion field. Legacy bodies
// omit it; the only other accepted value is the current version. The
// returned string is empty on success, else a client-error message.
func checkAPIVersion(v string) string {
	if v == "" || v == apiVersion {
		return ""
	}
	return fmt.Sprintf("unsupported apiVersion %q (this server speaks %q; omit the field for legacy behavior)", v, apiVersion)
}

// errorResponse is the uniform v1 error envelope. The legacy
// GraphQL-style errors list is kept alongside the flat error string so
// pre-v1 clients of the validation endpoints keep parsing.
type errorResponse struct {
	APIVersion string      `json:"apiVersion"`
	Error      string      `json:"error"`
	Errors     []respError `json:"errors"`
}

func writeAPIError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{
		APIVersion: apiVersion,
		Error:      msg,
		Errors:     []respError{{Message: msg}},
	})
}

// validateRequest is the POST /validate body. An empty body runs a full
// strong-satisfaction check sequentially.
type validateRequest struct {
	// APIVersion optionally pins the envelope version; "" (legacy) and
	// "v1" are accepted.
	APIVersion string `json:"apiVersion"`
	// Mode is "strong" (default), "weak", or "directives".
	Mode string `json:"mode"`
	// Rules restricts the run to the named rules (e.g. ["WS1", "DS7"]);
	// empty means all rules of the mode.
	Rules []string `json:"rules"`
	// MaxViolations caps the reported violations; 0 means unlimited.
	MaxViolations int `json:"maxViolations"`
	// Workers > 1 enables the parallel engine; 0 (the default) lets the
	// server autotune from the graph size and available CPUs.
	Workers int `json:"workers"`
	// ElementSharding splits element iteration across workers.
	ElementSharding bool `json:"elementSharding"`
	// Engine is "auto" (default), "fused", or "rule-by-rule".
	Engine string `json:"engine"`
	// SchedStats includes the run's scheduler telemetry (chunks, steals,
	// per-worker busy time) in the response's sched field.
	SchedStats bool `json:"schedStats"`
}

// deltaRequest is the POST /revalidate body, mirroring validate.Delta.
type deltaRequest struct {
	APIVersion string   `json:"apiVersion"`
	Nodes      []int64  `json:"nodes"`
	Edges      []int64  `json:"edges"`
	Labels     []string `json:"labels"`
}

// violationJSON is one violation in a validation response.
type violationJSON struct {
	Rule     string `json:"rule"`
	Message  string `json:"message"`
	Node     int64  `json:"node"` // -1 when no node is involved
	Edge     int64  `json:"edge"` // -1 when no edge is involved
	TypeName string `json:"typeName,omitempty"`
	Field    string `json:"field,omitempty"`
	Property string `json:"property,omitempty"`
}

// validationResponse is the body of /validate and /revalidate answers
// (and of the validation report inside /graph/apply responses).
type validationResponse struct {
	APIVersion string          `json:"apiVersion"`
	OK         bool            `json:"ok"`
	Mode       string          `json:"mode"`
	Nodes      int             `json:"nodes"`
	Edges      int             `json:"edges"`
	Violations []violationJSON `json:"violations"`
	Truncated  bool            `json:"truncated"`
	// Incomplete marks a run cut short by cancellation (request timeout
	// or client disconnect); its violation list is partial.
	Incomplete  bool `json:"incomplete"`
	Incremental bool `json:"incremental"`
	// Engine is the evaluation strategy that actually produced the
	// result — "fused" or "rule-by-rule" — as reported by the run
	// itself, incremental or not.
	Engine string `json:"engine"`
	// Workers is the resolved worker count the run used after clamping
	// and autotuning — 1 means sequential. Incremental runs resolve it
	// from the dirty-region size, not the graph size.
	Workers int `json:"workers"`
	// Compiled reports that the run reused the program compiled from the
	// schema at graph load; CompileMS is that one-time compile cost (the
	// same value on every response — it is amortized, not per-request).
	Compiled   bool               `json:"compiled"`
	CompileMS  float64            `json:"compileMs"`
	ElapsedMS  float64            `json:"elapsedMs"`
	RuleTimeMS map[string]float64 `json:"ruleTimeMs,omitempty"`
	// Sched is the run's scheduler telemetry, present when the request
	// set schedStats and the run dispatched on the chunk scheduler.
	Sched *schedJSON `json:"sched,omitempty"`
}

// schedJSON is scheduler telemetry on the wire.
type schedJSON struct {
	Workers    int               `json:"workers"`
	Chunks     int               `json:"chunks"`
	Steals     int               `json:"steals"`
	WallMS     float64           `json:"wallMs"`
	BusyMS     float64           `json:"busyMs"`
	MaxChunkMS float64           `json:"maxChunkMs"`
	Efficiency float64           `json:"efficiency"`
	PerWorker  []schedWorkerJSON `json:"perWorker"`
}

type schedWorkerJSON struct {
	Chunks     int     `json:"chunks"`
	Steals     int     `json:"steals"`
	BusyMS     float64 `json:"busyMs"`
	MaxChunkMS float64 `json:"maxChunkMs"`
}

func schedToJSON(st *validate.SchedStats) *schedJSON {
	if st == nil {
		return nil
	}
	out := &schedJSON{
		Workers:    st.Workers,
		Chunks:     st.Chunks,
		Steals:     st.Steals,
		WallMS:     float64(st.Wall) / float64(time.Millisecond),
		BusyMS:     float64(st.Busy) / float64(time.Millisecond),
		MaxChunkMS: float64(st.MaxChunk) / float64(time.Millisecond),
		Efficiency: st.Efficiency(),
		PerWorker:  make([]schedWorkerJSON, len(st.PerWorker)),
	}
	for i := range st.PerWorker {
		pw := &st.PerWorker[i]
		out.PerWorker[i] = schedWorkerJSON{
			Chunks:     pw.Chunks,
			Steals:     pw.Steals,
			BusyMS:     float64(pw.Busy) / float64(time.Millisecond),
			MaxChunkMS: float64(pw.MaxChunk) / float64(time.Millisecond),
		}
	}
	return out
}

// decodeJSONBody decodes a POST body into dst under the body cap,
// rejecting unknown fields. An empty body leaves dst at its zero value.
// The bool reports whether the caller should proceed.
func (h *Handler) decodeJSONBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeAPIError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	body, ok := h.readBody(w, r)
	if !ok {
		return false
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return true
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeAPIError(w, http.StatusBadRequest, "request body is not valid JSON: "+err.Error())
		return false
	}
	return true
}

// options translates a validateRequest into validate.Options, reporting
// the first invalid field as a client error.
func (req *validateRequest) options() (validate.Options, string) {
	opts := validate.Options{
		MaxViolations: req.MaxViolations,
		Workers:       req.Workers,
		// Timings feed /metrics; since the parallel engine collects
		// them too, every run can afford to.
		ElementSharding: req.ElementSharding,
		CollectTimings:  true,
		// Telemetry feeds /metrics on every run; the response only
		// carries it when the request asked (see serveValidate).
		SchedStats: true,
	}
	switch req.Mode {
	case "", "strong":
		opts.Mode = validate.Strong
	case "weak":
		opts.Mode = validate.Weak
	case "directives":
		opts.Mode = validate.Directives
	default:
		return opts, fmt.Sprintf("unknown mode %q (want \"strong\", \"weak\", or \"directives\")", req.Mode)
	}
	if req.MaxViolations < 0 {
		return opts, "maxViolations must be >= 0"
	}
	if req.Workers < 0 {
		return opts, "workers must be >= 0"
	}
	if req.Workers > maxRequestWorkers {
		opts.Workers = maxRequestWorkers
	}
	switch req.Engine {
	case "", "auto":
		opts.Engine = validate.EngineAuto
	case "fused":
		opts.Engine = validate.EngineFused
	case "rule-by-rule":
		opts.Engine = validate.EngineRuleByRule
	default:
		return opts, fmt.Sprintf("unknown engine %q (want \"auto\", \"fused\", or \"rule-by-rule\")", req.Engine)
	}
	known := make(map[string]validate.Rule, len(validate.AllRules))
	for _, r := range validate.AllRules {
		known[string(r)] = r
	}
	for _, name := range req.Rules {
		r, ok := known[name]
		if !ok {
			return opts, fmt.Sprintf("unknown rule %q", name)
		}
		opts.Rules = append(opts.Rules, r)
	}
	return opts, ""
}

// fullStrongRun reports whether the options describe an uncapped,
// unrestricted strong check — the only results /revalidate may build on.
func fullStrongRun(opts validate.Options) bool {
	return opts.Mode == validate.Strong && opts.Rules == nil && opts.MaxViolations == 0
}

func (h *Handler) serveValidate(t *tenant, w http.ResponseWriter, r *http.Request) {
	var req validateRequest
	if !h.decodeJSONBody(w, r, &req) {
		return
	}
	if msg := checkAPIVersion(req.APIVersion); msg != "" {
		writeAPIError(w, http.StatusBadRequest, msg)
		return
	}
	opts, problem := req.options()
	if problem != "" {
		writeAPIError(w, http.StatusBadRequest, problem)
		return
	}
	if err := h.reg.rlock(t); err != nil {
		writeAPIError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer t.gmu.RUnlock()
	opts.Program = t.prog
	start := time.Now()
	res := validate.ValidateContext(r.Context(), t.s, t.g, opts)
	elapsed := time.Since(start)
	h.metrics.recordValidation(t.name, res.RuleTime, res.Sched)
	if fullStrongRun(opts) && !res.Incomplete {
		t.valMu.Lock()
		t.lastResult = res
		t.valMu.Unlock()
	}
	resp := t.validationResponse(res, req.Mode, elapsed, false)
	ruleMS := make(map[string]float64, len(res.RuleTime))
	for rule, d := range res.RuleTime {
		ruleMS[string(rule)] = float64(d) / float64(time.Millisecond)
	}
	resp.RuleTimeMS = ruleMS
	if req.SchedStats {
		resp.Sched = schedToJSON(res.Sched)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) serveRevalidate(t *tenant, w http.ResponseWriter, r *http.Request) {
	var req deltaRequest
	if !h.decodeJSONBody(w, r, &req) {
		return
	}
	if msg := checkAPIVersion(req.APIVersion); msg != "" {
		writeAPIError(w, http.StatusBadRequest, msg)
		return
	}
	if err := h.reg.rlock(t); err != nil {
		writeAPIError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer t.gmu.RUnlock()
	delta := validate.Delta{Labels: req.Labels}
	for _, id := range req.Nodes {
		n := pg.NodeID(id)
		if !t.g.HasNode(n) {
			writeAPIError(w, http.StatusBadRequest, fmt.Sprintf("unknown node id %d", id))
			return
		}
		delta.Nodes = append(delta.Nodes, n)
	}
	for _, id := range req.Edges {
		e := pg.EdgeID(id)
		if !t.g.HasEdge(e) {
			writeAPIError(w, http.StatusBadRequest, fmt.Sprintf("unknown edge id %d", id))
			return
		}
		delta.Edges = append(delta.Edges, e)
	}
	t.valMu.RLock()
	prev := t.lastResult
	t.valMu.RUnlock()
	if prev == nil {
		writeAPIError(w, http.StatusConflict,
			"no cached validation result to revalidate from; POST /validate (full strong mode) first")
		return
	}
	start := time.Now()
	res := validate.Revalidate(r.Context(), t.s, t.g, prev, delta,
		validate.Options{Program: t.prog, CollectTimings: true, SchedStats: true})
	elapsed := time.Since(start)
	h.metrics.recordValidation(t.name, res.RuleTime, res.Sched)
	if !res.Incomplete {
		t.valMu.Lock()
		t.lastResult = res
		t.valMu.Unlock()
	}
	resp := t.validationResponse(res, "strong", elapsed, true)
	writeJSON(w, http.StatusOK, resp)
}

// validationResponse renders a validate.Result as the wire shape. The
// engine and worker fields come from the result itself — the strategy
// that actually ran, not the one the request asked for. Called with the
// tenant's graph lock held (either side) and the graph resident.
func (t *tenant) validationResponse(res *validate.Result, mode string, elapsed time.Duration, incremental bool) validationResponse {
	if mode == "" {
		mode = "strong"
	}
	out := validationResponse{
		APIVersion:  apiVersion,
		OK:          res.OK(),
		Mode:        mode,
		Nodes:       t.g.NumNodes(),
		Edges:       t.g.NumEdges(),
		Violations:  make([]violationJSON, 0, len(res.Violations)),
		Truncated:   res.Truncated,
		Incomplete:  res.Incomplete,
		Incremental: incremental,
		Engine:      res.Engine.String(),
		Workers:     res.Workers,
		Compiled:    true,
		CompileMS:   float64(t.prog.Stats().CompileTime) / float64(time.Millisecond),
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
	}
	for _, v := range res.Violations {
		out.Violations = append(out.Violations, violationJSON{
			Rule:     string(v.Rule),
			Message:  v.Message,
			Node:     int64(v.Node),
			Edge:     int64(v.Edge),
			TypeName: v.TypeName,
			Field:    v.Field,
			Property: v.Property,
		})
	}
	return out
}
