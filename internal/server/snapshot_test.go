package server

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"pgschema/internal/pg"
	"pgschema/internal/values"
)

// TestApplyPersistsSnapshot: with SnapshotDir configured, every
// /graph/apply leaves a loadable .pgsnap behind that carries the
// committed state and epoch, so a restart can resume from it.
func TestApplyPersistsSnapshot(t *testing.T) {
	dir := t.TempDir()
	h := newTestHandlerConfig(t, Config{SnapshotDir: dir})
	mux := h.Mux()
	path := filepath.Join(dir, TenantSnapshotFile(DefaultTenant))

	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("snapshot exists before any mutation: %v", err)
	}
	rec, out := postApply(t, mux, `{"addNodes": [{"label": "City", "props": {"name": "Utrecht"}}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}

	resumed, err := pg.OpenSnapshot(path, pg.Verify())
	if err != nil {
		t.Fatalf("opening persisted snapshot: %v", err)
	}
	defer resumed.Close()
	if resumed.Epoch() != out.Epoch {
		t.Errorf("persisted epoch %d, response says %d", resumed.Epoch(), out.Epoch)
	}
	if resumed.NumNodes() != h.def().g.NumNodes() || resumed.NumEdges() != h.def().g.NumEdges() {
		t.Errorf("persisted graph (%d,%d) != hosted (%d,%d)",
			resumed.NumNodes(), resumed.NumEdges(), h.def().g.NumNodes(), h.def().g.NumEdges())
	}
	newNode := pg.NodeID(out.NewNodes[0])
	if v, ok := resumed.NodeProp(newNode, "name"); !ok || !v.Equal(values.String("Utrecht")) {
		t.Errorf("persisted snapshot misses the new node's property: %v %v", v, ok)
	}

	// A second mutation overwrites the file with the newer epoch.
	rec, out = postApply(t, mux, `{"addNodes": [{"label": "City", "props": {"name": "Gent"}}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resumed2, err := pg.OpenSnapshot(path, pg.Verify())
	if err != nil {
		t.Fatalf("opening re-persisted snapshot: %v", err)
	}
	defer resumed2.Close()
	if resumed2.Epoch() != out.Epoch {
		t.Errorf("re-persisted epoch %d, response says %d", resumed2.Epoch(), out.Epoch)
	}
}

// TestServeOverMappedSnapshot hosts the HTTP surface directly over a
// graph opened from a .pgsnap file — the restart path — and drives a
// mutation through it, proving the mapped graph is a full citizen.
func TestServeOverMappedSnapshot(t *testing.T) {
	seed := newTestHandler(t)
	dir := t.TempDir()
	path := filepath.Join(dir, SnapshotFileName)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.WriteSnapshot(f, seed.def().g.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	mg, err := pg.OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	h, err := New(seed.def().s, mg, Config{SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mux := h.Mux()

	rec, out := postApply(t, mux, `{"addNodes": [{"label": "City", "props": {"name": "Utrecht"}}], "revalidate": true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !out.Applied || out.Validation == nil || !out.Validation.OK {
		t.Fatalf("mutation over mapped graph: %+v", out)
	}
	if mg.NumNodes() != seed.def().g.NumNodes()+1 {
		t.Errorf("mapped graph did not grow: %d nodes", mg.NumNodes())
	}
}
