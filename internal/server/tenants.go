package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"pgschema/internal/parser"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/validate"
)

// tenantGraphSpec selects the initial graph of a tenant being created:
// exactly one of the sources, or none for an empty graph.
type tenantGraphSpec struct {
	// JSON is an inline graph document in the pg JSON format.
	JSON json.RawMessage `json:"json,omitempty"`
	// NodesCSV/EdgesCSV are inline CSV text in the pg CSV format; both
	// must be present together.
	NodesCSV string `json:"nodesCsv,omitempty"`
	EdgesCSV string `json:"edgesCsv,omitempty"`
	// Snapshot is a server-side path to a .pgsnap file to memory-map.
	Snapshot string `json:"snapshot,omitempty"`
}

// load materializes the spec into a graph.
func (sp *tenantGraphSpec) load() (*pg.Graph, error) {
	sources := 0
	if len(sp.JSON) > 0 {
		sources++
	}
	if sp.NodesCSV != "" || sp.EdgesCSV != "" {
		sources++
	}
	if sp.Snapshot != "" {
		sources++
	}
	if sources > 1 {
		return nil, fmt.Errorf("graph spec must name one source: json, nodesCsv+edgesCsv, or snapshot")
	}
	switch {
	case len(sp.JSON) > 0:
		g, err := pg.ReadJSON(bytes.NewReader(sp.JSON))
		if err != nil {
			return nil, fmt.Errorf("reading graph JSON: %w", err)
		}
		return g, nil
	case sp.NodesCSV != "" || sp.EdgesCSV != "":
		if sp.NodesCSV == "" || sp.EdgesCSV == "" {
			return nil, fmt.Errorf("graph spec needs both nodesCsv and edgesCsv")
		}
		g, err := pg.ReadCSVStream(strings.NewReader(sp.NodesCSV), strings.NewReader(sp.EdgesCSV))
		if err != nil {
			return nil, fmt.Errorf("reading graph CSV: %w", err)
		}
		return g, nil
	case sp.Snapshot != "":
		g, err := pg.OpenSnapshot(sp.Snapshot)
		if err != nil {
			return nil, fmt.Errorf("opening snapshot: %w", err)
		}
		return g, nil
	}
	return pg.New(), nil
}

// tenantPutRequest is the PUT /tenants/{name} body: the tenant's schema
// as SDL source plus an optional initial graph.
type tenantPutRequest struct {
	APIVersion string           `json:"apiVersion"`
	Schema     string           `json:"schema"`
	Graph      *tenantGraphSpec `json:"graph"`
}

// schemaPutRequest is the POST /tenants/{name}/schema body: a
// replacement schema for an existing tenant, keeping its graph.
type schemaPutRequest struct {
	APIVersion string `json:"apiVersion"`
	Schema     string `json:"schema"`
}

// tenantInfo describes one tenant in /tenants responses. Nodes, edges,
// and epoch are the last observed values — exact while the tenant is
// resident, and the pre-eviction state otherwise (reporting must not
// force a reload).
type tenantInfo struct {
	Name  string `json:"name"`
	Nodes int64  `json:"nodes"`
	Edges int64  `json:"edges"`
	Epoch uint64 `json:"epoch"`
	// Resident reports the columnar snapshot is in memory; an evicted
	// tenant reloads it from its persisted .pgsnap on the next request.
	Resident bool `json:"resident"`
	// MemoryBytes is the estimated resident footprint counted against
	// the registry's memory budget (0 while evicted).
	MemoryBytes int64 `json:"memoryBytes"`
	// Persisted reports a current snapshot of the tenant exists in the
	// snapshot directory — the precondition for eviction and restart
	// recovery.
	Persisted bool `json:"persisted"`
}

func (t *tenant) info() tenantInfo {
	return tenantInfo{
		Name:        t.name,
		Nodes:       t.nodes.Load(),
		Edges:       t.edges.Load(),
		Epoch:       t.epoch.Load(),
		Resident:    t.resident(),
		MemoryBytes: t.bytes.Load(),
		Persisted:   t.persisted.Load(),
	}
}

// tenantInfoResponse is the GET/PUT /tenants/{name} response body.
type tenantInfoResponse struct {
	APIVersion string     `json:"apiVersion"`
	Tenant     tenantInfo `json:"tenant"`
}

// tenantListResponse is the GET /tenants response body, with registry
// occupancy alongside the per-tenant rows.
type tenantListResponse struct {
	APIVersion    string       `json:"apiVersion"`
	Tenants       []tenantInfo `json:"tenants"`
	Resident      int          `json:"resident"`
	ResidentBytes int64        `json:"residentBytes"`
	MemoryBudget  int64        `json:"memoryBudget"`
	Evictions     int64        `json:"evictions"`
	Reloads       int64        `json:"reloads"`
}

// tenantDeleteResponse is the DELETE /tenants/{name} response body.
type tenantDeleteResponse struct {
	APIVersion string `json:"apiVersion"`
	Deleted    string `json:"deleted"`
}

func (h *Handler) serveTenantList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	st := h.reg.stats()
	resp := tenantListResponse{
		APIVersion:    apiVersion,
		Tenants:       []tenantInfo{},
		Resident:      st.resident,
		ResidentBytes: st.residentBytes,
		MemoryBudget:  st.budget,
		Evictions:     st.evictions,
		Reloads:       st.reloads,
	}
	for _, name := range h.reg.names() {
		if t := h.reg.get(name); t != nil {
			resp.Tenants = append(resp.Tenants, t.info())
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) serveTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	switch r.Method {
	case http.MethodGet:
		t := h.reg.get(name)
		if t == nil {
			writeAPIError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q", name))
			return
		}
		writeJSON(w, http.StatusOK, tenantInfoResponse{APIVersion: apiVersion, Tenant: t.info()})
	case http.MethodPut:
		h.serveTenantPut(name, w, r)
	case http.MethodDelete:
		if !h.reg.delete(name) {
			writeAPIError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q", name))
			return
		}
		writeJSON(w, http.StatusOK, tenantDeleteResponse{APIVersion: apiVersion, Deleted: name})
	default:
		w.Header().Set("Allow", "GET, PUT, DELETE")
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET, PUT, or DELETE")
	}
}

func (h *Handler) serveTenantPut(name string, w http.ResponseWriter, r *http.Request) {
	if !ValidTenantName(name) {
		writeAPIError(w, http.StatusBadRequest,
			fmt.Sprintf("invalid tenant name %q (want 1-64 characters of [A-Za-z0-9_-], starting alphanumeric)", name))
		return
	}
	body, ok := h.readBody(w, r)
	if !ok {
		return
	}
	var req tenantPutRequest
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeAPIError(w, http.StatusBadRequest, "request body is not valid JSON: "+err.Error())
			return
		}
	}
	if msg := checkAPIVersion(req.APIVersion); msg != "" {
		writeAPIError(w, http.StatusBadRequest, msg)
		return
	}
	if req.Schema == "" {
		writeAPIError(w, http.StatusBadRequest, "no schema provided")
		return
	}
	seed := TenantSeed{Name: name, SDL: req.Schema}
	if req.Graph != nil {
		g, err := req.Graph.load()
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, err.Error())
			return
		}
		seed.Graph = g
	}
	existed := h.reg.has(name)
	t, err := h.reg.create(seed, true)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, err.Error())
		return
	}
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, tenantInfoResponse{APIVersion: apiVersion, Tenant: t.info()})
}

// serveTenantSchema replaces (POST) or fetches (GET) a tenant's schema.
// A replacement recompiles the validation program, resets the query
// plan cache, and drops the cached validation result — the old result
// certified the old rules — while the graph and its epoch carry over.
func (h *Handler) serveTenantSchema(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	t := h.reg.get(name)
	if t == nil {
		writeAPIError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q", name))
		return
	}
	switch r.Method {
	case http.MethodGet:
		h.serveSchema(t, w, r)
	case http.MethodPost:
		var req schemaPutRequest
		if !h.decodeJSONBody(w, r, &req) {
			return
		}
		if msg := checkAPIVersion(req.APIVersion); msg != "" {
			writeAPIError(w, http.StatusBadRequest, msg)
			return
		}
		if req.Schema == "" {
			writeAPIError(w, http.StatusBadRequest, "no schema provided")
			return
		}
		doc, err := parser.Parse(req.Schema)
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, "parsing schema: "+err.Error())
			return
		}
		s, err := schema.Build(doc, schema.Options{})
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, "building schema: "+err.Error())
			return
		}
		t.gmu.Lock()
		err = t.setSchema(s, req.Schema, validate.Compile(s))
		if err == nil {
			t.valMu.Lock()
			t.lastResult = nil
			t.valMu.Unlock()
			h.persistTenant(t)
		}
		t.gmu.Unlock()
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, tenantInfoResponse{APIVersion: apiVersion, Tenant: t.info()})
	default:
		w.Header().Set("Allow", "GET, POST")
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// persistTenant persists the tenant's schema and snapshot, logging
// rather than failing on error: the in-memory state is the source of
// truth, the files are a warm-start cache. Called with the tenant's
// writer lock held.
func (h *Handler) persistTenant(t *tenant) {
	if err := h.reg.persistTenant(t); err != nil && h.cfg.AccessLog != nil {
		h.cfg.AccessLog.Error("persisting tenant", "tenant", t.name, "error", err)
	}
}
