// Package server exposes Property Graphs behind a GraphQL HTTP endpoint
// — the deployment shape the paper's §3.6 outlook describes — together
// with an online validation service and operational endpoints.
//
// The process hosts a registry of named tenants, each an independent
// (schema, graph) pair with its own compiled validation program, query
// plan cache, epoch, snapshot persistence, and readers-writer lock — so
// one tenant's mutation never stalls another tenant's reads. Tenants
// are managed over HTTP (PUT/GET/DELETE /tenants/{name}, POST
// /tenants/{name}/schema) and served under /tenants/{name}/...; the
// pre-tenancy top-level routes (/graphql, /schema, /validate,
// /revalidate, /graph/apply) remain as aliases for the tenant named
// "default", returning byte-identical responses.
//
// The GraphQL handler speaks the de-facto GraphQL-over-HTTP protocol:
// POST a JSON body {"query": …, "operationName": …} (or GET with a
// ?query= parameter) to /tenants/{name}/graphql and receive
// {"data": …} or {"errors": [{"message": …}]}, wrapped in the v1
// envelope. Queries run through compiled plans cached per query source
// (each with an epoch-keyed binding to the tenant's graph); the
// response reports the engine, plan-cache status, and plan cost, and an
// "engine" request field ("auto"/"compiled"/"interpretive") keeps the
// tree-walking executor reachable.
//
// The validation service turns the validate package into a callable
// endpoint: POST /tenants/{name}/validate runs the rules of Definitions
// 5.1–5.3 over the tenant's graph (mode, rule subset, violation cap,
// and parallelism selectable per request), and POST
// /tenants/{name}/revalidate answers incrementally from the tenant's
// last cached full result given a mutation delta. GET /metrics exposes
// request counts, latency histograms, per-rule validation timings,
// per-tenant request/validation series, and registry occupancy and
// eviction counters in the Prometheus text format.
//
// Graph mutation goes through POST /tenants/{name}/graph/apply: a
// transactional delta (all-or-nothing, epoch-bumping) with optional
// incremental revalidation, and with requireValid as a commit condition
// that rolls the delta back when the mutated graph would be invalid.
// Each tenant's readers-writer lock serializes its mutations against
// its own in-flight reads only.
//
// The registry enforces an optional memory budget: when the summed
// footprint of resident columnar snapshots exceeds it, the coldest
// persisted tenants are evicted (graph, plan cache, and cached
// validation result dropped) and transparently reloaded from their
// .pgsnap on the next request.
//
// All responses and errors carry the versioned v1 envelope
// ("apiVersion", a uniform "error" string on failures); legacy request
// bodies without apiVersion are still accepted.
//
// Mux wraps the routes in a middleware stack — panic recovery,
// a per-request timeout, an in-flight concurrency limit with 503 load
// shedding, and structured access logging — configured via Config.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/validate"
)

// DefaultMaxBodyBytes caps POST bodies when Config.MaxBodyBytes is zero.
const DefaultMaxBodyBytes = 1 << 20

// Config tunes the production behavior of the handler. The zero value
// disables every knob: no timeout, no concurrency limit, no access log,
// and the default body cap.
type Config struct {
	// RequestTimeout bounds handler execution per request; on expiry the
	// client receives 504 Gateway Timeout. 0 disables the timeout.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently executing requests; excess requests
	// are shed with 503 Service Unavailable. 0 means unlimited.
	// /healthz and /metrics bypass the limit (and the timeout) so that
	// probes and scrapes keep working under load.
	MaxInFlight int
	// MaxBodyBytes caps POST request bodies; larger bodies receive 413
	// Request Entity Too Large. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// AccessLog, when non-nil, receives one structured line per request
	// (method, path, status, duration, remote address).
	AccessLog *slog.Logger
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: the profiling endpoints expose internals (heap
	// contents, command line) and can run for tens of seconds, so they
	// are opt-in and — like /healthz — sit outside the concurrency limit
	// and timeout, which would otherwise kill a 30s CPU profile.
	EnablePprof bool
	// SnapshotDir, when non-empty, makes the registry persist each
	// tenant's graph as <SnapshotDir>/<tenant>.pgsnap after every
	// mutation through its /graph/apply (written to a temp file and
	// renamed, so a crash mid-write never leaves a torn snapshot), and
	// each runtime-created tenant's schema as <tenant>.graphql. A
	// process restarted with the same directory re-creates those tenants
	// and memory-maps their snapshots, resuming at the last committed
	// epochs instead of re-ingesting source data. The directory is also
	// what makes eviction under RegistryConfig.MemoryBudget possible.
	SnapshotDir string
}

// SnapshotFileName is the fixed snapshot file name the pre-tenancy
// server persisted the single hosted graph to. The registry now writes
// TenantSnapshotFile(name) per tenant; this name survives as the legacy
// fallback `serve -snapshot-dir` still reads at startup for the default
// tenant.
const SnapshotFileName = "graph.pgsnap"

// Handler serves GraphQL queries and the validation service over a
// registry of tenants.
type Handler struct {
	reg     *Registry
	cfg     Config
	metrics *metrics
}

// New builds a single-tenant handler: the given schema and graph become
// the tenant named "default", reachable both under /tenants/default/...
// and through the legacy top-level routes. The graph must not be
// mutated out-of-band while the handler is serving — POST /graph/apply
// is the sanctioned mutation path and serializes against in-flight
// reads via the tenant's graph lock. A schema that already declares a
// type named Query cannot be extended into an API schema; the handler
// still serves queries against the original schema and GET /schema
// degrades to 404. Any other API-generation failure is returned.
func New(s *schema.Schema, g *pg.Graph, cfg Config) (*Handler, error) {
	return NewRegistry(RegistryConfig{
		Config: cfg,
		Seeds:  []TenantSeed{{Name: DefaultTenant, Schema: s, Graph: g}},
	})
}

// NewRegistry builds a multi-tenant handler: every seed becomes a
// tenant, and tenants persisted by a previous run into
// Config.SnapshotDir are restored alongside them (seeded names win).
func NewRegistry(cfg RegistryConfig) (*Handler, error) {
	reg, err := newRegistry(cfg)
	if err != nil {
		return nil, err
	}
	return &Handler{reg: reg, cfg: cfg.Config, metrics: newMetrics()}, nil
}

// NewFromCSV builds a single-tenant handler by streaming the default
// tenant's graph out of the nodes/edges CSV and validating it on
// ingest: the load seals directly into the columnar snapshot, the
// tenant's compiled program binds to it, and the resulting full strong
// run seeds the /revalidate cache — so the server is ready to answer
// incremental revalidations the moment it comes up, without a second
// pass over the graph. The loaded graph and the ingest validation
// result are returned alongside the handler.
func NewFromCSV(s *schema.Schema, nodes, edges io.Reader, cfg Config) (*Handler, *pg.Graph, *validate.Result, error) {
	prog := validate.Compile(s)
	res, g, err := validate.ValidateStream(context.Background(), s, nodes, edges,
		validate.Options{Program: prog})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("loading graph CSV: %w", err)
	}
	seed := TenantSeed{Name: DefaultTenant, Schema: s, Graph: g}
	if !res.Incomplete {
		seed.Result = res // an uncapped strong run: /revalidate can start from it
	}
	h, err := NewRegistry(RegistryConfig{Config: cfg, Seeds: []TenantSeed{seed}})
	if err != nil {
		return nil, nil, nil, err
	}
	return h, g, res, nil
}

// Registry exposes the handler's tenant registry, for the facade and
// for operational introspection.
func (h *Handler) Registry() *Registry { return h.reg }

// def returns the default tenant (nil when it has been deleted) — the
// target of the legacy top-level routes.
func (h *Handler) def() *tenant { return h.reg.get(DefaultTenant) }

// tenantHandler adapts a per-tenant handler method into an
// http.HandlerFunc that resolves the {name} path segment against the
// registry, answering 404 in the v1 envelope for unknown tenants.
func (h *Handler) tenantHandler(fn func(*tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		t := h.reg.get(name)
		if t == nil {
			writeAPIError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q", name))
			return
		}
		fn(t, w, r)
	}
}

// legacyHandler adapts a per-tenant handler method into the pre-tenancy
// top-level route: the same code path as /tenants/default/..., so the
// alias is byte-identical by construction.
func (h *Handler) legacyHandler(fn func(*tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t := h.def()
		if t == nil {
			writeAPIError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q", DefaultTenant))
			return
		}
		fn(t, w, r)
	}
}

// Mux returns the full route table wrapped in the middleware stack:
//
//	GET         /tenants                      list tenants
//	PUT/GET/DELETE /tenants/{name}            tenant CRUD
//	POST/GET    /tenants/{name}/schema        replace / fetch the schema
//	POST/GET    /tenants/{name}/graphql       query execution
//	POST        /tenants/{name}/validate      run schema validation
//	POST        /tenants/{name}/revalidate    incremental validation
//	POST        /tenants/{name}/graph/apply   transactional mutation
//	POST/GET    /graphql                      alias of the default tenant
//	GET         /schema                       alias of the default tenant
//	POST        /validate                     alias of the default tenant
//	POST        /revalidate                   alias of the default tenant
//	POST        /graph/apply                  alias of the default tenant
//	GET         /metrics                      Prometheus-format metrics
//	GET         /healthz                      liveness
//
// Ordered outside-in: access log + metrics, panic recovery, concurrency
// limit, request timeout. /healthz, /metrics, and (when enabled)
// /debug/pprof/ sit outside the limit and timeout so they answer even
// when the API is saturated.
func (h *Handler) Mux() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("/tenants", h.serveTenantList)
	api.HandleFunc("/tenants/{name}", h.serveTenant)
	api.HandleFunc("/tenants/{name}/schema", h.serveTenantSchema)
	api.HandleFunc("/tenants/{name}/graphql", h.tenantHandler(h.serveGraphQL))
	api.HandleFunc("/tenants/{name}/validate", h.tenantHandler(h.serveValidate))
	api.HandleFunc("/tenants/{name}/revalidate", h.tenantHandler(h.serveRevalidate))
	api.HandleFunc("/tenants/{name}/graph/apply", h.tenantHandler(h.serveApply))
	api.HandleFunc("/graphql", h.legacyHandler(h.serveGraphQL))
	api.HandleFunc("/schema", h.legacyHandler(h.serveSchema))
	api.HandleFunc("/validate", h.legacyHandler(h.serveValidate))
	api.HandleFunc("/revalidate", h.legacyHandler(h.serveRevalidate))
	api.HandleFunc("/graph/apply", h.legacyHandler(h.serveApply))
	api.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeAPIError(w, http.StatusNotFound, fmt.Sprintf("no such route: %s", r.URL.Path))
	})
	var stack http.Handler = api
	stack = h.withTimeout(stack)
	stack = h.limitInFlight(stack)

	root := http.NewServeMux()
	root.Handle("/", stack)
	root.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	root.HandleFunc("/metrics", h.serveMetrics)
	if h.cfg.EnablePprof {
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	var hh http.Handler = root
	hh = h.recoverPanics(hh)
	hh = h.observe(hh)
	return hh
}

// response is the GraphQL-over-HTTP response body shape shared by the
// query endpoint's data/errors fields.
type response struct {
	Data   map[string]any `json:"data,omitempty"`
	Errors []respError    `json:"errors,omitempty"`
}

type respError struct {
	Message string `json:"message"`
}

// maxBodyBytes resolves the configured body cap.
func (h *Handler) maxBodyBytes() int64 {
	if h.cfg.MaxBodyBytes > 0 {
		return h.cfg.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// readBody reads a POST body under the size cap. Oversized bodies get a
// 413 — reading one byte past the limit distinguishes "too large" from
// "exactly at the limit", instead of silently truncating into a
// misleading JSON parse error. The bool reports whether the caller
// should proceed (on false the response has been written).
func (h *Handler) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	limit := h.maxBodyBytes()
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return nil, false
	}
	if int64(len(body)) > limit {
		writeAPIError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte limit", limit))
		return nil, false
	}
	return body, true
}

// serveSchema answers GET with the tenant's generated API schema as SDL
// text. The schema fields are guarded by the tenant's graph lock (a
// schema replacement swaps them under the writer side), but the graph
// itself is not needed — an evicted tenant serves its schema without a
// reload.
func (h *Handler) serveSchema(t *tenant, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	t.gmu.RLock()
	apiSDL := t.apiSDL
	t.gmu.RUnlock()
	if apiSDL == "" {
		writeAPIError(w, http.StatusNotFound, "no generated API schema available")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, apiSDL)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
