// Package server exposes a Property Graph behind a GraphQL HTTP endpoint
// — the deployment shape the paper's §3.6 outlook describes. The handler
// speaks the de-facto GraphQL-over-HTTP protocol: POST a JSON body
// {"query": …, "operationName": …} (or GET with a ?query= parameter) to
// /graphql and receive {"data": …} or {"errors": [{"message": …}]}.
//
// The endpoint is read-only by construction: the query executor supports
// no mutations, so a handler over a shared graph is safe for concurrent
// requests.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"pgschema/internal/apigen"
	"pgschema/internal/pg"
	"pgschema/internal/query"
	"pgschema/internal/schema"
)

// Handler serves GraphQL queries over a fixed schema and graph.
type Handler struct {
	s      *schema.Schema
	g      *pg.Graph
	apiSDL string
}

// New builds a handler. The graph must not be mutated while the handler
// is serving.
func New(s *schema.Schema, g *pg.Graph) (*Handler, error) {
	apiSDL, err := apigen.ExtendSDL(s, apigen.Options{})
	if err != nil {
		// A schema that already declares Query still works for
		// querying; the SDL endpoint just reports the original.
		apiSDL = ""
	}
	return &Handler{s: s, g: g, apiSDL: apiSDL}, nil
}

// Mux returns an http.Handler with the full route table:
//
//	POST/GET /graphql   query execution
//	GET      /schema    the generated API schema as SDL text
//	GET      /healthz   liveness
func (h *Handler) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/graphql", h.serveGraphQL)
	mux.HandleFunc("/schema", h.serveSchema)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// request is the GraphQL-over-HTTP request body.
type request struct {
	Query         string `json:"query"`
	OperationName string `json:"operationName"`
}

// response is the GraphQL-over-HTTP response body.
type response struct {
	Data   map[string]any `json:"data,omitempty"`
	Errors []respError    `json:"errors,omitempty"`
}

type respError struct {
	Message string `json:"message"`
}

func (h *Handler) serveGraphQL(w http.ResponseWriter, r *http.Request) {
	var req request
	switch r.Method {
	case http.MethodGet:
		req.Query = r.URL.Query().Get("query")
		req.OperationName = r.URL.Query().Get("operationName")
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
			return
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "request body is not valid JSON: "+err.Error())
			return
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "no query provided")
		return
	}
	doc, err := query.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusOK, err.Error()) // GraphQL errors are 200s
		return
	}
	data, err := query.Execute(h.s, h.g, doc, req.OperationName)
	if err != nil {
		writeError(w, http.StatusOK, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, response{Data: data})
}

func (h *Handler) serveSchema(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if h.apiSDL == "" {
		writeError(w, http.StatusNotFound, "no generated API schema available")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, h.apiSDL)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, response{Errors: []respError{{Message: msg}}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
