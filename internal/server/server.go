// Package server exposes a Property Graph behind a GraphQL HTTP endpoint
// — the deployment shape the paper's §3.6 outlook describes — together
// with an online validation service and operational endpoints.
//
// The GraphQL handler speaks the de-facto GraphQL-over-HTTP protocol:
// POST a JSON body {"query": …, "operationName": …} (or GET with a
// ?query= parameter) to /graphql and receive {"data": …} or
// {"errors": [{"message": …}]}, wrapped in the v1 envelope. Queries run
// through compiled plans cached per query source (each with an
// epoch-keyed binding to the hosted graph); the response reports the
// engine, plan-cache status, and plan cost, and an "engine" request
// field ("auto"/"compiled"/"interpretive") keeps the tree-walking
// executor reachable.
//
// The validation service turns the validate package into a callable
// endpoint: POST /validate runs the rules of Definitions 5.1–5.3 over
// the hosted graph (mode, rule subset, violation cap, and parallelism
// selectable per request), and POST /revalidate answers incrementally
// from the last cached full result given a mutation delta. GET /metrics
// exposes request counts, latency histograms, and per-rule validation
// timings in the Prometheus text format.
//
// Graph mutation goes through POST /graph/apply: a transactional delta
// (all-or-nothing, epoch-bumping) with optional incremental
// revalidation, and with requireValid as a commit condition that rolls
// the delta back when the mutated graph would be invalid. A
// readers-writer lock serializes mutations against in-flight reads
// (queries and validations), so concurrent requests stay safe.
//
// Validation responses and errors carry the versioned v1 envelope
// ("apiVersion", a uniform "error" string on failures, and the
// engine/workers/compiled fields describing the run); legacy request
// bodies without apiVersion are still accepted.
//
// Mux wraps the routes in a middleware stack — panic recovery,
// a per-request timeout, an in-flight concurrency limit with 503 load
// shedding, and structured access logging — configured via Config.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"pgschema/internal/apigen"
	"pgschema/internal/pg"
	"pgschema/internal/query"
	"pgschema/internal/schema"
	"pgschema/internal/validate"
)

// DefaultMaxBodyBytes caps POST bodies when Config.MaxBodyBytes is zero.
const DefaultMaxBodyBytes = 1 << 20

// Config tunes the production behavior of the handler. The zero value
// disables every knob: no timeout, no concurrency limit, no access log,
// and the default body cap.
type Config struct {
	// RequestTimeout bounds handler execution per request; on expiry the
	// client receives 504 Gateway Timeout. 0 disables the timeout.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently executing requests; excess requests
	// are shed with 503 Service Unavailable. 0 means unlimited.
	// /healthz and /metrics bypass the limit (and the timeout) so that
	// probes and scrapes keep working under load.
	MaxInFlight int
	// MaxBodyBytes caps POST request bodies; larger bodies receive 413
	// Request Entity Too Large. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// AccessLog, when non-nil, receives one structured line per request
	// (method, path, status, duration, remote address).
	AccessLog *slog.Logger
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: the profiling endpoints expose internals (heap
	// contents, command line) and can run for tens of seconds, so they
	// are opt-in and — like /healthz — sit outside the concurrency limit
	// and timeout, which would otherwise kill a 30s CPU profile.
	EnablePprof bool
	// SnapshotDir, when non-empty, makes the handler persist the hosted
	// graph as <SnapshotDir>/graph.pgsnap after every mutation through
	// POST /graph/apply (written to a temp file and renamed, so a crash
	// mid-write never leaves a torn snapshot). A process restarted with
	// the same directory can memory-map that file and resume at the last
	// committed epoch instead of re-ingesting the source data.
	SnapshotDir string
}

// SnapshotFileName is the file inside Config.SnapshotDir that the
// handler persists the graph to (and that a restart should open).
const SnapshotFileName = "graph.pgsnap"

// Handler serves GraphQL queries and the validation service over a fixed
// schema and graph.
type Handler struct {
	s       *schema.Schema
	g       *pg.Graph
	apiSDL  string
	cfg     Config
	metrics *metrics

	// prog is the validation program compiled once from the schema at
	// construction; /validate and /revalidate reuse it on every request,
	// so the per-run cost is binding (cached across runs while the graph
	// epoch is stable) rather than recompiling the schema.
	prog *validate.Program

	// plans caches compiled query plans keyed by query source; each plan
	// carries its own epoch-keyed graph binding, so a repeated query
	// against an unchanged graph skips parse, compile, and bind.
	plans *query.PlanCache

	// gmu is the graph readers-writer lock: queries and validations
	// hold the read side, POST /graph/apply holds the write side for
	// the mutation and its certification.
	gmu sync.RWMutex

	// valMu guards the cached validation result that /revalidate answers
	// from; /validate refreshes it after every full strong run. Always
	// acquired inside gmu, never around it.
	valMu      sync.RWMutex
	lastResult *validate.Result
}

// New builds a handler. The graph must not be mutated out-of-band while
// the handler is serving — POST /graph/apply is the sanctioned mutation
// path and serializes against in-flight reads via the handler's graph
// lock. A schema that already declares a type named Query cannot
// be extended into an API schema; the handler still serves queries
// against the original schema and GET /schema degrades to 404. Any
// other API-generation failure is returned.
func New(s *schema.Schema, g *pg.Graph, cfg Config) (*Handler, error) {
	return newHandler(s, g, cfg, validate.Compile(s))
}

func newHandler(s *schema.Schema, g *pg.Graph, cfg Config, prog *validate.Program) (*Handler, error) {
	apiSDL, err := apigen.ExtendSDL(s, apigen.Options{})
	if err != nil {
		if !errors.Is(err, apigen.ErrQueryTypeDeclared) {
			return nil, fmt.Errorf("generating the API schema: %w", err)
		}
		apiSDL = ""
	}
	return &Handler{
		s: s, g: g, apiSDL: apiSDL, cfg: cfg, metrics: newMetrics(),
		prog:  prog,
		plans: query.NewPlanCache(s, 0),
	}, nil
}

// NewFromCSV builds a handler by streaming the hosted graph out of the
// nodes/edges CSV and validating it on ingest: the load seals directly
// into the columnar snapshot, the handler's compiled program binds to
// it, and the resulting full strong run seeds the /revalidate cache —
// so the server is ready to answer incremental revalidations the moment
// it comes up, without a second pass over the graph. The loaded graph
// and the ingest validation result are returned alongside the handler.
func NewFromCSV(s *schema.Schema, nodes, edges io.Reader, cfg Config) (*Handler, *pg.Graph, *validate.Result, error) {
	prog := validate.Compile(s)
	res, g, err := validate.ValidateStream(context.Background(), s, nodes, edges,
		validate.Options{Program: prog})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("loading graph CSV: %w", err)
	}
	h, err := newHandler(s, g, cfg, prog)
	if err != nil {
		return nil, nil, nil, err
	}
	if !res.Incomplete {
		h.lastResult = res // an uncapped strong run: /revalidate can start from it
	}
	return h, g, res, nil
}

// Mux returns the full route table wrapped in the middleware stack:
//
//	POST/GET /graphql      query execution
//	GET      /schema       the generated API schema as SDL text
//	POST     /validate     run schema validation over the hosted graph
//	POST     /revalidate   incremental validation from a mutation delta
//	POST     /graph/apply  transactional graph mutation (+ revalidation)
//	GET      /metrics      Prometheus-format operational metrics
//	GET      /healthz      liveness
//
// Ordered outside-in: access log + metrics, panic recovery, concurrency
// limit, request timeout. /healthz, /metrics, and (when enabled)
// /debug/pprof/ sit outside the limit and timeout so they answer even
// when the API is saturated.
func (h *Handler) Mux() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("/graphql", h.serveGraphQL)
	api.HandleFunc("/schema", h.serveSchema)
	api.HandleFunc("/validate", h.serveValidate)
	api.HandleFunc("/revalidate", h.serveRevalidate)
	api.HandleFunc("/graph/apply", h.serveApply)
	var stack http.Handler = api
	stack = h.withTimeout(stack)
	stack = h.limitInFlight(stack)

	root := http.NewServeMux()
	root.Handle("/", stack)
	root.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	root.HandleFunc("/metrics", h.serveMetrics)
	if h.cfg.EnablePprof {
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	var hh http.Handler = root
	hh = h.recoverPanics(hh)
	hh = h.observe(hh)
	return hh
}

// response is the legacy GraphQL-over-HTTP response body, still used
// by endpoints that have not moved to the v1 envelope.
type response struct {
	Data   map[string]any `json:"data,omitempty"`
	Errors []respError    `json:"errors,omitempty"`
}

type respError struct {
	Message string `json:"message"`
}

// maxBodyBytes resolves the configured body cap.
func (h *Handler) maxBodyBytes() int64 {
	if h.cfg.MaxBodyBytes > 0 {
		return h.cfg.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// readBody reads a POST body under the size cap. Oversized bodies get a
// 413 — reading one byte past the limit distinguishes "too large" from
// "exactly at the limit", instead of silently truncating into a
// misleading JSON parse error. The bool reports whether the caller
// should proceed (on false the response has been written).
func (h *Handler) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	limit := h.maxBodyBytes()
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return nil, false
	}
	if int64(len(body)) > limit {
		writeAPIError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte limit", limit))
		return nil, false
	}
	return body, true
}

func (h *Handler) serveSchema(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if h.apiSDL == "" {
		writeError(w, http.StatusNotFound, "no generated API schema available")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, h.apiSDL)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, response{Errors: []respError{{Message: msg}}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
