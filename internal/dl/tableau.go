package dl

import (
	"errors"
	"sort"
	"strings"
)

// ErrResourceLimit is returned when the tableau search exceeds the
// reasoner's node or step budget; the satisfiability status is unknown.
var ErrResourceLimit = errors.New("dl: resource limit exceeded")

// Reasoner decides ALCQI concept satisfiability with respect to a
// general TBox, using a tableau with pairwise (double) blocking — the
// technique required for termination in the presence of inverse roles
// and qualified number restrictions.
type Reasoner struct {
	// MaxNodes bounds the tableau tree size (default 20000).
	MaxNodes int
	// MaxSteps bounds total rule applications and branches
	// (default 2,000,000).
	MaxSteps int
	// Stats is populated by Satisfiable.
	Stats ReasonerStats
}

// ReasonerStats reports search effort.
type ReasonerStats struct {
	Steps    int
	Branches int
	Nodes    int
}

// Satisfiable reports whether the concept is satisfiable with respect to
// the TBox (which may be nil). It returns ErrResourceLimit when the
// search exceeds the configured budget.
func (r *Reasoner) Satisfiable(c Concept, tbox *TBox) (bool, error) {
	if r.MaxNodes == 0 {
		r.MaxNodes = 20000
	}
	if r.MaxSteps == 0 {
		r.MaxSteps = 2000000
	}
	r.Stats = ReasonerStats{}
	unfold, residual := tbox.compile()
	st := &state{r: r, tc: residual, unfold: unfold, distinct: make(map[[2]int]bool)}
	root := st.newNode(-1, nil)
	st.addConcept(root, NNF(c))
	st.addConcept(root, st.tc)
	return st.run()
}

// tnode is one tableau node. Edges are tree edges: every non-root node
// stores the set of roles r with parent --r--> node.
type tnode struct {
	id       int
	parent   int // -1 for the root
	roles    map[Role]bool
	label    map[string]Concept
	children []int
	pruned   bool

	// cached canonical keys for blocking checks; invalidated on change.
	labelStr string
	edgeStr  string
}

// state is one tableau (cloned at branch points).
type state struct {
	r        *Reasoner
	tc       Concept              // internalized residual axioms
	unfold   map[string][]Concept // lazily unfolded axioms (shared, immutable)
	nodes    []*tnode
	distinct map[[2]int]bool
}

func (s *state) clone() *state {
	c := &state{r: s.r, tc: s.tc, unfold: s.unfold, nodes: make([]*tnode, len(s.nodes)), distinct: make(map[[2]int]bool, len(s.distinct))}
	for i, n := range s.nodes {
		cp := &tnode{id: n.id, parent: n.parent, pruned: n.pruned, labelStr: n.labelStr, edgeStr: n.edgeStr}
		cp.roles = make(map[Role]bool, len(n.roles))
		for r := range n.roles {
			cp.roles[r] = true
		}
		cp.label = make(map[string]Concept, len(n.label))
		for k, v := range n.label {
			cp.label[k] = v
		}
		cp.children = append([]int(nil), n.children...)
		c.nodes[i] = cp
	}
	for k := range s.distinct {
		c.distinct[k] = true
	}
	return c
}

func (s *state) newNode(parent int, roles []Role) *tnode {
	n := &tnode{id: len(s.nodes), parent: parent, roles: make(map[Role]bool), label: make(map[string]Concept)}
	for _, r := range roles {
		n.roles[r] = true
	}
	s.nodes = append(s.nodes, n)
	if parent >= 0 {
		s.nodes[parent].children = append(s.nodes[parent].children, n.id)
	}
	if len(s.nodes) > s.r.Stats.Nodes {
		s.r.Stats.Nodes = len(s.nodes)
	}
	return n
}

// addConcept inserts c into the node's label, flattening conjunctions.
// It reports whether the label changed.
func (s *state) addConcept(n *tnode, c Concept) bool {
	switch x := c.(type) {
	case Top:
		return false
	case And:
		changed := false
		for _, sub := range x.Cs {
			if s.addConcept(n, sub) {
				changed = true
			}
		}
		return changed
	}
	k := c.Key()
	if _, ok := n.label[k]; ok {
		return false
	}
	n.label[k] = c
	n.labelStr = ""
	if atom, ok := c.(Atom); ok {
		for _, u := range s.unfold[atom.Name] {
			s.addConcept(n, u)
		}
	}
	return true
}

func (s *state) has(n *tnode, c Concept) bool {
	_, ok := n.label[c.Key()]
	return ok
}

// holds reports whether the node's label entails c syntactically: ⊤ holds
// everywhere; conjunctions hold when every conjunct does (addConcept
// flattens ⊓ into the label, so the composite key is never present
// itself); disjunctions when some disjunct does; everything else by label
// membership (the tableau convention "C ∈ L(y)").
func (s *state) holds(n *tnode, c Concept) bool {
	switch x := c.(type) {
	case Top:
		return true
	case And:
		for _, sub := range x.Cs {
			if !s.holds(n, sub) {
				return false
			}
		}
		return true
	case Or:
		if s.has(n, c) {
			return true
		}
		for _, sub := range x.Cs {
			if s.holds(n, sub) {
				return true
			}
		}
		return false
	}
	return s.has(n, c)
}

// neighbors returns the ids of the node's r-neighbors: children reached
// by r and the parent when the edge carries r's inverse.
func (s *state) neighbors(x *tnode, r Role) []int {
	var out []int
	for _, cid := range x.children {
		c := s.nodes[cid]
		if !c.pruned && c.roles[r] {
			out = append(out, cid)
		}
	}
	if x.parent >= 0 && x.roles[r.Inverse()] {
		out = append(out, x.parent)
	}
	return out
}

// labelKey canonicalizes a node's label set (cached until the label
// changes).
func labelKey(n *tnode) string {
	if n.labelStr == "" {
		keys := make([]string, 0, len(n.label))
		for k := range n.label {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		n.labelStr = "\x01" + strings.Join(keys, "|")
	}
	return n.labelStr
}

// edgeKey canonicalizes a node's incoming-edge role set (cached until the
// roles change).
func edgeKey(n *tnode) string {
	if n.edgeStr == "" {
		keys := make([]string, 0, len(n.roles))
		for r := range n.roles {
			keys = append(keys, r.String())
		}
		sort.Strings(keys)
		n.edgeStr = "\x01" + strings.Join(keys, "|")
	}
	return n.edgeStr
}

// directlyBlocked implements pairwise (double) blocking: x with parent x'
// is blocked by an ancestor w with parent w' when L(x) = L(w),
// L(x') = L(w'), and the incoming edges carry the same roles.
func (s *state) directlyBlocked(x *tnode) bool {
	if x.parent < 0 {
		return false
	}
	xp := s.nodes[x.parent]
	lx, lxp, ex := labelKey(x), labelKey(xp), edgeKey(x)
	w := s.nodes[x.parent]
	for w.parent >= 0 {
		wp := s.nodes[w.parent]
		if labelKey(w) == lx && labelKey(wp) == lxp && edgeKey(w) == ex {
			return true
		}
		w = wp
	}
	return false
}

// indirectlyBlocked reports whether a proper ancestor is directly blocked.
func (s *state) indirectlyBlocked(x *tnode) bool {
	for p := x.parent; p >= 0; {
		n := s.nodes[p]
		if s.directlyBlocked(n) {
			return true
		}
		p = n.parent
	}
	return false
}

func pair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (s *state) markDistinct(a, b int) { s.distinct[pair(a, b)] = true }

func (s *state) areDistinct(a, b int) bool { return s.distinct[pair(a, b)] }

// existsKPairwiseDistinct reports whether k of the candidates are
// pairwise marked distinct (exact search; k is tiny in practice).
func (s *state) existsKPairwiseDistinct(cands []int, k int) bool {
	if k <= 0 {
		return true
	}
	if len(cands) < k {
		return false
	}
	var chosen []int
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(chosen) == k {
			return true
		}
		for i := start; i < len(cands); i++ {
			ok := true
			for _, c := range chosen {
				if !s.areDistinct(c, cands[i]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			chosen = append(chosen, cands[i])
			if rec(i + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}
	return rec(0)
}

func (s *state) step() error {
	s.r.Stats.Steps++
	if s.r.Stats.Steps > s.r.MaxSteps {
		return ErrResourceLimit
	}
	return nil
}

// hasClash checks all clash conditions.
func (s *state) hasClash() bool {
	for _, n := range s.nodes {
		if n.pruned {
			continue
		}
		for _, c := range n.label {
			switch x := c.(type) {
			case Bottom:
				return true
			case Not:
				if s.has(n, x.C) {
					return true
				}
			case AtMost:
				var with []int
				for _, y := range s.neighbors(n, x.R) {
					if s.holds(s.nodes[y], x.C) {
						with = append(with, y)
					}
				}
				if s.existsKPairwiseDistinct(with, x.N+1) {
					return true
				}
			}
		}
	}
	return false
}

// applyDeterministic applies one round of ∀- and ≥-rules, reporting
// whether anything changed.
func (s *state) applyDeterministic() (bool, error) {
	changed := false
	for _, n := range s.nodes {
		if n.pruned || s.indirectlyBlocked(n) {
			continue
		}
		// Collect label snapshot: rules may extend labels of other
		// nodes; extending n's own label is impossible for these rules
		// (∀ adds to neighbors, ≥ creates children).
		for _, c := range n.label {
			switch x := c.(type) {
			case Forall:
				for _, y := range s.neighbors(n, x.R) {
					if s.addConcept(s.nodes[y], x.C) {
						s.addConcept(s.nodes[y], s.tc)
						changed = true
						if err := s.step(); err != nil {
							return false, err
						}
					}
				}
			case AtLeast:
				if s.directlyBlocked(n) {
					continue
				}
				var with []int
				for _, y := range s.neighbors(n, x.R) {
					if s.holds(s.nodes[y], x.C) {
						with = append(with, y)
					}
				}
				if s.existsKPairwiseDistinct(with, x.N) {
					continue
				}
				if len(s.nodes)+x.N > s.r.MaxNodes {
					return false, ErrResourceLimit
				}
				fresh := make([]int, x.N)
				for i := 0; i < x.N; i++ {
					y := s.newNode(n.id, []Role{x.R})
					s.addConcept(y, x.C)
					s.addConcept(y, s.tc)
					fresh[i] = y.id
				}
				for i := 0; i < len(fresh); i++ {
					for j := i + 1; j < len(fresh); j++ {
						s.markDistinct(fresh[i], fresh[j])
					}
				}
				changed = true
				if err := s.step(); err != nil {
					return false, err
				}
			}
		}
	}
	return changed, nil
}

// alternative is one nondeterministic branch: a mutation of a clone.
type alternative func(*state)

// findNondeterministic locates the first applicable nondeterministic rule
// and returns the branch alternatives (nil when none applies).
func (s *state) findNondeterministic() []alternative {
	for _, n := range s.nodes {
		if n.pruned || s.indirectlyBlocked(n) {
			continue
		}
		nid := n.id
		// Deterministic iteration over label for reproducibility.
		keys := make([]string, 0, len(n.label))
		for k := range n.label {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch x := n.label[k].(type) {
			case Or:
				present := false
				for _, d := range x.Cs {
					if s.has(n, d) {
						present = true
						break
					}
				}
				if present {
					continue
				}
				var alts []alternative
				for _, d := range x.Cs {
					d := d
					alts = append(alts, func(c *state) {
						c.addConcept(c.nodes[nid], d)
					})
				}
				return alts
			case AtMost:
				notC := Complement(x.C)
				// choose-rule: neighbors undecided about C.
				for _, y := range s.neighbors(n, x.R) {
					yn := s.nodes[y]
					if s.holds(yn, x.C) || s.holds(yn, notC) {
						continue
					}
					yid := y
					return []alternative{
						func(c *state) {
							c.addConcept(c.nodes[yid], x.C)
							c.addConcept(c.nodes[yid], c.tc)
						},
						func(c *state) {
							c.addConcept(c.nodes[yid], notC)
							c.addConcept(c.nodes[yid], c.tc)
						},
					}
				}
				// merge-rule: too many neighbors with C; merge a
				// non-distinct pair.
				var with []int
				for _, y := range s.neighbors(n, x.R) {
					if s.holds(s.nodes[y], x.C) {
						with = append(with, y)
					}
				}
				if len(with) <= x.N {
					continue
				}
				var alts []alternative
				for i := 0; i < len(with); i++ {
					for j := i + 1; j < len(with); j++ {
						if s.areDistinct(with[i], with[j]) {
							continue
						}
						a, b := with[i], with[j]
						alts = append(alts, func(c *state) {
							c.merge(nid, a, b)
						})
					}
				}
				if len(alts) > 0 {
					return alts
				}
				// >N neighbors with C and none mergeable: the clash
				// check will fire if N+1 of them are pairwise
				// distinct; otherwise the situation is saturated.
			}
		}
	}
	return nil
}

// merge merges neighbor y of x into neighbor z of x (the standard
// Merge(y, z): labels are unioned, edges rerouted, y's subtree pruned).
// When one of the two is x's parent, it plays the role of z.
func (s *state) merge(x, y, z int) {
	xp := s.nodes[x].parent
	if y == xp {
		y, z = z, y
	}
	yn, zn := s.nodes[y], s.nodes[z]
	// Union labels.
	for _, c := range yn.label {
		s.addConcept(zn, c)
	}
	// Reroute the edge x→y.
	if z == xp {
		// z is x's parent: make z reachable from x by y's roles.
		for r := range yn.roles {
			s.nodes[x].roles[r.Inverse()] = true
		}
		s.nodes[x].edgeStr = ""
	} else {
		// Sibling merge: union edge labels on x→z.
		for r := range yn.roles {
			zn.roles[r] = true
		}
		zn.edgeStr = ""
	}
	// Inherit distinctness.
	for p := range s.distinct {
		var other int
		switch {
		case p[0] == y:
			other = p[1]
		case p[1] == y:
			other = p[0]
		default:
			continue
		}
		if other != z {
			s.markDistinct(z, other)
		}
	}
	// Prune y's subtree.
	s.prune(y)
}

func (s *state) prune(id int) {
	n := s.nodes[id]
	n.pruned = true
	for _, c := range n.children {
		s.prune(c)
	}
}

// run saturates the tableau, branching depth-first over nondeterministic
// alternatives. It returns true when a complete clash-free tableau is
// found (the concept is satisfiable).
func (s *state) run() (bool, error) {
	for {
		if s.hasClash() {
			return false, nil
		}
		changed, err := s.applyDeterministic()
		if err != nil {
			return false, err
		}
		if changed {
			continue
		}
		alts := s.findNondeterministic()
		if alts == nil {
			return true, nil
		}
		s.r.Stats.Branches++
		if err := s.step(); err != nil {
			return false, err
		}
		for _, alt := range alts {
			c := s.clone()
			alt(c)
			ok, err := c.run()
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
}
