package dl

import (
	"math/rand"
	"testing"
)

func sat(t *testing.T, c Concept, tbox *TBox) bool {
	t.Helper()
	var r Reasoner
	ok, err := r.Satisfiable(c, tbox)
	if err != nil {
		t.Fatalf("Satisfiable(%s): %v", c, err)
	}
	return ok
}

func a(name string) Concept { return Atom{name} }

func and(cs ...Concept) Concept { return And{cs} }

func or(cs ...Concept) Concept { return Or{cs} }

func TestNNF(t *testing.T) {
	cases := []struct {
		in   Concept
		want string
	}{
		{Not{Not{a("A")}}, "A(A)"},
		{Not{and(a("A"), a("B"))}, "⊔(¬A(A),¬A(B))"},
		{Not{or(a("A"), a("B"))}, "⊓(¬A(A),¬A(B))"},
		{Not{Exists{R("r"), a("A")}}, "∀r.¬A(A)"},
		{Not{Forall{R("r"), a("A")}}, "≥1r.¬A(A)"},
		{Exists{R("r"), a("A")}, "≥1r.A(A)"},
		{Not{AtLeast{2, R("r"), a("A")}}, "≤1r.A(A)"},
		{Not{AtMost{2, R("r"), a("A")}}, "≥3r.A(A)"},
		{Not{Top{}}, "⊥"},
		{Not{Bottom{}}, "⊤"},
		{and(a("A"), Top{}), "A(A)"},
		{or(a("A"), Bottom{}), "A(A)"},
		{and(a("A"), Bottom{}), "⊥"},
		{or(a("A"), Top{}), "⊤"},
	}
	for _, c := range cases {
		if got := NNF(c.in).Key(); got != c.want {
			t.Errorf("NNF(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestComplement(t *testing.T) {
	if got := Complement(a("A")).Key(); got != "¬A(A)" {
		t.Errorf("Complement(A) = %s", got)
	}
	if got := Complement(Not{a("A")}).Key(); got != "A(A)" {
		t.Errorf("Complement(¬A) = %s", got)
	}
}

func TestBasicSatisfiability(t *testing.T) {
	if !sat(t, a("A"), nil) {
		t.Error("atomic concept must be satisfiable")
	}
	if sat(t, and(a("A"), Not{a("A")}), nil) {
		t.Error("A ⊓ ¬A must be unsatisfiable")
	}
	if sat(t, Bottom{}, nil) {
		t.Error("⊥ must be unsatisfiable")
	}
	if !sat(t, Top{}, nil) {
		t.Error("⊤ must be satisfiable")
	}
	if !sat(t, or(a("A"), Not{a("A")}), nil) {
		t.Error("A ⊔ ¬A must be satisfiable")
	}
}

func TestExistsForallInteraction(t *testing.T) {
	r := R("r")
	if sat(t, and(Exists{r, a("A")}, Forall{r, Not{a("A")}}), nil) {
		t.Error("∃r.A ⊓ ∀r.¬A must be unsatisfiable")
	}
	if !sat(t, and(Exists{r, a("A")}, Forall{r, a("B")}), nil) {
		t.Error("∃r.A ⊓ ∀r.B must be satisfiable")
	}
	if !sat(t, and(Forall{r, Bottom{}}, Not{a("A")}), nil) {
		t.Error("∀r.⊥ ⊓ ¬A is satisfiable (no r-successors)")
	}
	if sat(t, and(Exists{r, Top{}}, Forall{r, Bottom{}}), nil) {
		t.Error("∃r.⊤ ⊓ ∀r.⊥ must be unsatisfiable")
	}
}

func TestNumberRestrictions(t *testing.T) {
	r := R("r")
	if sat(t, and(AtLeast{3, r, Top{}}, AtMost{2, r, Top{}}), nil) {
		t.Error("≥3 r.⊤ ⊓ ≤2 r.⊤ must be unsatisfiable")
	}
	if !sat(t, and(AtLeast{2, r, Top{}}, AtMost{2, r, Top{}}), nil) {
		t.Error("≥2 r.⊤ ⊓ ≤2 r.⊤ must be satisfiable")
	}
	if !sat(t, and(AtLeast{2, r, a("A")}, AtMost{3, r, Top{}}), nil) {
		t.Error("≥2 r.A ⊓ ≤3 r.⊤ must be satisfiable")
	}
	// Qualified: ≥2 r.A ⊓ ≥2 r.B ⊓ ≤2 r.⊤ is satisfiable when the two
	// A-successors coincide with the two B-successors.
	if !sat(t, and(AtLeast{2, r, a("A")}, AtLeast{2, r, a("B")}, AtMost{2, r, Top{}}), nil) {
		t.Error("≥2 r.A ⊓ ≥2 r.B ⊓ ≤2 r.⊤ must be satisfiable (merging)")
	}
	// But not when A and B are disjoint.
	tbox := &TBox{}
	tbox.Add(and(a("A"), a("B")), Bottom{})
	if sat(t, and(AtLeast{1, r, a("A")}, AtLeast{1, r, a("B")}, AtMost{1, r, Top{}}), tbox) {
		t.Error("disjoint qualifiers with ≤1 must be unsatisfiable")
	}
}

func TestFunctionalMerge(t *testing.T) {
	r := R("r")
	// ≤1 r.⊤ forces the A- and B-successor to merge: satisfiable.
	if !sat(t, and(Exists{r, a("A")}, Exists{r, a("B")}, AtMost{1, r, Top{}}), nil) {
		t.Error("functional role with compatible successors must be satisfiable")
	}
	// With A ⊑ ¬B the merge clashes.
	tbox := &TBox{}
	tbox.Add(a("A"), Not{a("B")})
	if sat(t, and(Exists{r, a("A")}, Exists{r, a("B")}, AtMost{1, r, Top{}}), tbox) {
		t.Error("functional role with incompatible successors must be unsatisfiable")
	}
}

func TestInverseRoles(t *testing.T) {
	r := R("r")
	// ∃r.(∀r⁻.A) pushes A back to the root; ¬A clashes.
	if sat(t, and(Not{a("A")}, Exists{r, Forall{r.Inverse(), a("A")}}), nil) {
		t.Error("∃r.∀r⁻.A ⊓ ¬A must be unsatisfiable")
	}
	if !sat(t, and(a("A"), Exists{r, Forall{r.Inverse(), a("A")}}), nil) {
		t.Error("∃r.∀r⁻.A ⊓ A must be satisfiable")
	}
	// Inverse functionality: B ⊑ ≤1 r⁻.⊤ plus two r-edges into a B.
	tbox := &TBox{}
	tbox.Add(a("B"), AtMost{1, r.Inverse(), Top{}})
	// x with two distinct r-successors both ⊑ B and... build: the root
	// has ≥2 r.B, each B has ≤1 r⁻.⊤; the root is an r⁻-neighbor of
	// each. Satisfiable: each B sees only the root.
	if !sat(t, AtLeast{2, r, a("B")}, tbox) {
		t.Error("≥2 r.B with inverse-functional B must be satisfiable")
	}
}

func TestTBoxCycle(t *testing.T) {
	// A ⊑ ∃r.A: an infinite chain is required; blocking must terminate
	// and report satisfiable.
	tbox := &TBox{}
	tbox.Add(a("A"), Exists{R("r"), a("A")})
	if !sat(t, a("A"), tbox) {
		t.Error("A ⊑ ∃r.A with query A must be satisfiable (blocking)")
	}
}

func TestTBoxCycleWithInverse(t *testing.T) {
	// A ⊑ ∃r.A ⊓ ∀r⁻.⊥ — every A needs an r-successor that is A, but no
	// A may have an incoming r-edge... wait: ∀r⁻.⊥ at the successor
	// forbids its predecessor. Build it directly:
	// A ⊑ ∃r.A and A ⊑ ∀r.(∀r⁻.⊥): unsatisfiable.
	tbox := &TBox{}
	r := R("r")
	tbox.Add(a("A"), Exists{r, a("A")})
	tbox.Add(a("A"), Forall{r, Forall{r.Inverse(), Bottom{}}})
	if sat(t, a("A"), tbox) {
		t.Error("successor forbidden by inverse-universal must be unsatisfiable")
	}
}

func TestUnsatWithGCIPropagation(t *testing.T) {
	// A ⊑ B, B ⊑ C, query A ⊓ ¬C.
	tbox := &TBox{}
	tbox.Add(a("A"), a("B"))
	tbox.Add(a("B"), a("C"))
	if sat(t, and(a("A"), Not{a("C")}), tbox) {
		t.Error("A ⊑ B ⊑ C makes A ⊓ ¬C unsatisfiable")
	}
	if !sat(t, and(a("A"), a("C")), tbox) {
		t.Error("A ⊓ C must be satisfiable")
	}
}

func TestDisjunctionBranching(t *testing.T) {
	// (A ⊔ B) ⊓ ¬A ⊓ ¬B unsat; (A ⊔ B) ⊓ ¬A sat (choose B).
	if sat(t, and(or(a("A"), a("B")), Not{a("A")}, Not{a("B")}), nil) {
		t.Error("(A⊔B) ⊓ ¬A ⊓ ¬B must be unsatisfiable")
	}
	if !sat(t, and(or(a("A"), a("B")), Not{a("A")}), nil) {
		t.Error("(A⊔B) ⊓ ¬A must be satisfiable")
	}
}

func TestDeepNesting(t *testing.T) {
	r := R("r")
	// ∃r.∃r.∃r.A ⊓ ∀r.∀r.∀r.¬A
	c := and(
		Exists{r, Exists{r, Exists{r, a("A")}}},
		Forall{r, Forall{r, Forall{r, Not{a("A")}}}},
	)
	if sat(t, c, nil) {
		t.Error("nested ∃/∀ conflict must be unsatisfiable")
	}
}

func TestChooseRule(t *testing.T) {
	r := R("r")
	// ≤1 r.A ⊓ ∃r.B ⊓ ∃r.C with B ⊑ A and C ⊑ A and B ⊓ C ⊑ ⊥:
	// the two successors are both A, must merge, but B ⊓ C is empty.
	tbox := &TBox{}
	tbox.Add(a("B"), a("A"))
	tbox.Add(a("C"), a("A"))
	tbox.Add(and(a("B"), a("C")), Bottom{})
	if sat(t, and(AtMost{1, r, a("A")}, Exists{r, a("B")}, Exists{r, a("C")}), tbox) {
		t.Error("≤1 r.A with disjoint A-successors must be unsatisfiable")
	}
	// Without disjointness it is satisfiable.
	tbox2 := &TBox{}
	tbox2.Add(a("B"), a("A"))
	tbox2.Add(a("C"), a("A"))
	if !sat(t, and(AtMost{1, r, a("A")}, Exists{r, a("B")}, Exists{r, a("C")}), tbox2) {
		t.Error("compatible successors should merge and satisfy")
	}
}

// TestExample61a translates diagram (a) of the paper's Example 6.1 by
// hand, following the Theorem 3 proof: OT2/OT3 implement IT; both carry
// hasOT1 edges with @requiredForTarget; IT carries @uniqueForTarget.
func TestExample61a(t *testing.T) {
	tbox := &TBox{}
	f := R("hasOT1")
	ot1, ot2, ot3, it := a("OT1"), a("OT2"), a("OT3"), a("IT")
	// Union/interface: IT ≡ OT2 ⊔ OT3.
	tbox.AddEquiv(it, or(ot2, ot3))
	// Disjointness of object types.
	tbox.Add(and(ot1, ot2), Bottom{})
	tbox.Add(and(ot1, ot3), Bottom{})
	tbox.Add(and(ot2, ot3), Bottom{})
	// Edge typing: targets of hasOT1 from IT sources are OT1 — i.e.
	// ∃hasOT1⁻.IT ⊑ OT1 is not needed for the conflict; what matters:
	// @requiredForTarget on OT2.hasOT1: OT1 ⊑ ∃hasOT1⁻.OT2
	tbox.Add(ot1, Exists{f.Inverse(), ot2})
	// @requiredForTarget on OT3.hasOT1: OT1 ⊑ ∃hasOT1⁻.OT3
	tbox.Add(ot1, Exists{f.Inverse(), ot3})
	// @uniqueForTarget on IT.hasOT1: OT1 ⊑ ≤1 hasOT1⁻.IT
	tbox.Add(ot1, AtMost{1, f.Inverse(), it})

	ok, err := (&Reasoner{}).Satisfiable(ot1, tbox)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("OT1 in Example 6.1(a) must be unsatisfiable")
	}
	// OT2 alone is satisfiable (a graph with no OT1 nodes).
	ok, err = (&Reasoner{}).Satisfiable(ot2, tbox)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("OT2 in Example 6.1(a) must be satisfiable")
	}
}

func TestResourceLimit(t *testing.T) {
	// An exponential disjunction cascade with a tiny step budget.
	tbox := &TBox{}
	r := R("r")
	for i := 0; i < 8; i++ {
		tbox.Add(a("A"), Exists{r, a("A")})
		tbox.Add(a("A"), or(a("B"), a("C")))
	}
	re := Reasoner{MaxSteps: 3}
	if _, err := re.Satisfiable(a("A"), tbox); err == nil {
		t.Skip("budget not hit; acceptable (problem too easy)")
	}
}

func TestStatsPopulated(t *testing.T) {
	var r Reasoner
	_, err := r.Satisfiable(and(or(a("A"), a("B")), Exists{R("r"), a("C")}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Nodes < 2 {
		t.Errorf("expected at least 2 tableau nodes, got %d", r.Stats.Nodes)
	}
}

// TestNNFInvolution: Complement(Complement(C)) has the same key as
// NNF(C) over randomly generated concept trees.
func TestNNFInvolution(t *testing.T) {
	var gen func(rnd *rand.Rand, depth int) Concept
	gen = func(rnd *rand.Rand, depth int) Concept {
		if depth <= 0 {
			switch rnd.Intn(4) {
			case 0:
				return Top{}
			case 1:
				return Bottom{}
			default:
				return Atom{string(rune('A' + rnd.Intn(4)))}
			}
		}
		r := Role{Name: string(rune('r' + rnd.Intn(2))), Inv: rnd.Intn(2) == 0}
		switch rnd.Intn(7) {
		case 0:
			return Not{gen(rnd, depth-1)}
		case 1:
			return And{[]Concept{gen(rnd, depth-1), gen(rnd, depth-1)}}
		case 2:
			return Or{[]Concept{gen(rnd, depth-1), gen(rnd, depth-1)}}
		case 3:
			return Exists{r, gen(rnd, depth-1)}
		case 4:
			return Forall{r, gen(rnd, depth-1)}
		case 5:
			return AtLeast{1 + rnd.Intn(3), r, gen(rnd, depth-1)}
		default:
			return AtMost{rnd.Intn(3), r, gen(rnd, depth-1)}
		}
	}
	for seed := int64(0); seed < 300; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		c := gen(rnd, 4)
		want := NNF(c).Key()
		got := Complement(Complement(c)).Key()
		if got != want {
			t.Fatalf("seed %d: NNF(%s) = %s but ¬¬ = %s", seed, c, want, got)
		}
	}
}

// TestNNFSatisfiabilityInvariance: a concept and its double complement
// have the same satisfiability status.
func TestNNFSatisfiabilityInvariance(t *testing.T) {
	cases := []Concept{
		and(a("A"), Not{a("A")}),
		and(Exists{R("r"), a("A")}, Forall{R("r"), Not{a("A")}}),
		or(a("A"), a("B")),
		AtMost{0, R("r"), Top{}},
	}
	for _, c := range cases {
		s1 := sat(t, c, nil)
		s2 := sat(t, Complement(Complement(c)), nil)
		if s1 != s2 {
			t.Errorf("%s: sat=%v but double complement sat=%v", c, s1, s2)
		}
	}
}

// TestMergeIntoParent exercises the merge path where one of the two
// ≤-neighbors is the node's tree parent: B has an incoming r-edge from
// the root and a generated r-predecessor C; ≤1 r⁻.⊤ at B forces C to
// merge into the root.
func TestMergeIntoParent(t *testing.T) {
	r := R("r")
	inner := and(a("B"), AtMost{1, r.Inverse(), Top{}}, Exists{r.Inverse(), a("C")})
	// Compatible: the root may be C too — satisfiable.
	if !sat(t, and(a("A"), Exists{r, inner}), nil) {
		t.Error("merge into parent with compatible labels must be satisfiable")
	}
	// Incompatible: C ⊑ ¬A clashes after the merge.
	tbox := &TBox{}
	tbox.Add(a("C"), Not{a("A")})
	if sat(t, and(a("A"), Exists{r, inner}), tbox) {
		t.Error("merge into parent with disjoint labels must be unsatisfiable")
	}
}

// TestNodeLimit: the reasoner reports ErrResourceLimit rather than
// looping when the node budget is tiny.
func TestNodeLimit(t *testing.T) {
	tbox := &TBox{}
	tbox.Add(a("A"), Exists{R("r"), and(a("A"), a("B"))})
	tbox.Add(a("A"), Exists{R("s"), and(a("A"), a("C"))})
	re := Reasoner{MaxNodes: 3}
	if ok, err := re.Satisfiable(a("A"), tbox); err == nil && ok {
		// Blocking may legitimately decide it within 3 nodes; accept
		// either a decision or a budget error, but never a hang (the
		// test timeout guards that).
		t.Log("decided within the budget")
	}
}
