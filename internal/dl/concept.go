// Package dl implements the description logic ALCQI — ALC extended with
// qualified number restrictions (≥n R.C, ≤n R.C) and inverse roles — used
// by the paper's Theorem 3 to give a PSPACE upper bound for object-type
// satisfiability. The package provides concept construction, negation
// normal form, general TBoxes (sets of concept inclusions), and a
// tableau-based concept-satisfiability reasoner with pairwise (double)
// blocking.
package dl

import (
	"fmt"
	"sort"
	"strings"
)

// Role is a role name or its inverse.
type Role struct {
	Name string
	Inv  bool
}

// R returns the named (forward) role.
func R(name string) Role { return Role{Name: name} }

// Inverse returns the inverse role: r⁻, or r for an inverse's inverse.
func (r Role) Inverse() Role { return Role{Name: r.Name, Inv: !r.Inv} }

// String renders the role, using ⁻ for inverses.
func (r Role) String() string {
	if r.Inv {
		return r.Name + "⁻"
	}
	return r.Name
}

// Concept is an ALCQI concept expression. Concepts are immutable; Key
// returns a canonical string usable for set membership.
type Concept interface {
	Key() string
	String() string
}

// Top is ⊤, the universal concept.
type Top struct{}

// Bottom is ⊥, the empty concept.
type Bottom struct{}

// Atom is an atomic concept (a concept name).
type Atom struct{ Name string }

// Not is a negation. After NNF conversion, negations wrap only atoms.
type Not struct{ C Concept }

// And is an intersection C1 ⊓ … ⊓ Cn.
type And struct{ Cs []Concept }

// Or is a union C1 ⊔ … ⊔ Cn.
type Or struct{ Cs []Concept }

// Exists is an existential restriction ∃R.C (equivalent to ≥1 R.C).
type Exists struct {
	R Role
	C Concept
}

// Forall is a universal restriction ∀R.C.
type Forall struct {
	R Role
	C Concept
}

// AtLeast is a qualified number restriction ≥n R.C.
type AtLeast struct {
	N int
	R Role
	C Concept
}

// AtMost is a qualified number restriction ≤n R.C.
type AtMost struct {
	N int
	R Role
	C Concept
}

// Key implements Concept.
func (Top) Key() string { return "⊤" }

// Key implements Concept.
func (Bottom) Key() string { return "⊥" }

// Key implements Concept.
func (a Atom) Key() string { return "A(" + a.Name + ")" }

// Key implements Concept.
func (n Not) Key() string { return "¬" + n.C.Key() }

// Key implements Concept.
func (c And) Key() string { return "⊓(" + joinKeys(c.Cs) + ")" }

// Key implements Concept.
func (c Or) Key() string { return "⊔(" + joinKeys(c.Cs) + ")" }

// Key implements Concept.
func (c Exists) Key() string { return "∃" + c.R.String() + "." + c.C.Key() }

// Key implements Concept.
func (c Forall) Key() string { return "∀" + c.R.String() + "." + c.C.Key() }

// Key implements Concept.
func (c AtLeast) Key() string { return fmt.Sprintf("≥%d%s.%s", c.N, c.R, c.C.Key()) }

// Key implements Concept.
func (c AtMost) Key() string { return fmt.Sprintf("≤%d%s.%s", c.N, c.R, c.C.Key()) }

func joinKeys(cs []Concept) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.Key()
	}
	return strings.Join(parts, ",")
}

// String implements Concept (human-oriented rendering).
func (Top) String() string       { return "⊤" }
func (Bottom) String() string    { return "⊥" }
func (a Atom) String() string    { return a.Name }
func (n Not) String() string     { return "¬" + n.C.String() }
func (c And) String() string     { return "(" + joinStrings(c.Cs, " ⊓ ") + ")" }
func (c Or) String() string      { return "(" + joinStrings(c.Cs, " ⊔ ") + ")" }
func (c Exists) String() string  { return "∃" + c.R.String() + "." + c.C.String() }
func (c Forall) String() string  { return "∀" + c.R.String() + "." + c.C.String() }
func (c AtLeast) String() string { return fmt.Sprintf("≥%d %s.%s", c.N, c.R, c.C) }
func (c AtMost) String() string  { return fmt.Sprintf("≤%d %s.%s", c.N, c.R, c.C) }

func joinStrings(cs []Concept, sep string) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, sep)
}

// NNF converts a concept to negation normal form with existentials
// normalized to ≥1 restrictions: negations are pushed to atoms, ¬∃/¬∀ are
// rewritten through the number-restriction dualities, and nested
// conjunctions/disjunctions are flattened.
func NNF(c Concept) Concept { return nnf(c, false) }

// Complement returns NNF(¬C).
func Complement(c Concept) Concept { return nnf(c, true) }

func nnf(c Concept, neg bool) Concept {
	switch x := c.(type) {
	case Top:
		if neg {
			return Bottom{}
		}
		return Top{}
	case Bottom:
		if neg {
			return Top{}
		}
		return Bottom{}
	case Atom:
		if neg {
			return Not{x}
		}
		return x
	case Not:
		return nnf(x.C, !neg)
	case And:
		cs := make([]Concept, 0, len(x.Cs))
		for _, sub := range x.Cs {
			cs = append(cs, nnf(sub, neg))
		}
		if neg {
			return flattenOr(cs)
		}
		return flattenAnd(cs)
	case Or:
		cs := make([]Concept, 0, len(x.Cs))
		for _, sub := range x.Cs {
			cs = append(cs, nnf(sub, neg))
		}
		if neg {
			return flattenAnd(cs)
		}
		return flattenOr(cs)
	case Exists:
		if neg {
			return Forall{x.R, nnf(x.C, true)}
		}
		return AtLeast{1, x.R, nnf(x.C, false)}
	case Forall:
		if neg {
			return AtLeast{1, x.R, nnf(x.C, true)}
		}
		return Forall{x.R, nnf(x.C, false)}
	case AtLeast:
		if neg {
			if x.N <= 0 {
				return Bottom{} // ¬(≥0 R.C) ≡ ⊥
			}
			if x.N == 1 {
				// ≤0 R.C canonicalizes to ∀R.¬C (same semantics,
				// and the tableau's ∀-rule is deterministic).
				return Forall{x.R, nnf(x.C, true)}
			}
			return AtMost{x.N - 1, x.R, nnf(x.C, false)}
		}
		if x.N <= 0 {
			return Top{}
		}
		return AtLeast{x.N, x.R, nnf(x.C, false)}
	case AtMost:
		if neg {
			return AtLeast{x.N + 1, x.R, nnf(x.C, false)}
		}
		if x.N == 0 {
			return Forall{x.R, nnf(x.C, true)} // ≤0 R.C ≡ ∀R.¬C
		}
		return AtMost{x.N, x.R, nnf(x.C, false)}
	}
	panic(fmt.Sprintf("dl: unknown concept %T", c))
}

func flattenAnd(cs []Concept) Concept {
	var flat []Concept
	for _, c := range cs {
		switch x := c.(type) {
		case And:
			flat = append(flat, x.Cs...)
		case Top:
		case Bottom:
			return Bottom{}
		default:
			flat = append(flat, c)
		}
	}
	flat = dedupe(flat)
	switch len(flat) {
	case 0:
		return Top{}
	case 1:
		return flat[0]
	}
	return And{flat}
}

func flattenOr(cs []Concept) Concept {
	var flat []Concept
	for _, c := range cs {
		switch x := c.(type) {
		case Or:
			flat = append(flat, x.Cs...)
		case Bottom:
		case Top:
			return Top{}
		default:
			flat = append(flat, c)
		}
	}
	flat = dedupe(flat)
	switch len(flat) {
	case 0:
		return Bottom{}
	case 1:
		return flat[0]
	}
	return Or{flat}
}

func dedupe(cs []Concept) []Concept {
	seen := make(map[string]bool, len(cs))
	out := cs[:0]
	for _, c := range cs {
		k := c.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Axiom is a general concept inclusion C ⊑ D.
type Axiom struct {
	Sub, Sup Concept
}

// String renders the axiom.
func (a Axiom) String() string { return a.Sub.String() + " ⊑ " + a.Sup.String() }

// TBox is a finite set of general concept inclusions.
type TBox struct {
	Axioms []Axiom
}

// Add appends an axiom C ⊑ D.
func (t *TBox) Add(sub, sup Concept) { t.Axioms = append(t.Axioms, Axiom{sub, sup}) }

// AddEquiv appends C ≡ D as the two inclusions.
func (t *TBox) AddEquiv(a, b Concept) {
	t.Add(a, b)
	t.Add(b, a)
}

// Internalize returns the concept ⊓ᵢ NNF(¬Cᵢ ⊔ Dᵢ) that every individual
// of every model of the TBox must satisfy.
func (t *TBox) Internalize() Concept {
	if t == nil || len(t.Axioms) == 0 {
		return Top{}
	}
	cs := make([]Concept, 0, len(t.Axioms))
	for _, ax := range t.Axioms {
		cs = append(cs, NNF(Or{[]Concept{Not{ax.Sub}, ax.Sup}}))
	}
	return flattenAnd(cs)
}

// compile splits the TBox into lazily-unfoldable axioms and a residual
// internalized concept. Absorption handles three left-hand-side shapes:
//
//   - A ⊑ D            → unfold[A] += NNF(D)
//   - A1⊓…⊓Ak ⊑ D      → unfold[A1] += NNF(¬(A2⊓…⊓Ak) ⊔ D)
//   - C1⊔…⊔Ck ⊑ D      → each Ci ⊑ D handled recursively
//
// Everything else lands in the internalized residual, which must be added
// to every tableau node. Lazy unfolding avoids the disjunction ¬C ⊔ D at
// nodes that never mention C, which is the standard optimization that
// makes GCI reasoning tractable in practice.
func (t *TBox) compile() (unfold map[string][]Concept, residual Concept) {
	unfold = make(map[string][]Concept)
	var general []Concept
	var absorb func(sub, sup Concept)
	absorb = func(sub, sup Concept) {
		switch x := sub.(type) {
		case Atom:
			unfold[x.Name] = append(unfold[x.Name], NNF(sup))
			return
		case Or:
			for _, d := range x.Cs {
				absorb(d, sup)
			}
			return
		case Exists:
			// Role absorption: ∃R.C ⊑ D ⟺ C ⊑ ∀R⁻.D.
			absorb(x.C, Forall{R: x.R.Inverse(), C: sup})
			return
		case And:
			allAtoms := true
			for _, c := range x.Cs {
				if _, ok := c.(Atom); !ok {
					allAtoms = false
					break
				}
			}
			if allAtoms && len(x.Cs) > 0 {
				first := x.Cs[0].(Atom)
				rest := append([]Concept(nil), x.Cs[1:]...)
				rhs := NNF(Or{[]Concept{Not{And{rest}}, sup}})
				unfold[first.Name] = append(unfold[first.Name], rhs)
				return
			}
		}
		general = append(general, NNF(Or{[]Concept{Not{sub}, sup}}))
	}
	if t != nil {
		for _, ax := range t.Axioms {
			absorb(ax.Sub, ax.Sup)
		}
	}
	return unfold, flattenAnd(general)
}
