// Package lexer tokenizes GraphQL SDL source text (June 2018 edition).
//
// The lexer implements §2.1 (Source Text) of the GraphQL specification:
// Unicode input, "#" comments to end of line, commas as ignored tokens,
// names, integer and float literals, and both quoted and block strings with
// their escape and indentation-stripping semantics.
package lexer

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"pgschema/internal/token"
)

// Lexer scans an SDL source string into tokens.
type Lexer struct {
	src    string
	offset int // byte offset of the next rune to read
	line   int
	col    int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// All tokenizes the whole input, always ending with an EOF token (or an
// Illegal token followed by EOF if a lexical error occurs).
func All(src string) []token.Token {
	lx := New(src)
	var out []token.Token
	for {
		t := lx.Next()
		out = append(out, t)
		if t.Kind == token.EOF || t.Kind == token.Illegal {
			if t.Kind == token.Illegal {
				out = append(out, token.Token{Kind: token.EOF, Pos: t.Pos})
			}
			return out
		}
	}
}

func (l *Lexer) pos() token.Position {
	return token.Position{Offset: l.offset, Line: l.line, Column: l.col}
}

// peek returns the next rune without consuming it, or -1 at EOF.
func (l *Lexer) peek() rune {
	if l.offset >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.offset:])
	return r
}

// peekAt returns the rune n bytes ahead (for ASCII lookahead only).
func (l *Lexer) peekAt(n int) rune {
	if l.offset+n >= len(l.src) {
		return -1
	}
	return rune(l.src[l.offset+n])
}

// advance consumes the next rune and maintains line/column accounting.
func (l *Lexer) advance() rune {
	r, size := utf8.DecodeRuneInString(l.src[l.offset:])
	l.offset += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// skipIgnored consumes whitespace, commas, comments, and BOM (§2.1.7).
func (l *Lexer) skipIgnored() {
	for {
		switch r := l.peek(); r {
		case ' ', '\t', '\n', '\r', ',', '\ufeff':
			l.advance()
		case '#':
			for l.peek() != -1 && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isNameStart(r rune) bool {
	return r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z')
}

func isNameCont(r rune) bool { return isNameStart(r) || isDigit(r) }

func isDigit(r rune) bool { return '0' <= r && r <= '9' }

func (l *Lexer) illegal(pos token.Position, format string, args ...any) token.Token {
	return token.Token{Kind: token.Illegal, Literal: fmt.Sprintf(format, args...), Pos: pos}
}

// Next returns the next token in the input.
func (l *Lexer) Next() token.Token {
	l.skipIgnored()
	pos := l.pos()
	r := l.peek()
	switch {
	case r == -1:
		return token.Token{Kind: token.EOF, Pos: pos}
	case isNameStart(r):
		return l.scanName(pos)
	case isDigit(r) || r == '-':
		return l.scanNumber(pos)
	case r == '"':
		if l.peekAt(1) == '"' && l.peekAt(2) == '"' {
			return l.scanBlockString(pos)
		}
		return l.scanString(pos)
	}
	l.advance()
	punct := map[rune]token.Kind{
		'!': token.Bang, '$': token.Dollar, '&': token.Amp,
		'(': token.ParenL, ')': token.ParenR, ':': token.Colon,
		'=': token.Equals, '@': token.At, '[': token.BracketL,
		']': token.BracketR, '{': token.BraceL, '}': token.BraceR,
		'|': token.Pipe,
	}
	if k, ok := punct[r]; ok {
		return token.Token{Kind: k, Pos: pos}
	}
	if r == '.' {
		if l.peek() == '.' && l.peekAt(1) == '.' {
			l.advance()
			l.advance()
			return token.Token{Kind: token.Spread, Pos: pos}
		}
		return l.illegal(pos, "unexpected '.'; did you mean '...'?")
	}
	return l.illegal(pos, "unexpected character %q", r)
}

func (l *Lexer) scanName(pos token.Position) token.Token {
	start := l.offset
	for isNameCont(l.peek()) {
		l.advance()
	}
	return token.Token{Kind: token.Name, Literal: l.src[start:l.offset], Pos: pos}
}

// scanNumber scans Int and Float literals (§2.9.1, §2.9.2).
func (l *Lexer) scanNumber(pos token.Position) token.Token {
	start := l.offset
	if l.peek() == '-' {
		l.advance()
	}
	if !isDigit(l.peek()) {
		return l.illegal(pos, "expected digit after '-'")
	}
	if l.peek() == '0' {
		l.advance()
		if isDigit(l.peek()) {
			return l.illegal(pos, "integer literal must not have a leading zero")
		}
	} else {
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	isFloat := false
	if l.peek() == '.' {
		isFloat = true
		l.advance()
		if !isDigit(l.peek()) {
			return l.illegal(pos, "expected digit after '.' in float literal")
		}
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	if r := l.peek(); r == 'e' || r == 'E' {
		isFloat = true
		l.advance()
		if r := l.peek(); r == '+' || r == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			return l.illegal(pos, "expected digit in float exponent")
		}
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	// A number must not run directly into a name ("123abc").
	if isNameStart(l.peek()) {
		return l.illegal(pos, "invalid number literal: unexpected %q", l.peek())
	}
	lit := l.src[start:l.offset]
	if isFloat {
		return token.Token{Kind: token.Float, Literal: lit, Pos: pos}
	}
	return token.Token{Kind: token.Int, Literal: lit, Pos: pos}
}

// scanString scans a quoted string literal with escapes (§2.9.4).
func (l *Lexer) scanString(pos token.Position) token.Token {
	l.advance() // opening quote
	var b strings.Builder
	for {
		r := l.peek()
		switch {
		case r == -1 || r == '\n' || r == '\r':
			return l.illegal(pos, "unterminated string literal")
		case r == '"':
			l.advance()
			return token.Token{Kind: token.String, Literal: b.String(), Pos: pos}
		case r == '\\':
			l.advance()
			esc := l.peek()
			if esc == -1 {
				return l.illegal(pos, "unterminated string literal")
			}
			l.advance()
			switch esc {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case '/':
				b.WriteByte('/')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case 'u':
				cp := 0
				for i := 0; i < 4; i++ {
					h := l.peek()
					d := hexVal(h)
					if d < 0 {
						return l.illegal(pos, "invalid \\u escape in string literal")
					}
					l.advance()
					cp = cp*16 + d
				}
				b.WriteRune(rune(cp))
			default:
				return l.illegal(pos, "invalid escape character %q in string literal", esc)
			}
		default:
			b.WriteRune(l.advance())
		}
	}
}

func hexVal(r rune) int {
	switch {
	case '0' <= r && r <= '9':
		return int(r - '0')
	case 'a' <= r && r <= 'f':
		return int(r-'a') + 10
	case 'A' <= r && r <= 'F':
		return int(r-'A') + 10
	}
	return -1
}

// scanBlockString scans a triple-quoted block string (§2.9.4) and applies
// the BlockStringValue indentation-stripping algorithm.
func (l *Lexer) scanBlockString(pos token.Position) token.Token {
	l.advance()
	l.advance()
	l.advance() // opening """
	var raw strings.Builder
	for {
		r := l.peek()
		if r == -1 {
			return l.illegal(pos, "unterminated block string literal")
		}
		if r == '"' && l.peekAt(1) == '"' && l.peekAt(2) == '"' {
			l.advance()
			l.advance()
			l.advance()
			return token.Token{Kind: token.BlockString, Literal: blockStringValue(raw.String()), Pos: pos}
		}
		if r == '\\' && l.peekAt(1) == '"' && l.peekAt(2) == '"' && l.peekAt(3) == '"' {
			l.advance()
			l.advance()
			l.advance()
			l.advance()
			raw.WriteString(`"""`)
			continue
		}
		raw.WriteRune(l.advance())
	}
}

// blockStringValue implements the spec's BlockStringValue(rawValue)
// algorithm: strip common indentation and leading/trailing blank lines.
func blockStringValue(raw string) string {
	lines := strings.Split(strings.ReplaceAll(raw, "\r\n", "\n"), "\n")
	commonIndent := -1
	for i, line := range lines {
		if i == 0 {
			continue
		}
		indent := leadingWhitespace(line)
		if indent < len(line) && (commonIndent == -1 || indent < commonIndent) {
			commonIndent = indent
		}
	}
	if commonIndent > 0 {
		for i := 1; i < len(lines); i++ {
			if commonIndent < len(lines[i]) {
				lines[i] = lines[i][commonIndent:]
			} else {
				lines[i] = strings.TrimLeft(lines[i], " \t")
			}
		}
	}
	for len(lines) > 0 && strings.TrimLeft(lines[0], " \t") == "" {
		lines = lines[1:]
	}
	for len(lines) > 0 && strings.TrimLeft(lines[len(lines)-1], " \t") == "" {
		lines = lines[:len(lines)-1]
	}
	return strings.Join(lines, "\n")
}

func leadingWhitespace(s string) int {
	n := 0
	for n < len(s) && (s[n] == ' ' || s[n] == '\t') {
		n++
	}
	return n
}
