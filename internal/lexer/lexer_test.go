package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"pgschema/internal/token"
)

// kinds extracts the token kinds of an input, excluding the trailing EOF.
func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks := All(src)
	out := make([]token.Kind, 0, len(toks)-1)
	for _, tk := range toks {
		if tk.Kind == token.EOF {
			break
		}
		out = append(out, tk.Kind)
	}
	return out
}

func TestPunctuators(t *testing.T) {
	src := "! $ & ( ) ... : = @ [ ] { } |"
	want := []token.Kind{
		token.Bang, token.Dollar, token.Amp, token.ParenL, token.ParenR,
		token.Spread, token.Colon, token.Equals, token.At,
		token.BracketL, token.BracketR, token.BraceL, token.BraceR, token.Pipe,
	}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNames(t *testing.T) {
	for _, name := range []string{"a", "_", "_a", "Type", "snake_case", "x123", "__typename"} {
		toks := All(name)
		if toks[0].Kind != token.Name || toks[0].Literal != name {
			t.Errorf("lexing %q: got %v", name, toks[0])
		}
	}
}

func TestIntLiterals(t *testing.T) {
	for _, tc := range []struct{ src, lit string }{
		{"0", "0"}, {"42", "42"}, {"-7", "-7"}, {"-0", "-0"}, {"1234567890", "1234567890"},
	} {
		toks := All(tc.src)
		if toks[0].Kind != token.Int || toks[0].Literal != tc.lit {
			t.Errorf("lexing %q: got %v, want Int(%s)", tc.src, toks[0], tc.lit)
		}
	}
}

func TestFloatLiterals(t *testing.T) {
	for _, src := range []string{"1.5", "-1.5", "0.0", "1e10", "1E10", "1e+10", "1e-10", "6.022e23", "-1.5e-3"} {
		toks := All(src)
		if toks[0].Kind != token.Float || toks[0].Literal != src {
			t.Errorf("lexing %q: got %v, want Float(%s)", src, toks[0], src)
		}
	}
}

func TestBadNumbers(t *testing.T) {
	for _, src := range []string{"01", "-", "1.", "1.e3", "1e", "1e+", "123abc", "1.2.3"} {
		toks := All(src)
		found := false
		for _, tk := range toks {
			if tk.Kind == token.Illegal {
				found = true
			}
		}
		if !found {
			t.Errorf("lexing %q: expected an Illegal token, got %v", src, toks)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{`"hello"`, "hello"},
		{`""`, ""},
		{`"a\"b"`, `a"b`},
		{`"a\\b"`, `a\b`},
		{`"a\nb"`, "a\nb"},
		{`"a\tb"`, "a\tb"},
		{`"A"`, "A"},
		{`"é"`, "é"},
		{`"unicode ☃"`, "unicode ☃"},
	} {
		toks := All(tc.src)
		if toks[0].Kind != token.String || toks[0].Literal != tc.want {
			t.Errorf("lexing %s: got %v, want String(%q)", tc.src, toks[0], tc.want)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	for _, src := range []string{`"abc`, `"abc` + "\n" + `def"`, `"a\`} {
		toks := All(src)
		if toks[0].Kind != token.Illegal {
			t.Errorf("lexing %q: expected Illegal, got %v", src, toks[0])
		}
	}
}

func TestBlockString(t *testing.T) {
	src := "\"\"\"\n    Hello,\n      World!\n\n    Yours,\n      GraphQL.\n  \"\"\""
	want := "Hello,\n  World!\n\nYours,\n  GraphQL."
	toks := All(src)
	if toks[0].Kind != token.BlockString {
		t.Fatalf("got %v, want BlockString", toks[0])
	}
	if toks[0].Literal != want {
		t.Errorf("block string value:\ngot  %q\nwant %q", toks[0].Literal, want)
	}
}

func TestBlockStringEscapedTripleQuote(t *testing.T) {
	src := `"""contains \""" inside"""`
	toks := All(src)
	if toks[0].Kind != token.BlockString || toks[0].Literal != `contains """ inside` {
		t.Errorf("got %v", toks[0])
	}
}

func TestCommentsAndCommasIgnored(t *testing.T) {
	src := "a, b # comment with , and \"\nc"
	got := kinds(t, src)
	if len(got) != 3 {
		t.Fatalf("got %d tokens, want 3 names: %v", len(got), All(src))
	}
}

func TestPositions(t *testing.T) {
	src := "type User {\n  id: ID!\n}"
	toks := All(src)
	// "id" is the 4th token, at line 2 column 3.
	id := toks[3]
	if id.Literal != "id" {
		t.Fatalf("expected token 'id', got %v", id)
	}
	if id.Pos.Line != 2 || id.Pos.Column != 3 {
		t.Errorf("position of 'id': got %v, want 2:3", id.Pos)
	}
}

func TestBOMSkipped(t *testing.T) {
	src := "\ufefftype"
	toks := All(src)
	if toks[0].Kind != token.Name || toks[0].Literal != "type" {
		t.Errorf("BOM not skipped: %v", toks[0])
	}
}

func TestEOFOnly(t *testing.T) {
	for _, src := range []string{"", "   ", "\n\n", "# just a comment", ",,,"} {
		toks := All(src)
		if len(toks) != 1 || toks[0].Kind != token.EOF {
			t.Errorf("lexing %q: got %v, want only EOF", src, toks)
		}
	}
}

// TestLexerNeverPanics feeds random strings; the lexer must terminate and
// produce a token stream ending in EOF for any input.
func TestLexerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		toks := All(s)
		return len(toks) >= 1 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestNameRoundTrip checks that any lexed name token reproduces its input.
func TestNameRoundTrip(t *testing.T) {
	f := func(raw string) bool {
		// Construct a valid name from arbitrary input.
		var b strings.Builder
		b.WriteByte('_')
		for _, r := range raw {
			if r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9') {
				b.WriteRune(r)
			}
		}
		name := b.String()
		toks := All(name)
		return toks[0].Kind == token.Name && toks[0].Literal == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
