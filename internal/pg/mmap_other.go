//go:build !unix

package pg

// snapMapping on platforms without mmap support: an aligned heap copy
// of the file. Open cost becomes O(file), but the format and every
// accessor behave identically.
type snapMapping struct {
	data   []byte
	mapped bool
	path   string
}

func mapSnapshotFile(path string) (*snapMapping, error) {
	return readSnapshotFile(path)
}

func (m *snapMapping) close() error { return nil }
