package pg

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"pgschema/internal/values"
)

// jsonGraph is the interchange form: a flat node list and an edge list
// referencing nodes by their position-independent "id" strings.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID    string                  `json:"id"`
	Label string                  `json:"label"`
	Props map[string]values.Value `json:"properties,omitempty"`
}

type jsonEdge struct {
	Src   string                  `json:"source"`
	Dst   string                  `json:"target"`
	Label string                  `json:"label"`
	Props map[string]values.Value `json:"properties,omitempty"`
}

// WriteJSON serializes the graph. Node IDs are written as "n<index>".
func (g *Graph) WriteJSON(w io.Writer) error {
	doc := jsonGraph{Nodes: []jsonNode{}, Edges: []jsonEdge{}}
	name := make(map[NodeID]string, g.NumNodes())
	for _, id := range g.Nodes() {
		nm := fmt.Sprintf("n%d", id)
		name[id] = nm
		jn := jsonNode{ID: nm, Label: g.NodeLabel(id), Props: propMap(g.nodes[id].props)}
		doc.Nodes = append(doc.Nodes, jn)
	}
	for _, id := range g.Edges() {
		src, dst := g.Endpoints(id)
		je := jsonEdge{Src: name[src], Dst: name[dst], Label: g.EdgeLabel(id), Props: propMap(g.edges[id].props)}
		doc.Edges = append(doc.Edges, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// propMap rebuilds the JSON interchange map from the sorted prop list.
func propMap(props []Prop) map[string]values.Value {
	if len(props) == 0 {
		return nil
	}
	m := make(map[string]values.Value, len(props))
	for _, p := range props {
		m[p.Name] = p.Value
	}
	return m
}

// ReadJSON deserializes a graph written by WriteJSON (or hand-authored in
// the same format).
func ReadJSON(r io.Reader) (*Graph, error) {
	var doc jsonGraph
	dec := json.NewDecoder(bufio.NewReaderSize(r, csvReaderSize))
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("pg: decoding graph JSON: %w", err)
	}
	g := New()
	byName := make(map[string]NodeID, len(doc.Nodes))
	for _, jn := range doc.Nodes {
		if jn.ID == "" {
			return nil, fmt.Errorf("pg: node without id")
		}
		if _, dup := byName[jn.ID]; dup {
			return nil, fmt.Errorf("pg: duplicate node id %q", jn.ID)
		}
		id := g.AddNode(jn.Label)
		byName[jn.ID] = id
		for name, v := range jn.Props {
			g.SetNodeProp(id, name, v)
		}
	}
	for i, je := range doc.Edges {
		src, ok := byName[je.Src]
		if !ok {
			return nil, fmt.Errorf("pg: edge %d references unknown source %q", i, je.Src)
		}
		dst, ok := byName[je.Dst]
		if !ok {
			return nil, fmt.Errorf("pg: edge %d references unknown target %q", i, je.Dst)
		}
		id, err := g.AddEdge(src, dst, je.Label)
		if err != nil {
			return nil, err
		}
		for name, v := range je.Props {
			g.SetEdgeProp(id, name, v)
		}
	}
	return g, nil
}
