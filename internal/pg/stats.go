package pg

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a graph for reporting and the CLI's `stats` command.
type Stats struct {
	Nodes         int
	Edges         int
	NodeProps     int // |dom(σ) ∩ (V × Props)|
	EdgeProps     int // |dom(σ) ∩ (E × Props)|
	NodesByLabel  map[string]int
	EdgesByLabel  map[string]int
	MaxOutDegree  int
	MaxInDegree   int
	MeanOutDegree float64
	IsolatedNodes int
	SelfLoops     int
	ParallelPairs int // (src,dst,label) triples with more than one edge
}

// ComputeStats walks the graph once and returns its statistics.
func (g *Graph) ComputeStats() Stats {
	st := Stats{
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		NodesByLabel: make(map[string]int),
		EdgesByLabel: make(map[string]int),
	}
	for _, id := range g.Nodes() {
		st.NodesByLabel[g.NodeLabel(id)]++
		st.NodeProps += len(g.nodes[id].props)
		outDeg := len(g.OutEdges(id))
		inDeg := len(g.InEdges(id))
		if outDeg > st.MaxOutDegree {
			st.MaxOutDegree = outDeg
		}
		if inDeg > st.MaxInDegree {
			st.MaxInDegree = inDeg
		}
		if outDeg == 0 && inDeg == 0 {
			st.IsolatedNodes++
		}
	}
	seen := make(map[string]int)
	for _, id := range g.Edges() {
		st.EdgesByLabel[g.EdgeLabel(id)]++
		st.EdgeProps += len(g.edges[id].props)
		src, dst := g.Endpoints(id)
		if src == dst {
			st.SelfLoops++
		}
		key := fmt.Sprintf("%d|%d|%s", src, dst, g.EdgeLabel(id))
		seen[key]++
	}
	for _, n := range seen {
		if n > 1 {
			st.ParallelPairs++
		}
	}
	if st.Nodes > 0 {
		st.MeanOutDegree = float64(st.Edges) / float64(st.Nodes)
	}
	return st
}

// String renders the statistics as a multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes: %d  edges: %d  node-props: %d  edge-props: %d\n",
		s.Nodes, s.Edges, s.NodeProps, s.EdgeProps)
	fmt.Fprintf(&b, "max out-degree: %d  max in-degree: %d  mean out-degree: %.2f\n",
		s.MaxOutDegree, s.MaxInDegree, s.MeanOutDegree)
	fmt.Fprintf(&b, "isolated nodes: %d  self-loops: %d  parallel (src,dst,label) groups: %d\n",
		s.IsolatedNodes, s.SelfLoops, s.ParallelPairs)
	for _, kv := range sortedCounts(s.NodesByLabel) {
		fmt.Fprintf(&b, "  node label %-20s %d\n", kv.k, kv.n)
	}
	for _, kv := range sortedCounts(s.EdgesByLabel) {
		fmt.Fprintf(&b, "  edge label %-20s %d\n", kv.k, kv.n)
	}
	return b.String()
}

type countEntry struct {
	k string
	n int
}

func sortedCounts(m map[string]int) []countEntry {
	out := make([]countEntry, 0, len(m))
	for k, n := range m {
		out = append(out, countEntry{k, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}
