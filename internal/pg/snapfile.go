package pg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strconv"
	"unsafe"

	"pgschema/internal/values"
)

// The .pgsnap format: a versioned, mmap-able serialization of Snapshot.
//
//	header (80 bytes, little-endian)
//	  0   magic "PGSNAP\r\n"
//	  8   format version (u32)
//	  12  byte-order mark 0x0A0B0C0D, written in host order
//	  16  epoch (u64)
//	  24  node bound (u64)        32  edge bound (u64)
//	  40  live nodes (u64)        48  live edges (u64)
//	  56  symbol count (u64)      64  list count (u64)
//	  72  section count (u32)     76  header CRC (u32, crc32c over
//	                                  header[0:76] ++ section table)
//	section table (19 × 24 bytes)
//	  {offset u64, size u64, crc32c u32, element size u32}
//	sections, each 8-byte aligned, zero-padded between
//
// Every section is the raw bytes of one snapshot column, so writing is
// whole-slice copies and opening aliases the mapping with zero copies.
// Property rows are stored as 16-byte pointer-free propRecs plus one
// shared string arena; list values (rare) are flattened into listRecs
// spans and decoded eagerly at open, bounded by the header list count.
//
// Trust model: a default open verifies the header CRC, the full section
// geometry (bounds, alignment, element sizes, header-implied counts),
// and checksums + decodes the sections it materializes eagerly (symbol
// table, list values) — O(header + symbols), independent of graph size,
// with data columns paged in lazily on first access. The Verify option
// additionally checksums every section and deep-validates structure
// (offset monotonicity, ID ranges, record payload bounds); it is the
// mode for files that crossed a trust boundary, at the price of reading
// the whole file.

const (
	snapMagic       = "PGSNAP\r\n"
	snapVersion     = uint32(1)
	snapBOM         = uint32(0x0A0B0C0D)
	snapHeaderSize  = 80
	snapSectionSize = 24
	snapSections    = 19

	// maxListDepth bounds list-value nesting when decoding, so a
	// corrupt self-referential span errors instead of recursing forever.
	maxListDepth = 64
)

// Section indexes. The order is part of the format.
const (
	secSymArena = iota
	secSymOff
	secNodeLabels
	secEdgeLabels
	secEdgeSrc
	secEdgeDst
	secOutOff
	secOutEdges
	secInOff
	secInEdges
	secNodePropOff
	secNodePropRecs
	secEdgePropOff
	secEdgePropRecs
	secPropArena
	secListRoots
	secListRecs
	secPropSetDir
	secPropSetWords
)

var secNames = [snapSections]string{
	"symArena", "symOff", "nodeLabels", "edgeLabels", "edgeSrc", "edgeDst",
	"outOff", "outEdges", "inOff", "inEdges", "nodePropOff", "nodePropRecs",
	"edgePropOff", "edgePropRecs", "propArena", "listRoots", "listRecs",
	"propSetDir", "propSetWords",
}

var secElem = [snapSections]uint32{
	1, 4, 4, 4, 8, 8, 4, 8, 4, 8, 4, propRecSize, 4, propRecSize, 1, 8, propRecSize, 4, 8,
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func align8(x int) int { return (x + 7) &^ 7 }

// readSnapshotFile is the mmap fallback: the whole file in one heap
// buffer, 8-aligned so the same column casts apply.
func readSnapshotFile(path string) (*snapMapping, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("empty file")
	}
	buf := make([]uint64, (len(raw)+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(raw))
	copy(data, raw)
	return &snapMapping{data: data, path: path}, nil
}

// viewSlice reinterprets a byte slice as a []T without copying. The
// caller guarantees 8-byte alignment and that len(b) is a multiple of
// the element size (the opener validates both).
func viewSlice[T any](b []byte) []T {
	var z T
	n := len(b) / int(unsafe.Sizeof(z))
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
}

// bytesOf is the inverse view, for whole-slice section writes.
func bytesOf[T any](s []T) []byte {
	var z T
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(z)))
}

// listFlattener serializes decoded list values into contiguous spans of
// element records; nested lists become spans of their own, referenced
// by (offset<<32 | count) payloads.
type listFlattener struct {
	arena []byte
	recs  []propRec
}

func (lf *listFlattener) flatten(v values.Value) (uint64, error) {
	n := v.Len()
	buf := make([]propRec, n)
	for i := 0; i < n; i++ {
		el := v.Elem(i)
		r := propRec{sym: -1, kind: uint8(el.Kind())}
		switch el.Kind() {
		case values.KindNull:
		case values.KindInt:
			r.a = uint64(el.AsInt())
		case values.KindFloat:
			r.a = math.Float64bits(el.AsFloat())
		case values.KindBoolean:
			if el.AsBool() {
				r.a = 1
			}
		case values.KindString, values.KindID, values.KindEnum:
			str := el.AsString()
			if len(lf.arena)+len(str) > math.MaxUint32 {
				return 0, fmt.Errorf("property string arena exceeds 4 GiB")
			}
			r.a = uint64(len(lf.arena))<<32 | uint64(uint32(len(str)))
			lf.arena = append(lf.arena, str...)
		case values.KindList:
			span, err := lf.flatten(el)
			if err != nil {
				return 0, err
			}
			r.a = span
		default:
			return 0, fmt.Errorf("cannot encode list element of kind %v", el.Kind())
		}
		buf[i] = r
	}
	off := len(lf.recs)
	if off+n > math.MaxUint32 {
		return 0, fmt.Errorf("list record table exceeds 2^32 entries")
	}
	lf.recs = append(lf.recs, buf...)
	return uint64(off)<<32 | uint64(uint32(n)), nil
}

// decodeListSpan rebuilds one list value from its record span, bounds-
// checking every access so a corrupt file errors instead of panicking.
func decodeListSpan(span uint64, recs []propRec, arena []byte, depth int) (values.Value, error) {
	if depth > maxListDepth {
		return values.Value{}, fmt.Errorf("list nesting exceeds %d", maxListDepth)
	}
	off, n := int(span>>32), int(uint32(span))
	if off < 0 || n < 0 || off+n > len(recs) {
		return values.Value{}, fmt.Errorf("list span [%d,%d) out of bounds (have %d records)", off, off+n, len(recs))
	}
	elems := make([]values.Value, n)
	for i := 0; i < n; i++ {
		r := &recs[off+i]
		switch values.Kind(r.kind) {
		case values.KindNull:
			elems[i] = values.Null
		case values.KindInt:
			elems[i] = values.Int(int64(r.a))
		case values.KindFloat:
			elems[i] = values.Float(math.Float64frombits(r.a))
		case values.KindBoolean:
			elems[i] = values.Boolean(r.a != 0)
		case values.KindString, values.KindID, values.KindEnum:
			so, sn := int(r.a>>32), int(uint32(r.a))
			if so < 0 || sn < 0 || so+sn > len(arena) {
				return values.Value{}, fmt.Errorf("list string [%d,%d) outside arena of %d bytes", so, so+sn, len(arena))
			}
			// Copy: eagerly decoded list values must not dangle into
			// the mapping if it is ever closed.
			str := string(arena[so : so+sn])
			switch values.Kind(r.kind) {
			case values.KindID:
				elems[i] = values.ID(str)
			case values.KindEnum:
				elems[i] = values.Enum(str)
			default:
				elems[i] = values.String(str)
			}
		case values.KindList:
			el, err := decodeListSpan(r.a, recs, arena, depth+1)
			if err != nil {
				return values.Value{}, err
			}
			elems[i] = el
		default:
			return values.Value{}, fmt.Errorf("list element has invalid kind %d", r.kind)
		}
	}
	return values.List(elems...), nil
}

// WriteSnapshot serializes a snapshot as a .pgsnap image. All columns
// are written as whole slices; only property rows of heap snapshots
// need per-record encoding (their values hold pointers), and a
// record-backed snapshot with an empty overflow arena round-trips as
// raw column dumps.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if strconv.IntSize != 64 {
		return fmt.Errorf("pgsnap: format requires a 64-bit platform")
	}
	if s.symNames == nil && (len(s.nodePropSet) > 0 || len(s.nodeProps) > 0 || len(s.nodePropRecs) > 0 ||
		len(s.edgeProps) > 0 || len(s.edgePropRecs) > 0) {
		return fmt.Errorf("pgsnap: snapshot carries no symbol names; rebuild it via Graph.Snapshot")
	}

	// Normalize property storage to single-arena record columns.
	var nodeRecs, edgeRecs []propRec
	var arena []byte
	var lists []values.Value
	if s.recBacked {
		nodeRecs, edgeRecs, arena, lists = s.nodePropRecs, s.edgePropRecs, s.propArena, s.propLists
		if len(s.propOver) > 0 {
			shift := len(s.propArena)
			if shift+len(s.propOver) > math.MaxUint32 {
				return fmt.Errorf("pgsnap: merged string arena exceeds 4 GiB")
			}
			merged := make([]byte, 0, shift+len(s.propOver))
			merged = append(merged, s.propArena...)
			merged = append(merged, s.propOver...)
			arena = merged
			fix := func(recs []propRec) []propRec {
				out := make([]propRec, len(recs))
				copy(out, recs)
				for i := range out {
					if out[i].arena == 1 {
						out[i].arena = 0
						out[i].a += uint64(shift) << 32
					}
				}
				return out
			}
			nodeRecs, edgeRecs = fix(nodeRecs), fix(edgeRecs)
		}
	} else {
		enc := recEncoder{arenaID: 0}
		if err := enc.addAll(s.nodeProps); err != nil {
			return fmt.Errorf("pgsnap: %w", err)
		}
		nNode := len(enc.recs)
		if err := enc.addAll(s.edgeProps); err != nil {
			return fmt.Errorf("pgsnap: %w", err)
		}
		nodeRecs, edgeRecs = enc.recs[:nNode:nNode], enc.recs[nNode:]
		arena, lists = enc.arena, enc.lists
	}

	// Flatten list values (shares the string arena).
	lf := listFlattener{arena: arena}
	roots := make([]uint64, len(lists))
	for i := range lists {
		span, err := lf.flatten(lists[i])
		if err != nil {
			return fmt.Errorf("pgsnap: %w", err)
		}
		roots[i] = span
	}
	arena = lf.arena

	// Symbol table arena.
	symArenaLen := 0
	for _, name := range s.symNames {
		symArenaLen += len(name)
	}
	if symArenaLen > math.MaxUint32 {
		return fmt.Errorf("pgsnap: symbol arena exceeds 4 GiB")
	}
	symArena := make([]byte, 0, symArenaLen)
	symOff := make([]uint32, len(s.symNames)+1)
	for i, name := range s.symNames {
		symArena = append(symArena, name...)
		symOff[i+1] = uint32(len(symArena))
	}

	// Presence bitsets: a directory of 1-based set ordinals per sym
	// (0 = no set) plus the concatenated word blocks.
	nn := len(s.nodeLabels)
	words := (nn + 63) / 64
	dir := make([]uint32, len(s.symNames))
	var setWords []uint64
	numSets := uint32(0)
	for sym, set := range s.nodePropSet {
		if set == nil || sym >= len(dir) {
			continue
		}
		numSets++
		dir[sym] = numSets
		if len(set) == words {
			setWords = append(setWords, set...)
		} else {
			// Defensive: normalize a set built against a different
			// bound to exactly `words` words.
			tmp := make([]uint64, words)
			copy(tmp, set)
			setWords = append(setWords, tmp...)
		}
	}

	secs := [snapSections][]byte{
		secSymArena:     symArena,
		secSymOff:       bytesOf(symOff),
		secNodeLabels:   bytesOf(s.nodeLabels),
		secEdgeLabels:   bytesOf(s.edgeLabels),
		secEdgeSrc:      bytesOf(s.edgeSrc),
		secEdgeDst:      bytesOf(s.edgeDst),
		secOutOff:       bytesOf(s.outOff),
		secOutEdges:     bytesOf(s.outEdges),
		secInOff:        bytesOf(s.inOff),
		secInEdges:      bytesOf(s.inEdges),
		secNodePropOff:  bytesOf(s.nodePropOff),
		secNodePropRecs: bytesOf(nodeRecs),
		secEdgePropOff:  bytesOf(s.edgePropOff),
		secEdgePropRecs: bytesOf(edgeRecs),
		secPropArena:    arena,
		secListRoots:    bytesOf(roots),
		secListRecs:     bytesOf(lf.recs),
		secPropSetDir:   bytesOf(dir),
		secPropSetWords: bytesOf(setWords),
	}

	// Section table: offsets, sizes, checksums.
	table := make([]byte, snapSections*snapSectionSize)
	off := align8(snapHeaderSize + len(table))
	for i, sec := range secs {
		ent := table[i*snapSectionSize:]
		binary.LittleEndian.PutUint64(ent[0:], uint64(off))
		binary.LittleEndian.PutUint64(ent[8:], uint64(len(sec)))
		binary.LittleEndian.PutUint32(ent[16:], crc32.Checksum(sec, castagnoli))
		binary.LittleEndian.PutUint32(ent[20:], secElem[i])
		off += align8(len(sec))
	}

	hdr := make([]byte, snapHeaderSize)
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:], snapVersion)
	*(*uint32)(unsafe.Pointer(&hdr[12])) = snapBOM
	binary.LittleEndian.PutUint64(hdr[16:], s.epoch)
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(s.nodeLabels)))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(s.edgeLabels)))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(s.liveNodes))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(s.liveEdges))
	binary.LittleEndian.PutUint64(hdr[56:], uint64(len(s.symNames)))
	binary.LittleEndian.PutUint64(hdr[64:], uint64(len(roots)))
	binary.LittleEndian.PutUint32(hdr[72:], snapSections)
	crc := crc32.Checksum(hdr[:76], castagnoli)
	crc = crc32.Update(crc, castagnoli, table)
	binary.LittleEndian.PutUint32(hdr[76:], crc)

	bw := bufio.NewWriterSize(w, 1<<20)
	var pad [8]byte
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.Write(table); err != nil {
		return err
	}
	if p := align8(snapHeaderSize+len(table)) - (snapHeaderSize + len(table)); p > 0 {
		if _, err := bw.Write(pad[:p]); err != nil {
			return err
		}
	}
	for _, sec := range secs {
		if _, err := bw.Write(sec); err != nil {
			return err
		}
		if p := align8(len(sec)) - len(sec); p > 0 {
			if _, err := bw.Write(pad[:p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// OpenOption configures OpenSnapshot.
type OpenOption func(*openOpts)

type openOpts struct{ verify bool }

// Verify makes OpenSnapshot checksum every section and deep-validate
// the structure (offset monotonicity, ID ranges, record payloads)
// before returning. Use it for files that crossed a trust boundary; it
// reads the whole file, trading the O(header) open for the guarantee
// that no later column access can observe corrupt data.
func Verify() OpenOption { return func(o *openOpts) { o.verify = true } }

// OpenSnapshot maps a .pgsnap file read-only and returns a Graph whose
// snapshot columns alias the mapping: no allocations proportional to
// graph size, open cost O(header + symbol table), pages faulted in
// lazily on first access. The graph serves compiled validation and
// query workloads directly from the mapped snapshot; the first
// mutation (or store-shaped read, e.g. the rule-by-rule engine)
// materializes a private mutable store copy-on-write — the file is
// never written through.
//
// Close releases the mapping; see Graph.Close for the lifetime rules.
func OpenSnapshot(path string, opts ...OpenOption) (*Graph, error) {
	var o openOpts
	for _, opt := range opts {
		opt(&o)
	}
	m, err := mapSnapshotFile(path)
	if err != nil {
		return nil, fmt.Errorf("pgsnap: %s: %w", path, err)
	}
	s, syms, err := loadSnapshot(m.data, path, o.verify)
	if err != nil {
		m.close()
		return nil, err
	}
	s.mapping = m
	g := &Graph{syms: syms, epoch: s.epoch, mapping: m}
	g.snap.Store(s)
	g.cold.Store(s)
	return g, nil
}

// loadSnapshot reconstructs a record-backed Snapshot over a .pgsnap
// image. It never panics: every decoded offset is validated before use,
// and (in verify mode) every section checksum and structural invariant
// is checked, so corruption yields a precise error.
func loadSnapshot(data []byte, path string, verify bool) (*Snapshot, symbols, error) {
	var none symbols
	fail := func(format string, args ...any) (*Snapshot, symbols, error) {
		return nil, none, fmt.Errorf("pgsnap: %s: %s", path, fmt.Sprintf(format, args...))
	}
	if strconv.IntSize != 64 {
		return fail("format requires a 64-bit platform")
	}
	if len(data) < snapHeaderSize {
		return fail("truncated: %d bytes, want at least the %d-byte header", len(data), snapHeaderSize)
	}
	if string(data[:8]) != snapMagic {
		return fail("bad magic %q: not a .pgsnap file", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != snapVersion {
		return fail("unsupported format version %d (this build reads version %d)", v, snapVersion)
	}
	if bom := *(*uint32)(unsafe.Pointer(&data[12])); bom != snapBOM {
		return fail("foreign byte order (mark %#08x): file was written on an incompatible platform", bom)
	}
	epoch := binary.LittleEndian.Uint64(data[16:])
	nodeBound := binary.LittleEndian.Uint64(data[24:])
	edgeBound := binary.LittleEndian.Uint64(data[32:])
	liveNodes := binary.LittleEndian.Uint64(data[40:])
	liveEdges := binary.LittleEndian.Uint64(data[48:])
	symCount := binary.LittleEndian.Uint64(data[56:])
	listCount := binary.LittleEndian.Uint64(data[64:])
	if sc := binary.LittleEndian.Uint32(data[72:]); sc != snapSections {
		return fail("section count %d, want %d", sc, snapSections)
	}
	tableEnd := snapHeaderSize + snapSections*snapSectionSize
	dataStart := align8(tableEnd)
	if len(data) < dataStart {
		return fail("truncated: %d bytes, want at least %d for header and section table", len(data), dataStart)
	}
	wantCRC := binary.LittleEndian.Uint32(data[76:])
	crc := crc32.Checksum(data[:76], castagnoli)
	crc = crc32.Update(crc, castagnoli, data[snapHeaderSize:tableEnd])
	if crc != wantCRC {
		return fail("header checksum mismatch: file %#08x, computed %#08x", wantCRC, crc)
	}
	const maxCount = uint64(math.MaxInt32) * 64 // generous sanity bound
	if nodeBound > maxCount || edgeBound > maxCount || symCount > maxCount || listCount > maxCount ||
		liveNodes > nodeBound || liveEdges > edgeBound {
		return fail("implausible header counts (nodes %d/%d, edges %d/%d, syms %d, lists %d)",
			liveNodes, nodeBound, liveEdges, edgeBound, symCount, listCount)
	}

	type section struct {
		off, size uint64
		crc       uint32
	}
	var secs [snapSections]section
	for i := 0; i < snapSections; i++ {
		ent := data[snapHeaderSize+i*snapSectionSize:]
		s := section{
			off:  binary.LittleEndian.Uint64(ent[0:]),
			size: binary.LittleEndian.Uint64(ent[8:]),
			crc:  binary.LittleEndian.Uint32(ent[16:]),
		}
		if elem := binary.LittleEndian.Uint32(ent[20:]); elem != secElem[i] {
			return fail("section %s: element size %d, want %d", secNames[i], elem, secElem[i])
		}
		if s.size > 0 {
			if s.off%8 != 0 {
				return fail("section %s: misaligned offset %d (sections are 8-byte aligned)", secNames[i], s.off)
			}
			if s.off < uint64(dataStart) || s.off > uint64(len(data)) || s.size > uint64(len(data))-s.off {
				return fail("section %s: range [%d,%d) out of bounds (file is %d bytes)",
					secNames[i], s.off, s.off+s.size, len(data))
			}
			if s.size%uint64(secElem[i]) != 0 {
				return fail("section %s: size %d is not a multiple of the %d-byte element",
					secNames[i], s.size, secElem[i])
			}
		}
		secs[i] = s
	}
	// Capacity-capped so no append through a section view can ever
	// reach the (read-only) bytes that follow it in the mapping. An
	// empty section's offset is unvalidated — never slice through it.
	raw := func(i int) []byte {
		if secs[i].size == 0 {
			return nil
		}
		return data[secs[i].off : secs[i].off+secs[i].size : secs[i].off+secs[i].size]
	}
	count := func(i int) uint64 { return secs[i].size / uint64(secElem[i]) }
	checkCRC := func(i int) error {
		if got := crc32.Checksum(raw(i), castagnoli); got != secs[i].crc {
			return fmt.Errorf("pgsnap: %s: section %s: checksum mismatch: file %#08x, computed %#08x",
				path, secNames[i], secs[i].crc, got)
		}
		return nil
	}

	// Header-implied element counts.
	wantCounts := [][2]uint64{
		{secSymOff, symCount + 1},
		{secNodeLabels, nodeBound}, {secEdgeLabels, edgeBound},
		{secEdgeSrc, edgeBound}, {secEdgeDst, edgeBound},
		{secOutOff, nodeBound + 1}, {secInOff, nodeBound + 1},
		{secNodePropOff, nodeBound + 1}, {secEdgePropOff, edgeBound + 1},
		{secListRoots, listCount},
		{secPropSetDir, symCount},
	}
	for _, wc := range wantCounts {
		if got := count(int(wc[0])); got != wc[1] {
			return fail("section %s: %d elements, header implies %d", secNames[wc[0]], got, wc[1])
		}
	}

	// Checksum what we decode eagerly; everything else only under Verify.
	eager := []int{secSymArena, secSymOff, secListRoots, secListRecs}
	if verify {
		eager = make([]int, snapSections)
		for i := range eager {
			eager[i] = i
		}
	}
	for _, i := range eager {
		if err := checkCRC(i); err != nil {
			return nil, none, err
		}
	}

	// Symbol table: always decoded (and so always validated) — names
	// become ordinary heap strings, O(symbols) work and allocation.
	symOff := viewSlice[uint32](raw(secSymOff))
	symArena := raw(secSymArena)
	names := make([]string, symCount)
	ids := make(map[string]Sym, symCount)
	if symOff[0] != 0 {
		return fail("section symOff: first offset %d, want 0", symOff[0])
	}
	for i := uint64(0); i < symCount; i++ {
		a, b := symOff[i], symOff[i+1]
		if b < a || uint64(b) > uint64(len(symArena)) {
			return fail("section symOff: offsets [%d,%d) invalid for a %d-byte symbol arena", a, b, len(symArena))
		}
		name := string(symArena[a:b])
		if _, dup := ids[name]; dup {
			return fail("symbol table: duplicate name %q", name)
		}
		names[i] = name
		ids[name] = Sym(i)
	}
	if symCount > 0 && uint64(symOff[symCount]) != uint64(len(symArena)) {
		return fail("section symOff: last offset %d, want arena size %d", symOff[symCount], len(symArena))
	}

	s := &Snapshot{
		epoch:        epoch,
		liveNodes:    int(liveNodes),
		liveEdges:    int(liveEdges),
		symNames:     names[:len(names):len(names)],
		recBacked:    true,
		nodeLabels:   viewSlice[Sym](raw(secNodeLabels)),
		edgeLabels:   viewSlice[Sym](raw(secEdgeLabels)),
		edgeSrc:      viewSlice[NodeID](raw(secEdgeSrc)),
		edgeDst:      viewSlice[NodeID](raw(secEdgeDst)),
		outOff:       viewSlice[uint32](raw(secOutOff)),
		outEdges:     viewSlice[EdgeID](raw(secOutEdges)),
		inOff:        viewSlice[uint32](raw(secInOff)),
		inEdges:      viewSlice[EdgeID](raw(secInEdges)),
		nodePropOff:  viewSlice[uint32](raw(secNodePropOff)),
		nodePropRecs: viewSlice[propRec](raw(secNodePropRecs)),
		edgePropOff:  viewSlice[uint32](raw(secEdgePropOff)),
		edgePropRecs: viewSlice[propRec](raw(secEdgePropRecs)),
		propArena:    raw(secPropArena),
	}

	// List values: decoded eagerly (bounded by the header list count;
	// zero for the common list-free graph).
	roots := viewSlice[uint64](raw(secListRoots))
	listRecs := viewSlice[propRec](raw(secListRecs))
	if listCount > 0 {
		s.propLists = make([]values.Value, listCount)
		for i := range roots {
			v, err := decodeListSpan(roots[i], listRecs, s.propArena, 0)
			if err != nil {
				return fail("section listRecs: root %d: %v", i, err)
			}
			s.propLists[i] = v
		}
	}

	// Presence bitsets: O(symbols) slice headers over the words blob.
	dir := viewSlice[uint32](raw(secPropSetDir))
	setWords := viewSlice[uint64](raw(secPropSetWords))
	words := (int(nodeBound) + 63) / 64
	numSets := 0
	if words > 0 {
		if len(setWords)%words != 0 {
			return fail("section propSetWords: %d words is not a multiple of the %d-word set size", len(setWords), words)
		}
		numSets = len(setWords) / words
	} else if len(setWords) != 0 {
		return fail("section propSetWords: %d words for an empty graph", len(setWords))
	}
	s.nodePropSet = make([][]uint64, symCount)
	for sym, ord := range dir {
		if ord == 0 {
			continue
		}
		if int(ord) > numSets {
			return fail("section propSetDir: sym %d references set %d of %d", sym, ord, numSets)
		}
		blk := setWords[(int(ord)-1)*words : int(ord)*words]
		s.nodePropSet[sym] = blk[:len(blk):len(blk)]
	}

	if verify {
		if err := verifySnapshotStructure(s, path); err != nil {
			return nil, none, err
		}
	}
	return s, symbols{ids: ids, names: names}, nil
}

// verifySnapshotStructure deep-checks the aliased columns: everything a
// hot loop would otherwise index unchecked.
func verifySnapshotStructure(s *Snapshot, path string) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("pgsnap: %s: structure: %s", path, fmt.Sprintf(format, args...))
	}
	nn, ne, nsym := len(s.nodeLabels), len(s.edgeLabels), len(s.symNames)
	liveN, liveE := 0, 0
	for v, ls := range s.nodeLabels {
		if ls != NoSym {
			if ls < 0 || int(ls) >= nsym {
				return fail("node %d: label sym %d out of range [0,%d)", v, ls, nsym)
			}
			liveN++
		}
	}
	for e, ls := range s.edgeLabels {
		if ls != NoSym {
			if ls < 0 || int(ls) >= nsym {
				return fail("edge %d: label sym %d out of range [0,%d)", e, ls, nsym)
			}
			liveE++
		}
	}
	if liveN != s.liveNodes || liveE != s.liveEdges {
		return fail("live counts: header says %d nodes/%d edges, columns hold %d/%d",
			s.liveNodes, s.liveEdges, liveN, liveE)
	}
	for e := 0; e < ne; e++ {
		if src, dst := s.edgeSrc[e], s.edgeDst[e]; src < 0 || int(src) >= nn || dst < 0 || int(dst) >= nn {
			return fail("edge %d: endpoints (%d,%d) outside node bound %d", e, src, dst, nn)
		}
	}
	checkOff := func(name string, off []uint32, n int) error {
		if off[0] != 0 {
			return fail("%s: first offset %d, want 0", name, off[0])
		}
		for i := 1; i < len(off); i++ {
			if off[i] < off[i-1] {
				return fail("%s: offsets decrease at %d (%d < %d)", name, i, off[i], off[i-1])
			}
		}
		if int(off[len(off)-1]) != n {
			return fail("%s: last offset %d, want %d", name, off[len(off)-1], n)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		off  []uint32
		n    int
	}{
		{"outOff", s.outOff, len(s.outEdges)},
		{"inOff", s.inOff, len(s.inEdges)},
		{"nodePropOff", s.nodePropOff, len(s.nodePropRecs)},
		{"edgePropOff", s.edgePropOff, len(s.edgePropRecs)},
	} {
		if err := checkOff(c.name, c.off, c.n); err != nil {
			return err
		}
	}
	for i, e := range s.outEdges {
		if e < 0 || int(e) >= ne {
			return fail("outEdges[%d]: edge %d outside edge bound %d", i, e, ne)
		}
	}
	for i, e := range s.inEdges {
		if e < 0 || int(e) >= ne {
			return fail("inEdges[%d]: edge %d outside edge bound %d", i, e, ne)
		}
	}
	checkRecs := func(name string, recs []propRec) error {
		for i := range recs {
			r := &recs[i]
			if r.sym < 0 || int(r.sym) >= nsym {
				return fail("%s[%d]: property sym %d out of range [0,%d)", name, i, r.sym, nsym)
			}
			if r.arena != 0 {
				return fail("%s[%d]: arena %d, want 0 (files are single-arena)", name, i, r.arena)
			}
			switch values.Kind(r.kind) {
			case values.KindNull, values.KindInt, values.KindFloat, values.KindBoolean:
			case values.KindString, values.KindID, values.KindEnum:
				so, sn := int(r.a>>32), int(uint32(r.a))
				if so+sn > len(s.propArena) {
					return fail("%s[%d]: string [%d,%d) outside arena of %d bytes", name, i, so, so+sn, len(s.propArena))
				}
			case values.KindList:
				if int(r.a) >= len(s.propLists) {
					return fail("%s[%d]: list index %d of %d", name, i, r.a, len(s.propLists))
				}
			default:
				return fail("%s[%d]: invalid value kind %d", name, i, r.kind)
			}
		}
		return nil
	}
	if err := checkRecs("nodePropRecs", s.nodePropRecs); err != nil {
		return err
	}
	return checkRecs("edgePropRecs", s.edgePropRecs)
}
