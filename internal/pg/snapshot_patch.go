package pg

import (
	"sort"

	"pgschema/internal/values"
)

// Snapshot patching: Apply knows exactly which elements a delta
// touched, so instead of paying the O(V+E) columnar rebuild on the
// next Snapshot() call, it derives the new snapshot from the old one.
// Columns a delta did not touch are shared outright (slice aliasing is
// safe — snapshots are immutable); touched columns are rebuilt with
// bulk segment copies between dirty elements, so the cost is memcpy
// bandwidth plus O(dirty) row rebuilds rather than a per-element walk
// of the mutable store.

// patchPlan describes what an applied delta changed, at the
// granularity the patch needs: sorted dirty element lists (nodeDirty
// includes the endpoints of dirty edges — their adjacency rows moved)
// and one flag per snapshot column group.
type patchPlan struct {
	nodeDirty []NodeID
	edgeDirty []EdgeID

	nodeLabelsChanged    bool
	nodeAdjChanged       bool
	nodePropsChanged     bool
	edgeLabelsChanged    bool
	edgeEndpointsChanged bool
	edgePropsChanged     bool
}

// patchFraction caps how dirty a graph may be before patching loses to
// a plain rebuild: beyond 1/8 of all elements, give up.
const patchFraction = 8

// patchSnapshot builds the snapshot of the graph's current state from
// a snapshot of the pre-apply state. It returns nil when patching is
// not worthwhile (too many dirty elements relative to the graph); the
// caller then leaves the stale snapshot in place and the next
// Snapshot() call does a full rebuild.
func (g *Graph) patchSnapshot(old *Snapshot, p patchPlan) *Snapshot {
	nn, ne := len(g.nodes), len(g.edges)
	if (len(p.nodeDirty)+len(p.edgeDirty))*patchFraction > nn+ne {
		return nil
	}
	oldNN := len(old.nodeLabels)

	s := &Snapshot{
		epoch:     g.epoch,
		liveNodes: g.NumNodes(),
		liveEdges: g.NumEdges(),
		symNames:  g.cappedSymNames(),
	}
	if old.recBacked {
		// Patching a mapped snapshot keeps the record representation:
		// clean rows stay aliased to the mapping, dirty rows re-encode
		// into a private overflow arena (copied fresh per patch so the
		// old snapshot, which Undo may retain, stays immutable).
		s.recBacked = true
		s.propArena = old.propArena
		s.propOver = old.propOver
		s.propLists = old.propLists
		s.mapping = old.mapping
		if p.nodePropsChanged || p.edgePropsChanged {
			if len(old.propOver) > 1<<20 && len(old.propOver) > len(old.propArena)/4 {
				// The overflow arena has outgrown usefulness after many
				// patch generations; a full rebuild re-bases onto a
				// compact heap snapshot.
				return nil
			}
			over := make([]byte, len(old.propOver), len(old.propOver)+4096)
			copy(over, old.propOver)
			s.propOver = over
			s.propLists = append([]values.Value(nil), old.propLists...)
		}
	}

	if p.nodeLabelsChanged {
		s.nodeLabels = make([]Sym, nn)
		copy(s.nodeLabels, old.nodeLabels)
		for _, v := range p.nodeDirty {
			if g.nodes[v].removed {
				s.nodeLabels[v] = NoSym
			} else {
				s.nodeLabels[v] = g.nodes[v].label
			}
		}
	} else {
		s.nodeLabels = old.nodeLabels
	}

	if p.edgeLabelsChanged || p.edgeEndpointsChanged {
		s.edgeLabels = make([]Sym, ne)
		copy(s.edgeLabels, old.edgeLabels)
		for _, e := range p.edgeDirty {
			if g.edges[e].removed {
				s.edgeLabels[e] = NoSym
			} else {
				s.edgeLabels[e] = g.edges[e].label
			}
		}
	} else {
		s.edgeLabels = old.edgeLabels
	}

	if p.edgeEndpointsChanged {
		s.edgeSrc = make([]NodeID, ne)
		copy(s.edgeSrc, old.edgeSrc)
		s.edgeDst = make([]NodeID, ne)
		copy(s.edgeDst, old.edgeDst)
		for _, e := range p.edgeDirty {
			s.edgeSrc[e], s.edgeDst[e] = g.edges[e].src, g.edges[e].dst
		}
	} else {
		s.edgeSrc, s.edgeDst = old.edgeSrc, old.edgeDst
	}

	if p.nodeAdjChanged {
		s.outOff, s.outEdges = g.patchAdj(old.outOff, old.outEdges, p.nodeDirty, true)
		s.inOff, s.inEdges = g.patchAdj(old.inOff, old.inEdges, p.nodeDirty, false)
	} else {
		s.outOff, s.outEdges = old.outOff, old.outEdges
		s.inOff, s.inEdges = old.inOff, old.inEdges
	}

	if p.nodePropsChanged {
		if old.recBacked {
			var ok bool
			s.nodePropOff, s.nodePropRecs, ok = g.patchNodeRecs(s, old.nodePropOff, old.nodePropRecs, p.nodeDirty)
			if !ok {
				return nil
			}
		} else {
			s.nodePropOff, s.nodeProps = g.patchNodeProps(old.nodePropOff, old.nodeProps, p.nodeDirty)
		}
		s.nodePropSet = g.patchPropSets(old.nodePropSet, p.nodeDirty, oldNN)
	} else {
		s.nodePropOff, s.nodeProps = old.nodePropOff, old.nodeProps
		s.nodePropRecs = old.nodePropRecs
		s.nodePropSet = old.nodePropSet
	}

	if p.edgePropsChanged {
		if old.recBacked {
			var ok bool
			s.edgePropOff, s.edgePropRecs, ok = g.patchEdgeRecs(s, old.edgePropOff, old.edgePropRecs, p.edgeDirty)
			if !ok {
				return nil
			}
		} else {
			s.edgePropOff, s.edgeProps = g.patchEdgeProps(old.edgePropOff, old.edgeProps, p.edgeDirty)
		}
	} else {
		s.edgePropOff, s.edgeProps = old.edgePropOff, old.edgeProps
		s.edgePropRecs = old.edgePropRecs
	}

	return s
}

// patchNodeRecs is patchNodeProps for a record-backed column: clean
// record rows are bulk-copied (their arena-0 payloads stay valid —
// they point into the shared mapped arena), dirty rows re-encode from
// the store into the patched snapshot's private overflow arena and
// list table. Returns ok=false when a value cannot be encoded; the
// caller then falls back to a full rebuild.
func (g *Graph) patchNodeRecs(s *Snapshot, oldOff []uint32, oldRecs []propRec, dirty []NodeID) ([]uint32, []propRec, bool) {
	nn := len(g.nodes)
	oldNN := len(oldOff) - 1
	off := make([]uint32, nn+1)
	enc := recEncoder{arenaID: 1, arena: s.propOver, lists: s.propLists}
	enc.recs = make([]propRec, 0, len(oldRecs)+2*len(dirty))
	encOK := true

	rebuild := func(v int) {
		n := &g.nodes[v]
		if !n.removed {
			if err := enc.addAll(n.props); err != nil {
				encOK = false
			}
		}
		off[v+1] = uint32(len(enc.recs))
	}
	copySeg := func(from, to int) {
		if from >= to {
			return
		}
		shift := off[from] - oldOff[from]
		enc.recs = append(enc.recs, oldRecs[oldOff[from]:oldOff[to]]...)
		if shift == 0 {
			copy(off[from+1:to+1], oldOff[from+1:to+1])
		} else {
			for k := from; k < to; k++ {
				off[k+1] = oldOff[k+1] + shift
			}
		}
	}

	prev := 0
	for _, d := range dirty {
		v := int(d)
		if v >= oldNN {
			break
		}
		copySeg(prev, v)
		rebuild(v)
		prev = v + 1
	}
	copySeg(prev, oldNN)
	for v := oldNN; v < nn; v++ {
		rebuild(v)
	}
	s.propOver = enc.arena
	s.propLists = enc.lists
	return off, enc.recs, encOK
}

// patchEdgeRecs is patchNodeRecs over the edge property rows.
func (g *Graph) patchEdgeRecs(s *Snapshot, oldOff []uint32, oldRecs []propRec, dirty []EdgeID) ([]uint32, []propRec, bool) {
	ne := len(g.edges)
	oldNE := len(oldOff) - 1
	off := make([]uint32, ne+1)
	enc := recEncoder{arenaID: 1, arena: s.propOver, lists: s.propLists}
	enc.recs = make([]propRec, 0, len(oldRecs)+2*len(dirty))
	encOK := true

	rebuild := func(e int) {
		ed := &g.edges[e]
		if !ed.removed {
			if err := enc.addAll(ed.props); err != nil {
				encOK = false
			}
		}
		off[e+1] = uint32(len(enc.recs))
	}
	copySeg := func(from, to int) {
		if from >= to {
			return
		}
		shift := off[from] - oldOff[from]
		enc.recs = append(enc.recs, oldRecs[oldOff[from]:oldOff[to]]...)
		if shift == 0 {
			copy(off[from+1:to+1], oldOff[from+1:to+1])
		} else {
			for k := from; k < to; k++ {
				off[k+1] = oldOff[k+1] + shift
			}
		}
	}

	prev := 0
	for _, d := range dirty {
		e := int(d)
		if e >= oldNE {
			break
		}
		copySeg(prev, e)
		rebuild(e)
		prev = e + 1
	}
	copySeg(prev, oldNE)
	for e := oldNE; e < ne; e++ {
		rebuild(e)
	}
	s.propOver = enc.arena
	s.propLists = enc.lists
	return off, enc.recs, encOK
}

// patchAdj rebuilds one CSR direction. Rows of clean pre-existing
// nodes are copied in bulk segments (their contents are unchanged:
// every added or removed edge put both endpoints in dirty); rows of
// dirty nodes are re-derived from the mutable store; nodes past the
// old bound get fresh rows.
func (g *Graph) patchAdj(oldOff []uint32, oldList []EdgeID, dirty []NodeID, out bool) ([]uint32, []EdgeID) {
	nn := len(g.nodes)
	oldNN := len(oldOff) - 1
	off := make([]uint32, nn+1)
	list := make([]EdgeID, 0, len(oldList)+4*len(dirty))

	rebuild := func(v int) {
		n := &g.nodes[v]
		if !n.removed {
			raw := n.out
			if !out {
				raw = n.in
			}
			for _, e := range raw {
				if !g.edges[e].removed {
					list = append(list, e)
				}
			}
		}
		off[v+1] = uint32(len(list))
	}
	copySeg := func(from, to int) {
		if from >= to {
			return
		}
		shift := off[from] - oldOff[from]
		list = append(list, oldList[oldOff[from]:oldOff[to]]...)
		if shift == 0 {
			copy(off[from+1:to+1], oldOff[from+1:to+1])
		} else {
			for k := from; k < to; k++ {
				off[k+1] = oldOff[k+1] + shift
			}
		}
	}

	prev := 0
	for _, d := range dirty {
		v := int(d)
		if v >= oldNN {
			break
		}
		copySeg(prev, v)
		rebuild(v)
		prev = v + 1
	}
	copySeg(prev, oldNN)
	for v := oldNN; v < nn; v++ {
		rebuild(v)
	}
	return off, list
}

// patchNodeProps rebuilds the flattened node property rows with the
// same segment strategy as patchAdj.
func (g *Graph) patchNodeProps(oldOff []uint32, oldProps []Prop, dirty []NodeID) ([]uint32, []Prop) {
	nn := len(g.nodes)
	oldNN := len(oldOff) - 1
	off := make([]uint32, nn+1)
	props := make([]Prop, 0, len(oldProps)+2*len(dirty))

	rebuild := func(v int) {
		n := &g.nodes[v]
		if !n.removed {
			props = append(props, n.props...)
		}
		off[v+1] = uint32(len(props))
	}
	copySeg := func(from, to int) {
		if from >= to {
			return
		}
		shift := off[from] - oldOff[from]
		props = append(props, oldProps[oldOff[from]:oldOff[to]]...)
		if shift == 0 {
			copy(off[from+1:to+1], oldOff[from+1:to+1])
		} else {
			for k := from; k < to; k++ {
				off[k+1] = oldOff[k+1] + shift
			}
		}
	}

	prev := 0
	for _, d := range dirty {
		v := int(d)
		if v >= oldNN {
			break
		}
		copySeg(prev, v)
		rebuild(v)
		prev = v + 1
	}
	copySeg(prev, oldNN)
	for v := oldNN; v < nn; v++ {
		rebuild(v)
	}
	return off, props
}

// patchEdgeProps is patchNodeProps over the edge property rows.
func (g *Graph) patchEdgeProps(oldOff []uint32, oldProps []Prop, dirty []EdgeID) ([]uint32, []Prop) {
	ne := len(g.edges)
	oldNE := len(oldOff) - 1
	off := make([]uint32, ne+1)
	props := make([]Prop, 0, len(oldProps)+2*len(dirty))

	rebuild := func(e int) {
		ed := &g.edges[e]
		if !ed.removed {
			props = append(props, ed.props...)
		}
		off[e+1] = uint32(len(props))
	}
	copySeg := func(from, to int) {
		if from >= to {
			return
		}
		shift := off[from] - oldOff[from]
		props = append(props, oldProps[oldOff[from]:oldOff[to]]...)
		if shift == 0 {
			copy(off[from+1:to+1], oldOff[from+1:to+1])
		} else {
			for k := from; k < to; k++ {
				off[k+1] = oldOff[k+1] + shift
			}
		}
	}

	prev := 0
	for _, d := range dirty {
		e := int(d)
		if e >= oldNE {
			break
		}
		copySeg(prev, e)
		rebuild(e)
		prev = e + 1
	}
	copySeg(prev, oldNE)
	for e := oldNE; e < ne; e++ {
		rebuild(e)
	}
	return off, props
}

// patchPropSets re-derives the per-sym property presence bitsets: copy
// every old set into word arrays sized for the new node bound, clear
// the dirty nodes' bits everywhere, then re-set bits from the dirty
// live nodes' current property lists. Syms interned since the old
// snapshot get entries lazily, exactly like a full build.
func (g *Graph) patchPropSets(old [][]uint64, dirty []NodeID, oldNN int) [][]uint64 {
	nn := len(g.nodes)
	words := (nn + 63) / 64
	sets := make([][]uint64, len(g.syms.names))
	for sym, set := range old {
		if set == nil {
			continue
		}
		ns := make([]uint64, words)
		copy(ns, set)
		sets[sym] = ns
	}
	for _, d := range dirty {
		w, bit := int(d)>>6, uint64(1)<<(uint(d)&63)
		for _, set := range sets {
			if set != nil {
				set[w] &^= bit
			}
		}
	}
	for _, d := range dirty {
		n := &g.nodes[d]
		if n.removed {
			continue
		}
		w, bit := int(d)>>6, uint64(1)<<(uint(d)&63)
		for i := range n.props {
			sym := n.props[i].Sym
			set := sets[sym]
			if set == nil {
				set = make([]uint64, words)
				sets[sym] = set
			}
			set[w] |= bit
		}
	}
	return sets
}

func sortNodeIDs(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortEdgeIDs(ids []EdgeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortStrings(ss []string) { sort.Strings(ss) }
