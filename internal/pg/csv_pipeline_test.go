package pg

import (
	"fmt"
	"strings"
	"testing"
)

// buildBigCSV renders n nodes and 2n-ish edges, enough rows to span
// many reader batches so the parallel pipeline's ordering is exercised.
func buildBigCSV(n int) (nodes, edges string) {
	var nb, eb strings.Builder
	nb.WriteString("id,label,name,rank\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&nb, "u%d,User,\"user %d\",%d\n", i, i, i%7)
	}
	eb.WriteString("source,target,label,weight\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&eb, "u%d,u%d,knows,0.5\n", i, (i+1)%n)
		if i%2 == 0 {
			fmt.Fprintf(&eb, "u%d,u%d,follows,\n", i, (i+3)%n)
		}
	}
	return nb.String(), eb.String()
}

func TestReadCSVPipelineOrdering(t *testing.T) {
	const n = 4 * csvBatchRows // several batches per file
	nodes, edges := buildBigCSV(n)
	g, err := ReadCSV(strings.NewReader(nodes), strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != n {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), n)
	}
	wantEdges := n + (n+1)/2
	if g.NumEdges() != wantEdges {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), wantEdges)
	}
	// Node IDs must follow record order exactly: row i became node i.
	for _, i := range []int{0, 1, csvBatchRows - 1, csvBatchRows, n - 1} {
		id := NodeID(i)
		if v, ok := g.NodeProp(id, "name"); !ok || v.AsString() != fmt.Sprintf("user %d", i) {
			t.Fatalf("node %d name = %v (record order not preserved)", i, v)
		}
		if v, _ := g.NodeProp(id, "rank"); v.AsInt() != int64(i%7) {
			t.Fatalf("node %d rank = %v", i, v)
		}
	}
	// Edge IDs likewise: the first edge of row i targets (i+1)%n.
	src, dst := g.Endpoints(0)
	if src != 0 || dst != 1 || g.EdgeLabel(0) != "knows" {
		t.Fatalf("edge 0 = %d->%d %q", src, dst, g.EdgeLabel(0))
	}
	if v, ok := g.EdgeProp(0, "weight"); !ok || v.AsFloat() != 0.5 {
		t.Fatalf("edge 0 weight = %v, %v", v, ok)
	}
	// The follows edges left weight empty: property must be absent.
	if g.EdgeLabel(1) != "follows" {
		t.Fatalf("edge 1 label = %q", g.EdgeLabel(1))
	}
	if _, ok := g.EdgeProp(1, "weight"); ok {
		t.Fatal("empty weight cell must mean absent property")
	}
}

func TestReadCSVPipelineErrors(t *testing.T) {
	const n = 2*csvBatchRows + 37
	goodNodes, goodEdges := buildBigCSV(n)

	t.Run("duplicate id deep in file", func(t *testing.T) {
		dup := goodNodes + "u5,User,again,1\n"
		_, err := ReadCSV(strings.NewReader(dup), strings.NewReader(goodEdges))
		if err == nil || !strings.Contains(err.Error(), `duplicate node id "u5"`) {
			t.Fatalf("err = %v", err)
		}
		wantLine := fmt.Sprintf("line %d", n+2)
		if !strings.Contains(err.Error(), wantLine) {
			t.Fatalf("err = %v, want %s", err, wantLine)
		}
	})

	t.Run("unknown target deep in file", func(t *testing.T) {
		bad := goodEdges + "u1,ghost,knows,\n"
		_, err := ReadCSV(strings.NewReader(goodNodes), strings.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), `unknown target "ghost"`) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("short record", func(t *testing.T) {
		short := "id,label\nonlyid\n"
		_, err := ReadCSV(strings.NewReader(short), strings.NewReader("source,target,label\n"))
		if err == nil || !strings.Contains(err.Error(), "need at least id,label") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("malformed quoting mid-file", func(t *testing.T) {
		bad := goodNodes + "u_bad,User,\"unterminated,1\n"
		_, err := ReadCSV(strings.NewReader(bad), strings.NewReader(goodEdges))
		if err == nil || !strings.Contains(err.Error(), "node CSV line") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestReadCSVDuplicateHeaderColumn(t *testing.T) {
	// Two columns with the same name: the later column wins, matching
	// the sequential loader's overwrite-on-set behavior.
	nodes := "id,label,x,x\nu1,User,1,2\nu2,User,3,\n"
	g, err := ReadCSV(strings.NewReader(nodes), strings.NewReader("source,target,label\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := g.NodeProp(0, "x"); v.AsInt() != 2 {
		t.Fatalf("u1.x = %v, want later column (2)", v)
	}
	// Empty later cell: earlier column's value stands.
	if v, _ := g.NodeProp(1, "x"); v.AsInt() != 3 {
		t.Fatalf("u2.x = %v, want 3", v)
	}
}
