package pg

// Sym is a dense integer ID for a string interned by a Graph. Node
// labels, edge labels, and property names share one namespace, so a
// compiled validation program can index per-label lookup tables
// directly by Sym instead of hashing strings. Syms are assigned in
// first-seen order, are stable for the lifetime of the graph (including
// across Clone), and are meaningless across distinct graphs.
type Sym int32

// NoSym is the Sym of a string the graph has never interned. It never
// equals a valid Sym, so lookup tables indexed by Sym can treat it as
// "matches nothing".
const NoSym Sym = -1

// symbols is the intern table: string → Sym and back.
type symbols struct {
	ids   map[string]Sym
	names []string
}

func (t *symbols) intern(name string) Sym {
	if s, ok := t.ids[name]; ok {
		return s
	}
	if t.ids == nil {
		t.ids = make(map[string]Sym)
	}
	s := Sym(len(t.names))
	t.ids[name] = s
	t.names = append(t.names, name)
	return s
}

func (t *symbols) lookup(name string) (Sym, bool) {
	s, ok := t.ids[name]
	return s, ok
}

func (t *symbols) clone() symbols {
	cp := symbols{names: append([]string(nil), t.names...)}
	if t.ids != nil {
		cp.ids = make(map[string]Sym, len(t.ids))
		for k, v := range t.ids {
			cp.ids[k] = v
		}
	}
	return cp
}
