package pg

import (
	"testing"

	"pgschema/internal/values"
)

// TestPatchGivesUpOnLargeDelta: when the dirty region is a large
// fraction of the graph, patching is a net loss and Apply must leave
// the cache stale (next Snapshot() call does a full rebuild) rather
// than installing a patched copy.
func TestPatchGivesUpOnLargeDelta(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.AddNode("Author")
	}
	g.Snapshot()
	var d Delta
	for i := 0; i < 10; i++ {
		d.SetNodeProps = append(d.SetNodeProps, NodePropSpec{
			Node: NodeID(i), Name: "name", Value: values.Int(int64(i)),
		})
	}
	if _, err := g.Apply(d); err != nil {
		t.Fatal(err)
	}
	if s := g.snap.Load(); s != nil && s.Epoch() == g.Epoch() {
		t.Fatal("expected the patcher to give up on a near-total delta")
	}
	snapEqual(t, g.Snapshot(), g.buildSnapshot())
}

// TestPatchSharesUntouchedColumns: a props-only delta must not rebuild
// adjacency or label columns — the patched snapshot aliases them.
func TestPatchSharesUntouchedColumns(t *testing.T) {
	g := New()
	for i := 0; i < 100; i++ {
		g.AddNode("Author")
	}
	for i := 0; i < 99; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), "relatedAuthor")
	}
	old := g.Snapshot()
	if _, err := g.Apply(Delta{SetNodeProps: []NodePropSpec{
		{Node: 0, Name: "name", Value: values.String("x")},
	}}); err != nil {
		t.Fatal(err)
	}
	s := g.snap.Load()
	if s == nil || s.Epoch() != g.Epoch() {
		t.Fatal("expected a patched snapshot to be installed")
	}
	if &s.nodeLabels[0] != &old.nodeLabels[0] {
		t.Error("node label column should be shared")
	}
	if &s.outEdges[0] != &old.outEdges[0] || &s.outOff[0] != &old.outOff[0] {
		t.Error("adjacency columns should be shared")
	}
	if &s.edgeSrc[0] != &old.edgeSrc[0] {
		t.Error("edge endpoint column should be shared")
	}
	snapEqual(t, s, g.buildSnapshot())
}
