//go:build unix

package pg

import (
	"fmt"
	"os"
	"syscall"
)

// snapMapping owns the bytes behind a mapped snapshot: a read-only
// private mmap on unix, or an aligned heap copy where mapping is
// unavailable. It travels on every Snapshot whose columns alias it,
// keeping the mapping addressable (and closeable) for as long as any
// derived snapshot is reachable.
type snapMapping struct {
	data   []byte
	mapped bool // true when data must be munmap'ed
	path   string
}

func mapSnapshotFile(path string) (*snapMapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("empty file")
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("file size %d exceeds the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// Filesystems without mmap support: fall back to an aligned read.
		return readSnapshotFile(path)
	}
	return &snapMapping{data: data, mapped: true, path: path}, nil
}

func (m *snapMapping) close() error {
	if m == nil || !m.mapped {
		return nil
	}
	m.mapped = false
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}
