package pg

import (
	"testing"

	"pgschema/internal/values"
)

// snapGraph builds a small graph with a removed node and edge so the
// snapshot has tombstones to skip.
func snapGraph(t *testing.T) (*Graph, NodeID, NodeID, NodeID, EdgeID, EdgeID) {
	t.Helper()
	g := New()
	a := g.AddNode("Person")
	b := g.AddNode("Person")
	c := g.AddNode("City")
	dead := g.AddNode("Ghost")
	e1, _ := g.AddEdge(a, b, "knows")
	e2, _ := g.AddEdge(a, c, "livesIn")
	eDead, _ := g.AddEdge(b, c, "livesIn")
	g.SetNodeProp(a, "name", values.String("ann"))
	g.SetNodeProp(a, "age", values.Int(40))
	g.SetNodeProp(c, "name", values.String("oslo"))
	g.SetEdgeProp(e1, "since", values.Int(2001))
	g.RemoveEdge(eDead)
	g.RemoveNode(dead)
	return g, a, b, c, e1, e2
}

func TestSnapshotColumns(t *testing.T) {
	g, a, b, c, e1, e2 := snapGraph(t)
	s := g.Snapshot()

	if s.Epoch() != g.Epoch() {
		t.Fatalf("snapshot epoch %d != graph epoch %d", s.Epoch(), g.Epoch())
	}
	if s.NodeBound() != g.NodeBound() || s.EdgeBound() != g.EdgeBound() {
		t.Fatalf("bounds (%d,%d) != graph (%d,%d)",
			s.NodeBound(), s.EdgeBound(), g.NodeBound(), g.EdgeBound())
	}

	// Labels mirror the graph; removed elements read NoSym.
	person, _ := g.Sym("Person")
	if s.NodeLabelSym(a) != person || s.NodeLabelSym(b) != person {
		t.Fatalf("node label syms wrong")
	}
	if s.NodeLabelSym(3) != NoSym {
		t.Fatalf("removed node label = %v, want NoSym", s.NodeLabelSym(3))
	}
	if s.EdgeLabelSym(2) != NoSym {
		t.Fatalf("removed edge label = %v, want NoSym", s.EdgeLabelSym(2))
	}

	// Endpoints and adjacency: live edges only, edge-id order.
	if src, dst := s.Endpoints(e1); src != a || dst != b {
		t.Fatalf("Endpoints(e1) = (%d,%d), want (%d,%d)", src, dst, a, b)
	}
	out := s.OutEdgesOf(a)
	if len(out) != 2 || out[0] != e1 || out[1] != e2 {
		t.Fatalf("OutEdgesOf(a) = %v, want [%d %d]", out, e1, e2)
	}
	if got := s.InEdgesOf(c); len(got) != 1 || got[0] != e2 {
		t.Fatalf("InEdgesOf(c) = %v, want [%d] (removed edge must be dropped)", got, e2)
	}
	if got := s.OutEdgesOf(b); len(got) != 0 {
		t.Fatalf("OutEdgesOf(b) = %v, want empty (its only out-edge is removed)", got)
	}

	// Properties: flattened rows match the per-node sorted lists.
	props := s.NodePropsOf(a)
	if len(props) != 2 || props[0].Name != "age" || props[1].Name != "name" {
		t.Fatalf("NodePropsOf(a) = %v", props)
	}
	if got := s.EdgePropsOf(e1); len(got) != 1 || got[0].Name != "since" {
		t.Fatalf("EdgePropsOf(e1) = %v", got)
	}
	if got := s.EdgePropsOf(e2); len(got) != 0 {
		t.Fatalf("EdgePropsOf(e2) = %v, want empty", got)
	}

	// Presence bitsets and sym lookup.
	name, _ := g.Sym("name")
	age, _ := g.Sym("age")
	if !s.NodeHasProp(a, name) || !s.NodeHasProp(c, name) || s.NodeHasProp(b, name) {
		t.Fatalf("NodeHasProp(name) wrong")
	}
	if !s.NodeHasProp(a, age) || s.NodeHasProp(c, age) {
		t.Fatalf("NodeHasProp(age) wrong")
	}
	if s.NodeHasProp(a, NoSym) {
		t.Fatalf("NodeHasProp(NoSym) must be false")
	}
	if v, ok := s.NodePropBySym(a, age); !ok || v.Kind() != values.KindInt {
		t.Fatalf("NodePropBySym(a, age) = %v, %v", v, ok)
	}
	if _, ok := s.NodePropBySym(b, age); ok {
		t.Fatalf("NodePropBySym(b, age) should miss")
	}
}

func TestSnapshotCacheAndInvalidation(t *testing.T) {
	g, a, _, _, _, _ := snapGraph(t)
	s1 := g.Snapshot()
	if s2 := g.Snapshot(); s2 != s1 {
		t.Fatalf("unchanged graph must return the cached snapshot")
	}
	g.SetNodeProp(a, "nick", values.String("an"))
	s3 := g.Snapshot()
	if s3 == s1 {
		t.Fatalf("mutation must invalidate the cached snapshot")
	}
	nick, _ := g.Sym("nick")
	if !s3.NodeHasProp(a, nick) {
		t.Fatalf("rebuilt snapshot misses new property")
	}
	if s1.NodeHasProp(a, nick) {
		t.Fatalf("old snapshot must be unaffected by later mutation")
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	s := New().Snapshot()
	if s.NodeBound() != 0 || s.EdgeBound() != 0 {
		t.Fatalf("empty snapshot bounds (%d,%d)", s.NodeBound(), s.EdgeBound())
	}
}

// TestSnapshotKernelAccessors covers the flat accessors the branch-free
// validation kernels walk: whole label columns, per-property presence
// bitsets, and the O(1) degree/property counts derived from the CSR
// offsets.
func TestSnapshotKernelAccessors(t *testing.T) {
	g, a, b, c, e1, _ := snapGraph(t)
	s := g.Snapshot()

	nodeCol := s.NodeLabelColumn()
	if len(nodeCol) != s.NodeBound() {
		t.Fatalf("node label column has %d entries, bound %d", len(nodeCol), s.NodeBound())
	}
	for v := 0; v < s.NodeBound(); v++ {
		if nodeCol[v] != s.NodeLabelSym(NodeID(v)) {
			t.Fatalf("node column[%d] = %v, accessor %v", v, nodeCol[v], s.NodeLabelSym(NodeID(v)))
		}
	}
	edgeCol := s.EdgeLabelColumn()
	if len(edgeCol) != s.EdgeBound() {
		t.Fatalf("edge label column has %d entries, bound %d", len(edgeCol), s.EdgeBound())
	}
	for e := 0; e < s.EdgeBound(); e++ {
		if edgeCol[e] != s.EdgeLabelSym(EdgeID(e)) {
			t.Fatalf("edge column[%d] = %v, accessor %v", e, edgeCol[e], s.EdgeLabelSym(EdgeID(e)))
		}
	}

	// Presence bitset: bit v set iff the node carries the property.
	nameSym, ok := g.Sym("name")
	if !ok {
		t.Fatal("name not interned")
	}
	words := s.NodePropWords(nameSym)
	if words == nil {
		t.Fatal("no presence words for an existing property name")
	}
	for v := 0; v < s.NodeBound(); v++ {
		got := words[v>>6]&(1<<(v&63)) != 0
		_, want := s.NodePropBySym(NodeID(v), nameSym)
		if got != want {
			t.Fatalf("presence bit for node %d = %v, lookup = %v", v, got, want)
		}
	}
	if s.NodePropWords(NoSym) != nil {
		t.Error("NodePropWords(NoSym) should be nil")
	}
	if s.NodePropWords(Sym(1<<20)) != nil {
		t.Error("NodePropWords(out of range) should be nil")
	}

	// Degree and property counts match the slice accessors.
	for v := 0; v < s.NodeBound(); v++ {
		if got, want := s.OutDegree(NodeID(v)), len(s.OutEdgesOf(NodeID(v))); got != want {
			t.Fatalf("OutDegree(%d) = %d, len(OutEdgesOf) = %d", v, got, want)
		}
		if got, want := s.NodePropCount(NodeID(v)), len(s.NodePropsOf(NodeID(v))); got != want {
			t.Fatalf("NodePropCount(%d) = %d, len(NodePropsOf) = %d", v, got, want)
		}
	}
	if d := s.OutDegree(a); d != 2 {
		t.Errorf("OutDegree(a) = %d, want 2", d)
	}
	_ = b
	_ = c
	_ = e1
}
