package pg

import (
	"testing"

	"pgschema/internal/values"
)

// snapGraph builds a small graph with a removed node and edge so the
// snapshot has tombstones to skip.
func snapGraph(t *testing.T) (*Graph, NodeID, NodeID, NodeID, EdgeID, EdgeID) {
	t.Helper()
	g := New()
	a := g.AddNode("Person")
	b := g.AddNode("Person")
	c := g.AddNode("City")
	dead := g.AddNode("Ghost")
	e1, _ := g.AddEdge(a, b, "knows")
	e2, _ := g.AddEdge(a, c, "livesIn")
	eDead, _ := g.AddEdge(b, c, "livesIn")
	g.SetNodeProp(a, "name", values.String("ann"))
	g.SetNodeProp(a, "age", values.Int(40))
	g.SetNodeProp(c, "name", values.String("oslo"))
	g.SetEdgeProp(e1, "since", values.Int(2001))
	g.RemoveEdge(eDead)
	g.RemoveNode(dead)
	return g, a, b, c, e1, e2
}

func TestSnapshotColumns(t *testing.T) {
	g, a, b, c, e1, e2 := snapGraph(t)
	s := g.Snapshot()

	if s.Epoch() != g.Epoch() {
		t.Fatalf("snapshot epoch %d != graph epoch %d", s.Epoch(), g.Epoch())
	}
	if s.NodeBound() != g.NodeBound() || s.EdgeBound() != g.EdgeBound() {
		t.Fatalf("bounds (%d,%d) != graph (%d,%d)",
			s.NodeBound(), s.EdgeBound(), g.NodeBound(), g.EdgeBound())
	}

	// Labels mirror the graph; removed elements read NoSym.
	person, _ := g.Sym("Person")
	if s.NodeLabelSym(a) != person || s.NodeLabelSym(b) != person {
		t.Fatalf("node label syms wrong")
	}
	if s.NodeLabelSym(3) != NoSym {
		t.Fatalf("removed node label = %v, want NoSym", s.NodeLabelSym(3))
	}
	if s.EdgeLabelSym(2) != NoSym {
		t.Fatalf("removed edge label = %v, want NoSym", s.EdgeLabelSym(2))
	}

	// Endpoints and adjacency: live edges only, edge-id order.
	if src, dst := s.Endpoints(e1); src != a || dst != b {
		t.Fatalf("Endpoints(e1) = (%d,%d), want (%d,%d)", src, dst, a, b)
	}
	out := s.OutEdgesOf(a)
	if len(out) != 2 || out[0] != e1 || out[1] != e2 {
		t.Fatalf("OutEdgesOf(a) = %v, want [%d %d]", out, e1, e2)
	}
	if got := s.InEdgesOf(c); len(got) != 1 || got[0] != e2 {
		t.Fatalf("InEdgesOf(c) = %v, want [%d] (removed edge must be dropped)", got, e2)
	}
	if got := s.OutEdgesOf(b); len(got) != 0 {
		t.Fatalf("OutEdgesOf(b) = %v, want empty (its only out-edge is removed)", got)
	}

	// Properties: flattened rows match the per-node sorted lists.
	props := s.NodePropsOf(a)
	if len(props) != 2 || props[0].Name != "age" || props[1].Name != "name" {
		t.Fatalf("NodePropsOf(a) = %v", props)
	}
	if got := s.EdgePropsOf(e1); len(got) != 1 || got[0].Name != "since" {
		t.Fatalf("EdgePropsOf(e1) = %v", got)
	}
	if got := s.EdgePropsOf(e2); len(got) != 0 {
		t.Fatalf("EdgePropsOf(e2) = %v, want empty", got)
	}

	// Presence bitsets and sym lookup.
	name, _ := g.Sym("name")
	age, _ := g.Sym("age")
	if !s.NodeHasProp(a, name) || !s.NodeHasProp(c, name) || s.NodeHasProp(b, name) {
		t.Fatalf("NodeHasProp(name) wrong")
	}
	if !s.NodeHasProp(a, age) || s.NodeHasProp(c, age) {
		t.Fatalf("NodeHasProp(age) wrong")
	}
	if s.NodeHasProp(a, NoSym) {
		t.Fatalf("NodeHasProp(NoSym) must be false")
	}
	if v, ok := s.NodePropBySym(a, age); !ok || v.Kind() != values.KindInt {
		t.Fatalf("NodePropBySym(a, age) = %v, %v", v, ok)
	}
	if _, ok := s.NodePropBySym(b, age); ok {
		t.Fatalf("NodePropBySym(b, age) should miss")
	}
}

func TestSnapshotCacheAndInvalidation(t *testing.T) {
	g, a, _, _, _, _ := snapGraph(t)
	s1 := g.Snapshot()
	if s2 := g.Snapshot(); s2 != s1 {
		t.Fatalf("unchanged graph must return the cached snapshot")
	}
	g.SetNodeProp(a, "nick", values.String("an"))
	s3 := g.Snapshot()
	if s3 == s1 {
		t.Fatalf("mutation must invalidate the cached snapshot")
	}
	nick, _ := g.Sym("nick")
	if !s3.NodeHasProp(a, nick) {
		t.Fatalf("rebuilt snapshot misses new property")
	}
	if s1.NodeHasProp(a, nick) {
		t.Fatalf("old snapshot must be unaffected by later mutation")
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	s := New().Snapshot()
	if s.NodeBound() != 0 || s.EdgeBound() != 0 {
		t.Fatalf("empty snapshot bounds (%d,%d)", s.NodeBound(), s.EdgeBound())
	}
}
