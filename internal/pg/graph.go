// Package pg implements the Property Graph data model of Definition 2.1
// (Angles et al.): a directed multigraph G = (V, E, ρ, λ, σ) where every
// node and edge carries exactly one label (λ) and a partial map from
// property names to values (σ).
//
// The Graph type is an in-memory store with label and adjacency indexes
// sized for validation workloads: out- and in-edges are grouped per node
// and can be filtered by label without scanning E. Labels and property
// names are interned to dense Syms so compiled validators can replace
// string hashing with array indexing; an epoch counter versions every
// mutation so derived structures (bound validation programs, cached
// node enumerations) know when they are stale.
package pg

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pgschema/internal/values"
)

// NodeID identifies a node in V. IDs are dense and start at 0.
type NodeID int

// EdgeID identifies an edge in E. IDs are dense and start at 0.
type EdgeID int

// Prop is one (name, value) entry of σ(o, ·). Sym is the graph-interned
// ID of Name; per-element property lists are kept sorted by Name.
type Prop struct {
	Sym   Sym
	Name  string
	Value values.Value
}

// node holds λ(v), σ(v, ·), and the adjacency lists for one node.
type node struct {
	label   Sym
	props   []Prop
	out     []EdgeID
	in      []EdgeID
	removed bool
}

// edge holds ρ(e), λ(e), and σ(e, ·) for one edge.
type edge struct {
	src, dst NodeID
	label    Sym
	props    []Prop
	removed  bool
}

// Graph is a mutable Property Graph. The zero value is an empty graph
// ready to use. Graph is not safe for concurrent mutation; concurrent
// readers are safe once mutation has stopped.
type Graph struct {
	nodes []node
	edges []edge

	syms  symbols
	epoch uint64
	// byLabel indexes the live-or-removed nodes of each label by the
	// label's Sym. Buckets exist only for syms that have been node
	// labels; lookups by string go through the intern table once instead
	// of hashing the label on every call.
	byLabel      [][]NodeID
	removedNodes int
	removedEdges int

	// snap caches the columnar Snapshot of the graph; it is keyed by
	// epoch, so mutations invalidate it lazily (the next Snapshot call
	// rebuilds) without mutators having to clear it.
	snap atomic.Pointer[Snapshot]

	// sharedCols marks a sealed streamed graph whose node and edge
	// slices still alias the flat columns its pre-built snapshot owns.
	// Writes through those slices (property overwrite or delete-shift)
	// must call privatize first; appends are safe regardless, because
	// every aliased slice is capacity-capped at its bound.
	sharedCols bool

	// cold is non-nil while a graph opened from a mapped snapshot has
	// not materialized its mutable store: readers on the compiled
	// validation/query path answer from this snapshot, and store-shaped
	// access goes through ensureStore (see cold.go). Atomic because
	// concurrent readers may race one of them inflating the store.
	cold      atomic.Pointer[Snapshot]
	storeOnce sync.Once

	// coldBy is the lazily built per-label node index of a cold graph;
	// separate from byLabel so building it stays read-only.
	coldBy     [][]NodeID
	coldByOnce sync.Once

	// mapping is the file mapping a graph opened with OpenSnapshot
	// reads through; Close releases it.
	mapping *snapMapping
}

// privatize unshares the flat property and adjacency storage a sealed
// streamed graph initially aliases with its snapshot. Deferring the
// bulk copies to the first in-place mutation means loads that are never
// mutated — the CLI validate and server ingest paths — skip them
// entirely.
func (g *Graph) privatize() {
	g.ensureStore()
	if !g.sharedCols {
		return
	}
	g.sharedCols = false
	var nProps, nOut, nIn, eProps int
	for i := range g.nodes {
		nProps += len(g.nodes[i].props)
		nOut += len(g.nodes[i].out)
		nIn += len(g.nodes[i].in)
	}
	for i := range g.edges {
		eProps += len(g.edges[i].props)
	}
	props := make([]Prop, 0, nProps)
	out := make([]EdgeID, 0, nOut)
	in := make([]EdgeID, 0, nIn)
	for i := range g.nodes {
		n := &g.nodes[i]
		a := len(props)
		props = append(props, n.props...)
		n.props = props[a:len(props):len(props)]
		a = len(out)
		out = append(out, n.out...)
		n.out = out[a:len(out):len(out)]
		a = len(in)
		in = append(in, n.in...)
		n.in = in[a:len(in):len(in)]
	}
	eps := make([]Prop, 0, eProps)
	for i := range g.edges {
		e := &g.edges[i]
		a := len(eps)
		eps = append(eps, e.props...)
		e.props = eps[a:len(eps):len(eps)]
	}
}

// New returns an empty Property Graph.
func New() *Graph { return &Graph{} }

// Epoch returns the graph's mutation counter. Every mutating call
// (adding/removing elements, relabeling, setting/deleting properties)
// increments it, so a structure derived from the graph at epoch k is
// valid exactly while Epoch() == k.
func (g *Graph) Epoch() uint64 { return g.epoch }

// SymCount returns the number of interned symbols; valid Syms are
// exactly [0, SymCount()).
func (g *Graph) SymCount() int { return len(g.syms.names) }

// Sym returns the interned Sym for name, or (NoSym, false) if the graph
// has never seen it as a label or property name.
func (g *Graph) Sym(name string) (Sym, bool) {
	if s, ok := g.syms.lookup(name); ok {
		return s, true
	}
	return NoSym, false
}

// SymName returns the string a valid Sym was interned from.
func (g *Graph) SymName(s Sym) string { return g.syms.names[s] }

// labelBucket returns the byLabel bucket for a label Sym, growing the
// index when the sym is new.
func (g *Graph) labelBucket(s Sym) *[]NodeID {
	for int(s) >= len(g.byLabel) {
		g.byLabel = append(g.byLabel, nil)
	}
	return &g.byLabel[s]
}

// AddNode adds a node with label λ(v) = label and returns its ID.
func (g *Graph) AddNode(label string) NodeID {
	return g.addNodeSym(g.syms.intern(label))
}

// addNodeSym is AddNode for a pre-interned label Sym — bulk loaders
// intern each header or label string once and skip per-row hashing.
func (g *Graph) addNodeSym(label Sym) NodeID {
	g.ensureStore()
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, node{label: label})
	b := g.labelBucket(label)
	*b = append(*b, id)
	g.epoch++
	return id
}

// AddEdge adds an edge e with ρ(e) = (src, dst) and λ(e) = label.
func (g *Graph) AddEdge(src, dst NodeID, label string) (EdgeID, error) {
	return g.addEdgeSym(src, dst, g.syms.intern(label))
}

// addEdgeSym is AddEdge for a pre-interned label Sym.
func (g *Graph) addEdgeSym(src, dst NodeID, label Sym) (EdgeID, error) {
	g.ensureStore()
	if !g.validNode(src) {
		return 0, fmt.Errorf("pg: AddEdge: invalid source node %d", src)
	}
	if !g.validNode(dst) {
		return 0, fmt.Errorf("pg: AddEdge: invalid target node %d", dst)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, edge{src: src, dst: dst, label: label})
	g.nodes[src].out = append(g.nodes[src].out, id)
	g.nodes[dst].in = append(g.nodes[dst].in, id)
	g.epoch++
	return id, nil
}

// MustAddEdge is AddEdge for known-valid endpoints; it panics on error.
func (g *Graph) MustAddEdge(src, dst NodeID, label string) EdgeID {
	id, err := g.AddEdge(src, dst, label)
	if err != nil {
		panic(err)
	}
	return id
}

func (g *Graph) validNode(id NodeID) bool {
	if c := g.cold.Load(); c != nil {
		return id >= 0 && int(id) < len(c.nodeLabels) && c.nodeLabels[id] != NoSym
	}
	return id >= 0 && int(id) < len(g.nodes) && !g.nodes[id].removed
}

func (g *Graph) validEdge(id EdgeID) bool {
	if c := g.cold.Load(); c != nil {
		return id >= 0 && int(id) < len(c.edgeLabels) && c.edgeLabels[id] != NoSym
	}
	return id >= 0 && int(id) < len(g.edges) && !g.edges[id].removed
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int {
	if c := g.cold.Load(); c != nil {
		return c.liveNodes
	}
	return len(g.nodes) - g.removedNodes
}

// NumEdges returns |E|.
func (g *Graph) NumEdges() int {
	if c := g.cold.Load(); c != nil {
		return c.liveEdges
	}
	return len(g.edges) - g.removedEdges
}

// NodeBound returns the exclusive upper bound of node IDs ever
// allocated, including removed ones. Hot loops iterate id ∈ [0,
// NodeBound()) and skip !HasNode(id) instead of materializing Nodes().
func (g *Graph) NodeBound() int {
	if c := g.cold.Load(); c != nil {
		return len(c.nodeLabels)
	}
	return len(g.nodes)
}

// EdgeBound returns the exclusive upper bound of edge IDs ever
// allocated, including removed ones.
func (g *Graph) EdgeBound() int {
	if c := g.cold.Load(); c != nil {
		return len(c.edgeLabels)
	}
	return len(g.edges)
}

// Nodes returns the IDs of all nodes in insertion order.
func (g *Graph) Nodes() []NodeID {
	g.ensureStore()
	out := make([]NodeID, 0, g.NumNodes())
	for i := range g.nodes {
		if !g.nodes[i].removed {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Edges returns the IDs of all edges in insertion order.
func (g *Graph) Edges() []EdgeID {
	g.ensureStore()
	out := make([]EdgeID, 0, g.NumEdges())
	for i := range g.edges {
		if !g.edges[i].removed {
			out = append(out, EdgeID(i))
		}
	}
	return out
}

// HasNode reports whether id is a live node.
func (g *Graph) HasNode(id NodeID) bool { return g.validNode(id) }

// HasEdge reports whether id is a live edge.
func (g *Graph) HasEdge(id EdgeID) bool { return g.validEdge(id) }

// NodeLabel returns λ(v).
func (g *Graph) NodeLabel(id NodeID) string {
	if c := g.cold.Load(); c != nil {
		if ls := c.nodeLabels[id]; ls != NoSym {
			return g.syms.names[ls]
		}
		return "" // tombstone: a mapped snapshot keeps no removed label
	}
	return g.syms.names[g.nodes[id].label]
}

// EdgeLabel returns λ(e).
func (g *Graph) EdgeLabel(id EdgeID) string {
	if c := g.cold.Load(); c != nil {
		if ls := c.edgeLabels[id]; ls != NoSym {
			return g.syms.names[ls]
		}
		return ""
	}
	return g.syms.names[g.edges[id].label]
}

// NodeLabelSym returns λ(v) as an interned Sym.
func (g *Graph) NodeLabelSym(id NodeID) Sym {
	if c := g.cold.Load(); c != nil {
		if ls := c.nodeLabels[id]; ls != NoSym {
			return ls
		}
		return 0
	}
	return g.nodes[id].label
}

// EdgeLabelSym returns λ(e) as an interned Sym.
func (g *Graph) EdgeLabelSym(id EdgeID) Sym {
	if c := g.cold.Load(); c != nil {
		if ls := c.edgeLabels[id]; ls != NoSym {
			return ls
		}
		return 0
	}
	return g.edges[id].label
}

// Endpoints returns ρ(e) = (src, dst).
func (g *Graph) Endpoints(id EdgeID) (src, dst NodeID) {
	if c := g.cold.Load(); c != nil {
		return c.edgeSrc[id], c.edgeDst[id]
	}
	e := &g.edges[id]
	return e.src, e.dst
}

// SetNodeLabel relabels a node, maintaining the label index.
func (g *Graph) SetNodeLabel(id NodeID, label string) {
	g.ensureStore()
	n := &g.nodes[id]
	ls := g.syms.intern(label)
	if n.label == ls {
		return
	}
	g.byLabel[n.label] = removeID(g.byLabel[n.label], id)
	n.label = ls
	b := g.labelBucket(ls)
	*b = append(*b, id)
	g.epoch++
}

// SetEdgeLabel relabels an edge.
func (g *Graph) SetEdgeLabel(id EdgeID, label string) {
	g.ensureStore()
	g.edges[id].label = g.syms.intern(label)
	g.epoch++
}

// SetNodeProp sets σ(v, name) = v.
func (g *Graph) SetNodeProp(id NodeID, name string, v values.Value) {
	g.privatize()
	n := &g.nodes[id]
	n.props = setProp(n.props, Prop{Sym: g.syms.intern(name), Name: name, Value: v})
	g.epoch++
}

// SetEdgeProp sets σ(e, name) = v.
func (g *Graph) SetEdgeProp(id EdgeID, name string, v values.Value) {
	g.privatize()
	e := &g.edges[id]
	e.props = setProp(e.props, Prop{Sym: g.syms.intern(name), Name: name, Value: v})
	g.epoch++
}

// setNodePropsSorted installs the full property list of a node that has
// none yet: props must be sorted by Name with distinct names, and the
// graph takes ownership of the slice. Bulk loaders use it to skip the
// per-property sorted insertion and bump the epoch once per node.
func (g *Graph) setNodePropsSorted(id NodeID, props []Prop) {
	g.nodes[id].props = props
	g.epoch++
}

// setEdgePropsSorted is setNodePropsSorted for an edge.
func (g *Graph) setEdgePropsSorted(id EdgeID, props []Prop) {
	g.edges[id].props = props
	g.epoch++
}

// DeleteNodeProp removes (v, name) from dom(σ).
func (g *Graph) DeleteNodeProp(id NodeID, name string) {
	g.privatize()
	g.nodes[id].props = delProp(g.nodes[id].props, name)
	g.epoch++
}

// DeleteEdgeProp removes (e, name) from dom(σ).
func (g *Graph) DeleteEdgeProp(id EdgeID, name string) {
	g.privatize()
	g.edges[id].props = delProp(g.edges[id].props, name)
	g.epoch++
}

// setProp inserts or overwrites an entry, keeping props sorted by Name.
func setProp(props []Prop, p Prop) []Prop {
	i := sort.Search(len(props), func(i int) bool { return props[i].Name >= p.Name })
	if i < len(props) && props[i].Name == p.Name {
		props[i].Value = p.Value
		return props
	}
	props = append(props, Prop{})
	copy(props[i+1:], props[i:])
	props[i] = p
	return props
}

func delProp(props []Prop, name string) []Prop {
	i := sort.Search(len(props), func(i int) bool { return props[i].Name >= name })
	if i < len(props) && props[i].Name == name {
		return append(props[:i], props[i+1:]...)
	}
	return props
}

func getProp(props []Prop, name string) (values.Value, bool) {
	i := sort.Search(len(props), func(i int) bool { return props[i].Name >= name })
	if i < len(props) && props[i].Name == name {
		return props[i].Value, true
	}
	return values.Value{}, false
}

// NodeProp returns σ(v, name) and whether (v, name) ∈ dom(σ).
func (g *Graph) NodeProp(id NodeID, name string) (values.Value, bool) {
	if c := g.cold.Load(); c != nil {
		s, ok := g.syms.lookup(name)
		if !ok {
			return values.Value{}, false
		}
		return c.NodePropBySym(id, s)
	}
	return getProp(g.nodes[id].props, name)
}

// EdgeProp returns σ(e, name) and whether (e, name) ∈ dom(σ).
func (g *Graph) EdgeProp(id EdgeID, name string) (values.Value, bool) {
	if c := g.cold.Load(); c != nil {
		s, ok := g.syms.lookup(name)
		if !ok {
			return values.Value{}, false
		}
		return c.EdgePropBySym(id, s)
	}
	return getProp(g.edges[id].props, name)
}

// NodePropBySym returns σ(v, name) for an interned property name.
// Passing NoSym (or a Sym never used as one of this node's property
// names) reports false.
func (g *Graph) NodePropBySym(id NodeID, s Sym) (values.Value, bool) {
	if c := g.cold.Load(); c != nil {
		return c.NodePropBySym(id, s)
	}
	for i := range g.nodes[id].props {
		if g.nodes[id].props[i].Sym == s {
			return g.nodes[id].props[i].Value, true
		}
	}
	return values.Value{}, false
}

// EdgePropBySym returns σ(e, name) for an interned property name.
func (g *Graph) EdgePropBySym(id EdgeID, s Sym) (values.Value, bool) {
	if c := g.cold.Load(); c != nil {
		return c.EdgePropBySym(id, s)
	}
	for i := range g.edges[id].props {
		if g.edges[id].props[i].Sym == s {
			return g.edges[id].props[i].Value, true
		}
	}
	return values.Value{}, false
}

// NodeProps returns the node's properties sorted by name. The slice is
// shared with the graph: callers must not mutate it, and it is
// invalidated by the next mutation of this node's properties.
func (g *Graph) NodeProps(id NodeID) []Prop {
	g.ensureStore()
	return g.nodes[id].props
}

// EdgeProps returns the edge's properties sorted by name, shared with
// the graph under the same contract as NodeProps.
func (g *Graph) EdgeProps(id EdgeID) []Prop {
	g.ensureStore()
	return g.edges[id].props
}

// NodePropNames returns the sorted property names defined on the node.
func (g *Graph) NodePropNames(id NodeID) []string {
	g.ensureStore()
	return propNames(g.nodes[id].props)
}

// EdgePropNames returns the sorted property names defined on the edge.
func (g *Graph) EdgePropNames(id EdgeID) []string {
	g.ensureStore()
	return propNames(g.edges[id].props)
}

func propNames(props []Prop) []string {
	if len(props) == 0 {
		return nil
	}
	out := make([]string, len(props))
	for i := range props {
		out[i] = props[i].Name
	}
	return out
}

// NodesLabeled returns the IDs of all live nodes with λ(v) = label.
func (g *Graph) NodesLabeled(label string) []NodeID {
	ls, ok := g.syms.lookup(label)
	if !ok {
		return nil
	}
	return g.nodesLabeledSym(ls)
}

// nodesLabeledSym is NodesLabeled for a pre-interned label Sym.
func (g *Graph) nodesLabeledSym(ls Sym) []NodeID {
	if c := g.cold.Load(); c != nil {
		buckets := g.coldBuckets(c)
		if int(ls) >= len(buckets) {
			return nil
		}
		// Cold buckets hold only live nodes; copy under the same
		// fresh-slice contract as the store path.
		return append([]NodeID(nil), buckets[ls]...)
	}
	if int(ls) >= len(g.byLabel) {
		return nil
	}
	ids := g.byLabel[ls]
	out := make([]NodeID, 0, len(ids))
	for _, id := range ids {
		if !g.nodes[id].removed {
			out = append(out, id)
		}
	}
	return out
}

// OutEdges returns the live outgoing edges of the node.
func (g *Graph) OutEdges(id NodeID) []EdgeID {
	g.ensureStore()
	return g.liveEdges(g.nodes[id].out)
}

// InEdges returns the live incoming edges of the node.
func (g *Graph) InEdges(id NodeID) []EdgeID {
	g.ensureStore()
	return g.liveEdges(g.nodes[id].in)
}

// OutEdgesRaw returns the node's outgoing edge list including removed
// edges (tombstones), shared with the graph. Hot loops filter with
// HasEdge instead of allocating a live copy.
func (g *Graph) OutEdgesRaw(id NodeID) []EdgeID {
	if c := g.cold.Load(); c != nil {
		return c.OutEdgesOf(id) // cold rows are live-only, read-only
	}
	return g.nodes[id].out
}

// InEdgesRaw returns the node's incoming edge list including removed
// edges, shared with the graph.
func (g *Graph) InEdgesRaw(id NodeID) []EdgeID {
	if c := g.cold.Load(); c != nil {
		return c.InEdgesOf(id)
	}
	return g.nodes[id].in
}

func (g *Graph) liveEdges(ids []EdgeID) []EdgeID {
	out := make([]EdgeID, 0, len(ids))
	for _, id := range ids {
		if !g.edges[id].removed {
			out = append(out, id)
		}
	}
	return out
}

// OutEdgesLabeled returns the node's live outgoing edges with λ(e) = label.
func (g *Graph) OutEdgesLabeled(id NodeID, label string) []EdgeID {
	g.ensureStore()
	ls, ok := g.syms.lookup(label)
	if !ok {
		return nil
	}
	var out []EdgeID
	for _, eid := range g.nodes[id].out {
		if e := &g.edges[eid]; !e.removed && e.label == ls {
			out = append(out, eid)
		}
	}
	return out
}

// InEdgesLabeled returns the node's live incoming edges with λ(e) = label.
func (g *Graph) InEdgesLabeled(id NodeID, label string) []EdgeID {
	g.ensureStore()
	ls, ok := g.syms.lookup(label)
	if !ok {
		return nil
	}
	var out []EdgeID
	for _, eid := range g.nodes[id].in {
		if e := &g.edges[eid]; !e.removed && e.label == ls {
			out = append(out, eid)
		}
	}
	return out
}

// OutDegreeLabeled counts the node's live outgoing edges with the label.
func (g *Graph) OutDegreeLabeled(id NodeID, label string) int {
	g.ensureStore()
	ls, ok := g.syms.lookup(label)
	if !ok {
		return 0
	}
	n := 0
	for _, eid := range g.nodes[id].out {
		if e := &g.edges[eid]; !e.removed && e.label == ls {
			n++
		}
	}
	return n
}

// RemoveEdge deletes an edge. The ID is never reused.
func (g *Graph) RemoveEdge(id EdgeID) {
	g.ensureStore()
	if !g.validEdge(id) {
		return
	}
	g.edges[id].removed = true
	g.removedEdges++
	g.epoch++
}

// RemoveNode deletes a node together with all its incident edges.
func (g *Graph) RemoveNode(id NodeID) {
	g.ensureStore()
	if !g.validNode(id) {
		return
	}
	for _, eid := range g.nodes[id].out {
		g.RemoveEdge(eid)
	}
	for _, eid := range g.nodes[id].in {
		g.RemoveEdge(eid)
	}
	n := &g.nodes[id]
	n.removed = true
	g.removedNodes++
	g.byLabel[n.label] = removeID(g.byLabel[n.label], id)
	g.epoch++
}

func removeID(ids []NodeID, id NodeID) []NodeID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Labels returns the distinct node labels present in the graph, sorted.
func (g *Graph) Labels() []string {
	if c := g.cold.Load(); c != nil {
		return g.coldLabels(c)
	}
	var out []string
	for s, ids := range g.byLabel {
		live := false
		for _, id := range ids {
			if !g.nodes[id].removed {
				live = true
				break
			}
		}
		if live {
			out = append(out, g.syms.names[s])
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the graph. Property values are immutable
// and shared; property lists and adjacency lists are copied. Syms and
// the epoch carry over, so structures bound to the original at the
// current epoch describe the clone equally well until either side
// mutates.
func (g *Graph) Clone() *Graph {
	g.ensureStore()
	c := &Graph{
		nodes:        make([]node, len(g.nodes)),
		edges:        make([]edge, len(g.edges)),
		syms:         g.syms.clone(),
		epoch:        g.epoch,
		byLabel:      make([][]NodeID, len(g.byLabel)),
		removedNodes: g.removedNodes,
		removedEdges: g.removedEdges,
	}
	for i, n := range g.nodes {
		cp := n
		cp.props = append([]Prop(nil), n.props...)
		cp.out = append([]EdgeID(nil), n.out...)
		cp.in = append([]EdgeID(nil), n.in...)
		c.nodes[i] = cp
	}
	for i, e := range g.edges {
		cp := e
		cp.props = append([]Prop(nil), e.props...)
		c.edges[i] = cp
	}
	for s, ids := range g.byLabel {
		if ids != nil {
			c.byLabel[s] = append([]NodeID(nil), ids...)
		}
	}
	return c
}

// AllOutEdges returns the node's outgoing edges including removed ones
// (tombstones keep their endpoints). Incremental validation uses this to
// find the region a node mutation influences.
func (g *Graph) AllOutEdges(id NodeID) []EdgeID {
	g.ensureStore()
	return append([]EdgeID(nil), g.nodes[id].out...)
}

// AllInEdges returns the node's incoming edges including removed ones.
func (g *Graph) AllInEdges(id NodeID) []EdgeID {
	g.ensureStore()
	return append([]EdgeID(nil), g.nodes[id].in...)
}
