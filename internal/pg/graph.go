// Package pg implements the Property Graph data model of Definition 2.1
// (Angles et al.): a directed multigraph G = (V, E, ρ, λ, σ) where every
// node and edge carries exactly one label (λ) and a partial map from
// property names to values (σ).
//
// The Graph type is an in-memory store with label and adjacency indexes
// sized for validation workloads: out- and in-edges are grouped per node
// and can be filtered by label without scanning E.
package pg

import (
	"fmt"
	"sort"

	"pgschema/internal/values"
)

// NodeID identifies a node in V. IDs are dense and start at 0.
type NodeID int

// EdgeID identifies an edge in E. IDs are dense and start at 0.
type EdgeID int

// node holds λ(v), σ(v, ·), and the adjacency lists for one node.
type node struct {
	label   string
	props   map[string]values.Value
	out     []EdgeID
	in      []EdgeID
	removed bool
}

// edge holds ρ(e), λ(e), and σ(e, ·) for one edge.
type edge struct {
	src, dst NodeID
	label    string
	props    map[string]values.Value
	removed  bool
}

// Graph is a mutable Property Graph. The zero value is an empty graph
// ready to use. Graph is not safe for concurrent mutation; concurrent
// readers are safe once mutation has stopped.
type Graph struct {
	nodes []node
	edges []edge

	byLabel      map[string][]NodeID
	removedNodes int
	removedEdges int
}

// New returns an empty Property Graph.
func New() *Graph { return &Graph{} }

// AddNode adds a node with label λ(v) = label and returns its ID.
func (g *Graph) AddNode(label string) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, node{label: label})
	if g.byLabel == nil {
		g.byLabel = make(map[string][]NodeID)
	}
	g.byLabel[label] = append(g.byLabel[label], id)
	return id
}

// AddEdge adds an edge e with ρ(e) = (src, dst) and λ(e) = label.
func (g *Graph) AddEdge(src, dst NodeID, label string) (EdgeID, error) {
	if !g.validNode(src) {
		return 0, fmt.Errorf("pg: AddEdge: invalid source node %d", src)
	}
	if !g.validNode(dst) {
		return 0, fmt.Errorf("pg: AddEdge: invalid target node %d", dst)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, edge{src: src, dst: dst, label: label})
	g.nodes[src].out = append(g.nodes[src].out, id)
	g.nodes[dst].in = append(g.nodes[dst].in, id)
	return id, nil
}

// MustAddEdge is AddEdge for known-valid endpoints; it panics on error.
func (g *Graph) MustAddEdge(src, dst NodeID, label string) EdgeID {
	id, err := g.AddEdge(src, dst, label)
	if err != nil {
		panic(err)
	}
	return id
}

func (g *Graph) validNode(id NodeID) bool {
	return id >= 0 && int(id) < len(g.nodes) && !g.nodes[id].removed
}

func (g *Graph) validEdge(id EdgeID) bool {
	return id >= 0 && int(id) < len(g.edges) && !g.edges[id].removed
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) - g.removedNodes }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) - g.removedEdges }

// Nodes returns the IDs of all nodes in insertion order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, g.NumNodes())
	for i := range g.nodes {
		if !g.nodes[i].removed {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Edges returns the IDs of all edges in insertion order.
func (g *Graph) Edges() []EdgeID {
	out := make([]EdgeID, 0, g.NumEdges())
	for i := range g.edges {
		if !g.edges[i].removed {
			out = append(out, EdgeID(i))
		}
	}
	return out
}

// HasNode reports whether id is a live node.
func (g *Graph) HasNode(id NodeID) bool { return g.validNode(id) }

// HasEdge reports whether id is a live edge.
func (g *Graph) HasEdge(id EdgeID) bool { return g.validEdge(id) }

// NodeLabel returns λ(v).
func (g *Graph) NodeLabel(id NodeID) string { return g.nodes[id].label }

// EdgeLabel returns λ(e).
func (g *Graph) EdgeLabel(id EdgeID) string { return g.edges[id].label }

// Endpoints returns ρ(e) = (src, dst).
func (g *Graph) Endpoints(id EdgeID) (src, dst NodeID) {
	e := &g.edges[id]
	return e.src, e.dst
}

// SetNodeLabel relabels a node, maintaining the label index.
func (g *Graph) SetNodeLabel(id NodeID, label string) {
	old := g.nodes[id].label
	if old == label {
		return
	}
	g.byLabel[old] = removeID(g.byLabel[old], id)
	g.nodes[id].label = label
	if g.byLabel == nil {
		g.byLabel = make(map[string][]NodeID)
	}
	g.byLabel[label] = append(g.byLabel[label], id)
}

// SetEdgeLabel relabels an edge.
func (g *Graph) SetEdgeLabel(id EdgeID, label string) { g.edges[id].label = label }

// SetNodeProp sets σ(v, name) = v.
func (g *Graph) SetNodeProp(id NodeID, name string, v values.Value) {
	n := &g.nodes[id]
	if n.props == nil {
		n.props = make(map[string]values.Value)
	}
	n.props[name] = v
}

// SetEdgeProp sets σ(e, name) = v.
func (g *Graph) SetEdgeProp(id EdgeID, name string, v values.Value) {
	e := &g.edges[id]
	if e.props == nil {
		e.props = make(map[string]values.Value)
	}
	e.props[name] = v
}

// DeleteNodeProp removes (v, name) from dom(σ).
func (g *Graph) DeleteNodeProp(id NodeID, name string) { delete(g.nodes[id].props, name) }

// DeleteEdgeProp removes (e, name) from dom(σ).
func (g *Graph) DeleteEdgeProp(id EdgeID, name string) { delete(g.edges[id].props, name) }

// NodeProp returns σ(v, name) and whether (v, name) ∈ dom(σ).
func (g *Graph) NodeProp(id NodeID, name string) (values.Value, bool) {
	v, ok := g.nodes[id].props[name]
	return v, ok
}

// EdgeProp returns σ(e, name) and whether (e, name) ∈ dom(σ).
func (g *Graph) EdgeProp(id EdgeID, name string) (values.Value, bool) {
	v, ok := g.edges[id].props[name]
	return v, ok
}

// NodePropNames returns the sorted property names defined on the node.
func (g *Graph) NodePropNames(id NodeID) []string { return sortedPropNames(g.nodes[id].props) }

// EdgePropNames returns the sorted property names defined on the edge.
func (g *Graph) EdgePropNames(id EdgeID) []string { return sortedPropNames(g.edges[id].props) }

func sortedPropNames(m map[string]values.Value) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NodesLabeled returns the IDs of all live nodes with λ(v) = label.
func (g *Graph) NodesLabeled(label string) []NodeID {
	ids := g.byLabel[label]
	out := make([]NodeID, 0, len(ids))
	for _, id := range ids {
		if !g.nodes[id].removed {
			out = append(out, id)
		}
	}
	return out
}

// OutEdges returns the live outgoing edges of the node.
func (g *Graph) OutEdges(id NodeID) []EdgeID { return g.liveEdges(g.nodes[id].out) }

// InEdges returns the live incoming edges of the node.
func (g *Graph) InEdges(id NodeID) []EdgeID { return g.liveEdges(g.nodes[id].in) }

func (g *Graph) liveEdges(ids []EdgeID) []EdgeID {
	out := make([]EdgeID, 0, len(ids))
	for _, id := range ids {
		if !g.edges[id].removed {
			out = append(out, id)
		}
	}
	return out
}

// OutEdgesLabeled returns the node's live outgoing edges with λ(e) = label.
func (g *Graph) OutEdgesLabeled(id NodeID, label string) []EdgeID {
	var out []EdgeID
	for _, eid := range g.nodes[id].out {
		if e := &g.edges[eid]; !e.removed && e.label == label {
			out = append(out, eid)
		}
	}
	return out
}

// InEdgesLabeled returns the node's live incoming edges with λ(e) = label.
func (g *Graph) InEdgesLabeled(id NodeID, label string) []EdgeID {
	var out []EdgeID
	for _, eid := range g.nodes[id].in {
		if e := &g.edges[eid]; !e.removed && e.label == label {
			out = append(out, eid)
		}
	}
	return out
}

// OutDegreeLabeled counts the node's live outgoing edges with the label.
func (g *Graph) OutDegreeLabeled(id NodeID, label string) int {
	n := 0
	for _, eid := range g.nodes[id].out {
		if e := &g.edges[eid]; !e.removed && e.label == label {
			n++
		}
	}
	return n
}

// RemoveEdge deletes an edge. The ID is never reused.
func (g *Graph) RemoveEdge(id EdgeID) {
	if !g.validEdge(id) {
		return
	}
	g.edges[id].removed = true
	g.removedEdges++
}

// RemoveNode deletes a node together with all its incident edges.
func (g *Graph) RemoveNode(id NodeID) {
	if !g.validNode(id) {
		return
	}
	for _, eid := range g.nodes[id].out {
		g.RemoveEdge(eid)
	}
	for _, eid := range g.nodes[id].in {
		g.RemoveEdge(eid)
	}
	n := &g.nodes[id]
	n.removed = true
	g.removedNodes++
	g.byLabel[n.label] = removeID(g.byLabel[n.label], id)
}

func removeID(ids []NodeID, id NodeID) []NodeID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Labels returns the distinct node labels present in the graph, sorted.
func (g *Graph) Labels() []string {
	out := make([]string, 0, len(g.byLabel))
	for l, ids := range g.byLabel {
		live := false
		for _, id := range ids {
			if !g.nodes[id].removed {
				live = true
				break
			}
		}
		if live {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the graph. Property values are immutable
// and shared; property maps and adjacency lists are copied.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:        make([]node, len(g.nodes)),
		edges:        make([]edge, len(g.edges)),
		byLabel:      make(map[string][]NodeID, len(g.byLabel)),
		removedNodes: g.removedNodes,
		removedEdges: g.removedEdges,
	}
	for i, n := range g.nodes {
		cp := n
		cp.props = cloneProps(n.props)
		cp.out = append([]EdgeID(nil), n.out...)
		cp.in = append([]EdgeID(nil), n.in...)
		c.nodes[i] = cp
	}
	for i, e := range g.edges {
		cp := e
		cp.props = cloneProps(e.props)
		c.edges[i] = cp
	}
	for l, ids := range g.byLabel {
		c.byLabel[l] = append([]NodeID(nil), ids...)
	}
	return c
}

func cloneProps(m map[string]values.Value) map[string]values.Value {
	if m == nil {
		return nil
	}
	cp := make(map[string]values.Value, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// AllOutEdges returns the node's outgoing edges including removed ones
// (tombstones keep their endpoints). Incremental validation uses this to
// find the region a node mutation influences.
func (g *Graph) AllOutEdges(id NodeID) []EdgeID {
	return append([]EdgeID(nil), g.nodes[id].out...)
}

// AllInEdges returns the node's incoming edges including removed ones.
func (g *Graph) AllInEdges(id NodeID) []EdgeID {
	return append([]EdgeID(nil), g.nodes[id].in...)
}
