package pg

import (
	"fmt"

	"pgschema/internal/values"
)

// This file implements the transactional mutation surface: a Delta
// describes a batch of graph mutations, Graph.Apply installs all of
// them or none, and the returned Undo can revert the batch. Apply is
// the write path the HTTP server exposes; single-element mutators on
// Graph remain available for code that owns the graph outright.

// NewNodeRef encodes a reference to the i-th entry of Delta.AddNodes
// for use inside the same Delta (e.g. as an AddEdgeSpec endpoint or a
// RelabelSpec target). References are negative and therefore disjoint
// from real node IDs.
func NewNodeRef(i int) NodeID { return NodeID(-(i + 1)) }

// NewEdgeRef encodes a reference to the i-th entry of Delta.AddEdges,
// usable wherever the Delta names an EdgeID.
func NewEdgeRef(i int) EdgeID { return EdgeID(-(i + 1)) }

// PropEntry is one (name, value) pair of an element created by a Delta.
type PropEntry struct {
	Name  string
	Value values.Value
}

// AddNodeSpec creates a node with λ(v) = Label and the given properties.
type AddNodeSpec struct {
	Label string
	Props []PropEntry
}

// AddEdgeSpec creates an edge. Src and Dst may be existing node IDs or
// NewNodeRef references to nodes created by the same Delta.
type AddEdgeSpec struct {
	Src, Dst NodeID
	Label    string
	Props    []PropEntry
}

// RelabelSpec changes λ(v) of an existing (or same-Delta) node.
type RelabelSpec struct {
	Node  NodeID
	Label string
}

// NodePropSpec sets σ(v, Name) = Value.
type NodePropSpec struct {
	Node  NodeID
	Name  string
	Value values.Value
}

// NodePropDelSpec removes (v, Name) from dom(σ).
type NodePropDelSpec struct {
	Node NodeID
	Name string
}

// EdgePropSpec sets σ(e, Name) = Value.
type EdgePropSpec struct {
	Edge  EdgeID
	Name  string
	Value values.Value
}

// EdgePropDelSpec removes (e, Name) from dom(σ).
type EdgePropDelSpec struct {
	Edge EdgeID
	Name string
}

// Delta is a batch of graph mutations applied atomically by
// Graph.Apply. The groups are applied in field order: nodes are
// created first (so AddEdges and every later group may reference them
// via NewNodeRef), then edges, relabels, property writes, property
// deletes, and finally removals. RemoveNodes also removes the nodes'
// live incident edges, exactly like Graph.RemoveNode.
type Delta struct {
	AddNodes     []AddNodeSpec
	AddEdges     []AddEdgeSpec
	RelabelNodes []RelabelSpec
	SetNodeProps []NodePropSpec
	DelNodeProps []NodePropDelSpec
	SetEdgeProps []EdgePropSpec
	DelEdgeProps []EdgePropDelSpec
	RemoveEdges  []EdgeID
	RemoveNodes  []NodeID
}

// Empty reports whether the delta holds no mutations at all.
func (d *Delta) Empty() bool {
	return len(d.AddNodes) == 0 && len(d.AddEdges) == 0 &&
		len(d.RelabelNodes) == 0 && len(d.SetNodeProps) == 0 &&
		len(d.DelNodeProps) == 0 && len(d.SetEdgeProps) == 0 &&
		len(d.DelEdgeProps) == 0 && len(d.RemoveEdges) == 0 &&
		len(d.RemoveNodes) == 0
}

// Touched summarizes which elements a Delta changed, in the vocabulary
// incremental revalidation consumes: node IDs whose label, properties,
// or existence changed; edge IDs added, removed (including via node
// removal), or re-propertied; and the labels whose node extent changed
// — including the former labels of relabeled and removed nodes, which
// are no longer discoverable from the node alone.
type Touched struct {
	Nodes  []NodeID
	Edges  []EdgeID
	Labels []string
}

type undoKind uint8

const (
	undoAddNode undoKind = iota
	undoAddEdge
	undoRelabel
	undoNodeProp
	undoEdgeProp
	undoRemoveEdge
	undoRemoveNode
)

// undoStep records how to revert one primitive mutation. Steps are
// replayed in reverse, so "append" mutations undo by popping the last
// element and positional removals undo by re-inserting at the recorded
// position.
type undoStep struct {
	kind undoKind
	node NodeID
	edge EdgeID
	sym  Sym    // undoRelabel, undoRemoveNode: label whose bucket changed
	pos  int    // undoRelabel, undoRemoveNode: byLabel position to restore
	name string // undoNodeProp, undoEdgeProp: property name
	val  values.Value
	had  bool // property steps: the property existed before the change
}

// Undo reverts one successful Apply. It also carries the apply's
// outcome metadata: the IDs of created elements and the Touched
// summary that feeds incremental revalidation.
type Undo struct {
	g        *Graph
	before   uint64 // epoch when Apply started
	after    uint64 // epoch when Apply returned
	steps    []undoStep
	newNodes []NodeID
	newEdges []EdgeID
	touched  Touched
	oldSnap  *Snapshot // pre-apply snapshot, when one was cached
	done     bool
}

// NewNodes returns the IDs assigned to Delta.AddNodes, in order.
func (u *Undo) NewNodes() []NodeID { return u.newNodes }

// NewEdges returns the IDs assigned to Delta.AddEdges, in order.
func (u *Undo) NewEdges() []EdgeID { return u.newEdges }

// Touched returns the summary of elements the apply changed.
func (u *Undo) Touched() Touched { return u.touched }

// Epoch returns the graph epoch right after the apply.
func (u *Undo) Epoch() uint64 { return u.after }

// Undo reverts the applied delta. It fails if the graph has been
// mutated since Apply returned (the undo log only describes the state
// Apply left behind) or if the undo already ran. Undoing is itself a
// mutation: the epoch moves forward — it never rewinds, so structures
// cached against the applied epoch can never be confused with the
// restored state.
func (u *Undo) Undo() error {
	if u.done {
		return fmt.Errorf("pg: Undo: already undone")
	}
	if u.g.epoch != u.after {
		return fmt.Errorf("pg: Undo: graph mutated since Apply (epoch %d, want %d)", u.g.epoch, u.after)
	}
	u.g.replayUndo(u.steps)
	u.g.epoch++
	u.done = true
	if u.oldSnap != nil {
		// The pre-apply snapshot describes the restored content; re-stamp
		// it with the new epoch (snapshots are immutable, so take a
		// shallow copy) and reinstall it.
		restamped := *u.oldSnap
		restamped.epoch = u.g.epoch
		u.g.snap.Store(&restamped)
	}
	return nil
}

// replayUndo reverts the recorded steps in reverse order, mutating the
// graph structures directly without epoch bumps (callers account for
// the epoch once).
func (g *Graph) replayUndo(steps []undoStep) {
	g.privatize()
	for i := len(steps) - 1; i >= 0; i-- {
		st := &steps[i]
		switch st.kind {
		case undoAddNode:
			n := &g.nodes[st.node]
			b := &g.byLabel[n.label]
			*b = (*b)[:len(*b)-1]
			g.nodes = g.nodes[:len(g.nodes)-1]
		case undoAddEdge:
			e := &g.edges[st.edge]
			srcOut := &g.nodes[e.src].out
			*srcOut = (*srcOut)[:len(*srcOut)-1]
			dstIn := &g.nodes[e.dst].in
			*dstIn = (*dstIn)[:len(*dstIn)-1]
			g.edges = g.edges[:len(g.edges)-1]
		case undoRelabel:
			n := &g.nodes[st.node]
			b := &g.byLabel[n.label]
			*b = (*b)[:len(*b)-1]
			n.label = st.sym
			g.byLabel[st.sym] = insertID(g.byLabel[st.sym], st.pos, st.node)
		case undoNodeProp:
			n := &g.nodes[st.node]
			if st.had {
				n.props = setProp(n.props, Prop{Sym: g.syms.intern(st.name), Name: st.name, Value: st.val})
			} else {
				n.props = delProp(n.props, st.name)
			}
		case undoEdgeProp:
			e := &g.edges[st.edge]
			if st.had {
				e.props = setProp(e.props, Prop{Sym: g.syms.intern(st.name), Name: st.name, Value: st.val})
			} else {
				e.props = delProp(e.props, st.name)
			}
		case undoRemoveEdge:
			g.edges[st.edge].removed = false
			g.removedEdges--
		case undoRemoveNode:
			g.nodes[st.node].removed = false
			g.removedNodes--
			g.byLabel[st.sym] = insertID(g.byLabel[st.sym], st.pos, st.node)
		}
	}
}

func insertID(ids []NodeID, pos int, id NodeID) []NodeID {
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids
}

func indexOfID(ids []NodeID, id NodeID) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	return -1
}

// applyState accumulates the bookkeeping of one Apply run.
type applyState struct {
	u *Undo
	// Touched accumulators.
	tNodes  map[NodeID]struct{}
	tEdges  map[EdgeID]struct{}
	tLabels map[string]struct{}
	// Column-level change flags driving the snapshot patch.
	nodesAdded     bool
	edgesAdded     bool
	edgesRemoved   bool
	nodesRelabeled bool
	nodesRemoved   bool
	nodePropOps    bool // property row of a pre-existing node changed
	edgePropOps    bool
}

// Apply installs the delta atomically: either every mutation is
// applied and a non-nil Undo is returned, or the graph is left exactly
// as it was (same content, same epoch) and an error describes the
// first offending mutation. On success the epoch has advanced and, if
// a snapshot of the pre-apply state was cached, a patched snapshot of
// the new state is installed so the next validation does not pay a
// full columnar rebuild.
//
// Apply is not safe for concurrent use with other mutations or with
// readers; callers serialize writes (the HTTP server holds its writer
// lock across Apply).
func (g *Graph) Apply(d Delta) (*Undo, error) {
	g.privatize()
	st := &applyState{
		u:       &Undo{g: g, before: g.epoch},
		tNodes:  make(map[NodeID]struct{}),
		tEdges:  make(map[EdgeID]struct{}),
		tLabels: make(map[string]struct{}),
	}
	if err := g.applyAll(d, st); err != nil {
		g.replayUndo(st.u.steps)
		g.epoch = st.u.before
		return nil, err
	}
	u := st.u
	u.after = g.epoch
	u.touched = st.finishTouched()
	if u.after != u.before {
		if old := g.snap.Load(); old != nil && old.epoch == u.before {
			u.oldSnap = old
			if patched := g.patchSnapshot(old, st.patchPlan()); patched != nil {
				g.snap.Store(patched)
			}
		}
	}
	return u, nil
}

func (g *Graph) applyAll(d Delta, st *applyState) error {
	u := st.u
	for i, an := range d.AddNodes {
		id := g.addNodeSym(g.syms.intern(an.Label))
		u.steps = append(u.steps, undoStep{kind: undoAddNode, node: id})
		u.newNodes = append(u.newNodes, id)
		st.tNodes[id] = struct{}{}
		st.tLabels[an.Label] = struct{}{}
		st.nodesAdded = true
		for _, p := range an.Props {
			if err := g.applySetNodeProp(id, p.Name, p.Value, st); err != nil {
				return fmt.Errorf("pg: Apply: AddNodes[%d]: %v", i, err)
			}
		}
	}
	for i, ae := range d.AddEdges {
		src, err := st.resolveNode(ae.Src)
		if err != nil {
			return fmt.Errorf("pg: Apply: AddEdges[%d]: source: %v", i, err)
		}
		dst, err := st.resolveNode(ae.Dst)
		if err != nil {
			return fmt.Errorf("pg: Apply: AddEdges[%d]: target: %v", i, err)
		}
		id, err := g.addEdgeSym(src, dst, g.syms.intern(ae.Label))
		if err != nil {
			return fmt.Errorf("pg: Apply: AddEdges[%d]: %v", i, err)
		}
		u.steps = append(u.steps, undoStep{kind: undoAddEdge, edge: id})
		u.newEdges = append(u.newEdges, id)
		st.tEdges[id] = struct{}{}
		st.edgesAdded = true
		for _, p := range ae.Props {
			if err := g.applySetEdgeProp(id, p.Name, p.Value, st); err != nil {
				return fmt.Errorf("pg: Apply: AddEdges[%d]: %v", i, err)
			}
		}
	}
	for i, rl := range d.RelabelNodes {
		id, err := st.resolveNode(rl.Node)
		if err != nil {
			return fmt.Errorf("pg: Apply: RelabelNodes[%d]: %v", i, err)
		}
		n := &g.nodes[id]
		ls := g.syms.intern(rl.Label)
		if n.label == ls {
			continue
		}
		prev := n.label
		pos := indexOfID(g.byLabel[prev], id)
		u.steps = append(u.steps, undoStep{kind: undoRelabel, node: id, sym: prev, pos: pos})
		st.tNodes[id] = struct{}{}
		st.tLabels[g.syms.names[prev]] = struct{}{}
		st.tLabels[rl.Label] = struct{}{}
		st.nodesRelabeled = true
		g.byLabel[prev] = removeID(g.byLabel[prev], id)
		n.label = ls
		b := g.labelBucket(ls)
		*b = append(*b, id)
		g.epoch++
	}
	for i, sp := range d.SetNodeProps {
		id, err := st.resolveNode(sp.Node)
		if err != nil {
			return fmt.Errorf("pg: Apply: SetNodeProps[%d]: %v", i, err)
		}
		if err := g.applySetNodeProp(id, sp.Name, sp.Value, st); err != nil {
			return fmt.Errorf("pg: Apply: SetNodeProps[%d]: %v", i, err)
		}
	}
	for i, dp := range d.DelNodeProps {
		id, err := st.resolveNode(dp.Node)
		if err != nil {
			return fmt.Errorf("pg: Apply: DelNodeProps[%d]: %v", i, err)
		}
		prev, had := getProp(g.nodes[id].props, dp.Name)
		if had {
			u.steps = append(u.steps, undoStep{kind: undoNodeProp, node: id, name: dp.Name, val: prev, had: true})
			g.nodes[id].props = delProp(g.nodes[id].props, dp.Name)
			g.epoch++
			st.markNodePropChange(id)
		}
	}
	for i, sp := range d.SetEdgeProps {
		id, err := st.resolveEdge(sp.Edge)
		if err != nil {
			return fmt.Errorf("pg: Apply: SetEdgeProps[%d]: %v", i, err)
		}
		if err := g.applySetEdgeProp(id, sp.Name, sp.Value, st); err != nil {
			return fmt.Errorf("pg: Apply: SetEdgeProps[%d]: %v", i, err)
		}
	}
	for i, dp := range d.DelEdgeProps {
		id, err := st.resolveEdge(dp.Edge)
		if err != nil {
			return fmt.Errorf("pg: Apply: DelEdgeProps[%d]: %v", i, err)
		}
		prev, had := getProp(g.edges[id].props, dp.Name)
		if had {
			u.steps = append(u.steps, undoStep{kind: undoEdgeProp, edge: id, name: dp.Name, val: prev, had: true})
			g.edges[id].props = delProp(g.edges[id].props, dp.Name)
			g.epoch++
			st.markEdgePropChange(id)
		}
	}
	for i, re := range d.RemoveEdges {
		id, err := st.resolveEdge(re)
		if err != nil {
			return fmt.Errorf("pg: Apply: RemoveEdges[%d]: %v", i, err)
		}
		g.applyRemoveEdge(id, st)
	}
	for i, rn := range d.RemoveNodes {
		id, err := st.resolveNode(rn)
		if err != nil {
			return fmt.Errorf("pg: Apply: RemoveNodes[%d]: %v", i, err)
		}
		for _, eid := range g.nodes[id].out {
			if g.validEdge(eid) {
				g.applyRemoveEdge(eid, st)
			}
		}
		for _, eid := range g.nodes[id].in {
			if g.validEdge(eid) {
				g.applyRemoveEdge(eid, st)
			}
		}
		n := &g.nodes[id]
		pos := indexOfID(g.byLabel[n.label], id)
		u.steps = append(u.steps, undoStep{kind: undoRemoveNode, node: id, sym: n.label, pos: pos})
		st.tNodes[id] = struct{}{}
		st.tLabels[g.syms.names[n.label]] = struct{}{}
		st.nodesRemoved = true
		if len(n.props) > 0 {
			st.nodePropOps = true
		}
		g.byLabel[n.label] = removeID(g.byLabel[n.label], id)
		n.removed = true
		g.removedNodes++
		g.epoch++
	}
	return nil
}

func (g *Graph) applySetNodeProp(id NodeID, name string, v values.Value, st *applyState) error {
	if name == "" {
		return fmt.Errorf("empty property name")
	}
	prev, had := getProp(g.nodes[id].props, name)
	st.u.steps = append(st.u.steps, undoStep{kind: undoNodeProp, node: id, name: name, val: prev, had: had})
	n := &g.nodes[id]
	n.props = setProp(n.props, Prop{Sym: g.syms.intern(name), Name: name, Value: v})
	g.epoch++
	st.markNodePropChange(id)
	return nil
}

func (g *Graph) applySetEdgeProp(id EdgeID, name string, v values.Value, st *applyState) error {
	if name == "" {
		return fmt.Errorf("empty property name")
	}
	prev, had := getProp(g.edges[id].props, name)
	st.u.steps = append(st.u.steps, undoStep{kind: undoEdgeProp, edge: id, name: name, val: prev, had: had})
	e := &g.edges[id]
	e.props = setProp(e.props, Prop{Sym: g.syms.intern(name), Name: name, Value: v})
	g.epoch++
	st.markEdgePropChange(id)
	return nil
}

func (g *Graph) applyRemoveEdge(id EdgeID, st *applyState) {
	st.u.steps = append(st.u.steps, undoStep{kind: undoRemoveEdge, edge: id})
	st.tEdges[id] = struct{}{}
	st.edgesRemoved = true
	if len(g.edges[id].props) > 0 {
		st.edgePropOps = true
	}
	g.edges[id].removed = true
	g.removedEdges++
	g.epoch++
}

func (st *applyState) markNodePropChange(id NodeID) {
	st.tNodes[id] = struct{}{}
	st.nodePropOps = true
}

func (st *applyState) markEdgePropChange(id EdgeID) {
	st.tEdges[id] = struct{}{}
	st.edgePropOps = true
}

// resolveNode maps a NodeID or NewNodeRef to a live node of the
// graph mid-apply.
func (st *applyState) resolveNode(id NodeID) (NodeID, error) {
	if id < 0 {
		i := int(-id) - 1
		if i >= len(st.u.newNodes) {
			return 0, fmt.Errorf("new-node reference %d out of range (delta adds %d nodes)", id, len(st.u.newNodes))
		}
		return st.u.newNodes[i], nil
	}
	if !st.u.g.validNode(id) {
		return 0, fmt.Errorf("node %d is not a live node", id)
	}
	return id, nil
}

// resolveEdge maps an EdgeID or NewEdgeRef to a live edge.
func (st *applyState) resolveEdge(id EdgeID) (EdgeID, error) {
	if id < 0 {
		i := int(-id) - 1
		if i >= len(st.u.newEdges) {
			return 0, fmt.Errorf("new-edge reference %d out of range (delta adds %d edges)", id, len(st.u.newEdges))
		}
		return st.u.newEdges[i], nil
	}
	if !st.u.g.validEdge(id) {
		return 0, fmt.Errorf("edge %d is not a live edge", id)
	}
	return id, nil
}

func (st *applyState) finishTouched() Touched {
	t := Touched{}
	if len(st.tNodes) > 0 {
		t.Nodes = make([]NodeID, 0, len(st.tNodes))
		for id := range st.tNodes {
			t.Nodes = append(t.Nodes, id)
		}
		sortNodeIDs(t.Nodes)
	}
	if len(st.tEdges) > 0 {
		t.Edges = make([]EdgeID, 0, len(st.tEdges))
		for id := range st.tEdges {
			t.Edges = append(t.Edges, id)
		}
		sortEdgeIDs(t.Edges)
	}
	if len(st.tLabels) > 0 {
		t.Labels = make([]string, 0, len(st.tLabels))
		for l := range st.tLabels {
			t.Labels = append(t.Labels, l)
		}
		sortStrings(t.Labels)
	}
	return t
}

// patchPlan derives the snapshot patch inputs: per-column change flags
// plus the sorted dirty element lists. Dirty nodes include the
// endpoints of every dirty edge, because those nodes' adjacency rows
// changed even if the nodes themselves did not.
func (st *applyState) patchPlan() patchPlan {
	g := st.u.g
	nodeSet := make(map[NodeID]struct{}, len(st.tNodes)+2*len(st.tEdges))
	for id := range st.tNodes {
		nodeSet[id] = struct{}{}
	}
	for id := range st.tEdges {
		e := &g.edges[id]
		nodeSet[e.src] = struct{}{}
		nodeSet[e.dst] = struct{}{}
	}
	p := patchPlan{
		nodeDirty:            make([]NodeID, 0, len(nodeSet)),
		edgeDirty:            make([]EdgeID, 0, len(st.tEdges)),
		nodeLabelsChanged:    st.nodesAdded || st.nodesRelabeled || st.nodesRemoved,
		nodeAdjChanged:       st.nodesAdded || st.edgesAdded || st.edgesRemoved,
		nodePropsChanged:     st.nodesAdded || st.nodePropOps,
		edgeLabelsChanged:    st.edgesAdded || st.edgesRemoved,
		edgeEndpointsChanged: st.edgesAdded,
		edgePropsChanged:     st.edgesAdded || st.edgePropOps,
	}
	for id := range nodeSet {
		p.nodeDirty = append(p.nodeDirty, id)
	}
	sortNodeIDs(p.nodeDirty)
	for id := range st.tEdges {
		p.edgeDirty = append(p.edgeDirty, id)
	}
	sortEdgeIDs(p.edgeDirty)
	return p
}
