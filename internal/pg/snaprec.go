package pg

import (
	"fmt"
	"math"
	"unsafe"

	"pgschema/internal/values"
)

// Pointer-free property records.
//
// A heap snapshot stores property rows as []Prop, whose values.Value
// payloads contain Go pointers (strings, list backing arrays) — fine in
// memory, impossible to alias from a read-only file mapping. A mapped
// snapshot therefore stores each property as a fixed 16-byte propRec:
// scalar payloads inline in the word, textual payloads as (offset, len)
// into a byte arena, and list payloads as an index into a small table
// of eagerly decoded values. Both representations answer the same
// Snapshot accessors; engines never see the difference.

// propRec is one property in record form. The layout is the on-disk
// format: it must stay exactly 16 bytes with the payload word 8-aligned,
// so whole record columns can be written and mapped as raw bytes.
type propRec struct {
	sym   int32  // graph-interned property name
	kind  uint8  // values.Kind of the payload
	arena uint8  // textual payload arena: 0 = propArena, 1 = propOver
	_     uint16 // padding, zero on disk
	a     uint64 // payload word (see recValue)
}

const propRecSize = 16

func init() {
	if unsafe.Sizeof(propRec{}) != propRecSize {
		panic("pg: propRec layout must be exactly 16 bytes")
	}
}

// recValue decodes a record's payload word back into a values.Value.
// Textual kinds return a zero-copy view into the record's arena; lists
// return the eagerly decoded value shared by the snapshot. An unknown
// kind (possible only in a corrupt trusted file) decodes as Null rather
// than panicking.
func (s *Snapshot) recValue(r *propRec) values.Value {
	switch values.Kind(r.kind) {
	case values.KindInt:
		return values.Int(int64(r.a))
	case values.KindFloat:
		return values.Float(math.Float64frombits(r.a))
	case values.KindBoolean:
		return values.Boolean(r.a != 0)
	case values.KindString:
		return values.String(s.recString(r))
	case values.KindID:
		return values.ID(s.recString(r))
	case values.KindEnum:
		return values.Enum(s.recString(r))
	case values.KindList:
		if i := int(r.a); i < len(s.propLists) {
			return s.propLists[i]
		}
		return values.Null
	default:
		return values.Null
	}
}

// recString materializes a textual payload as a string header over the
// arena bytes — no copy, no allocation. The arena is immutable (a
// read-only mapping, or an append-only private overflow whose existing
// bytes never move), so the string is as good as any other.
func (s *Snapshot) recString(r *propRec) string {
	arena := s.propArena
	if r.arena != 0 {
		arena = s.propOver
	}
	off, n := int(r.a>>32), int(uint32(r.a))
	if n == 0 || off < 0 || off+n > len(arena) {
		return ""
	}
	return unsafe.String(&arena[off], n)
}

// recProp decodes record i of recs into a full Prop, reconstructing the
// Name from the snapshot's symbol names.
func (s *Snapshot) recProp(recs []propRec, i int) Prop {
	r := &recs[i]
	return Prop{Sym: Sym(r.sym), Name: s.symNames[r.sym], Value: s.recValue(r)}
}

// recEncoder flattens Props into records: scalars inline, strings
// appended to an arena, lists appended to a table of decoded values.
// The writer encodes into arena 0; the snapshot patcher encodes into
// the private overflow arena (1) so mapped bytes stay untouched.
type recEncoder struct {
	arenaID uint8
	recs    []propRec
	arena   []byte
	lists   []values.Value
}

func (enc *recEncoder) add(p *Prop) error {
	r := propRec{sym: int32(p.Sym), kind: uint8(p.Value.Kind())}
	switch p.Value.Kind() {
	case values.KindNull:
	case values.KindInt:
		r.a = uint64(p.Value.AsInt())
	case values.KindFloat:
		r.a = math.Float64bits(p.Value.AsFloat())
	case values.KindBoolean:
		if p.Value.AsBool() {
			r.a = 1
		}
	case values.KindString, values.KindID, values.KindEnum:
		str := p.Value.AsString()
		off := len(enc.arena)
		if off+len(str) > math.MaxUint32 {
			return fmt.Errorf("pg: property string arena exceeds 4 GiB")
		}
		r.arena = enc.arenaID
		r.a = uint64(off)<<32 | uint64(uint32(len(str)))
		enc.arena = append(enc.arena, str...)
	case values.KindList:
		r.a = uint64(len(enc.lists))
		enc.lists = append(enc.lists, p.Value)
	default:
		return fmt.Errorf("pg: cannot encode property value of kind %v", p.Value.Kind())
	}
	enc.recs = append(enc.recs, r)
	return nil
}

func (enc *recEncoder) addAll(props []Prop) error {
	for i := range props {
		if err := enc.add(&props[i]); err != nil {
			return err
		}
	}
	return nil
}
