package pg

import (
	"strings"
	"testing"
)

// TestLoaderDiagnostics pins the exact diagnostic for every malformed
// input class, across the pipelined, inline-fallback, and streaming
// loader paths: each yields the identical message, carrying the file
// role (node/edge CSV) and the physical line of the offending record.
func TestLoaderDiagnostics(t *testing.T) {
	const (
		okNodes = "id,label,name\nu0,User,\"ann\"\nu1,User,\"bob\"\n"
		okEdges = "source,target,label,weight\nu0,u1,knows,0.5\n"
	)
	cases := []struct {
		name         string
		nodes, edges string
		want         string // exact error; "" means the load must succeed
		contains     string // substring check for csv-package wrapped errors
	}{
		{
			name:  "empty nodes file",
			nodes: "", edges: okEdges,
			want: "pg: node CSV is empty: want an id,label,... header",
		},
		{
			name:  "empty edges file",
			nodes: okNodes, edges: "",
			want: "pg: edge CSV is empty: want a source,target,label,... header",
		},
		{
			name:  "bad node header",
			nodes: "ident,label\n", edges: okEdges,
			want: "pg: node CSV header must start with id,label",
		},
		{
			name:  "bad edge header",
			nodes: okNodes, edges: "src,dst,label\n",
			want: "pg: edge CSV header must start with source,target,label",
		},
		{
			name:  "header-only files load empty",
			nodes: "id,label\n", edges: "source,target,label\n",
			want: "",
		},
		{
			name:  "short node record",
			nodes: "id,label\nu0,User\nonlyid\n", edges: "source,target,label\n",
			want: "pg: node CSV line 3: record has 1 fields, need at least id,label",
		},
		{
			name:  "short edge record",
			nodes: okNodes, edges: "source,target,label\nu0,u1\n",
			want: "pg: edge CSV line 2: record has 2 fields, need at least source,target,label",
		},
		{
			name:  "node record wider than header",
			nodes: "id,label,name\nu0,User,\"ann\",extra\n", edges: okEdges,
			want: "pg: node CSV line 2: record has 4 fields, but the header has only 3 columns",
		},
		{
			name:  "edge record wider than header",
			nodes: okNodes, edges: "source,target,label\nu0,u1,knows,0.5\n",
			want: "pg: edge CSV line 2: record has 4 fields, but the header has only 3 columns",
		},
		{
			name:  "duplicate node id",
			nodes: okNodes + "u0,User,\"again\"\n", edges: okEdges,
			want: "pg: node CSV line 4: duplicate node id \"u0\"",
		},
		{
			name: "duplicate after multi-line quoted field",
			nodes: "id,label,name\n" +
				"u0,User,\"line\nbreak\"\n" + // record spans physical lines 2-3
				"u0,User,\"again\"\n",
			edges: "source,target,label\n",
			want:  "pg: node CSV line 4: duplicate node id \"u0\"",
		},
		{
			name:  "unknown edge source",
			nodes: okNodes, edges: "source,target,label\nu0,u1,knows\nghost,u1,knows\n",
			want: "pg: edge CSV line 3: unknown source \"ghost\"",
		},
		{
			name:  "unknown edge target",
			nodes: okNodes, edges: "source,target,label\nu0,ghost,knows\n",
			want: "pg: edge CSV line 2: unknown target \"ghost\"",
		},
		{
			name:  "unknown endpoint after multi-line quoted field",
			nodes: okNodes,
			edges: "source,target,label,note\n" +
				"u0,u1,knows,\"line\nbreak\"\n" + // record spans physical lines 2-3
				"u0,ghost,knows,\n",
			want: "pg: edge CSV line 4: unknown target \"ghost\"",
		},
		{
			name:     "malformed quoting in nodes",
			nodes:    "id,label,name\nu0,User,\"ann\"\nu1,User,\"unterminated\n",
			edges:    okEdges,
			contains: "pg: node CSV line 3:",
		},
		{
			name:     "bare quote in edges",
			nodes:    okNodes,
			edges:    "source,target,label\nu0,u1,kn\"ows\n",
			contains: "pg: edge CSV line 2:",
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var msgs []string
			eachLoaderPath(t, func(t *testing.T, load func(nodes, edges string) (*Graph, error)) {
				_, err := load(tc.nodes, tc.edges)
				switch {
				case tc.want == "" && tc.contains == "":
					if err != nil {
						t.Fatalf("err = %v, want success", err)
					}
					return
				case err == nil:
					t.Fatalf("err = nil, want %q", tc.want+tc.contains)
				case tc.want != "" && err.Error() != tc.want:
					t.Fatalf("err = %q, want %q", err, tc.want)
				case tc.contains != "" && !strings.Contains(err.Error(), tc.contains):
					t.Fatalf("err = %q, want substring %q", err, tc.contains)
				}
				msgs = append(msgs, err.Error())
			})
			// Every loader path must produce the identical message.
			for i := 1; i < len(msgs); i++ {
				if msgs[i] != msgs[0] {
					t.Fatalf("diagnostic differs across paths:\n%q\nvs\n%q", msgs[0], msgs[i])
				}
			}
		})
	}
}
