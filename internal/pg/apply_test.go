package pg

import (
	"math/rand"
	"reflect"
	"testing"

	"pgschema/internal/values"
)

// snapEqual compares two snapshots semantically: same element bounds,
// labels, endpoints, adjacency rows, property rows, and property
// presence bits. Syms interned after the older snapshot was built are
// treated as absent there.
func snapEqual(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.NodeBound() != want.NodeBound() {
		t.Fatalf("node bound: got %d want %d", got.NodeBound(), want.NodeBound())
	}
	if got.EdgeBound() != want.EdgeBound() {
		t.Fatalf("edge bound: got %d want %d", got.EdgeBound(), want.EdgeBound())
	}
	hasProp := func(s *Snapshot, v NodeID, p Sym) bool {
		if int(p) >= len(s.nodePropSet) {
			return false
		}
		return s.NodeHasProp(v, p)
	}
	syms := len(got.nodePropSet)
	if len(want.nodePropSet) > syms {
		syms = len(want.nodePropSet)
	}
	for vi := 0; vi < want.NodeBound(); vi++ {
		v := NodeID(vi)
		if got.NodeLabelSym(v) != want.NodeLabelSym(v) {
			t.Fatalf("node %d label: got %d want %d", v, got.NodeLabelSym(v), want.NodeLabelSym(v))
		}
		if go_, w := got.OutEdgesOf(v), want.OutEdgesOf(v); !edgeListEqual(go_, w) {
			t.Fatalf("node %d out edges: got %v want %v", v, go_, w)
		}
		if gi, w := got.InEdgesOf(v), want.InEdgesOf(v); !edgeListEqual(gi, w) {
			t.Fatalf("node %d in edges: got %v want %v", v, gi, w)
		}
		if gp, w := got.NodePropsOf(v), want.NodePropsOf(v); !propListEqual(gp, w) {
			t.Fatalf("node %d props: got %v want %v", v, gp, w)
		}
		for s := 0; s < syms; s++ {
			if hasProp(got, v, Sym(s)) != hasProp(want, v, Sym(s)) {
				t.Fatalf("node %d prop bit for sym %d: got %v want %v",
					v, s, hasProp(got, v, Sym(s)), hasProp(want, v, Sym(s)))
			}
		}
	}
	for ei := 0; ei < want.EdgeBound(); ei++ {
		e := EdgeID(ei)
		if got.EdgeLabelSym(e) != want.EdgeLabelSym(e) {
			t.Fatalf("edge %d label: got %d want %d", e, got.EdgeLabelSym(e), want.EdgeLabelSym(e))
		}
		gs, gd := got.Endpoints(e)
		ws, wd := want.Endpoints(e)
		if gs != ws || gd != wd {
			t.Fatalf("edge %d endpoints: got (%d,%d) want (%d,%d)", e, gs, gd, ws, wd)
		}
		if gp, w := got.EdgePropsOf(e), want.EdgePropsOf(e); !propListEqual(gp, w) {
			t.Fatalf("edge %d props: got %v want %v", e, gp, w)
		}
	}
}

func edgeListEqual(a, b []EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func propListEqual(a, b []Prop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || !reflect.DeepEqual(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

func applyGraph() *Graph {
	g := New()
	a := g.AddNode("Author") // 0
	b := g.AddNode("Book")   // 1
	p := g.AddNode("Publisher")
	g.SetNodeProp(a, "name", values.String("ann"))
	g.SetNodeProp(b, "title", values.String("t1"))
	g.MustAddEdge(a, b, "favoriteBook")
	g.MustAddEdge(p, b, "published")
	return g
}

func TestApplyBasic(t *testing.T) {
	g := applyGraph()
	epoch0 := g.Epoch()
	u, err := g.Apply(Delta{
		AddNodes: []AddNodeSpec{
			{Label: "Author", Props: []PropEntry{{Name: "name", Value: values.String("bob")}}},
			{Label: "Book"},
		},
		AddEdges: []AddEdgeSpec{
			{Src: NewNodeRef(0), Dst: NewNodeRef(1), Label: "favoriteBook"},
			{Src: NewNodeRef(0), Dst: 1, Label: "favoriteBook"},
		},
		SetNodeProps: []NodePropSpec{{Node: NewNodeRef(1), Name: "title", Value: values.String("t2")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Epoch() <= epoch0 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch0, g.Epoch())
	}
	if len(u.NewNodes()) != 2 || len(u.NewEdges()) != 2 {
		t.Fatalf("new IDs: nodes %v edges %v", u.NewNodes(), u.NewEdges())
	}
	bob := u.NewNodes()[0]
	if g.NodeLabel(bob) != "Author" {
		t.Fatalf("bob label: %q", g.NodeLabel(bob))
	}
	if v, ok := g.NodeProp(u.NewNodes()[1], "title"); !ok || v.AsString() != "t2" {
		t.Fatalf("ref-addressed property missing: %v %v", v, ok)
	}
	if len(g.OutEdges(bob)) != 2 {
		t.Fatalf("bob out-edges: %v", g.OutEdges(bob))
	}
	tc := u.Touched()
	if len(tc.Nodes) != 2 { // bob + new book; existing book 1 is NOT touched (only edge-adjacent)
		t.Fatalf("touched nodes: %v", tc.Nodes)
	}
	if len(tc.Edges) != 2 {
		t.Fatalf("touched edges: %v", tc.Edges)
	}
}

func TestApplyRemoveNodeWithSelfLoop(t *testing.T) {
	g := applyGraph()
	n := g.AddNode("Author")
	g.MustAddEdge(n, n, "relatedAuthor")
	before := g.buildSnapshot()
	u, err := g.Apply(Delta{RemoveNodes: []NodeID{n}})
	if err != nil {
		t.Fatal(err)
	}
	if g.HasNode(n) {
		t.Fatal("node still live")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("self-loop not removed exactly once: %d edges", g.NumEdges())
	}
	if err := u.Undo(); err != nil {
		t.Fatal(err)
	}
	snapEqual(t, g.buildSnapshot(), before)
}

func TestApplyAtomicRollback(t *testing.T) {
	g := applyGraph()
	epoch0 := g.Epoch()
	before := g.buildSnapshot()
	nodes0, edges0 := g.NumNodes(), g.NumEdges()
	_, err := g.Apply(Delta{
		AddNodes:     []AddNodeSpec{{Label: "Author"}},
		AddEdges:     []AddEdgeSpec{{Src: NewNodeRef(0), Dst: 1, Label: "x"}},
		RelabelNodes: []RelabelSpec{{Node: 0, Label: "Ghost"}},
		SetNodeProps: []NodePropSpec{{Node: 0, Name: "name", Value: values.Int(7)}},
		RemoveEdges:  []EdgeID{0},
		RemoveNodes:  []NodeID{999}, // fails last, after every group mutated
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if g.Epoch() != epoch0 {
		t.Fatalf("epoch changed after failed apply: %d -> %d", epoch0, g.Epoch())
	}
	if g.NumNodes() != nodes0 || g.NumEdges() != edges0 {
		t.Fatalf("element counts changed: %d/%d -> %d/%d", nodes0, edges0, g.NumNodes(), g.NumEdges())
	}
	snapEqual(t, g.buildSnapshot(), before)
	if g.NodeLabel(0) != "Author" {
		t.Fatalf("relabel not rolled back: %q", g.NodeLabel(0))
	}
	if v, ok := g.NodeProp(0, "name"); !ok || v.AsString() != "ann" {
		t.Fatalf("property not rolled back: %v %v", v, ok)
	}
}

func TestApplyErrors(t *testing.T) {
	g := applyGraph()
	cases := []Delta{
		{AddEdges: []AddEdgeSpec{{Src: 0, Dst: 99, Label: "x"}}},
		{AddEdges: []AddEdgeSpec{{Src: NewNodeRef(3), Dst: 0, Label: "x"}}},
		{RelabelNodes: []RelabelSpec{{Node: 77, Label: "x"}}},
		{SetNodeProps: []NodePropSpec{{Node: 0, Name: "", Value: values.Int(1)}}},
		{SetEdgeProps: []EdgePropSpec{{Edge: 50, Name: "n", Value: values.Int(1)}}},
		{RemoveEdges: []EdgeID{44}},
		{RemoveNodes: []NodeID{NewNodeRef(0)}},
	}
	for i, d := range cases {
		epoch0 := g.Epoch()
		if _, err := g.Apply(d); err == nil {
			t.Errorf("case %d: expected error", i)
		}
		if g.Epoch() != epoch0 {
			t.Errorf("case %d: epoch moved on failed apply", i)
		}
	}
}

func TestUndoStaleAndDouble(t *testing.T) {
	g := applyGraph()
	u, err := g.Apply(Delta{SetNodeProps: []NodePropSpec{{Node: 0, Name: "name", Value: values.String("x")}}})
	if err != nil {
		t.Fatal(err)
	}
	g.SetNodeProp(1, "title", values.String("mutated-after"))
	if err := u.Undo(); err == nil {
		t.Fatal("Undo after later mutation should fail")
	}
	g2 := applyGraph()
	u2, err := g2.Apply(Delta{SetNodeProps: []NodePropSpec{{Node: 0, Name: "name", Value: values.String("x")}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := u2.Undo(); err != nil {
		t.Fatal(err)
	}
	if err := u2.Undo(); err == nil {
		t.Fatal("double Undo should fail")
	}
}

func TestUndoNeverRewindsEpoch(t *testing.T) {
	g := applyGraph()
	u, err := g.Apply(Delta{AddNodes: []AddNodeSpec{{Label: "Author"}}})
	if err != nil {
		t.Fatal(err)
	}
	applied := g.Epoch()
	if err := u.Undo(); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() <= applied {
		t.Fatalf("undo rewound the epoch: %d -> %d", applied, g.Epoch())
	}
	// The reinstalled pre-apply snapshot must carry the new epoch and
	// describe the restored content.
	if s := g.Snapshot(); s.Epoch() != g.Epoch() {
		t.Fatalf("snapshot epoch %d, graph epoch %d", s.Epoch(), g.Epoch())
	}
	snapEqual(t, g.Snapshot(), g.buildSnapshot())
}

// randomDelta builds a random mutation batch referencing live elements
// plus fresh additions.
func randomDelta(g *Graph, rnd *rand.Rand) Delta {
	var d Delta
	nodes := g.Nodes()
	edges := g.Edges()
	labels := []string{"Author", "Book", "Publisher", "Ghost"}
	eLabels := []string{"favoriteBook", "published", "relatedAuthor", "bogus"}
	pick := func(ids []NodeID) NodeID { return ids[rnd.Intn(len(ids))] }
	nAdds := rnd.Intn(3)
	for i := 0; i < nAdds; i++ {
		sp := AddNodeSpec{Label: labels[rnd.Intn(len(labels))]}
		if rnd.Intn(2) == 0 {
			sp.Props = []PropEntry{{Name: "name", Value: values.Int(int64(rnd.Intn(10)))}}
		}
		d.AddNodes = append(d.AddNodes, sp)
	}
	ops := 1 + rnd.Intn(4)
	for i := 0; i < ops; i++ {
		endpoint := func() NodeID {
			if nAdds > 0 && rnd.Intn(3) == 0 {
				return NewNodeRef(rnd.Intn(nAdds))
			}
			return pick(nodes)
		}
		switch rnd.Intn(7) {
		case 0:
			d.AddEdges = append(d.AddEdges, AddEdgeSpec{
				Src: endpoint(), Dst: endpoint(), Label: eLabels[rnd.Intn(len(eLabels))],
				Props: []PropEntry{{Name: "since", Value: values.Int(int64(rnd.Intn(5)))}},
			})
		case 1:
			d.RelabelNodes = append(d.RelabelNodes, RelabelSpec{Node: endpoint(), Label: labels[rnd.Intn(len(labels))]})
		case 2:
			d.SetNodeProps = append(d.SetNodeProps, NodePropSpec{Node: endpoint(), Name: "name", Value: values.String("r")})
		case 3:
			d.DelNodeProps = append(d.DelNodeProps, NodePropDelSpec{Node: endpoint(), Name: "name"})
		case 4:
			if len(edges) > 0 {
				e := edges[rnd.Intn(len(edges))]
				d.SetEdgeProps = append(d.SetEdgeProps, EdgePropSpec{Edge: e, Name: "since", Value: values.Int(9)})
			}
		case 5:
			if len(edges) > 0 {
				e := edges[rnd.Intn(len(edges))]
				already := false
				for _, x := range d.RemoveEdges {
					if x == e {
						already = true
					}
				}
				if !already {
					d.RemoveEdges = append(d.RemoveEdges, e)
				}
			}
		case 6:
			if rnd.Intn(2) == 0 { // keep removals rarer
				n := pick(nodes)
				already := false
				for _, x := range d.RemoveNodes {
					if x == n {
						already = true
					}
				}
				// A node removal also removes incident edges; avoid
				// double-removing an edge listed in RemoveEdges.
				for _, x := range d.RemoveEdges {
					s, dst := g.Endpoints(x)
					if s == n || dst == n {
						already = true
					}
				}
				if !already {
					d.RemoveNodes = append(d.RemoveNodes, n)
				}
			}
		}
	}
	return d
}

// TestApplyUndoRandomized drives random deltas through Apply, checks
// the patched snapshot against a from-scratch build, undoes, and checks
// the graph is restored — the core transactional property.
func TestApplyUndoRandomized(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		g := applyGraph()
		for i := 0; i < 10; i++ {
			extra := g.AddNode("Author")
			g.MustAddEdge(extra, NodeID(1), "favoriteBook")
		}
		for step := 0; step < 8; step++ {
			g.Snapshot() // ensure a pre-apply snapshot is cached
			before := g.buildSnapshot()
			epoch0 := g.Epoch()
			d := randomDelta(g, rnd)
			u, err := g.Apply(d)
			if err != nil {
				t.Fatalf("seed %d step %d: %v (delta %+v)", seed, step, err, d)
			}
			// Whatever Apply left in the cache (patched or stale) must
			// not disagree with a full rebuild once consulted.
			snapEqual(t, g.Snapshot(), g.buildSnapshot())
			if u.Epoch() != g.Epoch() {
				t.Fatalf("seed %d step %d: undo epoch %d vs graph %d", seed, step, u.Epoch(), g.Epoch())
			}
			if step%2 == 0 {
				if err := u.Undo(); err != nil {
					t.Fatalf("seed %d step %d: undo: %v", seed, step, err)
				}
				snapEqual(t, g.buildSnapshot(), before)
				if g.Epoch() <= epoch0 {
					t.Fatalf("seed %d step %d: epoch rewound", seed, step)
				}
			}
		}
	}
}

// TestApplyPatchedSnapshotUsed asserts the snapshot patch actually
// installs for a small delta on a cached snapshot (the perf path the
// incremental engine relies on), rather than silently falling back to
// full rebuilds everywhere.
func TestApplyPatchedSnapshotUsed(t *testing.T) {
	g := applyGraph()
	for i := 0; i < 200; i++ {
		n := g.AddNode("Author")
		g.MustAddEdge(n, NodeID(1), "favoriteBook")
	}
	g.Snapshot()
	u, err := g.Apply(Delta{SetNodeProps: []NodePropSpec{{Node: 0, Name: "name", Value: values.String("patched")}}})
	if err != nil {
		t.Fatal(err)
	}
	s := g.snap.Load()
	if s == nil || s.Epoch() != g.Epoch() {
		t.Fatalf("patched snapshot not installed (cached epoch %v, graph %d)", s, g.Epoch())
	}
	snapEqual(t, s, g.buildSnapshot())
	_ = u
}
