package pg

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pgschema/internal/values"
)

// richGraph builds a graph exercising every serializable value kind —
// ints, floats, booleans, strings (including empty and non-ASCII), IDs,
// enums, nulls, lists, and nested lists — plus tombstoned elements, so
// a .pgsnap round trip covers the whole encoding surface.
func richGraph(t testing.TB) *Graph {
	t.Helper()
	g := New()
	a := g.AddNode("Person")
	b := g.AddNode("Person")
	c := g.AddNode("City")
	dead := g.AddNode("Ghost")
	g.SetNodeProp(a, "name", values.String("Åse 💚"))
	g.SetNodeProp(a, "age", values.Int(-7))
	g.SetNodeProp(a, "height", values.Float(1.75))
	g.SetNodeProp(a, "alive", values.Boolean(true))
	g.SetNodeProp(a, "id", values.ID("p-1"))
	g.SetNodeProp(a, "mood", values.Enum("HAPPY"))
	g.SetNodeProp(a, "nick", values.String(""))
	g.SetNodeProp(a, "gap", values.Null)
	g.SetNodeProp(b, "tags", values.List(values.String("x"), values.Int(3), values.Null))
	g.SetNodeProp(b, "matrix", values.List(
		values.List(values.Int(1), values.Int(2)),
		values.List(),
		values.List(values.String("deep"), values.List(values.Boolean(false))),
	))
	g.SetNodeProp(c, "name", values.String("Oslo"))
	e1 := g.MustAddEdge(a, b, "knows")
	g.MustAddEdge(a, c, "livesIn")
	eDead := g.MustAddEdge(b, c, "livesIn")
	g.SetEdgeProp(e1, "since", values.Int(2001))
	g.SetEdgeProp(e1, "weights", values.List(values.Float(0.5), values.Float(2)))
	g.RemoveEdge(eDead)
	g.RemoveNode(dead)
	return g
}

// snapBytes serializes the graph's snapshot in memory.
func snapBytes(t testing.TB, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g.Snapshot()); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// writeSnapFile serializes the graph's snapshot to a temp .pgsnap file.
func writeSnapFile(t testing.TB, g *Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.pgsnap")
	if err := os.WriteFile(path, snapBytes(t, g), 0o644); err != nil {
		t.Fatalf("writing snapshot file: %v", err)
	}
	return path
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	for _, verify := range []bool{false, true} {
		name := "trusted"
		var opts []OpenOption
		if verify {
			name, opts = "verified", []OpenOption{Verify()}
		}
		t.Run(name, func(t *testing.T) {
			g := richGraph(t)
			want := g.Snapshot()
			mg, err := OpenSnapshot(writeSnapFile(t, g), opts...)
			if err != nil {
				t.Fatalf("OpenSnapshot: %v", err)
			}
			defer mg.Close()
			got := mg.Snapshot()
			if !got.Mapped() {
				t.Fatalf("opened snapshot is not record-backed")
			}
			snapEqual(t, got, want)
			if got.Epoch() != want.Epoch() {
				t.Fatalf("epoch: got %d, want %d", got.Epoch(), want.Epoch())
			}
			if mg.NumNodes() != g.NumNodes() || mg.NumEdges() != g.NumEdges() {
				t.Fatalf("live counts: got (%d,%d), want (%d,%d)",
					mg.NumNodes(), mg.NumEdges(), g.NumNodes(), g.NumEdges())
			}
		})
	}
}

// TestSnapshotFileRoundTripSecondGeneration writes a mapped (record-
// backed) snapshot back out — including one that grew a private
// overflow arena through Apply — and checks the copy still matches.
func TestSnapshotFileRoundTripSecondGeneration(t *testing.T) {
	g := richGraph(t)
	mg, err := OpenSnapshot(writeSnapFile(t, g))
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	defer mg.Close()

	// Generation 2: serialize the mapped snapshot itself.
	mg2, err := OpenSnapshot(writeSnapFile(t, mg))
	if err != nil {
		t.Fatalf("OpenSnapshot(gen2): %v", err)
	}
	defer mg2.Close()
	snapEqual(t, mg2.Snapshot(), g.Snapshot())

	// Mutate the mapped graph so its patched snapshot carries overflow-
	// arena strings, then round-trip that (exercises the arena merge).
	delta := Delta{
		AddNodes: []AddNodeSpec{{Label: "Person", Props: []PropEntry{
			{Name: "name", Value: values.String("new-in-overflow")},
			{Name: "tags", Value: values.List(values.String("fresh"))},
		}}},
	}
	if _, err := mg.Apply(delta); err != nil {
		t.Fatalf("Apply on mapped graph: %v", err)
	}
	if _, err := g.Apply(delta); err != nil {
		t.Fatalf("Apply on heap graph: %v", err)
	}
	mg3, err := OpenSnapshot(writeSnapFile(t, mg), Verify())
	if err != nil {
		t.Fatalf("OpenSnapshot(gen3): %v", err)
	}
	defer mg3.Close()
	snapEqual(t, mg3.Snapshot(), g.Snapshot())
}

// TestMappedApplyCopyOnWrite proves the mapping is never written
// through: mutating an opened graph leaves the file bytes untouched,
// and a fresh open still sees the original data.
func TestMappedApplyCopyOnWrite(t *testing.T) {
	g := richGraph(t)
	path := writeSnapFile(t, g)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantHash := sha256.Sum256(before)

	mg, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	defer mg.Close()
	if _, err := mg.Apply(Delta{
		AddNodes: []AddNodeSpec{{Label: "City", Props: []PropEntry{{Name: "name", Value: values.String("Bergen")}}}},
		SetNodeProps: []NodePropSpec{
			{Node: 0, Name: "name", Value: values.String("renamed")},
		},
		RemoveEdges: []EdgeID{0},
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got, _ := mg.NodeProp(0, "name"); !got.Equal(values.String("renamed")) {
		t.Fatalf("mutation not visible on mapped graph: %v", got)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(after) != wantHash {
		t.Fatalf("Apply on a mapped graph mutated the snapshot file")
	}
	reopened, err := OpenSnapshot(path, Verify())
	if err != nil {
		t.Fatalf("re-open after mutation: %v", err)
	}
	defer reopened.Close()
	if got, _ := reopened.NodeProp(0, "name"); !got.Equal(values.String("Åse 💚")) {
		t.Fatalf("file content changed: node 0 name = %v", got)
	}
}

// TestColdReadersMatchInflated runs the same read surface against a
// cold (store-free) graph and one forced through inflation, and
// requires identical answers.
func TestColdReadersMatchInflated(t *testing.T) {
	g := richGraph(t)
	path := writeSnapFile(t, g)
	cold, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	warm, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	warm.Nodes() // store-shaped read: forces inflation

	if cold.NumNodes() != warm.NumNodes() || cold.NumEdges() != warm.NumEdges() {
		t.Fatalf("counts: cold (%d,%d), warm (%d,%d)",
			cold.NumNodes(), cold.NumEdges(), warm.NumNodes(), warm.NumEdges())
	}
	if cold.NodeBound() != warm.NodeBound() || cold.EdgeBound() != warm.EdgeBound() {
		t.Fatalf("bounds differ")
	}
	if got, want := cold.Labels(), warm.Labels(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Labels: cold %v, warm %v", got, want)
	}
	for v := 0; v < cold.NodeBound(); v++ {
		id := NodeID(v)
		if cold.HasNode(id) != warm.HasNode(id) {
			t.Fatalf("node %d liveness: cold %v, warm %v", v, cold.HasNode(id), warm.HasNode(id))
		}
		// A removed node's label is unspecified (the file keeps only the
		// tombstone), so compare labels for live nodes only.
		if cold.HasNode(id) && cold.NodeLabel(id) != warm.NodeLabel(id) {
			t.Fatalf("node %d label: cold %q, warm %q", v, cold.NodeLabel(id), warm.NodeLabel(id))
		}
		if cold.NodeLabelSym(id) != warm.NodeLabelSym(id) {
			t.Fatalf("node %d label sym differs", v)
		}
		co, wo := cold.OutEdgesRaw(id), warm.OutEdgesRaw(id)
		if !edgeListEqual(co, wo) {
			t.Fatalf("node %d out edges: cold %v, warm %v", v, co, wo)
		}
		for _, name := range []string{"name", "age", "tags", "matrix", "gap", "nope"} {
			cv, cok := cold.NodeProp(id, name)
			wv, wok := warm.NodeProp(id, name)
			if cok != wok || (cok && !cv.Equal(wv)) {
				t.Fatalf("node %d prop %q: cold (%v,%v), warm (%v,%v)", v, name, cv, cok, wv, wok)
			}
		}
	}
	for e := 0; e < cold.EdgeBound(); e++ {
		id := EdgeID(e)
		if cold.EdgeLabelSym(id) != warm.EdgeLabelSym(id) {
			t.Fatalf("edge %d label sym differs", e)
		}
		cs, cd := cold.Endpoints(id)
		ws, wd := warm.Endpoints(id)
		if cs != ws || cd != wd {
			t.Fatalf("edge %d endpoints differ", e)
		}
	}
}

// corrupt returns a copy of the snapshot image with one mutation
// applied, recomputing the header CRC when asked so the mutation is
// reached rather than masked by the checksum gate.
func corrupt(data []byte, fixCRC bool, mutate func(b []byte)) []byte {
	b := append([]byte(nil), data...)
	mutate(b)
	if fixCRC {
		tableEnd := snapHeaderSize + snapSections*snapSectionSize
		crc := crc32.Checksum(b[:76], crc32.MakeTable(crc32.Castagnoli))
		crc = crc32.Update(crc, crc32.MakeTable(crc32.Castagnoli), b[snapHeaderSize:tableEnd])
		binary.LittleEndian.PutUint32(b[76:], crc)
	}
	return b
}

func TestOpenSnapshotCorruption(t *testing.T) {
	valid := snapBytes(t, richGraph(t))
	cases := []struct {
		name    string
		verify  bool
		wantSub string
		data    []byte
	}{
		{"empty file", false, "empty", nil},
		{"truncated header", false, "truncated", valid[:40]},
		{"truncated table", false, "truncated", valid[:snapHeaderSize+10]},
		{"truncated body", false, "out of bounds", valid[:len(valid)-9]},
		{"bad magic", false, "bad magic", corrupt(valid, false, func(b []byte) { b[0] = 'X' })},
		{"future version", false, "unsupported format version", corrupt(valid, true, func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:], 99)
		})},
		{"foreign byte order", false, "byte order", corrupt(valid, true, func(b []byte) {
			// The mark is written in host order (little-endian here:
			// 0D 0C 0B 0A); a big-endian writer would emit 0A 0B 0C 0D.
			b[12], b[13], b[14], b[15] = 0x0A, 0x0B, 0x0C, 0x0D
		})},
		{"header bit flip", false, "header checksum", corrupt(valid, false, func(b []byte) { b[24] ^= 1 })},
		{"section count", false, "section count", corrupt(valid, true, func(b []byte) {
			binary.LittleEndian.PutUint32(b[72:], 7)
		})},
		{"implausible counts", false, "implausible", corrupt(valid, true, func(b []byte) {
			binary.LittleEndian.PutUint64(b[40:], 1<<60) // liveNodes > nodeBound
		})},
		{"misaligned section", false, "misaligned", corrupt(valid, true, func(b []byte) {
			ent := b[snapHeaderSize+secNodeLabels*snapSectionSize:]
			binary.LittleEndian.PutUint64(ent[0:], binary.LittleEndian.Uint64(ent[0:])+4)
		})},
		{"section out of bounds", false, "out of bounds", corrupt(valid, true, func(b []byte) {
			ent := b[snapHeaderSize+secNodeLabels*snapSectionSize:]
			binary.LittleEndian.PutUint64(ent[0:], 1<<40)
		})},
		{"ragged section size", false, "not a multiple", corrupt(valid, true, func(b []byte) {
			ent := b[snapHeaderSize+secNodePropRecs*snapSectionSize:]
			binary.LittleEndian.PutUint64(ent[8:], binary.LittleEndian.Uint64(ent[8:])-1)
		})},
		{"wrong element size", false, "element size", corrupt(valid, true, func(b []byte) {
			ent := b[snapHeaderSize+secEdgeSrc*snapSectionSize:]
			binary.LittleEndian.PutUint32(ent[20:], 2)
		})},
		{"count mismatch", false, "header implies", corrupt(valid, true, func(b []byte) {
			binary.LittleEndian.PutUint64(b[24:], binary.LittleEndian.Uint64(b[24:])+1)
			binary.LittleEndian.PutUint64(b[40:], 0)
		})},
		{"symbol arena bit flip", false, "checksum mismatch", corrupt(valid, false, func(b []byte) {
			ent := b[snapHeaderSize+secSymArena*snapSectionSize:]
			b[binary.LittleEndian.Uint64(ent[0:])] ^= 0xFF
		})},
		{"data section bit flip", true, "checksum mismatch", corrupt(valid, false, func(b []byte) {
			ent := b[snapHeaderSize+secNodePropRecs*snapSectionSize:]
			b[binary.LittleEndian.Uint64(ent[0:])] ^= 0xFF
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.pgsnap")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			var opts []OpenOption
			if tc.verify {
				opts = append(opts, Verify())
			}
			g, err := OpenSnapshot(path, opts...)
			if err == nil {
				g.Close()
				t.Fatalf("OpenSnapshot accepted a corrupt file")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), "pgsnap") {
				t.Fatalf("error %q lacks the pgsnap prefix", err)
			}
		})
	}
}

// exerciseMapped walks every accessor surface of a successfully opened
// snapshot; under the fuzzer this asserts "verified open implies no
// panic anywhere downstream".
func exerciseMapped(g *Graph) {
	s := g.Snapshot()
	for v := 0; v < s.NodeBound(); v++ {
		id := NodeID(v)
		_ = s.NodeLabelSym(id)
		for _, p := range s.NodePropsOf(id) {
			_ = p.Value.String()
		}
		_ = s.OutEdgesOf(id)
		_ = s.InEdgesOf(id)
	}
	for e := 0; e < s.EdgeBound(); e++ {
		id := EdgeID(e)
		_ = s.EdgeLabelSym(id)
		s.Endpoints(id)
		for _, p := range s.EdgePropsOf(id) {
			_ = p.Value.String()
		}
	}
	_ = g.Labels()
}

func FuzzOpenSnapshot(f *testing.F) {
	valid := snapBytes(f, richGraph(f))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(corrupt(valid, true, func(b []byte) { b[len(b)/2] ^= 0x40 }))
	f.Add([]byte(snapMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.pgsnap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		g, err := OpenSnapshot(path, Verify())
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		defer g.Close()
		exerciseMapped(g)
	})
}

// TestColdConcurrentInflation races cold-path readers against the
// store inflation a concurrent store-shaped reader triggers; under
// -race this pins the atomic cold-pointer handoff.
func TestColdConcurrentInflation(t *testing.T) {
	g := richGraph(t)
	path := writeSnapFile(t, g)
	for round := 0; round < 8; round++ {
		mg, err := OpenSnapshot(path)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		for w := 0; w < 4; w++ {
			go func() {
				defer func() { done <- struct{}{} }()
				for i := 0; i < 50; i++ {
					for v := 0; v < mg.NodeBound(); v++ {
						id := NodeID(v)
						_ = mg.NodeLabelSym(id)
						_, _ = mg.NodeProp(id, "name")
						_ = mg.OutEdgesRaw(id)
					}
					_ = mg.NumNodes()
				}
			}()
		}
		go func() {
			defer func() { done <- struct{}{} }()
			mg.Nodes() // forces inflation mid-flight
		}()
		for w := 0; w < 5; w++ {
			<-done
		}
		if mg.NumNodes() != g.NumNodes() {
			t.Fatalf("post-inflation count %d, want %d", mg.NumNodes(), g.NumNodes())
		}
		mg.Close()
	}
}

// TestOpenSnapshotAllocations checks the tentpole claim: opening a
// snapshot allocates O(symbols), not O(elements) — a graph 32× larger
// must not open with measurably more allocations.
func TestOpenSnapshotAllocations(t *testing.T) {
	build := func(n int) *Graph {
		g := New()
		var prev NodeID
		for i := 0; i < n; i++ {
			v := g.AddNode("Person")
			g.SetNodeProp(v, "name", values.String("p"))
			g.SetNodeProp(v, "age", values.Int(int64(i)))
			if i > 0 {
				g.MustAddEdge(prev, v, "knows")
			}
			prev = v
		}
		return g
	}
	measure := func(path string) float64 {
		return testing.AllocsPerRun(10, func() {
			g, err := OpenSnapshot(path)
			if err != nil {
				t.Fatal(err)
			}
			g.Close()
		})
	}
	small := measure(writeSnapFile(t, build(100)))
	large := measure(writeSnapFile(t, build(3200)))
	if large > small+8 {
		t.Fatalf("open allocations grow with graph size: %0.f for 100 nodes, %0.f for 3200", small, large)
	}
}
