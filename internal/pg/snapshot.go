package pg

import "pgschema/internal/values"

// Snapshot is an immutable columnar view of a Graph at one epoch, built
// for validation-scale scans: per-element label arrays, CSR-style
// adjacency (live edges only, grouped per node in edge-id order),
// flattened per-element property storage, and per-sym property-presence
// bitsets. Hot loops index flat arrays instead of chasing node/edge
// struct pointers through the mutable store, which keeps a full
// node-or-edge pass inside a handful of contiguous allocations.
//
// A Snapshot shares property values (immutable) with the graph but owns
// every slice it exposes. It describes the graph exactly while
// Graph.Epoch() == Epoch(); Graph.Snapshot caches the latest build, so
// repeated validation of an unchanged graph reuses one snapshot and any
// mutation invalidates it lazily on the next call.
type Snapshot struct {
	epoch uint64

	// nodeLabels[v] is λ(v), or NoSym when the node is removed;
	// edgeLabels[e] likewise for edges.
	nodeLabels []Sym
	edgeLabels []Sym

	// edgeSrc[e], edgeDst[e] are ρ(e), recorded for removed edges too
	// (tombstones keep their endpoints).
	edgeSrc []NodeID
	edgeDst []NodeID

	// CSR adjacency: the live out-edges of node v are
	// outEdges[outOff[v]:outOff[v+1]], in edge-id order; inOff/inEdges
	// mirror it for incoming edges.
	outOff   []uint32
	outEdges []EdgeID
	inOff    []uint32
	inEdges  []EdgeID

	// Flattened properties: the sorted property list of node v is
	// nodeProps[nodePropOff[v]:nodePropOff[v+1]]; edges mirror it.
	nodePropOff []uint32
	nodeProps   []Prop
	edgePropOff []uint32
	edgeProps   []Prop

	// nodePropSet[s] is a bitset over node IDs: bit v is set iff the
	// live node v defines a property named s. Nil for syms never used
	// as a node property name, so presence checks cost one word load.
	nodePropSet [][]uint64

	// liveNodes/liveEdges are |V| and |E| at the snapshot's epoch
	// (bounds minus tombstones); symNames maps every Sym valid at that
	// epoch to its string, capacity-capped so the graph interning more
	// symbols later can never write through it.
	liveNodes int
	liveEdges int
	symNames  []string

	// Record-backed property storage (mapped snapshots, and patches of
	// them). When recBacked is set, nodeProps/edgeProps are nil and the
	// property rows live in nodePropRecs/edgePropRecs instead — the
	// same nodePropOff/edgePropOff offsets index both representations.
	// propArena holds textual payloads (read-only, typically aliasing
	// the file mapping); propOver is the private append-only overflow
	// arena patches encode new strings into; propLists holds decoded
	// list values indexed by record payload.
	recBacked    bool
	nodePropRecs []propRec
	edgePropRecs []propRec
	propArena    []byte
	propOver     []byte
	propLists    []values.Value

	// mapping keeps the file mapping this snapshot's columns alias
	// alive (and closeable); nil for heap snapshots.
	mapping *snapMapping
}

// Snapshot returns the columnar view of the graph at its current epoch,
// rebuilding it only when a mutation has occurred since the last call.
// Concurrent callers may race to rebuild; every built snapshot is valid
// and the last store wins.
func (g *Graph) Snapshot() *Snapshot {
	if s := g.snap.Load(); s != nil && s.epoch == g.epoch {
		return s
	}
	s := g.buildSnapshot()
	g.snap.Store(s)
	return s
}

// cappedSymNames returns the graph's Sym → name table capacity-capped:
// snapshots hold it so record decoding and serialization can recover
// names, and the cap ensures later interning appends reallocate instead
// of writing through the shared backing array.
func (g *Graph) cappedSymNames() []string {
	n := len(g.syms.names)
	return g.syms.names[:n:n]
}

func (g *Graph) buildSnapshot() *Snapshot {
	g.ensureStore() // unreachable on a cold graph in practice, but safe
	nn, ne := len(g.nodes), len(g.edges)
	s := &Snapshot{
		epoch:       g.epoch,
		liveNodes:   g.NumNodes(),
		liveEdges:   g.NumEdges(),
		symNames:    g.cappedSymNames(),
		nodeLabels:  make([]Sym, nn),
		edgeLabels:  make([]Sym, ne),
		edgeSrc:     make([]NodeID, ne),
		edgeDst:     make([]NodeID, ne),
		outOff:      make([]uint32, nn+1),
		inOff:       make([]uint32, nn+1),
		nodePropOff: make([]uint32, nn+1),
		edgePropOff: make([]uint32, ne+1),
		nodePropSet: make([][]uint64, len(g.syms.names)),
	}

	for i := range g.edges {
		e := &g.edges[i]
		s.edgeSrc[i], s.edgeDst[i] = e.src, e.dst
		if e.removed {
			s.edgeLabels[i] = NoSym
		} else {
			s.edgeLabels[i] = e.label
		}
	}

	live := g.NumEdges()
	s.outEdges = make([]EdgeID, 0, live)
	s.inEdges = make([]EdgeID, 0, live)
	nProps := 0
	for i := range g.nodes {
		if !g.nodes[i].removed {
			nProps += len(g.nodes[i].props)
		}
	}
	s.nodeProps = make([]Prop, 0, nProps)
	words := (nn + 63) / 64

	for i := range g.nodes {
		n := &g.nodes[i]
		if n.removed {
			s.nodeLabels[i] = NoSym
		} else {
			s.nodeLabels[i] = n.label
			for _, e := range n.out {
				if !g.edges[e].removed {
					s.outEdges = append(s.outEdges, e)
				}
			}
			for _, e := range n.in {
				if !g.edges[e].removed {
					s.inEdges = append(s.inEdges, e)
				}
			}
			for _, p := range n.props {
				s.nodeProps = append(s.nodeProps, p)
				set := s.nodePropSet[p.Sym]
				if set == nil {
					set = make([]uint64, words)
					s.nodePropSet[p.Sym] = set
				}
				set[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		s.outOff[i+1] = uint32(len(s.outEdges))
		s.inOff[i+1] = uint32(len(s.inEdges))
		s.nodePropOff[i+1] = uint32(len(s.nodeProps))
	}

	eProps := 0
	for i := range g.edges {
		if !g.edges[i].removed {
			eProps += len(g.edges[i].props)
		}
	}
	s.edgeProps = make([]Prop, 0, eProps)
	for i := range g.edges {
		if !g.edges[i].removed {
			s.edgeProps = append(s.edgeProps, g.edges[i].props...)
		}
		s.edgePropOff[i+1] = uint32(len(s.edgeProps))
	}
	return s
}

// Epoch returns the graph epoch the snapshot was built at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// MemoryFootprint estimates the bytes the snapshot's columns occupy: the
// label, endpoint, adjacency, offset, and property arrays plus the
// presence bitsets and (for record-backed snapshots) the value arenas.
// It is an accounting figure for cache budgets — property Values share
// storage with the graph and mapped columns are file-backed, so the
// number bounds rather than measures private heap use.
func (s *Snapshot) MemoryFootprint() int64 {
	const symSize = 4 // Sym is an int32
	n := int64(0)
	n += int64(len(s.nodeLabels)+len(s.edgeLabels)) * symSize
	n += int64(len(s.edgeSrc)+len(s.edgeDst)) * 8 // NodeID is an int64
	n += int64(len(s.outOff)+len(s.inOff)+len(s.nodePropOff)+len(s.edgePropOff)) * 4
	n += int64(len(s.outEdges)+len(s.inEdges)) * 8
	const propSize = 4 + 16 + 16 // Sym + string header + Value
	n += int64(len(s.nodeProps)+len(s.edgeProps)) * propSize
	n += int64(len(s.nodePropRecs)+len(s.edgePropRecs)) * propRecSize
	n += int64(len(s.propArena) + len(s.propOver))
	for _, set := range s.nodePropSet {
		n += int64(len(set)) * 8
	}
	for _, name := range s.symNames {
		n += int64(len(name)) + 16
	}
	return n
}

// NodeBound is the exclusive upper bound of node IDs, as in
// Graph.NodeBound.
func (s *Snapshot) NodeBound() int { return len(s.nodeLabels) }

// EdgeBound is the exclusive upper bound of edge IDs.
func (s *Snapshot) EdgeBound() int { return len(s.edgeLabels) }

// NodeLabelSym returns λ(v) as a Sym, or NoSym for a removed node.
func (s *Snapshot) NodeLabelSym(v NodeID) Sym { return s.nodeLabels[v] }

// EdgeLabelSym returns λ(e) as a Sym, or NoSym for a removed edge.
func (s *Snapshot) EdgeLabelSym(e EdgeID) Sym { return s.edgeLabels[e] }

// Endpoints returns ρ(e) = (src, dst).
func (s *Snapshot) Endpoints(e EdgeID) (src, dst NodeID) {
	return s.edgeSrc[e], s.edgeDst[e]
}

// OutEdgesOf returns the live outgoing edges of v in edge-id order,
// shared with the snapshot (callers must not mutate).
func (s *Snapshot) OutEdgesOf(v NodeID) []EdgeID {
	return s.outEdges[s.outOff[v]:s.outOff[v+1]]
}

// InEdgesOf returns the live incoming edges of v in edge-id order.
func (s *Snapshot) InEdgesOf(v NodeID) []EdgeID {
	return s.inEdges[s.inOff[v]:s.inOff[v+1]]
}

// NodePropsOf returns the sorted property list of a live node. For a
// heap snapshot the slice is shared with the snapshot; a record-backed
// snapshot decodes a fresh slice. Hot loops use NodePropRow/NodePropAt
// instead, which are allocation-free for both representations.
func (s *Snapshot) NodePropsOf(v NodeID) []Prop {
	lo, hi := s.nodePropOff[v], s.nodePropOff[v+1]
	if !s.recBacked {
		return s.nodeProps[lo:hi]
	}
	return s.decodeProps(s.nodePropRecs, int(lo), int(hi))
}

// EdgePropsOf returns the sorted property list of a live edge, under
// the same contract as NodePropsOf.
func (s *Snapshot) EdgePropsOf(e EdgeID) []Prop {
	lo, hi := s.edgePropOff[e], s.edgePropOff[e+1]
	if !s.recBacked {
		return s.edgeProps[lo:hi]
	}
	return s.decodeProps(s.edgePropRecs, int(lo), int(hi))
}

func (s *Snapshot) decodeProps(recs []propRec, lo, hi int) []Prop {
	if lo == hi {
		return nil
	}
	out := make([]Prop, hi-lo)
	for i := range out {
		out[i] = s.recProp(recs, lo+i)
	}
	return out
}

// NodePropRow returns the half-open index range of node v's property
// row for use with NodePropAt. Iterating the row by index instead of
// materializing a []Prop works identically — and allocation-free — over
// heap and record-backed snapshots.
func (s *Snapshot) NodePropRow(v NodeID) (lo, hi int) {
	return int(s.nodePropOff[v]), int(s.nodePropOff[v+1])
}

// NodePropAt returns property i of the flattened node property rows;
// i must come from a NodePropRow range.
func (s *Snapshot) NodePropAt(i int) Prop {
	if !s.recBacked {
		return s.nodeProps[i]
	}
	return s.recProp(s.nodePropRecs, i)
}

// EdgePropRow is NodePropRow for the edge property rows.
func (s *Snapshot) EdgePropRow(e EdgeID) (lo, hi int) {
	return int(s.edgePropOff[e]), int(s.edgePropOff[e+1])
}

// EdgePropAt is NodePropAt for the edge property rows.
func (s *Snapshot) EdgePropAt(i int) Prop {
	if !s.recBacked {
		return s.edgeProps[i]
	}
	return s.recProp(s.edgePropRecs, i)
}

// NumNodes is |V| at the snapshot's epoch.
func (s *Snapshot) NumNodes() int { return s.liveNodes }

// NumEdges is |E| at the snapshot's epoch.
func (s *Snapshot) NumEdges() int { return s.liveEdges }

// Mapped reports whether the snapshot's columns alias a file mapping.
func (s *Snapshot) Mapped() bool { return s.mapping != nil }

// NodeLabelColumn exposes the label column itself: element v's label
// Sym, or NoSym for removed nodes. Shared with the snapshot — callers
// must treat it as read-only. Word-at-a-time kernels index it directly
// instead of paying a bounds-checked method call per element.
func (s *Snapshot) NodeLabelColumn() []Sym { return s.nodeLabels }

// EdgeLabelColumn is NodeLabelColumn for edges.
func (s *Snapshot) EdgeLabelColumn() []Sym { return s.edgeLabels }

// NodePropWords exposes the presence bitset of property name p as raw
// words: bit v of word v/64 is set iff live node v defines p. Nil when
// the sym was never used as a node property name (semantically an
// all-zero bitset). Shared with the snapshot — read-only.
func (s *Snapshot) NodePropWords(p Sym) []uint64 {
	if p < 0 || int(p) >= len(s.nodePropSet) {
		return nil
	}
	return s.nodePropSet[p]
}

// OutDegree is the number of live outgoing edges of v.
func (s *Snapshot) OutDegree(v NodeID) int {
	return int(s.outOff[v+1] - s.outOff[v])
}

// NodePropCount is the number of properties of the live node v.
func (s *Snapshot) NodePropCount(v NodeID) int {
	return int(s.nodePropOff[v+1] - s.nodePropOff[v])
}

// NodeHasProp reports whether the live node defines a property named p.
// NoSym (or a sym never used as a node property name) reports false.
func (s *Snapshot) NodeHasProp(v NodeID, p Sym) bool {
	if p < 0 || int(p) >= len(s.nodePropSet) {
		return false
	}
	set := s.nodePropSet[p]
	return set != nil && set[int(v)>>6]&(1<<(uint(v)&63)) != 0
}

// EdgePropBySym returns σ(e, p) for an interned property name, scanning
// the edge's flat property row.
func (s *Snapshot) EdgePropBySym(e EdgeID, p Sym) (values.Value, bool) {
	lo, hi := s.edgePropOff[e], s.edgePropOff[e+1]
	if s.recBacked {
		for i := lo; i < hi; i++ {
			if r := &s.edgePropRecs[i]; Sym(r.sym) == p {
				return s.recValue(r), true
			}
		}
		return values.Value{}, false
	}
	props := s.edgeProps[lo:hi]
	for i := range props {
		if props[i].Sym == p {
			return props[i].Value, true
		}
	}
	return values.Value{}, false
}

// NodePropBySym returns σ(v, p) for an interned property name, scanning
// the node's flat property row.
func (s *Snapshot) NodePropBySym(v NodeID, p Sym) (values.Value, bool) {
	lo, hi := s.nodePropOff[v], s.nodePropOff[v+1]
	if s.recBacked {
		for i := lo; i < hi; i++ {
			if r := &s.nodePropRecs[i]; Sym(r.sym) == p {
				return s.recValue(r), true
			}
		}
		return values.Value{}, false
	}
	props := s.nodeProps[lo:hi]
	for i := range props {
		if props[i].Sym == p {
			return props[i].Value, true
		}
	}
	return values.Value{}, false
}
