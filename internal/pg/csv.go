package pg

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"pgschema/internal/values"
)

// ReadCSV loads a graph from two CSV streams in the common
// "nodes file + edges file" layout used by bulk importers:
//
//	nodes:  id,label,<prop1>,<prop2>,...
//	edges:  source,target,label,<prop1>,...
//
// Empty cells mean "property absent". Cell values are typed by sniffing:
// integers, floats, booleans, and a JSON-style [a,b,c] list form; anything
// else is a string.
func ReadCSV(nodes, edges io.Reader) (*Graph, error) {
	g := New()
	byName := make(map[string]NodeID)

	nr := csv.NewReader(nodes)
	nr.FieldsPerRecord = -1
	nh, err := nr.Read()
	if err != nil {
		return nil, fmt.Errorf("pg: reading node CSV header: %w", err)
	}
	if len(nh) < 2 || nh[0] != "id" || nh[1] != "label" {
		return nil, fmt.Errorf("pg: node CSV header must start with id,label")
	}
	for line := 2; ; line++ {
		rec, err := nr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("pg: node CSV line %d: %w", line, err)
		}
		if _, dup := byName[rec[0]]; dup {
			return nil, fmt.Errorf("pg: node CSV line %d: duplicate node id %q", line, rec[0])
		}
		id := g.AddNode(rec[1])
		byName[rec[0]] = id
		for i := 2; i < len(rec) && i < len(nh); i++ {
			if rec[i] == "" {
				continue
			}
			g.SetNodeProp(id, nh[i], SniffValue(rec[i]))
		}
	}

	er := csv.NewReader(edges)
	er.FieldsPerRecord = -1
	eh, err := er.Read()
	if err != nil {
		return nil, fmt.Errorf("pg: reading edge CSV header: %w", err)
	}
	if len(eh) < 3 || eh[0] != "source" || eh[1] != "target" || eh[2] != "label" {
		return nil, fmt.Errorf("pg: edge CSV header must start with source,target,label")
	}
	for line := 2; ; line++ {
		rec, err := er.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("pg: edge CSV line %d: %w", line, err)
		}
		src, ok := byName[rec[0]]
		if !ok {
			return nil, fmt.Errorf("pg: edge CSV line %d: unknown source %q", line, rec[0])
		}
		dst, ok := byName[rec[1]]
		if !ok {
			return nil, fmt.Errorf("pg: edge CSV line %d: unknown target %q", line, rec[1])
		}
		eid, err := g.AddEdge(src, dst, rec[2])
		if err != nil {
			return nil, err
		}
		for i := 3; i < len(rec) && i < len(eh); i++ {
			if rec[i] == "" {
				continue
			}
			g.SetEdgeProp(eid, eh[i], SniffValue(rec[i]))
		}
	}
	return g, nil
}

// SniffValue types a CSV cell: int, float, bool, "[a,b]" list (elements
// sniffed recursively), quoted string, or plain string.
func SniffValue(cell string) values.Value {
	s := strings.TrimSpace(cell)
	switch s {
	case "true":
		return values.Boolean(true)
	case "false":
		return values.Boolean(false)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return values.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return values.Float(f)
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		if uq, err := strconv.Unquote(s); err == nil {
			return values.String(uq)
		}
	}
	if len(s) >= 2 && s[0] == '[' && s[len(s)-1] == ']' {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return values.List()
		}
		parts := splitTopLevel(inner)
		elems := make([]values.Value, len(parts))
		for i, p := range parts {
			elems[i] = SniffValue(p)
		}
		return values.List(elems...)
	}
	return values.String(s)
}

// splitTopLevel splits on commas that are not inside quotes or brackets.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' && (i == 0 || s[i-1] != '\\'):
			inQuote = !inQuote
		case inQuote:
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// WriteCSV writes the graph in the two-file CSV layout ReadCSV accepts:
// node and edge property columns are the union of property names present,
// in sorted order; absent properties are empty cells.
func (g *Graph) WriteCSV(nodes, edges io.Writer) error {
	nodeCols := map[string]bool{}
	for _, id := range g.Nodes() {
		for _, name := range g.NodePropNames(id) {
			nodeCols[name] = true
		}
	}
	edgeCols := map[string]bool{}
	for _, id := range g.Edges() {
		for _, name := range g.EdgePropNames(id) {
			edgeCols[name] = true
		}
	}
	nCols := sortedKeys(nodeCols)
	eCols := sortedKeys(edgeCols)

	nw := csv.NewWriter(nodes)
	if err := nw.Write(append([]string{"id", "label"}, nCols...)); err != nil {
		return err
	}
	name := make(map[NodeID]string, g.NumNodes())
	for _, id := range g.Nodes() {
		nm := fmt.Sprintf("n%d", id)
		name[id] = nm
		rec := []string{nm, g.NodeLabel(id)}
		for _, col := range nCols {
			v, ok := g.NodeProp(id, col)
			rec = append(rec, cellValue(v, ok))
		}
		if err := nw.Write(rec); err != nil {
			return err
		}
	}
	nw.Flush()
	if err := nw.Error(); err != nil {
		return err
	}

	ew := csv.NewWriter(edges)
	if err := ew.Write(append([]string{"source", "target", "label"}, eCols...)); err != nil {
		return err
	}
	for _, id := range g.Edges() {
		src, dst := g.Endpoints(id)
		rec := []string{name[src], name[dst], g.EdgeLabel(id)}
		for _, col := range eCols {
			v, ok := g.EdgeProp(id, col)
			rec = append(rec, cellValue(v, ok))
		}
		if err := ew.Write(rec); err != nil {
			return err
		}
	}
	ew.Flush()
	return ew.Error()
}

// cellValue renders a property value in a form SniffValue decodes back to
// an equal value; absent properties become the empty cell.
func cellValue(v values.Value, ok bool) string {
	if !ok {
		return ""
	}
	return renderCell(v)
}

func renderCell(v values.Value) string {
	switch v.Kind() {
	case values.KindList:
		parts := make([]string, v.Len())
		for i := range parts {
			parts[i] = renderCell(v.Elem(i))
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case values.KindString, values.KindID, values.KindEnum:
		// Quote so that numeric-looking and comma-containing strings
		// survive the sniffer.
		return strconv.Quote(v.AsString())
	default:
		return v.String()
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
