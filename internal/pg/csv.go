package pg

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pgschema/internal/values"
)

// Ingestion pipeline tuning: rows are read in batches so the parse
// workers amortize channel traffic, and the reader buffer is large
// enough that a million-row file costs a handful of syscalls per MiB.
const (
	csvBatchRows  = 512
	csvReaderSize = 1 << 16
)

// ReadCSV loads a graph from two CSV streams in the common
// "nodes file + edges file" layout used by bulk importers:
//
//	nodes:  id,label,<prop1>,<prop2>,...
//	edges:  source,target,label,<prop1>,...
//
// Empty cells mean "property absent". Cell values are typed by sniffing:
// integers, floats, booleans, and a JSON-style [a,b,c] list form; anything
// else is a string.
//
// Loading is pipelined: a reader goroutine streams record batches off a
// buffered csv.Reader (ReuseRecord — the csv package allocates fresh
// strings per record, so only the record slice needs copying), parse
// workers sniff cell values and assemble sorted property rows in
// parallel, and the single builder goroutine applies batches in record
// order (graph mutation is single-threaded). Property-name syms are
// interned once per header instead of once per cell.
func ReadCSV(nodes, edges io.Reader) (*Graph, error) {
	g := New()
	byName := make(map[string]NodeID)
	if err := g.readNodeCSV(nodes, byName); err != nil {
		return nil, err
	}
	if err := g.readEdgeCSV(edges, byName); err != nil {
		return nil, err
	}
	return g, nil
}

// propCols is the per-file property-column plan: which columns carry
// properties, their header names and pre-interned syms, and the column
// order that yields name-sorted property rows.
type propCols struct {
	names []string // header name by column index
	syms  []Sym    // interned sym by column index
	order []int    // property column indexes, stably sorted by name
}

// newPropCols interns every property column name once (batch interning:
// per-cell loads never touch the symbol table) and precomputes the
// name-sorted column order so rows come out ready for
// setNodePropsSorted.
func newPropCols(syms *symbols, header []string, skip int) propCols {
	c := propCols{
		names: header,
		syms:  make([]Sym, len(header)),
		order: make([]int, 0, len(header)-skip),
	}
	for i := skip; i < len(header); i++ {
		c.syms[i] = syms.intern(header[i])
		c.order = append(c.order, i)
	}
	sort.SliceStable(c.order, func(a, b int) bool {
		return header[c.order[a]] < header[c.order[b]]
	})
	return c
}

// parseRow sniffs the property cells of one record into a name-sorted
// Prop slice. A duplicate header column overwrites the earlier one, as
// the sequential loader's repeated SetNodeProp did.
func (c *propCols) parseRow(rec []string) []Prop {
	return c.parseRowInto(nil, rec, 0)
}

// parseRowInto is parseRow appending into a shared flat buffer: the
// row's props land in dst[rowStart:]. The streaming builder batches many
// rows into one buffer so per-row slices never allocate.
func (c *propCols) parseRowInto(dst []Prop, rec []string, rowStart int) []Prop {
	for _, i := range c.order {
		if i >= len(rec) || rec[i] == "" {
			continue
		}
		p := Prop{Sym: c.syms[i], Name: c.names[i], Value: SniffValue(rec[i])}
		if n := len(dst); n > rowStart && dst[n-1].Name == p.Name {
			dst[n-1] = p
		} else {
			dst = append(dst, p)
		}
	}
	return dst
}

// rawBatch is a sequence-numbered slice of records; lines[i] is the
// physical line rows[i] starts on (header = line 1), so diagnostics stay
// accurate when a quoted field spans multiple lines.
type rawBatch struct {
	seq   int
	lines []int
	rows  [][]string
	// consumed is the csv reader's input offset after this batch; the
	// streaming builder extrapolates total row counts from it.
	consumed int64
}

// seqBatch is a parsed batch tagged with its sequence number so the
// pipeline builder can re-order worker output back into record order.
type seqBatch interface{ seqNo() int }

// openCSV wraps a stream in a buffered, record-reusing csv.Reader and
// returns its header (copied: ReuseRecord recycles the slice). A UTF-8
// BOM on the first header cell is stripped, so BOM-prefixed exports
// don't intern a mangled BOM-prefixed column name.
func openCSV(r io.Reader) (*csv.Reader, []string, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, csvReaderSize))
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, nil, err
	}
	hdr := append([]string(nil), header...)
	hdr[0] = strings.TrimPrefix(hdr[0], "\uFEFF")
	return cr, hdr, nil
}

// csvWorkersOverride forces the parse fan-out when > 0. It is a test
// hook: 1 pins the inline path, 2+ pins the pipelined path regardless
// of GOMAXPROCS.
var csvWorkersOverride int

// csvWorkers is the parse fan-out per file. One worker would serialize
// value sniffing behind the reader; more than a few just contend on the
// batch channel for typical property counts.
func csvWorkers() int {
	if csvWorkersOverride > 0 {
		return csvWorkersOverride
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// batchSource reads sequence-numbered record batches off a csv.Reader,
// tagging every record with the physical line it starts on (via
// FieldPos, so records after a multi-line quoted field keep accurate
// line attribution). A read failure is recorded in fail and ends the
// stream after the rows read so far.
type batchSource struct {
	cr       *csv.Reader
	seq      int
	nextLine int // fallback attribution for errors csv can't place
	readErr  func(line int, err error) error
	fail     error
}

func newBatchSource(cr *csv.Reader, readErr func(line int, err error) error) *batchSource {
	return &batchSource{cr: cr, nextLine: 2, readErr: readErr}
}

// next returns the next batch and whether the stream is done. The last
// batch may be empty.
func (src *batchSource) next() (rawBatch, bool) {
	b := rawBatch{
		seq:   src.seq,
		lines: make([]int, 0, csvBatchRows),
		rows:  make([][]string, 0, csvBatchRows),
	}
	for len(b.rows) < csvBatchRows {
		rec, err := src.cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			src.fail = src.readErr(csvErrLine(err, src.nextLine), err)
			break
		}
		line, _ := src.cr.FieldPos(0)
		b.rows = append(b.rows, append([]string(nil), rec...))
		b.lines = append(b.lines, line)
		src.nextLine = line + 1
	}
	src.seq++
	b.consumed = src.cr.InputOffset()
	return b, src.fail != nil || len(b.rows) < csvBatchRows
}

// csvErrLine extracts the physical line a csv read error starts on,
// falling back to the line after the previously read record.
func csvErrLine(err error, fallback int) int {
	var pe *csv.ParseError
	if errors.As(err, &pe) {
		return pe.StartLine
	}
	return fallback
}

// readCSVRecords is the shared reader/parser/builder pipeline. parse
// turns one raw batch into a parsed batch on a worker goroutine; apply
// installs one parsed batch on the caller's goroutine, always in record
// order. readErr formats a mid-file csv error with its physical line.
func readCSVRecords(
	cr *csv.Reader,
	parse func(b rawBatch) seqBatch,
	apply func(b seqBatch) error,
	readErr func(line int, err error) error,
) error {
	workers := csvWorkers()
	if workers == 1 {
		// Single-core: the pipeline's channel hops are pure overhead, so
		// read, parse, and apply inline with the same batching.
		src := newBatchSource(cr, readErr)
		for {
			b, done := src.next()
			if len(b.rows) > 0 {
				if err := apply(parse(b)); err != nil {
					return err
				}
			}
			if done {
				return src.fail
			}
		}
	}
	rawCh := make(chan rawBatch, workers)
	parsedCh := make(chan seqBatch, workers)
	doneCh := make(chan struct{})
	var closeDone sync.Once
	cancel := func() { closeDone.Do(func() { close(doneCh) }) }
	defer cancel()

	// Reader: batch records, copying each slice (ReuseRecord recycles
	// it) but keeping the freshly allocated strings.
	src := newBatchSource(cr, readErr)
	go func() {
		defer close(rawCh)
		for {
			b, done := src.next()
			if len(b.rows) > 0 {
				select {
				case rawCh <- b:
				case <-doneCh:
					return
				}
			}
			if done {
				return
			}
		}
	}()

	// Parse workers.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range rawCh {
				select {
				case parsedCh <- parse(b):
				case <-doneCh:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(parsedCh)
	}()

	// Builder: reorder by sequence number and apply. Out-of-order
	// batches are bounded by the worker count plus channel capacity.
	pending := make(map[int]seqBatch)
	next := 0
	for pb := range parsedCh {
		pending[pb.seqNo()] = pb
		for {
			b, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if err := apply(b); err != nil {
				return err
			}
		}
	}
	// src.fail is safe to read here: the reader goroutine wrote it
	// before closing rawCh, which happens before parsedCh closes.
	return src.fail
}

type parsedNode struct {
	id    string
	label string
	props []Prop
	err   error
}

type nodeBatch struct {
	seq   int
	lines []int
	rows  []parsedNode
}

func (b nodeBatch) seqNo() int { return b.seq }

// checkNodeHeader validates the fixed prefix of a node CSV header; an
// EOF from openCSV means the file is empty (not even a header).
func checkNodeHeader(header []string, err error) error {
	if err != nil {
		if errors.Is(err, io.EOF) {
			return fmt.Errorf("pg: node CSV is empty: want an id,label,... header")
		}
		return fmt.Errorf("pg: reading node CSV header: %w", err)
	}
	if len(header) < 2 || header[0] != "id" || header[1] != "label" {
		return fmt.Errorf("pg: node CSV header must start with id,label")
	}
	return nil
}

// checkNodeRecord validates one node record's field count against the
// header. Records may omit trailing property columns (absent
// properties), but must not carry fields the header has no name for.
func checkNodeRecord(rec []string, ncols, line int) error {
	if len(rec) < 2 {
		return fmt.Errorf(
			"pg: node CSV line %d: record has %d fields, need at least id,label",
			line, len(rec))
	}
	if len(rec) > ncols {
		return fmt.Errorf(
			"pg: node CSV line %d: record has %d fields, but the header has only %d columns",
			line, len(rec), ncols)
	}
	return nil
}

func (g *Graph) readNodeCSV(r io.Reader, byName map[string]NodeID) error {
	cr, header, err := openCSV(r)
	if err := checkNodeHeader(header, err); err != nil {
		return err
	}
	cols := newPropCols(&g.syms, header, 2)

	parse := func(b rawBatch) seqBatch {
		out := nodeBatch{seq: b.seq, lines: b.lines, rows: make([]parsedNode, len(b.rows))}
		for i, rec := range b.rows {
			if err := checkNodeRecord(rec, len(cols.names), b.lines[i]); err != nil {
				out.rows[i].err = err
				continue
			}
			out.rows[i] = parsedNode{id: rec[0], label: rec[1], props: cols.parseRow(rec)}
		}
		return out
	}

	// Run-length label cache: consecutive rows of one label intern once.
	lastLabel, lastSym := "", NoSym
	apply := func(pb seqBatch) error {
		b := pb.(nodeBatch)
		for i, row := range b.rows {
			if row.err != nil {
				return row.err
			}
			if _, dup := byName[row.id]; dup {
				return fmt.Errorf("pg: node CSV line %d: duplicate node id %q", b.lines[i], row.id)
			}
			if row.label != lastLabel || lastSym == NoSym {
				lastLabel, lastSym = row.label, g.syms.intern(row.label)
			}
			id := g.addNodeSym(lastSym)
			byName[row.id] = id
			if len(row.props) > 0 {
				g.setNodePropsSorted(id, row.props)
			}
		}
		return nil
	}

	return readCSVRecords(cr, parse, apply, nodeReadErr)
}

func nodeReadErr(line int, err error) error {
	return fmt.Errorf("pg: node CSV line %d: %w", line, err)
}

type parsedEdge struct {
	src, dst NodeID
	label    string
	props    []Prop
	err      error
}

type edgeBatch struct {
	seq  int
	rows []parsedEdge
}

func (b edgeBatch) seqNo() int { return b.seq }

// checkEdgeHeader validates the fixed prefix of an edge CSV header.
func checkEdgeHeader(header []string, err error) error {
	if err != nil {
		if errors.Is(err, io.EOF) {
			return fmt.Errorf("pg: edge CSV is empty: want a source,target,label,... header")
		}
		return fmt.Errorf("pg: reading edge CSV header: %w", err)
	}
	if len(header) < 3 || header[0] != "source" || header[1] != "target" || header[2] != "label" {
		return fmt.Errorf("pg: edge CSV header must start with source,target,label")
	}
	return nil
}

// checkEdgeRecord validates one edge record's field count against the
// header, as checkNodeRecord does for nodes.
func checkEdgeRecord(rec []string, ncols, line int) error {
	if len(rec) < 3 {
		return fmt.Errorf(
			"pg: edge CSV line %d: record has %d fields, need at least source,target,label",
			line, len(rec))
	}
	if len(rec) > ncols {
		return fmt.Errorf(
			"pg: edge CSV line %d: record has %d fields, but the header has only %d columns",
			line, len(rec), ncols)
	}
	return nil
}

func (g *Graph) readEdgeCSV(r io.Reader, byName map[string]NodeID) error {
	cr, header, err := openCSV(r)
	if err := checkEdgeHeader(header, err); err != nil {
		return err
	}
	cols := newPropCols(&g.syms, header, 3)

	// The node phase is complete, so byName is read-only here and
	// endpoint resolution can run on the parse workers.
	parse := func(b rawBatch) seqBatch {
		out := edgeBatch{seq: b.seq, rows: make([]parsedEdge, len(b.rows))}
		for i, rec := range b.rows {
			if err := checkEdgeRecord(rec, len(cols.names), b.lines[i]); err != nil {
				out.rows[i].err = err
				continue
			}
			src, dst, err := resolveEndpoints(byName, rec, b.lines[i])
			if err != nil {
				out.rows[i].err = err
				continue
			}
			out.rows[i] = parsedEdge{src: src, dst: dst, label: rec[2], props: cols.parseRow(rec)}
		}
		return out
	}

	lastLabel, lastSym := "", NoSym
	apply := func(pb seqBatch) error {
		for _, row := range pb.(edgeBatch).rows {
			if row.err != nil {
				return row.err
			}
			if row.label != lastLabel || lastSym == NoSym {
				lastLabel, lastSym = row.label, g.syms.intern(row.label)
			}
			eid, err := g.addEdgeSym(row.src, row.dst, lastSym)
			if err != nil {
				return err
			}
			if len(row.props) > 0 {
				g.setEdgePropsSorted(eid, row.props)
			}
		}
		return nil
	}

	return readCSVRecords(cr, parse, apply, edgeReadErr)
}

func edgeReadErr(line int, err error) error {
	return fmt.Errorf("pg: edge CSV line %d: %w", line, err)
}

// resolveEndpoints maps an edge record's source and target ids through
// the node-phase name index, diagnosing unknown endpoints with the
// record's physical line.
func resolveEndpoints(byName map[string]NodeID, rec []string, line int) (src, dst NodeID, err error) {
	src, ok := byName[rec[0]]
	if !ok {
		return 0, 0, fmt.Errorf("pg: edge CSV line %d: unknown source %q", line, rec[0])
	}
	dst, ok = byName[rec[1]]
	if !ok {
		return 0, 0, fmt.Errorf("pg: edge CSV line %d: unknown target %q", line, rec[1])
	}
	return src, dst, nil
}

// SniffValue types a CSV cell: int, float, bool, "[a,b]" list (elements
// sniffed recursively), quoted string, or plain string.
func SniffValue(cell string) values.Value {
	s := strings.TrimSpace(cell)
	switch s {
	case "true":
		return values.Boolean(true)
	case "false":
		return values.Boolean(false)
	}
	if len(s) > 0 && maybeNumeric(s[0]) {
		// Failed strconv attempts allocate a *NumError apiece, and on a
		// property-heavy load nearly every cell is a plain string — so
		// only strings that could possibly be numbers reach strconv,
		// and integer-shaped ones skip the ParseInt-fails-on-floats
		// detour entirely.
		if integerShaped(s) {
			if i, err := strconv.ParseInt(s, 10, 64); err == nil {
				return values.Int(i)
			}
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return values.Float(f)
		}
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		if uq, err := strconv.Unquote(s); err == nil {
			return values.String(uq)
		}
	}
	if len(s) >= 2 && s[0] == '[' && s[len(s)-1] == ']' {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return values.List()
		}
		parts := splitTopLevel(inner)
		elems := make([]values.Value, len(parts))
		for i, p := range parts {
			elems[i] = SniffValue(p)
		}
		return values.List(elems...)
	}
	return values.String(s)
}

// maybeNumeric reports whether a cell starting with c could parse as an
// int or float — digits, sign, decimal point, or the leading letter of
// ParseFloat's NaN/Inf spellings.
func maybeNumeric(c byte) bool {
	return '0' <= c && c <= '9' || c == '-' || c == '+' || c == '.' ||
		c == 'n' || c == 'N' || c == 'i' || c == 'I'
}

// integerShaped reports whether s is an optional sign followed by one or
// more digits — exactly the strings base-10 ParseInt can accept (modulo
// range), so anything else skips straight to ParseFloat.
func integerShaped(s string) bool {
	if s[0] == '-' || s[0] == '+' {
		s = s[1:]
	}
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// splitTopLevel splits on commas that are not inside quotes or brackets.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' && (i == 0 || s[i-1] != '\\'):
			inQuote = !inQuote
		case inQuote:
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// WriteCSV writes the graph in the two-file CSV layout ReadCSV accepts:
// node and edge property columns are the union of property names present,
// in sorted order; absent properties are empty cells.
func (g *Graph) WriteCSV(nodes, edges io.Writer) error {
	nodeCols := map[string]bool{}
	for _, id := range g.Nodes() {
		for _, name := range g.NodePropNames(id) {
			nodeCols[name] = true
		}
	}
	edgeCols := map[string]bool{}
	for _, id := range g.Edges() {
		for _, name := range g.EdgePropNames(id) {
			edgeCols[name] = true
		}
	}
	nCols := sortedKeys(nodeCols)
	eCols := sortedKeys(edgeCols)

	nw := csv.NewWriter(nodes)
	if err := nw.Write(append([]string{"id", "label"}, nCols...)); err != nil {
		return err
	}
	name := make(map[NodeID]string, g.NumNodes())
	for _, id := range g.Nodes() {
		nm := fmt.Sprintf("n%d", id)
		name[id] = nm
		rec := []string{nm, g.NodeLabel(id)}
		for _, col := range nCols {
			v, ok := g.NodeProp(id, col)
			rec = append(rec, cellValue(v, ok))
		}
		if err := nw.Write(rec); err != nil {
			return err
		}
	}
	nw.Flush()
	if err := nw.Error(); err != nil {
		return err
	}

	ew := csv.NewWriter(edges)
	if err := ew.Write(append([]string{"source", "target", "label"}, eCols...)); err != nil {
		return err
	}
	for _, id := range g.Edges() {
		src, dst := g.Endpoints(id)
		rec := []string{name[src], name[dst], g.EdgeLabel(id)}
		for _, col := range eCols {
			v, ok := g.EdgeProp(id, col)
			rec = append(rec, cellValue(v, ok))
		}
		if err := ew.Write(rec); err != nil {
			return err
		}
	}
	ew.Flush()
	return ew.Error()
}

// cellValue renders a property value in a form SniffValue decodes back to
// an equal value; absent properties become the empty cell.
func cellValue(v values.Value, ok bool) string {
	if !ok {
		return ""
	}
	return renderCell(v)
}

func renderCell(v values.Value) string {
	switch v.Kind() {
	case values.KindList:
		parts := make([]string, v.Len())
		for i := range parts {
			parts[i] = renderCell(v.Elem(i))
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case values.KindString, values.KindID, values.KindEnum:
		// Quote so that numeric-looking and comma-containing strings
		// survive the sniffer.
		return strconv.Quote(v.AsString())
	default:
		return v.String()
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
