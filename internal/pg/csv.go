package pg

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pgschema/internal/values"
)

// Ingestion pipeline tuning: rows are read in batches so the parse
// workers amortize channel traffic, and the reader buffer is large
// enough that a million-row file costs a handful of syscalls per MiB.
const (
	csvBatchRows  = 512
	csvReaderSize = 1 << 16
)

// ReadCSV loads a graph from two CSV streams in the common
// "nodes file + edges file" layout used by bulk importers:
//
//	nodes:  id,label,<prop1>,<prop2>,...
//	edges:  source,target,label,<prop1>,...
//
// Empty cells mean "property absent". Cell values are typed by sniffing:
// integers, floats, booleans, and a JSON-style [a,b,c] list form; anything
// else is a string.
//
// Loading is pipelined: a reader goroutine streams record batches off a
// buffered csv.Reader (ReuseRecord — the csv package allocates fresh
// strings per record, so only the record slice needs copying), parse
// workers sniff cell values and assemble sorted property rows in
// parallel, and the single builder goroutine applies batches in record
// order (graph mutation is single-threaded). Property-name syms are
// interned once per header instead of once per cell.
func ReadCSV(nodes, edges io.Reader) (*Graph, error) {
	g := New()
	byName := make(map[string]NodeID)
	if err := g.readNodeCSV(nodes, byName); err != nil {
		return nil, err
	}
	if err := g.readEdgeCSV(edges, byName); err != nil {
		return nil, err
	}
	return g, nil
}

// propCols is the per-file property-column plan: which columns carry
// properties, their header names and pre-interned syms, and the column
// order that yields name-sorted property rows.
type propCols struct {
	names []string // header name by column index
	syms  []Sym    // interned sym by column index
	order []int    // property column indexes, stably sorted by name
}

// newPropCols interns every property column name once (batch interning:
// per-cell loads never touch the symbol table) and precomputes the
// name-sorted column order so rows come out ready for
// setNodePropsSorted.
func newPropCols(g *Graph, header []string, skip int) propCols {
	c := propCols{
		names: header,
		syms:  make([]Sym, len(header)),
		order: make([]int, 0, len(header)-skip),
	}
	for i := skip; i < len(header); i++ {
		c.syms[i] = g.syms.intern(header[i])
		c.order = append(c.order, i)
	}
	sort.SliceStable(c.order, func(a, b int) bool {
		return header[c.order[a]] < header[c.order[b]]
	})
	return c
}

// parseRow sniffs the property cells of one record into a name-sorted
// Prop slice. A duplicate header column overwrites the earlier one, as
// the sequential loader's repeated SetNodeProp did.
func (c *propCols) parseRow(rec []string) []Prop {
	var props []Prop
	for _, i := range c.order {
		if i >= len(rec) || rec[i] == "" {
			continue
		}
		p := Prop{Sym: c.syms[i], Name: c.names[i], Value: SniffValue(rec[i])}
		if n := len(props); n > 0 && props[n-1].Name == p.Name {
			props[n-1] = p
		} else {
			props = append(props, p)
		}
	}
	return props
}

// rawBatch is a sequence-numbered slice of records; line is the record
// ordinal of rows[0] as reported in error messages (header = line 1).
type rawBatch struct {
	seq  int
	line int
	rows [][]string
}

// openCSV wraps a stream in a buffered, record-reusing csv.Reader and
// returns its header (copied: ReuseRecord recycles the slice).
func openCSV(r io.Reader) (*csv.Reader, []string, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, csvReaderSize))
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, nil, err
	}
	return cr, append([]string(nil), header...), nil
}

// csvWorkers is the parse fan-out per file. One worker would serialize
// value sniffing behind the reader; more than a few just contend on the
// batch channel for typical property counts.
func csvWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// readCSVRecords is the shared reader/parser/builder pipeline. parse
// turns one raw batch into an opaque parsed batch on a worker
// goroutine; apply installs one parsed batch into the graph on the
// caller's goroutine, always in record order. readErr formats a
// mid-file csv error with its record line.
func readCSVRecords(
	cr *csv.Reader,
	parse func(b rawBatch) any,
	apply func(b any) error,
	readErr func(line int, err error) error,
) error {
	workers := csvWorkers()
	if workers == 1 {
		// Single-core: the pipeline's channel hops are pure overhead, so
		// read, parse, and apply inline with the same batching.
		line := 2
		for {
			rows := make([][]string, 0, csvBatchRows)
			start := line
			var readFail error
			for len(rows) < csvBatchRows {
				rec, err := cr.Read()
				if err == io.EOF {
					break
				}
				if err != nil {
					readFail = readErr(line, err)
					break
				}
				rows = append(rows, append([]string(nil), rec...))
				line++
			}
			if len(rows) > 0 {
				if err := apply(parse(rawBatch{line: start, rows: rows})); err != nil {
					return err
				}
			}
			if readFail != nil || len(rows) < csvBatchRows {
				return readFail
			}
		}
	}
	rawCh := make(chan rawBatch, workers)
	parsedCh := make(chan any, workers)
	done := make(chan struct{})
	var closeDone sync.Once
	cancel := func() { closeDone.Do(func() { close(done) }) }
	defer cancel()

	// Reader: batch records, copying each slice (ReuseRecord recycles
	// it) but keeping the freshly allocated strings.
	var readFail error
	go func() {
		defer close(rawCh)
		line, seq := 2, 0
		for {
			rows := make([][]string, 0, csvBatchRows)
			start := line
			for len(rows) < csvBatchRows {
				rec, err := cr.Read()
				if err == io.EOF {
					break
				}
				if err != nil {
					readFail = readErr(line, err)
					break
				}
				rows = append(rows, append([]string(nil), rec...))
				line++
			}
			if len(rows) > 0 {
				select {
				case rawCh <- rawBatch{seq: seq, line: start, rows: rows}:
					seq++
				case <-done:
					return
				}
			}
			if readFail != nil || len(rows) < csvBatchRows {
				return
			}
		}
	}()

	// Parse workers.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range rawCh {
				select {
				case parsedCh <- parse(b):
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(parsedCh)
	}()

	// Builder: reorder by sequence number and apply. Out-of-order
	// batches are bounded by the worker count plus channel capacity.
	pending := make(map[int]any)
	next := 0
	seqOf := func(b any) int {
		switch pb := b.(type) {
		case nodeBatch:
			return pb.seq
		case edgeBatch:
			return pb.seq
		}
		panic("pg: unknown parsed batch type")
	}
	for pb := range parsedCh {
		pending[seqOf(pb)] = pb
		for {
			b, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if err := apply(b); err != nil {
				return err
			}
		}
	}
	return readFail
}

type parsedNode struct {
	id    string
	label string
	props []Prop
	err   error
}

type nodeBatch struct {
	seq  int
	line int
	rows []parsedNode
}

func (g *Graph) readNodeCSV(r io.Reader, byName map[string]NodeID) error {
	cr, header, err := openCSV(r)
	if err != nil {
		return fmt.Errorf("pg: reading node CSV header: %w", err)
	}
	if len(header) < 2 || header[0] != "id" || header[1] != "label" {
		return fmt.Errorf("pg: node CSV header must start with id,label")
	}
	cols := newPropCols(g, header, 2)

	parse := func(b rawBatch) any {
		out := nodeBatch{seq: b.seq, line: b.line, rows: make([]parsedNode, len(b.rows))}
		for i, rec := range b.rows {
			if len(rec) < 2 {
				out.rows[i].err = fmt.Errorf(
					"pg: node CSV line %d: record has %d fields, need at least id,label",
					b.line+i, len(rec))
				continue
			}
			out.rows[i] = parsedNode{id: rec[0], label: rec[1], props: cols.parseRow(rec)}
		}
		return out
	}

	// Run-length label cache: consecutive rows of one label intern once.
	lastLabel, lastSym := "", NoSym
	apply := func(pb any) error {
		b := pb.(nodeBatch)
		for i, row := range b.rows {
			if row.err != nil {
				return row.err
			}
			if _, dup := byName[row.id]; dup {
				return fmt.Errorf("pg: node CSV line %d: duplicate node id %q", b.line+i, row.id)
			}
			if row.label != lastLabel || lastSym == NoSym {
				lastLabel, lastSym = row.label, g.syms.intern(row.label)
			}
			id := g.addNodeSym(lastSym)
			byName[row.id] = id
			if len(row.props) > 0 {
				g.setNodePropsSorted(id, row.props)
			}
		}
		return nil
	}

	return readCSVRecords(cr, parse, apply, func(line int, err error) error {
		return fmt.Errorf("pg: node CSV line %d: %w", line, err)
	})
}

type parsedEdge struct {
	src, dst NodeID
	label    string
	props    []Prop
	err      error
}

type edgeBatch struct {
	seq  int
	rows []parsedEdge
}

func (g *Graph) readEdgeCSV(r io.Reader, byName map[string]NodeID) error {
	cr, header, err := openCSV(r)
	if err != nil {
		return fmt.Errorf("pg: reading edge CSV header: %w", err)
	}
	if len(header) < 3 || header[0] != "source" || header[1] != "target" || header[2] != "label" {
		return fmt.Errorf("pg: edge CSV header must start with source,target,label")
	}
	cols := newPropCols(g, header, 3)

	// The node phase is complete, so byName is read-only here and
	// endpoint resolution can run on the parse workers.
	parse := func(b rawBatch) any {
		out := edgeBatch{seq: b.seq, rows: make([]parsedEdge, len(b.rows))}
		for i, rec := range b.rows {
			if len(rec) < 3 {
				out.rows[i].err = fmt.Errorf(
					"pg: edge CSV line %d: record has %d fields, need at least source,target,label",
					b.line+i, len(rec))
				continue
			}
			src, ok := byName[rec[0]]
			if !ok {
				out.rows[i].err = fmt.Errorf("pg: edge CSV line %d: unknown source %q", b.line+i, rec[0])
				continue
			}
			dst, ok := byName[rec[1]]
			if !ok {
				out.rows[i].err = fmt.Errorf("pg: edge CSV line %d: unknown target %q", b.line+i, rec[1])
				continue
			}
			out.rows[i] = parsedEdge{src: src, dst: dst, label: rec[2], props: cols.parseRow(rec)}
		}
		return out
	}

	lastLabel, lastSym := "", NoSym
	apply := func(pb any) error {
		for _, row := range pb.(edgeBatch).rows {
			if row.err != nil {
				return row.err
			}
			if row.label != lastLabel || lastSym == NoSym {
				lastLabel, lastSym = row.label, g.syms.intern(row.label)
			}
			eid, err := g.addEdgeSym(row.src, row.dst, lastSym)
			if err != nil {
				return err
			}
			if len(row.props) > 0 {
				g.setEdgePropsSorted(eid, row.props)
			}
		}
		return nil
	}

	return readCSVRecords(cr, parse, apply, func(line int, err error) error {
		return fmt.Errorf("pg: edge CSV line %d: %w", line, err)
	})
}

// SniffValue types a CSV cell: int, float, bool, "[a,b]" list (elements
// sniffed recursively), quoted string, or plain string.
func SniffValue(cell string) values.Value {
	s := strings.TrimSpace(cell)
	switch s {
	case "true":
		return values.Boolean(true)
	case "false":
		return values.Boolean(false)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return values.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return values.Float(f)
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		if uq, err := strconv.Unquote(s); err == nil {
			return values.String(uq)
		}
	}
	if len(s) >= 2 && s[0] == '[' && s[len(s)-1] == ']' {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return values.List()
		}
		parts := splitTopLevel(inner)
		elems := make([]values.Value, len(parts))
		for i, p := range parts {
			elems[i] = SniffValue(p)
		}
		return values.List(elems...)
	}
	return values.String(s)
}

// splitTopLevel splits on commas that are not inside quotes or brackets.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' && (i == 0 || s[i-1] != '\\'):
			inQuote = !inQuote
		case inQuote:
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// WriteCSV writes the graph in the two-file CSV layout ReadCSV accepts:
// node and edge property columns are the union of property names present,
// in sorted order; absent properties are empty cells.
func (g *Graph) WriteCSV(nodes, edges io.Writer) error {
	nodeCols := map[string]bool{}
	for _, id := range g.Nodes() {
		for _, name := range g.NodePropNames(id) {
			nodeCols[name] = true
		}
	}
	edgeCols := map[string]bool{}
	for _, id := range g.Edges() {
		for _, name := range g.EdgePropNames(id) {
			edgeCols[name] = true
		}
	}
	nCols := sortedKeys(nodeCols)
	eCols := sortedKeys(edgeCols)

	nw := csv.NewWriter(nodes)
	if err := nw.Write(append([]string{"id", "label"}, nCols...)); err != nil {
		return err
	}
	name := make(map[NodeID]string, g.NumNodes())
	for _, id := range g.Nodes() {
		nm := fmt.Sprintf("n%d", id)
		name[id] = nm
		rec := []string{nm, g.NodeLabel(id)}
		for _, col := range nCols {
			v, ok := g.NodeProp(id, col)
			rec = append(rec, cellValue(v, ok))
		}
		if err := nw.Write(rec); err != nil {
			return err
		}
	}
	nw.Flush()
	if err := nw.Error(); err != nil {
		return err
	}

	ew := csv.NewWriter(edges)
	if err := ew.Write(append([]string{"source", "target", "label"}, eCols...)); err != nil {
		return err
	}
	for _, id := range g.Edges() {
		src, dst := g.Endpoints(id)
		rec := []string{name[src], name[dst], g.EdgeLabel(id)}
		for _, col := range eCols {
			v, ok := g.EdgeProp(id, col)
			rec = append(rec, cellValue(v, ok))
		}
		if err := ew.Write(rec); err != nil {
			return err
		}
	}
	ew.Flush()
	return ew.Error()
}

// cellValue renders a property value in a form SniffValue decodes back to
// an equal value; absent properties become the empty cell.
func cellValue(v values.Value, ok bool) string {
	if !ok {
		return ""
	}
	return renderCell(v)
}

func renderCell(v values.Value) string {
	switch v.Kind() {
	case values.KindList:
		parts := make([]string, v.Len())
		for i := range parts {
			parts[i] = renderCell(v.Elem(i))
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case values.KindString, values.KindID, values.KindEnum:
		// Quote so that numeric-looking and comma-containing strings
		// survive the sniffer.
		return strconv.Quote(v.AsString())
	default:
		return v.String()
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
