package pg

import "sort"

// Cold graph backing: a Graph returned by OpenSnapshot starts with no
// materialized node/edge store — just the mapped snapshot, the symbol
// table, and the epoch. Every reader a compiled validation program or
// query plan binds through (labels, sym lookups, per-label node lists,
// property-by-sym, the snapshot itself) answers straight from the
// mapped columns, so the load stays O(header). Store-shaped access —
// any mutation, or readers that expose the mutable store's shape
// (NodeProps, OutEdges, Clone, stats, serializers) — first inflates a
// private store from the snapshot, exactly once, copy-on-write: the
// mapping is never written through.

// ensureStore materializes the mutable store of a cold graph. It is a
// no-op for ordinary graphs. Safe under concurrent readers: the first
// caller inflates under the sync.Once, the rest wait.
func (g *Graph) ensureStore() {
	if g.cold.Load() == nil {
		return
	}
	g.storeOnce.Do(g.inflateStore)
}

func (g *Graph) inflateStore() {
	s := g.cold.Load()
	nn, ne := s.NodeBound(), s.EdgeBound()

	// Decode the flattened property rows once into private flat
	// columns, sub-sliced per element with capped capacity — the same
	// layout (and the same sharedCols contract) a sealed streamed
	// graph uses. Adjacency rows alias the snapshot's CSR columns,
	// capacity-capped: appends reallocate, and the first in-place
	// write goes through privatize.
	nProps := make([]Prop, int(s.nodePropOff[nn]))
	for i := range nProps {
		nProps[i] = s.recProp(s.nodePropRecs, i)
	}
	eProps := make([]Prop, int(s.edgePropOff[ne]))
	for i := range eProps {
		eProps[i] = s.recProp(s.edgePropRecs, i)
	}

	nodes := make([]node, nn)
	removedN := 0
	for v := 0; v < nn; v++ {
		ls := s.nodeLabels[v]
		pa, pb := s.nodePropOff[v], s.nodePropOff[v+1]
		oa, ob := s.outOff[v], s.outOff[v+1]
		ia, ib := s.inOff[v], s.inOff[v+1]
		nodes[v] = node{
			label: ls,
			props: nProps[pa:pb:pb],
			out:   s.outEdges[oa:ob:ob],
			in:    s.inEdges[ia:ib:ib],
		}
		if ls == NoSym {
			// Tombstone. The snapshot does not retain a removed node's
			// label or adjacency, so the inflated tombstone is bare —
			// equivalent for every live-element operation.
			nodes[v].removed = true
			nodes[v].label = 0
			removedN++
		}
	}
	edges := make([]edge, ne)
	removedE := 0
	for e := 0; e < ne; e++ {
		ls := s.edgeLabels[e]
		pa, pb := s.edgePropOff[e], s.edgePropOff[e+1]
		edges[e] = edge{
			src:   s.edgeSrc[e],
			dst:   s.edgeDst[e],
			label: ls,
			props: eProps[pa:pb:pb],
		}
		if ls == NoSym {
			edges[e].removed = true
			edges[e].label = 0
			removedE++
		}
	}

	byLabel := make([][]NodeID, len(g.syms.names))
	for v := 0; v < nn; v++ {
		if ls := s.nodeLabels[v]; ls != NoSym {
			byLabel[ls] = append(byLabel[ls], NodeID(v))
		}
	}

	g.nodes = nodes
	g.edges = edges
	g.byLabel = byLabel
	g.removedNodes = removedN
	g.removedEdges = removedE
	g.sharedCols = true
	g.cold.Store(nil)
}

// coldBuckets lazily builds the per-label node lists of a cold graph
// from the mapped label column, without inflating the store.
func (g *Graph) coldBuckets(s *Snapshot) [][]NodeID {
	g.coldByOnce.Do(func() {
		buckets := make([][]NodeID, len(g.syms.names))
		for v, ls := range s.nodeLabels {
			if ls != NoSym {
				buckets[ls] = append(buckets[ls], NodeID(v))
			}
		}
		g.coldBy = buckets
	})
	return g.coldBy
}

func (g *Graph) coldLabels(s *Snapshot) []string {
	buckets := g.coldBuckets(s)
	var out []string
	for sym, ids := range buckets {
		if len(ids) > 0 {
			out = append(out, g.syms.names[sym])
		}
	}
	sort.Strings(out)
	return out
}

// Close releases the file mapping behind a graph opened with
// OpenSnapshot (a no-op for ordinary graphs, and on platforms without
// mmap). After Close, the graph and everything derived from it —
// snapshots, property values, validation results still holding its
// strings — must not be used: their storage may alias the unmapped
// file. Long-lived processes can simply never call Close and let
// process exit unmap.
func (g *Graph) Close() error {
	m := g.mapping
	g.mapping = nil
	return m.close()
}
