package pg

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
)

// withCSVWorkers pins the loader fan-out for the duration of fn: 1
// exercises the inline path, 2+ the pipelined path.
func withCSVWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	old := csvWorkersOverride
	csvWorkersOverride = n
	defer func() { csvWorkersOverride = old }()
	fn()
}

// eachLoaderPath runs fn once per (loader, fan-out) combination so
// behavior is pinned across the pipelined, inline, and streaming paths.
func eachLoaderPath(t *testing.T, fn func(t *testing.T, load func(nodes, edges string) (*Graph, error))) {
	t.Helper()
	loaders := []struct {
		name string
		load func(nodes, edges string) (*Graph, error)
	}{
		{"ReadCSV", func(n, e string) (*Graph, error) {
			return ReadCSV(strings.NewReader(n), strings.NewReader(e))
		}},
		{"ReadCSVStream", func(n, e string) (*Graph, error) {
			return ReadCSVStream(strings.NewReader(n), strings.NewReader(e))
		}},
	}
	for _, l := range loaders {
		for _, workers := range []int{1, 4} {
			path := "inline"
			if workers > 1 {
				path = "pipelined"
			}
			l := l
			t.Run(l.name+"/"+path, func(t *testing.T) {
				withCSVWorkers(t, workers, func() { fn(t, l.load) })
			})
		}
	}
}

// graphJSON renders the graph to its canonical JSON form; two graphs
// with equal output are observably identical to validators and writers.
func graphJSON(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadCSVStreamMatchesReadCSV(t *testing.T) {
	const n = 3*csvBatchRows + 19
	nodes, edges := buildBigCSV(n)

	want, err := ReadCSV(strings.NewReader(nodes), strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := graphJSON(t, want)
	wantSnap := want.Snapshot()

	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			withCSVWorkers(t, workers, func() {
				got, err := ReadCSVStream(strings.NewReader(nodes), strings.NewReader(edges))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(graphJSON(t, got), wantJSON) {
					t.Fatal("streamed graph differs from ReadCSV graph")
				}
				if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
					t.Fatalf("size mismatch: %d/%d vs %d/%d",
						got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
				}
				if gl, wl := got.Labels(), want.Labels(); fmt.Sprint(gl) != fmt.Sprint(wl) {
					t.Fatalf("Labels = %v, want %v", gl, wl)
				}

				// The sealed snapshot must be pre-built (no rebuild on first
				// use) and identical to the two-phase snapshot column-wise.
				cached := got.snap.Load()
				if cached == nil || cached.Epoch() != got.Epoch() {
					t.Fatal("streamed graph must carry a pre-built snapshot at its epoch")
				}
				if got.Snapshot() != cached {
					t.Fatal("Snapshot() must reuse the sealed snapshot, not rebuild")
				}
				assertSnapshotsEqual(t, cached, wantSnap)

				// Label index equivalence, including bucket order.
				for _, lbl := range want.Labels() {
					if g, w := got.NodesLabeled(lbl), want.NodesLabeled(lbl); fmt.Sprint(g) != fmt.Sprint(w) {
						t.Fatalf("NodesLabeled(%q) = %v, want %v", lbl, g, w)
					}
				}
			})
		})
	}
}

// assertSnapshotsEqual compares every column-derived accessor of two
// snapshots over all elements.
func assertSnapshotsEqual(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.NodeBound() != want.NodeBound() || got.EdgeBound() != want.EdgeBound() {
		t.Fatalf("bounds: %d/%d vs %d/%d",
			got.NodeBound(), got.EdgeBound(), want.NodeBound(), want.EdgeBound())
	}
	for v := NodeID(0); int(v) < want.NodeBound(); v++ {
		if got.NodeLabelSym(v) != want.NodeLabelSym(v) {
			t.Fatalf("node %d label sym mismatch", v)
		}
		if fmt.Sprint(got.OutEdgesOf(v)) != fmt.Sprint(want.OutEdgesOf(v)) {
			t.Fatalf("node %d out edges: %v vs %v", v, got.OutEdgesOf(v), want.OutEdgesOf(v))
		}
		if fmt.Sprint(got.InEdgesOf(v)) != fmt.Sprint(want.InEdgesOf(v)) {
			t.Fatalf("node %d in edges: %v vs %v", v, got.InEdgesOf(v), want.InEdgesOf(v))
		}
		gp, wp := got.NodePropsOf(v), want.NodePropsOf(v)
		if len(gp) != len(wp) {
			t.Fatalf("node %d prop count %d vs %d", v, len(gp), len(wp))
		}
		for i := range gp {
			if gp[i].Name != wp[i].Name || gp[i].Sym != wp[i].Sym || !gp[i].Value.Equal(wp[i].Value) {
				t.Fatalf("node %d prop %d: %+v vs %+v", v, i, gp[i], wp[i])
			}
			if !got.NodeHasProp(v, gp[i].Sym) {
				t.Fatalf("node %d: presence bitset misses %q", v, gp[i].Name)
			}
		}
	}
	for e := EdgeID(0); int(e) < want.EdgeBound(); e++ {
		if got.EdgeLabelSym(e) != want.EdgeLabelSym(e) {
			t.Fatalf("edge %d label sym mismatch", e)
		}
		gs, gd := got.Endpoints(e)
		ws, wd := want.Endpoints(e)
		if gs != ws || gd != wd {
			t.Fatalf("edge %d endpoints (%d,%d) vs (%d,%d)", e, gs, gd, ws, wd)
		}
		gp, wp := got.EdgePropsOf(e), want.EdgePropsOf(e)
		if len(gp) != len(wp) {
			t.Fatalf("edge %d prop count %d vs %d", e, len(gp), len(wp))
		}
		for i := range gp {
			if gp[i].Name != wp[i].Name || !gp[i].Value.Equal(wp[i].Value) {
				t.Fatalf("edge %d prop %d: %+v vs %+v", e, i, gp[i], wp[i])
			}
		}
	}
}

// TestReadCSVStreamSnapshotImmutable pins the copy-on-first-mutation
// contract: a sealed graph aliases its snapshot's columns until the
// first in-place write privatizes them, so mutating the graph must
// never change a snapshot taken before the mutation (incremental
// revalidation and undo retain old snapshots).
func TestReadCSVStreamSnapshotImmutable(t *testing.T) {
	nodes := "id,label,name,rank\nu0,User,\"zero\",0\nu1,User,\"one\",1\n"
	edges := "source,target,label,weight\nu0,u1,knows,0.5\n"
	g, err := ReadCSVStream(strings.NewReader(nodes), strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()

	// In-place overwrite, in-place delete, and append after seal.
	g.SetNodeProp(0, "name", SniffValue(`"mutated"`))
	g.DeleteNodeProp(1, "name")
	g.SetNodeProp(1, "extra", SniffValue("42"))
	g.MustAddEdge(1, 0, "knows")

	if v, ok := snap.NodePropBySym(0, mustSym(t, g, "name")); !ok || v.AsString() != "zero" {
		t.Fatalf("retained snapshot saw in-place overwrite: %v %v", v, ok)
	}
	if props := snap.NodePropsOf(1); len(props) != 2 {
		t.Fatalf("retained snapshot saw delete/append: %v", props)
	}
	if out := snap.OutEdgesOf(1); len(out) != 0 {
		t.Fatalf("retained snapshot saw adjacency append: %v", out)
	}

	// And the next Snapshot() reflects all of it.
	fresh := g.Snapshot()
	if fresh == snap {
		t.Fatal("mutations must invalidate the sealed snapshot")
	}
	if v, _ := fresh.NodePropBySym(0, mustSym(t, g, "name")); v.AsString() != "mutated" {
		t.Fatalf("fresh snapshot name = %v", v)
	}
	if out := fresh.OutEdgesOf(1); len(out) != 1 {
		t.Fatalf("fresh snapshot out edges = %v", out)
	}
}

// TestReadCSVStreamApplyUndo drives the transactional mutation path
// over a freshly streamed graph: Apply's in-place property writes and
// Undo's replay both land after seal, so they exercise privatization
// against the retained snapshot.
func TestReadCSVStreamApplyUndo(t *testing.T) {
	nodes := "id,label,name\nu0,User,\"zero\"\nu1,User,\"one\"\n"
	edges := "source,target,label\nu0,u1,knows\n"
	g, err := ReadCSVStream(strings.NewReader(nodes), strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()

	u, err := g.Apply(Delta{
		SetNodeProps: []NodePropSpec{{Node: 0, Name: "name", Value: SniffValue(`"patched"`)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.NodePropBySym(0, mustSym(t, g, "name")); !ok || v.AsString() != "zero" {
		t.Fatalf("retained snapshot saw Apply write: %v %v", v, ok)
	}
	if v, _ := g.NodeProp(0, "name"); v.AsString() != "patched" {
		t.Fatalf("graph after Apply: name = %v", v)
	}
	if err := u.Undo(); err != nil {
		t.Fatal(err)
	}
	if v, _ := g.NodeProp(0, "name"); v.AsString() != "zero" {
		t.Fatalf("graph after Undo: name = %v", v)
	}
}

func mustSym(t *testing.T, g *Graph, name string) Sym {
	t.Helper()
	s, ok := g.Sym(name)
	if !ok {
		t.Fatalf("sym %q not interned", name)
	}
	return s
}

func TestReadCSVStripsBOM(t *testing.T) {
	eachLoaderPath(t, func(t *testing.T, load func(nodes, edges string) (*Graph, error)) {
		nodes := "\uFEFFid,label,name\nu0,User,\"ann\"\n"
		edges := "\uFEFFsource,target,label\nu0,u0,knows\n"
		g, err := load(nodes, edges)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() != 1 || g.NumEdges() != 1 {
			t.Fatalf("got %d nodes, %d edges", g.NumNodes(), g.NumEdges())
		}
		if v, ok := g.NodeProp(0, "name"); !ok || v.AsString() != "ann" {
			t.Fatalf("name = %v, %v", v, ok)
		}
	})
}

func TestReadCSVStreamDuplicateID(t *testing.T) {
	const n = csvBatchRows + 11
	goodNodes, goodEdges := buildBigCSV(n)
	dup := goodNodes + "u5,User,again,1\n"
	eachLoaderPath(t, func(t *testing.T, load func(nodes, edges string) (*Graph, error)) {
		_, err := load(dup, goodEdges)
		want := fmt.Sprintf("pg: node CSV line %d: duplicate node id \"u5\"", n+2)
		if err == nil || err.Error() != want {
			t.Fatalf("err = %v, want %s", err, want)
		}
	})
}

func TestReadCSVStreamContextCancel(t *testing.T) {
	const n = 4 * csvBatchRows
	nodes, edges := buildBigCSV(n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		withCSVWorkers(t, workers, func() {
			if _, err := ReadCSVStreamContext(ctx, strings.NewReader(nodes), strings.NewReader(edges)); err != context.Canceled {
				t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
			}
		})
	}
}

func TestReadCSVStreamDuplicateHeaderColumn(t *testing.T) {
	nodes := "id,label,x,x\nu1,User,1,2\nu2,User,3,\n"
	g, err := ReadCSVStream(strings.NewReader(nodes), strings.NewReader("source,target,label\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := g.NodeProp(0, "x"); v.AsInt() != 2 {
		t.Fatalf("u1.x = %v, want later column (2)", v)
	}
	if v, _ := g.NodeProp(1, "x"); v.AsInt() != 3 {
		t.Fatalf("u2.x = %v, want 3", v)
	}
}

// TestReadCSVStreamMixedIDFormats drives the id table off its dense
// fast path mid-load: sequential "n<i>" ids followed by nonconforming
// ones force a materialize, and edges must resolve ids recorded on
// both sides of that boundary identically to ReadCSV.
func TestReadCSVStreamMixedIDFormats(t *testing.T) {
	nodes := "id,label,name\n" +
		"n0,User,a\n" +
		"n1,User,b\n" +
		"widget-7,User,c\n" + // breaks the dense invariant
		"n3,User,d\n" +
		"007,User,e\n" // leading zeros: never dense-parseable
	edges := "source,target,label\n" +
		"n0,widget-7,knows\n" +
		"007,n1,knows\n" +
		"n3,n0,knows\n"

	want, err := ReadCSV(strings.NewReader(nodes), strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := graphJSON(t, want)
	eachLoaderPath(t, func(t *testing.T, load func(nodes, edges string) (*Graph, error)) {
		g, err := load(nodes, edges)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(graphJSON(t, g), wantJSON) {
			t.Fatal("mixed-id graph differs from ReadCSV reference")
		}
	})
}

// TestReadCSVStreamDenseLookupMisses pins unknown-endpoint diagnostics
// while the id table is still dense: ids that parse past the node
// count, carry the wrong prefix, or use non-canonical decimals must
// all miss, with the same message ReadCSV produces.
func TestReadCSVStreamDenseLookupMisses(t *testing.T) {
	nodes := "id,label\nn0,User\nn1,User\nn2,User\n"
	for _, tc := range []struct{ ref, want string }{
		{"n5", `pg: edge CSV line 2: unknown target "n5"`},   // index out of range
		{"m1", `pg: edge CSV line 2: unknown target "m1"`},   // wrong prefix
		{"n01", `pg: edge CSV line 2: unknown target "n01"`}, // leading zero
	} {
		edges := "source,target,label\nn0," + tc.ref + ",knows\n"
		eachLoaderPath(t, func(t *testing.T, load func(nodes, edges string) (*Graph, error)) {
			_, err := load(nodes, edges)
			if err == nil || err.Error() != tc.want {
				t.Fatalf("ref %q: err = %v, want %s", tc.ref, err, tc.want)
			}
		})
	}
}
