package pg

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"pgschema/internal/values"
)

func TestAddAndQuery(t *testing.T) {
	g := New()
	u := g.AddNode("User")
	s := g.AddNode("UserSession")
	e := g.MustAddEdge(s, u, "user")
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.NodeLabel(u) != "User" || g.EdgeLabel(e) != "user" {
		t.Error("labels broken")
	}
	src, dst := g.Endpoints(e)
	if src != s || dst != u {
		t.Error("ρ broken")
	}
	if got := g.OutEdgesLabeled(s, "user"); len(got) != 1 || got[0] != e {
		t.Errorf("out edges: %v", got)
	}
	if got := g.InEdgesLabeled(u, "user"); len(got) != 1 || got[0] != e {
		t.Errorf("in edges: %v", got)
	}
	if got := g.NodesLabeled("User"); len(got) != 1 || got[0] != u {
		t.Errorf("label index: %v", got)
	}
}

func TestAddEdgeInvalidEndpoints(t *testing.T) {
	g := New()
	n := g.AddNode("A")
	if _, err := g.AddEdge(n, 99, "x"); err == nil {
		t.Error("expected error for invalid target")
	}
	if _, err := g.AddEdge(-1, n, "x"); err == nil {
		t.Error("expected error for invalid source")
	}
}

func TestProperties(t *testing.T) {
	g := New()
	n := g.AddNode("User")
	if _, ok := g.NodeProp(n, "id"); ok {
		t.Error("fresh node has properties")
	}
	g.SetNodeProp(n, "id", values.ID("u1"))
	g.SetNodeProp(n, "login", values.String("ada"))
	if v, ok := g.NodeProp(n, "id"); !ok || !v.Equal(values.ID("u1")) {
		t.Error("σ broken")
	}
	if got := g.NodePropNames(n); len(got) != 2 || got[0] != "id" || got[1] != "login" {
		t.Errorf("prop names: %v", got)
	}
	g.DeleteNodeProp(n, "id")
	if _, ok := g.NodeProp(n, "id"); ok {
		t.Error("delete failed")
	}
	// Edge properties.
	m := g.AddNode("User")
	e := g.MustAddEdge(n, m, "knows")
	g.SetEdgeProp(e, "since", values.Int(2019))
	if v, ok := g.EdgeProp(e, "since"); !ok || v.AsInt() != 2019 {
		t.Error("edge σ broken")
	}
}

func TestMultigraph(t *testing.T) {
	// Definition 2.1 allows parallel edges with the same label.
	g := New()
	a, b := g.AddNode("A"), g.AddNode("B")
	e1 := g.MustAddEdge(a, b, "rel")
	e2 := g.MustAddEdge(a, b, "rel")
	if e1 == e2 {
		t.Error("parallel edges must be distinct")
	}
	if g.OutDegreeLabeled(a, "rel") != 2 {
		t.Error("degree count broken")
	}
}

func TestSelfLoop(t *testing.T) {
	g := New()
	a := g.AddNode("A")
	e := g.MustAddEdge(a, a, "self")
	if got := g.OutEdgesLabeled(a, "self"); len(got) != 1 || got[0] != e {
		t.Errorf("out: %v", got)
	}
	if got := g.InEdgesLabeled(a, "self"); len(got) != 1 {
		t.Errorf("in: %v", got)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	a, b := g.AddNode("A"), g.AddNode("B")
	e := g.MustAddEdge(a, b, "rel")
	g.RemoveEdge(e)
	if g.NumEdges() != 0 || g.HasEdge(e) {
		t.Error("remove failed")
	}
	if len(g.OutEdges(a)) != 0 || len(g.InEdges(b)) != 0 {
		t.Error("adjacency still lists removed edge")
	}
	g.RemoveEdge(e) // idempotent
	if g.NumEdges() != 0 {
		t.Error("double remove corrupted counts")
	}
}

func TestRemoveNode(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	g.MustAddEdge(a, b, "x")
	g.MustAddEdge(b, c, "y")
	g.RemoveNode(b)
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Errorf("counts after removal: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if len(g.NodesLabeled("B")) != 0 {
		t.Error("label index still lists removed node")
	}
	if len(g.Nodes()) != 2 {
		t.Error("Nodes() lists removed node")
	}
}

func TestSetNodeLabelMaintainsIndex(t *testing.T) {
	g := New()
	a := g.AddNode("A")
	g.SetNodeLabel(a, "B")
	if len(g.NodesLabeled("A")) != 0 || len(g.NodesLabeled("B")) != 1 {
		t.Error("label index not maintained")
	}
	if g.NodeLabel(a) != "B" {
		t.Error("label not set")
	}
}

func TestClone(t *testing.T) {
	g := New()
	a, b := g.AddNode("A"), g.AddNode("B")
	e := g.MustAddEdge(a, b, "rel")
	g.SetNodeProp(a, "p", values.Int(1))
	c := g.Clone()
	// Mutating the clone must not affect the original.
	c.SetNodeProp(a, "p", values.Int(2))
	c.RemoveEdge(e)
	c.AddNode("C")
	if v, _ := g.NodeProp(a, "p"); v.AsInt() != 1 {
		t.Error("clone shares property maps")
	}
	if g.NumEdges() != 1 || g.NumNodes() != 2 {
		t.Error("clone shares structure")
	}
	if c.NumEdges() != 0 || c.NumNodes() != 3 {
		t.Error("clone mutations lost")
	}
}

func TestLabels(t *testing.T) {
	g := New()
	g.AddNode("B")
	g.AddNode("A")
	g.AddNode("A")
	if got := g.Labels(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("labels: %v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := New()
	u := g.AddNode("User")
	s := g.AddNode("UserSession")
	g.SetNodeProp(u, "id", values.String("u1"))
	g.SetNodeProp(u, "nicknames", values.List(values.String("a"), values.String("b")))
	e := g.MustAddEdge(s, u, "user")
	g.SetEdgeProp(e, "certainty", values.Float(0.9))

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 2 || back.NumEdges() != 1 {
		t.Fatalf("counts: %d/%d", back.NumNodes(), back.NumEdges())
	}
	u2 := back.NodesLabeled("User")[0]
	if v, ok := back.NodeProp(u2, "nicknames"); !ok || v.Len() != 2 {
		t.Errorf("nicknames: %v", v)
	}
	e2 := back.Edges()[0]
	if v, ok := back.EdgeProp(e2, "certainty"); !ok || v.AsFloat() != 0.9 {
		t.Errorf("certainty: %v", v)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`{"nodes":[{"label":"A"}]}`, "without id"},
		{`{"nodes":[{"id":"n","label":"A"},{"id":"n","label":"B"}]}`, "duplicate"},
		{`{"nodes":[],"edges":[{"source":"x","target":"y","label":"l"}]}`, "unknown source"},
		{`{"nodes":[{"id":"a","label":"A"}],"edges":[{"source":"a","target":"y","label":"l"}]}`, "unknown target"},
		{`not json`, "decoding"},
	}
	for _, c := range cases {
		_, err := ReadJSON(strings.NewReader(c.src))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ReadJSON(%q): got %v, want error containing %q", c.src, err, c.want)
		}
	}
}

func TestReadCSV(t *testing.T) {
	nodes := `id,label,name,age,tags
u1,User,Ada,36,"[x, y]"
u2,User,Bob,,`
	edges := `source,target,label,weight
u1,u2,knows,0.5`
	g, err := ReadCSV(strings.NewReader(nodes), strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts: %d/%d", g.NumNodes(), g.NumEdges())
	}
	u1 := g.NodesLabeled("User")[0]
	if v, _ := g.NodeProp(u1, "age"); v.AsInt() != 36 {
		t.Errorf("age: %v", v)
	}
	if v, ok := g.NodeProp(u1, "tags"); !ok || v.Len() != 2 || !v.Elem(0).Equal(values.String("x")) {
		t.Errorf("tags: %v", v)
	}
	u2 := g.NodesLabeled("User")[1]
	if _, ok := g.NodeProp(u2, "age"); ok {
		t.Error("empty cell must mean absent property")
	}
	e := g.Edges()[0]
	if v, _ := g.EdgeProp(e, "weight"); v.AsFloat() != 0.5 {
		t.Errorf("weight: %v", v)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("wrong,header\n"), strings.NewReader("source,target,label\n")); err == nil {
		t.Error("bad node header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("id,label\na,A\n"), strings.NewReader("bad\n")); err == nil {
		t.Error("bad edge header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("id,label\na,A\na,A\n"), strings.NewReader("source,target,label\n")); err == nil {
		t.Error("duplicate node id accepted")
	}
	if _, err := ReadCSV(strings.NewReader("id,label\na,A\n"), strings.NewReader("source,target,label\na,ghost,l\n")); err == nil {
		t.Error("edge to unknown node accepted")
	}
}

func TestSniffValue(t *testing.T) {
	cases := []struct {
		cell string
		want values.Value
	}{
		{"42", values.Int(42)},
		{"-1", values.Int(-1)},
		{"2.5", values.Float(2.5)},
		{"true", values.Boolean(true)},
		{"false", values.Boolean(false)},
		{"hello", values.String("hello")},
		{`"quoted, string"`, values.String("quoted, string")},
		{"[1, 2, 3]", values.List(values.Int(1), values.Int(2), values.Int(3))},
		{"[]", values.List()},
		{`[a, "b, c"]`, values.List(values.String("a"), values.String("b, c"))},
		{"[[1], [2]]", values.List(values.List(values.Int(1)), values.List(values.Int(2)))},
	}
	for _, c := range cases {
		if got := SniffValue(c.cell); !got.Equal(c.want) {
			t.Errorf("SniffValue(%q) = %v, want %v", c.cell, got, c.want)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := New()
	a, b := g.AddNode("A"), g.AddNode("B")
	iso := g.AddNode("A")
	_ = iso
	g.MustAddEdge(a, b, "rel")
	g.MustAddEdge(a, b, "rel")
	g.MustAddEdge(a, a, "self")
	g.SetNodeProp(a, "p", values.Int(1))
	st := g.ComputeStats()
	if st.Nodes != 3 || st.Edges != 3 {
		t.Errorf("counts: %+v", st)
	}
	if st.SelfLoops != 1 {
		t.Errorf("self loops: %d", st.SelfLoops)
	}
	if st.ParallelPairs != 1 {
		t.Errorf("parallel: %d", st.ParallelPairs)
	}
	if st.IsolatedNodes != 1 {
		t.Errorf("isolated: %d", st.IsolatedNodes)
	}
	if st.NodesByLabel["A"] != 2 || st.EdgesByLabel["rel"] != 2 {
		t.Errorf("by label: %+v", st)
	}
	if st.NodeProps != 1 {
		t.Errorf("node props: %d", st.NodeProps)
	}
	if !strings.Contains(st.String(), "self-loops: 1") {
		t.Errorf("String(): %s", st)
	}
}

// Property: after any sequence of node additions, the label index is
// consistent with per-node labels.
func TestLabelIndexConsistency(t *testing.T) {
	prop := func(labels []uint8) bool {
		g := New()
		names := []string{"A", "B", "C"}
		for _, l := range labels {
			g.AddNode(names[int(l)%3])
		}
		total := 0
		for _, name := range names {
			for _, id := range g.NodesLabeled(name) {
				if g.NodeLabel(id) != name {
					return false
				}
				total++
			}
		}
		return total == g.NumNodes()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trip preserves node and edge counts, labels, and
// property counts for arbitrary small graphs.
func TestJSONRoundTripProperty(t *testing.T) {
	prop := func(n uint8, edges []uint16, props []uint8) bool {
		g := New()
		nn := int(n%20) + 1
		for i := 0; i < nn; i++ {
			g.AddNode([]string{"A", "B"}[i%2])
		}
		for _, e := range edges {
			src := NodeID(int(e>>8) % nn)
			dst := NodeID(int(e&0xff) % nn)
			g.MustAddEdge(src, dst, "rel")
		}
		for i, p := range props {
			g.SetNodeProp(NodeID(int(p)%nn), "k", values.Int(int64(i)))
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			return false
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			return false
		}
		s1, s2 := g.ComputeStats(), back.ComputeStats()
		return s1.NodeProps == s2.NodeProps && s1.SelfLoops == s2.SelfLoops
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCSVRoundTrip: WriteCSV followed by ReadCSV reproduces the graph's
// structure and properties (values survive the sniffing heuristics thanks
// to quoting).
func TestCSVRoundTrip(t *testing.T) {
	g := New()
	u := g.AddNode("User")
	g.SetNodeProp(u, "id", values.String("u1"))
	g.SetNodeProp(u, "age", values.Int(36))
	g.SetNodeProp(u, "score", values.Float(2.5))
	g.SetNodeProp(u, "active", values.Boolean(true))
	g.SetNodeProp(u, "numbery", values.String("123")) // must stay a string
	g.SetNodeProp(u, "commas", values.String("a, b"))
	g.SetNodeProp(u, "tags", values.List(values.String("x"), values.Int(1)))
	v := g.AddNode("User")
	g.SetNodeProp(v, "id", values.String("u2"))
	e := g.MustAddEdge(u, v, "knows")
	g.SetEdgeProp(e, "since", values.Int(2019))

	var nbuf, ebuf bytes.Buffer
	if err := g.WriteCSV(&nbuf, &ebuf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(nbuf.String()), strings.NewReader(ebuf.String()))
	if err != nil {
		t.Fatalf("%v\nnodes:\n%s\nedges:\n%s", err, nbuf.String(), ebuf.String())
	}
	if back.NumNodes() != 2 || back.NumEdges() != 1 {
		t.Fatalf("counts: %d/%d", back.NumNodes(), back.NumEdges())
	}
	u2 := back.NodesLabeled("User")[0]
	for name, want := range map[string]values.Value{
		"id": values.String("u1"), "age": values.Int(36), "score": values.Float(2.5),
		"active": values.Boolean(true), "numbery": values.String("123"),
		"commas": values.String("a, b"),
		"tags":   values.List(values.String("x"), values.Int(1)),
	} {
		got, ok := back.NodeProp(u2, name)
		if !ok || !got.Equal(want) {
			t.Errorf("property %s: got %v (%v), want %v", name, got, ok, want)
		}
		if name == "numbery" && got.Kind() != values.KindString {
			t.Errorf("numbery decoded as %v, want String", got.Kind())
		}
	}
	e2 := back.Edges()[0]
	if got, _ := back.EdgeProp(e2, "since"); !got.Equal(values.Int(2019)) {
		t.Errorf("edge since: %v", got)
	}
}
