package pg

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
)

// ReadCSVStream loads a graph from the two-file CSV layout ReadCSV
// accepts, but builds the columnar form directly: rows append into flat
// label and property columns, adjacency is finished as CSR by a
// counting sort over the edge columns, and the sealed graph carries a
// pre-built Snapshot at its current epoch. Validation right after a
// streamed load therefore starts on sealed columns instead of paying a
// second full materialization, and the load itself skips the per-node
// slice growth of the mutation path (the dominant loader cost).
//
// The streamed graph is observably identical to the ReadCSV result:
// same node and edge IDs, syms, labels, properties, and adjacency
// order, and the same diagnostics for malformed input.
func ReadCSVStream(nodes, edges io.Reader) (*Graph, error) {
	return ReadCSVStreamContext(context.Background(), nodes, edges)
}

// ReadCSVStreamContext is ReadCSVStream with cancellation: the load
// stops between row batches when ctx is done and returns ctx.Err().
func ReadCSVStreamContext(ctx context.Context, nodes, edges io.Reader) (*Graph, error) {
	sb := newStreamBuilder()
	if err := sb.readNodes(ctx, nodes, readerSize(nodes)); err != nil {
		return nil, err
	}
	if err := sb.readEdges(ctx, edges, readerSize(edges)); err != nil {
		return nil, err
	}
	return sb.seal(), nil
}

// readerSize reports the total byte size of r when it is cheaply
// knowable — in-memory readers and regular files. 0 means unknown; the
// size is only ever a capacity hint.
func readerSize(r io.Reader) int64 {
	switch v := r.(type) {
	case *bytes.Reader:
		return int64(v.Len())
	case *bytes.Buffer:
		return int64(v.Len())
	case *strings.Reader:
		return int64(v.Len())
	case interface{ Stat() (os.FileInfo, error) }:
		if fi, err := v.Stat(); err == nil && fi.Mode().IsRegular() {
			return fi.Size()
		}
	}
	return 0
}

// projectRows extrapolates the total record count of a partly-read CSV
// from the bytes consumed so far against the reader's total size,
// bounded so a wild hint can never force an absurd reservation. 0 means
// "no projection".
func projectRows(rows int, consumed, total int64) int {
	if rows <= 0 || consumed <= 0 || total <= consumed {
		return 0
	}
	const maxReserve = 1 << 28
	est := int64(rows) * total / consumed
	if est > maxReserve {
		est = maxReserve
	}
	return int(est)
}

// idTable resolves node ids to dense NodeIDs during a streamed load:
// a power-of-two open-addressing table with linear probing, built for
// the loader's two-phase access pattern (pure inserts while reading
// nodes, then pure lookups while reading edges). Compared to a Go map
// it profiles ~2× cheaper here: probes inline, slots carry no pointers
// for the GC to scan, and growing reinserts by the stored hash without
// touching key bytes.
//
// Bulk exporters — including this package's own WriteCSV — emit node
// ids as a fixed prefix plus a dense decimal counter ("n0", "n1", …).
// While every inserted id keeps that shape, the table stays in a dense
// fast path: the id IS the index, so inserts only record key bytes and
// lookups parse the suffix — zero probe slots allocated, zero DRAM
// touches per resolve. The first nonconforming id materializes the
// hash table from the recorded keys and the load degrades gracefully
// to the general path.
type idTable struct {
	mask  uint64
	slots []idSlot
	keys  []keyRef // id per dense NodeID; len(keys) is the entry count
	arena []byte   // key bytes in insertion order, spanned by keys

	tabled bool   // general path: slots are live; dense invariant broken
	prefix string // dense path: id i is prefix+itoa(i); set on first insert
	hint   int    // last reserve() projection, sizes a late materialize
}

// keyRef locates one id's bytes in the arena. Packing keys into one
// flat buffer keeps hit-compares inside a few compact MB instead of
// chasing pointers across every retained CSV row string, and drops the
// loader's retention of those rows. uint32 offsets bound the arena at
// 4 GiB of id bytes — far beyond the int32 NodeID space's reach —
// and insert checks the bound loudly rather than wrapping.
type keyRef struct{ off, n uint32 }

// key returns the id bytes r spans.
func (t *idTable) key(r keyRef) []byte { return t.arena[r.off : r.off+r.n] }

// keyIs reports whether the id at dense index nid is s. The
// string-conversion compare compiles to a length check plus memequal —
// no allocation.
func (t *idTable) keyIs(nid NodeID, s string) bool {
	return string(t.key(t.keys[nid])) == s
}

// idSlot is one 8-byte probe slot (2M-node tables stay L3-sized): the
// low hash bits pick the slot, so the high 32 bits serve as the stored
// discriminator. tag 0 marks an empty slot; live tags are forced
// nonzero. A tag match is only a candidate — the key compare decides.
type idSlot struct {
	tag uint32
	id  NodeID
}

// idHash is FNV-1a; node ids are short, so the byte loop beats the
// fixed overhead of a runtime hash call.
func idHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// idHashBytes is idHash over a byte view (reserve rehashes arena keys).
func idHashBytes(s []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// idTag extracts the discriminator bits of a hash, nonzero so it can
// never read as an empty slot.
func idTag(h uint64) uint32 {
	if t := uint32(h >> 32); t != 0 {
		return t
	}
	return 1
}

// denseK parses id as prefix followed by the canonical decimal k — no
// leading zeros, digits only, int-sized. While the table is dense this
// fully decides membership: every stored id has exactly this shape, so
// anything that fails to parse was never inserted.
func denseK(id, prefix string) (int, bool) {
	if len(id) <= len(prefix) || id[:len(prefix)] != prefix {
		return 0, false
	}
	d := id[len(prefix):]
	if len(d) > 1 && d[0] == '0' {
		return 0, false
	}
	k := 0
	for i := 0; i < len(d); i++ {
		c := d[i]
		if c < '0' || c > '9' || k > (1<<31-1-9)/10 {
			return 0, false
		}
		k = k*10 + int(c-'0')
	}
	return k, true
}

// trimDigits strips the maximal decimal suffix: the remainder is the
// candidate dense prefix of the first inserted id.
func trimDigits(s string) string {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	return s[:i]
}

// appendKey records id's bytes as the next dense entry.
func (t *idTable) appendKey(id string) {
	off := len(t.arena)
	if off+len(id) > int(^uint32(0)) {
		panic("pg: streamed load exceeds 4 GiB of node id bytes")
	}
	t.arena = append(t.arena, id...)
	t.keys = append(t.keys, keyRef{off: uint32(off), n: uint32(len(id))})
}

// sizeSlots grows the probe table to hold n entries at ≤75% load.
// Slots don't keep the index bits of their hash, so reinsertion
// rehashes each key — rare in practice, because the loader pre-sizes
// from the projected row count after the first batch.
func (t *idTable) sizeSlots(n int) {
	want := 16
	for want < n+n/3+1 {
		want <<= 1
	}
	if want <= len(t.slots) {
		return
	}
	old := t.slots
	t.slots = make([]idSlot, want)
	t.mask = uint64(want - 1)
	for _, sl := range old {
		if sl.tag == 0 {
			continue
		}
		i := idHashBytes(t.key(t.keys[sl.id])) & t.mask
		for t.slots[i].tag != 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = sl
	}
}

// materialize leaves the dense fast path: builds the probe table over
// every key recorded so far, after which inserts and lookups take the
// general hashing path. One-time O(n); runs at most once per load.
func (t *idTable) materialize() {
	t.tabled = true
	n := 2*len(t.keys) + 1
	if t.hint > n {
		n = t.hint
	}
	t.sizeSlots(n)
	for nid := range t.keys {
		h := idHashBytes(t.key(t.keys[nid]))
		i := h & t.mask
		for t.slots[i].tag != 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = idSlot{tag: idTag(h), id: NodeID(nid)}
	}
}

// reserve sizes the table for n entries. While dense only the key
// storage grows — no probe slots exist to size; the projection is kept
// as a hint so a later materialize allocates slots once at full size.
func (t *idTable) reserve(n int) {
	if k := len(t.keys); n > k {
		t.keys = slices.Grow(t.keys, n-k)
		if k > 0 {
			if est := len(t.arena) / k * n; est > cap(t.arena) {
				t.arena = slices.Grow(t.arena, est-len(t.arena))
			}
		}
	}
	if n > t.hint {
		t.hint = n
	}
	if t.tabled {
		t.sizeSlots(n)
	}
}

// insert claims id for nid, which must be len(t.keys) (NodeIDs are
// dense and assigned in insertion order). It reports false when the id
// is already present.
func (t *idTable) insert(id string, nid NodeID) bool {
	if !t.tabled {
		if len(t.keys) == 0 {
			t.prefix = strings.Clone(trimDigits(id))
		}
		if k, ok := denseK(id, t.prefix); ok && k == len(t.keys) {
			t.appendKey(id)
			return true
		}
		// A duplicate also lands here (its k is below len(t.keys)):
		// the general path below reports it.
		t.materialize()
	}
	if len(t.keys) >= len(t.slots)-len(t.slots)>>2 {
		t.sizeSlots(2*len(t.keys) + 1)
	}
	h := idHash(id)
	tag := idTag(h)
	i := h & t.mask
	for {
		sl := &t.slots[i]
		if sl.tag == 0 {
			sl.tag, sl.id = tag, nid
			t.appendKey(id)
			return true
		}
		if sl.tag == tag && t.keyIs(sl.id, id) {
			return false
		}
		i = (i + 1) & t.mask
	}
}

// lookup resolves id to its dense NodeID.
func (t *idTable) lookup(id string) (NodeID, bool) {
	if len(t.keys) == 0 {
		return 0, false
	}
	if !t.tabled {
		if k, ok := denseK(id, t.prefix); ok && k < len(t.keys) {
			return NodeID(k), true
		}
		return 0, false
	}
	h := idHash(id)
	tag := idTag(h)
	i := h & t.mask
	for {
		sl := t.slots[i]
		if sl.tag == 0 {
			return 0, false
		}
		if sl.tag == tag && t.keyIs(sl.id, id) {
			return sl.id, true
		}
		i = (i + 1) & t.mask
	}
}

// streamBuilder accumulates a graph as the columnar arrays a Snapshot
// is made of. Memory stays bounded by the output: rows are parsed
// straight off the csv reader into the columns, so no intermediate
// per-row structures outlive a batch.
type streamBuilder struct {
	syms   symbols
	byName idTable

	// Node columns: label per node, flattened sorted property rows.
	nodeLabels  []Sym
	nodeProps   []Prop
	nodePropOff []uint32

	// Edge columns: endpoints and label per edge, flattened properties,
	// and per-node degree counters for the CSR counting sort.
	edgeLabels  []Sym
	edgeSrc     []NodeID
	edgeDst     []NodeID
	edgeProps   []Prop
	edgePropOff []uint32
	outDeg      []uint32
	inDeg       []uint32

	// Run-length label cache: consecutive rows of one label intern once.
	lastLabel string
	lastSym   Sym
}

func newStreamBuilder() *streamBuilder {
	return &streamBuilder{
		nodePropOff: []uint32{0},
		edgePropOff: []uint32{0},
		lastSym:     NoSym,
	}
}

// internLabel interns a node/edge label with a run-length cache.
func (sb *streamBuilder) internLabel(label string) Sym {
	if label != sb.lastLabel || sb.lastSym == NoSym {
		sb.lastLabel, sb.lastSym = label, sb.syms.intern(label)
	}
	return sb.lastSym
}

// reserveNodes grows the node columns and the id table toward the
// projected final row count: one allocation now instead of the
// geometric re-copies (and re-zeroing) of append growth, which profiles
// as the top loader cost at 10⁶ rows. The estimate is only a hint —
// a wrong projection costs slack or leftover growth, never correctness.
func (sb *streamBuilder) reserveNodes(est int) {
	rows := len(sb.nodeLabels)
	if rows == 0 || est <= rows {
		return
	}
	sb.nodeLabels = slices.Grow(sb.nodeLabels, est-rows)
	sb.nodePropOff = slices.Grow(sb.nodePropOff, est+1-len(sb.nodePropOff))
	if estProps := len(sb.nodeProps) / rows * est; estProps > len(sb.nodeProps) {
		sb.nodeProps = slices.Grow(sb.nodeProps, estProps-len(sb.nodeProps))
	}
	sb.byName.reserve(est)
}

// reserveEdges is reserveNodes for the edge columns.
func (sb *streamBuilder) reserveEdges(est int) {
	rows := len(sb.edgeLabels)
	if rows == 0 || est <= rows {
		return
	}
	sb.edgeLabels = slices.Grow(sb.edgeLabels, est-rows)
	sb.edgeSrc = slices.Grow(sb.edgeSrc, est-rows)
	sb.edgeDst = slices.Grow(sb.edgeDst, est-rows)
	sb.edgePropOff = slices.Grow(sb.edgePropOff, est+1-len(sb.edgePropOff))
	if estProps := len(sb.edgeProps) / rows * est; estProps > len(sb.edgeProps) {
		sb.edgeProps = slices.Grow(sb.edgeProps, estProps-len(sb.edgeProps))
	}
}

// addNodeMeta claims the next dense NodeID for id and appends its
// label column entry; the caller appends the property row. The
// duplicate check rides the insert itself, so each node costs one hash
// operation, not two.
func (sb *streamBuilder) addNodeMeta(id, label string, line int) error {
	if !sb.byName.insert(id, NodeID(len(sb.nodeLabels))) {
		return fmt.Errorf("pg: node CSV line %d: duplicate node id %q", line, id)
	}
	sb.nodeLabels = append(sb.nodeLabels, sb.internLabel(label))
	return nil
}

// forEachRecord drives the inline (single-worker) streaming read:
// records are handed to fn with their physical starting line, without
// the batch copies the pipelined path needs (the record slice is
// consumed before the next Read reuses it).
func forEachRecord(cr *csv.Reader, readErr func(line int, err error) error, fn func(rec []string, line int) error) error {
	prevLine := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return readErr(csvErrLine(err, prevLine+1), err)
		}
		line, _ := cr.FieldPos(0)
		prevLine = line
		if err := fn(rec, line); err != nil {
			return err
		}
	}
}

// ctxTick checks ctx once per csvBatchRows rows so cancellation is
// bounded without a per-row atomic load.
func ctxTick(ctx context.Context, row int) error {
	if row%csvBatchRows == 0 {
		return ctx.Err()
	}
	return nil
}

func (sb *streamBuilder) readNodes(ctx context.Context, r io.Reader, size int64) error {
	cr, header, err := openCSV(r)
	if err := checkNodeHeader(header, err); err != nil {
		return err
	}
	cols := newPropCols(&sb.syms, header, 2)

	if csvWorkers() == 1 {
		row := 0
		return forEachRecord(cr, nodeReadErr, func(rec []string, line int) error {
			if err := ctxTick(ctx, row); err != nil {
				return err
			}
			row++
			if row == csvBatchRows {
				sb.reserveNodes(projectRows(row, cr.InputOffset(), size))
			}
			if err := checkNodeRecord(rec, len(cols.names), line); err != nil {
				return err
			}
			if err := sb.addNodeMeta(rec[0], rec[1], line); err != nil {
				return err
			}
			sb.nodeProps = cols.parseRowInto(sb.nodeProps, rec, len(sb.nodeProps))
			sb.nodePropOff = append(sb.nodePropOff, uint32(len(sb.nodeProps)))
			return nil
		})
	}

	parse := func(b rawBatch) seqBatch {
		out := &streamNodeBatch{
			seq:      b.seq,
			lines:    b.lines,
			consumed: b.consumed,
			ids:      make([]string, len(b.rows)),
			labels:   make([]string, len(b.rows)),
			off:      make([]uint32, len(b.rows)+1),
		}
		for i, rec := range b.rows {
			if err := checkNodeRecord(rec, len(cols.names), b.lines[i]); err != nil {
				out.setErr(i, err)
			} else {
				out.ids[i], out.labels[i] = rec[0], rec[1]
				out.props = cols.parseRowInto(out.props, rec, len(out.props))
			}
			out.off[i+1] = uint32(len(out.props))
		}
		return out
	}
	apply := func(pb seqBatch) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		b := pb.(*streamNodeBatch)
		first := len(sb.nodeLabels) == 0
		for i := range b.ids {
			if b.errs != nil && b.errs[i] != nil {
				return b.errs[i]
			}
			if err := sb.addNodeMeta(b.ids[i], b.labels[i], b.lines[i]); err != nil {
				return err
			}
			sb.nodeProps = append(sb.nodeProps, b.props[b.off[i]:b.off[i+1]]...)
			sb.nodePropOff = append(sb.nodePropOff, uint32(len(sb.nodeProps)))
		}
		if first {
			sb.reserveNodes(projectRows(len(b.ids), b.consumed, size))
		}
		return nil
	}
	return readCSVRecords(cr, parse, apply, nodeReadErr)
}

func (sb *streamBuilder) readEdges(ctx context.Context, r io.Reader, size int64) error {
	cr, header, err := openCSV(r)
	if err := checkEdgeHeader(header, err); err != nil {
		return err
	}
	cols := newPropCols(&sb.syms, header, 3)
	sb.lastLabel, sb.lastSym = "", NoSym
	sb.outDeg = make([]uint32, len(sb.nodeLabels))
	sb.inDeg = make([]uint32, len(sb.nodeLabels))

	if csvWorkers() == 1 {
		// Bulk exports are usually grouped by source, so a run-length
		// cache on the endpoint ids spares most of the two map lookups
		// per edge — the id table is the hottest structure of the edge
		// phase at 10⁶ rows.
		var cache endpointCache
		row := 0
		return forEachRecord(cr, edgeReadErr, func(rec []string, line int) error {
			if err := ctxTick(ctx, row); err != nil {
				return err
			}
			row++
			if row == csvBatchRows {
				sb.reserveEdges(projectRows(row, cr.InputOffset(), size))
			}
			if err := checkEdgeRecord(rec, len(cols.names), line); err != nil {
				return err
			}
			src, dst, err := cache.resolve(&sb.byName, rec, line)
			if err != nil {
				return err
			}
			sb.addEdgeMeta(src, dst, rec[2])
			sb.edgeProps = cols.parseRowInto(sb.edgeProps, rec, len(sb.edgeProps))
			sb.edgePropOff = append(sb.edgePropOff, uint32(len(sb.edgeProps)))
			return nil
		})
	}

	// byName is complete and read-only after the node phase, so
	// endpoint resolution runs on the parse workers.
	parse := func(b rawBatch) seqBatch {
		out := &streamEdgeBatch{
			seq:      b.seq,
			consumed: b.consumed,
			srcs:     make([]NodeID, len(b.rows)),
			dsts:     make([]NodeID, len(b.rows)),
			labels:   make([]string, len(b.rows)),
			off:      make([]uint32, len(b.rows)+1),
		}
		var cache endpointCache // per-batch: parse runs on one worker
		for i, rec := range b.rows {
			err := checkEdgeRecord(rec, len(cols.names), b.lines[i])
			if err == nil {
				out.srcs[i], out.dsts[i], err = cache.resolve(&sb.byName, rec, b.lines[i])
			}
			if err != nil {
				out.setErr(i, err)
			} else {
				out.labels[i] = rec[2]
				out.props = cols.parseRowInto(out.props, rec, len(out.props))
			}
			out.off[i+1] = uint32(len(out.props))
		}
		return out
	}
	apply := func(pb seqBatch) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		b := pb.(*streamEdgeBatch)
		first := len(sb.edgeLabels) == 0
		for i := range b.srcs {
			if b.errs != nil && b.errs[i] != nil {
				return b.errs[i]
			}
			sb.addEdgeMeta(b.srcs[i], b.dsts[i], b.labels[i])
			sb.edgeProps = append(sb.edgeProps, b.props[b.off[i]:b.off[i+1]]...)
			sb.edgePropOff = append(sb.edgePropOff, uint32(len(sb.edgeProps)))
		}
		if first {
			sb.reserveEdges(projectRows(len(b.srcs), b.consumed, size))
		}
		return nil
	}
	return readCSVRecords(cr, parse, apply, edgeReadErr)
}

// endpointCache run-length caches edge endpoint resolution: an id equal
// to the previous row's resolves by string compare instead of a hash
// probe of the id table. Misses produce the exact resolveEndpoints
// diagnostics.
type endpointCache struct {
	srcName, dstName string
	src, dst         NodeID
	srcOK, dstOK     bool
}

func (c *endpointCache) resolve(byName *idTable, rec []string, line int) (src, dst NodeID, err error) {
	if c.srcOK && rec[0] == c.srcName {
		src = c.src
	} else {
		var ok bool
		if src, ok = byName.lookup(rec[0]); !ok {
			return 0, 0, fmt.Errorf("pg: edge CSV line %d: unknown source %q", line, rec[0])
		}
		c.srcName, c.src, c.srcOK = rec[0], src, true
	}
	if c.dstOK && rec[1] == c.dstName {
		dst = c.dst
	} else {
		var ok bool
		if dst, ok = byName.lookup(rec[1]); !ok {
			return 0, 0, fmt.Errorf("pg: edge CSV line %d: unknown target %q", line, rec[1])
		}
		c.dstName, c.dst, c.dstOK = rec[1], dst, true
	}
	return src, dst, nil
}

// addEdgeMeta appends one edge's endpoint and label column entries and
// counts degrees for the CSR counting sort. Endpoints were resolved
// through byName, so they are always valid.
func (sb *streamBuilder) addEdgeMeta(src, dst NodeID, label string) {
	sb.edgeLabels = append(sb.edgeLabels, sb.internLabel(label))
	sb.edgeSrc = append(sb.edgeSrc, src)
	sb.edgeDst = append(sb.edgeDst, dst)
	sb.outDeg[src]++
	sb.inDeg[dst]++
}

type streamNodeBatch struct {
	seq      int
	lines    []int
	consumed int64
	ids      []string
	labels   []string
	props    []Prop
	off      []uint32
	errs     []error
}

func (b *streamNodeBatch) seqNo() int { return b.seq }

func (b *streamNodeBatch) setErr(i int, err error) {
	if b.errs == nil {
		b.errs = make([]error, len(b.ids))
	}
	b.errs[i] = err
}

type streamEdgeBatch struct {
	seq      int
	consumed int64
	srcs     []NodeID
	dsts     []NodeID
	labels   []string
	props    []Prop
	off      []uint32
	errs     []error
}

func (b *streamEdgeBatch) seqNo() int { return b.seq }

func (b *streamEdgeBatch) setErr(i int, err error) {
	if b.errs == nil {
		b.errs = make([]error, len(b.srcs))
	}
	b.errs[i] = err
}

// seal finishes the columns into a Graph whose Snapshot is already
// built. The CSR adjacency comes from a counting sort over the edge
// columns (prefix-summed degrees, then a fill in ascending edge-id
// order, which is exactly the order buildSnapshot produces).
//
// The snapshot keeps the builder's columns, and the graph's node and
// edge structs sub-slice the same flat storage with capped capacity
// (sharedCols): appends reallocate and so can never leak into the
// snapshot, while in-place mutations (SetNodeProp overwrite,
// DeleteNodeProp shift) go through Graph.privatize, which bulk-copies
// the columns on the first such write. Loads that are never mutated —
// the dominant validate and serve paths — skip the copies entirely.
func (sb *streamBuilder) seal() *Graph {
	nn, ne := len(sb.nodeLabels), len(sb.edgeLabels)
	if sb.outDeg == nil {
		sb.outDeg = make([]uint32, nn)
		sb.inDeg = make([]uint32, nn)
	}

	outOff := make([]uint32, nn+1)
	inOff := make([]uint32, nn+1)
	for v := 0; v < nn; v++ {
		outOff[v+1] = outOff[v] + sb.outDeg[v]
		inOff[v+1] = inOff[v] + sb.inDeg[v]
	}
	outEdges := make([]EdgeID, ne)
	inEdges := make([]EdgeID, ne)
	outNext, inNext := sb.outDeg, sb.inDeg // reuse the counters as fill cursors
	copy(outNext, outOff[:nn])
	copy(inNext, inOff[:nn])
	for e := 0; e < ne; e++ {
		s, d := sb.edgeSrc[e], sb.edgeDst[e]
		outEdges[outNext[s]] = EdgeID(e)
		outNext[s]++
		inEdges[inNext[d]] = EdgeID(e)
		inNext[d]++
	}

	words := (nn + 63) / 64
	nodePropSet := make([][]uint64, len(sb.syms.names))
	for v := 0; v < nn; v++ {
		for _, p := range sb.nodeProps[sb.nodePropOff[v]:sb.nodePropOff[v+1]] {
			set := nodePropSet[p.Sym]
			if set == nil {
				set = make([]uint64, words)
				nodePropSet[p.Sym] = set
			}
			set[v>>6] |= 1 << (uint(v) & 63)
		}
	}

	g := &Graph{
		nodes:      make([]node, nn),
		edges:      make([]edge, ne),
		syms:       sb.syms,
		epoch:      uint64(nn + ne),
		sharedCols: true,
	}
	gNodeProps := sb.nodeProps
	gEdgeProps := sb.edgeProps
	gOut := outEdges
	gIn := inEdges
	for v := 0; v < nn; v++ {
		pa, pb := sb.nodePropOff[v], sb.nodePropOff[v+1]
		oa, ob := outOff[v], outOff[v+1]
		ia, ib := inOff[v], inOff[v+1]
		g.nodes[v] = node{
			label: sb.nodeLabels[v],
			props: gNodeProps[pa:pb:pb],
			out:   gOut[oa:ob:ob],
			in:    gIn[ia:ib:ib],
		}
	}
	for e := 0; e < ne; e++ {
		pa, pb := sb.edgePropOff[e], sb.edgePropOff[e+1]
		g.edges[e] = edge{
			src:   sb.edgeSrc[e],
			dst:   sb.edgeDst[e],
			label: sb.edgeLabels[e],
			props: gEdgeProps[pa:pb:pb],
		}
	}

	// byLabel via the same counting-sort trick: nodes of one label land
	// contiguously in insertion order, matching incremental AddNode.
	counts := make([]uint32, len(sb.syms.names))
	for _, ls := range sb.nodeLabels {
		counts[ls]++
	}
	lblOff := make([]uint32, len(counts)+1)
	for s := range counts {
		lblOff[s+1] = lblOff[s] + counts[s]
	}
	flat := make([]NodeID, nn)
	next := counts // reuse as fill cursors
	copy(next, lblOff[:len(counts)])
	for v := 0; v < nn; v++ {
		s := sb.nodeLabels[v]
		flat[next[s]] = NodeID(v)
		next[s]++
	}
	g.byLabel = make([][]NodeID, len(sb.syms.names))
	for s := range g.byLabel {
		if a, b := lblOff[s], lblOff[s+1]; a < b {
			g.byLabel[s] = flat[a:b:b]
		}
	}

	g.snap.Store(&Snapshot{
		epoch:       g.epoch,
		liveNodes:   nn,
		liveEdges:   ne,
		symNames:    g.cappedSymNames(),
		nodeLabels:  sb.nodeLabels,
		edgeLabels:  sb.edgeLabels,
		edgeSrc:     sb.edgeSrc,
		edgeDst:     sb.edgeDst,
		outOff:      outOff,
		outEdges:    outEdges,
		inOff:       inOff,
		inEdges:     inEdges,
		nodePropOff: sb.nodePropOff,
		nodeProps:   sb.nodeProps,
		edgePropOff: sb.edgePropOff,
		edgeProps:   sb.edgeProps,
		nodePropSet: nodePropSet,
	})
	return g
}
