package validate

// Scheduler-telemetry and adaptive-chunking tests: the deterministic
// skewed fixture drives real steals through the work-stealing pool, the
// telemetry invariants (per-worker sums, span histogram) are pinned on
// every run, and the feedback loop (EMA convergence, skew halving,
// efficiency-driven worker fallback) is exercised white-box.

import (
	"context"
	"runtime"
	"strconv"
	"testing"
	"time"

	"pgschema/internal/pg"
	"pgschema/internal/values"
)

// skewedGraph is programGraph plus a hub Author whose relatedAuthor
// fan-out dwarfs every other node: the node pass's cost is concentrated
// in the hub's chunk, which is exactly the shape work stealing exists
// for. The hub keeps the graph conformant — all targets distinct, no
// loop.
func skewedGraph(n, hubDegree int) *pg.Graph {
	g := pg.New()
	hub := g.AddNode("Author")
	g.SetNodeProp(hub, "name", values.String("hub"))
	targets := make([]pg.NodeID, hubDegree)
	for i := range targets {
		a := g.AddNode("Author")
		g.SetNodeProp(a, "name", values.String("spoke-"+strconv.Itoa(i)))
		targets[i] = a
		g.MustAddEdge(hub, a, "relatedAuthor")
	}
	for i := 0; i < n; i++ {
		b := g.AddNode("Book")
		g.SetNodeProp(b, "title", values.String("book-"+strconv.Itoa(i)))
		e := g.MustAddEdge(b, targets[i%hubDegree], "author")
		g.SetEdgeProp(e, "since", values.Int(int64(2000+i%20)))
		p := g.AddNode("Publisher")
		g.MustAddEdge(p, b, "published")
	}
	return g
}

// checkStatsInvariants pins the structural telemetry contract: totals
// are the per-worker sums, the span histogram covers every planned
// chunk, and a run that did work has busy time.
func checkStatsInvariants(t *testing.T, st *SchedStats) {
	t.Helper()
	if st == nil {
		t.Fatal("SchedStats requested but Result.Sched is nil")
	}
	if len(st.PerWorker) != st.Workers {
		t.Fatalf("PerWorker has %d entries for %d workers", len(st.PerWorker), st.Workers)
	}
	var busy time.Duration
	chunks, steals := 0, 0
	for i := range st.PerWorker {
		pw := &st.PerWorker[i]
		busy += pw.Busy
		chunks += pw.Chunks
		steals += pw.Steals
		if pw.MaxChunk > st.MaxChunk {
			t.Errorf("worker %d MaxChunk %v exceeds run MaxChunk %v", i, pw.MaxChunk, st.MaxChunk)
		}
	}
	if busy != st.Busy {
		t.Errorf("Busy %v != per-worker sum %v", st.Busy, busy)
	}
	if steals != st.Steals {
		t.Errorf("Steals %d != per-worker sum %d", st.Steals, steals)
	}
	if chunks != st.Chunks {
		t.Errorf("executed chunks %d != planned chunks %d", chunks, st.Chunks)
	}
	hist := 0
	for _, c := range st.SpanHist {
		hist += c
	}
	if hist != st.Chunks {
		t.Errorf("span histogram covers %d chunks, planned %d", hist, st.Chunks)
	}
	if st.Chunks > 0 && st.Busy <= 0 {
		t.Error("run executed chunks but recorded no busy time")
	}
	if st.Wall <= 0 {
		t.Error("no wall time recorded")
	}
}

func TestSchedStatsSequential(t *testing.T) {
	s := build(t, programSchema)
	g := programGraph(300)
	res := Validate(s, g, Options{SchedStats: true, Program: Compile(s)})
	if !res.OK() {
		t.Fatalf("fixture not conformant: %v", res.Violations)
	}
	checkStatsInvariants(t, res.Sched)
	if res.Sched.Workers != 1 {
		t.Errorf("sequential run reports %d workers", res.Sched.Workers)
	}
	if res.Sched.Steals != 0 {
		t.Errorf("sequential run cannot steal, got %d", res.Sched.Steals)
	}
}

func TestSchedStatsSkewedStealsAndTimings(t *testing.T) {
	s := build(t, programSchema)
	g := skewedGraph(4000, 2000)
	p := Compile(s)
	opts := Options{
		Program:         p,
		Workers:         4,
		ElementSharding: true,
		SchedStats:      true,
	}
	// Steal counts depend on goroutine interleaving, so the hard
	// assertion is over a handful of attempts: with the hub node's cost
	// concentrated in one segment, a run where every worker only ever
	// drained its own segment is the exception, not the rule.
	stole := false
	for attempt := 0; attempt < 20; attempt++ {
		res := Validate(s, g, opts)
		if !res.OK() {
			t.Fatalf("skewed fixture not conformant: %v", res.Violations)
		}
		checkStatsInvariants(t, res.Sched)
		if res.Sched.Workers != 4 {
			t.Fatalf("run used %d workers, want 4", res.Sched.Workers)
		}
		if res.Sched.Chunks < 8 {
			t.Fatalf("element sharding planned only %d chunks", res.Sched.Chunks)
		}
		if res.Sched.MaxChunk <= 0 {
			t.Fatal("no per-chunk wall time recorded")
		}
		if res.Sched.Steals > 0 {
			stole = true
			break
		}
	}
	if !stole {
		t.Error("no steals in 20 runs over the skewed fixture")
	}
}

// TestAdaptiveSpanFeedback drives the planner's feedback loop directly:
// chunk spans derive from the observed per-element cost, halve under
// recorded skew, and converge under the EMA as repeated observations
// agree.
func TestAdaptiveSpanFeedback(t *testing.T) {
	s := build(t, programSchema)
	p := Compile(s)
	const bound, workers = 1 << 20, 4

	// No feedback yet: the planner falls back to the fixed split.
	if got, want := adaptiveSpan(taskNodePass, bound, workers, p.sched.Load()), defaultSpan(bound, workers); got != want {
		t.Fatalf("span without feedback = %d, want default %d", got, want)
	}

	// 100ns/elem observed → target span = targetChunkNs/100.
	obs := &schedFeedback{}
	obs.nsPerElem[taskNodePass] = 100
	p.noteSched(obs)
	want := int(targetChunkNs / 100)
	if got := adaptiveSpan(taskNodePass, bound, workers, p.sched.Load()); got != want {
		t.Fatalf("span after first observation = %d, want %d", got, want)
	}

	// EMA convergence: repeated 400ns/elem observations pull the span
	// toward targetChunkNs/400 geometrically.
	for i := 0; i < 12; i++ {
		obs := &schedFeedback{}
		obs.nsPerElem[taskNodePass] = 400
		p.noteSched(obs)
	}
	got := adaptiveSpan(taskNodePass, bound, workers, p.sched.Load())
	want = int(targetChunkNs / 400)
	if diff := got - want; diff < -want/10 || diff > want/10 {
		t.Fatalf("span did not converge: got %d, want ~%d", got, want)
	}

	// Recorded skew above the threshold halves the span.
	skewed := &schedFeedback{}
	skewed.nsPerElem[taskNodePass] = 400
	skewed.skew[taskNodePass] = 2 * skewHalveThreshold // EMA with prior skew 0 lands above threshold
	p.noteSched(skewed)
	fb := p.sched.Load()
	if fb.skew[taskNodePass] <= skewHalveThreshold {
		t.Fatalf("merged skew %.2f not above threshold", fb.skew[taskNodePass])
	}
	whole := int(targetChunkNs / fb.nsPerElem[taskNodePass])
	if got := adaptiveSpan(taskNodePass, bound, workers, fb); got != whole/2 {
		t.Fatalf("skewed span = %d, want halved %d", got, whole/2)
	}

	// The span never collapses below the floor or above the
	// keep-everyone-busy ceiling.
	tiny := &schedFeedback{}
	tiny.nsPerElem[taskNodePass] = 1e9
	for i := 0; i < 20; i++ {
		p.noteSched(tiny)
	}
	if got := adaptiveSpan(taskNodePass, bound, workers, p.sched.Load()); got != minChunkSpan {
		t.Fatalf("span floor: got %d, want %d", got, minChunkSpan)
	}
	cheap := &schedFeedback{}
	cheap.nsPerElem[taskNodePass] = 1e-6
	for i := 0; i < 40; i++ {
		p.noteSched(cheap)
	}
	if got, max := adaptiveSpan(taskNodePass, bound, workers, p.sched.Load()), bound/(2*workers); got > max {
		t.Fatalf("span ceiling: got %d, max %d", got, max)
	}
}

// TestAutotuneWorkersFallback pins the efficiency fallback: a program
// whose runs measured poor parallel efficiency resolves an autotuned
// (Workers == 0) request down toward sequential; explicit requests and
// efficient programs are untouched.
func TestAutotuneWorkersFallback(t *testing.T) {
	s := build(t, programSchema)

	fresh := Compile(s)
	if got := fresh.autotuneWorkers(8); got != 8 {
		t.Errorf("no feedback: autotune changed workers to %d", got)
	}

	good := Compile(s)
	good.noteSched(&schedFeedback{efficiency: 0.9})
	if got := good.autotuneWorkers(8); got != 8 {
		t.Errorf("efficient program: autotune changed workers to %d", got)
	}

	bad := Compile(s)
	for i := 0; i < 10; i++ {
		bad.noteSched(&schedFeedback{efficiency: 0.25})
	}
	got := bad.autotuneWorkers(8)
	if got >= 8 || got < 1 {
		t.Errorf("inefficient program: autotune(8) = %d, want in [1, 8)", got)
	}

	awful := Compile(s)
	for i := 0; i < 10; i++ {
		awful.noteSched(&schedFeedback{efficiency: 0.01})
	}
	if got := awful.autotuneWorkers(8); got != 1 {
		t.Errorf("near-zero efficiency: autotune(8) = %d, want 1", got)
	}
}

// TestParallelCancellationNoLeak cancels a parallel validation and
// checks both the Incomplete contract and that the worker pool fully
// drains — no goroutine outlives its Run.
func TestParallelCancellationNoLeak(t *testing.T) {
	s := build(t, programSchema)
	g := skewedGraph(4000, 2000)
	p := Compile(s)
	before := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: every chunk claim sees it
		res := ValidateContext(ctx, s, g, Options{
			Program:         p,
			Workers:         4,
			ElementSharding: true,
		})
		if !res.Incomplete {
			t.Fatal("cancelled run not marked Incomplete")
		}
	}

	// The pool joins before ValidateContext returns; give the runtime a
	// few scheduling quanta to retire exiting goroutines.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
