package validate_test

// Differential coverage for validate-on-ingest: for randomized schemas,
// graphs, and injected faults, streaming a graph out of CSV and
// validating it in the same materialization must emit the byte-identical
// violation set as the two-phase ReadCSV-then-Validate path, under every
// mode and representative engine configurations.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"pgschema/internal/gen"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/validate"
)

// graphCSV renders a graph to the two-file CSV layout both loaders read.
func graphCSV(t *testing.T, g *pg.Graph) (nodes, edges string) {
	t.Helper()
	var nb, eb bytes.Buffer
	if err := g.WriteCSV(&nb, &eb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return nb.String(), eb.String()
}

// assertStreamEquivalence checks that ValidateStream over the CSV form
// of g matches ReadCSV-then-Validate byte-for-byte across modes and
// engine shapes.
func assertStreamEquivalence(t *testing.T, s *schema.Schema, g *pg.Graph, label string) {
	t.Helper()
	nodes, edges := graphCSV(t, g)
	prog := validate.Compile(s)

	configs := []struct {
		name string
		set  func(*validate.Options)
	}{
		{"seq", func(o *validate.Options) {}},
		{"par4+sharding", func(o *validate.Options) { o.Workers = 4; o.ElementSharding = true }},
		{"precompiled", func(o *validate.Options) { o.Program = prog }},
	}
	for _, m := range diffModes {
		for _, cfg := range configs {
			opts := validate.Options{Mode: m.mode}
			cfg.set(&opts)

			twoPhase, err := pg.ReadCSV(strings.NewReader(nodes), strings.NewReader(edges))
			if err != nil {
				t.Fatalf("%s: ReadCSV: %v", label, err)
			}
			want := renderViolations(validate.Validate(s, twoPhase, opts))

			res, sg, err := validate.ValidateStream(context.Background(), s,
				strings.NewReader(nodes), strings.NewReader(edges), opts)
			if err != nil {
				t.Fatalf("%s: ValidateStream: %v", label, err)
			}
			if sg == nil || sg.NumNodes() != twoPhase.NumNodes() || sg.NumEdges() != twoPhase.NumEdges() {
				t.Fatalf("%s: streamed graph shape differs", label)
			}
			if got := renderViolations(res); got != want {
				t.Errorf("%s: mode %s, cfg %s: streamed violations diverge:\n--- two-phase ---\n%s--- streamed ---\n%s",
					label, m.name, cfg.name, want, got)
			}
		}
	}
}

// TestDifferentialStreamIngest is the randomized streaming differential:
// seeds × injected faults over the directive-complete schema, plus
// random schemas, all asserting two-phase/streamed byte-identity.
func TestDifferentialStreamIngest(t *testing.T) {
	s := buildDiff(t, diffSchema)
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base, err := gen.Conformant(s, gen.Config{Seed: seed, NodesPerType: 6})
			if err != nil {
				t.Fatalf("conformant: %v", err)
			}
			assertStreamEquivalence(t, s, base, "clean graph")
			for _, rule := range validate.AllRules {
				g := base.Clone()
				desc, err := gen.Inject(s, g, rule, seed)
				if err != nil {
					t.Fatalf("inject %s: %v", rule, err)
				}
				assertStreamEquivalence(t, s, g, fmt.Sprintf("inject %s (%s)", rule, desc))
			}
		})
	}

	t.Run("random schemas", func(t *testing.T) {
		for seed := int64(1); seed <= 4; seed++ {
			s, src, err := gen.RandomSchema(gen.SchemaConfig{Seed: seed, Unions: seed%2 == 0})
			if err != nil {
				t.Fatalf("random schema: %v", err)
			}
			base, err := gen.Conformant(s, gen.Config{Seed: seed, NodesPerType: 8})
			if err != nil {
				t.Fatalf("conformant for schema:\n%s\nerror: %v", src, err)
			}
			assertStreamEquivalence(t, s, base, fmt.Sprintf("random schema %d", seed))
			for _, rule := range validate.AllRules {
				g := base.Clone()
				if _, err := gen.Inject(s, g, rule, seed); err != nil {
					continue // schema offers no way to violate this rule
				}
				assertStreamEquivalence(t, s, g, fmt.Sprintf("random schema %d inject %s", seed, rule))
			}
		}
	})
}

// TestStreamValidateSmoke is the make-check streaming smoke case: a
// mid-size generated graph streamed from CSV and validated on ingest,
// in one pass, with violations matching the two-phase result.
func TestStreamValidateSmoke(t *testing.T) {
	s := buildDiff(t, diffSchema)
	base, err := gen.Conformant(s, gen.Config{Seed: 42, NodesPerType: 400})
	if err != nil {
		t.Fatalf("conformant: %v", err)
	}
	if _, err := gen.Inject(s, base, validate.AllRules[0], 42); err != nil {
		t.Fatalf("inject: %v", err)
	}
	nodes, edges := graphCSV(t, base)

	res, g, err := validate.ValidateStream(context.Background(), s,
		strings.NewReader(nodes), strings.NewReader(edges),
		validate.Options{Workers: 4, ElementSharding: true})
	if err != nil {
		t.Fatalf("ValidateStream: %v", err)
	}
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("smoke graph came back empty")
	}
	if res.OK() {
		t.Fatal("injected fault not reported by streaming validation")
	}

	twoPhase, err := pg.ReadCSV(strings.NewReader(nodes), strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	want := renderViolations(validate.Validate(s, twoPhase, validate.Options{Workers: 4, ElementSharding: true}))
	if got := renderViolations(res); got != want {
		t.Fatalf("streamed smoke violations diverge:\n--- two-phase ---\n%s--- streamed ---\n%s", want, got)
	}
}

// TestValidateStreamLoadError pins that loader diagnostics surface
// through ValidateStream unchanged, with no result and no graph.
func TestValidateStreamLoadError(t *testing.T) {
	s := buildDiff(t, diffSchema)
	res, g, err := validate.ValidateStream(context.Background(), s,
		strings.NewReader("id,label\nu0,Author\nu0,Author\n"),
		strings.NewReader("source,target,label\n"), validate.Options{})
	if res != nil || g != nil {
		t.Fatal("load error must not produce a result or graph")
	}
	want := `pg: node CSV line 3: duplicate node id "u0"`
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %s", err, want)
	}
}

// TestValidateStreamCancel pins context propagation through the fused
// load+validate path.
func TestValidateStreamCancel(t *testing.T) {
	s := buildDiff(t, diffSchema)
	base, err := gen.Conformant(s, gen.Config{Seed: 7, NodesPerType: 50})
	if err != nil {
		t.Fatal(err)
	}
	nodes, edges := graphCSV(t, base)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := validate.ValidateStream(ctx, s,
		strings.NewReader(nodes), strings.NewReader(edges), validate.Options{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
