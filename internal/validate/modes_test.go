package validate

import (
	"math/rand"
	"testing"

	"pgschema/internal/pg"
	"pgschema/internal/values"
)

// TestWeakSubsetOfStrong: on arbitrarily mutated graphs, the violations
// reported in Weak mode are exactly the WS-rule subset of the Strong-mode
// violations (Definition 5.3 extends Definition 5.1 without altering it).
func TestWeakSubsetOfStrong(t *testing.T) {
	s := build(t, bookSchema)
	for seed := int64(0); seed < 20; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		g := bookGraph()
		for i := 0; i < 10; i++ {
			applyRandomMutation(g, rnd)
		}
		weak := Validate(s, g, Options{Mode: Weak})
		strong := Validate(s, g, Options{Mode: Strong})
		var strongWS []Violation
		for _, v := range strong.Violations {
			switch v.Rule {
			case WS1, WS2, WS3, WS4:
				strongWS = append(strongWS, v)
			}
		}
		if len(weak.Violations) != len(strongWS) {
			t.Fatalf("seed %d: weak %d vs strong-WS %d", seed, len(weak.Violations), len(strongWS))
		}
		for i := range strongWS {
			if weak.Violations[i] != strongWS[i] {
				t.Fatalf("seed %d: violation %d differs", seed, i)
			}
		}
		// Directives mode likewise.
		dir := Validate(s, g, Options{Mode: Directives})
		var strongDS []Violation
		for _, v := range strong.Violations {
			switch v.Rule {
			case DS1, DS2, DS3, DS4, DS5, DS6, DS7:
				strongDS = append(strongDS, v)
			}
		}
		if len(dir.Violations) != len(strongDS) {
			t.Fatalf("seed %d: directives %d vs strong-DS %d", seed, len(dir.Violations), len(strongDS))
		}
	}
}

// TestDS4UnionTarget: @requiredForTarget through a union constrains every
// member type's nodes.
func TestDS4UnionTarget(t *testing.T) {
	s := build(t, `
		union Doc = Memo | Report
		type Registry { tracks: [Doc] @requiredForTarget }
		type Memo { x: Int }
		type Report { y: Int }`)
	g := pg.New()
	reg := g.AddNode("Registry")
	m := g.AddNode("Memo")
	r := g.AddNode("Report")
	g.MustAddEdge(reg, m, "tracks")
	// The Report lacks an incoming tracks edge: DS4.
	check(t, s, g, Options{}, DS4)
	g.MustAddEdge(reg, r, "tracks")
	check(t, s, g, Options{})
}

// TestDS3InterfaceSources: @uniqueForTarget declared on an interface
// counts incoming edges from ALL implementing types together.
func TestDS3InterfaceSources(t *testing.T) {
	s := build(t, `
		interface Owner { owns: [Asset] @uniqueForTarget }
		type Person implements Owner { owns: [Asset] }
		type Company implements Owner { owns: [Asset] }
		type Asset { x: Int }`)
	g := pg.New()
	p := g.AddNode("Person")
	c := g.AddNode("Company")
	a := g.AddNode("Asset")
	g.MustAddEdge(p, a, "owns")
	check(t, s, g, Options{})
	g.MustAddEdge(c, a, "owns") // second incoming from a ⊑Owner source
	check(t, s, g, Options{}, DS3)
}

// TestMaxViolationsParallel: the cap holds under the parallel engine too.
func TestMaxViolationsParallel(t *testing.T) {
	s := build(t, sessionSchema)
	g := pg.New()
	for i := 0; i < 200; i++ {
		g.AddNode("Ghost")
	}
	res := Validate(s, g, Options{MaxViolations: 7, Workers: 4})
	if len(res.Violations) != 7 || !res.Truncated {
		t.Errorf("got %d violations, truncated=%v", len(res.Violations), res.Truncated)
	}
}

// TestEnumPropertyValues: enum-typed attributes accept declared values in
// both Enum and String representation and reject everything else.
func TestEnumPropertyValues(t *testing.T) {
	s := build(t, `
		enum Status { OPEN CLOSED }
		type Ticket { status: Status! @required history: [Status!] }`)
	g := pg.New()
	tk := g.AddNode("Ticket")
	g.SetNodeProp(tk, "status", values.Enum("OPEN"))
	g.SetNodeProp(tk, "history", values.List(values.String("CLOSED"), values.Enum("OPEN")))
	check(t, s, g, Options{})
	g.SetNodeProp(tk, "status", values.String("REOPENED"))
	check(t, s, g, Options{}, WS1)
	g.SetNodeProp(tk, "status", values.Int(1))
	check(t, s, g, Options{}, WS1)
}
