package validate

import (
	"fmt"
	"testing"
	"time"

	"pgschema/internal/pg"
	"pgschema/internal/values"
)

// pairScanGraph builds a graph with several WS4 and DS3 violations whose
// witnessing edges are spread across edge ids, so that — before the
// shard-by-dedup-key fix — ElementSharding put different first edges of
// one (source, field) pair into different shards and each shard emitted
// the violation again.
func pairScanGraph() *pg.Graph {
	g := pg.New()
	var books []pg.NodeID
	for i := 0; i < 4; i++ {
		b := g.AddNode("Book")
		g.SetNodeProp(b, "title", values.String(fmt.Sprintf("b%d", i)))
		books = append(books, b)
	}
	var authors []pg.NodeID
	for i := 0; i < 4; i++ {
		authors = append(authors, g.AddNode("Author"))
	}
	for _, b := range books {
		g.MustAddEdge(b, authors[0], "author")
	}
	p := g.AddNode("Publisher")
	for _, b := range books {
		g.MustAddEdge(p, b, "published")
	}
	// WS4: every author holds three favoriteBook edges (non-list field)
	// with consecutive edge ids, so the witnessing pairs of one source
	// fall into different shards under id-based edge sharding.
	for _, a := range authors {
		for i := 0; i < 3; i++ {
			g.MustAddEdge(a, books[i], "favoriteBook")
		}
	}
	// DS3: books 0 and 1 each gain three incoming @uniqueForTarget
	// "contains" edges from distinct series, again interleaved.
	var series []pg.NodeID
	for i := 0; i < 3; i++ {
		series = append(series, g.AddNode("BookSeries"))
	}
	for _, s := range series {
		g.MustAddEdge(s, books[0], "contains")
		g.MustAddEdge(s, books[1], "contains")
	}
	return g
}

// TestNaivePairScanSharding is the regression test for the duplicate
// violations the naive scans emitted under ElementSharding: the naive
// engine at Workers: 4 must produce exactly the sequential naive result,
// which in turn must match the indexed engine per rule.
func TestNaivePairScanSharding(t *testing.T) {
	s := build(t, bookSchema)
	g := pairScanGraph()

	naiveSeq := Validate(s, g, Options{NaivePairScan: true})
	naivePar := Validate(s, g, Options{NaivePairScan: true, Workers: 4, ElementSharding: true})
	if len(naivePar.Violations) != len(naiveSeq.Violations) {
		t.Fatalf("naive sharded: %d violations, naive sequential: %d\nsharded: %v\nsequential: %v",
			len(naivePar.Violations), len(naiveSeq.Violations), naivePar.Violations, naiveSeq.Violations)
	}
	for i := range naiveSeq.Violations {
		if naivePar.Violations[i] != naiveSeq.Violations[i] {
			t.Errorf("violation %d differs:\nsharded:    %v\nsequential: %v",
				i, naivePar.Violations[i], naiveSeq.Violations[i])
		}
	}

	indexed := Validate(s, g, Options{Workers: 4, ElementSharding: true})
	ni, nn := indexed.ByRule(), naivePar.ByRule()
	for _, rule := range []Rule{WS4, DS1, DS3} {
		if len(ni[rule]) != len(nn[rule]) {
			t.Errorf("rule %s: indexed %d vs naive sharded %d\nindexed: %v\nnaive: %v",
				rule, len(ni[rule]), len(nn[rule]), ni[rule], nn[rule])
		}
	}
	if len(nn[WS4]) != 4 {
		t.Errorf("expected one WS4 violation per author, got %d: %v", len(nn[WS4]), nn[WS4])
	}
	if len(nn[DS3]) != 2 {
		t.Errorf("expected one DS3 violation per over-contained book, got %d: %v", len(nn[DS3]), nn[DS3])
	}
}

// TestParallelRuleTimings covers the CollectTimings extension to the
// parallel engine: every requested rule gets a RuleTime entry whether the
// tasks are whole rules or (rule, shard) pairs.
func TestParallelRuleTimings(t *testing.T) {
	s := build(t, bookSchema)
	g := pairScanGraph()
	for _, sharding := range []bool{false, true} {
		res := Validate(s, g, Options{Workers: 4, ElementSharding: sharding, CollectTimings: true})
		if res.RuleTime == nil {
			t.Fatalf("sharding=%v: RuleTime is nil with CollectTimings set", sharding)
		}
		if len(res.RuleTime) != len(AllRules) {
			t.Errorf("sharding=%v: timings for %d rules, want %d: %v",
				sharding, len(res.RuleTime), len(AllRules), res.RuleTime)
		}
		var total time.Duration
		for _, d := range res.RuleTime {
			if d < 0 {
				t.Errorf("sharding=%v: negative duration in %v", sharding, res.RuleTime)
			}
			total += d
		}
		if total <= 0 {
			t.Errorf("sharding=%v: all rule durations are zero", sharding)
		}
	}
}

// TestTruncatedExactSequential pins the repaired Truncated contract: in
// sequential mode the flag is true iff violations beyond the cap exist —
// including when the cap fills exactly at a rule boundary and only a
// later rule holds the overflow.
func TestTruncatedExactSequential(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	g.DeleteNodeProp(u, "login") // one DS5 violation
	g.AddNode("Ghost")           // one SS1 violation, checked after DS5

	full := Validate(s, g, Options{})
	if len(full.Violations) != 2 || full.Truncated {
		t.Fatalf("setup: want exactly 2 violations untruncated, got %v (truncated=%v)",
			full.Violations, full.Truncated)
	}

	// Cap fills at the DS5/SS1 rule boundary; the SS1 violation must
	// still flip Truncated.
	capped := Validate(s, g, Options{MaxViolations: 1})
	if len(capped.Violations) != 1 || !capped.Truncated {
		t.Errorf("max=1: got %d violations, truncated=%v; want 1, true",
			len(capped.Violations), capped.Truncated)
	}

	// Cap equal to the exact violation count must not report truncation.
	exact := Validate(s, g, Options{MaxViolations: 2})
	if len(exact.Violations) != 2 || exact.Truncated {
		t.Errorf("max=2: got %d violations, truncated=%v; want 2, false",
			len(exact.Violations), exact.Truncated)
	}
}
