package validate

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

// A Program is a validation program compiled from a schema once and
// reused across runs. It precomputes everything about the schema the
// fused engine needs — a dense name table over the schema's type and
// field-base names, the per-label field classification, the directive
// obligations in declaration order, and the subtype-closure rows — so
// that a Validate call only has to bind the program to the graph's
// interned symbols instead of rebuilding string-keyed caches.
//
// A Program is immutable after Compile and safe for concurrent use. The
// per-graph binding is cached inside the Program keyed by (graph,
// epoch): repeated validation of an unchanged graph skips the bind step
// entirely, and any mutation of the graph (which bumps pg.Graph.Epoch)
// invalidates the cache on the next run.
type Program struct {
	s *schema.Schema

	// nameID assigns dense IDs to every name a rule can ask the subtype
	// relation about: declared type names and field base-type names.
	nameID map[string]int32
	names  []string

	// labels holds the compiled per-label lookup table for every
	// declared type name (graph labels resolve through it at bind time).
	labels map[string]*labelProgram

	// reqTargets lists the @requiredForTarget declarations in
	// declaration order (types sorted by name, fields in source order) —
	// the order ds4 quantifies in, so duplicate declarations keep their
	// multiplicity. DS4 is the one target-quantified rule without a
	// per-label bucket: its element space is the target-node enumeration
	// of each declaration, resolved at bind time.
	reqTargets []*schema.FieldDef

	compileTime  time.Duration
	nFields      int
	nObligations int

	bound atomic.Pointer[binding]

	// sched holds the scheduler feedback of previous runs over this
	// program — smoothed per-element pass costs, observed chunk skew,
	// and measured parallel efficiency. The adaptive chunk planner sizes
	// the next run's chunks from it, and worker autotuning falls back
	// toward sequential when the measured efficiency says parallelism
	// is not paying (single-core containers). Epoch changes do not reset
	// it: per-element costs are a property of the schema and kernels,
	// not of one graph state.
	sched atomic.Pointer[schedFeedback]

	// scratchPool and runPool recycle per-worker scratch and the
	// parallel run's worker states (violation buffers, emit closures)
	// across runs, so a parallel run allocates per worker only its
	// goroutine — the flat-allocation contract the AllocsPerRun tests
	// pin.
	scratchPool sync.Pool
	runPool     sync.Pool
	chunkPool   sync.Pool
}

// labelProgram is the schema-side compilation of one declared type
// name: field classification in source order, the subtype row over the
// program's name table, and the directive obligations that apply to
// nodes of this label, in declaration order.
type labelProgram struct {
	td     *schema.TypeDef
	fields []compiledField
	sub    []bool // indexed by nameID: sub[n] ⇔ label ⊑S names[n]

	srcRel   []compiledSrc      // DS1/DS2/DS6 source-side obligations
	reqAttrs []*schema.FieldDef // DS5 @required attributes
	uftIn    []compiledUft      // DS3 target-side @uniqueForTarget

	// oblig is the label's obligation mask (ob* bits in fused.go): which
	// rule groups can possibly fire for a node of this label. The fused
	// node kernel ANDs it with the run's want mask, so a node whose
	// label owes nothing to the requested rules costs two loads and one
	// branch.
	oblig obligMask
}

// compiledField classifies one declared field of a label.
type compiledField struct {
	fd     *schema.FieldDef
	isAttr bool
	baseID int32 // nameID of fd.Type.Base()

	// check is the compiled valuesW(fd.Type) predicate for attribute
	// fields (WS1); args the compiled argument table for relationship
	// fields (SS3/WS2). Exactly one is non-nil for a field with
	// anything to check.
	check func(values.Value) bool
	args  []compiledArg
}

// compiledArg is one declared edge-property argument with its
// membership predicate compiled (valuesW(arg.Type)).
type compiledArg struct {
	arg   *schema.ArgDef
	check func(values.Value) bool
}

// compiledSrc is one relationship declaration with source-side
// directive flags resolved at compile time.
type compiledSrc struct {
	fd                          *schema.FieldDef
	distinct, noLoops, required bool
}

// compiledUft is one @uniqueForTarget declaration applicable to a label
// on the target side.
type compiledUft struct {
	fd      *schema.FieldDef
	ownerID int32 // nameID of fd.Owner, for the source-subtype test
}

// Compile builds the validation program for a schema. The schema must
// have been built by schema.Build and must not change afterwards.
func Compile(s *schema.Schema) *Program {
	p, _ := CompileContext(context.Background(), s)
	return p
}

// CompileContext is Compile under a context: compilation checks for
// cancellation between types (the unit of compilation work) and returns
// the context's error if it fires. A background context never errors,
// so Compile is exactly the historical behavior.
func CompileContext(ctx context.Context, s *schema.Schema) (*Program, error) {
	start := time.Now()
	p := &Program{
		s:      s,
		nameID: make(map[string]int32),
		labels: make(map[string]*labelProgram),
	}
	intern := func(name string) int32 {
		if id, ok := p.nameID[name]; ok {
			return id
		}
		id := int32(len(p.names))
		p.nameID[name] = id
		p.names = append(p.names, name)
		return id
	}

	// The name table covers every name a fused check can pass as the
	// supertype: declared type names (DS3/DS4 owners, DS7 types) and the
	// base type of every field (WS3, including attribute fields whose
	// base is a scalar). s.Types() is sorted, so IDs are deterministic.
	for _, td := range s.Types() {
		intern(td.Name)
		for _, f := range td.Fields {
			intern(f.Type.Base())
		}
	}

	// Per-label field classification and subtype rows. The subtype rows
	// are the bulk of compile time (labels × names), so this loop hosts
	// the cancellation checks.
	for _, td := range s.Types() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lp := &labelProgram{td: td}
		for _, f := range td.Fields {
			cf := compiledField{
				fd:     f,
				isAttr: s.IsAttribute(f),
				baseID: p.nameID[f.Type.Base()],
			}
			if cf.isAttr {
				cf.check = s.MemberFuncW(f.Type)
			} else if len(f.Args) > 0 {
				cf.args = make([]compiledArg, len(f.Args))
				for i, a := range f.Args {
					cf.args[i] = compiledArg{arg: a, check: s.MemberFuncW(a.Type)}
				}
			}
			lp.fields = append(lp.fields, cf)
		}
		p.nFields += len(lp.fields)
		lp.sub = make([]bool, len(p.names))
		for i, n := range p.names {
			lp.sub[i] = s.SubtypeNamed(td.Name, n)
		}
		p.labels[td.Name] = lp
	}

	// Directive-bearing declarations, bucketed per applicable label in
	// declaration order (types sorted by name, fields in source order) —
	// the same order the rule-by-rule sweeps quantify in, so duplicate
	// declarations (object type + interface) keep their multiplicity.
	for _, td := range s.Types() {
		if td.Kind != schema.Object && td.Kind != schema.Interface {
			continue
		}
		for _, f := range td.Fields {
			switch {
			case s.IsRelationship(f):
				d := compiledSrc{
					fd:       f,
					distinct: schema.HasDirective(f.Directives, schema.DirDistinct),
					noLoops:  schema.HasDirective(f.Directives, schema.DirNoLoops),
					required: schema.HasDirective(f.Directives, schema.DirRequired),
				}
				if d.distinct || d.noLoops || d.required {
					for _, l := range s.ConcreteTargets(f.Owner) {
						p.labels[l].srcRel = append(p.labels[l].srcRel, d)
						p.nObligations++
					}
				}
				if schema.HasDirective(f.Directives, schema.DirUniqueForTarget) {
					u := compiledUft{fd: f, ownerID: p.nameID[f.Owner]}
					for _, l := range s.ConcreteTargets(f.Type.Base()) {
						p.labels[l].uftIn = append(p.labels[l].uftIn, u)
						p.nObligations++
					}
				}
				if schema.HasDirective(f.Directives, schema.DirRequiredForTarget) {
					p.reqTargets = append(p.reqTargets, f)
					p.nObligations++
				}
			case s.IsAttribute(f):
				if schema.HasDirective(f.Directives, schema.DirRequired) {
					for _, l := range s.ConcreteTargets(f.Owner) {
						p.labels[l].reqAttrs = append(p.labels[l].reqAttrs, f)
						p.nObligations++
					}
				}
			}
		}
	}
	// Obligation masks, computed after the directive buckets are final.
	for _, lp := range p.labels {
		if lp.td.Kind != schema.Object {
			lp.oblig |= obSS1
		}
		for _, cf := range lp.fields {
			if !cf.fd.Type.IsList() {
				lp.oblig |= obWS4 // a second same-label edge would violate
				break
			}
		}
		for i := range lp.srcRel {
			d := &lp.srcRel[i]
			if d.distinct {
				lp.oblig |= obDS1
			}
			if d.noLoops {
				lp.oblig |= obDS2
			}
			if d.required {
				lp.oblig |= obDS6
			}
		}
		if len(lp.uftIn) > 0 {
			lp.oblig |= obDS3
		}
		if len(lp.reqAttrs) > 0 {
			lp.oblig |= obDS5
		}
	}
	p.compileTime = time.Since(start)
	return p, nil
}

// Schema returns the schema the program was compiled from.
func (p *Program) Schema() *schema.Schema { return p.s }

// ProgramStats summarizes a compiled program for observability.
type ProgramStats struct {
	// Types is the number of declared type names compiled.
	Types int
	// Names is the size of the interned name table (type names plus
	// field base-type names).
	Names int
	// Fields is the number of classified (label, field) pairs.
	Fields int
	// Obligations is the number of directive obligations bucketed onto
	// labels, counted per applicable label.
	Obligations int
	// CompileTime is the wall-clock duration of Compile.
	CompileTime time.Duration
}

// Stats reports the program's size and compile time.
func (p *Program) Stats() ProgramStats {
	return ProgramStats{
		Types:       len(p.labels),
		Names:       len(p.names),
		Fields:      p.nFields,
		Obligations: p.nObligations,
		CompileTime: p.compileTime,
	}
}

// binding joins a compiled program to one graph at one epoch: label
// lookup tables re-indexed by the graph's interned Syms, plus the
// (lazily built) per-type node enumerations. Its visible state is
// immutable once built; the lazy parts are materialized at most once
// under sync.Once guards and must be first requested while the graph is
// still at the binding's epoch — which every caller guarantees, since a
// validation run holds the graph un-mutated for its duration.
type binding struct {
	p        *Program
	g        *pg.Graph
	epoch    uint64
	symCount int

	// snap is the graph's columnar snapshot at the binding's epoch. The
	// fused passes scan its flat label/adjacency/property arrays instead
	// of chasing node and edge structs through the mutable store; it is
	// shared with the graph's own cache, so binding to an unchanged
	// graph never rebuilds it.
	snap *pg.Snapshot

	// labels is indexed by pg.Sym; non-nil exactly for the syms that
	// are labels of live nodes. labelNames records the sorted label set
	// the table was built for, so bindTo can prove a later epoch's
	// binding may share it.
	labels     []*boundLabel
	labelNames []string

	// nodesOf caches nodesOfType for every named type of the schema. It
	// is built on first use (guarded by nodesOnce): full fused runs need
	// it only for DS4/DS7, and incremental revalidation not at all — a
	// delta-sized run must not pay an O(V) enumeration rebuild.
	nodesOnce sync.Once
	nodesOf   map[string][]pg.NodeID

	// reqTargets is Program.reqTargets bound to the graph: field-name
	// syms, owner nameIDs, and the per-declaration target-label sym set
	// (targetSyms) are bound eagerly; each declaration's target-node
	// enumeration — DS4's chunkable element space in full runs — is
	// filled by ensureNodes alongside nodesOf.
	reqTargets []boundReqTarget

	// keyed caches DS7's key buckets per (type, key-field set). Bucket
	// contents depend only on property values, so they are as
	// epoch-stable as the rest of the binding; they are built lazily
	// (guarded by keyOnce) because only unrestricted DS7 sweeps use them
	// — incremental revalidation rebuilds buckets for the affected types
	// alone, which is cheaper than indexing every keyed type.
	keyOnce sync.Once
	keyed   []boundKeySet

	// ds7Groups flattens the key buckets with ≥ 2 nodes — the only ones
	// DS7 can report — into one deterministic list (keysets in schema
	// order, buckets in first-seen key order), so the sharded DS7 pass
	// chunks bucket ranges instead of serializing behind one task.
	// Built together with keyed under keyOnce.
	ds7Groups []ds7Group

	// kern holds the dense-pass iteration bitsets (live nodes, live
	// edges, per-label node sets for the word kernels), derived from the
	// snapshot's label columns in one pass on first dense use. Dirty-list
	// passes (incremental revalidation) never build them — a delta-sized
	// run must not pay an O(V+E) sweep.
	kernOnce sync.Once
	kern     *boundKernels
}

// ds7Group is one key-bucket conflict candidate: the nodes of one type
// agreeing on one rendered key tuple (only buckets of ≥ 2 nodes are
// kept).
type ds7Group struct {
	typeName  string
	keyFields []string
	nodes     []pg.NodeID
}

// boundKernels are the word-at-a-time iteration sets of the dense fused
// passes: presence bitsets over element IDs, walked with
// bits.TrailingZeros64 so tombstone skips and per-label obligations
// cost word operations instead of per-element branches.
type boundKernels struct {
	liveNodes []uint64 // bit v ⇔ node v is live
	liveEdges []uint64 // bit e ⇔ edge e is live
	// labelBits[s] is the bitset of live nodes labeled s — non-nil
	// exactly for labels some word kernel sweeps (SS1-violating labels
	// and labels with @required attributes).
	labelBits [][]uint64
}

// kernels returns the dense-pass bitsets, building them on first use in
// one pass over the snapshot's label columns. Callers must hold the
// graph at the binding's epoch (the binding contract).
func (b *binding) kernels() *boundKernels {
	b.kernOnce.Do(func() {
		snap := b.snap
		nb, eb := snap.NodeBound(), snap.EdgeBound()
		nodeWords := (nb + 63) / 64
		k := &boundKernels{
			liveNodes: make([]uint64, nodeWords),
			liveEdges: make([]uint64, (eb+63)/64),
			labelBits: make([][]uint64, b.symCount),
		}
		for sym, bl := range b.labels {
			if bl != nil && bl.oblig&(obSS1|obDS5) != 0 {
				k.labelBits[sym] = make([]uint64, nodeWords)
			}
		}
		for v, ls := range snap.NodeLabelColumn() {
			if ls == pg.NoSym {
				continue
			}
			k.liveNodes[v>>6] |= 1 << (uint(v) & 63)
			if set := k.labelBits[ls]; set != nil {
				set[v>>6] |= 1 << (uint(v) & 63)
			}
		}
		for e, ls := range snap.EdgeLabelColumn() {
			if ls != pg.NoSym {
				k.liveEdges[e>>6] |= 1 << (uint(e) & 63)
			}
		}
		b.kern = k
	})
	return b.kern
}

// ensureNodes materializes the per-type node enumerations and the DS4
// target enumerations, once. Callers must hold the graph at the
// binding's epoch (see the binding contract above).
func (b *binding) ensureNodes() {
	b.nodesOnce.Do(func() {
		nodesOf := make(map[string][]pg.NodeID)
		for _, td := range b.p.s.Types() {
			switch td.Kind {
			case schema.Object, schema.Interface, schema.Union:
				var out []pg.NodeID
				for _, label := range b.p.s.ConcreteTargets(td.Name) {
					out = append(out, b.g.NodesLabeled(label)...)
				}
				nodesOf[td.Name] = out
			}
		}
		b.nodesOf = nodesOf
		// DS4 declarations share the enumerations, so this costs one
		// slice header per declaration.
		for i := range b.reqTargets {
			b.reqTargets[i].targets = nodesOf[b.reqTargets[i].fd.Type.Base()]
		}
	})
}

// boundKeySet is one @key declaration's bucket index: nodes of the type
// grouped by their rendered key-attribute tuple.
type boundKeySet struct {
	typeName  string
	keyFields []string
	buckets   map[string][]pg.NodeID
}

// keyIndex returns the DS7 bucket index, building it on first use.
func (b *binding) keyIndex(s *schema.Schema) []boundKeySet {
	b.keyOnce.Do(func() {
		b.ensureNodes()
		for _, td := range s.Types() {
			for _, keyFields := range td.KeyFieldSets() {
				var attrs []string
				for _, f := range keyFields {
					if fd := td.Field(f); fd != nil && s.IsAttribute(fd) {
						attrs = append(attrs, f)
					}
				}
				buckets := make(map[string][]pg.NodeID)
				var order []string // keys in first-seen (ascending node) order
				for _, v := range b.nodesOf[td.Name] {
					var sb strings.Builder
					for _, f := range attrs {
						if val, ok := b.g.NodeProp(v, f); ok {
							sb.WriteString("P" + val.Key())
						} else {
							sb.WriteString("A")
						}
						sb.WriteByte('\x00')
					}
					key := sb.String()
					if _, seen := buckets[key]; !seen {
						order = append(order, key)
					}
					buckets[key] = append(buckets[key], v)
				}
				b.keyed = append(b.keyed, boundKeySet{typeName: td.Name, keyFields: keyFields, buckets: buckets})
				// Sharded DS7 chunks ranges over the conflict groups; the
				// first-seen key order keeps the group list deterministic
				// where map iteration would not be.
				for _, key := range order {
					if nodes := buckets[key]; len(nodes) >= 2 {
						b.ds7Groups = append(b.ds7Groups, ds7Group{
							typeName: td.Name, keyFields: keyFields, nodes: nodes,
						})
					}
				}
			}
		}
	})
	return b.keyed
}

// boundLabel is a labelProgram bound to the graph's symbol table — or,
// for a label the schema does not declare, just the label with its
// bind-time subtype row (td == nil).
type boundLabel struct {
	label string
	td    *schema.TypeDef

	// fields is indexed by pg.Sym (nil when td == nil); the zero slot
	// means "not a declared field of this label".
	fields []fieldSlot
	sub    []bool // indexed by nameID, as in labelProgram

	srcRel   []boundSrc
	reqAttrs []boundReq
	uftIn    []boundUft

	// oblig is the label's obligation mask, copied from the labelProgram
	// (undeclared labels owe only SS1). The dense node kernel ANDs it
	// with the run's want mask per node.
	oblig obligMask
}

// fieldSlot is compiledField addressed by graph Sym. For relationship
// fields, args carries the argument table re-keyed by the graph's
// interned property-name syms: edge-property lookup is then a linear
// sym scan over a couple of entries instead of a string-map probe.
type fieldSlot struct {
	fd     *schema.FieldDef
	isAttr bool
	baseID int32

	check func(values.Value) bool
	args  []boundArg
}

// boundArg is compiledArg with the argument name resolved to a graph
// Sym (pg.NoSym when the graph never interned the name, which correctly
// matches no edge property).
type boundArg struct {
	sym   pg.Sym
	arg   *schema.ArgDef
	check func(values.Value) bool
}

// boundSrc is compiledSrc with the field name resolved to a graph Sym
// (pg.NoSym when the graph never interned the name, which correctly
// matches no edge).
type boundSrc struct {
	fd                          *schema.FieldDef
	sym                         pg.Sym
	distinct, noLoops, required bool
}

type boundReq struct {
	fd  *schema.FieldDef
	sym pg.Sym
}

type boundUft struct {
	fd      *schema.FieldDef
	sym     pg.Sym
	ownerID int32
}

// boundReqTarget is one @requiredForTarget declaration bound to the
// graph: the edge-label sym, the owner's nameID for the source-subtype
// test, the concrete-target label set as a per-Sym membership table
// (incremental runs test candidates against it instead of enumerating),
// and — once ensureNodes ran — the declaration's possible target nodes.
type boundReqTarget struct {
	fd         *schema.FieldDef
	sym        pg.Sym
	ownerID    int32
	targetSyms []bool // indexed by pg.Sym: label ∈ ConcreteTargets(fd.Type.Base())
	targets    []pg.NodeID
}

// schedFeedback is the run-to-run observation record the adaptive chunk
// planner and the worker autotuner read: smoothed per-element costs per
// task kind (for sizing chunks toward a wall-time target) and the
// measured parallel efficiency of recent parallel runs (for falling
// back toward sequential when parallelism is pure dispatch overhead).
// Values are exponential moving averages with weight 1/2 per run; zero
// means "no observation yet".
type schedFeedback struct {
	nsPerElem  [numTaskKinds]float64
	skew       [numTaskKinds]float64 // max/avg chunk time per kind
	efficiency float64
}

// noteSched folds one run's observations into the program's feedback
// under a CAS loop (runs over the same program may race). Zero fields
// in obs leave the corresponding smoothed value untouched.
func (p *Program) noteSched(obs *schedFeedback) {
	for {
		old := p.sched.Load()
		if old == nil {
			if p.sched.CompareAndSwap(nil, obs) {
				return
			}
			continue
		}
		merged := *old
		for k := range obs.nsPerElem {
			switch {
			case obs.nsPerElem[k] <= 0:
			case merged.nsPerElem[k] <= 0:
				merged.nsPerElem[k] = obs.nsPerElem[k]
			default:
				merged.nsPerElem[k] = (merged.nsPerElem[k] + obs.nsPerElem[k]) / 2
			}
			switch {
			case obs.skew[k] <= 0:
			case merged.skew[k] <= 0:
				merged.skew[k] = obs.skew[k]
			default:
				merged.skew[k] = (merged.skew[k] + obs.skew[k]) / 2
			}
		}
		if obs.efficiency > 0 {
			if merged.efficiency > 0 {
				merged.efficiency = (merged.efficiency + obs.efficiency) / 2
			} else {
				merged.efficiency = obs.efficiency
			}
		}
		if p.sched.CompareAndSwap(old, &merged) {
			return
		}
	}
}

// effFallbackThreshold is the measured parallel efficiency below which
// an autotuned worker count is scaled back: 0.5 means "if more than
// half the workers' combined time was spent idle or queueing, the
// parallelism is not paying here".
const effFallbackThreshold = 0.5

// autotuneWorkers applies efficiency feedback to an autotuned worker
// count: when previous parallel runs of this program measured
// efficiency below the fallback threshold, the count is scaled down
// proportionally (to 1 on a single-core container, where efficiency
// ≈ 1/w). Explicitly requested worker counts never pass through here —
// the caller applies this only when Options.Workers was 0.
func (p *Program) autotuneWorkers(w int) int {
	if w <= 1 {
		return w
	}
	fb := p.sched.Load()
	if fb == nil || fb.efficiency <= 0 || fb.efficiency >= effFallbackThreshold {
		return w
	}
	scaled := int(float64(w)*fb.efficiency + 0.5)
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}

// bindTo returns the program bound to the graph at its current epoch,
// reusing the cached binding when neither the graph identity nor its
// epoch changed since the last call. Concurrent callers may race to
// rebuild; every built binding is valid and the last store wins.
//
// When the graph identity matches but the epoch moved, the new binding
// shares the old one's label tables if the symbol table and live label
// set are unchanged — the common case for small mutations, where
// rebuilding the per-label field/obligation tables would dwarf the
// delta itself. Node enumerations are never carried over (they are
// per-epoch), only re-derived lazily.
func (p *Program) bindTo(g *pg.Graph) *binding {
	b := p.bound.Load()
	if b != nil && b.g == g && b.epoch == g.Epoch() {
		return b
	}
	var nb *binding
	if b != nil && b.g == g && b.symCount == g.SymCount() && sameLabels(b.labelNames, g) {
		nb = p.rebind(b, g)
	} else {
		nb = p.newBinding(g)
	}
	p.bound.Store(nb)
	return nb
}

// sameLabels reports whether the graph's current live label set equals
// the sorted label list a binding was built for.
func sameLabels(names []string, g *pg.Graph) bool {
	cur := g.Labels()
	if len(cur) != len(names) {
		return false
	}
	for i := range cur {
		if cur[i] != names[i] {
			return false
		}
	}
	return true
}

// rebind builds a fresh-epoch binding that shares the old binding's
// immutable label tables. Valid only when symCount and the live label
// set are unchanged (checked by bindTo): the tables are keyed by Sym
// and field-name Syms, both append-only, so identical sym sets mean
// identical tables.
func (p *Program) rebind(old *binding, g *pg.Graph) *binding {
	b := &binding{
		p:          p,
		g:          g,
		epoch:      g.Epoch(),
		symCount:   old.symCount,
		snap:       g.Snapshot(),
		labels:     old.labels,
		labelNames: old.labelNames,
	}
	b.reqTargets = make([]boundReqTarget, len(old.reqTargets))
	for i, rt := range old.reqTargets {
		rt.targets = nil // per-epoch; refilled by ensureNodes on demand
		b.reqTargets[i] = rt
	}
	return b
}

func (p *Program) newBinding(g *pg.Graph) *binding {
	b := &binding{
		p:        p,
		g:        g,
		epoch:    g.Epoch(),
		symCount: g.SymCount(),
		snap:     g.Snapshot(),
		labels:   make([]*boundLabel, g.SymCount()),
	}
	symOf := func(name string) pg.Sym {
		s, _ := g.Sym(name)
		return s
	}
	b.labelNames = g.Labels()
	for _, l := range b.labelNames {
		sym := symOf(l)
		bl := &boundLabel{label: l, oblig: obSS1}
		if lp := p.labels[l]; lp != nil {
			bl.td = lp.td
			bl.sub = lp.sub
			bl.oblig = lp.oblig
			bl.fields = make([]fieldSlot, b.symCount)
			for _, cf := range lp.fields {
				fsym, ok := g.Sym(cf.fd.Name)
				if !ok {
					continue
				}
				slot := fieldSlot{fd: cf.fd, isAttr: cf.isAttr, baseID: cf.baseID, check: cf.check}
				if len(cf.args) > 0 {
					slot.args = make([]boundArg, len(cf.args))
					for i, ca := range cf.args {
						slot.args[i] = boundArg{sym: symOf(ca.arg.Name), arg: ca.arg, check: ca.check}
					}
				}
				bl.fields[fsym] = slot
			}
			for _, d := range lp.srcRel {
				bl.srcRel = append(bl.srcRel, boundSrc{
					fd: d.fd, sym: symOf(d.fd.Name),
					distinct: d.distinct, noLoops: d.noLoops, required: d.required,
				})
			}
			for _, fd := range lp.reqAttrs {
				bl.reqAttrs = append(bl.reqAttrs, boundReq{fd: fd, sym: symOf(fd.Name)})
			}
			for _, u := range lp.uftIn {
				bl.uftIn = append(bl.uftIn, boundUft{fd: u.fd, sym: symOf(u.fd.Name), ownerID: u.ownerID})
			}
		} else {
			// Undeclared label: its subtype row is not precompilable (the
			// label is not a schema name), so compute it here. Only
			// reflexivity can hold, and only when the label coincides
			// with a schema name.
			row := make([]bool, len(p.names))
			for i, n := range p.names {
				row[i] = p.s.SubtypeNamed(l, n)
			}
			bl.sub = row
		}
		b.labels[sym] = bl
	}

	// DS4 declarations: syms, owner IDs, and target-label membership are
	// bound now; the target enumerations come from ensureNodes on demand.
	for _, fd := range p.reqTargets {
		rt := boundReqTarget{
			fd:         fd,
			sym:        symOf(fd.Name),
			ownerID:    p.nameID[fd.Owner],
			targetSyms: make([]bool, b.symCount),
		}
		for _, l := range p.s.ConcreteTargets(fd.Type.Base()) {
			if s, ok := g.Sym(l); ok {
				rt.targetSyms[s] = true
			}
		}
		b.reqTargets = append(b.reqTargets, rt)
	}
	return b
}
